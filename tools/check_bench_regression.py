#!/usr/bin/env python3
"""Gate bench results against a committed baseline or a paired run.

Usage:
  check_bench_regression.py <results.json> <BENCH_baseline.json>
  check_bench_regression.py --throughput-ratio <num.json> <den.json> \\
      [--min-ratio R] [--baseline BENCH_baseline.json --ratio NAME]
  check_bench_regression.py --hotpath-ratio <fast.json> <slow.json> \\
      --workload NAME [--min-ratio R] \\
      [--baseline BENCH_baseline.json --ratio NAME]
  check_bench_regression.py --cold-start <results.json> \\
      [--baseline BENCH_baseline.json] [--min-ratio R]
  check_bench_regression.py --recall <results.json> \\
      [--baseline BENCH_baseline.json] [--min-recall R] [--min-ratio R]

Default mode gates bench_pt2pt_hotpath: the bench emits machine-independent
metrics — per-workload speedup (reference ns/query divided by optimized
ns/query, both measured on the same machine in the same process) and
allocations/query of the optimized path. The baseline pins a minimum
speedup and a maximum allocation count per workload; a run fails when a
speedup drops more than the baseline's tolerance (default 25%) below its
floor, or when the optimized path allocates more than allowed.
Exact-result equality is enforced by the bench binary itself (it exits
non-zero on any mismatch before producing JSON).

--throughput-ratio mode gates bench_query_throughput: it compares the
peak_qps of two runs of the SAME workload, both measured on the same host
back to back, and fails when numerator/denominator drops below the floor.
Two pairings are gated in CI:

  cache ON vs cache OFF           — enabling the cross-query cache must
                                    keep paying for itself;
  cache ON +moves vs ON static    — mixing object moves into the workload
                                    (epoch-based partition-scoped
                                    invalidation) must retain most of the
                                    static-workload throughput.

The floor comes from --min-ratio, or from the committed baseline via
--baseline FILE --ratio NAME (the baseline's "throughput_ratios" map), so
the floors live next to the other bench floors instead of being hardcoded
in workflow YAML. The workload-identity check deliberately ignores
move_rate, cache, queue, and landmarks: those are exactly the knobs a
pairing varies.

--hotpath-ratio mode gates the bucket-queue + landmark speedup: it
compares the optimized-path ns/query of one workload across two
bench_pt2pt_hotpath runs on the same host (first JSON = the configuration
that must be faster, e.g. the default bucket+landmarks run; second = the
`--queue heap --landmarks off` run), and fails when
slow_ns / fast_ns drops below the floor (baseline "hotpath_ratios" map).
Both runs verify exact result equality against the reference in-process,
so the ratio compares bitwise-identical answers.

--cold-start mode gates bench_cold_start (the INDOORIX container payoff):
for every engine mode in the run's "modes" map it requires (a) the
cold-started engines answered bitwise-identically to the freshly built
one ("identical": true — the bench itself exits non-zero on a mismatch,
this re-checks the recorded verdict), and (b) build_ms / map_ms stays at
or above the floor from the baseline's "cold_start_ratios" map (or
--min-ratio). Both times come from the same process on the same machine,
so the ratio is machine-independent: if mapping a container ever stops
being dramatically cheaper than rebuilding the index, the container
format has lost its reason to exist and CI should say so.

--recall mode gates bench_recall (the approximate-kNN tier): the bench's
"summary" member carries the tier's operating point — the building
scenario's best k=10 sweep cell with recall >= 0.99 — and this mode fails
when its recall@10 or its approx/exact QPS ratio drops below the floors
from the baseline's "recall" object (min_recall_at_10, min_qps_ratio).
Both numbers come from the same process on the same machine, so they are
machine-independent. A run with "smoke": true uses the relaxed floors of
the baseline's recall.smoke object instead — the smoke workload is a
2-floor dense building where the tier's QPS advantage structurally cannot
appear; its gate only proves the path works and stays accurate.
"""

import json
import sys


def throughput_ratio(argv: list) -> int:
    min_ratio = None
    baseline_path = None
    ratio_name = None
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--min-ratio" and i + 1 < len(argv):
            min_ratio = float(argv[i + 1])
            i += 2
        elif argv[i] == "--baseline" and i + 1 < len(argv):
            baseline_path = argv[i + 1]
            i += 2
        elif argv[i] == "--ratio" and i + 1 < len(argv):
            ratio_name = argv[i + 1]
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if min_ratio is None and baseline_path is not None:
        with open(baseline_path) as f:
            ratios = json.load(f).get("throughput_ratios", {})
        if ratio_name not in ratios:
            print(
                f"baseline {baseline_path} has no throughput_ratios entry "
                f"{ratio_name!r}",
                file=sys.stderr,
            )
            return 2
        min_ratio = float(ratios[ratio_name])
    if min_ratio is None:
        min_ratio = 1.0
    label = ratio_name or "cache on/off"
    with open(paths[0]) as f:
        num = json.load(f)
    with open(paths[1]) as f:
        den = json.load(f)
    for key in ("floors", "objects", "queries_per_reader", "zipf", "mix",
                "seed"):
        if num.get(key) != den.get(key):
            print(
                f"workload mismatch: {key} differs between runs "
                f"({num.get(key)!r} vs {den.get(key)!r}) — the ratio would "
                "compare different workloads",
                file=sys.stderr,
            )
            return 2
    num_qps = float(num["peak_qps"])
    den_qps = float(den["peak_qps"])
    if den_qps <= 0:
        print("denominator run has no throughput", file=sys.stderr)
        return 2
    ratio = num_qps / den_qps
    print(
        f"{label}: peak {num_qps:.0f} QPS / {den_qps:.0f} QPS "
        f"= {ratio:.2f}x (min {min_ratio:.2f}x)"
    )
    if ratio < min_ratio:
        print(
            f"\nBENCH REGRESSION: {label} throughput ratio "
            f"{ratio:.2f}x is below the required {min_ratio:.2f}x",
            file=sys.stderr,
        )
        return 1
    print("\nthroughput ratio within baseline")
    return 0


def hotpath_ratio(argv: list) -> int:
    min_ratio = None
    baseline_path = None
    ratio_name = None
    workload = None
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--min-ratio" and i + 1 < len(argv):
            min_ratio = float(argv[i + 1])
            i += 2
        elif argv[i] == "--baseline" and i + 1 < len(argv):
            baseline_path = argv[i + 1]
            i += 2
        elif argv[i] == "--ratio" and i + 1 < len(argv):
            ratio_name = argv[i + 1]
            i += 2
        elif argv[i] == "--workload" and i + 1 < len(argv):
            workload = argv[i + 1]
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2 or workload is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if min_ratio is None and baseline_path is not None:
        with open(baseline_path) as f:
            ratios = json.load(f).get("hotpath_ratios", {})
        if ratio_name not in ratios:
            print(
                f"baseline {baseline_path} has no hotpath_ratios entry "
                f"{ratio_name!r}",
                file=sys.stderr,
            )
            return 2
        min_ratio = float(ratios[ratio_name])
    if min_ratio is None:
        min_ratio = 1.0
    label = ratio_name or workload
    with open(paths[0]) as f:
        fast = json.load(f)
    with open(paths[1]) as f:
        slow = json.load(f)
    # Same building + workload on both sides; queue/landmarks are exactly
    # the knobs the pairing varies, so they are deliberately not compared.
    for key in ("smoke", "floors", "seed"):
        if fast.get(key) != slow.get(key):
            print(
                f"workload mismatch: {key} differs between runs "
                f"({fast.get(key)!r} vs {slow.get(key)!r})",
                file=sys.stderr,
            )
            return 2
    fast_run = fast["workloads"].get(workload)
    slow_run = slow["workloads"].get(workload)
    if fast_run is None or slow_run is None:
        print(f"workload {workload!r} missing from a run", file=sys.stderr)
        return 2
    fast_ns = float(fast_run["new_ns_per_query"])
    slow_ns = float(slow_run["new_ns_per_query"])
    if fast_ns <= 0:
        print("fast run has no measurement", file=sys.stderr)
        return 2
    ratio = slow_ns / fast_ns
    print(
        f"{label}: {slow_ns:.0f} ns/query -> {fast_ns:.0f} ns/query "
        f"= {ratio:.2f}x (min {min_ratio:.2f}x)"
    )
    if ratio < min_ratio:
        print(
            f"\nBENCH REGRESSION: {label} hot-path speedup {ratio:.2f}x "
            f"is below the required {min_ratio:.2f}x",
            file=sys.stderr,
        )
        return 1
    print("\nhot-path ratio within baseline")
    return 0


def cold_start(argv: list) -> int:
    min_ratio = None
    baseline_path = None
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--min-ratio" and i + 1 < len(argv):
            min_ratio = float(argv[i + 1])
            i += 2
        elif argv[i] == "--baseline" and i + 1 < len(argv):
            baseline_path = argv[i + 1]
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    floors = {}
    if baseline_path is not None:
        with open(baseline_path) as f:
            floors = json.load(f).get("cold_start_ratios", {})
    with open(paths[0]) as f:
        results = json.load(f)
    modes = results.get("modes", {})
    if not modes:
        print(f"{paths[0]} has no cold-start modes", file=sys.stderr)
        return 2
    failures = []
    for mode, run in modes.items():
        if not run.get("identical", False):
            failures.append(
                f"{mode}: cold-started engine did not answer bitwise-"
                "identically to the built one"
            )
            continue
        floor = min_ratio if min_ratio is not None else floors.get(mode)
        if floor is None:
            print(f"{mode}: no floor configured, skipping ratio check")
            continue
        ratio = float(run["build_over_map"])
        print(
            f"{mode}: build {float(run['build_ms']):.2f} ms vs map "
            f"{float(run['map_ms']):.3f} ms = {ratio:.1f}x "
            f"(min {float(floor):.1f}x), identical"
        )
        if ratio < float(floor):
            failures.append(
                f"{mode}: build/map ratio {ratio:.1f}x is below the "
                f"required {float(floor):.1f}x — mapping the container "
                "no longer beats rebuilding"
            )
    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\ncold-start ratios within baseline")
    return 0


def recall(argv: list) -> int:
    min_recall = None
    min_ratio = None
    baseline_path = None
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--min-recall" and i + 1 < len(argv):
            min_recall = float(argv[i + 1])
            i += 2
        elif argv[i] == "--min-ratio" and i + 1 < len(argv):
            min_ratio = float(argv[i + 1])
            i += 2
        elif argv[i] == "--baseline" and i + 1 < len(argv):
            baseline_path = argv[i + 1]
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(paths[0]) as f:
        results = json.load(f)
    summary = results.get("summary")
    if not summary:
        print(f"{paths[0]} has no recall summary", file=sys.stderr)
        return 2
    smoke = bool(results.get("smoke", False))
    if baseline_path is not None:
        with open(baseline_path) as f:
            floors = json.load(f).get("recall", {})
        if smoke:
            floors = floors.get("smoke", {})
        if min_recall is None and "min_recall_at_10" in floors:
            min_recall = float(floors["min_recall_at_10"])
        if min_ratio is None and "min_qps_ratio" in floors:
            min_ratio = float(floors["min_qps_ratio"])
    if min_recall is None or min_ratio is None:
        print(
            "no recall/ratio floors configured (pass --baseline or both "
            "--min-recall and --min-ratio)",
            file=sys.stderr,
        )
        return 2
    got_recall = float(summary["recall_at_k"])
    got_ratio = float(summary["qps_ratio"])
    mode = "smoke" if smoke else "full"
    print(
        f"approx knn operating point ({mode}): scenario="
        f"{summary.get('scenario')} k={summary.get('k')} "
        f"landmarks={summary.get('landmarks')} "
        f"factor={summary.get('factor')}"
    )
    print(
        f"  recall@{summary.get('k')} {got_recall:.4f} "
        f"(min {min_recall:.4f}), approx/exact QPS "
        f"{got_ratio:.2f}x (min {min_ratio:.2f}x)"
    )
    failures = []
    if int(summary.get("k", 0)) != 10:
        failures.append(
            f"summary cell is k={summary.get('k')}, not the gated k=10"
        )
    if got_recall < min_recall:
        failures.append(
            f"recall@10 {got_recall:.4f} is below the required "
            f"{min_recall:.4f}"
        )
    if got_ratio < min_ratio:
        failures.append(
            f"approx/exact QPS ratio {got_ratio:.2f}x is below the "
            f"required {min_ratio:.2f}x"
        )
    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nrecall gate within baseline")
    return 0


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--throughput-ratio":
        return throughput_ratio(sys.argv[2:])
    if len(sys.argv) >= 2 and sys.argv[1] == "--hotpath-ratio":
        return hotpath_ratio(sys.argv[2:])
    if len(sys.argv) >= 2 and sys.argv[1] == "--cold-start":
        return cold_start(sys.argv[2:])
    if len(sys.argv) >= 2 and sys.argv[1] == "--recall":
        return recall(sys.argv[2:])
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        results = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    tolerance = float(baseline.get("tolerance", 0.25))
    failures = []
    for name, floor in baseline["workloads"].items():
        run = results["workloads"].get(name)
        if run is None:
            failures.append(f"{name}: missing from bench results")
            continue
        speedup = float(run["speedup"])
        min_speedup = float(floor["min_speedup"])
        # A >tolerance regression of ns/query shows up as the speedup ratio
        # falling more than `tolerance` below its floor.
        threshold = min_speedup / (1.0 + tolerance)
        if speedup < threshold:
            failures.append(
                f"{name}: speedup {speedup:.2f}x is below the allowed "
                f"{threshold:.2f}x (baseline {min_speedup:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
        allocs = float(run["new_allocs_per_query"])
        max_allocs = float(floor["max_new_allocs_per_query"])
        if allocs > max_allocs:
            failures.append(
                f"{name}: {allocs:.2f} allocations/query in the optimized "
                f"path exceeds the allowed {max_allocs:.2f}"
            )
        print(
            f"{name}: speedup {speedup:.2f}x "
            f"(floor {min_speedup:.2f}x, threshold {threshold:.2f}x), "
            f"allocs/query {allocs:.2f} (max {max_allocs:.2f})"
        )

    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall workloads within baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
