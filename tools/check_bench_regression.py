#!/usr/bin/env python3
"""Gate bench_pt2pt_hotpath results against the committed baseline.

Usage: check_bench_regression.py <results.json> <BENCH_baseline.json>

The bench emits machine-independent metrics: per-workload speedup (reference
ns/query divided by optimized ns/query, both measured on the same machine in
the same process) and allocations/query of the optimized path. The baseline
pins a minimum speedup and a maximum allocation count per workload; a run
fails when a speedup drops more than the baseline's tolerance (default 25%)
below its floor, or when the optimized path allocates more than allowed.
Exact-result equality is enforced by the bench binary itself (it exits
non-zero on any mismatch before producing JSON).
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        results = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    tolerance = float(baseline.get("tolerance", 0.25))
    failures = []
    for name, floor in baseline["workloads"].items():
        run = results["workloads"].get(name)
        if run is None:
            failures.append(f"{name}: missing from bench results")
            continue
        speedup = float(run["speedup"])
        min_speedup = float(floor["min_speedup"])
        # A >tolerance regression of ns/query shows up as the speedup ratio
        # falling more than `tolerance` below its floor.
        threshold = min_speedup / (1.0 + tolerance)
        if speedup < threshold:
            failures.append(
                f"{name}: speedup {speedup:.2f}x is below the allowed "
                f"{threshold:.2f}x (baseline {min_speedup:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
        allocs = float(run["new_allocs_per_query"])
        max_allocs = float(floor["max_new_allocs_per_query"])
        if allocs > max_allocs:
            failures.append(
                f"{name}: {allocs:.2f} allocations/query in the optimized "
                f"path exceeds the allowed {max_allocs:.2f}"
            )
        print(
            f"{name}: speedup {speedup:.2f}x "
            f"(floor {min_speedup:.2f}x, threshold {threshold:.2f}x), "
            f"allocs/query {allocs:.2f} (max {max_allocs:.2f})"
        )

    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall workloads within baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
