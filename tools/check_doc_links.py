#!/usr/bin/env python3
"""Check that every relative link in the repo's markdown docs resolves.

Usage:
  check_doc_links.py [repo_root]

Scans README.md, every top-level *.md, and docs/*.md for inline markdown
links and images (`[text](target)` / `![alt](target)`), and fails when a
relative target does not exist on disk. Absolute URLs (http/https/mailto)
are skipped, `#fragment`-only links are skipped, and fragments on file
links are stripped before the existence check. Also enforces the index
inventory's placement: docs/INDEXING.md must be linked from both
README.md and docs/ARCHITECTURE.md, so the artifact inventory cannot
silently fall out of the entry-point docs.

Exit status: 0 when every link resolves, 1 otherwise (each broken link is
reported as file:line).
"""

import pathlib
import re
import sys

# Inline links/images; deliberately simple — the docs use plain
# single-line [text](target) links, not reference-style definitions.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

REQUIRED_LINKS = [
    ("README.md", "docs/INDEXING.md"),
    ("docs/ARCHITECTURE.md", "INDEXING.md"),
]


def doc_files(root: pathlib.Path):
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    root = root.resolve()
    broken = []
    checked = 0
    seen_targets = {}  # doc (relative to root) -> set of raw targets
    for md in doc_files(root):
        rel_md = md.relative_to(root)
        targets = seen_targets.setdefault(str(rel_md), set())
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                targets.add(target)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (md.parent / path).resolve()
                checked += 1
                if not resolved.exists():
                    broken.append(f"{rel_md}:{lineno}: broken link to {target}")

    for doc, required in REQUIRED_LINKS:
        targets = seen_targets.get(doc, set())
        if not any(t.split("#", 1)[0] == required for t in targets):
            broken.append(f"{doc}: missing required link to {required}")

    if broken:
        print(f"{len(broken)} broken doc link(s):", file=sys.stderr)
        for b in broken:
            print(f"  {b}", file=sys.stderr)
        return 1
    print(f"all {checked} relative doc links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
