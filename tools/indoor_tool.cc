// indoor_tool: command-line access to the library — generate buildings,
// validate/inspect plan files, compute distances and paths, run queries,
// and precompute/persist the distance matrix.
//
//   indoor_tool gen --floors 10 --rooms 30 --out plan.txt
//   indoor_tool gen --buildings 4 --out campus.txt
//   indoor_tool info plan.txt
//   indoor_tool validate plan.txt
//   indoor_tool distance plan.txt <x1> <y1> <x2> <y2>
//   indoor_tool path plan.txt <x1> <y1> <x2> <y2>
//   indoor_tool range plan.txt <x> <y> <r> [--objects N] [--seed S]
//   indoor_tool knn plan.txt <x> <y> <k> [--objects N] [--seed S]
//   indoor_tool matrix plan.txt <out.bin>
//   indoor_tool build plan.txt <out.idx> [--hierarchy] [--threads N]
//   indoor_tool serve plan.txt --load-mmap out.idx   (cold start, no build)
//   indoor_tool stats plan.txt [--queries N] [--objects N] [--seed S]
//
// Observability: every command accepts --metrics-json FILE ("-" = stdout)
// to dump the metrics registry as JSON on exit, and the query commands
// (distance, path, range, knn) accept --trace to print a per-query span
// breakdown. Both require a library built with INDOOR_METRICS=ON (the
// default); an OFF build reports an empty registry.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/distance/query_scratch.h"
#include "core/index/index_io.h"
#include "core/model/accessibility_graph.h"
#include "core/query/query_engine.h"
#include "core/query/workload_replay.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/floor_plan_io.h"
#include "util/dashboard.h"
#include "util/metrics.h"
#include "util/query_log.h"
#include "util/slo.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/timeseries.h"
#include "util/trace_export.h"

using namespace indoor;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  indoor_tool gen --out PLAN [--floors N] [--rooms N] [--seed S]\n"
      "                  [--r2r P] [--oneway P] [--parallel-stairs]\n"
      "                  [--buildings N] [--gap M]\n"
      "  indoor_tool info PLAN\n"
      "  indoor_tool validate PLAN\n"
      "  indoor_tool distance PLAN X1 Y1 X2 Y2\n"
      "  indoor_tool path PLAN X1 Y1 X2 Y2\n"
      "  indoor_tool range PLAN X Y R [--objects N] [--seed S]\n"
      "  indoor_tool knn PLAN X Y K [--objects N] [--seed S]\n"
      "  indoor_tool matrix PLAN OUT.bin [--threads N]\n"
      "  indoor_tool build PLAN OUT.idx [--threads N] [--hierarchy]\n"
      "                    [--cell-target N] [--landmark-count N]\n"
      "  indoor_tool stats PLAN [--queries N] [--objects N] [--seed S]\n"
      "  indoor_tool serve PLAN [--threads N] [--batch B] [--skew ZIPF]\n"
      "                    [--requests N] [--positions N] [--objects N]\n"
      "                    [--cache on|off] [--quantum Q] [--seed S]\n"
      "                    [--move-rate R] [--move-batch M]\n"
      "                    [--query-log F] [--slow-ms MS] [--report N]\n"
      "                    [--record F] [--record-interval-ms N]\n"
      "                    [--slo SPEC] [--trace-out F] [--trace-sample N]\n"
      "                    [--load F.idx | --load-mmap F.idx] [--hierarchy]\n"
      "                    [--knn-approx] [--candidates F]\n"
      "                    [--landmark-count N]\n"
      "  indoor_tool replay CAPTURE [--plan PLAN] [--threads N]\n"
      "                    [--speed X] [--cache on|off]\n"
      "                    [--load F.idx | --load-mmap F.idx]\n"
      "  indoor_tool dashboard REC [REC...] [--out F.html] [--slo SPEC]\n"
      "                    [--title T]\n"
      "\n"
      "  --threads N        worker threads for matrix precomputation\n"
      "                     (default 1 = sequential, 0 = all hardware "
      "threads)\n"
      "  --buildings N      gen: emit an N-building campus plan joined by\n"
      "                     a shared outdoor partition (--gap M meters of\n"
      "                     open ground between buildings, default 20)\n"
      "  --hierarchy        build/serve: replace the flat Md2d/Midx with\n"
      "                     the partition-contraction hierarchy index\n"
      "                     (bitwise-identical results, less memory)\n"
      "  --cell-target N    build/serve: partitions per hierarchy cell\n"
      "  --landmark-count N build/serve: ALT landmarks to select (default\n"
      "                     0 = auto-scale with the door count, see\n"
      "                     docs/BENCHMARKS.md)\n"
      "  --knn-approx       serve: serve kNN from the approximate\n"
      "                     embedding tier (flat engine only; incompatible\n"
      "                     with --query-log — captured digests must stay\n"
      "                     exact for replay)\n"
      "  --candidates F     serve: approximate-tier candidate factor (re-\n"
      "                     rank up to k*F bound-sorted candidates,\n"
      "                     default 8)\n"
      "  --load F.idx       serve/replay: cold-start by READING the index\n"
      "                     container (checksums verified)\n"
      "  --load-mmap F.idx  serve/replay: cold-start by MAPPING the index\n"
      "                     container (zero-copy, lazily paged)\n"
      "  --metrics-json F   on exit, dump the metrics registry as JSON to\n"
      "                     file F (\"-\" = stdout); any command\n"
      "  --trace            print a per-query span breakdown (distance,\n"
      "                     path, range, knn)\n"
      "  --query-log F      serve: log every query to F (binary capture;\n"
      "                     F ending in .jsonl logs JSON lines instead)\n"
      "  --slow-ms MS       serve: slow-query threshold, JSONL to stderr\n"
      "                     (default 100, 0 = off)\n"
      "  --report N         serve: print an interval report (QPS, hit\n"
      "                     rate, interval p99, SLO burn rates) every N\n"
      "                     batches\n"
      "  --record F         serve: dump the flight-recorder ring to F on\n"
      "                     exit (binary recording; F ending in .jsonl\n"
      "                     exports JSON lines instead). Requires a\n"
      "                     library built with INDOOR_METRICS=ON\n"
      "  --record-interval-ms N\n"
      "                     serve: flight-recorder sampling interval\n"
      "                     (default 250)\n"
      "  --slo SPEC         serve/dashboard: latency objectives as\n"
      "                     \"name=THRESHOLD@TARGET[,...]\" (e.g.\n"
      "                     \"knn=2ms@0.999,range=5ms@0.99\"); default:\n"
      "                     the serving objectives in\n"
      "                     docs/OBSERVABILITY.md\n"
      "  --out F.html       dashboard: output path (default\n"
      "                     dashboard.html)\n"
      "  --title T          dashboard: page title\n"
      "  --trace-out F      serve: export sampled query timelines to F as\n"
      "                     Chrome/Perfetto trace JSON\n"
      "  --trace-sample N   serve: keep every Nth query's trace "
      "(default 16)\n"
      "  --move-rate R      serve: object moves per served query (default\n"
      "                     0 = read-only); moves are applied as batches\n"
      "                     between query batches and, with --query-log,\n"
      "                     captured for exact-schedule replay\n"
      "  --move-batch M     serve: cap the moves applied per ingest batch\n"
      "                     (default 0 = all moves due at once)\n"
      "  --speed X          replay: pace at X times capture speed\n"
      "                     (default: as fast as possible)\n");
  return 2;
}

/// Minimal flag parsing: positional args plus --key [value] pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  double Num(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  std::string Str(const std::string& key, std::string fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (key == "parallel-stairs" || key == "trace" || key == "hierarchy" ||
          key == "knn-approx") {
        args.flags[key] = "1";
      } else if (i + 1 < argc) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

Result<FloorPlan> LoadOrFail(const std::string& path) {
  auto plan = LoadFloorPlan(path);
  if (!plan.ok()) {
    std::cerr << "error: " << plan.status() << "\n";
  }
  return plan;
}

/// Installs a QueryTrace for the duration of one query when --trace was
/// given, and prints the span breakdown on destruction.
class TraceScope {
 public:
  explicit TraceScope(bool enabled) {
    if (enabled) trace_.emplace();
  }
  ~TraceScope() {
    if (trace_.has_value()) {
      std::printf("trace:\n");
      trace_->WriteReport(stdout);
    }
  }

 private:
  std::optional<metrics::QueryTrace> trace_;
};

int CmdGen(const Args& args) {
  const std::string out = args.Str("out", "");
  if (out.empty()) {
    std::cerr << "gen: --out is required\n";
    return 2;
  }
  BuildingConfig config;
  config.floors = static_cast<int>(args.Num("floors", 10));
  config.rooms_per_floor = static_cast<int>(args.Num("rooms", 30));
  config.seed = static_cast<uint64_t>(args.Num("seed", 42));
  config.room_to_room_doors = args.Num("r2r", 0.0);
  config.one_way_fraction = args.Num("oneway", 0.0);
  config.parallel_staircases = args.Has("parallel-stairs");
  const int buildings = static_cast<int>(args.Num("buildings", 1));
  FloorPlan plan = [&] {
    if (buildings <= 1) return GenerateBuilding(config);
    CampusConfig campus;
    campus.buildings = buildings;
    campus.building = config;
    campus.building_gap = args.Num("gap", campus.building_gap);
    campus.seed = config.seed;
    return GenerateCampus(campus);
  }();
  const Status st = SaveFloorPlan(plan, out);
  if (!st.ok()) {
    std::cerr << "error: " << st << "\n";
    return 1;
  }
  std::printf("wrote %s: %zu partitions, %zu doors, %d floors\n",
              out.c_str(), plan.partition_count(), plan.door_count(),
              plan.FloorCount());
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto plan = LoadOrFail(args.positional[0]);
  if (!plan.ok()) return 1;
  const FloorPlan& p = plan.value();
  size_t rooms = 0, hallways = 0, stairs = 0, outdoor = 0, one_way = 0,
         obstacles = 0;
  for (const Partition& part : p.partitions()) {
    switch (part.kind()) {
      case PartitionKind::kRoom: ++rooms; break;
      case PartitionKind::kHallway: ++hallways; break;
      case PartitionKind::kStaircase: ++stairs; break;
      case PartitionKind::kOutdoor: ++outdoor; break;
    }
    obstacles += part.footprint().obstacles().size();
  }
  for (const Door& d : p.doors()) {
    if (!p.IsBidirectional(d.id())) ++one_way;
  }
  const AccessibilityGraph graph(p);
  std::printf("partitions: %zu (%zu rooms, %zu hallways, %zu staircases, "
              "%zu outdoor)\n",
              p.partition_count(), rooms, hallways, stairs, outdoor);
  std::printf("doors:      %zu (%zu one-way)\n", p.door_count(), one_way);
  std::printf("floors:     %d\n", p.FloorCount());
  std::printf("obstacles:  %zu\n", obstacles);
  std::printf("strongly connected: %s\n",
              graph.IsStronglyConnected() ? "yes" : "no");
  return 0;
}

int CmdValidate(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto plan = LoadOrFail(args.positional[0]);
  if (!plan.ok()) return 1;
  std::printf("OK: %s is a valid floor plan\n", args.positional[0].c_str());
  return 0;
}

int CmdDistance(const Args& args, bool with_path) {
  if (args.positional.size() < 5) return Usage();
  auto plan = LoadOrFail(args.positional[0]);
  if (!plan.ok()) return 1;
  const Point a(std::stod(args.positional[1]), std::stod(args.positional[2]));
  const Point b(std::stod(args.positional[3]), std::stod(args.positional[4]));
  QueryEngine engine(std::move(plan).value());
  if (!with_path) {
    double d;
    {
      TraceScope trace(args.Has("trace"));
      d = engine.Distance(a, b);
    }
    if (d == kInfDistance) {
      std::printf("unreachable\n");
      return 1;
    }
    std::printf("%.3f m (Euclidean: %.3f m)\n", d, Distance(a, b));
    return 0;
  }
  TraceScope trace(args.Has("trace"));
  const IndoorPath path = engine.ShortestPath(a, b, /*expand=*/true);
  if (!path.found()) {
    std::printf("unreachable\n");
    return 1;
  }
  std::printf("length: %.3f m, %zu doors\n", path.length,
              path.doors.size());
  for (size_t i = 0; i < path.partitions.size(); ++i) {
    std::printf("  %s", engine.plan().partition(path.partitions[i]).name().c_str());
    if (i < path.doors.size()) {
      std::printf(" -> [%s]",
                  engine.plan().door(path.doors[i]).name().c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int CmdQuery(const Args& args, bool knn) {
  if (args.positional.size() < 4) return Usage();
  auto plan = LoadOrFail(args.positional[0]);
  if (!plan.ok()) return 1;
  const Point q(std::stod(args.positional[1]), std::stod(args.positional[2]));
  const double param = std::stod(args.positional[3]);
  QueryEngine engine(std::move(plan).value());
  const size_t objects = static_cast<size_t>(args.Num("objects", 1000));
  Rng rng(static_cast<uint64_t>(args.Num("seed", 7)));
  PopulateStore(GenerateObjects(engine.plan(), objects, &rng),
                &engine.index().objects());
  if (knn) {
    std::vector<Neighbor> result;
    {
      TraceScope trace(args.Has("trace"));
      result = engine.Nearest(q, static_cast<size_t>(param));
    }
    std::printf("%zu nearest of %zu objects:\n", result.size(), objects);
    for (const Neighbor& nb : result) {
      const IndoorObject& obj = engine.index().objects().object(nb.id);
      std::printf("  #%u  %.3f m  (in %s)\n", nb.id, nb.distance,
                  engine.plan().partition(obj.partition).name().c_str());
    }
  } else {
    std::vector<ObjectId> result;
    {
      TraceScope trace(args.Has("trace"));
      result = engine.Range(q, param);
    }
    std::printf("%zu of %zu objects within %.1f m\n", result.size(),
                objects, param);
  }
  return 0;
}

/// Runs a representative mixed workload (pt2pt distance + range + kNN per
/// round) against a plan, then prints the full metrics report — the
/// quickest way to see every live counter/histogram the library exports.
int CmdStats(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto plan = LoadOrFail(args.positional[0]);
  if (!plan.ok()) return 1;
  QueryEngine engine(std::move(plan).value());
  const size_t objects = static_cast<size_t>(args.Num("objects", 1000));
  const size_t queries = static_cast<size_t>(args.Num("queries", 100));
  Rng rng(static_cast<uint64_t>(args.Num("seed", 7)));
  PopulateStore(GenerateObjects(engine.plan(), objects, &rng),
                &engine.index().objects());
  const auto pairs = GeneratePositionPairs(engine.plan(), queries, &rng);
  const auto positions = GenerateQueryPositions(engine.plan(), queries, &rng);
  QueryScratch scratch;
  for (size_t i = 0; i < queries; ++i) {
    engine.Distance(pairs[i].first, pairs[i].second, &scratch);
    engine.Range(positions[i], /*r=*/30.0, {}, &scratch);
    engine.Nearest(positions[i], /*k=*/10, {}, &scratch);
  }
  std::printf("workload: %zu rounds (pt2pt + range r=30 + 10-NN) over %zu "
              "objects\n\n",
              queries, objects);
  metrics::MetricsRegistry::Global().Snapshot().WriteReport(stdout);
  return 0;
}

/// Cold-start support shared by serve and replay: when --load/--load-mmap
/// names an INDOORIX container (indoor_tool build), its structures are
/// adopted instead of rebuilt — --load reads and checksums the file,
/// --load-mmap maps it zero-copy. Without either flag the engine builds
/// everything from the plan (--hierarchy / --cell-target select the
/// partition-contraction index).
Result<QueryEngine> MakeEngine(FloorPlan plan, IndexOptions options,
                               const Args& args) {
  options.use_hierarchy = args.Has("hierarchy");
  options.hierarchy_cell_target = static_cast<unsigned>(
      args.Num("cell-target", options.hierarchy_cell_target));
  const std::string load = args.Str("load", "");
  const std::string load_mmap = args.Str("load-mmap", "");
  if (load.empty() && load_mmap.empty()) {
    return QueryEngine(std::move(plan), options);
  }
  const bool mmap_mode = !load_mmap.empty();
  const std::string& path = mmap_mode ? load_mmap : load;
  WallTimer timer;
  auto artifacts =
      mmap_mode ? MapIndexContainer(plan, path) : LoadIndexContainer(plan, path);
  if (!artifacts.ok()) return artifacts.status();
  // The container decides the engine mode: a hierarchical container
  // serves through the hierarchy, a flat one through Md2d/Midx.
  options.use_hierarchy = artifacts->hierarchy.has_value();
  std::printf("cold start: %s %s in %.1f ms (%s%s%s%s%s%s)\n",
              mmap_mode ? "mapped" : "loaded", path.c_str(),
              timer.ElapsedMillis(),
              artifacts->md2d.has_value() ? "md2d " : "",
              artifacts->midx.has_value() ? "midx " : "",
              artifacts->hierarchy.has_value() ? "hierarchy " : "",
              artifacts->landmarks.has_value() ? "landmarks " : "",
              artifacts->approx.has_value() ? "approx " : "",
              artifacts->dpt.has_value() ? "dpt" : "");
  return QueryEngine(std::move(plan), std::move(artifacts).value(), options);
}

/// Precomputes every index structure for a plan and persists them as one
/// INDOORIX container (docs/FORMAT.md), then verifies the round trip.
int CmdBuild(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  auto plan = LoadOrFail(args.positional[0]);
  if (!plan.ok()) return 1;
  IndexOptions options;
  options.build_threads = static_cast<unsigned>(args.Num("threads", 0));
  options.use_hierarchy = args.Has("hierarchy");
  options.hierarchy_cell_target = static_cast<unsigned>(
      args.Num("cell-target", options.hierarchy_cell_target));
  options.landmark_count =
      static_cast<unsigned>(args.Num("landmark-count", 0));
  WallTimer timer;
  const IndexFramework index(plan.value(), options);
  const double build_ms = timer.ElapsedMillis();
  const Status st = SaveIndexContainer(index, args.positional[1]);
  if (!st.ok()) {
    std::cerr << "error: " << st << "\n";
    return 1;
  }
  std::printf("built %s index (%zu doors) in %.1f ms, wrote %s (%.2f MB)\n",
              options.use_hierarchy ? "hierarchy" : "flat",
              plan->door_count(), build_ms, args.positional[1].c_str(),
              index.IndexMemoryBytes() / (1024.0 * 1024.0));
  const auto loaded = LoadIndexContainer(plan.value(), args.positional[1]);
  if (!loaded.ok()) {
    std::cerr << "round-trip failed: " << loaded.status() << "\n";
    return 1;
  }
  std::printf("round-trip verified\n");
  return 0;
}

/// Serving-loop demo: executes a Zipf-skewed mixed batch workload through
/// BatchExecutor (the cross-query cache + batched parallel execution
/// path), then prints throughput, cache hit rates, and the full metrics
/// report.
int CmdServe(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto plan = LoadOrFail(args.positional[0]);
  if (!plan.ok()) return 1;
  IndexOptions options;
  options.enable_query_cache = args.Str("cache", "on") != "off";
  options.cache_quantum = args.Num("quantum", options.cache_quantum);
  options.landmark_count =
      static_cast<unsigned>(args.Num("landmark-count", 0));
  options.approx_knn = args.Has("knn-approx");
  options.approx_candidate_factor = static_cast<unsigned>(
      args.Num("candidates", options.approx_candidate_factor));
  if (options.approx_knn && !args.Str("query-log", "").empty()) {
    // A capture's result digests replay against the exact path; an
    // approximate-tier serve would bake measurably-approximate answers
    // into a file the replay gate treats as ground truth.
    std::cerr << "serve: --knn-approx is incompatible with --query-log\n";
    return 2;
  }
  auto engine_or = MakeEngine(std::move(plan).value(), options, args);
  if (!engine_or.ok()) {
    std::cerr << "error: " << engine_or.status() << "\n";
    return 1;
  }
  QueryEngine& engine = engine_or.value();

  const size_t objects = static_cast<size_t>(args.Num("objects", 1000));
  const size_t requests = static_cast<size_t>(args.Num("requests", 3000));
  const size_t position_count =
      static_cast<size_t>(args.Num("positions", 256));
  const size_t batch = static_cast<size_t>(args.Num("batch", 64));
  const unsigned threads = static_cast<unsigned>(args.Num("threads", 0));
  const double skew = args.Num("skew", 1.0);
  const double move_rate = args.Num("move-rate", 0.0);
  const size_t move_batch = static_cast<size_t>(args.Num("move-batch", 0));
  if (move_rate > 0 && objects == 0) {
    std::cerr << "serve: --move-rate requires --objects > 0\n";
    return 2;
  }
  Rng rng(static_cast<uint64_t>(args.Num("seed", 7)));
  PopulateStore(GenerateObjects(engine.plan(), objects, &rng),
                &engine.index().objects());
  // Builds (or adopts, when a loaded container carried a fresh ANNX
  // section) the embedding tier for the population above; moves ingested
  // during serving keep it fresh through ApplyMoveBatch.
  if (options.approx_knn) engine.index().RefreshApproxKnn();

  // The workload: positions drawn Zipf-skewed from a fixed pool (hot
  // entrances / popular rooms), kinds cycling range / kNN / pt2pt.
  const auto positions =
      GenerateQueryPositions(engine.plan(), position_count, &rng);
  const auto pairs =
      GeneratePositionPairs(engine.plan(), position_count, &rng);
  const ZipfSampler zipf(position_count, skew);
  std::vector<QueryRequest> workload;
  workload.reserve(requests);
  for (size_t q = 0; q < requests; ++q) {
    QueryRequest request;
    switch (q % 3) {
      case 0:
        request.kind = QueryRequest::Kind::kRange;
        request.a = positions[zipf.Sample(&rng)];
        request.radius = 20.0;
        break;
      case 1:
        request.kind = QueryRequest::Kind::kKnn;
        request.a = positions[zipf.Sample(&rng)];
        request.k = 10;
        break;
      default: {
        const auto& [a, b] = pairs[zipf.Sample(&rng)];
        request.kind = QueryRequest::Kind::kDistance;
        request.a = a;
        request.b = b;
        break;
      }
    }
    workload.push_back(request);
  }

  // Observability: full query log / slow-query log / trace sampling, all
  // optional and all off the hot path when unused.
  const std::string query_log = args.Str("query-log", "");
  const double slow_ms = args.Num("slow-ms", 100.0);
  const std::string trace_out = args.Str("trace-out", "");
  const size_t report_every = static_cast<size_t>(args.Num("report", 0));
  if (!query_log.empty() || slow_ms > 0) {
    qlog::QueryLogOptions qopts;
    qopts.path = query_log;
    qopts.slow_threshold_ns = static_cast<uint64_t>(slow_ms * 1e6);
    // The capture context: everything replay needs to rebuild this exact
    // index and object population.
    qopts.context = "plan=" + args.positional[0] +
                    "\nobjects=" + std::to_string(objects) +
                    "\nseed=" + std::to_string(static_cast<uint64_t>(
                                    args.Num("seed", 7))) +
                    "\ncache=" +
                    (options.enable_query_cache ? "on" : "off") +
                    "\nquantum=" + std::to_string(options.cache_quantum) +
                    "\nbatch=" + std::to_string(batch) +
                    "\nmove-rate=" + std::to_string(move_rate) + "\n";
    const Status st = qlog::QueryLog::Global().Enable(qopts);
    if (!st.ok()) {
      std::cerr << "error: " << st << "\n";
      return 1;
    }
  }
  if (!trace_out.empty()) {
    trace::TraceExportOptions topts;
    topts.sample_every = static_cast<uint32_t>(args.Num("trace-sample", 16));
    trace::TraceEventCollector::Global().Enable(topts);
  }

  // The flight recorder (util/timeseries.h) runs whenever it can be
  // useful: always with --record, and for --report so the SLO burn rates
  // have a ring to evaluate. --record hard-fails in a metrics-OFF build
  // (the recording would be empty); --report merely loses its SLO lines.
  const std::string record_path = args.Str("record", "");
  slo::SloConfig slo_config = slo::DefaultSloConfig();
  if (args.Has("slo")) {
    auto parsed = slo::ParseSloSpec(args.Str("slo", ""));
    if (!parsed.ok()) {
      std::cerr << "serve: " << parsed.status() << "\n";
      return 2;
    }
    slo_config = std::move(parsed).value();
  }
  tseries::FlightRecorder& recorder = tseries::FlightRecorder::Global();
  if (!record_path.empty() || report_every > 0) {
    tseries::FlightRecorderOptions fropts;
    fropts.interval_ms = static_cast<uint32_t>(
        args.Num("record-interval-ms", fropts.interval_ms));
    fropts.hotness = &engine.index().hotness();
    fropts.context = "plan=" + args.positional[0] +
                     "\nobjects=" + std::to_string(objects) +
                     "\nbatch=" + std::to_string(batch) +
                     "\ncache=" +
                     (options.enable_query_cache ? "on" : "off") +
                     "\nmove-rate=" + std::to_string(move_rate) + "\n";
    const Status st = recorder.Start(fropts);
    if (!st.ok() && !record_path.empty()) {
      std::cerr << "error: " << st << "\n";
      return 1;
    }
  }

  BatchExecutor executor(engine.index(), threads);
  std::printf(
      "serving %zu requests (skew %.2f over %zu positions) in batches of "
      "%zu on %u threads, cache %s, move rate %.2f\n",
      requests, skew, position_count, batch, executor.thread_count(),
      options.enable_query_cache ? "on" : "off", move_rate);

  // Update ingest: after each query batch, `move_rate` moves per served
  // query fall due and are applied through the observed batched path
  // (ApplyMoveBatch). The move schedule comes from its own generator —
  // independent of the query sampling stream — so the identical mixed
  // workload runs for any cache/thread configuration. Each batch is
  // stably sorted by target partition before submission, so a batch's
  // epoch bumps land as contiguous per-partition runs.
  Rng move_rng(static_cast<uint64_t>(args.Num("seed", 7)) ^
               0x6d6f76657321ull);
  const PartitionSampler move_sampler(engine.plan());
  double move_due = 0.0;
  size_t moves_applied = 0;
  size_t move_batches = 0;
  std::vector<MoveOp> moves;
  size_t served = 0;
  size_t hits = 0;  // non-empty / reachable results, to sanity-check
  size_t batches_run = 0;
  size_t interval_served = 0;
  metrics::RegistrySnapshot interval_base =
      metrics::MetricsRegistry::Global().Snapshot();
  WallTimer interval_timer;
  WallTimer timer;
  for (size_t begin = 0; begin < workload.size(); begin += batch) {
    const size_t n = std::min(batch, workload.size() - begin);
    const auto results = executor.Run(
        std::span<const QueryRequest>(workload.data() + begin, n));
    served += results.size();
    interval_served += results.size();
    ++batches_run;
    for (const QueryResult& result : results) {
      if (!result.ids.empty() || !result.neighbors.empty() ||
          result.distance < kInfDistance) {
        ++hits;
      }
    }
    if (move_rate > 0) {
      move_due += static_cast<double>(n) * move_rate;
      while (move_due >= 1.0) {
        size_t m = static_cast<size_t>(move_due);
        if (move_batch > 0) m = std::min(m, move_batch);
        moves.clear();
        moves.reserve(m);
        for (size_t i = 0; i < m; ++i) {
          const PartitionId target = move_sampler.Sample(&move_rng);
          moves.push_back(MoveOp{
              static_cast<ObjectId>(move_rng.NextIndex(objects)), target,
              RandomPointInPartition(engine.plan().partition(target),
                                     &move_rng)});
        }
        std::stable_sort(moves.begin(), moves.end(),
                         [](const MoveOp& a, const MoveOp& b) {
                           return a.partition < b.partition;
                         });
        const Status st = engine.ApplyMoves(moves);
        if (!st.ok()) {
          std::cerr << "error: move batch failed: " << st << "\n";
          return 1;
        }
        moves_applied += m;
        ++move_batches;
        move_due -= static_cast<double>(m);
      }
    }
    if (report_every > 0 && batches_run % report_every == 0) {
      // Interval report from snapshot deltas: what happened since the
      // last report, not since process start.
      const metrics::RegistrySnapshot now =
          metrics::MetricsRegistry::Global().Snapshot();
      const metrics::RegistrySnapshot delta = now.DeltaSince(interval_base);
      uint64_t cache_hits = 0, cache_misses = 0;
      for (const auto& [name, value] : delta.counters) {
        if (name == "cache.field.hits" || name == "cache.host.hits") {
          cache_hits += value;
        } else if (name == "cache.field.misses" ||
                   name == "cache.host.misses") {
          cache_misses += value;
        }
      }
      double p99_us = 0.0;
      for (const auto& hist : delta.histograms) {
        if (hist.name == "batch.latency_ns") {
          p99_us = hist.Percentile(0.99) / 1e3;
        }
      }
      const double secs = interval_timer.ElapsedMillis() / 1000.0;
      std::printf(
          "interval: %zu queries, %.0f QPS, cache hit %.1f%%, "
          "batch p99 %.0f us\n",
          interval_served,
          secs > 0 ? static_cast<double>(interval_served) / secs : 0.0,
          cache_hits + cache_misses > 0
              ? 100.0 * static_cast<double>(cache_hits) /
                    static_cast<double>(cache_hits + cache_misses)
              : 0.0,
          p99_us);
      if (recorder.running()) {
        // Burn rates over the recorder ring; the gauges double as the
        // admission-control signal (slo.*.burn_fast / burn_slow).
        const slo::SloReport slo_report =
            slo::Evaluate(slo_config, recorder.Snapshot().samples);
        slo::PublishGauges(slo_report);
        slo_report.WriteReport(stdout);
      }
      interval_base = now;
      interval_served = 0;
      interval_timer.Restart();
    }
  }
  const double ms = timer.ElapsedMillis();
  if (recorder.running()) {
    recorder.Stop();  // folds the final partial interval into the ring
    if (!record_path.empty()) {
      const Status st = recorder.Dump(record_path);
      if (!st.ok()) {
        std::cerr << "error: " << st << "\n";
        return 1;
      }
      std::printf("recording: %llu intervals (%llu evicted) -> %s\n",
                  static_cast<unsigned long long>(recorder.intervals()),
                  static_cast<unsigned long long>(recorder.evictions()),
                  record_path.c_str());
    }
  }
  std::printf("served %zu requests in %.1f ms: %.0f QPS (%zu non-empty)\n",
              served, ms, served / (ms / 1000.0), hits);
  if (moves_applied > 0) {
    std::printf("applied %zu object moves in %zu ingest batches\n",
                moves_applied, move_batches);
  }

  if (!trace_out.empty()) {
    auto& collector = trace::TraceEventCollector::Global();
    const size_t kept = collector.trace_count();
    const Status st = collector.ExportFile(trace_out);
    if (!st.ok()) {
      std::cerr << "error: " << st << "\n";
      return 1;
    }
    std::printf("trace: %zu sampled query timelines -> %s\n", kept,
                trace_out.c_str());
    collector.Disable();
  }
  if (qlog::QueryLog::Global().enabled()) {
    qlog::QueryLog::Global().Disable();  // drains buffers, writes trailer
    if (!query_log.empty()) {
      std::printf("query log: %llu records -> %s\n",
                  static_cast<unsigned long long>(
                      qlog::QueryLog::Global().records_written()),
                  query_log.c_str());
    }
  }

  if (const QueryCache* cache = engine.index().query_cache()) {
    const CacheStats field = cache->FieldStats();
    const CacheStats host = cache->HostStats();
    const auto rate = [](const CacheStats& s) {
      const uint64_t total = s.hits + s.misses;
      return total == 0 ? 0.0 : 100.0 * static_cast<double>(s.hits) /
                                    static_cast<double>(total);
    };
    std::printf(
        "field cache: %llu hits / %llu misses (%.1f%% hit rate), "
        "%llu entries, %llu bytes\n",
        static_cast<unsigned long long>(field.hits),
        static_cast<unsigned long long>(field.misses), rate(field),
        static_cast<unsigned long long>(field.entries),
        static_cast<unsigned long long>(field.bytes));
    std::printf(
        "host cache:  %llu hits / %llu misses (%.1f%% hit rate), "
        "%llu entries, %llu bytes\n",
        static_cast<unsigned long long>(host.hits),
        static_cast<unsigned long long>(host.misses), rate(host),
        static_cast<unsigned long long>(host.entries),
        static_cast<unsigned long long>(host.bytes));
    const CacheStats result = cache->ResultStats();
    std::printf(
        "result cache: %llu hits / %llu misses (%.1f%% hit rate), "
        "%llu entries, %llu bytes, %llu repairs, %llu epoch rejects\n",
        static_cast<unsigned long long>(result.hits),
        static_cast<unsigned long long>(result.misses), rate(result),
        static_cast<unsigned long long>(result.entries),
        static_cast<unsigned long long>(result.bytes),
        static_cast<unsigned long long>(cache->Repairs()),
        static_cast<unsigned long long>(cache->EpochRejects()));
  }
  std::printf("\n");
  metrics::MetricsRegistry::Global().Snapshot().WriteReport(stdout);
  return 0;
}

/// Replays a binary query-log capture: rebuilds the index and object
/// population from the capture's context block (plan path, object seed,
/// cache settings — all overridable by flags), re-executes the workload
/// preserving batch boundaries and arrival order, and verifies every
/// result digest bitwise. Exit 0 iff every record matched.
int CmdReplay(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto capture = qlog::ReadQueryLogCapture(args.positional[0]);
  if (!capture.ok()) {
    std::cerr << "error: " << capture.status() << "\n";
    return 1;
  }
  const auto context = capture->ContextMap();
  const auto ctx = [&](const std::string& key, const std::string& fallback) {
    const auto it = context.find(key);
    return it == context.end() ? fallback : it->second;
  };
  const std::string plan_path = args.Str("plan", ctx("plan", ""));
  if (plan_path.empty()) {
    std::cerr << "replay: capture has no plan= context; pass --plan\n";
    return 1;
  }
  auto plan = LoadOrFail(plan_path);
  if (!plan.ok()) return 1;

  IndexOptions options;
  options.enable_query_cache =
      args.Str("cache", ctx("cache", "on")) != "off";
  options.cache_quantum = args.Num(
      "quantum", context.count("quantum") ? std::stod(context.at("quantum"))
                                          : options.cache_quantum);
  auto engine_or = MakeEngine(std::move(plan).value(), options, args);
  if (!engine_or.ok()) {
    std::cerr << "error: " << engine_or.status() << "\n";
    return 1;
  }
  QueryEngine& engine = engine_or.value();
  const size_t objects =
      static_cast<size_t>(args.Num("objects", std::stod(ctx("objects", "1000"))));
  Rng rng(static_cast<uint64_t>(args.Num("seed", std::stod(ctx("seed", "7")))));
  PopulateStore(GenerateObjects(engine.plan(), objects, &rng),
                &engine.index().objects());

  std::printf("replaying %s: %zu records against %s (%zu objects, cache %s)\n",
              args.positional[0].c_str(), capture->records.size(),
              plan_path.c_str(), objects,
              options.enable_query_cache ? "on" : "off");
  ReplayOptions ropts;
  ropts.threads = static_cast<unsigned>(args.Num("threads", 0));
  ropts.speed = args.Num("speed", 0.0);
  const auto report = ReplayWorkload(engine.index(), *capture, ropts);
  if (!report.ok()) {
    std::cerr << "error: " << report.status() << "\n";
    return 1;
  }
  WriteReplayReport(*report, stdout);
  return report->AllMatched() ? 0 : 1;
}

/// Renders one or more flight recordings (indoor_tool serve --record,
/// bench_query_throughput --record) to a single self-contained HTML
/// dashboard. Pure file processing — works in metrics-OFF builds too.
int CmdDashboard(const Args& args) {
  if (args.positional.empty()) return Usage();
  dash::DashboardOptions options;
  if (args.Has("slo")) {
    auto parsed = slo::ParseSloSpec(args.Str("slo", ""));
    if (!parsed.ok()) {
      std::cerr << "dashboard: " << parsed.status() << "\n";
      return 2;
    }
    options.slo = std::move(parsed).value();
  }
  options.title = args.Str("title", options.title);
  std::vector<tseries::Recording> recordings;
  recordings.reserve(args.positional.size());
  for (const std::string& path : args.positional) {
    auto recording = tseries::ReadRecording(path);
    if (!recording.ok()) {
      std::cerr << "error: " << recording.status() << "\n";
      return 1;
    }
    recordings.push_back(std::move(recording).value());
  }
  const std::string out = args.Str("out", "dashboard.html");
  const Status st = dash::WriteDashboardFile(recordings, out, options);
  if (!st.ok()) {
    std::cerr << "error: " << st << "\n";
    return 1;
  }
  size_t intervals = 0;
  for (const tseries::Recording& recording : recordings) {
    intervals += recording.samples.size();
  }
  std::printf("dashboard: %zu recording%s (%zu intervals) -> %s\n",
              recordings.size(), recordings.size() == 1 ? "" : "s",
              intervals, out.c_str());
  return 0;
}

int CmdMatrix(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  auto plan = LoadOrFail(args.positional[0]);
  if (!plan.ok()) return 1;
  const DistanceGraph graph(plan.value());
  const unsigned threads = static_cast<unsigned>(args.Num("threads", 1));
  WallTimer timer;
  const DistanceMatrix matrix(graph, threads);
  const double ms = timer.ElapsedMillis();
  std::printf("threads: %u\n", ResolveThreadCount(threads));
  const Status st =
      SaveDistanceMatrix(matrix, plan.value(), args.positional[1]);
  if (!st.ok()) {
    std::cerr << "error: " << st << "\n";
    return 1;
  }
  std::printf("computed %zux%zu matrix in %.1f ms, wrote %s (%.2f MB)\n",
              matrix.door_count(), matrix.door_count(), ms,
              args.positional[1].c_str(),
              matrix.MemoryBytes() / (1024.0 * 1024.0));
  // Verify the round trip.
  const auto loaded = LoadDistanceMatrix(plan.value(), args.positional[1]);
  if (!loaded.ok()) {
    std::cerr << "round-trip failed: " << loaded.status() << "\n";
    return 1;
  }
  std::printf("round-trip verified\n");
  return 0;
}

/// Honors --metrics-json FILE: dumps the registry snapshot as JSON to FILE
/// ("-" = stdout) after the command has run.
int DumpMetricsJson(const Args& args) {
  const std::string path = args.Str("metrics-json", "");
  if (path.empty()) return 0;
  const std::string json =
      metrics::MetricsRegistry::Global().Snapshot().ToJson();
  if (path == "-") {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Args args = Parse(argc, argv);
  int rc = -1;
  if (cmd == "gen") rc = CmdGen(args);
  else if (cmd == "info") rc = CmdInfo(args);
  else if (cmd == "validate") rc = CmdValidate(args);
  else if (cmd == "distance") rc = CmdDistance(args, /*with_path=*/false);
  else if (cmd == "path") rc = CmdDistance(args, /*with_path=*/true);
  else if (cmd == "range") rc = CmdQuery(args, /*knn=*/false);
  else if (cmd == "knn") rc = CmdQuery(args, /*knn=*/true);
  else if (cmd == "matrix") rc = CmdMatrix(args);
  else if (cmd == "build") rc = CmdBuild(args);
  else if (cmd == "stats") rc = CmdStats(args);
  else if (cmd == "serve") rc = CmdServe(args);
  else if (cmd == "replay") rc = CmdReplay(args);
  else if (cmd == "dashboard") rc = CmdDashboard(args);
  if (rc < 0) return Usage();
  const int json_rc = DumpMetricsJson(args);
  return rc != 0 ? rc : json_rc;
}
