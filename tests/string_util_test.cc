#include "util/string_util.h"

#include <gtest/gtest.h>

namespace indoor {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a b c", ' ');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("partition x", "partition"));
  EXPECT_FALSE(StartsWith("part", "partition"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble(" 7 ", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(ParseUint32Test, ParsesValid) {
  uint32_t v = 0;
  EXPECT_TRUE(ParseUint32("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint32("4294967295", &v));
  EXPECT_EQ(v, 4294967295u);
}

TEST(ParseUint32Test, RejectsInvalid) {
  uint32_t v = 0;
  EXPECT_FALSE(ParseUint32("", &v));
  EXPECT_FALSE(ParseUint32("-1", &v));
  EXPECT_FALSE(ParseUint32("4294967296", &v));  // overflow
  EXPECT_FALSE(ParseUint32("12.5", &v));
  EXPECT_FALSE(ParseUint32("abc", &v));
}

}  // namespace
}  // namespace indoor
