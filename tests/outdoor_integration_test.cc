// Integrated outdoor/indoor distances (the paper's §VII third future-work
// item): because all of outdoor space is itself a partition (paper fn. 1),
// the same graph machinery supports paths that interweave indoor and
// outdoor legs — e.g. leaving building A, crossing a courtyard, and
// entering building B — with no special casing.

#include <gtest/gtest.h>

#include "core/distance/shortest_path.h"
#include "core/query/query_engine.h"
#include "indoor/floor_plan_builder.h"

namespace indoor {
namespace {

/// Two single-room buildings on a shared courtyard:
///
///   building A (0..6, 0..6)   courtyard   building B (20..26, 0..6)
///        door dA at (6, 3)  <--------->  door dB at (20, 3)
struct Campus {
  Campus() {
    FloorPlanBuilder b;
    courtyard = b.AddPartition("courtyard", PartitionKind::kOutdoor, 0,
                               Rect(-2, -2, 28, 8));
    building_a = b.AddPartition("building_a", PartitionKind::kRoom, 1,
                                Rect(0, 0, 6, 6));
    building_b = b.AddPartition("building_b", PartitionKind::kRoom, 1,
                                Rect(20, 0, 26, 6));
    door_a = b.AddBidirectionalDoor("dA", Segment({6, 2.8}, {6, 3.2}),
                                    building_a, courtyard);
    door_b = b.AddBidirectionalDoor("dB", Segment({20, 2.8}, {20, 3.2}),
                                    building_b, courtyard);
    auto plan = std::move(b).Build();
    EXPECT_TRUE(plan.ok()) << plan.status();
    engine = std::make_unique<QueryEngine>(std::move(plan).value());
  }

  PartitionId courtyard, building_a, building_b;
  DoorId door_a, door_b;
  std::unique_ptr<QueryEngine> engine;
};

TEST(OutdoorIntegrationTest, CrossBuildingDistanceInterweaves) {
  Campus campus;
  const Point in_a(1, 3), in_b(25, 3);
  // Walk: (1,3) -> dA (5 m) -> across the courtyard (14 m) -> dB -> (25,3)
  // (5 m).
  const double d = campus.engine->Distance(in_a, in_b);
  EXPECT_NEAR(d, 5.0 + 14.0 + 5.0, 1e-9);
}

TEST(OutdoorIntegrationTest, PathListsOutdoorLeg) {
  Campus campus;
  const IndoorPath path =
      campus.engine->ShortestPath({1, 3}, {25, 3});
  ASSERT_TRUE(path.found());
  EXPECT_EQ(path.doors,
            (std::vector<DoorId>{campus.door_a, campus.door_b}));
  EXPECT_EQ(path.partitions,
            (std::vector<PartitionId>{campus.building_a, campus.courtyard,
                                      campus.building_b}));
}

TEST(OutdoorIntegrationTest, IndoorToOutdoorPosition) {
  Campus campus;
  const Point in_a(1, 3), outside(13, 6);  // mid-courtyard
  const double d = campus.engine->Distance(in_a, outside);
  const double expected = 5.0 + Distance(Point(6, 3), outside);
  EXPECT_NEAR(d, expected, 1e-9);
  // And outdoor -> indoor, the reverse, is symmetric here.
  EXPECT_NEAR(campus.engine->Distance(outside, in_a), expected, 1e-9);
}

TEST(OutdoorIntegrationTest, QueriesSpanBuildings) {
  Campus campus;
  const ObjectId in_b =
      campus.engine->AddObject(campus.building_b, {25, 3}).value();
  const ObjectId outside =
      campus.engine->AddObject(campus.courtyard, {13, 3}).value();
  // From inside building A, the courtyard object is nearer than the one in
  // building B.
  const auto nearest = campus.engine->Nearest({1, 3}, 2);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_EQ(nearest[0].id, outside);
  EXPECT_EQ(nearest[1].id, in_b);
  // Range with a radius that covers the courtyard object only.
  EXPECT_EQ(campus.engine->Range({1, 3}, 13.0),
            std::vector<ObjectId>{outside});
}

TEST(OutdoorIntegrationTest, OutdoorObjectsLiveInTheOutdoorBucket) {
  Campus campus;
  ASSERT_TRUE(
      campus.engine->AddObject(campus.courtyard, {13, 3}).ok());
  EXPECT_EQ(
      campus.engine->index().objects().bucket(campus.courtyard).size(), 1u);
}

TEST(OutdoorIntegrationTest, LongWayAroundWhenDoorIsOneWay) {
  // Replace dB with a one-way (exit-only) door: B is enterable only
  // through a second door dC on its far side.
  FloorPlanBuilder b;
  const PartitionId courtyard = b.AddPartition(
      "courtyard", PartitionKind::kOutdoor, 0, Rect(-2, -2, 32, 8));
  const PartitionId room = b.AddPartition(
      "building_b", PartitionKind::kRoom, 1, Rect(20, 0, 26, 6));
  b.AddUnidirectionalDoor("exit_only", Segment({20, 2.8}, {20, 3.2}), room,
                          courtyard);
  const DoorId entry =
      b.AddBidirectionalDoor("dC", Segment({26, 2.8}, {26, 3.2}), room,
                             courtyard);
  auto plan = std::move(b).Build();
  ASSERT_TRUE(plan.ok());
  QueryEngine engine(std::move(plan).value());
  // From the courtyard just outside the exit-only door, entering must
  // round the building to dC.
  const IndoorPath path = engine.ShortestPath({19, 3}, {21, 3});
  ASSERT_TRUE(path.found());
  EXPECT_EQ(path.doors, std::vector<DoorId>{entry});
  EXPECT_GT(path.length, 8.0);  // around the building, not 2 m through
}

}  // namespace
}  // namespace indoor
