// OwnedSpan move semantics: moves must re-anchor owned storage, carry
// borrowed pointers over unchanged, and leave a span intact on self-move
// (index structures hold payloads through OwnedSpan, so a silently
// emptied span corrupts whatever structure owns it).

#include "util/owned_span.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace indoor {
namespace {

TEST(OwnedSpanTest, OwnMoveReanchorsData) {
  OwnedSpan<int> a = OwnedSpan<int>::Own({1, 2, 3});
  OwnedSpan<int> b = std::move(a);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.owned());
  EXPECT_EQ(b.data(), &b[0]);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[2], 3);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.data(), nullptr);
}

TEST(OwnedSpanTest, BorrowMoveKeepsPointer) {
  const std::vector<int> backing = {4, 5};
  OwnedSpan<int> a = OwnedSpan<int>::Borrow(backing.data(), backing.size());
  OwnedSpan<int> b = std::move(a);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_FALSE(b.owned());
  EXPECT_EQ(b.data(), backing.data());
  EXPECT_TRUE(a.empty());
}

TEST(OwnedSpanTest, SelfMoveAssignmentIsANoOp) {
  OwnedSpan<int> owned = OwnedSpan<int>::Own({7, 8, 9});
  OwnedSpan<int>& owned_alias = owned;
  owned = std::move(owned_alias);
  ASSERT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned[1], 8);

  const std::vector<int> backing = {6};
  OwnedSpan<int> borrowed =
      OwnedSpan<int>::Borrow(backing.data(), backing.size());
  OwnedSpan<int>& borrowed_alias = borrowed;
  borrowed = std::move(borrowed_alias);
  ASSERT_EQ(borrowed.size(), 1u);
  EXPECT_EQ(borrowed.data(), backing.data());
}

}  // namespace
}  // namespace indoor
