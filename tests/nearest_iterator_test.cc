#include "core/query/nearest_iterator.h"

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "indoor/floor_plan_builder.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class NearestIteratorTest : public ::testing::Test {
 protected:
  NearestIteratorTest()
      : plan_(MakeRunningExamplePlan(&ids_)), index_(plan_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
};

TEST_F(NearestIteratorTest, StreamsAllObjectsInDistanceOrder) {
  Rng rng(131);
  PopulateStore(GenerateObjects(plan_, 40, &rng), &index_.objects());
  NearestIterator it(index_, {6, 5}, /*initial_k=*/4);
  double prev = -1;
  size_t count = 0;
  while (it.HasNext()) {
    const Neighbor nb = it.Next();
    EXPECT_GE(nb.distance, prev);
    prev = nb.distance;
    ++count;
  }
  EXPECT_EQ(count, 40u);
}

TEST_F(NearestIteratorTest, MatchesKnnPrefix) {
  Rng rng(137);
  PopulateStore(GenerateObjects(plan_, 30, &rng), &index_.objects());
  const Point q(2, 2);
  const auto oracle =
      LinearScanKnn(index_.distance_context(), index_.objects(), q, 30);
  NearestIterator it(index_, q, 2);
  for (const Neighbor& expect : oracle) {
    ASSERT_TRUE(it.HasNext());
    EXPECT_NEAR(it.Next().distance, expect.distance, 1e-6);
  }
  EXPECT_FALSE(it.HasNext());
}

TEST_F(NearestIteratorTest, EmptyStore) {
  NearestIterator it(index_, {2, 2});
  EXPECT_FALSE(it.HasNext());
  EXPECT_EQ(it.yielded(), 0u);
}

TEST_F(NearestIteratorTest, OutsideQueryYieldsNothing) {
  Rng rng(139);
  PopulateStore(GenerateObjects(plan_, 10, &rng), &index_.objects());
  NearestIterator it(index_, {1000, 1000});
  EXPECT_FALSE(it.HasNext());
}

TEST_F(NearestIteratorTest, PartialConsumptionIsCheap) {
  Rng rng(149);
  PopulateStore(GenerateObjects(plan_, 500, &rng), &index_.objects());
  NearestIterator it(index_, {6, 5}, 3);
  // Consume only the first few; no requirement to touch all 500.
  ASSERT_TRUE(it.HasNext());
  const Neighbor first = it.Next();
  ASSERT_TRUE(it.HasNext());
  const Neighbor second = it.Next();
  EXPECT_LE(first.distance, second.distance);
  EXPECT_EQ(it.yielded(), 2u);
}

TEST_F(NearestIteratorTest, InitialKZeroIsSafe) {
  Rng rng(151);
  PopulateStore(GenerateObjects(plan_, 5, &rng), &index_.objects());
  NearestIterator it(index_, {6, 5}, 0);
  size_t count = 0;
  while (it.HasNext()) {
    it.Next();
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(NearestIteratorGeneratedTest, UnreachablePocketsAreSkipped) {
  // A one-way dead end: objects inside are reachable, the query can be
  // placed so that some objects are not.
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  b.AddUnidirectionalDoor("ow", Segment({4, 1.8}, {4, 2.2}), c, a);
  auto plan = std::move(b).Build();
  ASSERT_TRUE(plan.ok());
  IndexFramework index(plan.value());
  ASSERT_TRUE(index.objects().Insert(a, {1, 1}).ok());
  ASSERT_TRUE(index.objects().Insert(c, {6, 1}).ok());  // unreachable from a
  NearestIterator it(index, {2, 2});
  ASSERT_TRUE(it.HasNext());
  EXPECT_EQ(it.Next().id, 0u);
  EXPECT_FALSE(it.HasNext());  // the object in c can never be reached
}

}  // namespace
}  // namespace indoor
