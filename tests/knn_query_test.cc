// Algorithm 6 (kNN query) against the linear-scan oracle.

#include "core/query/knn_query.h"

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

/// Tie-tolerant comparison: distances must match pairwise; ids must match
/// except among equal-distance neighbors.
void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& expect) {
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, expect[i].distance, 1e-6) << "rank " << i;
  }
}

class KnnQueryTest : public ::testing::Test {
 protected:
  KnnQueryTest() : plan_(MakeRunningExamplePlan(&ids_)), index_(plan_) {}

  ObjectId Add(PartitionId v, Point p) {
    auto id = index_.objects().Insert(v, p);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value();
  }

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
};

TEST_F(KnnQueryTest, SingleNearestInHostPartition) {
  const ObjectId near = Add(ids_.v11, {1.5, 1.5});
  Add(ids_.v11, {3.5, 3.5});
  const auto result = KnnQuery(index_, {1, 1}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, near);
  EXPECT_NEAR(result[0].distance, std::sqrt(0.5), 1e-9);
}

TEST_F(KnnQueryTest, NearestAcrossDoorBeatsFarSameRoom) {
  // Object through the door is closer (walking) than the same-room one.
  const ObjectId through_door = Add(ids_.v10, {2, 4.5});  // 2.5 m away
  Add(ids_.v11, {3.9, 0.1});  // ~4.2 m away inside the room
  const auto result = KnnQuery(index_, {2, 2}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, through_door);
}

TEST_F(KnnQueryTest, KLargerThanObjectCountReturnsAll) {
  Add(ids_.v11, {1, 1});
  Add(ids_.v13, {9, 2});
  const auto result = KnnQuery(index_, {2, 2}, 10);
  EXPECT_EQ(result.size(), 2u);
}

TEST_F(KnnQueryTest, ResultsSortedAscending) {
  Rng rng(3);
  PopulateStore(GenerateObjects(plan_, 30, &rng), &index_.objects());
  const auto result = KnnQuery(index_, {6, 5}, 10);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST_F(KnnQueryTest, MatchesOracleOnRunningExample) {
  Rng rng(17);
  PopulateStore(GenerateObjects(plan_, 80, &rng), &index_.objects());
  const DistanceContext ctx = index_.distance_context();
  for (int trial = 0; trial < 15; ++trial) {
    const Point q = RandomIndoorPosition(plan_, &rng);
    for (size_t k : {1u, 3u, 10u, 40u}) {
      const auto expect = LinearScanKnn(ctx, index_.objects(), q, k);
      ExpectSameNeighbors(KnnQuery(index_, q, k), expect);
      ExpectSameNeighbors(KnnQuery(index_, q, k, {.use_index_matrix = false}),
                          expect);
    }
  }
}

TEST_F(KnnQueryTest, KnnPrefixProperty) {
  Rng rng(19);
  PopulateStore(GenerateObjects(plan_, 50, &rng), &index_.objects());
  const Point q(6, 5);
  const auto k10 = KnnQuery(index_, q, 10);
  const auto k5 = KnnQuery(index_, q, 5);
  ASSERT_EQ(k5.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(k5[i].distance, k10[i].distance, 1e-9);
  }
}

TEST_F(KnnQueryTest, EmptyStoreYieldsEmptyResult) {
  EXPECT_TRUE(KnnQuery(index_, {1, 1}, 5).empty());
}

TEST_F(KnnQueryTest, OutsideQueryYieldsEmptyResult) {
  Add(ids_.v11, {1, 1});
  EXPECT_TRUE(KnnQuery(index_, {1000, 1000}, 5).empty());
}

TEST_F(KnnQueryTest, KZeroYieldsEmptyResult) {
  Add(ids_.v11, {1, 1});
  EXPECT_TRUE(KnnQuery(index_, {1, 1}, 0).empty());
}

TEST_F(KnnQueryTest, NoDuplicateObjectsInResult) {
  // v21 is reachable through two doors (d21, d24): its objects are offered
  // twice and must be deduplicated.
  Add(ids_.v21, {30, 4});
  Add(ids_.v21, {31, 6});
  const auto result = KnnQuery(index_, {21, 1}, 5);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_NE(result[0].id, result[1].id);
}

TEST(KnnQueryObstacleTest, NearestUsesLeaveAndReenterRoute) {
  ObstacleExampleIds ids;
  FloorPlan plan = MakeObstacleExamplePlan(&ids);
  IndexFramework index(plan);
  const auto obj = index.objects().Insert(ids.room2, ids.q);
  ASSERT_TRUE(obj.ok());
  const auto result = KnnQuery(index, ids.p, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_NEAR(result[0].distance, 12.0, 1e-9);  // via room 1, not the weave
}

TEST(KnnQueryGeneratedTest, MatchesOracleOnGeneratedBuilding) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 12;
  config.seed = 23;
  FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(29);
  PopulateStore(GenerateObjects(plan, 250, &rng), &index.objects());
  const DistanceContext ctx = index.distance_context();
  for (int trial = 0; trial < 10; ++trial) {
    const Point q = RandomIndoorPosition(plan, &rng);
    for (size_t k : {1u, 5u, 25u, 100u}) {
      const auto expect = LinearScanKnn(ctx, index.objects(), q, k);
      ExpectSameNeighbors(KnnQuery(index, q, k), expect);
      ExpectSameNeighbors(
          KnnQuery(index, q, k, {.use_index_matrix = false}), expect);
    }
  }
}

}  // namespace
}  // namespace indoor
