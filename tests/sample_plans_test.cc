#include "indoor/sample_plans.h"

#include <gtest/gtest.h>

namespace indoor {
namespace {

TEST(RunningExamplePlanTest, BuildsAndExposesIds) {
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  EXPECT_EQ(plan.partition(ids.v0).kind(), PartitionKind::kOutdoor);
  EXPECT_EQ(plan.door(ids.d1).name(), "d1");
  EXPECT_EQ(plan.door(ids.d24).name(), "d24");
}

TEST(RunningExamplePlanTest, ObstacleBlocksD22D24LineOfSight) {
  // Paper §III-C1: ||d22, d24||_v20 is not a Euclidean distance because
  // entities block the line of sight.
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  const Partition& v20 = plan.partition(ids.v20);
  const Point a = plan.door(ids.d22).Midpoint();
  const Point b = plan.door(ids.d24).Midpoint();
  EXPECT_FALSE(v20.footprint().Visible(a, b));
  EXPECT_GT(v20.IntraDistance(a, b), Distance(a, b) + 1e-9);
}

TEST(RunningExamplePlanTest, UnblockedPairsRemainEuclidean) {
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  const Partition& v20 = plan.partition(ids.v20);
  const Point a = plan.door(ids.d2).Midpoint();
  const Point b = plan.door(ids.d22).Midpoint();
  EXPECT_NEAR(v20.IntraDistance(a, b), Distance(a, b), 1e-9);
}

TEST(RunningExamplePlanTest, WorksWithoutIdsOut) {
  const FloorPlan plan = MakeRunningExamplePlan();
  EXPECT_EQ(plan.partition_count(), 11u);
}

TEST(ObstacleExamplePlanTest, IntraRoomPathIsMuchLongerThanViaRoom1) {
  ObstacleExampleIds ids;
  const FloorPlan plan = MakeObstacleExamplePlan(&ids);
  const Partition& room2 = plan.partition(ids.room2);
  const Partition& room1 = plan.partition(ids.room1);

  const double intra = room2.IntraDistance(ids.p, ids.q);
  ASSERT_NE(intra, kInfDistance);  // the weave exists (paper's C1,C2,C3)

  const Point d7 = plan.door(ids.d7).Midpoint();
  const Point d8 = plan.door(ids.d8).Midpoint();
  const double via_room1 = room2.IntraDistance(ids.p, d7) +
                           room1.IntraDistance(d7, d8) +
                           room2.IntraDistance(d8, ids.q);
  // Leaving room 2 and returning through room 1 is the shorter route,
  // which is why query processing must re-search the host partition.
  EXPECT_LT(via_room1, intra);
}

TEST(ObstacleExamplePlanTest, PAndQAreInsideRoom2FreeSpace) {
  ObstacleExampleIds ids;
  const FloorPlan plan = MakeObstacleExamplePlan(&ids);
  EXPECT_TRUE(plan.partition(ids.room2).Contains(ids.p));
  EXPECT_TRUE(plan.partition(ids.room2).Contains(ids.q));
}

TEST(ObstacleExamplePlanTest, FourObstacles) {
  ObstacleExampleIds ids;
  const FloorPlan plan = MakeObstacleExamplePlan(&ids);
  EXPECT_EQ(plan.partition(ids.room2).footprint().obstacles().size(), 4u);
  EXPECT_FALSE(plan.partition(ids.room1).footprint().HasObstacles());
}

}  // namespace
}  // namespace indoor
