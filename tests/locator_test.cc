#include "core/model/locator.h"

#include <gtest/gtest.h>

#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class LocatorTest : public ::testing::Test {
 protected:
  LocatorTest()
      : plan_(MakeRunningExamplePlan(&ids_)), locator_(plan_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  PartitionLocator locator_;
};

TEST_F(LocatorTest, LocatesRoomInterior) {
  const auto host = locator_.GetHostPartition({2, 2});
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host.value(), ids_.v11);
}

TEST_F(LocatorTest, LocatesHallway) {
  const auto host = locator_.GetHostPartition({6, 5});
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host.value(), ids_.v10);
}

TEST_F(LocatorTest, IndoorBeatsOutdoorEverywhere) {
  // The outdoor footprint covers the whole frame; indoor positions must
  // still resolve to their rooms.
  const auto host = locator_.GetHostPartition({30, 4});
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host.value(), ids_.v21);
}

TEST_F(LocatorTest, OutdoorPositionsFallBackToOutdoor) {
  const auto host = locator_.GetHostPartition({-4, -4});
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host.value(), ids_.v0);
}

TEST_F(LocatorTest, PositionOutsideEverythingIsNotFound) {
  const auto host = locator_.GetHostPartition({1000, 1000});
  ASSERT_FALSE(host.ok());
  EXPECT_EQ(host.status().code(), StatusCode::kNotFound);
}

TEST_F(LocatorTest, PositionInsideObstacleIsNotInThePartition) {
  // (24, 4) is inside v20's obstacle -> free-space containment fails, so
  // the locator falls back to the outdoor partition.
  const auto host = locator_.GetHostPartition({24, 4});
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host.value(), ids_.v0);
}

TEST_F(LocatorTest, DistVToTouchingDoor) {
  // From (2, 2) in v11 to d11 at (2, 4): 2 m.
  EXPECT_NEAR(locator_.DistV(ids_.v11, {2, 2}, ids_.d11), 2.0, 1e-9);
}

TEST_F(LocatorTest, DistVInfinityForNonTouchingDoor) {
  EXPECT_EQ(locator_.DistV(ids_.v11, {2, 2}, ids_.d13), kInfDistance);
}

TEST_F(LocatorTest, DistVResolvesHostInternally) {
  EXPECT_NEAR(locator_.DistV(Point{2, 2}, ids_.d11), 2.0, 1e-9);
  EXPECT_EQ(locator_.DistV(Point{1000, 1000}, ids_.d11), kInfDistance);
}

TEST_F(LocatorTest, DistVUsesObstructedIntraDistance) {
  // In v20, a position behind the obstacle relative to d21.
  const Point p(24.5, 7.6);  // above the obstacle
  const double direct = Distance(p, plan_.door(ids_.d21).Midpoint());
  const double dist = locator_.DistV(ids_.v20, p, ids_.d21);
  EXPECT_GT(dist, direct + 1e-9);  // must detour around the obstacle
}

TEST_F(LocatorTest, BoundaryPointResolvesDeterministically) {
  // A point on the shared wall between v11 and v10: the smaller partition
  // wins (v11 area 16 < v10 area 24); repeated calls agree.
  const auto a = locator_.GetHostPartition({2, 4});
  const auto b = locator_.GetHostPartition({2, 4});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value(), ids_.v11);
}

}  // namespace
}  // namespace indoor
