// Thread-safety of the read path: every query/distance API is const over
// the index structures, so concurrent readers must be safe. Also covers
// the parallel distance-matrix builder.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "baseline/linear_scan.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"

namespace indoor {
namespace {

TEST(ParallelBuildTest, ParallelMatrixEqualsSequential) {
  BuildingConfig config;
  config.floors = 4;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.3;
  config.seed = 191;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  const DistanceMatrix sequential(graph, /*threads=*/1);
  const DistanceMatrix parallel(graph, /*threads=*/4);
  const DistanceMatrix autodetect(graph, /*threads=*/0);
  ASSERT_EQ(parallel.door_count(), sequential.door_count());
  for (DoorId a = 0; a < plan.door_count(); ++a) {
    for (DoorId b = 0; b < plan.door_count(); ++b) {
      EXPECT_EQ(parallel.At(a, b), sequential.At(a, b));
      EXPECT_EQ(autodetect.At(a, b), sequential.At(a, b));
    }
  }
}

TEST(ConcurrencyTest, ParallelReadersAgreeWithSequentialResults) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 10;
  config.seed = 193;
  const FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(197);
  PopulateStore(GenerateObjects(plan, 500, &rng), &index.objects());
  const auto queries = GenerateQueryPositions(plan, 64, &rng);

  // Sequential reference answers.
  std::vector<std::vector<ObjectId>> expect_range(queries.size());
  std::vector<std::vector<Neighbor>> expect_knn(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expect_range[i] = RangeQuery(index, queries[i], 25.0);
    expect_knn[i] = KnnQuery(index, queries[i], 10);
  }

  std::atomic<size_t> next{0};
  std::atomic<int> failures{0};
  auto reader = [&] {
    for (size_t i = next++; i < queries.size(); i = next++) {
      if (RangeQuery(index, queries[i], 25.0) != expect_range[i]) {
        ++failures;
      }
      const auto knn = KnnQuery(index, queries[i], 10);
      if (knn.size() != expect_knn[i].size()) {
        ++failures;
        continue;
      }
      for (size_t j = 0; j < knn.size(); ++j) {
        if (std::fabs(knn[j].distance - expect_knn[i][j].distance) >
            1e-12) {
          ++failures;
        }
      }
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) pool.emplace_back(reader);
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// The acceptance stress test: 8 reader threads hammer range, kNN, pt2pt
// distance, and window queries against ONE shared immutable index, on a
// building with room-to-room doors, one-way doors, and obstacles; every
// answer is checked against the sequential linear-scan oracle (range,
// kNN) or the sequential result of the same call (distance, window).
TEST(ConcurrencyTest, EightThreadStressAgainstLinearScanOracle) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 12;
  config.room_to_room_doors = 0.4;
  config.one_way_fraction = 0.3;
  config.obstacle_probability = 0.3;
  config.seed = 227;
  const FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(229);
  PopulateStore(GenerateObjects(plan, 400, &rng), &index.objects());
  const auto queries = GenerateQueryPositions(plan, 48, &rng);
  const auto pairs = GeneratePositionPairs(plan, 48, &rng);
  const DistanceContext ctx = index.distance_context();
  constexpr double kRadius = 20.0;
  constexpr size_t kK = 10;

  // Sequential oracle answers.
  std::vector<std::vector<ObjectId>> oracle_range(queries.size());
  std::vector<std::vector<Neighbor>> oracle_knn(queries.size());
  std::vector<double> oracle_dist(pairs.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    oracle_range[i] = LinearScanRange(ctx, index.objects(), queries[i],
                                      kRadius);
    oracle_knn[i] = LinearScanKnn(ctx, index.objects(), queries[i], kK);
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    oracle_dist[i] =
        Pt2PtDistanceVirtual(ctx, pairs[i].first, pairs[i].second);
  }

  std::atomic<size_t> next{0};
  std::atomic<int> failures{0};
  auto reader = [&] {
    for (size_t i = next++; i < queries.size(); i = next++) {
      if (RangeQuery(index, queries[i], kRadius) != oracle_range[i]) {
        ++failures;
      }
      const auto knn = KnnQuery(index, queries[i], kK);
      if (knn.size() != oracle_knn[i].size()) {
        ++failures;
      } else {
        for (size_t j = 0; j < knn.size(); ++j) {
          // Ties may reorder ids; distances must match the oracle's.
          if (std::fabs(knn[j].distance - oracle_knn[i][j].distance) >
              1e-9) {
            ++failures;
          }
        }
      }
      const size_t p = i % pairs.size();
      if (Pt2PtDistanceVirtual(ctx, pairs[p].first, pairs[p].second) !=
          oracle_dist[p]) {
        ++failures;
      }
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) pool.emplace_back(reader);
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ConcurrentDistanceComputations) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 8;
  config.seed = 199;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  Rng rng(211);
  const auto pairs = GeneratePositionPairs(plan, 32, &rng);
  std::vector<double> expect;
  expect.reserve(pairs.size());
  for (const auto& [p, q] : pairs) {
    expect.push_back(Pt2PtDistanceVirtual(ctx, p, q));
  }
  std::atomic<int> failures{0};
  auto worker = [&](size_t offset) {
    for (size_t i = offset; i < pairs.size(); i += 4) {
      const double d = Pt2PtDistanceVirtual(ctx, pairs[i].first,
                                            pairs[i].second);
      if (std::fabs(d - expect[i]) > 1e-12) ++failures;
    }
  };
  std::vector<std::thread> pool;
  for (size_t t = 0; t < 4; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace indoor
