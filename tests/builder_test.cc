// Failure injection: malformed topologies must be rejected with precise
// Status messages, never crash.

#include "indoor/floor_plan_builder.h"

#include <gtest/gtest.h>

namespace indoor {
namespace {

TEST(BuilderTest, MinimalValidPlan) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  b.AddBidirectionalDoor("d", Segment({4, 1.8}, {4, 2.2}), a, c);
  const auto plan = std::move(b).Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().partition_count(), 2u);
  EXPECT_EQ(plan.value().door_count(), 1u);
}

TEST(BuilderTest, RejectsDoorWithoutConnections) {
  FloorPlanBuilder b;
  b.AddPartition("a", PartitionKind::kRoom, 1, Rect(0, 0, 4, 4));
  b.AddDoor("dangling", Segment({0, 1}, {0, 2}));
  const auto plan = std::move(b).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("no connections"),
            std::string::npos);
}

TEST(BuilderTest, RejectsMoreThanTwoConnections) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  const PartitionId e = b.AddPartition("e", PartitionKind::kRoom, 1,
                                       Rect(0, 4, 4, 8));
  const DoorId d = b.AddDoor("d", Segment({4, 1.8}, {4, 2.2}));
  b.AddConnection(d, a, c);
  b.AddConnection(d, c, a);
  b.AddConnection(d, a, e);
  const auto plan = std::move(b).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("more than two"),
            std::string::npos);
}

TEST(BuilderTest, RejectsUnknownPartitionReference) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const DoorId d = b.AddDoor("d", Segment({4, 1.8}, {4, 2.2}));
  b.AddConnection(d, a, 99);
  const auto plan = std::move(b).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("unknown partition"),
            std::string::npos);
}

TEST(BuilderTest, RejectsSelfLoop) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const DoorId d = b.AddDoor("d", Segment({0, 1.8}, {0, 2.2}));
  b.AddConnection(d, a, a);
  const auto plan = std::move(b).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("itself"), std::string::npos);
}

TEST(BuilderTest, RejectsDuplicateConnection) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  const DoorId d = b.AddDoor("d", Segment({4, 1.8}, {4, 2.2}));
  b.AddConnection(d, a, c);
  b.AddConnection(d, a, c);
  const auto plan = std::move(b).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("duplicate"), std::string::npos);
}

TEST(BuilderTest, RejectsTwoConnectionsSpanningThreePartitions) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  const PartitionId e = b.AddPartition("e", PartitionKind::kRoom, 1,
                                       Rect(0, 4, 4, 8));
  const DoorId d = b.AddDoor("d", Segment({4, 1.8}, {4, 2.2}));
  b.AddConnection(d, a, c);
  b.AddConnection(d, e, a);
  const auto plan = std::move(b).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("connects more than two"),
            std::string::npos);
}

TEST(BuilderTest, RejectsDoorMidpointOutsidePartition) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  // Door geometry far away from both rooms.
  b.AddBidirectionalDoor("d", Segment({20, 20}, {20, 21}), a, c);
  const auto plan = std::move(b).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("midpoint"), std::string::npos);
}

TEST(BuilderTest, OutdoorPartitionExemptFromContainmentCheck) {
  FloorPlanBuilder b;
  // Outdoor footprint deliberately does NOT cover the door.
  const PartitionId outdoor = b.AddPartition(
      "outdoor", PartitionKind::kOutdoor, 0, Rect(100, 100, 110, 110));
  const PartitionId room = b.AddPartition("room", PartitionKind::kRoom, 1,
                                          Rect(0, 0, 4, 4));
  b.AddBidirectionalDoor("d", Segment({0, 1.8}, {0, 2.2}), outdoor, room);
  EXPECT_TRUE(std::move(b).Build().ok());
}

TEST(BuilderTest, UnidirectionalDoorMappings) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  const DoorId d =
      b.AddUnidirectionalDoor("d", Segment({4, 1.8}, {4, 2.2}), a, c);
  const auto plan = std::move(b).Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().LeaveDoors(c).empty());
  EXPECT_TRUE(plan.value().EnterDoors(a).empty());
  EXPECT_EQ(plan.value().LeaveDoors(a), std::vector<DoorId>{d});
  EXPECT_EQ(plan.value().EnterDoors(c), std::vector<DoorId>{d});
}

TEST(BuilderTest, ErrorMessagesNameTheDoor) {
  FloorPlanBuilder b;
  b.AddPartition("a", PartitionKind::kRoom, 1, Rect(0, 0, 4, 4));
  b.AddDoor("my_door", Segment({0, 1}, {0, 2}));
  const auto plan = std::move(b).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("my_door"), std::string::npos);
}

TEST(BuilderTest, DenseIdsInCallOrder) {
  FloorPlanBuilder b;
  EXPECT_EQ(b.AddPartition("p0", PartitionKind::kRoom, 1, Rect(0, 0, 4, 4)),
            0u);
  EXPECT_EQ(b.AddPartition("p1", PartitionKind::kRoom, 1, Rect(4, 0, 8, 4)),
            1u);
  EXPECT_EQ(b.AddDoor("d0", Segment({4, 1}, {4, 2})), 0u);
  EXPECT_EQ(b.AddDoor("d1", Segment({4, 2}, {4, 3})), 1u);
}

}  // namespace
}  // namespace indoor
