#include "core/index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gen/building_generator.h"
#include "indoor/floor_plan_builder.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IndexIoTest, RoundTripPreservesEveryEntry) {
  const FloorPlan plan = MakeRunningExamplePlan();
  const DistanceGraph graph(plan);
  const DistanceMatrix original(graph);
  const std::string path = TempPath("md2d.bin");
  ASSERT_TRUE(SaveDistanceMatrix(original, plan, path).ok());

  const auto loaded = LoadDistanceMatrix(plan, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded.value().door_count(), original.door_count());
  for (DoorId a = 0; a < plan.door_count(); ++a) {
    for (DoorId b = 0; b < plan.door_count(); ++b) {
      EXPECT_EQ(loaded.value().At(a, b), original.At(a, b));
    }
  }
  std::remove(path.c_str());
}

TEST(IndexIoTest, LoadedMatrixRebuildsIdenticalMidx) {
  const FloorPlan plan = MakeRunningExamplePlan();
  const DistanceGraph graph(plan);
  const DistanceMatrix original(graph);
  const std::string path = TempPath("md2d_midx.bin");
  ASSERT_TRUE(SaveDistanceMatrix(original, plan, path).ok());
  const auto loaded = LoadDistanceMatrix(plan, path);
  ASSERT_TRUE(loaded.ok());
  const DistanceIndexMatrix midx_a(original);
  const DistanceIndexMatrix midx_b(loaded.value());
  for (DoorId d = 0; d < plan.door_count(); ++d) {
    for (size_t j = 0; j < plan.door_count(); ++j) {
      EXPECT_EQ(midx_a.At(d, j), midx_b.At(d, j));
    }
  }
  std::remove(path.c_str());
}

TEST(IndexIoTest, RejectsMatrixOfDifferentPlan) {
  const FloorPlan plan_a = MakeRunningExamplePlan();
  const FloorPlan plan_b = MakeObstacleExamplePlan();
  const DistanceGraph graph(plan_a);
  const DistanceMatrix matrix(graph);
  const std::string path = TempPath("md2d_wrong.bin");
  ASSERT_TRUE(SaveDistanceMatrix(matrix, plan_a, path).ok());

  const auto loaded = LoadDistanceMatrix(plan_b, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(IndexIoTest, FingerprintSensitiveToGeometryAndTopology) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 6;
  const uint64_t base =
      PlanDistanceFingerprint(GenerateBuilding(config));
  // Same config reproduces the fingerprint.
  EXPECT_EQ(PlanDistanceFingerprint(GenerateBuilding(config)), base);
  // A different seed moves doors -> different fingerprint.
  config.seed = 43;
  EXPECT_NE(PlanDistanceFingerprint(GenerateBuilding(config)), base);
  // A different staircase length changes metric scales only.
  config.seed = 42;
  config.stair_walk_length = 11.0;
  EXPECT_NE(PlanDistanceFingerprint(GenerateBuilding(config)), base);
}

TEST(IndexIoTest, RejectsNonMatrixFile) {
  const std::string path = TempPath("not_a_matrix.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "hello world, definitely not a matrix";
  }
  const auto loaded = LoadDistanceMatrix(MakeRunningExamplePlan(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(IndexIoTest, RejectsTruncatedFile) {
  const FloorPlan plan = MakeRunningExamplePlan();
  const DistanceGraph graph(plan);
  const DistanceMatrix matrix(graph);
  const std::string path = TempPath("md2d_trunc.bin");
  ASSERT_TRUE(SaveDistanceMatrix(matrix, plan, path).ok());
  // Chop off the trailer and part of the payload.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 64);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  const auto loaded = LoadDistanceMatrix(plan, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(IndexIoTest, MissingFileIsIOError) {
  const auto loaded = LoadDistanceMatrix(MakeRunningExamplePlan(),
                                         "/nonexistent/md2d.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(IndexIoTest, SaveRejectsMismatchedMatrix) {
  const FloorPlan plan_a = MakeRunningExamplePlan();
  const FloorPlan plan_b = MakeObstacleExamplePlan();
  const DistanceGraph graph(plan_a);
  const DistanceMatrix matrix(graph);
  const Status st =
      SaveDistanceMatrix(matrix, plan_b, TempPath("mismatch.bin"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(IndexIoTest, InfinityEntriesSurviveRoundTrip) {
  // A plan with an unreachable door (one-way dead end).
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  const PartitionId e = b.AddPartition("e", PartitionKind::kRoom, 1,
                                       Rect(8, 0, 12, 4));
  b.AddUnidirectionalDoor("ow", Segment({4, 1.8}, {4, 2.2}), a, c);
  b.AddBidirectionalDoor("bd", Segment({8, 1.8}, {8, 2.2}), c, e);
  auto plan = std::move(b).Build();
  ASSERT_TRUE(plan.ok());
  const DistanceGraph graph(plan.value());
  const DistanceMatrix matrix(graph);
  ASSERT_EQ(matrix.At(1, 0), kInfDistance);
  const std::string path = TempPath("md2d_inf.bin");
  ASSERT_TRUE(SaveDistanceMatrix(matrix, plan.value(), path).ok());
  const auto loaded = LoadDistanceMatrix(plan.value(), path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().At(1, 0), kInfDistance);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace indoor
