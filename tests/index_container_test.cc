// The INDOORIX container suite (docs/FORMAT.md): round trips through both
// load modes must reproduce every structure bit for bit, and every
// corruption mode — truncation, bad magic, flipped fingerprint,
// misaligned or oversized sections, invalid payload invariants — must
// surface as a clean Status naming the file and section, never a crash
// (the suite runs under ASan in CI).

#include "core/index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>

#include "core/query/query_engine.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

FloorPlan MakeCampus(uint64_t seed) {
  CampusConfig config;
  config.buildings = 2;
  config.building.floors = 2;
  config.building.rooms_per_floor = 8;
  config.seed = seed;
  config.building.seed = seed;
  return GenerateCampus(config);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Saves a container for `plan` under the given options and returns its
/// path (unique per test via `name`).
std::string SaveContainer(const FloorPlan& plan, const IndexOptions& options,
                          const std::string& name) {
  const IndexFramework index(plan, options);
  const std::string path = TempPath(name);
  EXPECT_TRUE(SaveIndexContainer(index, path).ok());
  return path;
}

bool BitEq(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

TEST(IndexContainerTest, FlatRoundTripIsBitwiseLossless) {
  const FloorPlan plan = MakeCampus(3);
  IndexOptions options;
  const IndexFramework built(plan, options);
  const std::string path = TempPath("flat_roundtrip.idx");
  ASSERT_TRUE(SaveIndexContainer(built, path).ok());

  for (const bool mmap_mode : {false, true}) {
    auto artifacts = mmap_mode ? MapIndexContainer(plan, path)
                               : LoadIndexContainer(plan, path);
    ASSERT_TRUE(artifacts.ok()) << artifacts.status();
    ASSERT_TRUE(artifacts->md2d.has_value());
    ASSERT_TRUE(artifacts->midx.has_value());
    ASSERT_TRUE(artifacts->dpt.has_value());
    ASSERT_TRUE(artifacts->landmarks.has_value());
    EXPECT_FALSE(artifacts->hierarchy.has_value());
    EXPECT_EQ(artifacts->mapping != nullptr, mmap_mode);

    const size_t n = plan.door_count();
    for (DoorId a = 0; a < n; ++a) {
      for (DoorId b = 0; b < n; ++b) {
        EXPECT_TRUE(BitEq(artifacts->md2d->At(a, b),
                          built.d2d_matrix().At(a, b)));
        EXPECT_EQ(artifacts->midx->At(a, b), built.index_matrix().At(a, b));
      }
      const DptRecord& loaded = (*artifacts->dpt)[a];
      const DptRecord& orig = built.dpt()[a];
      EXPECT_EQ(loaded.door, orig.door);
      EXPECT_EQ(loaded.part1, orig.part1);
      EXPECT_EQ(loaded.part2, orig.part2);
      EXPECT_TRUE(BitEq(loaded.dist1, orig.dist1));
      EXPECT_TRUE(BitEq(loaded.dist2, orig.dist2));
    }
    ASSERT_EQ(artifacts->landmarks->count(), built.landmarks()->count());
    for (DoorId d = 0; d < n; ++d) {
      for (size_t l = 0; l < artifacts->landmarks->count(); ++l) {
        EXPECT_TRUE(BitEq(artifacts->landmarks->ForwardRow(d)[l],
                          built.landmarks()->ForwardRow(d)[l]));
        EXPECT_TRUE(BitEq(artifacts->landmarks->BackwardRow(d)[l],
                          built.landmarks()->BackwardRow(d)[l]));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, HierarchyRoundTripServesIdenticalQueries) {
  const FloorPlan plan = MakeCampus(5);
  IndexOptions options;
  options.use_hierarchy = true;
  options.hierarchy_cell_target = 16;
  const std::string path = SaveContainer(plan, options, "hier_roundtrip.idx");

  // Oracle: the flat engine built from scratch. Both cold-start modes of
  // the hierarchical container must serve bitwise-identical answers.
  QueryEngine flat(plan);
  Rng obj_rng(9);
  PopulateStore(GenerateObjects(flat.plan(), 300, &obj_rng),
                &flat.index().objects());
  for (const bool mmap_mode : {false, true}) {
    auto artifacts = mmap_mode ? MapIndexContainer(plan, path)
                               : LoadIndexContainer(plan, path);
    ASSERT_TRUE(artifacts.ok()) << artifacts.status();
    ASSERT_TRUE(artifacts->hierarchy.has_value());
    EXPECT_FALSE(artifacts->md2d.has_value());
    QueryEngine cold(plan, std::move(artifacts).value(), options);
    Rng cold_rng(9);
    PopulateStore(GenerateObjects(cold.plan(), 300, &cold_rng),
                  &cold.index().objects());

    Rng rng(77);
    const auto pairs = GeneratePositionPairs(plan, 25, &rng);
    const auto positions = GenerateQueryPositions(plan, 25, &rng);
    for (const auto& [a, b] : pairs) {
      EXPECT_TRUE(BitEq(flat.Distance(a, b), cold.Distance(a, b)));
    }
    for (size_t i = 0; i < positions.size(); ++i) {
      EXPECT_EQ(flat.Range(positions[i], 25.0), cold.Range(positions[i], 25.0));
      const auto kf = flat.Nearest(positions[i], 5);
      const auto kc = cold.Nearest(positions[i], 5);
      ASSERT_EQ(kf.size(), kc.size());
      for (size_t j = 0; j < kf.size(); ++j) {
        EXPECT_EQ(kf[j].id, kc[j].id);
        EXPECT_TRUE(BitEq(kf[j].distance, kc[j].distance));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, MappedFrameworkOutlivesArtifacts) {
  // The mapping keepalive must travel with the artifacts into the
  // framework: queries run after the Result and the local artifacts are
  // gone, so any dropped reference would be a use-after-munmap (ASan).
  const FloorPlan plan = MakeCampus(7);
  const std::string path = SaveContainer(plan, {}, "keepalive.idx");
  auto engine = [&] {
    auto artifacts = MapIndexContainer(plan, path);
    EXPECT_TRUE(artifacts.ok()) << artifacts.status();
    return QueryEngine(plan, std::move(artifacts).value());
  }();
  Rng rng(3);
  const auto pairs = GeneratePositionPairs(plan, 10, &rng);
  QueryEngine oracle(plan);
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(BitEq(oracle.Distance(a, b), engine.Distance(a, b)));
  }
  std::remove(path.c_str());
}

// ---- Corruption suite ---------------------------------------------------

/// Applies `mutate` to a fresh flat container and expects BOTH load modes
/// to fail cleanly with `code`, with a message naming the file.
void ExpectCorruptionRejected(const std::function<void(std::string*)>& mutate,
                              StatusCode code, const std::string& expect_in,
                              const std::string& name) {
  const FloorPlan plan = MakeCampus(11);
  const std::string path = SaveContainer(plan, {}, name);
  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 104u);
  mutate(&bytes);
  WriteFile(path, bytes);
  for (const bool mmap_mode : {false, true}) {
    auto artifacts = mmap_mode ? MapIndexContainer(plan, path)
                               : LoadIndexContainer(plan, path);
    ASSERT_FALSE(artifacts.ok()) << (mmap_mode ? "map" : "load")
                                 << " accepted corrupt " << name;
    EXPECT_EQ(artifacts.status().code(), code) << artifacts.status();
    // Satellite contract: every failure names the offending file (and
    // the section, when one is involved — covered by expect_in).
    EXPECT_NE(artifacts.status().message().find(path), std::string::npos)
        << artifacts.status();
    EXPECT_NE(artifacts.status().message().find(expect_in),
              std::string::npos)
        << artifacts.status();
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, RejectsBadMagic) {
  ExpectCorruptionRejected([](std::string* b) { (*b)[0] ^= 0xFF; },
                           StatusCode::kParseError, "not an INDOORIX",
                           "bad_magic.idx");
}

TEST(IndexContainerTest, RejectsUnsupportedVersion) {
  ExpectCorruptionRejected([](std::string* b) { (*b)[8] = 99; },
                           StatusCode::kParseError, "version",
                           "bad_version.idx");
}

TEST(IndexContainerTest, RejectsFlippedFingerprint) {
  // Fingerprint lives at header offset 16.
  ExpectCorruptionRejected([](std::string* b) { (*b)[16] ^= 0x01; },
                           StatusCode::kFailedPrecondition,
                           "different floor plan", "bad_fingerprint.idx");
}

TEST(IndexContainerTest, RejectsTruncatedFile) {
  ExpectCorruptionRejected(
      [](std::string* b) { b->resize(b->size() - 100); },
      StatusCode::kParseError, "bytes", "truncated.idx");
}

TEST(IndexContainerTest, RejectsCorruptTrailer) {
  ExpectCorruptionRejected(
      [](std::string* b) { (*b)[b->size() - 1] ^= 0xFF; },
      StatusCode::kParseError, "trailer", "bad_trailer.idx");
}

TEST(IndexContainerTest, RejectsMisalignedSectionOffset) {
  // First section entry sits at byte 64; its offset field at 64 + 8.
  // Nudging it off the 64-byte grid must name the section.
  ExpectCorruptionRejected(
      [](std::string* b) {
        uint64_t off;
        std::memcpy(&off, b->data() + 72, sizeof(off));
        off += 8;
        std::memcpy(b->data() + 72, &off, sizeof(off));
      },
      StatusCode::kParseError, "MD2D", "misaligned.idx");
}

TEST(IndexContainerTest, RejectsOversizedSection) {
  // Blowing up the first section's size field must read as truncation
  // (the payload can no longer fit in the file), naming the section.
  ExpectCorruptionRejected(
      [](std::string* b) {
        const uint64_t huge = 1ull << 40;
        std::memcpy(b->data() + 80, &huge, sizeof(huge));
      },
      StatusCode::kParseError, "MD2D", "oversized.idx");
}

TEST(IndexContainerTest, ReadModeRejectsPayloadBitFlip) {
  // A single flipped payload bit defeats the section checksum on the
  // read path. (The map path intentionally skips content checksums; its
  // guarantees are structural only.)
  const FloorPlan plan = MakeCampus(11);
  const std::string path = SaveContainer(plan, {}, "bitflip.idx");
  std::string bytes = ReadFile(path);
  uint64_t first_offset;
  std::memcpy(&first_offset, bytes.data() + 72, sizeof(first_offset));
  bytes[first_offset + 128] ^= 0x10;  // deep inside the MD2D payload
  WriteFile(path, bytes);
  auto loaded = LoadIndexContainer(plan, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status();
  EXPECT_NE(loaded.status().message().find("MD2D"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

/// Byte offset of the HIER section payload within a serialized container
/// (located via the section table: 32-byte entries from byte 64), or 0
/// when the section is absent.
uint64_t FindHierOffset(const std::string& bytes) {
  uint32_t section_count;
  std::memcpy(&section_count, bytes.data() + 32, sizeof(section_count));
  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t entry = 64 + i * 32;
    if (std::memcmp(bytes.data() + entry, "HIER    ", 8) == 0) {
      uint64_t offset;
      std::memcpy(&offset, bytes.data() + entry + 8, sizeof(offset));
      return offset;
    }
  }
  return 0;
}

/// Saves a hierarchical container for a fresh campus plan, applies
/// `corrupt` to its bytes (given the HIER payload offset), and expects
/// the map path to reject it with a ParseError naming the section and
/// carrying `expect_in` — pinning WHICH validation fired, since a later
/// check tripping by accident on whatever bytes an out-of-bounds offset
/// lands on would make the test pass while the file is read unsafely.
void ExpectHierCorruptionRejected(
    const std::string& name, const std::string& expect_in,
    const std::function<void(std::string*, uint64_t)>& corrupt) {
  const FloorPlan plan = MakeCampus(13);
  IndexOptions options;
  options.use_hierarchy = true;
  options.hierarchy_cell_target = 8;
  const std::string path = SaveContainer(plan, options, name);
  std::string bytes = ReadFile(path);
  const uint64_t hier_offset = FindHierOffset(bytes);
  ASSERT_NE(hier_offset, 0u);
  corrupt(&bytes, hier_offset);
  WriteFile(path, bytes);
  auto mapped = MapIndexContainer(plan, path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kParseError);
  EXPECT_NE(mapped.status().message().find("HIER"), std::string::npos)
      << mapped.status();
  EXPECT_NE(mapped.status().message().find(expect_in), std::string::npos)
      << mapped.status();
  std::remove(path.c_str());
}

TEST(IndexContainerTest, MapModeValidatesHierarchyInvariants) {
  // Structural validation must catch invalid payload invariants even on
  // the un-checksummed map path: point partition 0 at a nonexistent cell.
  ExpectHierCorruptionRejected(
      "bad_hier.idx", "partition cell out of range",
      [](std::string* bytes, uint64_t hier_offset) {
        // partition_cells[0] sits right after the 64-byte HIER mini-header.
        const uint32_t bogus = 0xFFFFFFF0u;
        std::memcpy(bytes->data() + hier_offset + 64, &bogus, sizeof(bogus));
      });
}

TEST(IndexContainerTest, MapModeRejectsImplausibleHierCellCount) {
  // nc == UINT64_MAX wraps nc + 1 to 0, so the offset arrays decode as
  // zero-length and the validation loops would run off their ends on a
  // crafted section size. Cells cluster partitions, so any nc > np must
  // die at the mini-header, before any nc-driven array decoding.
  ExpectHierCorruptionRejected(
      "huge_nc_hier.idx", "implausible counts",
      [](std::string* bytes, uint64_t hier_offset) {
        const uint64_t bogus = UINT64_MAX;  // mini[1] = cell_count
        std::memcpy(bytes->data() + hier_offset + 8, &bogus, sizeof(bogus));
      });
}

TEST(IndexContainerTest, MapModeRejectsHierBorderOffsetPastTotal) {
  // cell_border_offsets[c + 1] gates indexing into cell_border_locals, so
  // its bound check must fire BEFORE the border-local loop — without it
  // the loop reads past cell_border_locals (and, for a large enough
  // offset, past the mapped file) until some stray byte happens to fail
  // the range test, which is why this test pins the exact message.
  ExpectHierCorruptionRejected(
      "huge_border_offset_hier.idx", "exceeds header total",
      [](std::string* bytes, uint64_t hier_offset) {
        // Walk the 64-byte-aligned payload layout (docs/FORMAT.md) up to
        // cell_border_offsets, using the mini-header's own counts.
        uint64_t mini[7];
        std::memcpy(mini, bytes->data() + hier_offset, sizeof(mini));
        const uint64_t n = mini[0], nc = mini[1], np = mini[3],
                       member_total = mini[4];
        const auto align = [](uint64_t v) { return (v + 63) & ~uint64_t{63}; };
        uint64_t off = 64;                          // mini-header
        off = align(off) + np * 4;                  // partition_cells
        off = align(off) + 2 * n * 4;               // door_cells
        off = align(off) + 2 * n * 4;               // door_locals
        off = align(off) + (nc + 1) * 8;            // member_offsets
        off = align(off) + member_total * 4;        // members (DoorId)
        off = align(off) + member_total * 8;        // escape_radii
        off = align(off) + 8;                       // cell_border_offsets[1]
        const uint64_t huge = uint64_t{1} << 40;
        std::memcpy(bytes->data() + hier_offset + off, &huge, sizeof(huge));
      });
}

/// Byte offset of the ANNX section payload (0 when absent), via the same
/// section-table walk as FindHierOffset.
uint64_t FindAnnxOffset(const std::string& bytes) {
  uint32_t section_count;
  std::memcpy(&section_count, bytes.data() + 32, sizeof(section_count));
  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t entry = 64 + i * 32;
    if (std::memcmp(bytes.data() + entry, "ANNX    ", 8) == 0) {
      uint64_t offset;
      std::memcpy(&offset, bytes.data() + entry + 8, sizeof(offset));
      return offset;
    }
  }
  return 0;
}

/// Saves a container carrying an ANNX section (embedding tier refreshed
/// over a populated store), applies `corrupt` at the payload offset, and
/// expects the map path to reject it naming the section and `expect_in`
/// (same rationale as ExpectHierCorruptionRejected: pin WHICH validation
/// fired).
void ExpectAnnxCorruptionRejected(
    const std::string& name, const std::string& expect_in,
    const std::function<void(std::string*, uint64_t)>& corrupt) {
  const FloorPlan plan = MakeCampus(17);
  IndexOptions options;
  options.use_landmarks = true;
  options.landmark_count = 8;
  options.approx_knn = true;
  IndexFramework index(plan, options);
  Rng rng(71);
  PopulateStore(GenerateObjects(plan, 60, &rng), &index.objects());
  index.RefreshApproxKnn();
  ASSERT_NE(index.approx_knn(), nullptr);
  const std::string path = TempPath(name);
  ASSERT_TRUE(SaveIndexContainer(index, path).ok());
  std::string bytes = ReadFile(path);
  const uint64_t annx_offset = FindAnnxOffset(bytes);
  ASSERT_NE(annx_offset, 0u);
  corrupt(&bytes, annx_offset);
  WriteFile(path, bytes);
  auto mapped = MapIndexContainer(plan, path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kParseError);
  EXPECT_NE(mapped.status().message().find("ANNX"), std::string::npos)
      << mapped.status();
  EXPECT_NE(mapped.status().message().find(expect_in), std::string::npos)
      << mapped.status();
  std::remove(path.c_str());
}

TEST(IndexContainerTest, MapModeRejectsZeroAnnxLandmarkCount) {
  // count gates the fwd/bwd row math; 0 (and anything past kMaxCount)
  // must die at the mini-header before any array decoding.
  ExpectAnnxCorruptionRejected(
      "zero_lm_annx.idx", "implausible landmark count",
      [](std::string* bytes, uint64_t annx_offset) {
        const uint64_t zero = 0;  // mini[1] = landmark_count
        std::memcpy(bytes->data() + annx_offset + 8, &zero, sizeof(zero));
      });
}

TEST(IndexContainerTest, MapModeRejectsOversizedAnnxLandmarkCount) {
  ExpectAnnxCorruptionRejected(
      "big_lm_annx.idx", "implausible landmark count",
      [](std::string* bytes, uint64_t annx_offset) {
        const uint64_t big = 1000;
        std::memcpy(bytes->data() + annx_offset + 8, &big, sizeof(big));
      });
}

/// Offset of leg_offsets[i] within the ANNX payload, computed from the
/// mini-header's own counts (layout: 64-byte mini-header pad, fwd and bwd
/// rows of count * n doubles each, then the n + 1 CSR offsets).
uint64_t AnnxLegOffsetPos(const std::string& bytes, uint64_t annx_offset,
                          uint64_t i) {
  uint64_t n, count;
  std::memcpy(&n, bytes.data() + annx_offset, sizeof(n));
  std::memcpy(&count, bytes.data() + annx_offset + 8, sizeof(count));
  return annx_offset + 64 + 2 * count * n * 8 + i * 8;
}

TEST(IndexContainerTest, MapModeRejectsAnnxLegOffsetsNotStartingAtZero) {
  ExpectAnnxCorruptionRejected(
      "csr_start_annx.idx", "do not start at 0",
      [](std::string* bytes, uint64_t annx_offset) {
        const uint64_t bogus = 5;
        std::memcpy(bytes->data() + AnnxLegOffsetPos(*bytes, annx_offset, 0),
                    &bogus, sizeof(bogus));
      });
}

TEST(IndexContainerTest, MapModeRejectsNonMonotoneAnnxLegOffsets) {
  // leg_offsets[o + 1] gates indexing into the leg pool; an offset past
  // leg_total would make Legs(o) span unrelated payload (or unmapped
  // pages), so the full-CSR walk must reject it before adoption.
  ExpectAnnxCorruptionRejected(
      "csr_mono_annx.idx", "leg offsets corrupt at object",
      [](std::string* bytes, uint64_t annx_offset) {
        const uint64_t huge = uint64_t{1} << 40;
        std::memcpy(bytes->data() + AnnxLegOffsetPos(*bytes, annx_offset, 1),
                    &huge, sizeof(huge));
      });
}

TEST(IndexContainerTest, MapModeRejectsAnnxLegOffsetsEndingShort) {
  // Shrinking the final offset keeps the CSR monotone (every object owns
  // at least one enter-door leg on these plans) but breaks the
  // offsets[n] == leg_total seal that pins the pool's exact extent.
  ExpectAnnxCorruptionRejected(
      "csr_end_annx.idx", "do not end on leg_total",
      [](std::string* bytes, uint64_t annx_offset) {
        uint64_t n;
        std::memcpy(&n, bytes->data() + annx_offset, sizeof(n));
        const uint64_t pos = AnnxLegOffsetPos(*bytes, annx_offset, n);
        uint64_t last;
        std::memcpy(&last, bytes->data() + pos, sizeof(last));
        last -= 1;
        std::memcpy(bytes->data() + pos, &last, sizeof(last));
      });
}

TEST(IndexContainerTest, ReadModeRejectsAnnxPayloadBitFlip) {
  // The ANNX section participates in the same per-section checksum
  // regime as every other section on the read path.
  const FloorPlan plan = MakeCampus(17);
  IndexOptions options;
  options.use_landmarks = true;
  options.landmark_count = 8;
  options.approx_knn = true;
  IndexFramework index(plan, options);
  Rng rng(71);
  PopulateStore(GenerateObjects(plan, 60, &rng), &index.objects());
  index.RefreshApproxKnn();
  const std::string path = TempPath("bitflip_annx.idx");
  ASSERT_TRUE(SaveIndexContainer(index, path).ok());
  std::string bytes = ReadFile(path);
  const uint64_t annx_offset = FindAnnxOffset(bytes);
  ASSERT_NE(annx_offset, 0u);
  bytes[annx_offset + 72] ^= 0x10;  // inside the fwd embedding rows
  WriteFile(path, bytes);
  auto loaded = LoadIndexContainer(plan, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status();
  EXPECT_NE(loaded.status().message().find("ANNX"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST(IndexContainerTest, MissingFileIsIOError) {
  const FloorPlan plan = MakeRunningExamplePlan();
  const auto loaded = LoadIndexContainer(plan, "/nonexistent/x.idx");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  const auto mapped = MapIndexContainer(plan, "/nonexistent/x.idx");
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().code(), StatusCode::kOk);
}

TEST(IndexContainerTest, RejectsContainerOfDifferentPlan) {
  const FloorPlan plan_a = MakeCampus(11);
  const FloorPlan plan_b = MakeCampus(12);
  const std::string path = SaveContainer(plan_a, {}, "wrong_plan.idx");
  for (const bool mmap_mode : {false, true}) {
    auto artifacts = mmap_mode ? MapIndexContainer(plan_b, path)
                               : LoadIndexContainer(plan_b, path);
    ASSERT_FALSE(artifacts.ok());
    EXPECT_EQ(artifacts.status().code(), StatusCode::kFailedPrecondition);
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, LegacyMatrixFileIsNotAContainer) {
  const FloorPlan plan = MakeRunningExamplePlan();
  const DistanceGraph graph(plan);
  const DistanceMatrix matrix(graph);
  const std::string path = TempPath("legacy_md2d.bin");
  ASSERT_TRUE(SaveDistanceMatrix(matrix, plan, path).ok());
  const auto loaded = LoadIndexContainer(plan, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace indoor
