#include "core/query/incremental_knn.h"

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "core/query/nearest_iterator.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class DistanceBrowserTest : public ::testing::Test {
 protected:
  DistanceBrowserTest()
      : plan_(MakeRunningExamplePlan(&ids_)), index_(plan_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
};

TEST_F(DistanceBrowserTest, StreamsExactDistanceOrder) {
  Rng rng(221);
  PopulateStore(GenerateObjects(plan_, 50, &rng), &index_.objects());
  const Point q(6, 5);
  const auto oracle =
      LinearScanKnn(index_.distance_context(), index_.objects(), q, 50);
  DistanceBrowser browser(index_, q);
  for (const Neighbor& expect : oracle) {
    ASSERT_TRUE(browser.HasNext());
    const Neighbor got = browser.Next();
    EXPECT_NEAR(got.distance, expect.distance, 1e-6);
  }
  EXPECT_FALSE(browser.HasNext());
}

TEST_F(DistanceBrowserTest, AgreesWithKDoublingIterator) {
  Rng rng(223);
  PopulateStore(GenerateObjects(plan_, 35, &rng), &index_.objects());
  const Point q(2, 2);
  DistanceBrowser browser(index_, q);
  NearestIterator wrapper(index_, q, 4);
  while (wrapper.HasNext()) {
    ASSERT_TRUE(browser.HasNext());
    EXPECT_NEAR(browser.Next().distance, wrapper.Next().distance, 1e-6);
  }
  EXPECT_FALSE(browser.HasNext());
}

TEST_F(DistanceBrowserTest, EmptyStoreAndOutsideQuery) {
  DistanceBrowser empty(index_, {6, 5});
  EXPECT_FALSE(empty.HasNext());
  Rng rng(227);
  PopulateStore(GenerateObjects(plan_, 5, &rng), &index_.objects());
  DistanceBrowser outside(index_, {1000, 1000});
  EXPECT_FALSE(outside.HasNext());
}

TEST_F(DistanceBrowserTest, NoDuplicateObjects) {
  // v21's objects are reachable via two doors (d21, d24).
  ASSERT_TRUE(index_.objects().Insert(ids_.v21, {30, 4}).ok());
  ASSERT_TRUE(index_.objects().Insert(ids_.v21, {31, 6}).ok());
  DistanceBrowser browser(index_, {21, 1});
  std::vector<ObjectId> seen;
  while (browser.HasNext()) seen.push_back(browser.Next().id);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<ObjectId>{0, 1}));
}

TEST(DistanceBrowserObstacleTest, HostObjectsViaLeaveAndReenter) {
  // Fig. 5 situation: the nearest route to a same-room object goes through
  // another room; the browser must report the true (smaller) distance.
  ObstacleExampleIds ids;
  FloorPlan plan = MakeObstacleExamplePlan(&ids);
  IndexFramework index(plan);
  ASSERT_TRUE(index.objects().Insert(ids.room2, ids.q).ok());
  DistanceBrowser browser(index, ids.p);
  ASSERT_TRUE(browser.HasNext());
  EXPECT_NEAR(browser.Next().distance, 12.0, 1e-9);
}

TEST(DistanceBrowserGeneratedTest, FullStreamMatchesOracle) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.5;
  config.one_way_fraction = 0.3;
  config.obstacle_probability = 0.3;
  config.seed = 229;
  FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(233);
  PopulateStore(GenerateObjects(plan, 120, &rng), &index.objects());
  for (int trial = 0; trial < 4; ++trial) {
    const Point q = RandomIndoorPosition(plan, &rng);
    const auto oracle =
        LinearScanKnn(index.distance_context(), index.objects(), q, 120);
    DistanceBrowser browser(index, q);
    for (const Neighbor& expect : oracle) {
      ASSERT_TRUE(browser.HasNext());
      EXPECT_NEAR(browser.Next().distance, expect.distance, 1e-6);
    }
    EXPECT_FALSE(browser.HasNext());
  }
}

TEST(DistanceBrowserGeneratedTest, PartialConsumptionMatchesKnn) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 12;
  config.seed = 239;
  FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(241);
  PopulateStore(GenerateObjects(plan, 800, &rng), &index.objects());
  const Point q = RandomIndoorPosition(plan, &rng);
  const auto top10 = KnnQuery(index, q, 10);
  DistanceBrowser browser(index, q);
  for (const Neighbor& expect : top10) {
    ASSERT_TRUE(browser.HasNext());
    EXPECT_NEAR(browser.Next().distance, expect.distance, 1e-9);
  }
  EXPECT_EQ(browser.yielded(), 10u);
}

}  // namespace
}  // namespace indoor
