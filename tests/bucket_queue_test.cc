// The bounded-weight bucket queue, the SIMD relaxation kernels, and the
// ALT landmark pruning all promise one thing: every distance result stays
// bitwise identical to the binary-heap, scalar, landmark-free baseline.
// These suites hold them to it — queue pop order against a heap oracle,
// Dijkstra solves heap-vs-bucket, full query engines across the option
// matrix — plus the landmark bound/persistence contracts and a concurrent
// stress run for TSan.

#include "core/distance/bucket_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/distance/d2d_distance.h"
#include "core/distance/distance_field.h"
#include "core/distance/pt2pt_distance.h"
#include "core/distance/reverse_field.h"
#include "core/index/index_framework.h"
#include "core/index/index_io.h"
#include "core/index/landmark_index.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"
#include "util/min_heap.h"
#include "util/random.h"
#include "util/simd.h"

namespace indoor {
namespace {

using Entry = std::pair<double, DoorId>;

// ------------------------------------------------------------- queue oracle

/// Drains both queues in lockstep, asserting identical pop sequences.
void DrainInLockstep(BucketQueue* bq, MinHeap<Entry>* heap) {
  while (!heap->empty()) {
    ASSERT_FALSE(bq->empty());
    ASSERT_EQ(bq->size(), heap->size());
    const Entry expected = heap->top();
    EXPECT_EQ(bq->top(), expected);
    bq->pop();
    heap->pop();
  }
  EXPECT_TRUE(bq->empty());
  EXPECT_EQ(bq->size(), 0u);
}

TEST(BucketQueueTest, MatchesHeapOnRandomMonotoneWorkloads) {
  Rng rng(20260809);
  for (int round = 0; round < 60; ++round) {
    // Every few rounds: a zero max weight, exercising the width fallback.
    const double max_w =
        round % 6 == 0 ? 0.0 : rng.NextDouble(0.05, 40.0);
    BucketQueue bq;
    bq.Prepare(max_w);
    MinHeap<Entry> heap;

    // Seeds in any order, some far beyond the bucket window (overflow +
    // first-pop rebase), some duplicated.
    const size_t seeds = 1 + rng.NextU64(10);
    for (size_t i = 0; i < seeds; ++i) {
      const Entry e{rng.NextDouble(0.0, 300.0),
                    static_cast<DoorId>(rng.NextU64(64))};
      bq.push(e);
      heap.push(e);
      if (rng.NextU64(4) == 0) {  // duplicate entry
        bq.push(e);
        heap.push(e);
      }
    }

    // Dijkstra-shaped traffic: pop the min, push a few keys at or above
    // it (zero-weight edges included), occasionally drain a bit.
    for (int step = 0; step < 200 && !heap.empty(); ++step) {
      ASSERT_EQ(bq.top(), heap.top());
      const double base = heap.top().first;
      bq.pop();
      heap.pop();
      const size_t pushes = rng.NextU64(4);
      for (size_t p = 0; p < pushes; ++p) {
        const double w =
            rng.NextU64(5) == 0 ? 0.0 : rng.NextDouble(0.0, max_w + 1.0);
        const Entry e{base + w, static_cast<DoorId>(rng.NextU64(64))};
        bq.push(e);
        heap.push(e);
      }
    }
    DrainInLockstep(&bq, &heap);
  }
}

TEST(BucketQueueTest, QuantizationBoundaryTiesBreakOnId) {
  // Keys sitting exactly on bucket edges, with equal-key entries: the pop
  // order must be the exact lexicographic (key, id) order, not bucket
  // insertion order.
  BucketQueue bq;
  bq.Prepare(96.0);  // width = 1.0 exactly
  MinHeap<Entry> heap;
  const double keys[] = {0.0,  0.0,  1.0,   1.0,   1.0,   2.0,   95.0,
                         96.0, 96.0, 97.5, 128.0, 128.0, 500.0, 500.0};
  DoorId id = 40;
  for (const double k : keys) {
    // Descending ids so sorted-by-id differs from insertion order.
    const Entry e{k, id--};
    bq.push(e);
    heap.push(e);
  }
  DrainInLockstep(&bq, &heap);
}

TEST(BucketQueueTest, PrepareResetsStateBetweenRuns) {
  BucketQueue bq;
  for (int run = 0; run < 3; ++run) {
    bq.Prepare(run == 1 ? 0.0 : 10.0);
    MinHeap<Entry> heap;
    for (DoorId i = 0; i < 20; ++i) {
      const Entry e{static_cast<double>((i * 7) % 13), i};
      bq.push(e);
      heap.push(e);
    }
    // Leave half the entries behind on even runs; Prepare must discard
    // them.
    for (int pops = 0; pops < (run % 2 == 0 ? 10 : 20); ++pops) {
      ASSERT_EQ(bq.top(), heap.top());
      bq.pop();
      heap.pop();
    }
  }
  bq.Prepare(10.0);
  EXPECT_TRUE(bq.empty());
}

// --------------------------------------------------------- Dijkstra solves

BuildingConfig TestBuilding(uint64_t seed) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 12;
  config.room_to_room_doors = 0.3;
  config.one_way_fraction = 0.3;
  config.obstacle_probability = 0.2;
  config.seed = seed;
  return config;
}

TEST(BucketDijkstraTest, SingleSourceRowsBitwiseEqualHeap) {
  const FloorPlan plan = GenerateBuilding(TestBuilding(11));
  const DistanceGraph graph(plan);
  const size_t n = plan.door_count();
  std::vector<double> heap_dist, bucket_dist;
  std::vector<PrevEntry> heap_prev, bucket_prev;
  for (DoorId ds = 0; ds < n; ++ds) {
    D2dDistancesFrom(graph, ds, &heap_dist, &heap_prev, QueueKind::kHeap);
    D2dDistancesFrom(graph, ds, &bucket_dist, &bucket_prev,
                     QueueKind::kBucket);
    ASSERT_EQ(heap_dist.size(), bucket_dist.size());
    for (size_t t = 0; t < n; ++t) {
      // ASSERT_EQ is operator== — bitwise for these non-NaN values.
      ASSERT_EQ(heap_dist[t], bucket_dist[t]) << "ds=" << ds << " t=" << t;
      ASSERT_EQ(heap_prev[t].door, bucket_prev[t].door)
          << "ds=" << ds << " t=" << t;
      ASSERT_EQ(heap_prev[t].partition, bucket_prev[t].partition)
          << "ds=" << ds << " t=" << t;
    }
  }
}

TEST(BucketDijkstraTest, TargetedSolvesBitwiseEqualHeap) {
  const FloorPlan plan = GenerateBuilding(TestBuilding(13));
  const DistanceGraph graph(plan);
  const size_t n = plan.door_count();
  Rng rng(99);
  DoorDijkstraScratch scratch;
  for (int i = 0; i < 300; ++i) {
    const DoorId ds = static_cast<DoorId>(rng.NextU64(n));
    const DoorId dt = static_cast<DoorId>(rng.NextU64(n));
    const double via_heap =
        D2dDistance(graph, ds, dt, &scratch, QueueKind::kHeap);
    const double via_bucket =
        D2dDistance(graph, ds, dt, &scratch, QueueKind::kBucket);
    ASSERT_EQ(via_heap, via_bucket) << "ds=" << ds << " dt=" << dt;
  }
}

TEST(BucketDijkstraTest, MatrixBuildIdenticalAcrossQueues) {
  const FloorPlan plan = MakeRunningExamplePlan();
  const DistanceGraph graph(plan);
  const DistanceMatrix heap_matrix(graph, 1, QueueKind::kHeap);
  const DistanceMatrix bucket_matrix(graph, 2, QueueKind::kBucket);
  for (DoorId a = 0; a < plan.door_count(); ++a) {
    for (DoorId b = 0; b < plan.door_count(); ++b) {
      ASSERT_EQ(heap_matrix.At(a, b), bucket_matrix.At(a, b));
    }
  }
}

// ----------------------------------------------------- engine equivalence

IndexOptions BaselineOptions() {
  IndexOptions options;
  options.use_bucket_queue = false;
  options.use_landmarks = false;
  options.enable_query_cache = false;
  return options;
}

IndexOptions BucketOnlyOptions() {
  IndexOptions options = BaselineOptions();
  options.use_bucket_queue = true;
  return options;
}

IndexOptions FullOptions() {
  IndexOptions options = BucketOnlyOptions();
  options.use_landmarks = true;
  return options;
}

/// Three engines over one plan/object population: the heap + no-landmark
/// baseline, bucket queue only, and bucket + landmarks (the defaults minus
/// the query cache, which has its own equivalence suite).
class EngineEquivalenceTest : public ::testing::Test {
 protected:
  EngineEquivalenceTest()
      : plan_(GenerateBuilding(TestBuilding(17))),
        baseline_(plan_, BaselineOptions()),
        bucket_(plan_, BucketOnlyOptions()),
        full_(plan_, FullOptions()) {
    Rng rng(5);
    const auto objects = GenerateObjects(plan_, 150, &rng);
    PopulateStore(objects, &baseline_.objects());
    PopulateStore(objects, &bucket_.objects());
    PopulateStore(objects, &full_.objects());
  }

  FloorPlan plan_;
  IndexFramework baseline_;
  IndexFramework bucket_;
  IndexFramework full_;
};

TEST_F(EngineEquivalenceTest, Pt2PtVariantsBitwiseEqualAcrossEngines) {
  Rng rng(23);
  const auto base_ctx = baseline_.distance_context();
  const auto bucket_ctx = bucket_.distance_context();
  const auto full_ctx = full_.distance_context();
  for (const auto& [p, q] : GeneratePositionPairs(plan_, 40, &rng)) {
    const double basic = Pt2PtDistanceBasic(base_ctx, p, q);
    ASSERT_EQ(Pt2PtDistanceBasic(bucket_ctx, p, q), basic);
    ASSERT_EQ(Pt2PtDistanceBasic(full_ctx, p, q), basic);

    const double refined = Pt2PtDistanceRefined(base_ctx, p, q);
    ASSERT_EQ(Pt2PtDistanceRefined(bucket_ctx, p, q), refined);
    ASSERT_EQ(Pt2PtDistanceRefined(full_ctx, p, q), refined);

    for (const ReusePolicy policy :
         {ReusePolicy::kSafe, ReusePolicy::kPaperFaithful}) {
      const double reuse = Pt2PtDistanceReuse(base_ctx, p, q, policy);
      ASSERT_EQ(Pt2PtDistanceReuse(bucket_ctx, p, q, policy), reuse);
      ASSERT_EQ(Pt2PtDistanceReuse(full_ctx, p, q, policy), reuse);
    }

    const double virt = Pt2PtDistanceVirtual(base_ctx, p, q);
    ASSERT_EQ(Pt2PtDistanceVirtual(bucket_ctx, p, q), virt);
    ASSERT_EQ(Pt2PtDistanceVirtual(full_ctx, p, q), virt);
  }
}

TEST_F(EngineEquivalenceTest, RangeAndKnnIdenticalAcrossEngines) {
  Rng rng(31);
  const auto queries = GenerateQueryPositions(plan_, 25, &rng);
  for (const bool use_midx : {true, false}) {
    RangeQueryOptions range_options;
    range_options.use_index_matrix = use_midx;
    KnnQueryOptions knn_options;
    knn_options.use_index_matrix = use_midx;
    for (const Point& q : queries) {
      for (const double r : {8.0, 30.0}) {
        const auto expect = RangeQuery(baseline_, q, r, range_options);
        EXPECT_EQ(RangeQuery(bucket_, q, r, range_options), expect);
        EXPECT_EQ(RangeQuery(full_, q, r, range_options), expect);
      }
      for (const size_t k : {size_t{1}, size_t{10}}) {
        const auto expect = KnnQuery(baseline_, q, k, knn_options);
        EXPECT_EQ(KnnQuery(bucket_, q, k, knn_options), expect);
        EXPECT_EQ(KnnQuery(full_, q, k, knn_options), expect);
      }
    }
  }
}

TEST_F(EngineEquivalenceTest, DistanceFieldsIdenticalAcrossEngines) {
  Rng rng(41);
  const auto sources = GenerateQueryPositions(plan_, 6, &rng);
  const auto probes = GenerateQueryPositions(plan_, 20, &rng);
  for (const Point& s : sources) {
    const DistanceField base_field(baseline_.distance_context(), s);
    const DistanceField bucket_field(full_.distance_context(), s);
    const ReverseDistanceField base_rev(baseline_.distance_context(), s);
    const ReverseDistanceField bucket_rev(full_.distance_context(), s);
    for (const Point& p : probes) {
      ASSERT_EQ(base_field.DistanceTo(p), bucket_field.DistanceTo(p));
      ASSERT_EQ(base_rev.DistanceFrom(p), bucket_rev.DistanceFrom(p));
    }
  }
}

// ------------------------------------------------------------- landmarks

TEST(LandmarkIndexTest, LowerBoundNeverExceedsExactDistance) {
  const FloorPlan plan = GenerateBuilding(TestBuilding(29));
  const DistanceGraph graph(plan);
  const LandmarkIndex landmarks = LandmarkIndex::Build(graph, 8);
  ASSERT_TRUE(landmarks.valid());
  EXPECT_LE(landmarks.count(), 8u);
  const DistanceMatrix md2d(graph);
  const size_t n = plan.door_count();
  for (DoorId s = 0; s < n; ++s) {
    for (DoorId t = 0; t < n; ++t) {
      const double lb = landmarks.LowerBound(s, t);
      const double exact = md2d.At(s, t);
      ASSERT_GE(lb, 0.0);
      if (exact == kInfDistance) continue;
      // The triangle inequality holds to rounding of the precomputed rows.
      ASSERT_LE(lb, exact + 1e-9 * (1.0 + exact)) << "s=" << s << " t=" << t;
    }
  }
  // Selection is deterministic: identical rebuilds pick identical doors.
  const LandmarkIndex again = LandmarkIndex::Build(graph, 8);
  ASSERT_EQ(again.count(), landmarks.count());
  for (size_t l = 0; l < landmarks.count(); ++l) {
    EXPECT_EQ(again.doors()[l], landmarks.doors()[l]);
  }
}

TEST(LandmarkIndexTest, BuildIdenticalAcrossQueueKinds) {
  const FloorPlan plan = MakeRunningExamplePlan();
  const DistanceGraph graph(plan);
  const LandmarkIndex a = LandmarkIndex::Build(graph, 4, QueueKind::kHeap);
  const LandmarkIndex b = LandmarkIndex::Build(graph, 4, QueueKind::kBucket);
  ASSERT_EQ(a.count(), b.count());
  for (DoorId d = 0; d < plan.door_count(); ++d) {
    for (size_t l = 0; l < a.count(); ++l) {
      ASSERT_EQ(a.ForwardRow(d)[l], b.ForwardRow(d)[l]);
      ASSERT_EQ(a.BackwardRow(d)[l], b.BackwardRow(d)[l]);
    }
  }
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LandmarkIndexTest, SaveLoadRoundTripsBitwise) {
  const FloorPlan plan = GenerateBuilding(TestBuilding(37));
  const DistanceGraph graph(plan);
  const LandmarkIndex original = LandmarkIndex::Build(graph, 8);
  const std::string path = TempPath("landmarks.bin");
  ASSERT_TRUE(SaveLandmarkIndex(original, plan, path).ok());

  const auto loaded = LoadLandmarkIndex(plan, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded.value().count(), original.count());
  ASSERT_EQ(loaded.value().door_count(), original.door_count());
  for (size_t l = 0; l < original.count(); ++l) {
    EXPECT_EQ(loaded.value().doors()[l], original.doors()[l]);
  }
  for (DoorId d = 0; d < plan.door_count(); ++d) {
    for (size_t l = 0; l < original.count(); ++l) {
      ASSERT_EQ(loaded.value().ForwardRow(d)[l], original.ForwardRow(d)[l]);
      ASSERT_EQ(loaded.value().BackwardRow(d)[l],
                original.BackwardRow(d)[l]);
    }
  }

  // A different plan must be rejected on the fingerprint.
  const FloorPlan other = MakeRunningExamplePlan();
  const auto rejected = LoadLandmarkIndex(other, path);
  ASSERT_FALSE(rejected.ok());
  std::remove(path.c_str());
}

// -------------------------------------------------------- SIMD kernels

TEST(SimdKernelTest, FilterImprovementsMatchesScalarCompare) {
  Rng rng(53);
  for (int round = 0; round < 40; ++round) {
    const size_t n = rng.NextU64(33);
    std::vector<double> cand(n), dist(64, kInfDistance);
    std::vector<uint32_t> targets(n);
    for (size_t i = 0; i < n; ++i) {
      cand[i] = rng.NextDouble(0.0, 10.0);
      targets[i] = static_cast<uint32_t>(rng.NextU64(64));
    }
    for (size_t d = 0; d < 64; ++d) {
      if (rng.NextU64(3) != 0) dist[d] = rng.NextDouble(0.0, 10.0);
    }
    std::vector<uint32_t> idx(n);
    const size_t improved = simd::FilterImprovements(
        cand.data(), targets.data(), dist.data(), n, idx.data());
    std::vector<uint32_t> expect;
    for (size_t i = 0; i < n; ++i) {
      if (cand[i] < dist[targets[i]]) {
        expect.push_back(static_cast<uint32_t>(i));
      }
    }
    ASSERT_EQ(improved, expect.size());
    for (size_t k = 0; k < improved; ++k) EXPECT_EQ(idx[k], expect[k]);
  }
}

TEST(SimdKernelTest, MaskLessEqualMatchesScalarCompare) {
  Rng rng(59);
  for (int round = 0; round < 40; ++round) {
    const size_t n = rng.NextU64(40);
    const double bound = rng.NextDouble(0.0, 5.0);
    std::vector<double> values(n);
    for (auto& v : values) {
      v = rng.NextU64(8) == 0 ? kInfDistance : rng.NextDouble(0.0, 10.0);
    }
    std::vector<uint8_t> mask(n, 2);
    simd::MaskLessEqual(values.data(), n, bound, mask.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(mask[i] != 0, values[i] <= bound) << "i=" << i;
    }
  }
}

// ------------------------------------------------------ concurrent stress

TEST(BucketQueueConcurrencyTest, ParallelQueriesMatchSerialResults) {
  const FloorPlan plan = GenerateBuilding(TestBuilding(61));
  IndexOptions options;  // defaults: bucket queue + landmarks + cache
  IndexFramework index(plan, options);
  Rng rng(67);
  PopulateStore(GenerateObjects(plan, 100, &rng), &index.objects());

  const auto pairs = GeneratePositionPairs(plan, 24, &rng);
  const auto queries = GenerateQueryPositions(plan, 24, &rng);

  // Serial reference pass.
  std::vector<double> expect_dist(pairs.size());
  std::vector<std::vector<ObjectId>> expect_range(queries.size());
  std::vector<std::vector<Neighbor>> expect_knn(queries.size());
  const auto ctx = index.distance_context();
  for (size_t i = 0; i < pairs.size(); ++i) {
    expect_dist[i] =
        Pt2PtDistanceVirtual(ctx, pairs[i].first, pairs[i].second);
  }
  RangeQueryOptions range_options;
  range_options.use_index_matrix = false;  // landmark-pruned scan path
  for (size_t i = 0; i < queries.size(); ++i) {
    expect_range[i] = RangeQuery(index, queries[i], 25.0, range_options);
    expect_knn[i] = KnnQuery(index, queries[i], 5);
  }

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (int iter = 0; iter < 3; ++iter) {
        for (size_t i = 0; i < pairs.size(); ++i) {
          EXPECT_EQ(
              Pt2PtDistanceVirtual(ctx, pairs[i].first, pairs[i].second),
              expect_dist[i]);
        }
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(RangeQuery(index, queries[i], 25.0, range_options),
                    expect_range[i]);
          EXPECT_EQ(KnnQuery(index, queries[i], 5), expect_knn[i]);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace
}  // namespace indoor
