// The dashboard renderer (util/dashboard.h): section inventory, the
// SVG sparkline/heatmap markers the CI smoke validator keys on, and the
// HTML escaping of operator-supplied labels and context.

#include "util/dashboard.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/timeseries.h"

namespace indoor {
namespace dash {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

metrics::HistogramSnapshot MakeHist(const std::string& name,
                                    const std::vector<uint64_t>& values) {
  metrics::Histogram h;
  for (uint64_t v : values) h.Record(v);
  metrics::HistogramSnapshot s;
  s.name = name;
  s.count = h.Count();
  s.sum = h.Sum();
  s.max = h.Max();
  s.buckets.resize(metrics::Histogram::kNumBuckets);
  for (size_t i = 0; i < s.buckets.size(); ++i) s.buckets[i] = h.BucketCount(i);
  return s;
}

/// A recording with `intervals` one-second samples of knn traffic plus
/// hotness on partitions 0..3.
tseries::Recording MakeRecording(const std::string& label, size_t intervals,
                                 uint64_t latency_ns) {
  tseries::Recording recording;
  recording.label = label;
  recording.interval_ms = 1000;
  recording.context = "source=dashboard_test\n";
  for (size_t i = 0; i < intervals; ++i) {
    tseries::IntervalSample sample;
    sample.index = i;
    sample.start_us = i * 1'000'000;
    sample.duration_us = 1'000'000;
    sample.delta.counters = {
        {"distance.dijkstra.settles", 100 + i},
    };
    sample.delta.histograms.push_back(MakeHist(
        "query.knn.latency_ns",
        {latency_ns, latency_ns * 2, latency_ns * 3, latency_ns * 4}));
    sample.hot = {{0, 5, 50}, {1, 2, 20}, {3, 9, 90}};
    recording.samples.push_back(std::move(sample));
  }
  return recording;
}

TEST(RenderDashboardTest, SingleRecordingHasEverySectionButAttribution) {
  const std::string html = RenderDashboard({MakeRecording("run-a", 4, 50'000)});
  for (const char* id : {"summary", "qps", "latency", "slo", "hotness"}) {
    EXPECT_NE(html.find("<section id=\"" + std::string(id) + "\""),
              std::string::npos)
        << id;
  }
  EXPECT_EQ(html.find("<section id=\"attribution\""), std::string::npos);
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("href="), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
}

TEST(RenderDashboardTest, TwoRecordingsAddTheAttributionDiff) {
  const std::string html = RenderDashboard({
      MakeRecording("baseline", 4, 50'000),
      MakeRecording("candidate", 4, 200'000),
  });
  EXPECT_NE(html.find("<section id=\"attribution\""), std::string::npos);
  // The diff names both runs and the per-query cost table.
  EXPECT_NE(html.find("baseline"), std::string::npos);
  EXPECT_NE(html.find("candidate"), std::string::npos);
  EXPECT_NE(html.find("per-query counter costs"), std::string::npos);
  EXPECT_NE(html.find("distance.dijkstra.settles"), std::string::npos);
}

TEST(RenderDashboardTest, SparklinesCarryNonEmptyPaths) {
  const std::string html = RenderDashboard({MakeRecording("run-a", 4, 50'000)});
  // One QPS sparkline plus p50/p99 for the one active kind.
  EXPECT_EQ(CountOccurrences(html, "class=\"sparkline\""), 3u);
  // Every sparkline path starts with a moveto — never an empty d="".
  EXPECT_EQ(html.find("d=\"\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(html, "d=\"M"), 3u);
}

TEST(RenderDashboardTest, HotnessRendersOneCellPerActivePartition) {
  const std::string html = RenderDashboard({MakeRecording("run-a", 4, 50'000)});
  EXPECT_EQ(CountOccurrences(html, "class=\"hotcell\""), 3u);  // slots 0, 1, 3
  EXPECT_NE(html.find("3 active partitions"), std::string::npos);

  tseries::Recording cold = MakeRecording("cold", 2, 50'000);
  for (auto& sample : cold.samples) sample.hot.clear();
  const std::string no_hot = RenderDashboard({cold});
  EXPECT_EQ(no_hot.find("class=\"hotcell\""), std::string::npos);
  EXPECT_NE(no_hot.find("no partition-hotness telemetry"), std::string::npos);
}

TEST(RenderDashboardTest, EscapesHostileLabelsContextAndTitle) {
  tseries::Recording recording = MakeRecording("run-a", 2, 50'000);
  recording.label = "<script>alert('pwn')</script>";
  recording.context = "plan=/tmp/\"quoted\" & <dangerous>\n";
  DashboardOptions options;
  options.title = "bench <b>\"title\"</b>";
  const std::string html = RenderDashboard({recording}, options);
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;alert(&#39;pwn&#39;)&lt;/script&gt;"),
            std::string::npos);
  EXPECT_EQ(html.find("<dangerous>"), std::string::npos);
  EXPECT_NE(html.find("&quot;quoted&quot; &amp; &lt;dangerous&gt;"),
            std::string::npos);
  EXPECT_EQ(html.find("<b>\"title\""), std::string::npos);
  EXPECT_NE(html.find("bench &lt;b&gt;&quot;title&quot;&lt;/b&gt;"),
            std::string::npos);
}

TEST(RenderDashboardTest, SloSectionReflectsTheObjectives) {
  // 50 us traffic against the default 5 ms objectives: compliant.
  const std::string good = RenderDashboard({MakeRecording("ok", 4, 50'000)});
  EXPECT_NE(good.find("class=\"ok\""), std::string::npos);
  EXPECT_EQ(good.find("ALERT"), std::string::npos);

  // 100 ms traffic breaches hard and alerts on both windows.
  const std::string bad =
      RenderDashboard({MakeRecording("bad", 4, 100'000'000)});
  EXPECT_NE(bad.find("ALERT"), std::string::npos);
}

TEST(RenderDashboardTest, EmptyInputsStillRenderValidPages) {
  const std::string none = RenderDashboard({});
  EXPECT_NE(none.find("no recordings"), std::string::npos);
  EXPECT_NE(none.find("</html>"), std::string::npos);

  tseries::Recording idle;
  idle.label = "idle";
  idle.interval_ms = 250;
  const std::string quiet = RenderDashboard({idle});
  EXPECT_NE(quiet.find("<section id=\"latency\""), std::string::npos);
  EXPECT_NE(quiet.find("no query latency histograms"), std::string::npos);
  EXPECT_NE(quiet.find("</html>"), std::string::npos);
}

TEST(AppendHtmlEscapedTest, EscapesEveryDangerousCharacter) {
  std::string out;
  AppendHtmlEscaped(&out, "a&b<c>d\"e'f plain");
  EXPECT_EQ(out, "a&amp;b&lt;c&gt;d&quot;e&#39;f plain");
}

TEST(WriteDashboardFileTest, WritesTheRenderedHtml) {
  const std::string path = TempPath("dash.html");
  ASSERT_TRUE(
      WriteDashboardFile({MakeRecording("run-a", 2, 50'000)}, path).ok());
  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  std::string html;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) html.append(buf, n);
  std::fclose(in);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("<section id=\"summary\""), std::string::npos);

  EXPECT_FALSE(
      WriteDashboardFile({}, TempPath("missing/dir/dash.html")).ok());
}

}  // namespace
}  // namespace dash
}  // namespace indoor
