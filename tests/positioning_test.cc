#include "tracking/positioning.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class PositioningTest : public ::testing::Test {
 protected:
  PositioningTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        deployment_(ReaderDeployment::AtDoors(plan_, 1.0)) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  ReaderDeployment deployment_;
};

TEST_F(PositioningTest, OneReaderPerDoor) {
  ASSERT_EQ(deployment_.readers().size(), plan_.door_count());
  for (const Reader& reader : deployment_.readers()) {
    EXPECT_EQ(reader.door, reader.id);  // door-ordered deployment
    EXPECT_TRUE(
        ApproxEqual(reader.position, plan_.door(reader.door).Midpoint()));
  }
}

TEST_F(PositioningTest, DetectsWithinRangeOnly) {
  const Point at_d11 = plan_.door(ids_.d11).Midpoint();
  const auto hits = deployment_.Detect(at_d11);
  ASSERT_FALSE(hits.empty());
  EXPECT_NE(std::find(hits.begin(), hits.end(), ids_.d11), hits.end());
  // Far from every door: no detection.
  EXPECT_TRUE(deployment_.Detect({2, 1}).empty());
}

TEST_F(PositioningTest, RangeBoundaryIsInclusive) {
  const Point at_d11 = plan_.door(ids_.d11).Midpoint();
  EXPECT_FALSE(deployment_.Detect({at_d11.x + 1.0, at_d11.y}).empty());
  EXPECT_TRUE(deployment_.Detect({at_d11.x + 1.01, at_d11.y}).empty());
}

TEST_F(PositioningTest, DetectAllMapsReports) {
  std::vector<PositionReport> reports{
      {0, ids_.v11, plan_.door(ids_.d11).Midpoint()},
      {1, ids_.v11, {2, 1}},  // silent
  };
  const auto detections = deployment_.DetectAll(reports);
  ASSERT_FALSE(detections.empty());
  for (const Detection& det : detections) {
    EXPECT_EQ(det.object, 0u);
  }
}

TEST_F(PositioningTest, TrackerStartsUnknown) {
  SymbolicTracker tracker(plan_, deployment_, 3);
  EXPECT_TRUE(tracker.Unknown(0));
  EXPECT_TRUE(tracker.Unknown(2));
}

TEST_F(PositioningTest, DetectionNarrowsToTouchingPartitions) {
  SymbolicTracker tracker(plan_, deployment_, 1);
  tracker.OnDetection({0, ids_.d11});
  const auto& cands = tracker.Candidates(0);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0], std::min(ids_.v11, ids_.v10));
  EXPECT_EQ(cands[1], std::max(ids_.v11, ids_.v10));
}

TEST_F(PositioningTest, WidenFollowsLeaveableDoors) {
  SymbolicTracker tracker(plan_, deployment_, 1);
  tracker.OnDetection({0, ids_.d15});  // in v13 or v12
  tracker.WidenAll();
  const auto& cands = tracker.Candidates(0);
  // From v12 one can reach v10 (via d12); from v13: v12, v10 (via d13).
  EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(), ids_.v10));
  EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(), ids_.v12));
  EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(), ids_.v13));
  // v11 needs two hops; not yet a candidate.
  EXPECT_FALSE(std::binary_search(cands.begin(), cands.end(), ids_.v11));
}

TEST_F(PositioningTest, WidenRespectsDirectionality) {
  SymbolicTracker tracker(plan_, deployment_, 1);
  tracker.OnDetection({0, ids_.d12});  // in v12 or v10
  tracker.WidenAll();
  const auto& cands = tracker.Candidates(0);
  // v12 is only leaveable into v10 (d12); nothing widens INTO v12's
  // neighbors through v12... but the object might be in v10, whose doors
  // reach v11, v13, v14, v50 and outdoors.
  EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(), ids_.v11));
  // v12 has no leaveable door into v13: the only way v13 appears is via
  // v10's d13.
  EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(), ids_.v13));
}

TEST_F(PositioningTest, UnknownObjectsStayUnknownOnWiden) {
  SymbolicTracker tracker(plan_, deployment_, 2);
  tracker.OnDetection({0, ids_.d11});
  tracker.WidenAll();
  EXPECT_FALSE(tracker.Unknown(0));
  EXPECT_TRUE(tracker.Unknown(1));
}

TEST(PositioningSimulationTest, TrackerCoversTrueLocationAtDetections) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 8;
  config.seed = 171;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  ObjectStore store(plan);
  Rng rng(173);
  PopulateStore(GenerateObjects(plan, 20, &rng), &store);

  // Range 1.0 m: smaller than any door-to-foreign-wall clearance in the
  // generator, so a detection's touching partitions always cover the tag.
  const auto deployment = ReaderDeployment::AtDoors(plan, 1.0);
  SymbolicTracker tracker(plan, deployment, 20);
  TrajectorySimulator sim(ctx, store);
  size_t detections_seen = 0;
  for (int tick = 0; tick < 120; ++tick) {
    const auto reports = sim.Step(0.5);  // small steps: crossings detected
    for (const Detection& det : deployment.DetectAll(reports)) {
      tracker.OnDetection(det);
      ++detections_seen;
      // Immediately after a detection, the true partition must be among
      // the candidates (the tag is within reader range of the door).
      const PositionReport* report = nullptr;
      for (const PositionReport& r : reports) {
        if (r.id == det.object) report = &r;
      }
      ASSERT_NE(report, nullptr);
      const auto& cands = tracker.Candidates(det.object);
      EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(),
                                     report->partition))
          << "object " << det.object << " actually in "
          << plan.partition(report->partition).name();
    }
  }
  EXPECT_GT(detections_seen, 10u);  // agents did cross doors
}

}  // namespace
}  // namespace indoor
