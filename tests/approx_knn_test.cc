// The approximate-kNN embedding tier (core/index/approx_knn.h): bound
// admissibility against the exact metric, exact-mode equivalence when the
// candidate budget covers the store, recall floors on randomized
// buildings, epoch-driven refresh (adopt / incremental / full) with the
// exact-fallback contract, the SIMD batch kernel against its scalar
// oracle, and concurrent read safety (run under TSan in CI).

#include "core/index/approx_knn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "baseline/linear_scan.h"
#include "core/index/index_io.h"
#include "core/query/knn_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "util/random.h"
#include "util/simd.h"

namespace indoor {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FloorPlan MakePlan(uint64_t seed, int floors = 3) {
  BuildingConfig config;
  config.floors = floors;
  config.rooms_per_floor = 12;
  config.obstacle_probability = 0.5;
  config.seed = seed;
  return GenerateBuilding(config);
}

IndexOptions ApproxOptions(unsigned landmark_count = 8) {
  IndexOptions options;
  options.use_landmarks = true;
  options.landmark_count = landmark_count;
  options.approx_knn = true;
  return options;
}

/// Distances must match pairwise; ids may differ among exact ties.
void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& expect) {
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, expect[i].distance, 1e-6) << "rank " << i;
  }
}

double Recall(const std::vector<Neighbor>& got,
              const std::vector<Neighbor>& truth) {
  if (truth.empty()) return 1.0;
  std::vector<ObjectId> t;
  for (const Neighbor& nb : truth) t.push_back(nb.id);
  std::sort(t.begin(), t.end());
  size_t hits = 0;
  for (const Neighbor& nb : got) {
    hits += std::binary_search(t.begin(), t.end(), nb.id) ? 1u : 0u;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

// ---- Bound admissibility -------------------------------------------------

// Using object a's own embedding row as the query-side aggregates turns
// the serving kernel into the textbook ALT bound between two embedded
// points: max_l max(fwd[l][b] - fwd[l][a], bwd[l][a] - bwd[l][b]) must
// lower-bound the exact walking distance d(a -> b). This exercises the
// exact AltBatchBoundMax call the query path makes, with no tolerance for
// an inadmissible (over-pruning) embedding beyond float rounding.
TEST(ApproxKnnTest, EmbeddingBoundIsAdmissible) {
  const FloorPlan plan = MakePlan(7);
  IndexFramework index(plan, ApproxOptions());
  Rng rng(19);
  PopulateStore(GenerateObjects(plan, 200, &rng), &index.objects());
  index.RefreshApproxKnn();
  const ApproxKnnIndex* approx = index.approx_knn();
  ASSERT_NE(approx, nullptr);
  ASSERT_TRUE(approx->FreshFor(index.objects()));

  const DistanceContext ctx = index.distance_context();
  const size_t n = approx->object_count();
  const size_t L = approx->landmark_count();
  for (ObjectId a : {ObjectId{0}, ObjectId{57}, ObjectId{130}}) {
    const std::vector<double> exact = AllObjectDistances(
        ctx, index.objects(), index.objects().object(a).position);
    std::vector<double> acc(n, 0.0);
    for (size_t l = 0; l < L; ++l) {
      simd::AltBatchBoundMax(approx->FwdRow(l), approx->BwdRow(l),
                             approx->FwdRow(l)[a], approx->BwdRow(l)[a],
                             acc.data(), n);
    }
    for (size_t b = 0; b < n; ++b) {
      if (exact[b] == kInf) continue;  // any finite bound is admissible
      EXPECT_LE(acc[b], exact[b] * (1.0 + 1e-9) + 1e-9)
          << "a=" << a << " b=" << b;
    }
  }
}

// ---- Exact-mode equivalence ----------------------------------------------

TEST(ApproxKnnTest, CoveringCandidateBudgetMatchesOracle) {
  const FloorPlan plan = MakePlan(11);
  IndexFramework index(plan, ApproxOptions());
  Rng rng(23);
  PopulateStore(GenerateObjects(plan, 150, &rng), &index.objects());
  index.RefreshApproxKnn();
  ASSERT_NE(index.approx_knn(), nullptr);

  const DistanceContext ctx = index.distance_context();
  // A candidate factor covering the whole store makes the tier exact: it
  // re-ranks every reachable object through the same distances as the
  // exact path, so only tie order may differ.
  const KnnQueryOptions covering{.use_approx = true,
                                 .approx_candidate_factor = 100000};
  for (int trial = 0; trial < 10; ++trial) {
    const Point q = RandomIndoorPosition(plan, &rng);
    for (size_t k : {1u, 5u, 20u}) {
      const auto expect = LinearScanKnn(ctx, index.objects(), q, k);
      ExpectSameNeighbors(KnnQuery(index, q, k, covering), expect);
    }
  }
}

TEST(ApproxKnnTest, ApproxDistancesAreExactForReturnedIds) {
  // Whatever the tier's recall, every returned (id, distance) pair must
  // carry the EXACT distance — the tier only ever under-reports the
  // candidate set, never the metric.
  const FloorPlan plan = MakePlan(13);
  IndexFramework index(plan, ApproxOptions());
  Rng rng(29);
  PopulateStore(GenerateObjects(plan, 200, &rng), &index.objects());
  index.RefreshApproxKnn();
  const DistanceContext ctx = index.distance_context();
  for (int trial = 0; trial < 10; ++trial) {
    const Point q = RandomIndoorPosition(plan, &rng);
    const std::vector<double> exact =
        AllObjectDistances(ctx, index.objects(), q);
    const auto got = KnnQuery(index, q, 10, {.approx_candidate_factor = 2});
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, exact[got[i].id], 1e-6);
      if (i > 0) {
        EXPECT_LE(got[i - 1].distance, got[i].distance);
      }
    }
  }
}

// ---- Recall floor ---------------------------------------------------------

TEST(ApproxKnnTest, RecallFloorOnRandomizedBuildings) {
  // bench_recall gates >= 0.99 on its operating point; the test floor is
  // deliberately looser (0.9 mean per building at the default candidate
  // factor) so it pins the contract without inheriting bench tuning.
  for (uint64_t seed : {1u, 2u, 3u}) {
    const FloorPlan plan = MakePlan(seed);
    IndexFramework index(plan, ApproxOptions());
    Rng rng(seed * 101 + 1);
    PopulateStore(GenerateObjects(plan, 300, &rng), &index.objects());
    index.RefreshApproxKnn();
    ASSERT_NE(index.approx_knn(), nullptr);
    const DistanceContext ctx = index.distance_context();
    double total = 0;
    int measured = 0;
    for (int trial = 0; trial < 25; ++trial) {
      const Point q = RandomIndoorPosition(plan, &rng);
      const auto truth = LinearScanKnn(ctx, index.objects(), q, 10);
      if (truth.empty()) continue;
      total += Recall(KnnQuery(index, q, 10), truth);
      ++measured;
    }
    ASSERT_GT(measured, 0);
    EXPECT_GE(total / measured, 0.9) << "seed " << seed;
  }
}

// ---- Refresh lifecycle ----------------------------------------------------

TEST(ApproxKnnTest, RefreshTracksMovesThroughJournal) {
  const FloorPlan plan = MakePlan(17);
  IndexFramework index(plan, ApproxOptions());
  Rng rng(31);
  PopulateStore(GenerateObjects(plan, 120, &rng), &index.objects());

  index.RefreshApproxKnn();
  const ApproxKnnIndex* approx = index.approx_knn();
  ASSERT_NE(approx, nullptr);
  EXPECT_EQ(approx->last_refresh(), ApproxKnnIndex::RefreshMode::kFull);
  EXPECT_TRUE(approx->FreshFor(index.objects()));

  // A move staleness-gates the tier; queries must fall back to the exact
  // path (and stay correct) until the next refresh.
  const IndoorObject target = index.objects().object(ObjectId{1});
  ASSERT_TRUE(index.objects()
                  .MoveObject(ObjectId{0}, target.partition, target.position)
                  .ok());
  EXPECT_FALSE(approx->FreshFor(index.objects()));
  const DistanceContext ctx = index.distance_context();
  Rng qrng(37);
  for (int trial = 0; trial < 5; ++trial) {
    const Point q = RandomIndoorPosition(plan, &qrng);
    ExpectSameNeighbors(KnnQuery(index, q, 5),
                        LinearScanKnn(ctx, index.objects(), q, 5));
  }

  // One journal-coverable move -> incremental re-embed, and the moved
  // object's row now describes its new partition.
  index.RefreshApproxKnn();
  EXPECT_EQ(approx->last_refresh(),
            ApproxKnnIndex::RefreshMode::kIncremental);
  EXPECT_TRUE(approx->FreshFor(index.objects()));
  const KnnQueryOptions covering{.approx_candidate_factor = 100000};
  for (int trial = 0; trial < 5; ++trial) {
    const Point q = RandomIndoorPosition(plan, &qrng);
    ExpectSameNeighbors(KnnQuery(index, q, 5, covering),
                        LinearScanKnn(ctx, index.objects(), q, 5));
  }

  // Insert changes the population size: incremental cannot cover it.
  ASSERT_TRUE(index.objects().Insert(target.partition, target.position).ok());
  index.RefreshApproxKnn();
  EXPECT_EQ(approx->last_refresh(), ApproxKnnIndex::RefreshMode::kFull);
  EXPECT_TRUE(approx->FreshFor(index.objects()));

  // Churn far past the journal ring (128/partition) on one partition:
  // ChangedSince reports uncoverable and the refresh goes full.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(index.objects()
                    .MoveObject(ObjectId{2}, target.partition,
                                target.position)
                    .ok());
  }
  index.RefreshApproxKnn();
  EXPECT_EQ(approx->last_refresh(), ApproxKnnIndex::RefreshMode::kFull);
  EXPECT_TRUE(approx->FreshFor(index.objects()));
}

// ---- Persistence: ANNX adoption ------------------------------------------

TEST(ApproxKnnTest, SavedEmbeddingsAdoptWhenPopulationMatches) {
  const FloorPlan plan = MakePlan(19);
  const std::string path = ::testing::TempDir() + "/approx_adopt.idx";
  {
    IndexFramework index(plan, ApproxOptions());
    Rng rng(41);
    PopulateStore(GenerateObjects(plan, 100, &rng), &index.objects());
    index.RefreshApproxKnn();
    ASSERT_NE(index.approx_knn(), nullptr);
    ASSERT_TRUE(SaveIndexContainer(index, path).ok());
  }
  for (const bool mmap_mode : {false, true}) {
    auto artifacts = mmap_mode ? MapIndexContainer(plan, path)
                               : LoadIndexContainer(plan, path);
    ASSERT_TRUE(artifacts.ok()) << artifacts.status();
    ASSERT_TRUE(artifacts->approx.has_value());
    IndexFramework index(plan, std::move(artifacts).value(), ApproxOptions());
    // The identical generator stream reproduces the saved population, so
    // the fingerprint matches and the refresh adopts zero-copy.
    Rng rng(41);
    PopulateStore(GenerateObjects(plan, 100, &rng), &index.objects());
    index.RefreshApproxKnn();
    const ApproxKnnIndex* approx = index.approx_knn();
    ASSERT_NE(approx, nullptr);
    EXPECT_EQ(approx->last_refresh(), ApproxKnnIndex::RefreshMode::kAdopted)
        << (mmap_mode ? "map" : "load");
    EXPECT_TRUE(approx->FreshFor(index.objects()));

    const DistanceContext ctx = index.distance_context();
    Rng qrng(43);
    const KnnQueryOptions covering{.approx_candidate_factor = 100000};
    for (int trial = 0; trial < 5; ++trial) {
      const Point q = RandomIndoorPosition(plan, &qrng);
      ExpectSameNeighbors(KnnQuery(index, q, 5, covering),
                          LinearScanKnn(ctx, index.objects(), q, 5));
    }
  }
  std::remove(path.c_str());
}

TEST(ApproxKnnTest, StalePayloadIsDiscardedOnFingerprintMismatch) {
  const FloorPlan plan = MakePlan(19);
  const std::string path = ::testing::TempDir() + "/approx_stale.idx";
  {
    IndexFramework index(plan, ApproxOptions());
    Rng rng(41);
    PopulateStore(GenerateObjects(plan, 100, &rng), &index.objects());
    index.RefreshApproxKnn();
    ASSERT_TRUE(SaveIndexContainer(index, path).ok());
  }
  auto artifacts = LoadIndexContainer(plan, path);
  ASSERT_TRUE(artifacts.ok()) << artifacts.status();
  ASSERT_TRUE(artifacts->approx.has_value());
  IndexFramework index(plan, std::move(artifacts).value(), ApproxOptions());
  // A different population (count AND placement) must not serve the saved
  // embeddings: the fingerprint check rejects adoption and a full rebuild
  // takes over, with query answers staying exact-equivalent.
  Rng rng(97);
  PopulateStore(GenerateObjects(plan, 80, &rng), &index.objects());
  index.RefreshApproxKnn();
  const ApproxKnnIndex* approx = index.approx_knn();
  ASSERT_NE(approx, nullptr);
  EXPECT_EQ(approx->last_refresh(), ApproxKnnIndex::RefreshMode::kFull);
  const DistanceContext ctx = index.distance_context();
  const KnnQueryOptions covering{.approx_candidate_factor = 100000};
  for (int trial = 0; trial < 5; ++trial) {
    const Point q = RandomIndoorPosition(plan, &rng);
    ExpectSameNeighbors(KnnQuery(index, q, 5, covering),
                        LinearScanKnn(ctx, index.objects(), q, 5));
  }
  std::remove(path.c_str());
}

TEST(ApproxKnnTest, StaleContainerIsNotSavedWithEmbeddings) {
  const FloorPlan plan = MakePlan(19);
  const std::string path = ::testing::TempDir() + "/approx_omit.idx";
  IndexFramework index(plan, ApproxOptions());
  Rng rng(41);
  PopulateStore(GenerateObjects(plan, 50, &rng), &index.objects());
  index.RefreshApproxKnn();
  // Staleness at save time must omit the section entirely — a saved-stale
  // payload would carry a fingerprint the loader cannot tell from fresh.
  const IndoorObject target = index.objects().object(ObjectId{1});
  ASSERT_TRUE(index.objects()
                  .MoveObject(ObjectId{0}, target.partition, target.position)
                  .ok());
  ASSERT_TRUE(SaveIndexContainer(index, path).ok());
  auto artifacts = LoadIndexContainer(plan, path);
  ASSERT_TRUE(artifacts.ok()) << artifacts.status();
  EXPECT_FALSE(artifacts->approx.has_value());
  std::remove(path.c_str());
}

// ---- SIMD kernel oracle ---------------------------------------------------

/// Scalar reference with AltTermMax semantics: a term contributes only
/// when both of its operands are finite and it strictly beats acc.
void ScalarAltBatchBoundMax(const double* fwd, const double* bwd, double fq,
                            double bq, double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (fwd[i] != kInf && fwd[i] != -kInf && fq != kInf && fq != -kInf) {
      const double t = fwd[i] - fq;
      if (t > acc[i]) acc[i] = t;
    }
    if (bwd[i] != kInf && bwd[i] != -kInf && bq != kInf && bq != -kInf) {
      const double t = bq - bwd[i];
      if (t > acc[i]) acc[i] = t;
    }
  }
}

TEST(ApproxKnnTest, SimdBatchBoundMatchesScalarBitwise) {
  Rng rng(51);
  for (const size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 33u, 100u}) {
    for (int round = 0; round < 20; ++round) {
      auto draw = [&]() {
        // ~1 in 8 entries unreachable, mirroring sparse buildings.
        if (rng.NextU64(8) == 0) return kInf;
        return rng.NextDouble(0.0, 500.0);
      };
      std::vector<double> fwd(n), bwd(n), acc(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        fwd[i] = draw();
        bwd[i] = draw();
      }
      const double fq = round % 5 == 4 ? kInf : rng.NextDouble(0.0, 500.0);
      const double bq = round % 7 == 6 ? kInf : rng.NextDouble(0.0, 500.0);
      std::vector<double> expect = acc;
      ScalarAltBatchBoundMax(fwd.data(), bwd.data(), fq, bq, expect.data(),
                             n);
      simd::AltBatchBoundMax(fwd.data(), bwd.data(), fq, bq, acc.data(), n);
      // Bitwise, not approximate: every SIMD tier promises the scalar
      // loop's exact bits (docs/BENCHMARKS.md determinism contract).
      EXPECT_EQ(std::memcmp(acc.data(), expect.data(), n * sizeof(double)),
                0)
          << "impl " << simd::kImplName << " n=" << n << " round=" << round;
    }
  }
}

// ---- Concurrency (TSan) ---------------------------------------------------

TEST(ApproxKnnTest, ConcurrentApproxReadersSeeConsistentAnswers) {
  const FloorPlan plan = MakePlan(23, 2);
  IndexFramework index(plan, ApproxOptions());
  Rng rng(61);
  PopulateStore(GenerateObjects(plan, 150, &rng), &index.objects());
  index.RefreshApproxKnn();
  ASSERT_NE(index.approx_knn(), nullptr);

  const auto positions = GenerateQueryPositions(plan, 16, &rng);
  std::vector<std::vector<Neighbor>> expect;
  for (const Point& q : positions) expect.push_back(KnnQuery(index, q, 10));

  // Phase 1: pure concurrent readers over the fresh tier.
  // Phase 2: a single writer moves objects and refreshes BETWEEN reader
  // phases (the documented single-writer barrier), then readers re-verify.
  auto read_phase = [&]() {
    std::vector<std::thread> readers;
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&, t] {
        for (int i = 0; i < 50; ++i) {
          const size_t qi = static_cast<size_t>(t * 50 + i) % positions.size();
          const auto got = KnnQuery(index, positions[qi], 10);
          if (got.size() != expect[qi].size()) {
            failures.fetch_add(1);
            continue;
          }
          for (size_t r = 0; r < got.size(); ++r) {
            if (got[r].distance != expect[qi][r].distance) {
              failures.fetch_add(1);
              break;
            }
          }
        }
      });
    }
    for (std::thread& th : readers) th.join();
    EXPECT_EQ(failures.load(), 0);
  };

  read_phase();
  const IndoorObject target = index.objects().object(ObjectId{3});
  std::vector<MoveOp> moves;
  for (ObjectId id : {ObjectId{5}, ObjectId{9}}) {
    moves.push_back({id, target.partition, target.position});
  }
  ASSERT_TRUE(index.objects().ApplyMoves(moves).ok());
  index.RefreshApproxKnn();
  index.InvalidateQueryCache();
  for (size_t qi = 0; qi < positions.size(); ++qi) {
    expect[qi] = KnnQuery(index, positions[qi], 10);
  }
  read_phase();
}

}  // namespace
}  // namespace indoor
