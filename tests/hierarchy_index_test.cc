// The hierarchy-vs-flat bitwise equality suite (the oracle contract of
// core/index/hierarchy_index.h): on randomized multi-building campus
// plans, every pt2pt, range, and kNN answer served through the
// partition-contraction hierarchy must be BIT-identical to the flat
// Md2d/Midx engine's — not approximately equal, the same doubles — with
// the cache on or off and under either Dijkstra frontier.

#include "core/index/hierarchy_index.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/query/query_engine.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

/// Bit-level double equality: distinguishes everything == cannot (NaN
/// payloads, -0.0 vs 0.0); the equality we actually promise.
bool BitEq(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

FloorPlan MakeCampus(int buildings, int floors, int rooms, uint64_t seed) {
  CampusConfig config;
  config.buildings = buildings;
  config.building.floors = floors;
  config.building.rooms_per_floor = rooms;
  config.seed = seed;
  config.building.seed = seed;
  return GenerateCampus(config);
}

IndexOptions HierOptions(bool cache, bool bucket, unsigned cell_target) {
  IndexOptions options;
  options.use_hierarchy = true;
  options.hierarchy_cell_target = cell_target;
  options.enable_query_cache = cache;
  options.use_bucket_queue = bucket;
  return options;
}

IndexOptions FlatOptions(bool cache, bool bucket) {
  IndexOptions options;
  options.enable_query_cache = cache;
  options.use_bucket_queue = bucket;
  return options;
}

/// Runs the same randomized mixed workload through both engines and
/// demands bitwise-identical answers everywhere.
void ExpectEngineEquality(const FloorPlan& plan, bool cache, bool bucket,
                          unsigned cell_target, uint64_t seed) {
  QueryEngine flat(plan, FlatOptions(cache, bucket));
  QueryEngine hier(plan, HierOptions(cache, bucket, cell_target));
  ASSERT_TRUE(hier.index().hierarchy_index().valid());

  Rng flat_rng(seed), hier_rng(seed);
  PopulateStore(GenerateObjects(flat.plan(), 400, &flat_rng),
                &flat.index().objects());
  PopulateStore(GenerateObjects(hier.plan(), 400, &hier_rng),
                &hier.index().objects());

  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  const auto pairs = GeneratePositionPairs(plan, 60, &rng);
  const auto positions = GenerateQueryPositions(plan, 60, &rng);

  for (const auto& [a, b] : pairs) {
    const double df = flat.Distance(a, b);
    const double dh = hier.Distance(a, b);
    EXPECT_TRUE(BitEq(df, dh))
        << "pt2pt mismatch: flat " << df << " vs hierarchy " << dh;
  }
  for (size_t i = 0; i < positions.size(); ++i) {
    const double r = 5.0 + static_cast<double>(i % 7) * 10.0;
    const auto rf = flat.Range(positions[i], r);
    const auto rh = hier.Range(positions[i], r);
    EXPECT_EQ(rf, rh) << "range mismatch at r=" << r;

    const size_t k = 1 + i % 13;
    const auto kf = flat.Nearest(positions[i], k);
    const auto kh = hier.Nearest(positions[i], k);
    ASSERT_EQ(kf.size(), kh.size()) << "kNN cardinality mismatch at k=" << k;
    for (size_t j = 0; j < kf.size(); ++j) {
      EXPECT_EQ(kf[j].id, kh[j].id) << "kNN id mismatch at rank " << j;
      EXPECT_TRUE(BitEq(kf[j].distance, kh[j].distance))
          << "kNN distance mismatch at rank " << j;
    }
  }
}

TEST(HierarchyIndexTest, CampusQueriesMatchFlatBitwise) {
  const FloorPlan plan = MakeCampus(3, 3, 10, 17);
  ExpectEngineEquality(plan, /*cache=*/true, /*bucket=*/true,
                       /*cell_target=*/32, /*seed=*/1);
}

TEST(HierarchyIndexTest, CacheOffMatchesFlatBitwise) {
  const FloorPlan plan = MakeCampus(2, 4, 8, 23);
  ExpectEngineEquality(plan, /*cache=*/false, /*bucket=*/true,
                       /*cell_target=*/16, /*seed=*/2);
}

TEST(HierarchyIndexTest, HeapFrontierMatchesFlatBitwise) {
  const FloorPlan plan = MakeCampus(2, 3, 9, 31);
  ExpectEngineEquality(plan, /*cache=*/true, /*bucket=*/false,
                       /*cell_target=*/16, /*seed=*/3);
}

TEST(HierarchyIndexTest, TinyCellsStressBorderPaths) {
  // cell_target 1 puts every partition in its own cell: nearly every door
  // is a border door and almost no query can use a block fast path, so
  // the bounded-Dijkstra fallbacks carry the whole workload.
  const FloorPlan plan = MakeCampus(2, 2, 6, 5);
  ExpectEngineEquality(plan, /*cache=*/true, /*bucket=*/true,
                       /*cell_target=*/1, /*seed=*/4);
}

TEST(HierarchyIndexTest, RandomizedSeedsSweep) {
  for (uint64_t seed = 100; seed < 104; ++seed) {
    const FloorPlan plan =
        MakeCampus(2 + static_cast<int>(seed % 2), 2, 7, seed);
    ExpectEngineEquality(plan, /*cache=*/(seed % 2) == 0, /*bucket=*/true,
                         /*cell_target=*/8 << (seed % 3), seed);
  }
}

TEST(HierarchyIndexTest, DoorDistanceMatchesMatrixBitwise) {
  const FloorPlan plan = MakeCampus(2, 2, 8, 7);
  QueryEngine flat(plan, FlatOptions(true, true));
  QueryEngine hier(plan, HierOptions(true, true, 16));
  const size_t n = plan.door_count();
  for (DoorId s = 0; s < n; ++s) {
    for (DoorId t = 0; t < n; ++t) {
      EXPECT_TRUE(BitEq(flat.DoorDistance(s, t), hier.DoorDistance(s, t)))
          << "door pair (" << s << ", " << t << ")";
    }
  }
}

TEST(HierarchyIndexTest, BlocksAreExactMatrixEntries) {
  // The stored structures themselves, not just query answers: every cell
  // block entry and every border-clique entry must be the flat Md2d value
  // bit for bit (the settle-prefix property of the early-terminated
  // builder runs).
  const FloorPlan plan = MakeCampus(3, 2, 6, 13);
  const DistanceGraph graph(plan);
  const DistanceMatrix md2d(graph);
  const HierarchyIndex hier =
      HierarchyIndex::Build(graph, /*threads=*/1, /*cell_target=*/16);
  ASSERT_TRUE(hier.valid());
  for (uint32_t c = 0; c < hier.cell_count(); ++c) {
    const auto members = hier.CellMembers(c);
    for (uint32_t i = 0; i < members.size(); ++i) {
      const double* row = hier.BlockRow(c, i);
      for (uint32_t j = 0; j < members.size(); ++j) {
        EXPECT_TRUE(BitEq(row[j], md2d.At(members[i], members[j])))
            << "cell " << c << " block (" << i << ", " << j << ")";
      }
    }
  }
  const auto borders = hier.border_doors();
  for (uint32_t b = 0; b < borders.size(); ++b) {
    const double* row = hier.BorderRow(b);
    for (uint32_t j = 0; j < borders.size(); ++j) {
      EXPECT_TRUE(BitEq(row[j], md2d.At(borders[b], borders[j])))
          << "border pair (" << b << ", " << j << ")";
    }
  }
}

TEST(HierarchyIndexTest, StructuralInvariantsHold) {
  const FloorPlan plan = MakeCampus(3, 2, 8, 29);
  const DistanceGraph graph(plan);
  const DistanceMatrix md2d(graph);
  const HierarchyIndex hier = HierarchyIndex::Build(graph, 1, 24);
  ASSERT_TRUE(hier.valid());
  EXPECT_EQ(hier.door_count(), plan.door_count());

  // Every door is a member of the cell(s) of its partitions, member lists
  // ascend, and LocalIndex agrees with the list position.
  size_t member_total = 0;
  for (uint32_t c = 0; c < hier.cell_count(); ++c) {
    const auto members = hier.CellMembers(c);
    member_total += members.size();
    for (uint32_t i = 0; i + 1 < members.size(); ++i) {
      EXPECT_LT(members[i], members[i + 1]);
    }
    for (uint32_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(hier.LocalIndex(c, members[i]), i);
    }
  }
  EXPECT_GE(member_total, plan.door_count());

  // Border doors are exactly the doors whose two cells differ, and the
  // escape radius of a border door is 0 in both its cells.
  for (DoorId d = 0; d < plan.door_count(); ++d) {
    const auto cells = hier.CellsOfDoor(d);
    const bool is_border = cells[1] != HierarchyIndex::kNone;
    EXPECT_EQ(hier.IsBorder(d), is_border) << "door " << d;
    if (is_border) {
      const uint32_t b = hier.BorderIndexOf(d);
      EXPECT_EQ(hier.border_doors()[b], d);
      EXPECT_EQ(hier.EscapeRadius(cells[0], hier.LocalIndex(cells[0], d)),
                0.0);
      EXPECT_EQ(hier.EscapeRadius(cells[1], hier.LocalIndex(cells[1], d)),
                0.0);
    }
  }

  // TryExact serves shared-cell pairs with the flat value; UpperBound
  // never undercuts the true distance.
  for (DoorId s = 0; s < plan.door_count(); ++s) {
    for (DoorId t = 0; t < plan.door_count(); ++t) {
      double exact = -1.0;
      if (hier.TryExact(s, t, &exact)) {
        EXPECT_TRUE(BitEq(exact, md2d.At(s, t)));
      }
      EXPECT_GE(hier.UpperBound(s, t), md2d.At(s, t) * 0.999999999);
    }
  }
}

TEST(HierarchyIndexTest, SingleBuildingPlanStillWorks) {
  // Degenerate clustering: one building fits in one cell, so every query
  // should resolve through TryExact / block scans with no border hops.
  const FloorPlan plan = MakeRunningExamplePlan();
  ExpectEngineEquality(plan, /*cache=*/true, /*bucket=*/true,
                       /*cell_target=*/128, /*seed=*/6);
}

TEST(HierarchyIndexTest, ParallelBuildIsBitIdentical) {
  const FloorPlan plan = MakeCampus(3, 3, 8, 41);
  const DistanceGraph graph(plan);
  const HierarchyIndex seq = HierarchyIndex::Build(graph, 1, 16);
  const HierarchyIndex par = HierarchyIndex::Build(graph, 4, 16);
  ASSERT_EQ(seq.cell_count(), par.cell_count());
  ASSERT_EQ(seq.border_count(), par.border_count());
  ASSERT_EQ(seq.Blocks().size(), par.Blocks().size());
  for (size_t i = 0; i < seq.Blocks().size(); ++i) {
    EXPECT_TRUE(BitEq(seq.Blocks()[i], par.Blocks()[i]));
  }
  for (size_t i = 0; i < seq.BorderMatrix().size(); ++i) {
    EXPECT_TRUE(BitEq(seq.BorderMatrix()[i], par.BorderMatrix()[i]));
  }
}

}  // namespace
}  // namespace indoor
