#include "core/query/distance_join.h"

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

/// Brute-force oracle via pairwise pt2pt distances in both directions.
std::vector<JoinPair> OracleJoin(const IndexFramework& index, double r) {
  std::vector<JoinPair> out;
  const auto ctx = index.distance_context();
  const auto& objects = index.objects().objects();
  for (size_t i = 0; i < objects.size(); ++i) {
    for (size_t j = i + 1; j < objects.size(); ++j) {
      const double forward = Pt2PtDistanceVirtual(ctx, objects[i].position,
                                                  objects[j].position);
      const double backward = Pt2PtDistanceVirtual(ctx, objects[j].position,
                                                   objects[i].position);
      const double d = std::min(forward, backward);
      if (d <= r) out.push_back({objects[i].id, objects[j].id, d});
    }
  }
  return out;
}

void ExpectSamePairs(const std::vector<JoinPair>& got,
                     const std::vector<JoinPair>& expect) {
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].a, expect[i].a) << "pair " << i;
    EXPECT_EQ(got[i].b, expect[i].b) << "pair " << i;
    EXPECT_NEAR(got[i].distance, expect[i].distance, 1e-6) << "pair " << i;
  }
}

class DistanceJoinTest : public ::testing::Test {
 protected:
  DistanceJoinTest() : plan_(MakeRunningExamplePlan(&ids_)), index_(plan_) {}

  ObjectId Add(PartitionId v, Point p) {
    auto id = index_.objects().Insert(v, p);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value();
  }

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
};

TEST_F(DistanceJoinTest, SamePartitionPair) {
  const ObjectId a = Add(ids_.v11, {1, 1});
  const ObjectId b = Add(ids_.v11, {3, 3});
  const auto pairs = DistanceJoin(index_, 3.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, a);
  EXPECT_EQ(pairs[0].b, b);
  EXPECT_NEAR(pairs[0].distance, std::sqrt(8.0), 1e-9);
  EXPECT_TRUE(DistanceJoin(index_, 2.0).empty());
}

TEST_F(DistanceJoinTest, CrossPartitionPair) {
  Add(ids_.v11, {2, 3.5});   // near d11
  Add(ids_.v10, {2, 4.5});   // just through d11
  const auto pairs = DistanceJoin(index_, 1.5);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_NEAR(pairs[0].distance, 1.0, 1e-9);
}

TEST_F(DistanceJoinTest, AsymmetricDistancesUseTheMinimum) {
  const ObjectId in_13 = Add(ids_.v13, {11, 1});
  const ObjectId in_12 = Add(ids_.v12, {6, 2});
  // d(13->12) = 3 + sqrt(5) ~ 5.24; d(12->13) ~ 10.40.
  const auto pairs = DistanceJoin(index_, 6.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, std::min(in_13, in_12));
  EXPECT_NEAR(pairs[0].distance, 3.0 + std::sqrt(5.0), 1e-9);
}

TEST_F(DistanceJoinTest, ObjectPairDistanceMatchesPt2Pt) {
  const ObjectId a = Add(ids_.v13, {11, 1});
  const ObjectId b = Add(ids_.v12, {6, 2});
  const auto ctx = index_.distance_context();
  const IndoorObject& oa = index_.objects().object(a);
  const IndoorObject& ob = index_.objects().object(b);
  const double expected =
      std::min(Pt2PtDistanceVirtual(ctx, oa.position, ob.position),
               Pt2PtDistanceVirtual(ctx, ob.position, oa.position));
  EXPECT_NEAR(ObjectPairDistance(index_, oa, ob), expected, 1e-9);
}

TEST_F(DistanceJoinTest, MatchesOracleOnRunningExample) {
  Rng rng(89);
  PopulateStore(GenerateObjects(plan_, 30, &rng), &index_.objects());
  for (double r : {3.0, 8.0, 20.0, 50.0}) {
    ExpectSamePairs(DistanceJoin(index_, r), OracleJoin(index_, r));
  }
}

TEST_F(DistanceJoinTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(DistanceJoin(index_, 10.0).empty());  // no objects
  Add(ids_.v11, {1, 1});
  EXPECT_TRUE(DistanceJoin(index_, 10.0).empty());  // a single object
  EXPECT_TRUE(DistanceJoin(index_, -1.0).empty());  // negative radius
}

TEST_F(DistanceJoinTest, ZeroRadiusKeepsColocatedPairs) {
  Add(ids_.v11, {1, 1});
  Add(ids_.v11, {1, 1});
  const auto pairs = DistanceJoin(index_, 0.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].distance, 0.0);
}

TEST_F(DistanceJoinTest, ResultsSortedByIds) {
  Rng rng(97);
  PopulateStore(GenerateObjects(plan_, 25, &rng), &index_.objects());
  const auto pairs = DistanceJoin(index_, 30.0);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_TRUE(pairs[i - 1].a < pairs[i].a ||
                (pairs[i - 1].a == pairs[i].a &&
                 pairs[i - 1].b < pairs[i].b));
  }
  for (const JoinPair& p : pairs) EXPECT_LT(p.a, p.b);
}

TEST(DistanceJoinGeneratedTest, MatchesOracleOnGeneratedBuilding) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 8;
  config.room_to_room_doors = 0.5;
  config.one_way_fraction = 0.5;
  config.seed = 101;
  FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(103);
  PopulateStore(GenerateObjects(plan, 40, &rng), &index.objects());
  for (double r : {5.0, 15.0, 40.0}) {
    ExpectSamePairs(DistanceJoin(index, r), OracleJoin(index, r));
  }
}

}  // namespace
}  // namespace indoor
