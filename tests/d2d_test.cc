// Algorithm 1 (d2dDistance) against hand-computed values on the running
// example plan.

#include "core/distance/d2d_distance.h"

#include <gtest/gtest.h>

#include "indoor/floor_plan_builder.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class D2dTest : public ::testing::Test {
 protected:
  D2dTest() : plan_(MakeRunningExamplePlan(&ids_)), graph_(plan_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
};

TEST_F(D2dTest, SameDoorIsZero) {
  EXPECT_DOUBLE_EQ(D2dDistance(graph_, ids_.d1, ids_.d1), 0.0);
  EXPECT_DOUBLE_EQ(D2dDistance(graph_, ids_.d15, ids_.d15), 0.0);
}

TEST_F(D2dTest, AdjacentDoorsThroughHallway) {
  // d1 (0,5) -> d11 (2,4) within v10.
  EXPECT_NEAR(D2dDistance(graph_, ids_.d1, ids_.d11), std::sqrt(5.0), 1e-9);
  // d1 (0,5) -> d13 (10,4) within v10.
  EXPECT_NEAR(D2dDistance(graph_, ids_.d1, ids_.d13), std::sqrt(101.0),
              1e-9);
}

TEST_F(D2dTest, ReachingOneWayDoorRequiresItsLeaveablePartition) {
  // d12 can only be approached as a leaveable door of v12, which is only
  // enterable through d15 (via room 13): d1 -> d13 -> d15 -> d12.
  const double expected =
      std::sqrt(101.0) + std::sqrt(13.0) + std::sqrt(18.0);
  EXPECT_NEAR(D2dDistance(graph_, ids_.d1, ids_.d12), expected, 1e-9);
}

TEST_F(D2dTest, DirectionalDoorsMakeMatrixAsymmetric) {
  // d12 -> d13 crosses the hallway directly (5 m); d13 -> d12 must route
  // through room 13 and the one-way d15.
  EXPECT_NEAR(D2dDistance(graph_, ids_.d12, ids_.d13), 5.0, 1e-9);
  const double reverse = std::sqrt(13.0) + std::sqrt(18.0);
  EXPECT_NEAR(D2dDistance(graph_, ids_.d13, ids_.d12), reverse, 1e-9);
  EXPECT_NE(D2dDistance(graph_, ids_.d12, ids_.d13),
            D2dDistance(graph_, ids_.d13, ids_.d12));
}

TEST_F(D2dTest, StaircaseCarriesWalkingLength) {
  EXPECT_NEAR(D2dDistance(graph_, ids_.d16, ids_.d2), 10.0, 1e-9);
  // d1 -> d16 (12 m along the hallway) -> d2 (10 m stairs).
  EXPECT_NEAR(D2dDistance(graph_, ids_.d1, ids_.d2), 22.0, 1e-9);
}

TEST_F(D2dTest, CrossFloorDistanceUsesObstructedLegs) {
  // d2 -> d21 within v20 detours around the obstacle.
  const double leg = graph_.Fd2d(ids_.v20, ids_.d2, ids_.d21);
  EXPECT_NEAR(D2dDistance(graph_, ids_.d2, ids_.d21), leg, 1e-9);
  EXPECT_GT(leg, Distance(plan_.door(ids_.d2).Midpoint(),
                          plan_.door(ids_.d21).Midpoint()));
}

TEST_F(D2dTest, TriangleInequalityOverSharedDoors) {
  // d2d(a, c) <= d2d(a, b) + d2d(b, c) for all sampled triples.
  const std::vector<DoorId> doors{ids_.d1,  ids_.d11, ids_.d13,
                                  ids_.d16, ids_.d2,  ids_.d21};
  for (DoorId a : doors) {
    for (DoorId b : doors) {
      for (DoorId c : doors) {
        const double ac = D2dDistance(graph_, a, c);
        const double ab = D2dDistance(graph_, a, b);
        const double bc = D2dDistance(graph_, b, c);
        if (ab != kInfDistance && bc != kInfDistance) {
          EXPECT_LE(ac, ab + bc + 1e-9);
        }
      }
    }
  }
}

TEST_F(D2dTest, PrevArrayReconstructsPath) {
  std::vector<PrevEntry> prev;
  const double d = D2dDistance(graph_, ids_.d1, ids_.d12, &prev);
  ASSERT_NE(d, kInfDistance);
  // Walk prev from d12 back to d1: d12 <- (v12, d15) <- (v13, d13) <-
  // (v10, d1).
  EXPECT_EQ(prev[ids_.d12].door, ids_.d15);
  EXPECT_EQ(prev[ids_.d12].partition, ids_.v12);
  EXPECT_EQ(prev[ids_.d15].door, ids_.d13);
  EXPECT_EQ(prev[ids_.d15].partition, ids_.v13);
  EXPECT_EQ(prev[ids_.d13].door, ids_.d1);
  EXPECT_EQ(prev[ids_.d13].partition, ids_.v10);
}

TEST_F(D2dTest, SingleSourceMatchesPairwise) {
  std::vector<double> dist;
  D2dDistancesFrom(graph_, ids_.d1, &dist, nullptr);
  for (DoorId d = 0; d < plan_.door_count(); ++d) {
    EXPECT_NEAR(dist[d], D2dDistance(graph_, ids_.d1, d), 1e-9);
  }
}

TEST(D2dUnreachableTest, DeadEndSourceIsUnreachable) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  const PartitionId e = b.AddPartition("e", PartitionKind::kRoom, 1,
                                       Rect(8, 0, 12, 4));
  const DoorId one_way =
      b.AddUnidirectionalDoor("ow", Segment({4, 1.8}, {4, 2.2}), a, c);
  const DoorId both =
      b.AddBidirectionalDoor("bd", Segment({8, 1.8}, {8, 2.2}), c, e);
  auto plan = std::move(b).Build();
  ASSERT_TRUE(plan.ok());
  const DistanceGraph graph(plan.value());
  // From `both` one can never reach `one_way` (nothing enters partition a).
  EXPECT_EQ(D2dDistance(graph, both, one_way), kInfDistance);
  // Forward direction works.
  EXPECT_NE(D2dDistance(graph, one_way, both), kInfDistance);
}

TEST_F(D2dTest, VisitsEachDoorAtMostOnce) {
  // Indirect check: distances are consistent and final (running twice gives
  // identical results, i.e., no state leaks).
  const double first = D2dDistance(graph_, ids_.d11, ids_.d24);
  const double second = D2dDistance(graph_, ids_.d11, ids_.d24);
  EXPECT_DOUBLE_EQ(first, second);
}

}  // namespace
}  // namespace indoor
