#include "util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace indoor {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedValuesStayInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextU64(17), 17u);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit with overwhelming prob.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // roughly uniform
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  // The child must not replay the parent's stream.
  Rng fresh(23);
  fresh.NextU64();  // align with the Fork() consumption
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.NextU64() == fresh.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextIndexWithinSize) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.NextIndex(5), 5u);
  }
}

TEST(RngTest, PlatformStableReferenceValues) {
  // Guards against accidental algorithm changes: these values are part of
  // the reproducibility contract of the experiment harness.
  Rng rng(42);
  const uint64_t a = rng.NextU64();
  const uint64_t b = rng.NextU64();
  Rng again(42);
  EXPECT_EQ(again.NextU64(), a);
  EXPECT_EQ(again.NextU64(), b);
}

}  // namespace
}  // namespace indoor
