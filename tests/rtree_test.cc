#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace indoor {
namespace {

std::vector<std::pair<Rect, uint32_t>> RandomRects(size_t n, Rng* rng) {
  std::vector<std::pair<Rect, uint32_t>> out;
  for (uint32_t i = 0; i < n; ++i) {
    const double x = rng->NextDouble(0, 100);
    const double y = rng->NextDouble(0, 100);
    out.push_back({Rect(x, y, x + rng->NextDouble(0.5, 5),
                        y + rng->NextDouble(0.5, 5)),
                   i});
  }
  return out;
}

std::vector<uint32_t> BruteForcePoint(
    const std::vector<std::pair<Rect, uint32_t>>& items, const Point& p) {
  std::vector<uint32_t> out;
  for (const auto& [r, id] : items) {
    if (r.Contains(p)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeTest, EmptyTreeQueries) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.QueryPoint({1, 1}).empty());
  EXPECT_TRUE(tree.QueryRect(Rect(0, 0, 10, 10)).empty());
  EXPECT_EQ(tree.Height(), 0);
}

TEST(RTreeTest, SingleInsertAndQuery) {
  RTree tree;
  tree.Insert(Rect(0, 0, 4, 4), 7);
  EXPECT_EQ(tree.size(), 1u);
  const auto hits = tree.QueryPoint({2, 2});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
  EXPECT_TRUE(tree.QueryPoint({5, 5}).empty());
}

TEST(RTreeTest, InsertsTriggerSplitsAndStayQueryable) {
  RTree tree(4);  // tiny fan-out forces many splits
  Rng rng(1);
  auto items = RandomRects(200, &rng);
  for (const auto& [r, id] : items) tree.Insert(r, id);
  EXPECT_EQ(tree.size(), 200u);
  tree.CheckInvariants();
  for (int trial = 0; trial < 50; ++trial) {
    const Point p(rng.NextDouble(0, 100), rng.NextDouble(0, 100));
    auto hits = tree.QueryPoint(p);
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, BruteForcePoint(items, p));
  }
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  RTree tree;
  Rng rng(2);
  auto items = RandomRects(500, &rng);
  tree.BulkLoad(items);
  EXPECT_EQ(tree.size(), 500u);
  tree.CheckInvariants();
  for (int trial = 0; trial < 50; ++trial) {
    const Point p(rng.NextDouble(0, 100), rng.NextDouble(0, 100));
    auto hits = tree.QueryPoint(p);
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, BruteForcePoint(items, p));
  }
}

TEST(RTreeTest, RectQueryMatchesBruteForce) {
  RTree tree;
  Rng rng(3);
  auto items = RandomRects(300, &rng);
  tree.BulkLoad(items);
  for (int trial = 0; trial < 30; ++trial) {
    const double x = rng.NextDouble(0, 90);
    const double y = rng.NextDouble(0, 90);
    const Rect window(x, y, x + 10, y + 10);
    auto hits = tree.QueryRect(window);
    std::sort(hits.begin(), hits.end());
    std::vector<uint32_t> expect;
    for (const auto& [r, id] : items) {
      if (r.Intersects(window)) expect.push_back(id);
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(hits, expect);
  }
}

TEST(RTreeTest, CircleQueryMatchesBruteForce) {
  RTree tree;
  Rng rng(4);
  auto items = RandomRects(300, &rng);
  tree.BulkLoad(items);
  for (int trial = 0; trial < 30; ++trial) {
    const Point c(rng.NextDouble(0, 100), rng.NextDouble(0, 100));
    const double radius = rng.NextDouble(1, 15);
    auto hits = tree.QueryCircle(c, radius);
    std::sort(hits.begin(), hits.end());
    std::vector<uint32_t> expect;
    for (const auto& [r, id] : items) {
      if (r.MinDistance(c) <= radius + kGeomEps) expect.push_back(id);
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(hits, expect);
  }
}

TEST(RTreeTest, BulkLoadThenInsertMixed) {
  RTree tree;
  Rng rng(5);
  auto items = RandomRects(100, &rng);
  tree.BulkLoad(items);
  auto extra = RandomRects(100, &rng);
  for (auto& [r, id] : extra) {
    id += 100;
    tree.Insert(r, id);
  }
  EXPECT_EQ(tree.size(), 200u);
  tree.CheckInvariants();
  auto all = items;
  all.insert(all.end(), extra.begin(), extra.end());
  for (int trial = 0; trial < 30; ++trial) {
    const Point p(rng.NextDouble(0, 100), rng.NextDouble(0, 100));
    auto hits = tree.QueryPoint(p);
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, BruteForcePoint(all, p));
  }
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree tree(8);
  Rng rng(6);
  auto items = RandomRects(1000, &rng);
  tree.BulkLoad(items);
  EXPECT_GE(tree.Height(), 3);  // ceil(log_8(1000)) >= 3 levels
  EXPECT_LE(tree.Height(), 5);
}

TEST(RTreeTest, DuplicateRectsAllRetrievable) {
  RTree tree;
  for (uint32_t i = 0; i < 20; ++i) tree.Insert(Rect(0, 0, 1, 1), i);
  auto hits = tree.QueryPoint({0.5, 0.5});
  EXPECT_EQ(hits.size(), 20u);
}

TEST(RTreeTest, BulkLoadEmptyIsValid) {
  RTree tree;
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.QueryPoint({0, 0}).empty());
}

TEST(RTreeTest, PointOnSharedBoundaryHitsBothRects) {
  RTree tree;
  tree.BulkLoad({{Rect(0, 0, 4, 4), 1}, {Rect(4, 0, 8, 4), 2}});
  auto hits = tree.QueryPoint({4, 2});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{1, 2}));
}

}  // namespace
}  // namespace indoor
