#include "core/distance/distance_field.h"

#include <gtest/gtest.h>

#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class DistanceFieldTest : public ::testing::Test {
 protected:
  DistanceFieldTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        graph_(plan_),
        locator_(plan_),
        ctx_(graph_, locator_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
  PartitionLocator locator_;
  DistanceContext ctx_;
};

TEST_F(DistanceFieldTest, InvalidForOutsideSource) {
  const DistanceField field(ctx_, {1000, 1000});
  EXPECT_FALSE(field.valid());
  EXPECT_EQ(field.DistanceTo({1, 1}), kInfDistance);
  EXPECT_EQ(field.DistanceToDoor(0), kInfDistance);
}

TEST_F(DistanceFieldTest, HostIsResolved) {
  const DistanceField field(ctx_, {2, 2});
  ASSERT_TRUE(field.valid());
  EXPECT_EQ(field.host(), ids_.v11);
}

TEST_F(DistanceFieldTest, DoorDistancesMatchSeededDijkstra) {
  const Point q(2, 2);  // room 11
  const DistanceField field(ctx_, q);
  // To d11 (its own door): the distV leg.
  EXPECT_NEAR(field.DistanceToDoor(ids_.d11), 2.0, 1e-9);
  // To d13 through the hallway.
  EXPECT_NEAR(field.DistanceToDoor(ids_.d13),
              2.0 + Distance({2, 4}, {10, 4}), 1e-9);
}

TEST_F(DistanceFieldTest, ProbesMatchPt2Pt) {
  Rng rng(111);
  const Point q = RandomIndoorPosition(plan_, &rng);
  const DistanceField field(ctx_, q);
  for (int i = 0; i < 25; ++i) {
    const PartitionId v = RandomIndoorPartition(plan_, &rng);
    const Point p = RandomPointInPartition(plan_.partition(v), &rng);
    EXPECT_NEAR(field.DistanceTo(v, p), Pt2PtDistanceBasic(ctx_, q, p),
                1e-6)
        << "q=" << q << " p=" << p;
  }
}

TEST_F(DistanceFieldTest, ProbeWithImplicitHost) {
  const DistanceField field(ctx_, {2, 2});
  EXPECT_NEAR(field.DistanceTo({3, 3}),
              Pt2PtDistanceBasic(ctx_, {2, 2}, {3, 3}), 1e-9);
  EXPECT_EQ(field.DistanceTo({1000, 1000}), kInfDistance);
}

TEST_F(DistanceFieldTest, RespectsDirectionality) {
  // From the hallway, probing into room 12 must take the long route.
  const Point q(5, 4.5);
  const DistanceField field(ctx_, q);
  const double expect = Distance(q, Point(10, 4)) + std::sqrt(13.0) +
                        Distance(Point(8, 1), Point(6, 2));
  EXPECT_NEAR(field.DistanceTo(ids_.v12, {6, 2}), expect, 1e-9);
}

TEST(DistanceFieldGeneratedTest, MatchesPt2PtOnGeneratedBuilding) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.4;
  config.one_way_fraction = 0.3;
  config.seed = 113;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  Rng rng(117);
  const Point q = RandomIndoorPosition(plan, &rng);
  const DistanceField field(ctx, q);
  for (int i = 0; i < 20; ++i) {
    const Point p = RandomIndoorPosition(plan, &rng);
    EXPECT_NEAR(field.DistanceTo(p), Pt2PtDistanceVirtual(ctx, q, p), 1e-6);
  }
}

}  // namespace
}  // namespace indoor
