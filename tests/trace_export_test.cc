// Trace-event export: exact sampling, slow-query retention, and the
// golden-path test that a two-thread batch produces valid Chrome
// trace-event JSON with non-overlapping top-level spans per track.

#include "util/trace_export.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/index/index_framework.h"
#include "core/query/batch_executor.h"
#include "indoor/sample_plans.h"
#include "util/metrics.h"

namespace indoor {
namespace trace {
namespace {

/// RAII Disable so a failing assertion cannot leak an armed collector
/// into later tests.
struct CollectorSession {
  explicit CollectorSession(const TraceExportOptions& options) {
    TraceEventCollector::Global().Enable(options);
  }
  ~CollectorSession() { TraceEventCollector::Global().Disable(); }
};

TEST(TraceEventCollectorTest, SamplingRateIsExact) {
  CollectorSession session(TraceExportOptions{.sample_every = 4});
  TraceEventCollector& collector = TraceEventCollector::Global();
  for (int i = 0; i < 16; ++i) {
    metrics::QueryTrace trace;
    collector.Offer(trace, 0, "t", static_cast<uint64_t>(i), /*slow=*/false);
  }
  // Tickets 0, 4, 8, 12 fire: exactly 1-in-4 regardless of timing.
  EXPECT_EQ(collector.trace_count(), 4u);
}

TEST(TraceEventCollectorTest, SlowTracesBypassSampling) {
  CollectorSession session(TraceExportOptions{.sample_every = 0});
  TraceEventCollector& collector = TraceEventCollector::Global();
  {
    metrics::QueryTrace trace;
    collector.Offer(trace, 0, "t", 0, /*slow=*/false);
  }
  EXPECT_EQ(collector.trace_count(), 0u);
  {
    metrics::QueryTrace trace;
    collector.Offer(trace, 0, "t", 1, /*slow=*/true);
  }
  EXPECT_EQ(collector.trace_count(), 1u);
}

TEST(TraceEventCollectorTest, MaxTracesCapsCollection) {
  CollectorSession session(
      TraceExportOptions{.sample_every = 1, .max_traces = 3});
  TraceEventCollector& collector = TraceEventCollector::Global();
  for (int i = 0; i < 10; ++i) {
    metrics::QueryTrace trace;
    collector.Offer(trace, 0, "t", static_cast<uint64_t>(i), false);
  }
  EXPECT_EQ(collector.trace_count(), 3u);
}

TEST(TraceEventCollectorTest, DisableDisarmsAndClears) {
  TraceEventCollector& collector = TraceEventCollector::Global();
  {
    CollectorSession session(TraceExportOptions{.sample_every = 1});
    EXPECT_TRUE(collector.armed());
    metrics::QueryTrace trace;
    collector.Offer(trace, 0, "t", 0, false);
    EXPECT_EQ(collector.trace_count(), 1u);
  }
  EXPECT_FALSE(collector.armed());
  EXPECT_EQ(collector.trace_count(), 0u);
  metrics::QueryTrace trace;
  collector.Offer(trace, 0, "t", 0, false);
  EXPECT_EQ(collector.trace_count(), 0u);
}

TEST(TraceEventCollectorTest, EmptyCollectorWritesValidSkeleton) {
  std::string json;
  TraceEventCollector::Global().WriteChromeJson(&json);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden-path: a real two-thread batch through BatchExecutor. The recording
// site only installs traces when the metrics build is on.

#ifdef INDOOR_METRICS_ENABLED

/// One "ph": "X" complete event pulled back out of the exported JSON.
struct ParsedEvent {
  uint32_t tid = 0;
  int depth = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Extracts a numeric field ("\"key\": 12.3") from one JSON event line.
double NumberField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

/// Minimal structural validity: every brace/bracket outside of string
/// literals balances, and the document is one object.
bool BalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceExportGoldenTest, TwoThreadBatchProducesValidChromeTrace) {
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  IndexFramework index(plan);
  ASSERT_TRUE(index.objects().Insert(ids.v12, Point{6, 2}).ok());
  ASSERT_TRUE(index.objects().Insert(ids.v11, Point{2, 2}).ok());

  std::vector<QueryRequest> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(QueryRequest::Range(Point{1.0 + i * 0.5, 1.0}, 30.0));
    requests.push_back(QueryRequest::Knn(Point{1.0, 1.0 + i * 0.25}, 1));
  }

  CollectorSession session(TraceExportOptions{.sample_every = 1});
  BatchExecutor executor(index, /*threads=*/2);
  executor.Run(requests);

  TraceEventCollector& collector = TraceEventCollector::Global();
  EXPECT_EQ(collector.trace_count(), requests.size());
  std::string json;
  collector.WriteChromeJson(&json);

  ASSERT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker "), std::string::npos);

  // Pull every complete event back out (the writer emits one per line).
  std::vector<ParsedEvent> events;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    const std::string line = json.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find("\"ph\": \"X\"") == std::string::npos) continue;
    ParsedEvent event;
    event.tid = static_cast<uint32_t>(NumberField(line, "tid"));
    event.depth = static_cast<int>(NumberField(line, "depth"));
    event.ts_us = NumberField(line, "ts");
    event.dur_us = NumberField(line, "dur");
    events.push_back(event);
  }
  ASSERT_FALSE(events.empty());

  // Per track, top-level spans are sequential query executions on one
  // worker thread and must not overlap on the shared timeline. (Nested
  // spans overlap their parents by design — only depth 0 is checked.)
  std::map<uint32_t, std::vector<ParsedEvent>> tracks;
  for (const ParsedEvent& event : events) {
    EXPECT_LT(event.tid, 2u);  // two workers -> tracks 0 and 1 only
    if (event.depth == 0) tracks[event.tid].push_back(event);
  }
  ASSERT_FALSE(tracks.empty());
  for (auto& [tid, spans] : tracks) {
    std::sort(spans.begin(), spans.end(),
              [](const ParsedEvent& a, const ParsedEvent& b) {
                return a.ts_us < b.ts_us;
              });
    for (size_t i = 1; i < spans.size(); ++i) {
      // 1ns slack for the fractional-microsecond text round trip.
      EXPECT_LE(spans[i - 1].ts_us + spans[i - 1].dur_us,
                spans[i].ts_us + 0.001)
          << "overlapping spans on track " << tid;
    }
  }
}

#endif  // INDOOR_METRICS_ENABLED

}  // namespace
}  // namespace trace
}  // namespace indoor
