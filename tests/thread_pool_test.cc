// ThreadPool and ParallelFor: exactly-once iteration, deterministic
// Status propagation, serial fallback, and pool reuse.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace indoor {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardware) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: must not deadlock
}

TEST(ParallelForTest, EveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 5u, 8u}) {
    std::vector<std::atomic<int>> hits(1000);
    const Status st = ParallelFor(0, hits.size(), threads,
                                  [&](size_t i) { ++hits[i]; });
    EXPECT_TRUE(st.ok());
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, DisjointSlotWritesMatchSerial) {
  std::vector<int> serial(512), parallel(512);
  auto body = [](std::vector<int>& out) {
    return [&out](size_t i) { out[i] = static_cast<int>(i * i % 97); };
  };
  ASSERT_TRUE(ParallelFor(0, serial.size(), 1, body(serial)).ok());
  ASSERT_TRUE(ParallelFor(0, parallel.size(), 8, body(parallel)).ok());
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForTest, EmptyAndReversedRangesAreOk) {
  EXPECT_TRUE(ParallelFor(0, 0, 4, [](size_t) {}).ok());
  EXPECT_TRUE(ParallelFor(5, 5, 4, [](size_t) {}).ok());
  EXPECT_TRUE(ParallelFor(9, 3, 4, [](size_t) {}).ok());
}

TEST(ParallelForTest, SubRangeOffsetsAreRespected) {
  std::atomic<size_t> sum{0};
  ASSERT_TRUE(ParallelFor(10, 20, 3, [&](size_t i) { sum += i; }).ok());
  EXPECT_EQ(sum.load(), size_t{145});  // 10 + 11 + ... + 19
}

TEST(ParallelForTest, ReportsLowestFailingIndex) {
  // Indexes 700 and 13 both fail; the reported error must be index 13's
  // regardless of scheduling.
  for (unsigned threads : {1u, 8u}) {
    std::atomic<int> ran{0};
    const Status st = ParallelFor(0, 1000, threads, [&](size_t i) {
      ++ran;
      if (i == 13) return Status::InvalidArgument("lowest");
      if (i == 700) return Status::Internal("highest");
      return Status::OK();
    });
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(st.message(), "lowest");
    // Every-index-exactly-once holds even under failure.
    EXPECT_EQ(ran.load(), 1000);
  }
}

TEST(ParallelForTest, PoolOverloadSharesWorkers) {
  ThreadPool pool(4);
  std::vector<int> out(256, 0);
  const Status st =
      ParallelFor(pool, 0, out.size(), [&](size_t i) { out[i] = 1; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 256);
  // The pool stays usable afterwards.
  std::atomic<int> extra{0};
  pool.Submit([&extra] { ++extra; });
  pool.Wait();
  EXPECT_EQ(extra.load(), 1);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ASSERT_TRUE(ParallelFor(0, hits.size(), 16, [&](size_t i) {
                ++hits[i];
              }).ok());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace indoor
