#include "core/distance/shortest_path.h"

#include <gtest/gtest.h>

#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class ShortestPathTest : public ::testing::Test {
 protected:
  ShortestPathTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        graph_(plan_),
        locator_(plan_),
        ctx_(graph_, locator_) {}

  static double PolylineLength(const std::vector<Point>& pts) {
    double len = 0;
    for (size_t i = 1; i < pts.size(); ++i) {
      len += Distance(pts[i - 1], pts[i]);
    }
    return len;
  }

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
  PartitionLocator locator_;
  DistanceContext ctx_;
};

TEST_F(ShortestPathTest, D2dPathSequencesDoorsAndPartitions) {
  const IndoorPath path = D2dShortestPath(graph_, ids_.d1, ids_.d12);
  ASSERT_TRUE(path.found());
  EXPECT_EQ(path.doors,
            (std::vector<DoorId>{ids_.d1, ids_.d13, ids_.d15, ids_.d12}));
  EXPECT_EQ(path.partitions,
            (std::vector<PartitionId>{ids_.v10, ids_.v13, ids_.v12}));
  EXPECT_NEAR(path.length,
              std::sqrt(101.0) + std::sqrt(13.0) + std::sqrt(18.0), 1e-9);
}

TEST_F(ShortestPathTest, D2dUnreachableYieldsNotFound) {
  // Build the dead-end case inline: see d2d_test for the topology.
  const IndoorPath path = D2dShortestPath(graph_, ids_.d1, ids_.d1);
  EXPECT_TRUE(path.found());
  EXPECT_DOUBLE_EQ(path.length, 0.0);
  EXPECT_EQ(path.doors, std::vector<DoorId>{ids_.d1});
}

TEST_F(ShortestPathTest, Pt2PtPathMatchesDistance) {
  const Point p(11, 1), q(4.5, 4.5);
  const IndoorPath path = Pt2PtShortestPath(ctx_, p, q);
  ASSERT_TRUE(path.found());
  EXPECT_NEAR(path.length, Pt2PtDistanceBasic(ctx_, p, q), 1e-9);
  EXPECT_EQ(path.doors, (std::vector<DoorId>{ids_.d15, ids_.d12}));
  EXPECT_EQ(path.partitions,
            (std::vector<PartitionId>{ids_.v13, ids_.v12, ids_.v10}));
}

TEST_F(ShortestPathTest, WaypointsStartAndEndAtQueryPositions) {
  const Point p(11, 1), q(4.5, 4.5);
  const IndoorPath path = Pt2PtShortestPath(ctx_, p, q);
  ASSERT_GE(path.waypoints.size(), 2u);
  EXPECT_EQ(path.waypoints.front(), p);
  EXPECT_EQ(path.waypoints.back(), q);
}

TEST_F(ShortestPathTest, UnexpandedPolylineLengthMatchesInConvexPlan) {
  // Floor-1 partitions are obstacle-free, so door-midpoint waypoints
  // already realize the walking distance.
  const Point p(11, 1), q(4.5, 4.5);
  const IndoorPath path = Pt2PtShortestPath(ctx_, p, q);
  EXPECT_NEAR(PolylineLength(path.waypoints), path.length, 1e-9);
}

TEST_F(ShortestPathTest, SamePartitionPathHasNoDoors) {
  const IndoorPath path = Pt2PtShortestPath(ctx_, {1, 1}, {3, 3});
  ASSERT_TRUE(path.found());
  EXPECT_TRUE(path.doors.empty());
  EXPECT_EQ(path.partitions, std::vector<PartitionId>{ids_.v11});
  EXPECT_NEAR(path.length, std::sqrt(8.0), 1e-9);
}

TEST_F(ShortestPathTest, ExpandedWaypointsDetourAroundObstacles) {
  // Path within v20 from near d2 to near d21 must round the obstacle.
  const Point p(20.5, 5), q(27.5, 1);
  const IndoorPath direct = Pt2PtShortestPath(ctx_, p, q, false);
  const IndoorPath expanded = Pt2PtShortestPath(ctx_, p, q, true);
  ASSERT_TRUE(direct.found());
  EXPECT_NEAR(direct.length, expanded.length, 1e-9);
  // The expanded polyline realizes the obstructed length; the unexpanded
  // one cuts through the obstacle and is shorter than the true distance.
  EXPECT_NEAR(PolylineLength(expanded.waypoints), expanded.length, 1e-9);
  EXPECT_GE(expanded.waypoints.size(), direct.waypoints.size());
}

TEST_F(ShortestPathTest, PathNotFoundForOutsidePositions) {
  const IndoorPath path = Pt2PtShortestPath(ctx_, {1000, 1000}, {1, 1});
  EXPECT_FALSE(path.found());
  EXPECT_TRUE(path.waypoints.empty());
}

TEST_F(ShortestPathTest, CrossFloorPathWalksTheStaircase) {
  const Point p(6, 5);    // floor-1 hallway
  const Point q(30, 7);   // floor-2 room v21
  const IndoorPath path = Pt2PtShortestPath(ctx_, p, q);
  ASSERT_TRUE(path.found());
  // Must pass through both staircase doors in order.
  const auto& doors = path.doors;
  const auto it16 = std::find(doors.begin(), doors.end(), ids_.d16);
  const auto it2 = std::find(doors.begin(), doors.end(), ids_.d2);
  ASSERT_NE(it16, doors.end());
  ASSERT_NE(it2, doors.end());
  EXPECT_LT(it16 - doors.begin(), it2 - doors.begin());
  // The staircase partition appears between them.
  const auto itv = std::find(path.partitions.begin(), path.partitions.end(),
                             ids_.v50);
  EXPECT_NE(itv, path.partitions.end());
}

}  // namespace
}  // namespace indoor
