// Md2d and Midx (paper §IV-A) structural properties.

#include "core/index/distance_matrix.h"

#include <gtest/gtest.h>

#include <set>

#include "core/distance/d2d_distance.h"
#include "core/index/distance_index_matrix.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class MatrixTest : public ::testing::Test {
 protected:
  MatrixTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        graph_(plan_),
        matrix_(graph_),
        midx_(matrix_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
  DistanceMatrix matrix_;
  DistanceIndexMatrix midx_;
};

TEST_F(MatrixTest, DiagonalIsZero) {
  for (DoorId d = 0; d < plan_.door_count(); ++d) {
    EXPECT_DOUBLE_EQ(matrix_.At(d, d), 0.0);
  }
}

TEST_F(MatrixTest, MatchesAlgorithmOne) {
  for (DoorId a = 0; a < plan_.door_count(); ++a) {
    for (DoorId b = 0; b < plan_.door_count(); ++b) {
      EXPECT_NEAR(matrix_.At(a, b), D2dDistance(graph_, a, b), 1e-9)
          << "mismatch at (" << a << ", " << b << ")";
    }
  }
}

TEST_F(MatrixTest, AsymmetricDueToDirectionalDoors) {
  // Paper: Md2d[di, dj] may differ from Md2d[dj, di].
  EXPECT_NE(matrix_.At(ids_.d12, ids_.d13), matrix_.At(ids_.d13, ids_.d12));
}

TEST_F(MatrixTest, RowPointerMatchesAt) {
  const double* row = matrix_.Row(ids_.d1);
  for (DoorId d = 0; d < plan_.door_count(); ++d) {
    EXPECT_DOUBLE_EQ(row[d], matrix_.At(ids_.d1, d));
  }
}

TEST_F(MatrixTest, MemoryAccounting) {
  const size_t n = plan_.door_count();
  EXPECT_EQ(matrix_.MemoryBytes(), n * n * sizeof(double));
  EXPECT_EQ(midx_.MemoryBytes(), n * n * sizeof(DoorId));
}

TEST_F(MatrixTest, MidxRowsAreSortedByDistance) {
  // Defining property: Md2d[di, Midx[di,j]] <= Md2d[di, Midx[di,k]] for
  // j < k.
  for (DoorId di = 0; di < plan_.door_count(); ++di) {
    for (size_t j = 1; j < plan_.door_count(); ++j) {
      EXPECT_LE(matrix_.At(di, midx_.At(di, j - 1)),
                matrix_.At(di, midx_.At(di, j)))
          << "row " << di << " unsorted at " << j;
    }
  }
}

TEST_F(MatrixTest, MidxRowsArePermutations) {
  for (DoorId di = 0; di < plan_.door_count(); ++di) {
    std::set<DoorId> seen;
    for (size_t j = 0; j < plan_.door_count(); ++j) {
      seen.insert(midx_.At(di, j));
    }
    EXPECT_EQ(seen.size(), plan_.door_count());
  }
}

TEST_F(MatrixTest, MidxFirstEntryIsSelf) {
  // Distance 0 to itself sorts first (ties broken by id, and the self
  // distance is the unique hard zero unless co-located doors exist).
  for (DoorId di = 0; di < plan_.door_count(); ++di) {
    EXPECT_DOUBLE_EQ(matrix_.At(di, midx_.At(di, 0)), 0.0);
  }
}

TEST_F(MatrixTest, MidxRowPointerMatchesAt) {
  const DoorId* row = midx_.Row(ids_.d13);
  for (size_t j = 0; j < plan_.door_count(); ++j) {
    EXPECT_EQ(row[j], midx_.At(ids_.d13, j));
  }
}

TEST_F(MatrixTest, TriangleInequalityAcrossMatrix) {
  const size_t n = plan_.door_count();
  for (DoorId a = 0; a < n; ++a) {
    for (DoorId b = 0; b < n; ++b) {
      if (matrix_.At(a, b) == kInfDistance) continue;
      for (DoorId c = 0; c < n; ++c) {
        if (matrix_.At(b, c) == kInfDistance) continue;
        EXPECT_LE(matrix_.At(a, c),
                  matrix_.At(a, b) + matrix_.At(b, c) + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace indoor
