// Golden equivalence suite for the one-to-many geodesic solver, the CSR
// graph layouts, and the QueryScratch-based hot path: every optimized
// entry point must return EXACTLY the values of the historical per-door /
// per-object implementations (kept verbatim in core/query/reference_impls),
// on randomized buildings with and without obstructed rooms. Also exercises
// concurrent queries with per-thread scratch (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/distance/pt2pt_distance.h"
#include "core/distance/query_scratch.h"
#include "core/query/query_engine.h"
#include "core/query/reference_impls.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"

namespace indoor {
namespace {

BuildingConfig SmallBuilding(uint64_t seed, double obstacle_probability) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.3;
  config.obstacle_probability = obstacle_probability;
  config.seed = seed;
  return config;
}

// --------------------------------------------------------------- geometry

TEST(OneToManyTest, IntraDistancesMatchPerTargetExactly) {
  for (const double obstacles : {0.0, 1.0}) {
    const FloorPlan plan =
        GenerateBuilding(SmallBuilding(211, obstacles));
    Rng rng(223);
    GeodesicScratch scratch;
    for (PartitionId v = 0; v < plan.partition_count(); ++v) {
      const Partition& part = plan.partition(v);
      // Source inside the partition; targets mix its door midpoints (the
      // hot-path case) with random indoor points (some outside -> infinity).
      const Point source = RandomPointInPartition(part, &rng);
      std::vector<Point> targets;
      for (DoorId d : plan.EnterDoors(v)) {
        targets.push_back(plan.door(d).Midpoint());
      }
      for (int i = 0; i < 4; ++i) {
        targets.push_back(RandomIndoorPosition(plan, &rng));
      }
      std::vector<double> batched(targets.size());
      part.IntraDistancesToMany(source, targets, &scratch, batched.data());
      for (size_t i = 0; i < targets.size(); ++i) {
        EXPECT_EQ(batched[i], part.IntraDistance(source, targets[i]))
            << "partition " << v << " target " << i << " obstacles "
            << obstacles;
      }
    }
  }
}

TEST(OneToManyTest, DistVManyMatchesPerDoorExactly) {
  for (const double obstacles : {0.0, 1.0}) {
    const FloorPlan plan =
        GenerateBuilding(SmallBuilding(227, obstacles));
    const PartitionLocator locator(plan);
    Rng rng(229);
    GeodesicScratch scratch;
    const auto queries = GenerateQueryPositions(plan, 32, &rng);
    for (const Point& q : queries) {
      const auto host = locator.GetHostPartition(q);
      ASSERT_TRUE(host.ok());
      const PartitionId v = host.value();
      // All doors, including ones not touching v (must report infinity).
      std::vector<DoorId> doors(plan.door_count());
      for (DoorId d = 0; d < plan.door_count(); ++d) doors[d] = d;
      std::vector<double> batched(doors.size());
      locator.DistVMany(v, q, doors, &scratch, batched.data());
      for (DoorId d = 0; d < plan.door_count(); ++d) {
        EXPECT_EQ(batched[d], locator.DistV(v, q, d)) << "door " << d;
      }
    }
  }
}

// ------------------------------------------------------------- door graph

TEST(OneToManyTest, CsrD2dMatchesReferenceExactly) {
  const FloorPlan plan = GenerateBuilding(SmallBuilding(233, 0.5));
  const DistanceGraph graph(plan);
  DoorDijkstraScratch scratch;
  Rng rng(239);
  for (int i = 0; i < 64; ++i) {
    const DoorId a = static_cast<DoorId>(rng.NextIndex(plan.door_count()));
    const DoorId b = static_cast<DoorId>(rng.NextIndex(plan.door_count()));
    const double expect = reference::D2dDistance(graph, a, b);
    EXPECT_EQ(D2dDistance(graph, a, b), expect);
    EXPECT_EQ(D2dDistance(graph, a, b, &scratch), expect);
  }
}

TEST(OneToManyTest, DoorCsrAgreesWithFd2d) {
  const FloorPlan plan = GenerateBuilding(SmallBuilding(241, 0.0));
  const DistanceGraph graph(plan);
  // Every CSR edge must carry the exact fd2d weight it was built from, and
  // the reverse CSR must be the exact transpose of the forward CSR.
  size_t forward_edges = 0;
  size_t reverse_edges = 0;
  for (DoorId d = 0; d < plan.door_count(); ++d) {
    for (const DoorGraphEdge& e : graph.DoorEdges(d)) {
      ++forward_edges;
      EXPECT_EQ(e.weight, graph.Fd2d(e.via, d, e.to));
      bool found = false;
      for (const DoorGraphEdge& r : graph.ReverseDoorEdges(e.to)) {
        if (r.to == d && r.via == e.via && r.weight == e.weight) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "edge " << d << "->" << e.to
                         << " missing from reverse CSR";
    }
    reverse_edges += graph.ReverseDoorEdges(d).size();
  }
  EXPECT_GT(forward_edges, 0u);
  EXPECT_EQ(forward_edges, reverse_edges);
}

// ------------------------------------------------------------ query paths

TEST(OneToManyTest, Pt2PtVariantsMatchReferenceExactly) {
  for (const double obstacles : {0.0, 0.7}) {
    const FloorPlan plan =
        GenerateBuilding(SmallBuilding(251, obstacles));
    const DistanceGraph graph(plan);
    const PartitionLocator locator(plan);
    const DistanceContext ctx(graph, locator);
    Rng rng(257);
    const auto pairs = GeneratePositionPairsByArea(plan, 24, &rng);
    QueryScratch scratch;
    for (const auto& [ps, pt] : pairs) {
      const double basic = reference::Pt2PtDistanceBasic(ctx, ps, pt);
      const double refined = reference::Pt2PtDistanceRefined(ctx, ps, pt);
      // Null scratch (thread-local arena) and explicit scratch.
      EXPECT_EQ(Pt2PtDistanceBasic(ctx, ps, pt), basic);
      EXPECT_EQ(Pt2PtDistanceBasic(ctx, ps, pt, &scratch), basic);
      EXPECT_EQ(Pt2PtDistanceRefined(ctx, ps, pt), refined);
      EXPECT_EQ(Pt2PtDistanceRefined(ctx, ps, pt, &scratch), refined);
      // Hinted contexts (known host partitions) must not change results.
      const auto vs = locator.GetHostPartition(ps);
      const auto vt = locator.GetHostPartition(pt);
      if (vs.ok() && vt.ok()) {
        const DistanceContext hinted = ctx.WithHints(vs.value(), vt.value());
        EXPECT_EQ(Pt2PtDistanceRefined(hinted, ps, pt, &scratch), refined);
        EXPECT_EQ(Pt2PtDistanceBasic(hinted, ps, pt, &scratch), basic);
      }
      // Reuse/Virtual are independent algorithms (different addition
      // orders), so they match Refined only mathematically — but explicit
      // scratch must be bit-identical to their own null-scratch (TLS) runs.
      const double vvirt = Pt2PtDistanceVirtual(ctx, ps, pt);
      const double vreuse = Pt2PtDistanceReuse(ctx, ps, pt);
      EXPECT_EQ(Pt2PtDistanceVirtual(ctx, ps, pt, &scratch), vvirt);
      EXPECT_EQ(
          Pt2PtDistanceReuse(ctx, ps, pt, ReusePolicy::kSafe, &scratch),
          vreuse);
      if (refined < kInfDistance) {
        EXPECT_NEAR(vvirt, refined, 1e-6 * (1.0 + refined));
        EXPECT_NEAR(vreuse, refined, 1e-6 * (1.0 + refined));
      }
    }
  }
}

TEST(OneToManyTest, RangeAndKnnMatchReferenceExactly) {
  for (const double obstacles : {0.0, 0.7}) {
    BuildingConfig config = SmallBuilding(263, obstacles);
    QueryEngine engine(GenerateBuilding(config));
    Rng rng(269);
    PopulateStore(GenerateObjects(engine.plan(), 400, &rng),
                  &engine.index().objects());
    const auto queries = GenerateQueryPositions(engine.plan(), 24, &rng);
    QueryScratch scratch;
    for (const Point& q : queries) {
      for (const double r : {5.0, 20.0, 60.0}) {
        const auto expect = reference::RangeQuery(engine.index(), q, r);
        EXPECT_EQ(RangeQuery(engine.index(), q, r), expect);
        EXPECT_EQ(RangeQuery(engine.index(), q, r, {}, &scratch), expect);
      }
      for (const size_t k : {1u, 5u, 25u}) {
        const auto expect = reference::KnnQuery(engine.index(), q, k);
        EXPECT_EQ(KnnQuery(engine.index(), q, k), expect);
        EXPECT_EQ(KnnQuery(engine.index(), q, k, {}, &scratch), expect);
      }
    }
  }
}

TEST(OneToManyTest, ScratchSurvivesAcrossEngines) {
  // One scratch reused against two different buildings: the geodesic source
  // cache must revalidate (it is keyed on region identity + source), never
  // leak values across plans.
  QueryScratch scratch;
  for (const uint64_t seed : {271u, 277u}) {
    const FloorPlan plan = GenerateBuilding(SmallBuilding(seed, 0.5));
    const DistanceGraph graph(plan);
    const PartitionLocator locator(plan);
    const DistanceContext ctx(graph, locator);
    Rng rng(seed + 1);
    const auto pairs = GeneratePositionPairsByArea(plan, 12, &rng);
    for (const auto& [ps, pt] : pairs) {
      EXPECT_EQ(Pt2PtDistanceRefined(ctx, ps, pt, &scratch),
                reference::Pt2PtDistanceRefined(ctx, ps, pt));
    }
  }
}

// ------------------------------------------------------------ concurrency

TEST(OneToManyTest, ConcurrentQueriesWithPerThreadScratch) {
  QueryEngine engine(GenerateBuilding(SmallBuilding(281, 0.5)));
  Rng rng(283);
  PopulateStore(GenerateObjects(engine.plan(), 300, &rng),
                &engine.index().objects());
  const auto queries = GenerateQueryPositions(engine.plan(), 48, &rng);
  const auto pairs = GeneratePositionPairsByArea(engine.plan(), 48, &rng);
  const DistanceContext ctx = engine.index().distance_context();

  // Sequential golden answers.
  std::vector<double> expect_dist(pairs.size());
  std::vector<std::vector<ObjectId>> expect_range(queries.size());
  std::vector<std::vector<Neighbor>> expect_knn(queries.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    expect_dist[i] =
        Pt2PtDistanceRefined(ctx, pairs[i].first, pairs[i].second);
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    expect_range[i] = engine.Range(queries[i], 20.0);
    expect_knn[i] = engine.Nearest(queries[i], 10);
  }

  std::atomic<size_t> next{0};
  std::atomic<int> mismatches{0};
  auto worker = [&] {
    QueryScratch scratch;  // one scratch per thread, used for every query
    for (size_t i = next.fetch_add(1); i < pairs.size();
         i = next.fetch_add(1)) {
      if (Pt2PtDistanceRefined(ctx, pairs[i].first, pairs[i].second,
                               &scratch) != expect_dist[i]) {
        ++mismatches;
      }
      const size_t qi = i % queries.size();
      if (engine.Range(queries[qi], 20.0, {}, &scratch) !=
          expect_range[qi]) {
        ++mismatches;
      }
      if (engine.Nearest(queries[qi], 10, {}, &scratch) != expect_knn[qi]) {
        ++mismatches;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(OneToManyTest, ConcurrentQueriesWithThreadLocalScratch) {
  // Null-scratch callers fall back to TlsQueryScratch(); concurrent use
  // must stay correct and race-free.
  QueryEngine engine(GenerateBuilding(SmallBuilding(293, 0.3)));
  Rng rng(307);
  PopulateStore(GenerateObjects(engine.plan(), 200, &rng),
                &engine.index().objects());
  const auto queries = GenerateQueryPositions(engine.plan(), 32, &rng);
  std::vector<std::vector<Neighbor>> expect(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expect[i] = engine.Nearest(queries[i], 5);
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        if (engine.Nearest(queries[i], 5) != expect[i]) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace indoor
