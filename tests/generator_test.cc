// The synthetic building generator must reproduce the paper's workload
// shape: 30 rooms + 2 staircase doors per (middle) floor, star topology,
// flattened staircase flights carrying walking lengths.

#include "gen/building_generator.h"

#include <gtest/gtest.h>

#include "core/model/accessibility_graph.h"
#include "core/model/distance_graph.h"
#include "core/model/locator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"

namespace indoor {
namespace {

TEST(GeneratorTest, PaperDoorCountFormula) {
  // Doors = 30*F rooms + 2*(F-1) staircase + 1 entrance. For F = 40 the
  // paper reports 32 doors per floor and 1280 total; ours is 1279 (the top
  // and ground floors have one staircase door each).
  BuildingConfig config;
  config.floors = 40;
  config.rooms_per_floor = 30;
  const FloorPlan plan = GenerateBuilding(config);
  EXPECT_EQ(plan.door_count(), 30u * 40 + 2 * 39 + 1);
  // Partitions: outdoor + per floor (hallway + 30 rooms) + 39 flights.
  EXPECT_EQ(plan.partition_count(), 1u + 40 * 31 + 39);
  EXPECT_EQ(plan.FloorCount(), 40);
}

TEST(GeneratorTest, SingleFloorBuilding) {
  BuildingConfig config;
  config.floors = 1;
  config.rooms_per_floor = 10;
  const FloorPlan plan = GenerateBuilding(config);
  EXPECT_EQ(plan.door_count(), 10u + 1);  // rooms + entrance
  EXPECT_EQ(plan.FloorCount(), 1);
}

TEST(GeneratorTest, StarTopologyRoomsTouchOnlyTheHallway) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 8;
  const FloorPlan plan = GenerateBuilding(config);
  for (const Partition& part : plan.partitions()) {
    if (part.kind() != PartitionKind::kRoom) continue;
    const auto& doors = plan.TouchingDoors(part.id());
    ASSERT_EQ(doors.size(), 1u) << part.name();
    // The other side of the room's door is a hallway.
    const auto [a, b] = plan.ConnectedPair(doors[0]);
    const PartitionId other = (a == part.id()) ? b : a;
    EXPECT_EQ(plan.partition(other).kind(), PartitionKind::kHallway);
  }
}

TEST(GeneratorTest, MiddleFloorsHaveTwoStaircaseDoors) {
  BuildingConfig config;
  config.floors = 5;
  config.rooms_per_floor = 6;
  const FloorPlan plan = GenerateBuilding(config);
  std::vector<int> stair_doors_per_floor(config.floors + 1, 0);
  for (const Partition& part : plan.partitions()) {
    if (part.kind() != PartitionKind::kHallway) continue;
    for (DoorId d : plan.TouchingDoors(part.id())) {
      const auto [a, b] = plan.ConnectedPair(d);
      const PartitionId other = (a == part.id()) ? b : a;
      if (plan.partition(other).kind() == PartitionKind::kStaircase) {
        ++stair_doors_per_floor[part.floor()];
      }
    }
  }
  EXPECT_EQ(stair_doors_per_floor[1], 1);
  for (int f = 2; f < config.floors; ++f) {
    EXPECT_EQ(stair_doors_per_floor[f], 2) << "floor " << f;
  }
  EXPECT_EQ(stair_doors_per_floor[config.floors], 1);
}

TEST(GeneratorTest, StaircaseFlightsCarryWalkingLength) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 6;
  config.stair_walk_length = 12.5;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  for (const Partition& part : plan.partitions()) {
    if (part.kind() != PartitionKind::kStaircase) continue;
    const auto& doors = plan.TouchingDoors(part.id());
    ASSERT_EQ(doors.size(), 2u);
    EXPECT_NEAR(graph.Fd2d(part.id(), doors[0], doors[1]), 12.5, 1e-9);
  }
}

TEST(GeneratorTest, RoomSizesVary) {
  BuildingConfig config;
  config.floors = 1;
  config.rooms_per_floor = 20;
  config.room_size_jitter = 0.3;
  const FloorPlan plan = GenerateBuilding(config);
  double min_area = 1e18, max_area = 0;
  for (const Partition& part : plan.partitions()) {
    if (part.kind() != PartitionKind::kRoom) continue;
    const double area = part.footprint().outer().Area();
    min_area = std::min(min_area, area);
    max_area = std::max(max_area, area);
  }
  EXPECT_GT(max_area, min_area * 1.05);  // sizes genuinely differ
}

TEST(GeneratorTest, BuildingIsStronglyConnected) {
  BuildingConfig config;
  config.floors = 4;
  config.rooms_per_floor = 10;
  const FloorPlan plan = GenerateBuilding(config);
  const AccessibilityGraph graph(plan);
  EXPECT_TRUE(graph.IsStronglyConnected());
}

TEST(GeneratorTest, DeterministicForFixedSeed) {
  BuildingConfig config;
  config.floors = 2;
  config.seed = 77;
  const FloorPlan a = GenerateBuilding(config);
  const FloorPlan b = GenerateBuilding(config);
  ASSERT_EQ(a.door_count(), b.door_count());
  for (DoorId d = 0; d < a.door_count(); ++d) {
    EXPECT_TRUE(ApproxEqual(a.door(d).Midpoint(), b.door(d).Midpoint()));
  }
}

TEST(GeneratorTest, ObjectsLandInsideTheirPartitions) {
  BuildingConfig config;
  config.floors = 3;
  const FloorPlan plan = GenerateBuilding(config);
  Rng rng(5);
  for (const GeneratedObject& obj : GenerateObjects(plan, 500, &rng)) {
    EXPECT_TRUE(plan.partition(obj.partition).Contains(obj.position));
    EXPECT_FALSE(plan.partition(obj.partition).IsOutdoor());
  }
}

TEST(GeneratorTest, QueryPositionsAreIndoors) {
  BuildingConfig config;
  config.floors = 2;
  const FloorPlan plan = GenerateBuilding(config);
  const PartitionLocator locator(plan);
  Rng rng(6);
  for (const Point& q : GenerateQueryPositions(plan, 100, &rng)) {
    const auto host = locator.GetHostPartition(q);
    ASSERT_TRUE(host.ok());
    EXPECT_FALSE(plan.partition(host.value()).IsOutdoor());
  }
}

TEST(GeneratorTest, PositionPairsAreWellFormed) {
  BuildingConfig config;
  config.floors = 2;
  const FloorPlan plan = GenerateBuilding(config);
  Rng rng(7);
  const auto pairs = GeneratePositionPairs(plan, 50, &rng);
  EXPECT_EQ(pairs.size(), 50u);
}

TEST(GeneratorTest, RoomToRoomDoorsCreateNeighborLinks) {
  BuildingConfig config;
  config.floors = 1;
  config.rooms_per_floor = 20;
  config.room_to_room_doors = 1.0;  // every neighbor pair gets a door
  const FloorPlan plan = GenerateBuilding(config);
  // 20 rooms (10 per side) + entrance + 2*9 neighbor doors.
  EXPECT_EQ(plan.door_count(), 20u + 1 + 18);
  // Some room now touches two+ doors.
  size_t multi_door_rooms = 0;
  for (const Partition& part : plan.partitions()) {
    if (part.kind() == PartitionKind::kRoom &&
        plan.TouchingDoors(part.id()).size() >= 2) {
      ++multi_door_rooms;
    }
  }
  EXPECT_GT(multi_door_rooms, 10u);
}

TEST(GeneratorTest, OneWayFractionProducesUnidirectionalDoors) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 20;
  config.room_to_room_doors = 1.0;
  config.one_way_fraction = 1.0;
  const FloorPlan plan = GenerateBuilding(config);
  size_t one_way = 0;
  for (const Door& door : plan.doors()) {
    if (!plan.IsBidirectional(door.id())) ++one_way;
  }
  // Exactly the room-to-room doors are one-way: 2 floors * 2 sides * 9.
  EXPECT_EQ(one_way, 2u * 2 * 9);
}

TEST(GeneratorTest, RoomToRoomBuildingStaysStronglyConnected) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.7;
  config.one_way_fraction = 0.5;
  const FloorPlan plan = GenerateBuilding(config);
  const AccessibilityGraph graph(plan);
  // Hallway doors remain bidirectional, so connectivity survives.
  EXPECT_TRUE(graph.IsStronglyConnected());
}

TEST(GeneratorTest, ObstacleProbabilityPlacesPillars) {
  BuildingConfig config;
  config.floors = 1;
  config.rooms_per_floor = 20;
  config.obstacle_probability = 1.0;
  const FloorPlan plan = GenerateBuilding(config);
  size_t with_obstacles = 0;
  for (const Partition& part : plan.partitions()) {
    if (part.kind() != PartitionKind::kRoom) continue;
    EXPECT_TRUE(part.footprint().HasObstacles()) << part.name();
    ++with_obstacles;
    // The pillar never blocks the room: its door remains reachable from
    // every free corner.
    const auto& doors = plan.TouchingDoors(part.id());
    ASSERT_FALSE(doors.empty());
    const Point door = plan.door(doors[0]).Midpoint();
    for (const Point& corner : part.footprint().outer().vertices()) {
      EXPECT_NE(part.IntraDistance(corner, door), kInfDistance);
    }
  }
  EXPECT_EQ(with_obstacles, 20u);
}

TEST(GeneratorTest, ParallelStaircasesDoubleTheFlights) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 6;
  config.parallel_staircases = true;
  const FloorPlan plan = GenerateBuilding(config);
  size_t flights = 0;
  for (const Partition& part : plan.partitions()) {
    if (part.kind() == PartitionKind::kStaircase) ++flights;
  }
  EXPECT_EQ(flights, 2u * 2);  // two gaps x two shafts
}

TEST(GeneratorTest, NoOutdoorVariant) {
  BuildingConfig config;
  config.floors = 2;
  config.with_outdoor = false;
  const FloorPlan plan = GenerateBuilding(config);
  for (const Partition& part : plan.partitions()) {
    EXPECT_FALSE(part.IsOutdoor());
  }
}

TEST(GeneratorTest, CampusSharesOneOutdoorPartition) {
  CampusConfig config;
  config.buildings = 3;
  config.building.floors = 2;
  config.building.rooms_per_floor = 6;
  const FloorPlan plan = GenerateCampus(config);
  size_t outdoor = 0, entrances = 0;
  PartitionId outdoor_id = kInvalidId;
  for (const Partition& part : plan.partitions()) {
    if (part.IsOutdoor()) {
      ++outdoor;
      outdoor_id = part.id();
    }
  }
  EXPECT_EQ(outdoor, 1u);
  for (const Door& d : plan.doors()) {
    for (const DoorConnection& c : plan.D2P(d.id())) {
      if (c.from == outdoor_id || c.to == outdoor_id) {
        ++entrances;
        break;
      }
    }
  }
  EXPECT_EQ(entrances, 3u);  // one entrance per building
}

TEST(GeneratorTest, CampusIsStronglyConnectedAcrossBuildings) {
  CampusConfig config;
  config.buildings = 2;
  config.building.floors = 2;
  config.building.rooms_per_floor = 5;
  const FloorPlan plan = GenerateCampus(config);
  const AccessibilityGraph graph(plan);
  EXPECT_TRUE(graph.IsStronglyConnected());
}

TEST(GeneratorTest, CampusIsDeterministicPerSeed) {
  CampusConfig config;
  config.buildings = 2;
  config.building.floors = 2;
  config.building.rooms_per_floor = 5;
  const FloorPlan a = GenerateCampus(config);
  const FloorPlan b = GenerateCampus(config);
  ASSERT_EQ(a.door_count(), b.door_count());
  ASSERT_EQ(a.partition_count(), b.partition_count());
  for (DoorId d = 0; d < a.door_count(); ++d) {
    EXPECT_EQ(a.door(d).Midpoint().x, b.door(d).Midpoint().x);
    EXPECT_EQ(a.door(d).Midpoint().y, b.door(d).Midpoint().y);
  }
  config.seed = 99;
  config.building.seed = 99;
  const FloorPlan c = GenerateCampus(config);
  bool differs = c.door_count() != a.door_count();
  for (DoorId d = 0; !differs && d < a.door_count(); ++d) {
    differs = a.door(d).Midpoint().x != c.door(d).Midpoint().x;
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, SingleBuildingCampusMatchesBuildingTopology) {
  CampusConfig config;
  config.buildings = 1;
  config.building.floors = 3;
  config.building.rooms_per_floor = 8;
  const FloorPlan campus = GenerateCampus(config);
  BuildingConfig solo = config.building;
  solo.with_outdoor = true;
  const FloorPlan building = GenerateBuilding(solo);
  EXPECT_EQ(campus.partition_count(), building.partition_count());
  EXPECT_EQ(campus.door_count(), building.door_count());
}

}  // namespace
}  // namespace indoor
