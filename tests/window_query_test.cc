#include "core/query/window_query.h"

#include <gtest/gtest.h>

#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class WindowQueryTest : public ::testing::Test {
 protected:
  WindowQueryTest() : plan_(MakeRunningExamplePlan(&ids_)), index_(plan_) {}

  ObjectId Add(PartitionId v, Point p) {
    auto id = index_.objects().Insert(v, p);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value();
  }

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
};

TEST_F(WindowQueryTest, FindsObjectsInsideTheWindow) {
  const ObjectId in1 = Add(ids_.v11, {1, 1});
  const ObjectId in2 = Add(ids_.v12, {5, 1});
  Add(ids_.v21, {30, 4});  // far outside
  const auto result = WindowQuery(index_, Rect(0, 0, 8, 4));
  EXPECT_EQ(result, (std::vector<ObjectId>{in1, in2}));
}

TEST_F(WindowQueryTest, ClosedBoundaries) {
  const ObjectId on_edge = Add(ids_.v11, {4, 2});
  EXPECT_EQ(WindowQuery(index_, Rect(0, 0, 4, 4)),
            std::vector<ObjectId>{on_edge});
  EXPECT_EQ(WindowQuery(index_, Rect(4, 2, 5, 3)),
            std::vector<ObjectId>{on_edge});
}

TEST_F(WindowQueryTest, EmptyWindowAndEmptyStore) {
  EXPECT_TRUE(WindowQuery(index_, Rect(0, 0, 40, 15)).empty());
  Add(ids_.v11, {1, 1});
  EXPECT_TRUE(WindowQuery(index_, Rect(100, 100, 110, 110)).empty());
}

TEST_F(WindowQueryTest, CrossesPartitionAndFloorBands) {
  const ObjectId a = Add(ids_.v13, {11, 1});
  const ObjectId b = Add(ids_.v10, {11, 5});
  const ObjectId c = Add(ids_.v50, {13, 5});
  const auto result = WindowQuery(index_, Rect(10, 0, 14, 6));
  EXPECT_EQ(result, (std::vector<ObjectId>{a, b, c}));
}

TEST_F(WindowQueryTest, CountMatchesQuerySize) {
  Rng rng(269);
  PopulateStore(GenerateObjects(plan_, 60, &rng), &index_.objects());
  for (const Rect& window :
       {Rect(0, 0, 12, 6), Rect(20, 0, 32, 12), Rect(-5, -5, 37, 15),
        Rect(3, 3, 5, 5)}) {
    EXPECT_EQ(WindowCount(index_, window),
              WindowQuery(index_, window).size());
  }
}

TEST_F(WindowQueryTest, MatchesBruteForce) {
  Rng rng(271);
  PopulateStore(GenerateObjects(plan_, 80, &rng), &index_.objects());
  for (int trial = 0; trial < 15; ++trial) {
    const double x = rng.NextDouble(-5, 30);
    const double y = rng.NextDouble(-5, 10);
    const Rect window(x, y, x + rng.NextDouble(1, 15),
                      y + rng.NextDouble(1, 8));
    std::vector<ObjectId> expect;
    for (const IndoorObject& obj : index_.objects().objects()) {
      if (window.Contains(obj.position)) expect.push_back(obj.id);
    }
    EXPECT_EQ(WindowQuery(index_, window), expect);
  }
}

TEST(WindowQueryGeneratedTest, ViewportOverGeneratedBuilding) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 10;
  config.seed = 277;
  FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(281);
  PopulateStore(GenerateObjects(plan, 500, &rng), &index.objects());
  // Whole-building window returns everything.
  Rect all = Rect::Empty();
  for (const Partition& part : plan.partitions()) {
    all = all.Union(part.footprint().outer().BoundingBox());
  }
  EXPECT_EQ(WindowQuery(index, all).size(), 500u);
  // A floor-1 band returns only floor-1 objects.
  const Rect band(all.lo.x, all.lo.y, all.hi.x, all.lo.y + 10);
  for (ObjectId id : WindowQuery(index, band)) {
    EXPECT_LE(index.objects().object(id).position.y, all.lo.y + 10);
  }
}

}  // namespace
}  // namespace indoor
