// Update-heavy serving suite: batched move ingest (ObjectStore::ApplyMoves
// / ApplyMoveBatch) and the epoch-versioned, partition-scoped result-cache
// invalidation it feeds (query_cache.h).
//
// The load-bearing properties:
//
//   * ApplyMoves is exactly a recorded sequence of MoveObject calls —
//     same final store state, same per-partition epochs, same
//     stop-at-first-error semantics;
//   * epochs bump only for the partitions a write touches;
//   * a cached engine stays bitwise-identical to an uncached engine while
//     moves interleave with queries — stale cached results are repaired
//     from the per-partition change journal when possible and rejected
//     otherwise, never served unpatched;
//   * cached results survive writes to partitions outside their recorded
//     dependency set (the point of partition-scoped invalidation);
//   * geometry entries (distance fields, host lookups) survive every
//     write;
//   * the whole read/write surface is clean under TSan when readers and
//     writers honor the documented shared/exclusive locking contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/query/batch_executor.h"
#include "core/query/query_cache.h"
#include "core/query/query_engine.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"

namespace indoor {
namespace {

BuildingConfig SmallBuilding(uint64_t seed, double obstacle_probability,
                             int floors = 3) {
  BuildingConfig config;
  config.floors = floors;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.3;
  config.obstacle_probability = obstacle_probability;
  config.seed = seed;
  return config;
}

IndexOptions CacheOptions(bool enabled) {
  IndexOptions options;
  options.enable_query_cache = enabled;
  return options;
}

/// `count` valid random moves over the store's current population.
std::vector<MoveOp> RandomMoves(const FloorPlan& plan, size_t object_count,
                                size_t count, Rng* rng) {
  const PartitionSampler sampler(plan);
  std::vector<MoveOp> moves;
  moves.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PartitionId target = sampler.Sample(rng);
    moves.push_back(
        MoveOp{static_cast<ObjectId>(rng->NextIndex(object_count)), target,
               RandomPointInPartition(plan.partition(target), rng)});
  }
  return moves;
}

// ------------------------------------------------------------- ApplyMoves

TEST(ApplyMovesTest, MatchesSequentialMoveObject) {
  const FloorPlan plan = GenerateBuilding(SmallBuilding(91, 0.0));
  ObjectStore batched(plan);
  ObjectStore sequential(plan);
  Rng rng(92);
  const auto objects = GenerateObjects(plan, 120, &rng);
  PopulateStore(objects, &batched);
  PopulateStore(objects, &sequential);

  const auto moves = RandomMoves(plan, batched.size(), 60, &rng);
  size_t applied = 0;
  ASSERT_TRUE(batched.ApplyMoves(moves, &applied).ok());
  EXPECT_EQ(applied, moves.size());
  for (const MoveOp& op : moves) {
    ASSERT_TRUE(sequential.MoveObject(op.id, op.partition, op.position).ok());
  }

  ASSERT_EQ(batched.size(), sequential.size());
  for (ObjectId id = 0; id < batched.size(); ++id) {
    EXPECT_EQ(batched.object(id).partition, sequential.object(id).partition);
    EXPECT_EQ(batched.object(id).position, sequential.object(id).position);
  }
  for (PartitionId v = 0; v < plan.partition_count(); ++v) {
    EXPECT_EQ(batched.epoch(v), sequential.epoch(v)) << "partition " << v;
  }
}

TEST(ApplyMovesTest, StopsAtFirstErrorKeepingPrefixApplied) {
  const FloorPlan plan = GenerateBuilding(SmallBuilding(93, 0.0));
  ObjectStore store(plan);
  Rng rng(94);
  PopulateStore(GenerateObjects(plan, 50, &rng), &store);

  auto moves = RandomMoves(plan, store.size(), 6, &rng);
  // Distinct ids, so each prefix op's final position is its own.
  for (size_t i = 0; i < moves.size(); ++i) {
    moves[i].id = static_cast<ObjectId>(i);
  }
  moves[3].id = static_cast<ObjectId>(store.size() + 7);  // unknown object
  const IndoorObject untouched = store.object(moves[5].id);

  size_t applied = 99;
  const Status status = store.ApplyMoves(moves, &applied);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(applied, 3u);
  // The prefix landed...
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(store.object(moves[i].id).position, moves[i].position);
  }
  // ...and ops after the failing one were never attempted (moves[5] moved
  // a different object than the prefix, so its state is the pre-batch
  // one unless an earlier op happened to move the same id).
  bool moved_earlier = false;
  for (size_t i = 0; i < 3; ++i) {
    if (moves[i].id == moves[5].id) moved_earlier = true;
  }
  if (!moved_earlier) {
    EXPECT_EQ(store.object(moves[5].id).partition, untouched.partition);
    EXPECT_EQ(store.object(moves[5].id).position, untouched.position);
  }
}

TEST(ApplyMovesTest, EpochsBumpOnlyTouchedPartitions) {
  const FloorPlan plan = GenerateBuilding(SmallBuilding(95, 0.0));
  ObjectStore store(plan);
  Rng rng(96);
  const PartitionSampler sampler(plan);
  const PartitionId a = sampler.Sample(&rng);
  PartitionId b = sampler.Sample(&rng);
  while (b == a) b = sampler.Sample(&rng);

  const auto id = store.Insert(a, RandomPointInPartition(plan.partition(a),
                                                         &rng));
  ASSERT_TRUE(id.ok());

  std::vector<uint64_t> before(plan.partition_count());
  for (PartitionId v = 0; v < plan.partition_count(); ++v) {
    before[v] = store.epoch(v);
  }

  // Cross-partition move: source and destination bump, nothing else.
  ASSERT_TRUE(store
                  .MoveObject(id.value(), b,
                              RandomPointInPartition(plan.partition(b), &rng))
                  .ok());
  for (PartitionId v = 0; v < plan.partition_count(); ++v) {
    if (v == a || v == b) {
      EXPECT_EQ(store.epoch(v), before[v] + 1) << "partition " << v;
    } else {
      EXPECT_EQ(store.epoch(v), before[v]) << "partition " << v;
    }
  }

  // Intra-partition move: exactly one bump.
  const uint64_t b_epoch = store.epoch(b);
  ASSERT_TRUE(store
                  .MoveObject(id.value(), b,
                              RandomPointInPartition(plan.partition(b), &rng))
                  .ok());
  EXPECT_EQ(store.epoch(b), b_epoch + 1);
  EXPECT_EQ(store.epoch(a), before[a] + 1);
}

// ------------------------------------------- cached vs uncached under moves

// The central exactness oracle of this PR: with moves interleaved between
// query rounds, a cached engine must stay bitwise-identical to an
// uncached engine over the identical evolving population — and the runs
// must actually exercise both the result-cache hit path and the
// epoch-rejection path, which the final stats assertions pin.
TEST(UpdateIngestTest, CachedMatchesUncachedUnderInterleavedMoves) {
  for (const uint64_t seed : {311u, 1013u}) {
    const BuildingConfig config = SmallBuilding(seed, 0.5);
    QueryEngine cached(GenerateBuilding(config), CacheOptions(true));
    QueryEngine uncached(GenerateBuilding(config), CacheOptions(false));
    ASSERT_NE(cached.index().query_cache(), nullptr);

    Rng objects_rng(seed + 1);
    const auto objects = GenerateObjects(cached.plan(), 300, &objects_rng);
    PopulateStore(objects, &cached.index().objects());
    PopulateStore(objects, &uncached.index().objects());

    Rng rng(seed + 2);
    const auto positions = GenerateQueryPositions(cached.plan(), 16, &rng);
    const auto host = cached.Locate(positions[0]);
    ASSERT_TRUE(host.ok());

    for (int round = 0; round < 4; ++round) {
      // Two passes per round: the second pass re-asks a warm cache, so
      // hits are held to exactness, not only misses.
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t i = 0; i < positions.size(); ++i) {
          const Point& q = positions[i];
          EXPECT_EQ(cached.Range(q, 20.0), uncached.Range(q, 20.0))
              << "range " << i << " round " << round << " pass " << pass;
          const auto cached_knn = cached.Nearest(q, 5);
          const auto uncached_knn = uncached.Nearest(q, 5);
          ASSERT_EQ(cached_knn.size(), uncached_knn.size())
              << "knn " << i << " round " << round << " pass " << pass;
          for (size_t j = 0; j < cached_knn.size(); ++j) {
            EXPECT_EQ(cached_knn[j].id, uncached_knn[j].id);
            EXPECT_EQ(cached_knn[j].distance, uncached_knn[j].distance)
                << "knn " << i << " neighbor " << j << " round " << round;
          }
        }
      }
      // Interleave: batched ingest on the cached engine, the recorded
      // sequential equivalent on the uncached one. One move always lands
      // in positions[0]'s host partition, guaranteeing at least one
      // epoch rejection next round.
      auto moves =
          RandomMoves(cached.plan(), cached.index().objects().size(), 12,
                      &rng);
      moves[0].partition = host.value();
      moves[0].position = RandomPointInPartition(
          cached.plan().partition(host.value()), &rng);
      ASSERT_TRUE(cached.ApplyMoves(moves).ok());
      for (const MoveOp& op : moves) {
        ASSERT_TRUE(
            uncached.MoveObject(op.id, op.partition, op.position).ok());
      }
    }

    const QueryCache& cache = *cached.index().query_cache();
    EXPECT_GT(cache.ResultStats().hits, 0u);
    // Stale entries must actually be exercised: either repaired in place
    // or rejected — with spare-neighbor overprovisioning most (sometimes
    // all) stale probes are absorbed by repair.
    EXPECT_GT(cache.EpochRejects() + cache.Repairs(), 0u);
  }
}

// Partition-scoped is the point: a write OUTSIDE a cached result's
// dependency set must not cost the entry. A small radius keeps the range
// reach set on the query's own floor, so moving an object two floors away
// provably cannot be a dependency.
TEST(UpdateIngestTest, ResultsSurviveMovesOutsideDependencySet) {
  const BuildingConfig config = SmallBuilding(501, 0.0, /*floors=*/4);
  QueryEngine cached(GenerateBuilding(config), CacheOptions(true));
  QueryEngine uncached(GenerateBuilding(config), CacheOptions(false));
  Rng rng(502);
  const auto objects = GenerateObjects(cached.plan(), 400, &rng);
  PopulateStore(objects, &cached.index().objects());
  PopulateStore(objects, &uncached.index().objects());
  const QueryCache& cache = *cached.index().query_cache();

  const auto positions = GenerateQueryPositions(cached.plan(), 8, &rng);
  const Point q = positions[0];
  const auto host = cached.Locate(q);
  ASSERT_TRUE(host.ok());
  const int host_floor = cached.plan().partition(host.value()).floor();
  const double r = 1.5;

  // Miss + insert, then a clean hit.
  EXPECT_EQ(cached.Range(q, r), uncached.Range(q, r));
  const uint64_t hits_before = cache.ResultStats().hits;
  EXPECT_EQ(cached.Range(q, r), uncached.Range(q, r));
  EXPECT_EQ(cache.ResultStats().hits, hits_before + 1);

  // An object at least two floors away: with r = 1.5 no reach-set
  // partition can be that far (any inter-floor walk exceeds the radius).
  ObjectId far_id = kInvalidId;
  for (const IndoorObject& obj : cached.index().objects().objects()) {
    const int floor = cached.plan().partition(obj.partition).floor();
    if (floor >= host_floor + 2 || floor + 2 <= host_floor) {
      far_id = obj.id;
      break;
    }
  }
  ASSERT_NE(far_id, kInvalidId);
  const PartitionId far_part = cached.index().objects().object(far_id).partition;
  const Point far_pos =
      RandomPointInPartition(cached.plan().partition(far_part), &rng);
  ASSERT_TRUE(cached.MoveObject(far_id, far_part, far_pos).ok());
  ASSERT_TRUE(uncached.MoveObject(far_id, far_part, far_pos).ok());

  // Still a hit: the far partition is not in the entry's dependency set.
  const uint64_t rejects_before = cache.EpochRejects();
  const uint64_t hits_mid = cache.ResultStats().hits;
  EXPECT_EQ(cached.Range(q, r), uncached.Range(q, r));
  EXPECT_EQ(cache.ResultStats().hits, hits_mid + 1);
  EXPECT_EQ(cache.EpochRejects(), rejects_before);

  // A write INTO the host partition (always a dependency) makes the entry
  // stale — but the change journal names the one moved object, so the
  // cached result is repaired in place rather than rejected, and the
  // patched answer must match the uncached engine bitwise.
  const uint64_t repairs_before = cache.Repairs();
  const Point host_pos =
      RandomPointInPartition(cached.plan().partition(host.value()), &rng);
  ASSERT_TRUE(cached.MoveObject(far_id, host.value(), host_pos).ok());
  ASSERT_TRUE(uncached.MoveObject(far_id, host.value(), host_pos).ok());
  EXPECT_EQ(cached.Range(q, r), uncached.Range(q, r));
  EXPECT_EQ(cache.EpochRejects(), rejects_before);
  EXPECT_EQ(cache.Repairs(), repairs_before + 1);

  // Same staleness contract for kNN (its dependency set also always
  // includes the host partition): the entry is either revalidated (the
  // moved object provably cannot enter the top-k) or rejected and
  // re-solved — exactly one of the two, and the answer matches the
  // uncached engine exactly either way.
  EXPECT_EQ(cached.Nearest(q, 2).size(), uncached.Nearest(q, 2).size());
  const uint64_t knn_rejects = cache.EpochRejects();
  const uint64_t knn_repairs = cache.Repairs();
  const Point host_pos2 =
      RandomPointInPartition(cached.plan().partition(host.value()), &rng);
  ASSERT_TRUE(cached.MoveObject(far_id, host.value(), host_pos2).ok());
  ASSERT_TRUE(uncached.MoveObject(far_id, host.value(), host_pos2).ok());
  const auto cached_knn = cached.Nearest(q, 2);
  const auto uncached_knn = uncached.Nearest(q, 2);
  ASSERT_EQ(cached_knn.size(), uncached_knn.size());
  for (size_t j = 0; j < cached_knn.size(); ++j) {
    EXPECT_EQ(cached_knn[j].id, uncached_knn[j].id);
    EXPECT_EQ(cached_knn[j].distance, uncached_knn[j].distance);
  }
  EXPECT_EQ(cache.EpochRejects() + cache.Repairs(),
            knn_rejects + knn_repairs + 1);
}

// When one partition churns past the change-journal window between two
// executions of the same query, the stale entry is no longer repairable:
// it must fall back to an epoch reject and a full re-solve (which still
// matches the uncached engine).
TEST(UpdateIngestTest, JournalOverflowFallsBackToReject) {
  const BuildingConfig config = SmallBuilding(701, 0.0);
  QueryEngine cached(GenerateBuilding(config), CacheOptions(true));
  QueryEngine uncached(GenerateBuilding(config), CacheOptions(false));
  Rng rng(702);
  const auto objects = GenerateObjects(cached.plan(), 200, &rng);
  PopulateStore(objects, &cached.index().objects());
  PopulateStore(objects, &uncached.index().objects());
  const QueryCache& cache = *cached.index().query_cache();

  const Point q = GenerateQueryPositions(cached.plan(), 1, &rng)[0];
  const auto host = cached.Locate(q);
  ASSERT_TRUE(host.ok());
  const double r = 2.0;
  EXPECT_EQ(cached.Range(q, r), uncached.Range(q, r));  // miss + insert

  // Churn a single object inside the host partition more times than the
  // journal can hold, so ChangedSince cannot reconstruct the window.
  ObjectId mover = kInvalidId;
  for (const IndoorObject& obj : cached.index().objects().objects()) {
    if (obj.partition == host.value()) {
      mover = obj.id;
      break;
    }
  }
  ASSERT_NE(mover, kInvalidId);
  const Partition& host_part = cached.plan().partition(host.value());
  for (size_t i = 0; i < ObjectStore::kChangeJournalCapacity + 8; ++i) {
    const Point pos = RandomPointInPartition(host_part, &rng);
    ASSERT_TRUE(cached.MoveObject(mover, host.value(), pos).ok());
    ASSERT_TRUE(uncached.MoveObject(mover, host.value(), pos).ok());
  }

  const uint64_t rejects_before = cache.EpochRejects();
  const uint64_t repairs_before = cache.Repairs();
  EXPECT_EQ(cached.Range(q, r), uncached.Range(q, r));
  EXPECT_EQ(cache.EpochRejects(), rejects_before + 1);
  EXPECT_EQ(cache.Repairs(), repairs_before);
}

// Repair handles both directions of membership change: an object moved
// into range is added to the patched result, one moved away is removed —
// without re-running the search, and always matching the uncached engine.
TEST(UpdateIngestTest, RepairAddsAndRemovesMovedObjects) {
  const BuildingConfig config = SmallBuilding(711, 0.0);
  QueryEngine cached(GenerateBuilding(config), CacheOptions(true));
  QueryEngine uncached(GenerateBuilding(config), CacheOptions(false));
  Rng rng(712);
  const auto objects = GenerateObjects(cached.plan(), 150, &rng);
  PopulateStore(objects, &cached.index().objects());
  PopulateStore(objects, &uncached.index().objects());
  const QueryCache& cache = *cached.index().query_cache();

  const Point q = GenerateQueryPositions(cached.plan(), 1, &rng)[0];
  const auto host = cached.Locate(q);
  ASSERT_TRUE(host.ok());
  const Partition& host_part = cached.plan().partition(host.value());
  const double r = 3.0;
  const auto baseline = cached.Range(q, r);
  EXPECT_EQ(baseline, uncached.Range(q, r));

  // Park an object directly AT the query point: distance 0 <= r, so the
  // repaired result must now contain it.
  ObjectId mover = 0;
  ASSERT_TRUE(cached.MoveObject(mover, host.value(), q).ok());
  ASSERT_TRUE(uncached.MoveObject(mover, host.value(), q).ok());
  const uint64_t repairs_before = cache.Repairs();
  const auto with_mover = cached.Range(q, r);
  EXPECT_EQ(with_mover, uncached.Range(q, r));
  EXPECT_TRUE(std::binary_search(with_mover.begin(), with_mover.end(), mover));
  EXPECT_EQ(cache.Repairs(), repairs_before + 1);

  // Now move it somewhere inside the host partition; whether it stays in
  // the result is position-dependent, but repair must keep the cached
  // engine exactly in line with the uncached one.
  const Point away = RandomPointInPartition(host_part, &rng);
  ASSERT_TRUE(cached.MoveObject(mover, host.value(), away).ok());
  ASSERT_TRUE(uncached.MoveObject(mover, host.value(), away).ok());
  const auto after = cached.Range(q, r);
  EXPECT_EQ(after, uncached.Range(q, r));
  EXPECT_EQ(cache.Repairs(), repairs_before + 2);
}

// Writes must no longer clear geometry entries: distance fields and host
// lookups are object-independent, so AddObject/MoveObject keep them (the
// historical behavior invalidated the whole cache on every write).
TEST(UpdateIngestTest, GeometryCacheEntriesSurviveWrites) {
  QueryEngine engine(GenerateBuilding(SmallBuilding(61, 0.5)),
                     CacheOptions(true));
  Rng rng(62);
  PopulateStore(GenerateObjects(engine.plan(), 100, &rng),
                &engine.index().objects());
  const QueryCache& cache = *engine.index().query_cache();

  const auto pairs = GeneratePositionPairs(engine.plan(), 4, &rng);
  for (const auto& [a, b] : pairs) engine.Distance(a, b);
  const uint64_t field_entries = cache.FieldStats().entries;
  const uint64_t host_entries = cache.HostStats().entries;
  ASSERT_GT(field_entries, 0u);
  ASSERT_GT(host_entries, 0u);

  const auto placement = GenerateObjects(engine.plan(), 1, &rng);
  ASSERT_TRUE(
      engine.AddObject(placement[0].partition, placement[0].position).ok());
  const auto moves =
      RandomMoves(engine.plan(), engine.index().objects().size(), 8, &rng);
  ASSERT_TRUE(engine.ApplyMoves(moves).ok());

  EXPECT_EQ(cache.FieldStats().entries, field_entries);
  EXPECT_EQ(cache.HostStats().entries, host_entries);
  const uint64_t field_hits = cache.FieldStats().hits;
  for (const auto& [a, b] : pairs) engine.Distance(a, b);
  EXPECT_GT(cache.FieldStats().hits, field_hits);

  // The operator-facing full reset still clears everything.
  cache.Invalidate();
  EXPECT_EQ(cache.FieldStats().entries, 0u);
  EXPECT_EQ(cache.HostStats().entries, 0u);
  EXPECT_EQ(cache.ResultStats().entries, 0u);
}

// ------------------------------------------------------------ concurrency

// The documented serving contract under a readers-writer lock: batched
// queries under shared locks, move ingest under exclusive locks. Run
// under TSan in CI; the interesting surface is the epoch loads against
// ApplyMoves' bumps and the result cache's concurrent shard traffic.
TEST(UpdateIngestTest, ConcurrentQueriesAndMovesUnderSharedLock) {
  QueryEngine engine(GenerateBuilding(SmallBuilding(77, 0.0)),
                     CacheOptions(true));
  Rng rng(78);
  PopulateStore(GenerateObjects(engine.plan(), 200, &rng),
                &engine.index().objects());
  const auto positions = GenerateQueryPositions(engine.plan(), 32, &rng);
  const size_t object_count = engine.index().objects().size();
  const PartitionSampler sampler(engine.plan());

  std::shared_mutex mutex;
  constexpr int kReaders = 6;
  constexpr int kWriters = 2;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kWriters);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      BatchExecutor executor(engine.index(), 1);
      Rng thread_rng(1000 + t);
      std::vector<QueryRequest> batch;
      for (int iter = 0; iter < kIterations; ++iter) {
        batch.clear();
        for (int i = 0; i < 8; ++i) {
          const Point& q = positions[thread_rng.NextIndex(positions.size())];
          batch.push_back(i % 2 == 0 ? QueryRequest::Range(q, 15.0)
                                     : QueryRequest::Knn(q, 5));
        }
        std::shared_lock<std::shared_mutex> lock(mutex);
        const auto results = executor.Run(batch);
        EXPECT_EQ(results.size(), batch.size());
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      Rng thread_rng(2000 + t);
      for (int iter = 0; iter < kIterations; ++iter) {
        std::vector<MoveOp> moves;
        moves.reserve(4);
        for (int i = 0; i < 4; ++i) {
          const PartitionId target = sampler.Sample(&thread_rng);
          moves.push_back(MoveOp{
              static_cast<ObjectId>(thread_rng.NextIndex(object_count)),
              target,
              RandomPointInPartition(engine.plan().partition(target),
                                     &thread_rng)});
        }
        std::unique_lock<std::shared_mutex> lock(mutex);
        EXPECT_TRUE(engine.ApplyMoves(moves).ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace
}  // namespace indoor
