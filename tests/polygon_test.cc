#include "geometry/polygon.h"

#include <gtest/gtest.h>

namespace indoor {
namespace {

Polygon Square() {
  return Polygon::FromRect(Rect(0, 0, 4, 4));
}

Polygon LShape() {
  // L-shaped (non-convex) polygon.
  auto result = Polygon::Create(
      {{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(PolygonTest, RejectsTooFewVertices) {
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 1}}).ok());
}

TEST(PolygonTest, RejectsDegenerateArea) {
  const auto result = Polygon::Create({{0, 0}, {2, 2}, {4, 4}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolygonTest, RejectsDuplicateConsecutiveVertices) {
  EXPECT_FALSE(Polygon::Create({{0, 0}, {0, 0}, {4, 0}, {4, 4}}).ok());
}

TEST(PolygonTest, DropsClosingVertex) {
  const auto result =
      Polygon::Create({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 4u);
}

TEST(PolygonTest, NormalizesClockwiseToCounterClockwise) {
  const auto cw = Polygon::Create({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  ASSERT_TRUE(cw.ok());
  EXPECT_DOUBLE_EQ(cw.value().Area(), 16.0);  // area positive after reversal
}

TEST(PolygonTest, AreaAndBoundingBox) {
  const Polygon p = LShape();
  EXPECT_DOUBLE_EQ(p.Area(), 12.0);
  EXPECT_EQ(p.BoundingBox(), Rect(0, 0, 4, 4));
}

TEST(PolygonTest, CentroidOfSquare) {
  const Point c = Square().Centroid();
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 2.0, 1e-12);
}

TEST(PolygonTest, ContainsInteriorBoundaryExterior) {
  const Polygon p = Square();
  EXPECT_TRUE(p.Contains({2, 2}));
  EXPECT_TRUE(p.Contains({0, 2}));    // boundary
  EXPECT_TRUE(p.Contains({4, 4}));    // corner
  EXPECT_FALSE(p.Contains({5, 2}));
  EXPECT_TRUE(p.ContainsStrict({2, 2}));
  EXPECT_FALSE(p.ContainsStrict({0, 2}));
}

TEST(PolygonTest, ContainsNonConvex) {
  const Polygon p = LShape();
  EXPECT_TRUE(p.Contains({1, 3}));    // in the vertical arm
  EXPECT_TRUE(p.Contains({3, 1}));    // in the horizontal arm
  EXPECT_FALSE(p.Contains({3, 3}));   // in the notch
}

TEST(PolygonTest, OnBoundary) {
  const Polygon p = Square();
  EXPECT_TRUE(p.OnBoundary({2, 0}));
  EXPECT_TRUE(p.OnBoundary({4, 3}));
  EXPECT_FALSE(p.OnBoundary({2, 2}));
}

TEST(PolygonTest, ConvexityDetection) {
  EXPECT_TRUE(Square().IsConvex());
  EXPECT_FALSE(LShape().IsConvex());
}

TEST(PolygonTest, MaxVertexDistance) {
  EXPECT_DOUBLE_EQ(Square().MaxVertexDistance({0, 0}), std::sqrt(32.0));
  EXPECT_DOUBLE_EQ(Square().MaxVertexDistance({2, 2}), std::sqrt(8.0));
}

TEST(PolygonTest, EdgeAccess) {
  const Polygon p = Square();
  const Segment e0 = p.Edge(0);
  const Segment e3 = p.Edge(3);
  // Edges chain around the ring (last edge returns to vertex 0).
  EXPECT_EQ(e3.b, p.vertices()[0]);
  EXPECT_EQ(e0.a, p.vertices()[0]);
}

TEST(PolygonTest, FromRectMatchesRect) {
  const Polygon p = Polygon::FromRect(Rect(1, 2, 3, 5));
  EXPECT_DOUBLE_EQ(p.Area(), 6.0);
  EXPECT_TRUE(p.IsConvex());
  EXPECT_EQ(p.BoundingBox(), Rect(1, 2, 3, 5));
}

}  // namespace
}  // namespace indoor
