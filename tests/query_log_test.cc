// The structured query log: record layout, JSONL rendering, the
// capture-file round trip, scope dormancy, the slow-query sink, the
// compact metrics-trailer text, and the workload capture -> replay round
// trip (docs/OBSERVABILITY.md).

#include "util/query_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/index/index_framework.h"
#include "core/query/batch_executor.h"
#include "core/query/workload_replay.h"
#include "indoor/sample_plans.h"
#include "util/metrics.h"

namespace indoor {
namespace qlog {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(std::FILE* f) {
  std::string content;
  std::rewind(f);
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  return content;
}

// ------------------------------------------------------------ record + JSON

TEST(QueryLogRecordTest, LayoutIsStable) {
  // The capture format depends on this layout; header.record_size guards
  // readers, this test guards writers.
  EXPECT_EQ(sizeof(QueryLogRecord), 112u);
  EXPECT_TRUE(std::is_trivially_copyable_v<QueryLogRecord>);
}

TEST(AppendRecordJsonTest, EmitsKindSpecificFields) {
  QueryLogRecord r;
  r.seq = 7;
  r.kind = static_cast<uint8_t>(RecordKind::kRange);
  r.ax = 1.5;
  r.ay = 2.5;
  r.radius = 30.0;
  r.result_count = 4;
  r.flags = kFlagSlow | kFlagBatched;
  std::string json;
  AppendRecordJson(&json, r);
  EXPECT_NE(json.find("\"seq\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"range\""), std::string::npos);
  EXPECT_NE(json.find("\"radius\": 30"), std::string::npos);
  EXPECT_NE(json.find("\"results\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"slow\""), std::string::npos);
  EXPECT_NE(json.find("\"batched\""), std::string::npos);
  // Kind-specific: a range record carries no pt2pt destination and no k.
  EXPECT_EQ(json.find("\"bx\""), std::string::npos);
  EXPECT_EQ(json.find("\"k\""), std::string::npos);
  // An unresolved host renders as null.
  EXPECT_NE(json.find("\"host\": null"), std::string::npos);
}

TEST(AppendRecordJsonTest, EveryKindAndFlagComboStaysOneCleanLine) {
  // The slow sink is a machine-read JSONL stream: one record, one line,
  // every string escaped. Sweep every kind byte (including out-of-range
  // ones a corrupted capture could replay) and every flag combination
  // and check line integrity structurally.
  for (int kind = 0; kind < 8; ++kind) {
    for (int flags = 0; flags < 4; ++flags) {
      QueryLogRecord r;
      r.seq = 1;
      r.kind = static_cast<uint8_t>(kind);
      r.flags = static_cast<uint8_t>(flags);
      std::string json;
      AppendRecordJson(&json, r);
      SCOPED_TRACE("kind=" + std::to_string(kind) +
                   " flags=" + std::to_string(flags));
      EXPECT_EQ(json.find('\n'), std::string::npos);
      EXPECT_EQ(json.find('\r'), std::string::npos);
      // Balanced structure: quotes pair up (AppendJsonEscaped guarantees
      // none of the emitted names can smuggle a raw quote), braces nest.
      size_t quotes = 0;
      int depth = 0;
      bool ok = true;
      for (size_t i = 0; i < json.size(); ++i) {
        if (json[i] == '\\') { ++i; continue; }
        if (json[i] == '"') ++quotes;
        if (quotes % 2 == 1) continue;  // inside a string
        if (json[i] == '{') ++depth;
        if (json[i] == '}') ok = ok && --depth >= 0;
      }
      EXPECT_TRUE(ok);
      EXPECT_EQ(depth, 0);
      EXPECT_EQ(quotes % 2, 0u);
    }
  }
}

// -------------------------------------------------------- snapshot trailer

TEST(SnapshotTextTest, RoundTripsEveryInstrumentKind) {
  metrics::RegistrySnapshot snap;
  snap.counters.emplace_back("a.counter", 42u);
  snap.gauges.emplace_back("b.gauge", 2.5);
  metrics::HistogramSnapshot hist;
  hist.name = "c.hist";
  hist.count = 3;
  hist.sum = 1026;
  hist.max = 1024;
  hist.buckets.assign(metrics::Histogram::kNumBuckets, 0);
  hist.buckets[1] = 2;   // two samples of 1
  hist.buckets[11] = 1;  // one sample of 1024
  snap.histograms.push_back(hist);

  const std::string text = SerializeSnapshotText(snap);
  const metrics::RegistrySnapshot parsed = ParseSnapshotText(text);
  ASSERT_EQ(parsed.counters.size(), 1u);
  EXPECT_EQ(parsed.counters[0].first, "a.counter");
  EXPECT_EQ(parsed.counters[0].second, 42u);
  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.gauges[0].second, 2.5);
  ASSERT_EQ(parsed.histograms.size(), 1u);
  const metrics::HistogramSnapshot& h = parsed.histograms[0];
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 1026u);
  EXPECT_EQ(h.max, 1024u);
  ASSERT_EQ(h.buckets.size(), metrics::Histogram::kNumBuckets);
  EXPECT_EQ(h.buckets[1], 2u);
  EXPECT_EQ(h.buckets[11], 1u);
  // Percentiles are recomputable from the parsed sparse buckets.
  EXPECT_GT(h.Percentile(0.99), 100.0);
}

TEST(SnapshotTextTest, RejectsNamesWithWhitespace) {
  metrics::RegistrySnapshot snap;
  snap.counters.emplace_back("bad name", 1u);
  snap.counters.emplace_back("good.name", 2u);
  const metrics::RegistrySnapshot parsed =
      ParseSnapshotText(SerializeSnapshotText(snap));
  ASSERT_EQ(parsed.counters.size(), 1u);
  EXPECT_EQ(parsed.counters[0].first, "good.name");
}

#ifdef INDOOR_METRICS_ENABLED

// ------------------------------------------------------------------ scopes

TEST(QueryLogScopeTest, DormantWhenNothingIsArmed) {
  ASSERT_FALSE(QueryLog::Global().enabled());
  QueryLogScope scope(RecordKind::kDistance, 0, 0, 1, 1, 0, 0, false);
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(scope.Finish(), 0u);
}

TEST(QueryLogScopeTest, OutermostScopeOwnsTheRecord) {
  std::FILE* slow_sink = std::tmpfile();
  ASSERT_NE(slow_sink, nullptr);
  QueryLogOptions options;
  options.path = TempPath("scope_owner.qlog");
  options.slow_sink = slow_sink;
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  {
    QueryLogScope outer(RecordKind::kRange, 1, 2, 0, 0, 9, 0, false);
    EXPECT_TRUE(outer.active());
    {
      // A query nested inside a query (batch -> pt2pt, temporal -> pt2pt)
      // must not emit its own record.
      QueryLogScope inner(RecordKind::kDistance, 3, 4, 5, 6, 0, 0, true);
      EXPECT_FALSE(inner.active());
    }
    // The inner scope's destruction must not have stolen the slot.
    EXPECT_TRUE(outer.active());
  }
  QueryLog::Global().Disable();
  std::fclose(slow_sink);
  const auto capture = ReadQueryLogCapture(options.path);
  ASSERT_TRUE(capture.ok());
  ASSERT_EQ(capture->records.size(), 1u);
  EXPECT_EQ(capture->records[0].kind,
            static_cast<uint8_t>(RecordKind::kRange));
  EXPECT_DOUBLE_EQ(capture->records[0].radius, 9.0);
}

TEST(QueryLogTest, SlowQueriesHitTheSlowSinkImmediately) {
  std::FILE* slow_sink = std::tmpfile();
  ASSERT_NE(slow_sink, nullptr);
  QueryLogOptions options;  // no full log: slow-only arming
  options.slow_threshold_ns = 1;
  options.slow_sink = slow_sink;
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  {
    QueryLogScope scope(RecordKind::kKnn, 1, 1, 0, 0, 0, 5, false);
    ASSERT_TRUE(scope.active());
    scope.SetResult(5, 123.0);
  }  // any real latency is >= 1ns, so the record is slow
  QueryLog::Global().Disable();
  const std::string lines = ReadAll(slow_sink);
  std::fclose(slow_sink);
  EXPECT_NE(lines.find("\"kind\": \"knn\""), std::string::npos);
  EXPECT_NE(lines.find("\"slow\""), std::string::npos);
  EXPECT_NE(lines.find("\"value\": 123"), std::string::npos);
}

TEST(QueryLogTest, CaptureEmbedsContextAndMetricsTrailer) {
  QueryLogOptions options;
  options.path = TempPath("context.qlog");
  options.context = "plan=demo.txt\nobjects=100\n";
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  INDOOR_COUNTER_ADD("test.qlog.trailer", 3);
  {
    QueryLogScope scope(RecordKind::kDistance, 0, 0, 1, 1, 0, 0, false);
  }
  QueryLog::Global().Disable();

  const auto capture = ReadQueryLogCapture(options.path);
  ASSERT_TRUE(capture.ok());
  const auto context = capture->ContextMap();
  EXPECT_EQ(context.at("plan"), "demo.txt");
  EXPECT_EQ(context.at("objects"), "100");
  // The trailer is the session's registry delta: the counter bumped above
  // must read exactly its in-session increment.
  const metrics::RegistrySnapshot delta =
      ParseSnapshotText(capture->metrics_text);
  bool found = false;
  for (const auto& [name, value] : delta.counters) {
    if (name == "test.qlog.trailer") {
      EXPECT_EQ(value, 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QueryLogTest, JsonlSinkWritesOneObjectPerLine) {
  QueryLogOptions options;
  options.path = TempPath("log.jsonl");
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  for (int i = 0; i < 3; ++i) {
    QueryLogScope scope(RecordKind::kRange, i, i, 0, 0, 5, 0, false);
  }
  QueryLog::Global().Disable();
  std::FILE* f = std::fopen(options.path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  const std::string content = ReadAll(f);
  std::fclose(f);
  size_t lines = 0;
  for (const char c : content) lines += c == '\n';
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(content.find(kCaptureMagic, 0, 8), std::string::npos);
  // A JSONL log is not a replayable capture and must say so.
  EXPECT_FALSE(ReadQueryLogCapture(options.path).ok());
}

TEST(QueryLogTest, ConcurrentScopesAllLand) {
  QueryLogOptions options;
  options.path = TempPath("concurrent.qlog");
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryLogScope scope(RecordKind::kDistance, t, i, 0, 0, 0, 0, false);
      }
    });
  }
  for (auto& t : threads) t.join();
  QueryLog::Global().Disable();
  const auto capture = ReadQueryLogCapture(options.path);
  ASSERT_TRUE(capture.ok());
  ASSERT_EQ(capture->records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  // Every seq in [0, N) appears exactly once.
  std::vector<bool> seen(capture->records.size(), false);
  for (const QueryLogRecord& r : capture->records) {
    ASSERT_LT(r.seq, seen.size());
    EXPECT_FALSE(seen[r.seq]);
    seen[r.seq] = true;
  }
}

// ------------------------------------------------------- capture -> replay

TEST(ReplayTest, CaptureReplayRoundTripIsBitwiseIdentical) {
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  IndexFramework index(plan);
  ASSERT_TRUE(index.objects().Insert(ids.v12, Point{6, 2}).ok());
  ASSERT_TRUE(index.objects().Insert(ids.v11, Point{2, 2}).ok());
  ASSERT_TRUE(index.objects().Insert(ids.v20, Point{21, 1}).ok());

  std::vector<QueryRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(QueryRequest::Range(Point{1.0 + i * 0.5, 1.0}, 40.0));
    requests.push_back(QueryRequest::Knn(Point{1.0, 1.0 + i * 0.5}, 2));
    requests.push_back(
        QueryRequest::Distance(Point{1.0 + i * 0.5, 1.5}, Point{19, 7}));
  }

  QueryLogOptions options;
  options.path = TempPath("roundtrip.qlog");
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  BatchExecutor executor(index, /*threads=*/2);
  const std::vector<QueryResult> original = executor.Run(requests);
  QueryLog::Global().Disable();

  const auto capture = ReadQueryLogCapture(options.path);
  ASSERT_TRUE(capture.ok());
  ASSERT_EQ(capture->records.size(), requests.size());

  // Replay on a different thread count: results must still be bitwise
  // identical (result counts and distance doubles both live in the
  // digest comparison).
  ReplayOptions replay_options;
  replay_options.threads = 3;
  const auto report = ReplayWorkload(index, *capture, replay_options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records, requests.size());
  EXPECT_EQ(report->matched, requests.size());
  EXPECT_TRUE(report->AllMatched()) << "mismatches: " << report->mismatched;

  // Spot-check against the original run directly: same result counts.
  uint64_t original_results = 0;
  for (const QueryResult& r : original) {
    original_results += r.ids.size() + r.neighbors.size() +
                        (r.distance < kInfDistance ? 1 : 0);
  }
  uint64_t captured_results = 0;
  for (const QueryLogRecord& r : capture->records) {
    captured_results += r.result_count;
  }
  EXPECT_EQ(captured_results, original_results);
}

TEST(ReplayTest, MismatchedIndexIsReported) {
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  IndexFramework index(plan);
  ASSERT_TRUE(index.objects().Insert(ids.v12, Point{6, 2}).ok());

  QueryLogOptions options;
  options.path = TempPath("mismatch.qlog");
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  BatchExecutor executor(index, 1);
  const std::vector<QueryRequest> requests = {
      QueryRequest::Range(Point{1, 1}, 50.0)};
  executor.Run(requests);
  QueryLog::Global().Disable();

  // Replaying against an index with a different object population must
  // flag the record, not silently pass.
  IndexFramework other(plan);
  ASSERT_TRUE(other.objects().Insert(ids.v12, Point{6, 2}).ok());
  ASSERT_TRUE(other.objects().Insert(ids.v12, Point{6.5, 2.5}).ok());
  const auto capture = ReadQueryLogCapture(options.path);
  ASSERT_TRUE(capture.ok());
  const auto report = ReplayWorkload(other, *capture);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mismatched, 1u);
  ASSERT_EQ(report->mismatches.size(), 1u);
  EXPECT_EQ(report->mismatches[0].captured_count, 1u);
  EXPECT_EQ(report->mismatches[0].replayed_count, 2u);
}

#endif  // INDOOR_METRICS_ENABLED

}  // namespace
}  // namespace qlog
}  // namespace indoor
