#include "core/distance/reverse_field.h"

#include <gtest/gtest.h>

#include "core/distance/distance_field.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class ReverseFieldTest : public ::testing::Test {
 protected:
  ReverseFieldTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        graph_(plan_),
        locator_(plan_),
        ctx_(graph_, locator_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
  PartitionLocator locator_;
  DistanceContext ctx_;
};

TEST_F(ReverseFieldTest, InvalidForOutsideTarget) {
  const ReverseDistanceField field(ctx_, {1000, 1000});
  EXPECT_FALSE(field.valid());
  EXPECT_EQ(field.DistanceFrom({1, 1}), kInfDistance);
}

TEST_F(ReverseFieldTest, MatchesForwardPt2PtEverywhere) {
  const Point target(4.5, 4.5);  // hallway
  const ReverseDistanceField field(ctx_, target);
  Rng rng(251);
  for (int i = 0; i < 25; ++i) {
    const PartitionId v = RandomIndoorPartition(plan_, &rng);
    const Point p = RandomPointInPartition(plan_.partition(v), &rng);
    EXPECT_NEAR(field.DistanceFrom(v, p),
                Pt2PtDistanceBasic(ctx_, p, target), 1e-6)
        << "p=" << p;
  }
}

TEST_F(ReverseFieldTest, DiffersFromForwardFieldUnderOneWayDoors) {
  // Target in room 12 (enterable only via the one-way d15). For a position
  // in the hallway: TO the target is the long route; FROM the target is
  // the short exit through d12.
  const Point target(6, 2);
  const Point hallway(5, 4.5);
  const ReverseDistanceField to_target(ctx_, target);
  const DistanceField from_target(ctx_, target);
  const double to = to_target.DistanceFrom(hallway);
  const double from = from_target.DistanceTo(hallway);
  EXPECT_NEAR(to, Pt2PtDistanceBasic(ctx_, hallway, target), 1e-9);
  EXPECT_NEAR(from, Pt2PtDistanceBasic(ctx_, target, hallway), 1e-9);
  EXPECT_GT(to, from + 1.0);  // the asymmetry is material here
}

TEST_F(ReverseFieldTest, DoorDistancesComposeWithLegs) {
  const Point target(4.5, 4.5);
  const ReverseDistanceField field(ctx_, target);
  // Standing at d11 about to cross into the hallway: just the intra leg.
  EXPECT_NEAR(field.DistanceFromDoor(ids_.d11),
              Distance(plan_.door(ids_.d11).Midpoint(), target), 1e-9);
  // From inside room 11: leg to d11 plus the above.
  EXPECT_NEAR(field.DistanceFrom(ids_.v11, {2, 2}),
              2.0 + field.DistanceFromDoor(ids_.d11), 1e-9);
}

TEST_F(ReverseFieldTest, SamePartitionDirect) {
  const Point target(4.5, 4.5);
  const ReverseDistanceField field(ctx_, target);
  EXPECT_NEAR(field.DistanceFrom({6, 5}),
              Distance(Point(6, 5), target), 1e-9);
}

TEST(ReverseFieldGeneratedTest, MatchesForwardOnOneWayBuildings) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.6;
  config.one_way_fraction = 0.6;
  config.obstacle_probability = 0.2;
  config.seed = 257;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  Rng rng(263);
  const Point target = RandomIndoorPosition(plan, &rng);
  const ReverseDistanceField field(ctx, target);
  for (int i = 0; i < 20; ++i) {
    const Point p = RandomIndoorPosition(plan, &rng);
    EXPECT_NEAR(field.DistanceFrom(p),
                Pt2PtDistanceVirtual(ctx, p, target), 1e-6);
  }
}

}  // namespace
}  // namespace indoor
