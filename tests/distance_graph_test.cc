// Validates the fdv / fd2d constructs of Gdist (paper §III-C1) against
// hand-computed values on the running example.

#include "core/model/distance_graph.h"

#include <gtest/gtest.h>

#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class DistanceGraphTest : public ::testing::Test {
 protected:
  DistanceGraphTest()
      : plan_(MakeRunningExamplePlan(&ids_)), graph_(plan_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
};

TEST_F(DistanceGraphTest, FdvOfEnterablePartition) {
  // d11 at (2, 4) entering room v11 = (0,0)-(4,4): farthest corner (4, 0).
  const double expected = std::sqrt(2 * 2 + 4 * 4);
  EXPECT_NEAR(graph_.Fdv(ids_.d11, ids_.v11), expected, 1e-9);
}

TEST_F(DistanceGraphTest, FdvInfinityForNonEnterablePartition) {
  // d12 is unidirectional v12 -> v10: v12 is NOT enterable through d12.
  EXPECT_EQ(graph_.Fdv(ids_.d12, ids_.v12), kInfDistance);
  // And v13 is unrelated to d12 entirely.
  EXPECT_EQ(graph_.Fdv(ids_.d12, ids_.v13), kInfDistance);
}

TEST_F(DistanceGraphTest, FdvDefinedForEnterableSideOfOneWayDoor) {
  // d12 at (5, 4) entering hallway v10 = (0,4)-(12,6): farthest corner
  // (12, 6).
  const double expected = std::sqrt(7 * 7 + 2 * 2);
  EXPECT_NEAR(graph_.Fdv(ids_.d12, ids_.v10), expected, 1e-9);
}

TEST_F(DistanceGraphTest, FdvScaledInStaircase) {
  // v50 = (12,4)-(20,6) scaled by 1.25; d16 at (12, 5); farthest corner
  // (20, 4) or (20, 6): sqrt(64 + 1) * 1.25.
  const double expected = std::sqrt(65.0) * 1.25;
  EXPECT_NEAR(graph_.Fdv(ids_.d16, ids_.v50), expected, 1e-9);
}

TEST_F(DistanceGraphTest, Fd2dValidEnterLeavePair) {
  // Enter v10 through d11 (2,4), leave through d13 (10,4): straight 8 m.
  EXPECT_NEAR(graph_.Fd2d(ids_.v10, ids_.d11, ids_.d13), 8.0, 1e-9);
}

TEST_F(DistanceGraphTest, Fd2dRespectsDirectionPermissions) {
  // Paper: fd2d(v12, d12, d15) = inf -- one cannot go from d12 to d15
  // within v12 (d12 cannot enter v12, d15 cannot leave it)...
  EXPECT_EQ(graph_.Fd2d(ids_.v12, ids_.d12, ids_.d15), kInfDistance);
  // ...while fd2d(v12, d15, d12) is the (finite) distance.
  const double d = graph_.Fd2d(ids_.v12, ids_.d15, ids_.d12);
  ASSERT_NE(d, kInfDistance);
  EXPECT_NEAR(d, Distance(plan_.door(ids_.d15).Midpoint(),
                          plan_.door(ids_.d12).Midpoint()),
              1e-9);
}

TEST_F(DistanceGraphTest, Fd2dZeroForSameTouchingDoor) {
  EXPECT_DOUBLE_EQ(graph_.Fd2d(ids_.v10, ids_.d11, ids_.d11), 0.0);
  EXPECT_DOUBLE_EQ(graph_.Fd2d(ids_.v12, ids_.d12, ids_.d12), 0.0);
}

TEST_F(DistanceGraphTest, Fd2dInfinityForNonTouchingDoor) {
  EXPECT_EQ(graph_.Fd2d(ids_.v11, ids_.d13, ids_.d13), kInfDistance);
  EXPECT_EQ(graph_.Fd2d(ids_.v11, ids_.d13, ids_.d11), kInfDistance);
}

TEST_F(DistanceGraphTest, Fd2dUsesObstructedDistanceInV20) {
  // d22 -> d24 within v20 is blocked by the obstacle: obstructed > Euclid.
  const double d = graph_.Fd2d(ids_.v20, ids_.d22, ids_.d24);
  ASSERT_NE(d, kInfDistance);
  EXPECT_GT(d, Distance(plan_.door(ids_.d22).Midpoint(),
                        plan_.door(ids_.d24).Midpoint()) +
                   1e-9);
}

TEST_F(DistanceGraphTest, Fd2dSymmetricForBidirectionalPairs) {
  EXPECT_NEAR(graph_.Fd2d(ids_.v20, ids_.d21, ids_.d22),
              graph_.Fd2d(ids_.v20, ids_.d22, ids_.d21), 1e-9);
}

TEST_F(DistanceGraphTest, IntraDoorDistanceIgnoresDirections) {
  // Raw intra distance exists even for the direction-forbidden pair.
  const double raw = graph_.IntraDoorDistance(ids_.v12, ids_.d12, ids_.d15);
  EXPECT_NEAR(raw, Distance(plan_.door(ids_.d12).Midpoint(),
                            plan_.door(ids_.d15).Midpoint()),
              1e-9);
}

TEST_F(DistanceGraphTest, StaircaseD2dCarriesWalkingLength) {
  // The flattened staircase flight: flat 8 m, walking 10 m.
  EXPECT_NEAR(graph_.Fd2d(ids_.v50, ids_.d16, ids_.d2), 10.0, 1e-9);
}

}  // namespace
}  // namespace indoor
