// Moving objects: trajectory simulation, index maintenance under movement,
// and continuous range monitoring.

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "core/query/range_query.h"
#include "gen/building_generator.h"
#include "tracking/monitor.h"

namespace indoor {
namespace {

struct World {
  World()
      : plan(GenerateBuilding(Config())),
        index(plan),
        ctx(index.distance_context()) {
    Rng rng(7);
    PopulateStore(GenerateObjects(plan, 30, &rng), &index.objects());
  }

  static BuildingConfig Config() {
    BuildingConfig config;
    config.floors = 2;
    config.rooms_per_floor = 8;
    config.seed = 121;
    return config;
  }

  FloorPlan plan;
  IndexFramework index;
  DistanceContext ctx;
};

TEST(TrajectoryTest, ReportsStayInsideTheirPartitions) {
  World world;
  TrajectorySimulator sim(world.ctx, world.index.objects());
  for (int tick = 0; tick < 20; ++tick) {
    for (const PositionReport& report : sim.Step(1.0)) {
      EXPECT_TRUE(
          world.plan.partition(report.partition).Contains(report.position))
          << "object " << report.id << " at " << report.position;
      EXPECT_FALSE(world.plan.partition(report.partition).IsOutdoor());
    }
  }
}

TEST(TrajectoryTest, AgentsActuallyMove) {
  World world;
  TrajectorySimulator sim(world.ctx, world.index.objects());
  // Snapshot initial positions.
  std::vector<Point> initial;
  for (const IndoorObject& obj : world.index.objects().objects()) {
    initial.push_back(obj.position);
  }
  // Advance one minute of simulated walking.
  std::vector<PositionReport> last;
  for (int tick = 0; tick < 60; ++tick) {
    auto reports = sim.Step(1.0);
    if (!reports.empty()) last = std::move(reports);
  }
  ASSERT_FALSE(last.empty());
  size_t displaced = 0;
  for (const PositionReport& report : last) {
    if (Distance(initial[report.id], report.position) > 1.0) ++displaced;
  }
  EXPECT_GT(displaced, last.size() / 2);  // most agents wandered off
}

TEST(TrajectoryTest, StepSpeedBoundsDisplacement) {
  World world;
  TrajectoryConfig config;
  config.speed = 1.4;
  config.pause = 0.0;
  TrajectorySimulator sim(world.ctx, world.index.objects(), config);
  std::vector<Point> prev;
  for (const IndoorObject& obj : world.index.objects().objects()) {
    prev.push_back(obj.position);
  }
  for (int tick = 0; tick < 10; ++tick) {
    for (const PositionReport& report : sim.Step(0.5)) {
      // Straight-line displacement can never exceed walked distance.
      EXPECT_LE(Distance(prev[report.id], report.position),
                config.speed * 0.5 + 1e-9);
      prev[report.id] = report.position;
    }
  }
}

TEST(TrajectoryTest, ApplyReportsKeepsStoreConsistentWithQueries) {
  World world;
  TrajectorySimulator sim(world.ctx, world.index.objects());
  Rng rng(11);
  for (int tick = 0; tick < 10; ++tick) {
    ApplyReports(sim.Step(2.0), &world.index.objects());
    // Indexed queries still agree with the oracle after maintenance.
    const Point q(10, 5);
    EXPECT_EQ(RangeQuery(world.index, q, 25.0),
              LinearScanRange(world.ctx, world.index.objects(), q, 25.0))
        << "tick " << tick;
  }
}

TEST(MonitorTest, InitialMembershipMatchesRangeQuery) {
  World world;
  const Point q(10, 5);
  ContinuousRangeMonitor monitor(world.ctx, world.index.objects(), q, 20.0);
  EXPECT_EQ(monitor.Members(),
            LinearScanRange(world.ctx, world.index.objects(), q, 20.0));
}

TEST(MonitorTest, TracksMembershipUnderMovement) {
  World world;
  const Point q(10, 5);
  const double r = 20.0;
  ContinuousRangeMonitor monitor(world.ctx, world.index.objects(), q, r);
  TrajectorySimulator sim(world.ctx, world.index.objects());
  for (int tick = 0; tick < 15; ++tick) {
    const auto reports = sim.Step(2.0);
    for (const PositionReport& report : reports) monitor.OnReport(report);
    ApplyReports(reports, &world.index.objects());
    EXPECT_EQ(monitor.Members(),
              LinearScanRange(world.ctx, world.index.objects(), q, r))
        << "tick " << tick;
  }
}

TEST(MonitorTest, OnReportSignalsMembershipChanges) {
  World world;
  // Object 0's partition/point.
  const IndoorObject obj = world.index.objects().object(0);
  const Point q = obj.position;
  ContinuousRangeMonitor monitor(world.ctx, world.index.objects(), q, 1.0);
  ASSERT_TRUE(monitor.Contains(0));
  // Move object 0 far away: membership change signaled once.
  PartitionId far_part = kInvalidId;
  for (const Partition& part : world.plan.partitions()) {
    if (!part.IsOutdoor() && part.floor() == 2 &&
        part.kind() == PartitionKind::kRoom) {
      far_part = part.id();
      break;
    }
  }
  ASSERT_NE(far_part, kInvalidId);
  const Point far_point =
      world.plan.partition(far_part).footprint().outer().BoundingBox().Center();
  PositionReport report{0, far_part, far_point};
  EXPECT_TRUE(monitor.OnReport(report));
  EXPECT_FALSE(monitor.Contains(0));
  EXPECT_FALSE(monitor.OnReport(report));  // no further change
  // And back.
  EXPECT_TRUE(monitor.OnReport({0, obj.partition, obj.position}));
  EXPECT_TRUE(monitor.Contains(0));
}

TEST(MonitorTest, DeterministicSimulation) {
  World a, b;
  TrajectorySimulator sim_a(a.ctx, a.index.objects());
  TrajectorySimulator sim_b(b.ctx, b.index.objects());
  for (int tick = 0; tick < 5; ++tick) {
    const auto ra = sim_a.Step(1.0);
    const auto rb = sim_b.Step(1.0);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_TRUE(ApproxEqual(ra[i].position, rb[i].position));
    }
  }
}

}  // namespace
}  // namespace indoor
