// The SLO engine (util/slo.h): spec parsing, multi-window burn-rate
// evaluation over hand-built flight-recorder rings, the two-window alert
// rule, and gauge publication.

#include "util/slo.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/timeseries.h"

namespace indoor {
namespace slo {
namespace {

/// A HistogramSnapshot named `name` over explicit latency values.
metrics::HistogramSnapshot MakeHist(const std::string& name,
                                    const std::vector<uint64_t>& values) {
  metrics::Histogram h;
  for (uint64_t v : values) h.Record(v);
  metrics::HistogramSnapshot s;
  s.name = name;
  s.count = h.Count();
  s.sum = h.Sum();
  s.max = h.Max();
  s.buckets.resize(metrics::Histogram::kNumBuckets);
  for (size_t i = 0; i < s.buckets.size(); ++i) s.buckets[i] = h.BucketCount(i);
  return s;
}

/// One 10-second interval whose `query.knn.latency_ns` delta holds
/// `count` samples of `latency_ns` each.
tseries::IntervalSample KnnInterval(uint64_t index, uint64_t latency_ns,
                                    uint64_t count) {
  tseries::IntervalSample sample;
  sample.index = index;
  sample.start_us = index * 10'000'000;
  sample.duration_us = 10'000'000;
  sample.delta.histograms.push_back(MakeHist(
      "query.knn.latency_ns", std::vector<uint64_t>(count, latency_ns)));
  return sample;
}

/// A single-objective config: 99% of knn under 1 ms, fast 10 s / slow
/// 60 s windows, the default 4x alert burn.
SloConfig KnnConfig() {
  SloConfig config;
  config.objectives = {{"knn", "query.knn.latency_ns", 1'000'000, 0.99}};
  return config;
}

std::string ReportText(const SloReport& report) {
  std::FILE* f = std::tmpfile();
  report.WriteReport(f);
  std::rewind(f);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

// ------------------------------------------------------------------ parsing

TEST(ParseSloSpecTest, ParsesMultipleObjectivesWithUnits) {
  auto parsed = ParseSloSpec(
      "knn=2ms@0.999,range=500us@0.99,query.pt2pt_matrix.latency_ns=1s@0.9,"
      "scan=250000@0.5");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& objectives = parsed->objectives;
  ASSERT_EQ(objectives.size(), 4u);
  EXPECT_EQ(objectives[0].name, "knn");
  EXPECT_EQ(objectives[0].histogram, "query.knn.latency_ns");
  EXPECT_EQ(objectives[0].threshold_ns, 2'000'000u);
  EXPECT_DOUBLE_EQ(objectives[0].target, 0.999);
  EXPECT_EQ(objectives[1].threshold_ns, 500'000u);
  // A dotted name is a histogram name verbatim, not a query kind.
  EXPECT_EQ(objectives[2].name, "query.pt2pt_matrix.latency_ns");
  EXPECT_EQ(objectives[2].histogram, "query.pt2pt_matrix.latency_ns");
  EXPECT_EQ(objectives[2].threshold_ns, 1'000'000'000u);
  // Bare numbers are nanoseconds.
  EXPECT_EQ(objectives[3].threshold_ns, 250'000u);
  // Windows keep their defaults.
  EXPECT_DOUBLE_EQ(parsed->fast_window_s, 10.0);
  EXPECT_DOUBLE_EQ(parsed->slow_window_s, 60.0);
}

TEST(ParseSloSpecTest, RejectsMalformedSpecs) {
  const auto empty = ParseSloSpec("");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("no objectives"), std::string::npos);

  EXPECT_FALSE(ParseSloSpec("knn").ok());          // no threshold/target
  EXPECT_FALSE(ParseSloSpec("=2ms@0.9").ok());     // empty name
  EXPECT_FALSE(ParseSloSpec("knn=2ms").ok());      // no target
  EXPECT_FALSE(ParseSloSpec("knn=zz@0.9").ok());   // unparsable threshold
  EXPECT_FALSE(ParseSloSpec("knn=2banana@0.9").ok());  // unknown unit
  EXPECT_FALSE(ParseSloSpec("knn=0@0.9").ok());    // zero threshold
  EXPECT_FALSE(ParseSloSpec("knn=2ms@0").ok());    // target out of (0, 1]
  EXPECT_FALSE(ParseSloSpec("knn=2ms@1.5").ok());
  EXPECT_FALSE(ParseSloSpec("knn=2ms@x").ok());
  // One bad item poisons the whole spec (a silently dropped objective
  // would be an SLO that never alerts).
  EXPECT_FALSE(ParseSloSpec("knn=2ms@0.99,bad").ok());
}

TEST(ParseSloSpecTest, DefaultConfigCoversTheServingKinds) {
  const SloConfig config = DefaultSloConfig();
  ASSERT_EQ(config.objectives.size(), 3u);
  for (const LatencyObjective& o : config.objectives) {
    EXPECT_GT(o.threshold_ns, 0u);
    EXPECT_GT(o.target, 0.0);
    EXPECT_LE(o.target, 1.0);
    EXPECT_EQ(o.histogram.rfind("query.", 0), 0u) << o.histogram;
  }
}

// --------------------------------------------------------------- evaluation

TEST(EvaluateTest, HealthyServiceBurnsNothing) {
  std::vector<tseries::IntervalSample> ring;
  for (uint64_t i = 0; i < 6; ++i) {
    ring.push_back(KnnInterval(i, /*latency_ns=*/50'000, /*count=*/100));
  }
  const SloReport report = Evaluate(KnnConfig(), ring);
  ASSERT_EQ(report.objectives.size(), 1u);
  const ObjectiveStatus& status = report.objectives[0];
  EXPECT_DOUBLE_EQ(status.fast.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(status.slow.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(status.compliance, 1.0);
  EXPECT_DOUBLE_EQ(status.slow.total, 600.0);
  // The fast window only reaches the newest sample (10 s of a 10 s window).
  EXPECT_DOUBLE_EQ(status.fast.total, 100.0);
  EXPECT_FALSE(status.alerting);
  EXPECT_FALSE(report.Alerting());
  EXPECT_EQ(ReportText(report).find("ALERT"), std::string::npos);
}

TEST(EvaluateTest, SustainedBreachAlertsOnBothWindows) {
  std::vector<tseries::IntervalSample> ring;
  for (uint64_t i = 0; i < 6; ++i) {
    // Every query at 100 ms against a 1 ms threshold: error rate 1.0,
    // burn 1.0 / 0.01 = 100 on both windows.
    ring.push_back(KnnInterval(i, /*latency_ns=*/100'000'000, /*count=*/100));
  }
  const SloReport report = Evaluate(KnnConfig(), ring);
  const ObjectiveStatus& status = report.objectives[0];
  EXPECT_NEAR(status.fast.error_rate, 1.0, 1e-9);
  EXPECT_NEAR(status.fast.burn_rate, 100.0, 1e-6);
  EXPECT_NEAR(status.slow.burn_rate, 100.0, 1e-6);
  EXPECT_NEAR(status.compliance, 0.0, 1e-9);
  EXPECT_TRUE(status.alerting);
  EXPECT_TRUE(report.Alerting());
  EXPECT_NE(ReportText(report).find("ALERT"), std::string::npos);
}

TEST(EvaluateTest, RecoveredBreachDoesNotAlert) {
  // Five bad old intervals, one good new one: the slow window still
  // burns (the problem was real) but the fast window is clean (it is
  // over) — the two-window rule must stay quiet.
  std::vector<tseries::IntervalSample> ring;
  for (uint64_t i = 0; i < 5; ++i) {
    ring.push_back(KnnInterval(i, 100'000'000, 100));
  }
  ring.push_back(KnnInterval(5, 50'000, 100));
  const SloReport report = Evaluate(KnnConfig(), ring);
  const ObjectiveStatus& status = report.objectives[0];
  EXPECT_DOUBLE_EQ(status.fast.burn_rate, 0.0);
  EXPECT_GE(status.slow.burn_rate, 4.0);
  EXPECT_FALSE(status.alerting);
}

TEST(EvaluateTest, FreshBreachAlertsOnlyOnceTheSlowWindowAgrees) {
  // One bad new interval after five good ones: fast burns hard, slow
  // dilutes it to 1/6 of the error — at burn ~16 both windows still
  // agree; shrink the bad share to one interval in sixty and slow alone
  // must hold the alert back.
  std::vector<tseries::IntervalSample> ring;
  for (uint64_t i = 0; i < 5; ++i) ring.push_back(KnnInterval(i, 50'000, 100));
  ring.push_back(KnnInterval(5, 100'000'000, 100));
  SloConfig config = KnnConfig();
  config.alert_burn = 20.0;  // slow window burns ~16.7: below the bar
  const SloReport strict = Evaluate(config, ring);
  EXPECT_GE(strict.objectives[0].fast.burn_rate, 20.0);
  EXPECT_LT(strict.objectives[0].slow.burn_rate, 20.0);
  EXPECT_FALSE(strict.objectives[0].alerting);

  config.alert_burn = 4.0;  // both windows over the default bar
  const SloReport lax = Evaluate(config, ring);
  EXPECT_TRUE(lax.objectives[0].alerting);
}

TEST(EvaluateTest, IdleRingIsCompliantAndQuiet) {
  std::vector<tseries::IntervalSample> ring;
  tseries::IntervalSample sample;
  sample.duration_us = 10'000'000;
  sample.delta.histograms.push_back(MakeHist("query.range.latency_ns", {500}));
  ring.push_back(sample);  // activity, but none for the knn objective
  const SloReport report = Evaluate(KnnConfig(), ring);
  const ObjectiveStatus& status = report.objectives[0];
  EXPECT_DOUBLE_EQ(status.fast.total, 0.0);
  EXPECT_DOUBLE_EQ(status.slow.total, 0.0);
  EXPECT_DOUBLE_EQ(status.fast.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(status.compliance, 1.0);
  EXPECT_FALSE(status.alerting);

  const SloReport empty = Evaluate(KnnConfig(), {});
  EXPECT_FALSE(empty.Alerting());
  EXPECT_DOUBLE_EQ(empty.objectives[0].slow.seconds, 0.0);
}

TEST(EvaluateTest, ZeroErrorBudgetBurnsInfinitelyOnAnyBreach) {
  SloConfig config = KnnConfig();
  config.objectives[0].target = 1.0;  // no budget at all
  std::vector<tseries::IntervalSample> ring;
  ring.push_back(KnnInterval(0, 100'000'000, 10));
  const SloReport report = Evaluate(config, ring);
  EXPECT_DOUBLE_EQ(report.objectives[0].fast.burn_rate, kInfiniteBurn);
  EXPECT_TRUE(report.objectives[0].alerting);

  // ...but a clean zero-budget objective does not burn.
  ring.clear();
  ring.push_back(KnnInterval(0, 50'000, 10));
  const SloReport clean = Evaluate(config, ring);
  EXPECT_DOUBLE_EQ(clean.objectives[0].fast.burn_rate, 0.0);
  EXPECT_FALSE(clean.objectives[0].alerting);
}

TEST(EvaluateTest, WindowsOnlyReachBackAsFarAsConfigured) {
  // 12 intervals of 10 s each; the slow 60 s window must tally exactly
  // the newest six and ignore the breaching ancient history.
  std::vector<tseries::IntervalSample> ring;
  for (uint64_t i = 0; i < 6; ++i) {
    ring.push_back(KnnInterval(i, 100'000'000, 100));  // ancient, bad
  }
  for (uint64_t i = 6; i < 12; ++i) {
    ring.push_back(KnnInterval(i, 50'000, 100));  // recent, good
  }
  const SloReport report = Evaluate(KnnConfig(), ring);
  const ObjectiveStatus& status = report.objectives[0];
  EXPECT_DOUBLE_EQ(status.slow.total, 600.0);
  EXPECT_DOUBLE_EQ(status.slow.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(status.compliance, 1.0);
}

// ------------------------------------------------------------------- gauges

#ifdef INDOOR_METRICS_ENABLED
TEST(PublishGaugesTest, PublishesPerObjectiveGauges) {
  std::vector<tseries::IntervalSample> ring;
  ring.push_back(KnnInterval(0, 100'000'000, 100));
  SloConfig config = KnnConfig();
  config.objectives[0].name = "testslo";
  const SloReport report = Evaluate(config, ring);
  PublishGauges(report);
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  EXPECT_NEAR(registry.GetGauge("slo.testslo.burn_fast").Value(), 100.0, 1e-6);
  EXPECT_NEAR(registry.GetGauge("slo.testslo.burn_slow").Value(), 100.0, 1e-6);
  EXPECT_NEAR(registry.GetGauge("slo.testslo.compliance").Value(), 0.0, 1e-9);
}
#endif  // INDOOR_METRICS_ENABLED

}  // namespace
}  // namespace slo
}  // namespace indoor
