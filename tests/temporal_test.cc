// Temporal extension: door schedules and time-parameterized distances.

#include "core/query/temporal.h"

#include <gtest/gtest.h>

#include "core/distance/d2d_distance.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class TemporalTest : public ::testing::Test {
 protected:
  TemporalTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        graph_(plan_),
        locator_(plan_),
        ctx_(graph_, locator_),
        schedule_(plan_.door_count()) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
  PartitionLocator locator_;
  DistanceContext ctx_;
  DoorSchedule schedule_;
};

TEST_F(TemporalTest, UnscheduledDoorsAreAlwaysOpen) {
  EXPECT_TRUE(schedule_.IsOpen(ids_.d1, 0.0));
  EXPECT_TRUE(schedule_.IsOpen(ids_.d1, 86399.0));
}

TEST_F(TemporalTest, IntervalsDefineOpenness) {
  schedule_.SetOpenIntervals(ids_.d13, {{28800, 61200}});  // 8:00-17:00
  EXPECT_FALSE(schedule_.IsOpen(ids_.d13, 28799));
  EXPECT_TRUE(schedule_.IsOpen(ids_.d13, 28800));  // half-open: begin in
  EXPECT_TRUE(schedule_.IsOpen(ids_.d13, 50000));
  EXPECT_FALSE(schedule_.IsOpen(ids_.d13, 61200));  // end out
}

TEST_F(TemporalTest, MultipleIntervalsActAsUnion) {
  schedule_.SetOpenIntervals(ids_.d13, {{0, 100}, {200, 300}});
  EXPECT_TRUE(schedule_.IsOpen(ids_.d13, 50));
  EXPECT_FALSE(schedule_.IsOpen(ids_.d13, 150));
  EXPECT_TRUE(schedule_.IsOpen(ids_.d13, 250));
}

TEST_F(TemporalTest, CloseMakesDoorPermanentlyClosed) {
  schedule_.Close(ids_.d13);
  EXPECT_FALSE(schedule_.IsOpen(ids_.d13, 0));
  EXPECT_FALSE(schedule_.IsOpen(ids_.d13, 1e9));
}

TEST_F(TemporalTest, AllOpenMatchesUntimedDistance) {
  EXPECT_NEAR(D2dDistanceAtTime(graph_, schedule_, 0.0, ids_.d1, ids_.d12),
              D2dDistance(graph_, ids_.d1, ids_.d12), 1e-9);
}

TEST_F(TemporalTest, ClosingTheOnlyRouteDisconnects) {
  // d13 is the only way into room 13, which is the only way to reach d15
  // and then d12's leaveable side.
  schedule_.Close(ids_.d13);
  EXPECT_EQ(D2dDistanceAtTime(graph_, schedule_, 0.0, ids_.d1, ids_.d12),
            kInfDistance);
  // Other routes unaffected.
  EXPECT_NE(D2dDistanceAtTime(graph_, schedule_, 0.0, ids_.d1, ids_.d16),
            kInfDistance);
}

TEST_F(TemporalTest, ClosedDoorForcesDetour) {
  // Closing d21 forces v20 -> v21 traffic through d24.
  const double open =
      Pt2PtDistanceAtTime(ctx_, schedule_, 0.0, {21, 1}, {30, 1});
  schedule_.Close(ids_.d21);
  const double closed =
      Pt2PtDistanceAtTime(ctx_, schedule_, 0.0, {21, 1}, {30, 1});
  ASSERT_NE(closed, kInfDistance);
  EXPECT_GT(closed, open);
}

TEST_F(TemporalTest, TemporalDistanceDominatesUntimed) {
  // Removing doors can only lengthen (or disconnect) shortest paths.
  schedule_.SetOpenIntervals(ids_.d16, {{0, 100}});
  for (double t : {50.0, 150.0}) {
    const double timed =
        Pt2PtDistanceAtTime(ctx_, schedule_, t, {6, 5}, {30, 7});
    const double untimed = Pt2PtDistanceBasic(ctx_, {6, 5}, {30, 7});
    if (timed != kInfDistance) {
      EXPECT_GE(timed, untimed - 1e-9);
    }
  }
}

TEST_F(TemporalTest, StaircaseClosureCutsFloors) {
  // The single staircase is the only inter-floor link.
  schedule_.Close(ids_.d16);
  EXPECT_EQ(Pt2PtDistanceAtTime(ctx_, schedule_, 0.0, {6, 5}, {30, 7}),
            kInfDistance);
}

TEST_F(TemporalTest, ClosedSourceDoorBlocksDeparture) {
  schedule_.Close(ids_.d11);  // room 11's only door
  EXPECT_EQ(Pt2PtDistanceAtTime(ctx_, schedule_, 0.0, {1, 1}, {6, 5}),
            kInfDistance);
  // Same-partition queries still work.
  EXPECT_NEAR(Pt2PtDistanceAtTime(ctx_, schedule_, 0.0, {1, 1}, {3, 3}),
              std::sqrt(8.0), 1e-9);
}

TEST_F(TemporalTest, ReopeningRestoresDistance) {
  const double before =
      Pt2PtDistanceAtTime(ctx_, schedule_, 0.0, {1, 1}, {6, 5});
  schedule_.Close(ids_.d11);
  schedule_.SetOpenIntervals(ids_.d11, {{100, 200}});
  EXPECT_EQ(Pt2PtDistanceAtTime(ctx_, schedule_, 50.0, {1, 1}, {6, 5}),
            kInfDistance);
  EXPECT_NEAR(Pt2PtDistanceAtTime(ctx_, schedule_, 150.0, {1, 1}, {6, 5}),
              before, 1e-9);
}

}  // namespace
}  // namespace indoor
