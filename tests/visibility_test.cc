#include "geometry/visibility_graph.h"

#include <gtest/gtest.h>

namespace indoor {
namespace {

ObstructedRegion RoomWithPillar() {
  // 10x10 room with a 2x2 pillar in the middle.
  auto region = ObstructedRegion::Create(
      Polygon::FromRect(Rect(0, 0, 10, 10)),
      {Polygon::FromRect(Rect(4, 4, 6, 6))});
  EXPECT_TRUE(region.ok());
  return std::move(region).value();
}

TEST(ObstructedRegionTest, RejectsObstacleOutsideFootprint) {
  const auto result = ObstructedRegion::Create(
      Polygon::FromRect(Rect(0, 0, 4, 4)),
      {Polygon::FromRect(Rect(3, 3, 6, 6))});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ObstructedRegionTest, RejectsOverlappingObstacles) {
  const auto result = ObstructedRegion::Create(
      Polygon::FromRect(Rect(0, 0, 10, 10)),
      {Polygon::FromRect(Rect(2, 2, 5, 5)),
       Polygon::FromRect(Rect(4, 4, 7, 7))});
  ASSERT_FALSE(result.ok());
}

TEST(ObstructedRegionTest, ContainsRespectsObstacles) {
  const ObstructedRegion region = RoomWithPillar();
  EXPECT_TRUE(region.Contains({1, 1}));
  EXPECT_FALSE(region.Contains({5, 5}));   // inside the pillar
  EXPECT_TRUE(region.Contains({4, 5}));    // on the pillar wall: walkable
  EXPECT_FALSE(region.Contains({11, 5}));  // outside the footprint
}

TEST(ObstructedRegionTest, VisibilityBlockedByObstacle) {
  const ObstructedRegion region = RoomWithPillar();
  EXPECT_FALSE(region.Visible({1, 5}, {9, 5}));  // straight through pillar
  EXPECT_TRUE(region.Visible({1, 1}, {9, 1}));   // below the pillar
  EXPECT_TRUE(region.Visible({1, 5}, {3, 5}));   // stops before the pillar
}

TEST(ObstructedRegionTest, UnobstructedDistanceIsEuclidean) {
  const ObstructedRegion region =
      ObstructedRegion::FromPolygon(Polygon::FromRect(Rect(0, 0, 10, 10)));
  EXPECT_DOUBLE_EQ(region.Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_FALSE(region.HasObstacles());
}

TEST(ObstructedRegionTest, DetourAroundPillar) {
  const ObstructedRegion region = RoomWithPillar();
  const double d = region.Distance({1, 5}, {9, 5});
  // Symmetric detour under the pillar: two diagonal legs to the bottom
  // corners (each sqrt(3^2 + 1^2)) plus 2 m along the pillar face.
  EXPECT_NEAR(d, 2.0 * std::sqrt(10.0) + 2.0, 1e-9);
  EXPECT_GT(d, 8.0);  // strictly longer than the straight line
}

TEST(ObstructedRegionTest, ShortestPathWaypointsHugObstacleCorner) {
  const ObstructedRegion region = RoomWithPillar();
  const auto path = region.ShortestPath({1, 5}, {9, 5});
  ASSERT_EQ(path.size(), 4u);  // start, two pillar corners, end
  EXPECT_EQ(path.front(), Point(1, 5));
  EXPECT_EQ(path.back(), Point(9, 5));
  double len = 0;
  for (size_t i = 1; i < path.size(); ++i) {
    len += Distance(path[i - 1], path[i]);
  }
  EXPECT_NEAR(len, region.Distance({1, 5}, {9, 5}), 1e-9);
}

TEST(ObstructedRegionTest, VisiblePathReturnsDirectSegment) {
  const ObstructedRegion region = RoomWithPillar();
  const auto path = region.ShortestPath({1, 1}, {9, 1});
  ASSERT_EQ(path.size(), 2u);
}

TEST(ObstructedRegionTest, GrazingAlongObstacleEdgeIsAllowed) {
  const ObstructedRegion region = RoomWithPillar();
  // Sliding along the pillar's bottom face (free space below).
  EXPECT_TRUE(region.Visible({4, 4}, {6, 4}));
}

TEST(ObstructedRegionTest, FlushObstacleBlocksWallCorridor) {
  // Obstacle flush against the top wall: no corridor along that wall.
  auto region = ObstructedRegion::Create(
      Polygon::FromRect(Rect(0, 0, 12, 6)),
      {Polygon::FromRect(Rect(4, 1, 8, 6))});
  ASSERT_TRUE(region.ok());
  EXPECT_FALSE(region.value().Visible({0.5, 6}, {11.5, 6}));
  // The detour must round the obstacle's bottom corners (4,1) and (8,1):
  // two diagonal legs of sqrt(3.5^2 + 5^2) plus 4 m along the bottom face.
  const double d = region.value().Distance({0.5, 6}, {11.5, 6});
  EXPECT_NEAR(d, 2.0 * std::sqrt(3.5 * 3.5 + 25.0) + 4.0, 1e-9);
}

TEST(ObstructedRegionTest, DisconnectedFreeSpaceIsInfinite) {
  // A slab spanning wall to wall splits the room.
  auto region = ObstructedRegion::Create(
      Polygon::FromRect(Rect(0, 0, 12, 6)),
      {Polygon::FromRect(Rect(5, 0, 7, 6))});
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region.value().Distance({1, 3}, {11, 3}), kInfDistance);
  EXPECT_TRUE(region.value().ShortestPath({1, 3}, {11, 3}).empty());
}

TEST(ObstructedRegionTest, MaxDistanceFromConvexNoObstacles) {
  const ObstructedRegion region =
      ObstructedRegion::FromPolygon(Polygon::FromRect(Rect(0, 0, 6, 8)));
  EXPECT_DOUBLE_EQ(region.MaxDistanceFrom({0, 0}), 10.0);
  EXPECT_DOUBLE_EQ(region.MaxDistanceFrom({3, 4}), 5.0);
}

TEST(ObstructedRegionTest, MaxDistanceGrowsWithObstacles) {
  const ObstructedRegion plain =
      ObstructedRegion::FromPolygon(Polygon::FromRect(Rect(0, 0, 10, 10)));
  const ObstructedRegion pillar = RoomWithPillar();
  // Obstacles can only lengthen geodesics.
  EXPECT_GE(pillar.MaxDistanceFrom({1, 5}), plain.MaxDistanceFrom({1, 5}));
}

TEST(ObstructedRegionTest, NonConvexFootprintUsesReflexVertices) {
  // U-shaped footprint: going from one arm tip to the other must round the
  // two reflex corners.
  auto outer = Polygon::Create({{0, 0},
                                {9, 0},
                                {9, 6},
                                {6, 6},
                                {6, 2},
                                {3, 2},
                                {3, 6},
                                {0, 6}});
  ASSERT_TRUE(outer.ok());
  const ObstructedRegion region =
      ObstructedRegion::FromPolygon(std::move(outer).value());
  const Point a(1.5, 5.5), b(7.5, 5.5);
  EXPECT_FALSE(region.Visible(a, b));
  const double expected = Distance(a, Point(3, 2)) +
                          Distance(Point(3, 2), Point(6, 2)) +
                          Distance(Point(6, 2), b);
  EXPECT_NEAR(region.Distance(a, b), expected, 1e-9);
}

TEST(ObstructedRegionTest, DistanceSymmetry) {
  const ObstructedRegion region = RoomWithPillar();
  const Point a(1, 5), b(9, 6.5);
  EXPECT_NEAR(region.Distance(a, b), region.Distance(b, a), 1e-9);
}

}  // namespace
}  // namespace indoor
