#include "geometry/point.h"

#include <gtest/gtest.h>

namespace indoor {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a(1, 2), b(3, 5);
  EXPECT_EQ(a + b, Point(4, 7));
  EXPECT_EQ(b - a, Point(2, 3));
  EXPECT_EQ(a * 2.0, Point(2, 4));
}

TEST(PointTest, DotAndCross) {
  EXPECT_DOUBLE_EQ(Dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(Cross({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Cross({0, 1}, {1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(Cross({2, 3}, {4, 6}), 0.0);  // parallel
}

TEST(PointTest, OrientSign) {
  // Counter-clockwise turn is positive.
  EXPECT_GT(Orient({0, 0}, {1, 0}, {1, 1}), 0.0);
  EXPECT_LT(Orient({0, 0}, {1, 0}, {1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(Orient({0, 0}, {1, 1}, {2, 2}), 0.0);
}

TEST(PointTest, Distances) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, Lerp) {
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 0.5), Point(5, 10));
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 0.0), Point(0, 0));
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 1.0), Point(10, 20));
}

TEST(PointTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual({1, 2}, {1 + 1e-12, 2 - 1e-12}));
  EXPECT_FALSE(ApproxEqual({1, 2}, {1.001, 2}));
  EXPECT_TRUE(ApproxEqual({1, 2}, {1.05, 2}, 0.1));
}

TEST(PointTest, EqualityOperators) {
  EXPECT_TRUE(Point(1, 2) == Point(1, 2));
  EXPECT_TRUE(Point(1, 2) != Point(2, 1));
}

TEST(PointTest, StreamFormat) {
  std::ostringstream os;
  os << Point(1.5, -2);
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace indoor
