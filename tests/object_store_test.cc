#include "core/index/object_store.h"

#include <gtest/gtest.h>

#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest()
      : plan_(MakeRunningExamplePlan(&ids_)), store_(plan_, 2.0) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  ObjectStore store_;
};

TEST_F(ObjectStoreTest, InsertAssignsDenseIds) {
  const auto a = store_.Insert(ids_.v11, {1, 1});
  const auto b = store_.Insert(ids_.v11, {2, 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(store_.size(), 2u);
}

TEST_F(ObjectStoreTest, InsertValidatesPartitionId) {
  const auto result = store_.Insert(999, {1, 1});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ObjectStoreTest, InsertValidatesContainment) {
  const auto result = store_.Insert(ids_.v11, {100, 100});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("outside"), std::string::npos);
}

TEST_F(ObjectStoreTest, InsertRejectsPositionInsideObstacle) {
  const auto result = store_.Insert(ids_.v20, {24, 4});
  ASSERT_FALSE(result.ok());
}

TEST_F(ObjectStoreTest, BucketsTrackPartitions) {
  ASSERT_TRUE(store_.Insert(ids_.v11, {1, 1}).ok());
  ASSERT_TRUE(store_.Insert(ids_.v12, {6, 2}).ok());
  EXPECT_EQ(store_.bucket(ids_.v11).size(), 1u);
  EXPECT_EQ(store_.bucket(ids_.v12).size(), 1u);
  EXPECT_EQ(store_.bucket(ids_.v13).size(), 0u);
}

TEST_F(ObjectStoreTest, MoveObjectAcrossPartitions) {
  const ObjectId id = store_.Insert(ids_.v11, {1, 1}).value();
  ASSERT_TRUE(store_.MoveObject(id, ids_.v13, {9, 2}).ok());
  EXPECT_EQ(store_.object(id).partition, ids_.v13);
  EXPECT_EQ(store_.bucket(ids_.v11).size(), 0u);
  EXPECT_EQ(store_.bucket(ids_.v13).size(), 1u);
}

TEST_F(ObjectStoreTest, MoveObjectWithinPartition) {
  const ObjectId id = store_.Insert(ids_.v11, {1, 1}).value();
  ASSERT_TRUE(store_.MoveObject(id, ids_.v11, {3, 3}).ok());
  EXPECT_EQ(store_.object(id).position, Point(3, 3));
  EXPECT_EQ(store_.bucket(ids_.v11).size(), 1u);
}

TEST_F(ObjectStoreTest, MoveValidatesTarget) {
  const ObjectId id = store_.Insert(ids_.v11, {1, 1}).value();
  EXPECT_FALSE(store_.MoveObject(id, ids_.v11, {100, 100}).ok());
  EXPECT_FALSE(store_.MoveObject(id, 999, {1, 1}).ok());
  EXPECT_FALSE(store_.MoveObject(42, ids_.v11, {1, 1}).ok());
  // Object unchanged after failed moves.
  EXPECT_EQ(store_.object(id).partition, ids_.v11);
}

TEST_F(ObjectStoreTest, ObjectAccessorReturnsStoredData) {
  const ObjectId id = store_.Insert(ids_.v21, {30, 4}).value();
  const IndoorObject& obj = store_.object(id);
  EXPECT_EQ(obj.id, id);
  EXPECT_EQ(obj.partition, ids_.v21);
  EXPECT_EQ(obj.position, Point(30, 4));
}

TEST_F(ObjectStoreTest, GridCellSizePropagates) {
  EXPECT_DOUBLE_EQ(store_.grid_cell_size(), 2.0);
  const ObjectStore coarse(plan_, 8.0);
  EXPECT_LE(coarse.bucket(ids_.v10).cell_count(),
            store_.bucket(ids_.v10).cell_count());
}

}  // namespace
}  // namespace indoor
