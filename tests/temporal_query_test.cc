// Time-parameterized range/kNN/shortest-path queries against per-object
// temporal oracles.

#include "core/query/temporal_query.h"

#include <gtest/gtest.h>

#include "core/query/knn_query.h"
#include "core/query/range_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

/// Oracle: exact per-object temporal distances via Pt2PtDistanceAtTime.
std::vector<ObjectId> OracleRangeAtTime(const IndexFramework& index,
                                        const DoorSchedule& schedule,
                                        double time, const Point& q,
                                        double r) {
  std::vector<ObjectId> out;
  const auto ctx = index.distance_context();
  for (const IndoorObject& obj : index.objects().objects()) {
    if (Pt2PtDistanceAtTime(ctx, schedule, time, q, obj.position) <= r) {
      out.push_back(obj.id);
    }
  }
  return out;
}

class TemporalQueryTest : public ::testing::Test {
 protected:
  TemporalQueryTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        index_(plan_),
        schedule_(plan_.door_count()) {}

  ObjectId Add(PartitionId v, Point p) {
    auto id = index_.objects().Insert(v, p);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value();
  }

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
  DoorSchedule schedule_;
};

TEST_F(TemporalQueryTest, AllOpenMatchesUntimedQueries) {
  Rng rng(71);
  PopulateStore(GenerateObjects(plan_, 60, &rng), &index_.objects());
  for (int trial = 0; trial < 10; ++trial) {
    const Point q = RandomIndoorPosition(plan_, &rng);
    EXPECT_EQ(RangeQueryAtTime(index_, schedule_, 0.0, q, 20.0),
              RangeQuery(index_, q, 20.0));
    const auto timed = KnnQueryAtTime(index_, schedule_, 0.0, q, 7);
    const auto untimed = KnnQuery(index_, q, 7);
    ASSERT_EQ(timed.size(), untimed.size());
    for (size_t i = 0; i < timed.size(); ++i) {
      EXPECT_NEAR(timed[i].distance, untimed[i].distance, 1e-9);
    }
  }
}

TEST_F(TemporalQueryTest, ClosedDoorShrinksRangeResult) {
  const ObjectId far_obj = Add(ids_.v12, {6, 2});
  // From the hallway, room 12 is reachable only through d13 then d15.
  const Point q(5, 4.5);
  ASSERT_EQ(RangeQueryAtTime(index_, schedule_, 0.0, q, 12.0),
            std::vector<ObjectId>{far_obj});
  schedule_.Close(ids_.d13);
  EXPECT_TRUE(RangeQueryAtTime(index_, schedule_, 0.0, q, 12.0).empty());
}

TEST_F(TemporalQueryTest, ClosedDoorLengthensKnnDistance) {
  Add(ids_.v21, {30, 4});
  const Point q(21, 1);  // in v20
  const auto open_result = KnnQueryAtTime(index_, schedule_, 0.0, q, 1);
  ASSERT_EQ(open_result.size(), 1u);
  schedule_.Close(ids_.d21);  // force the d24 detour
  const auto closed_result = KnnQueryAtTime(index_, schedule_, 0.0, q, 1);
  ASSERT_EQ(closed_result.size(), 1u);
  EXPECT_GT(closed_result[0].distance, open_result[0].distance);
}

TEST_F(TemporalQueryTest, UnreachableObjectsDropOut) {
  Add(ids_.v21, {30, 4});
  schedule_.Close(ids_.d21);
  schedule_.Close(ids_.d24);  // v21 fully sealed
  EXPECT_TRUE(
      KnnQueryAtTime(index_, schedule_, 0.0, {21, 1}, 1).empty());
  EXPECT_TRUE(
      RangeQueryAtTime(index_, schedule_, 0.0, {21, 1}, 1000.0).empty());
}

TEST_F(TemporalQueryTest, MatchesOracleUnderRandomSchedules) {
  Rng rng(73);
  PopulateStore(GenerateObjects(plan_, 40, &rng), &index_.objects());
  // Random schedule: every door open in [100, 200), a third closed outside.
  for (DoorId d = 0; d < plan_.door_count(); ++d) {
    if (rng.NextBool(0.33)) {
      schedule_.SetOpenIntervals(d, {{100, 200}});
    }
  }
  for (double t : {50.0, 150.0}) {
    for (int trial = 0; trial < 6; ++trial) {
      const Point q = RandomIndoorPosition(plan_, &rng);
      EXPECT_EQ(RangeQueryAtTime(index_, schedule_, t, q, 18.0),
                OracleRangeAtTime(index_, schedule_, t, q, 18.0))
          << "t=" << t << " q=" << q;
    }
  }
}

TEST_F(TemporalQueryTest, PathAtTimeAvoidsClosedDoors) {
  const Point p(21, 1), q(30, 1);
  const auto ctx = index_.distance_context();
  const IndoorPath open_path =
      Pt2PtShortestPathAtTime(ctx, schedule_, 0.0, p, q);
  ASSERT_TRUE(open_path.found());
  EXPECT_EQ(open_path.doors, std::vector<DoorId>{ids_.d21});
  schedule_.Close(ids_.d21);
  const IndoorPath detour =
      Pt2PtShortestPathAtTime(ctx, schedule_, 0.0, p, q);
  ASSERT_TRUE(detour.found());
  EXPECT_EQ(detour.doors, std::vector<DoorId>{ids_.d24});
  EXPECT_GT(detour.length, open_path.length);
}

TEST_F(TemporalQueryTest, PathAtTimeMatchesDistanceAtTime) {
  schedule_.SetOpenIntervals(ids_.d16, {{0, 1000}});
  const Point p(6, 5), q(30, 7);
  const auto ctx = index_.distance_context();
  const IndoorPath path =
      Pt2PtShortestPathAtTime(ctx, schedule_, 500.0, p, q);
  EXPECT_NEAR(path.length,
              Pt2PtDistanceAtTime(ctx, schedule_, 500.0, p, q), 1e-9);
  // After hours the staircase is shut: no path.
  EXPECT_FALSE(
      Pt2PtShortestPathAtTime(ctx, schedule_, 1500.0, p, q).found());
}

TEST_F(TemporalQueryTest, SamePartitionPathIgnoresSchedules) {
  schedule_.Close(ids_.d11);
  const auto ctx = index_.distance_context();
  const IndoorPath path =
      Pt2PtShortestPathAtTime(ctx, schedule_, 0.0, {1, 1}, {3, 3});
  ASSERT_TRUE(path.found());
  EXPECT_TRUE(path.doors.empty());
  EXPECT_NEAR(path.length, std::sqrt(8.0), 1e-9);
}

TEST(TemporalQueryGeneratedTest, RangeMatchesOracleOnGeneratedBuilding) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 8;
  config.seed = 79;
  FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(83);
  PopulateStore(GenerateObjects(plan, 80, &rng), &index.objects());
  DoorSchedule schedule(plan.door_count());
  for (DoorId d = 0; d < plan.door_count(); ++d) {
    if (rng.NextBool(0.25)) schedule.Close(d);
  }
  for (int trial = 0; trial < 6; ++trial) {
    const Point q = RandomIndoorPosition(plan, &rng);
    EXPECT_EQ(RangeQueryAtTime(index, schedule, 0.0, q, 25.0),
              OracleRangeAtTime(index, schedule, 0.0, q, 25.0));
  }
}

}  // namespace
}  // namespace indoor
