// The flight recorder and per-partition hotness (util/timeseries.h):
// staging/flush/coalescing, interval stats, the binary recording format
// and its JSONL export, and the background sampler under concurrency —
// the recorder tests double as the TSan targets for this subsystem.

#include "util/timeseries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace indoor {
namespace tseries {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  EXPECT_NE(in, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) out.append(buf, n);
  std::fclose(in);
  return out;
}

/// A named HistogramSnapshot over explicit values (what a registry delta
/// would carry for one instrument).
metrics::HistogramSnapshot MakeHist(const std::string& name,
                                    const std::vector<uint64_t>& values) {
  metrics::Histogram h;
  for (uint64_t v : values) h.Record(v);
  metrics::HistogramSnapshot s;
  s.name = name;
  s.count = h.Count();
  s.sum = h.Sum();
  s.max = h.Max();
  s.buckets.resize(metrics::Histogram::kNumBuckets);
  for (size_t i = 0; i < s.buckets.size(); ++i) s.buckets[i] = h.BucketCount(i);
  return s;
}

/// One hand-built interval. Counters and histograms must stay sorted by
/// name — the snapshot contract FindHistogram/CounterValue rely on.
IntervalSample MakeSample(uint64_t index, uint64_t duration_us) {
  IntervalSample sample;
  sample.index = index;
  sample.start_us = index * duration_us;
  sample.duration_us = duration_us;
  sample.delta.counters = {
      {"cache.field.hits", 30},     {"cache.field.misses", 10},
      {"distance.dijkstra.settles", 5000}, {"update.moves", 20},
  };
  sample.delta.histograms.push_back(
      MakeHist("query.knn.latency_ns", {1000, 2000, 4000, 8000}));
  sample.delta.histograms.push_back(
      MakeHist("query.range.latency_ns", {500, 500, 100000, 200000}));
  sample.hot = {{2, 10, 100}, {7, 3, 9}};
  return sample;
}

// --------------------------------------------------------- PartitionHotness

TEST(PartitionHotnessTest, RecordAndSnapshot) {
  PartitionHotness hotness;
  EXPECT_EQ(hotness.slots(), 0u);
  EXPECT_TRUE(hotness.Snapshot().empty());
  hotness.Reset(8);
  EXPECT_EQ(hotness.slots(), 8u);
  hotness.Record(3, 2, 17);
  hotness.Record(3, 1, 3);
  hotness.Record(5, 1, 0);
  const auto entries = hotness.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].slot, 3u);
  EXPECT_EQ(entries[0].visits, 3u);
  EXPECT_EQ(entries[0].settles, 20u);
  EXPECT_EQ(entries[1].slot, 5u);
  EXPECT_EQ(entries[1].visits, 1u);
}

TEST(PartitionHotnessTest, OutOfRangeSlotsAreDropped) {
  PartitionHotness hotness;
  hotness.Reset(4);
  hotness.Record(4, 1, 1);   // one past the end
  hotness.Record(999, 1, 1);
  EXPECT_TRUE(hotness.Snapshot().empty());
}

TEST(PartitionHotnessTest, FlushVisitsCoalescesAndClears) {
  PartitionHotness hotness;
  hotness.Reset(16);
  // One query that expanded into partition 3 twice and partition 1 once.
  std::vector<std::pair<uint32_t, uint32_t>> staged = {
      {3, 5}, {1, 2}, {3, 7}};
  hotness.FlushVisits(&staged);
  EXPECT_TRUE(staged.empty());
  const auto entries = hotness.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].slot, 1u);
  EXPECT_EQ(entries[0].visits, 1u);
  EXPECT_EQ(entries[0].settles, 2u);
  EXPECT_EQ(entries[1].slot, 3u);
  EXPECT_EQ(entries[1].visits, 2u);  // two stage entries, one per search
  EXPECT_EQ(entries[1].settles, 12u);
}

TEST(PartitionHotnessTest, ConcurrentFlushesLoseNothing) {
  PartitionHotness hotness;
  hotness.Reset(32);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hotness, t] {
      std::vector<std::pair<uint32_t, uint32_t>> staged;
      for (int q = 0; q < kQueriesPerThread; ++q) {
        staged.push_back({static_cast<uint32_t>(t % 4), 2});
        staged.push_back({static_cast<uint32_t>(8 + q % 3), 1});
        hotness.FlushVisits(&staged);
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t visits = 0;
  uint64_t settles = 0;
  for (const auto& entry : hotness.Snapshot()) {
    visits += entry.visits;
    settles += entry.settles;
  }
  EXPECT_EQ(visits, static_cast<uint64_t>(kThreads) * kQueriesPerThread * 2);
  EXPECT_EQ(settles, static_cast<uint64_t>(kThreads) * kQueriesPerThread * 3);
}

// ------------------------------------------------------------ derived stats

TEST(IntervalStatsTest, ComputeIntervalStatsDerivesRates) {
  const IntervalSample sample = MakeSample(0, 2'000'000);  // 2 s
  const IntervalStats stats = ComputeIntervalStats(sample);
  EXPECT_DOUBLE_EQ(stats.seconds, 2.0);
  EXPECT_EQ(stats.queries, 8u);  // 4 knn + 4 range
  EXPECT_DOUBLE_EQ(stats.qps, 4.0);
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate, 0.75);
  EXPECT_DOUBLE_EQ(stats.settles_per_sec, 2500.0);
  EXPECT_DOUBLE_EQ(stats.moves_per_sec, 10.0);
}

TEST(IntervalStatsTest, DegenerateIntervalReportsZeroRates) {
  IntervalSample sample = MakeSample(0, 0);
  const IntervalStats stats = ComputeIntervalStats(sample);
  EXPECT_DOUBLE_EQ(stats.seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.qps, 0.0);
  EXPECT_EQ(stats.queries, 8u);  // counts still tally; only rates need time
}

TEST(IntervalStatsTest, QueryPercentileAndActiveKinds) {
  Recording recording;
  recording.samples.push_back(MakeSample(0, 1'000'000));
  const auto kinds = ActiveQueryKinds(recording);
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], "knn");
  EXPECT_EQ(kinds[1], "range");
  EXPECT_GT(QueryPercentileNs(recording.samples[0], "range", 0.99), 10000.0);
  EXPECT_DOUBLE_EQ(QueryPercentileNs(recording.samples[0], "window", 0.99),
                   0.0);
}

// ---------------------------------------------------------- recording files

TEST(RecordingIoTest, BinaryRoundTripPreservesEverything) {
  Recording recording;
  recording.interval_ms = 250;
  // The context carries operator strings (plan paths) verbatim — hostile
  // bytes must survive the binary round trip untouched.
  recording.context = "plan=/tmp/evil \"quoted\\path\"\nobjects=100\n";
  recording.samples.push_back(MakeSample(0, 250'000));
  recording.samples.push_back(MakeSample(1, 251'000));
  const std::string path = TempPath("roundtrip.rec");
  ASSERT_TRUE(WriteRecordingFile(recording, path).ok());

  auto loaded = ReadRecording(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->label, path);
  EXPECT_EQ(loaded->interval_ms, 250u);
  EXPECT_EQ(loaded->context, recording.context);
  ASSERT_EQ(loaded->samples.size(), 2u);
  const IntervalSample& got = loaded->samples[1];
  const IntervalSample& want = recording.samples[1];
  EXPECT_EQ(got.index, want.index);
  EXPECT_EQ(got.start_us, want.start_us);
  EXPECT_EQ(got.duration_us, want.duration_us);
  ASSERT_EQ(got.delta.counters.size(), want.delta.counters.size());
  EXPECT_EQ(got.delta.counters[0].first, want.delta.counters[0].first);
  EXPECT_EQ(got.delta.counters[0].second, want.delta.counters[0].second);
  ASSERT_EQ(got.delta.histograms.size(), want.delta.histograms.size());
  EXPECT_EQ(got.delta.histograms[0].count, want.delta.histograms[0].count);
  EXPECT_EQ(got.delta.histograms[0].sum, want.delta.histograms[0].sum);
  ASSERT_EQ(got.hot.size(), want.hot.size());
  EXPECT_EQ(got.hot[0].slot, want.hot[0].slot);
  EXPECT_EQ(got.hot[0].visits, want.hot[0].visits);
  EXPECT_EQ(got.hot[1].settles, want.hot[1].settles);
}

TEST(RecordingIoTest, JsonlExportEscapesHostileContext) {
  Recording recording;
  recording.interval_ms = 100;
  recording.context = "plan=/tmp/evil \"quoted\\path\"\nnewline\n";
  recording.samples.push_back(MakeSample(0, 100'000));
  const std::string path = TempPath("export.jsonl");
  ASSERT_TRUE(WriteRecordingFile(recording, path).ok());
  const std::string text = Slurp(path);
  // The raw context must never reach the stream unescaped...
  EXPECT_EQ(text.find("evil \"quoted\\path\""), std::string::npos);
  // ...its escaped form must.
  EXPECT_NE(text.find("evil \\\"quoted\\\\path\\\"\\n"), std::string::npos);
  // One meta line plus one line per interval.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"qps\""), std::string::npos);
  EXPECT_NE(text.find("\"hot\""), std::string::npos);
}

TEST(RecordingIoTest, ReadRejectsJsonlAndGarbage) {
  Recording recording;
  recording.interval_ms = 100;
  recording.samples.push_back(MakeSample(0, 100'000));
  const std::string jsonl = TempPath("one_way.jsonl");
  ASSERT_TRUE(WriteRecordingFile(recording, jsonl).ok());
  const auto from_jsonl = ReadRecording(jsonl);
  ASSERT_FALSE(from_jsonl.ok());
  EXPECT_NE(from_jsonl.status().message().find("magic"), std::string::npos);

  const std::string truncated = TempPath("truncated.rec");
  std::FILE* f = std::fopen(truncated.c_str(), "wb");
  std::fwrite(kRecordingMagic, 1, sizeof(kRecordingMagic), f);
  std::fclose(f);
  EXPECT_FALSE(ReadRecording(truncated).ok());
  EXPECT_FALSE(ReadRecording(TempPath("does_not_exist.rec")).ok());
}

TEST(RecordingIoTest, AppendIntervalJsonEscapesInstrumentNames) {
  IntervalSample sample = MakeSample(0, 100'000);
  sample.delta.counters.push_back({"evil.\"name\"\n", 7});
  std::sort(sample.delta.counters.begin(), sample.delta.counters.end());
  std::string line;
  AppendIntervalJson(&line, sample);
  EXPECT_EQ(line.find("evil.\"name\"\n"), std::string::npos);
  EXPECT_NE(line.find("evil.\\\"name\\\"\\n"), std::string::npos);
  // One JSON object per line: no raw newline may survive inside it.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

// ------------------------------------------------------------ FlightRecorder

#ifdef INDOOR_METRICS_ENABLED

TEST(FlightRecorderTest, StartStopCollectsIntervalDeltas) {
  metrics::Counter& counter =
      metrics::MetricsRegistry::Global().GetCounter("test.tsrec.activity");
  FlightRecorder recorder;
  FlightRecorderOptions options;
  options.interval_ms = 5;
  options.context = "source=timeseries_test\n";
  ASSERT_TRUE(recorder.Start(options).ok());
  EXPECT_TRUE(recorder.running());
  for (int i = 0; i < 10; ++i) {
    counter.Add(100);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  recorder.Stop();
  EXPECT_FALSE(recorder.running());
  const Recording recording = recorder.Snapshot();
  EXPECT_EQ(recording.context, "source=timeseries_test\n");
  EXPECT_EQ(recording.interval_ms, 5u);
  ASSERT_FALSE(recording.samples.empty());
  EXPECT_EQ(recorder.intervals(), recording.samples.size());
  // The interval deltas must add up to exactly what the workload did:
  // nothing lost at interval boundaries, nothing double-counted.
  uint64_t total = 0;
  uint64_t prev_index = 0;
  for (size_t i = 0; i < recording.samples.size(); ++i) {
    total += CounterValue(recording.samples[i].delta, "test.tsrec.activity");
    if (i > 0) {
      EXPECT_EQ(recording.samples[i].index, prev_index + 1);
    }
    prev_index = recording.samples[i].index;
    EXPECT_GT(recording.samples[i].duration_us, 0u);
  }
  EXPECT_EQ(total, 1000u);
}

TEST(FlightRecorderTest, StartValidatesOptionsAndRejectsDoubleStart) {
  FlightRecorder recorder;
  FlightRecorderOptions bad;
  bad.interval_ms = 0;
  EXPECT_FALSE(recorder.Start(bad).ok());
  bad.interval_ms = 10;
  bad.ring_capacity = 0;
  EXPECT_FALSE(recorder.Start(bad).ok());

  FlightRecorderOptions good;
  good.interval_ms = 50;
  ASSERT_TRUE(recorder.Start(good).ok());
  EXPECT_FALSE(recorder.Start(good).ok());  // already running
  recorder.Stop();
  recorder.Stop();  // idempotent
  ASSERT_TRUE(recorder.Start(good).ok());  // restartable after Stop
  recorder.Stop();
}

TEST(FlightRecorderTest, RingOverflowEvictsOldestAndCounts) {
  metrics::Counter& counter =
      metrics::MetricsRegistry::Global().GetCounter("test.tsrec.overflow");
  FlightRecorder recorder;
  FlightRecorderOptions options;
  options.interval_ms = 2;
  options.ring_capacity = 3;
  ASSERT_TRUE(recorder.Start(options).ok());
  // Run until eviction actually happened (bounded: slow CI machines may
  // stretch the 2 ms sampling interval considerably).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (recorder.evictions() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    counter.Increment();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  recorder.Stop();
  const Recording recording = recorder.Snapshot();
  EXPECT_LE(recording.samples.size(), 3u);
  EXPECT_GT(recorder.evictions(), 0u);
  EXPECT_EQ(recorder.intervals(),
            recording.samples.size() + recorder.evictions());
  // Eviction drops from the front: surviving indexes stay contiguous.
  for (size_t i = 1; i < recording.samples.size(); ++i) {
    EXPECT_EQ(recording.samples[i].index,
              recording.samples[i - 1].index + 1);
  }
}

TEST(FlightRecorderTest, DumpWhileSamplingIsSafeAndLoadable) {
  metrics::Counter& counter =
      metrics::MetricsRegistry::Global().GetCounter("test.tsrec.dump");
  FlightRecorder recorder;
  FlightRecorderOptions options;
  options.interval_ms = 1;  // sample as fast as possible while we dump
  ASSERT_TRUE(recorder.Start(options).ok());
  const std::string path = TempPath("mid_flight.rec");
  for (int i = 0; i < 20; ++i) {
    counter.Add(3);
    ASSERT_TRUE(recorder.Dump(path).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto mid = ReadRecording(path);
  ASSERT_TRUE(mid.ok()) << mid.status();
  recorder.Stop();
}

TEST(FlightRecorderTest, EightThreadWorkloadUnderSampler) {
  // The TSan workhorse: 8 writer threads hammer the registry and the
  // hotness accumulator while the sampler snapshots, diffs, and evicts,
  // and the main thread dumps mid-flight.
  PartitionHotness hotness;
  hotness.Reset(64);
  FlightRecorder recorder;
  FlightRecorderOptions options;
  options.interval_ms = 1;
  options.ring_capacity = 8;  // force evictions under load
  options.hotness = &hotness;
  options.hot_slots_max = 16;  // force truncation under load
  ASSERT_TRUE(recorder.Start(options).ok());

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 300;
  std::atomic<uint64_t> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      metrics::MetricsRegistry& reg = metrics::MetricsRegistry::Global();
      std::vector<std::pair<uint32_t, uint32_t>> staged;
      for (int q = 0; q < kQueriesPerThread; ++q) {
        reg.GetCounter("test.tsrec.mt").Increment();
        reg.GetHistogram("query.range.latency_ns")
            .Record(static_cast<uint64_t>(1000 + q));
        staged.push_back({static_cast<uint32_t>((t * 7 + q) % 64), 2});
        hotness.FlushVisits(&staged);
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const std::string path = TempPath("mt.rec");
  while (done.load(std::memory_order_relaxed) <
         static_cast<uint64_t>(kThreads) * kQueriesPerThread) {
    ASSERT_TRUE(recorder.Dump(path).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& t : threads) t.join();
  recorder.Stop();
  EXPECT_GT(recorder.intervals(), 0u);
  uint64_t hot_visits = 0;
  for (const auto& entry : hotness.Snapshot()) hot_visits += entry.visits;
  EXPECT_EQ(hot_visits,
            static_cast<uint64_t>(kThreads) * kQueriesPerThread);
}

TEST(FlightRecorderTest, StopCapturesTheFinalPartialInterval) {
  metrics::Counter& counter =
      metrics::MetricsRegistry::Global().GetCounter("test.tsrec.partial");
  FlightRecorder recorder;
  FlightRecorderOptions options;
  options.interval_ms = 60'000;  // the timer alone would never fire
  ASSERT_TRUE(recorder.Start(options).ok());
  counter.Add(42);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  recorder.Stop();
  const Recording recording = recorder.Snapshot();
  ASSERT_EQ(recording.samples.size(), 1u);
  EXPECT_EQ(CounterValue(recording.samples[0].delta, "test.tsrec.partial"),
            42u);
}

TEST(FlightRecorderTest, HotnessDeltasLandInSamples) {
  PartitionHotness hotness;
  hotness.Reset(8);
  FlightRecorder recorder;
  FlightRecorderOptions options;
  options.interval_ms = 60'000;  // single final sample carries everything
  options.hotness = &hotness;
  ASSERT_TRUE(recorder.Start(options).ok());
  hotness.Record(2, 4, 40);
  hotness.Record(5, 1, 5);
  recorder.Stop();
  const Recording recording = recorder.Snapshot();
  ASSERT_EQ(recording.samples.size(), 1u);
  const auto& hot = recording.samples[0].hot;
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].slot, 2u);
  EXPECT_EQ(hot[0].visits, 4u);
  EXPECT_EQ(hot[0].settles, 40u);
  EXPECT_EQ(hot[1].slot, 5u);
}

TEST(FlightRecorderTest, HotTruncationKeepsTheBusiest) {
  PartitionHotness hotness;
  hotness.Reset(8);
  FlightRecorder recorder;
  FlightRecorderOptions options;
  options.interval_ms = 60'000;
  options.hotness = &hotness;
  options.hot_slots_max = 2;
  ASSERT_TRUE(recorder.Start(options).ok());
  hotness.Record(0, 1, 0);
  hotness.Record(1, 100, 0);
  hotness.Record(2, 3, 0);
  hotness.Record(3, 50, 0);
  recorder.Stop();
  const Recording recording = recorder.Snapshot();
  ASSERT_EQ(recording.samples.size(), 1u);
  const auto& hot = recording.samples[0].hot;
  ASSERT_EQ(hot.size(), 2u);  // busiest two, back in slot order
  EXPECT_EQ(hot[0].slot, 1u);
  EXPECT_EQ(hot[1].slot, 3u);
}

#else  // !INDOOR_METRICS_ENABLED

TEST(FlightRecorderTest, StartFailsLoudlyWithoutMetrics) {
  // A metrics-OFF build has nothing to record; Start must refuse with a
  // self-explanatory error instead of silently writing empty recordings.
  FlightRecorder recorder;
  const Status status = recorder.Start(FlightRecorderOptions{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("metrics disabled"), std::string::npos);
  EXPECT_FALSE(recorder.running());
}

#endif  // INDOOR_METRICS_ENABLED

}  // namespace
}  // namespace tseries
}  // namespace indoor
