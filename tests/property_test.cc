// Property-based suites: parameterized sweeps over generated buildings and
// seeds asserting the library's core invariants.

#include <gtest/gtest.h>

#include <memory>

#include "baseline/linear_scan.h"
#include "core/distance/d2d_distance.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"

namespace indoor {
namespace {

struct BuildingCase {
  int floors;
  int rooms_per_floor;
  uint64_t seed;
  double room_to_room = 0.0;  // probability of extra room-to-room doors
  double one_way = 0.0;       // fraction of those that are unidirectional
  double obstacles = 0.0;     // probability of a pillar per room
};

std::ostream& operator<<(std::ostream& os, const BuildingCase& c) {
  os << "floors" << c.floors << "_rooms" << c.rooms_per_floor << "_seed"
     << c.seed;
  if (c.room_to_room > 0) os << "_r2r";
  if (c.one_way > 0) os << "_oneway";
  if (c.obstacles > 0) os << "_obstacles";
  return os;
}

class BuildingPropertyTest : public ::testing::TestWithParam<BuildingCase> {
 protected:
  BuildingPropertyTest() {
    BuildingConfig config;
    config.floors = GetParam().floors;
    config.rooms_per_floor = GetParam().rooms_per_floor;
    config.seed = GetParam().seed;
    config.room_to_room_doors = GetParam().room_to_room;
    config.one_way_fraction = GetParam().one_way;
    config.obstacle_probability = GetParam().obstacles;
    plan_ = std::make_unique<FloorPlan>(GenerateBuilding(config));
    graph_ = std::make_unique<DistanceGraph>(*plan_);
    locator_ = std::make_unique<PartitionLocator>(*plan_);
  }

  DistanceContext Ctx() const {
    return DistanceContext(*graph_, *locator_);
  }

  std::unique_ptr<FloorPlan> plan_;
  std::unique_ptr<DistanceGraph> graph_;
  std::unique_ptr<PartitionLocator> locator_;
};

TEST_P(BuildingPropertyTest, Pt2PtVariantsAgree) {
  Rng rng(GetParam().seed * 7 + 1);
  const auto ctx = Ctx();
  for (const auto& [p, q] : GeneratePositionPairs(*plan_, 12, &rng)) {
    const double basic = Pt2PtDistanceBasic(ctx, p, q);
    EXPECT_NEAR(Pt2PtDistanceRefined(ctx, p, q), basic, 1e-6);
    EXPECT_NEAR(Pt2PtDistanceReuse(ctx, p, q), basic, 1e-6);
    EXPECT_NEAR(Pt2PtDistanceVirtual(ctx, p, q), basic, 1e-6);
  }
}

TEST_P(BuildingPropertyTest, D2dTriangleInequality) {
  Rng rng(GetParam().seed * 7 + 2);
  const size_t n = plan_->door_count();
  for (int trial = 0; trial < 40; ++trial) {
    const DoorId a = static_cast<DoorId>(rng.NextIndex(n));
    const DoorId b = static_cast<DoorId>(rng.NextIndex(n));
    const DoorId c = static_cast<DoorId>(rng.NextIndex(n));
    const double ab = D2dDistance(*graph_, a, b);
    const double bc = D2dDistance(*graph_, b, c);
    const double ac = D2dDistance(*graph_, a, c);
    if (ab != kInfDistance && bc != kInfDistance) {
      EXPECT_LE(ac, ab + bc + 1e-6);
    }
  }
}

TEST_P(BuildingPropertyTest, MatrixMatchesOnDemandComputation) {
  const DistanceMatrix matrix(*graph_);
  Rng rng(GetParam().seed * 7 + 3);
  const size_t n = plan_->door_count();
  for (int trial = 0; trial < 30; ++trial) {
    const DoorId a = static_cast<DoorId>(rng.NextIndex(n));
    const DoorId b = static_cast<DoorId>(rng.NextIndex(n));
    EXPECT_NEAR(matrix.At(a, b), D2dDistance(*graph_, a, b), 1e-9);
  }
}

TEST_P(BuildingPropertyTest, MidxRowsSortedPermutations) {
  const DistanceMatrix matrix(*graph_);
  const DistanceIndexMatrix midx(matrix);
  Rng rng(GetParam().seed * 7 + 4);
  const size_t n = plan_->door_count();
  for (int trial = 0; trial < 10; ++trial) {
    const DoorId di = static_cast<DoorId>(rng.NextIndex(n));
    std::vector<char> seen(n, 0);
    for (size_t j = 0; j < n; ++j) {
      const DoorId dj = midx.At(di, j);
      seen[dj] = 1;
      if (j > 0) {
        EXPECT_LE(matrix.At(di, midx.At(di, j - 1)), matrix.At(di, dj));
      }
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
              static_cast<long>(n));
  }
}

TEST_P(BuildingPropertyTest, QueriesMatchOracle) {
  IndexFramework index(*plan_);
  Rng rng(GetParam().seed * 7 + 5);
  PopulateStore(GenerateObjects(*plan_, 150, &rng), &index.objects());
  const auto ctx = Ctx();
  for (int trial = 0; trial < 4; ++trial) {
    const Point q = RandomIndoorPosition(*plan_, &rng);
    const double r = rng.NextDouble(5, 40);
    EXPECT_EQ(RangeQuery(index, q, r),
              LinearScanRange(ctx, index.objects(), q, r));
    const size_t k = 1 + rng.NextIndex(20);
    const auto got = KnnQuery(index, q, k);
    const auto expect = LinearScanKnn(ctx, index.objects(), q, k);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expect[i].distance, 1e-6);
    }
  }
}

TEST_P(BuildingPropertyTest, RangeCountMonotonicInRadius) {
  IndexFramework index(*plan_);
  Rng rng(GetParam().seed * 7 + 6);
  PopulateStore(GenerateObjects(*plan_, 100, &rng), &index.objects());
  const Point q = RandomIndoorPosition(*plan_, &rng);
  size_t prev = 0;
  for (double r = 0; r <= 60; r += 10) {
    const size_t count = RangeQuery(index, q, r).size();
    EXPECT_GE(count, prev);
    prev = count;
  }
}

TEST_P(BuildingPropertyTest, KnnPrefixStability) {
  IndexFramework index(*plan_);
  Rng rng(GetParam().seed * 7 + 7);
  PopulateStore(GenerateObjects(*plan_, 120, &rng), &index.objects());
  const Point q = RandomIndoorPosition(*plan_, &rng);
  const auto k20 = KnnQuery(index, q, 20);
  for (size_t k : {1u, 5u, 10u}) {
    const auto smaller = KnnQuery(index, q, k);
    ASSERT_EQ(smaller.size(), std::min(k, k20.size()));
    for (size_t i = 0; i < smaller.size(); ++i) {
      EXPECT_NEAR(smaller[i].distance, k20[i].distance, 1e-9);
    }
  }
}

TEST_P(BuildingPropertyTest, IndexedQueriesAgreeWithAndWithoutMidx) {
  IndexFramework index(*plan_);
  Rng rng(GetParam().seed * 7 + 8);
  PopulateStore(GenerateObjects(*plan_, 120, &rng), &index.objects());
  for (int trial = 0; trial < 4; ++trial) {
    const Point q = RandomIndoorPosition(*plan_, &rng);
    EXPECT_EQ(RangeQuery(index, q, 25.0),
              RangeQuery(index, q, 25.0, {.use_index_matrix = false}));
    const auto with = KnnQuery(index, q, 10);
    const auto without = KnnQuery(index, q, 10, {.use_index_matrix = false});
    ASSERT_EQ(with.size(), without.size());
    for (size_t i = 0; i < with.size(); ++i) {
      EXPECT_NEAR(with[i].distance, without[i].distance, 1e-9);
    }
  }
}

TEST_P(BuildingPropertyTest, EuclideanLowerBoundsWalkingDistanceSameFloor) {
  // Euclidean distance lower-bounds walking distance only where the 2D
  // frame is the real geometry, i.e. within one floor. Across floors the
  // flattened frame inserts artificial horizontal separation while the
  // staircase walking length is what actually counts (DESIGN.md §2.7).
  Rng rng(GetParam().seed * 7 + 9);
  const auto ctx = Ctx();
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 10; ++trial) {
    const auto pair = GeneratePositionPairs(*plan_, 1, &rng)[0];
    const auto vs = locator_->GetHostPartition(pair.first);
    const auto vt = locator_->GetHostPartition(pair.second);
    if (!vs.ok() || !vt.ok()) continue;
    const Partition& ps_part = plan_->partition(vs.value());
    const Partition& pt_part = plan_->partition(vt.value());
    if (ps_part.floor() != pt_part.floor()) continue;
    // Staircase flights span two floor bands in the flattened frame and
    // carry scaled (shorter-than-drawn) metrics; exclude them as well.
    if (ps_part.kind() == PartitionKind::kStaircase ||
        pt_part.kind() == PartitionKind::kStaircase) {
      continue;
    }
    const double walk = Pt2PtDistanceVirtual(ctx, pair.first, pair.second);
    if (walk == kInfDistance) continue;
    EXPECT_LE(Distance(pair.first, pair.second), walk + 1e-6);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    GeneratedBuildings, BuildingPropertyTest,
    ::testing::Values(BuildingCase{1, 6, 1}, BuildingCase{2, 10, 2},
                      BuildingCase{3, 8, 3}, BuildingCase{4, 12, 4},
                      BuildingCase{2, 30, 5}, BuildingCase{5, 6, 6},
                      BuildingCase{2, 12, 7, /*room_to_room=*/0.7},
                      BuildingCase{3, 10, 8, /*room_to_room=*/0.6,
                                   /*one_way=*/0.5},
                      BuildingCase{2, 10, 9, /*room_to_room=*/0.0,
                                   /*one_way=*/0.0, /*obstacles=*/0.6},
                      BuildingCase{2, 8, 10, /*room_to_room=*/0.5,
                                   /*one_way=*/0.4, /*obstacles=*/0.5}),
    [](const ::testing::TestParamInfo<BuildingCase>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

}  // namespace
}  // namespace indoor
