// Randomized robustness suites: the parser must never crash on mutated
// input; the visibility graph must agree with an independent lattice
// approximation; generated plans of any shape must keep the core
// invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <queue>

#include "geometry/visibility_graph.h"
#include "indoor/floor_plan_io.h"
#include "indoor/sample_plans.h"
#include "util/random.h"

namespace indoor {
namespace {

// ----------------------------------------------------------- parser fuzzing

TEST(ParserFuzzTest, MutatedPlansNeverCrash) {
  const std::string base = SerializeFloorPlan(MakeRunningExamplePlan());
  Rng rng(2025);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.NextIndex(5));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextIndex(mutated.size());
      switch (rng.NextIndex(4)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(rng.NextInt(32, 126));
          break;
        case 1:  // delete a span
          mutated.erase(pos, rng.NextIndex(20) + 1);
          break;
        case 2:  // duplicate a span
          mutated.insert(pos, mutated.substr(
                                  pos, std::min<size_t>(
                                           rng.NextIndex(30) + 1,
                                           mutated.size() - pos)));
          break;
        case 3:  // truncate
          mutated.resize(pos);
          break;
      }
      if (mutated.empty()) break;
    }
    // Must return either a valid plan or a clean error; never abort.
    const auto result = ParseFloorPlan(mutated);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(2026);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    const size_t len = rng.NextIndex(500);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextInt(1, 255)));
    }
    (void)ParseFloorPlan(garbage);
  }
}

TEST(ParserFuzzTest, StructuredGarbageLines) {
  Rng rng(2027);
  const std::vector<std::string> keywords{"partition", "obstacle", "door",
                                          "conn"};
  for (int trial = 0; trial < 100; ++trial) {
    std::string text;
    const int lines = 1 + static_cast<int>(rng.NextIndex(10));
    for (int l = 0; l < lines; ++l) {
      text += keywords[rng.NextIndex(keywords.size())];
      const int tokens = static_cast<int>(rng.NextIndex(12));
      for (int t = 0; t < tokens; ++t) {
        switch (rng.NextIndex(3)) {
          case 0:
            text += " " + std::to_string(rng.NextInt(-100, 100));
            break;
          case 1:
            text += " " + std::to_string(rng.NextDouble(-50, 50));
            break;
          case 2:
            text += " x";
            break;
        }
      }
      text += "\n";
    }
    (void)ParseFloorPlan(text);
  }
}

// -------------------------------------------------- visibility vs a lattice

/// Approximates the obstructed distance with a fine 8-connected lattice:
/// lattice paths are valid walks, so their length upper-bounds the exact
/// obstructed distance; Euclidean distance lower-bounds it.
double LatticeDistance(const ObstructedRegion& region, const Point& a,
                       const Point& b, double step) {
  const Rect bbox = region.outer().BoundingBox();
  const int nx = static_cast<int>(bbox.Width() / step) + 1;
  const int ny = static_cast<int>(bbox.Height() / step) + 1;
  auto node = [&](const Point& p) {
    const int cx = std::clamp(
        static_cast<int>(std::lround((p.x - bbox.lo.x) / step)), 0, nx - 1);
    const int cy = std::clamp(
        static_cast<int>(std::lround((p.y - bbox.lo.y) / step)), 0, ny - 1);
    return cy * nx + cx;
  };
  auto point_of = [&](int id) {
    return Point(bbox.lo.x + (id % nx) * step,
                 bbox.lo.y + (id / nx) * step);
  };
  std::vector<double> dist(static_cast<size_t>(nx) * ny, kInfDistance);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  const int src = node(a), dst = node(b);
  dist[src] = 0;
  heap.push({0, src});
  const int dx[] = {1, -1, 0, 0, 1, 1, -1, -1};
  const int dy[] = {0, 0, 1, -1, 1, -1, 1, -1};
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    const Point pu = point_of(u);
    for (int k = 0; k < 8; ++k) {
      const int cx = u % nx + dx[k];
      const int cy = u / nx + dy[k];
      if (cx < 0 || cx >= nx || cy < 0 || cy >= ny) continue;
      const int v = cy * nx + cx;
      const Point pv = point_of(v);
      if (!region.Visible(pu, pv)) continue;
      const double w = Distance(pu, pv);
      if (d + w < dist[v]) {
        dist[v] = d + w;
        heap.push({dist[v], v});
      }
    }
  }
  if (dist[dst] == kInfDistance) return kInfDistance;
  // Connect endpoints to their lattice nodes.
  return dist[dst] + Distance(a, point_of(src)) +
         Distance(b, point_of(dst));
}

TEST(VisibilityFuzzTest, ExactDistanceBracketedByLatticeAndEuclid) {
  Rng rng(303);
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    // Room with up to 3 random non-overlapping rectangular obstacles.
    std::vector<Polygon> obstacles;
    std::vector<Rect> rects;
    for (int o = 0; o < 3; ++o) {
      const double x = rng.NextDouble(1, 7);
      const double y = rng.NextDouble(1, 7);
      const Rect r(x, y, x + rng.NextDouble(0.5, 2.5),
                   y + rng.NextDouble(0.5, 2.5));
      bool overlaps = false;
      for (const Rect& other : rects) {
        if (r.Intersects(other)) overlaps = true;
      }
      if (overlaps) continue;
      rects.push_back(r);
      obstacles.push_back(Polygon::FromRect(r));
    }
    auto region = ObstructedRegion::Create(
        Polygon::FromRect(Rect(0, 0, 10, 10)), std::move(obstacles));
    ASSERT_TRUE(region.ok());

    // Random free endpoints.
    Point a, b;
    do {
      a = Point(rng.NextDouble(0, 10), rng.NextDouble(0, 10));
    } while (!region.value().Contains(a));
    do {
      b = Point(rng.NextDouble(0, 10), rng.NextDouble(0, 10));
    } while (!region.value().Contains(b));

    const double exact = region.value().Distance(a, b);
    if (exact == kInfDistance) continue;
    const double lattice = LatticeDistance(region.value(), a, b, 0.25);
    EXPECT_GE(exact, Distance(a, b) - 1e-9) << "below Euclid at " << trial;
    if (lattice != kInfDistance) {
      EXPECT_LE(exact, lattice + 1e-9)
          << "exact exceeds a realizable lattice walk at trial " << trial;
      // The lattice overshoots by at most ~8% (8-connectivity) plus
      // endpoint snapping.
      EXPECT_GE(lattice, exact * 0.99 - 1.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(VisibilityFuzzTest, PathLengthAlwaysMatchesDistance) {
  Rng rng(307);
  for (int trial = 0; trial < 40; ++trial) {
    const double x = rng.NextDouble(1, 6);
    const double y = rng.NextDouble(1, 6);
    auto region = ObstructedRegion::Create(
        Polygon::FromRect(Rect(0, 0, 10, 10)),
        {Polygon::FromRect(
            Rect(x, y, x + rng.NextDouble(1, 3), y + rng.NextDouble(1, 3)))});
    ASSERT_TRUE(region.ok());
    Point a, b;
    do {
      a = Point(rng.NextDouble(0, 10), rng.NextDouble(0, 10));
    } while (!region.value().Contains(a));
    do {
      b = Point(rng.NextDouble(0, 10), rng.NextDouble(0, 10));
    } while (!region.value().Contains(b));
    const double d = region.value().Distance(a, b);
    const auto path = region.value().ShortestPath(a, b);
    ASSERT_FALSE(path.empty());
    double len = 0;
    for (size_t i = 1; i < path.size(); ++i) {
      len += Distance(path[i - 1], path[i]);
      // Every leg of the reported path must be walkable.
      EXPECT_TRUE(region.value().Visible(path[i - 1], path[i]));
    }
    EXPECT_NEAR(len, d, 1e-9);
  }
}

}  // namespace
}  // namespace indoor
