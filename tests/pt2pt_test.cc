// Position-to-position distances: Algorithms 2, 3, 4 (both reuse policies)
// and the virtual-source extension, validated against hand-computed values
// and against each other.

#include "core/distance/pt2pt_distance.h"

#include <gtest/gtest.h>

#include "gen/building_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class Pt2PtTest : public ::testing::Test {
 protected:
  Pt2PtTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        graph_(plan_),
        locator_(plan_),
        ctx_(graph_, locator_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
  PartitionLocator locator_;
  DistanceContext ctx_;
};

TEST_F(Pt2PtTest, PaperIntroExampleTakesTheTwoDoorPath) {
  // p in room 13, q in the hallway: the shortest path runs p -> d15 -> d12
  // -> q (two doors), NOT through the nearer-sounding single door d13
  // (paper §I).
  const Point p(11, 1), q(4.5, 4.5);
  const double expected = 3.0 + std::sqrt(18.0) + std::sqrt(0.5);
  EXPECT_NEAR(Pt2PtDistanceBasic(ctx_, p, q), expected, 1e-9);
  // The d13 alternative is strictly longer.
  const double via_d13 = std::sqrt(10.0) + 0.0 + std::sqrt(30.5);
  EXPECT_LT(expected, via_d13);
}

TEST_F(Pt2PtTest, AllVariantsAgreeOnTheIntroExample) {
  const Point p(11, 1), q(4.5, 4.5);
  const double basic = Pt2PtDistanceBasic(ctx_, p, q);
  EXPECT_NEAR(Pt2PtDistanceRefined(ctx_, p, q), basic, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceReuse(ctx_, p, q, ReusePolicy::kSafe), basic,
              1e-9);
  EXPECT_NEAR(Pt2PtDistanceVirtual(ctx_, p, q), basic, 1e-9);
}

TEST_F(Pt2PtTest, SamePartitionDirectDistance) {
  const Point p(1, 1), q(3, 3);
  const double expected = std::sqrt(8.0);
  EXPECT_NEAR(Pt2PtDistanceBasic(ctx_, p, q), expected, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceRefined(ctx_, p, q), expected, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceReuse(ctx_, p, q), expected, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceVirtual(ctx_, p, q), expected, 1e-9);
}

TEST_F(Pt2PtTest, OneWayDoorsMakeDistanceAsymmetric) {
  const Point p(11, 1);  // room 13
  const Point q(6, 2);   // room 12
  const double forward = Pt2PtDistanceBasic(ctx_, p, q);
  const double backward = Pt2PtDistanceBasic(ctx_, q, p);
  // Forward uses d15 directly; backward must exit via d12 and re-enter via
  // d13.
  EXPECT_NEAR(forward, 3.0 + std::sqrt(5.0), 1e-9);
  EXPECT_NEAR(backward, std::sqrt(5.0) + 5.0 + std::sqrt(10.0), 1e-9);
  EXPECT_GT(backward, forward);
}

TEST_F(Pt2PtTest, CrossFloorDistanceThroughStaircase) {
  const Point p(6, 5);      // floor-1 hallway
  const Point q(30, 7);     // room v21 on floor 2
  const double d = Pt2PtDistanceBasic(ctx_, p, q);
  ASSERT_NE(d, kInfDistance);
  // Must include the 10 m staircase walking length plus both hallway legs.
  EXPECT_GT(d, 10.0);
  EXPECT_NEAR(Pt2PtDistanceRefined(ctx_, p, q), d, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceReuse(ctx_, p, q), d, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceVirtual(ctx_, p, q), d, 1e-9);
}

TEST_F(Pt2PtTest, NotIndoorsReturnsInfinity) {
  EXPECT_EQ(Pt2PtDistanceBasic(ctx_, {1000, 1000}, {1, 1}), kInfDistance);
  EXPECT_EQ(Pt2PtDistanceRefined(ctx_, {1000, 1000}, {1, 1}), kInfDistance);
  EXPECT_EQ(Pt2PtDistanceReuse(ctx_, {1, 1}, {1000, 1000}), kInfDistance);
  EXPECT_EQ(Pt2PtDistanceVirtual(ctx_, {1000, 1000}, {1, 1}),
            kInfDistance);
}

TEST_F(Pt2PtTest, ZeroDistanceForIdenticalPositions) {
  EXPECT_NEAR(Pt2PtDistanceBasic(ctx_, {2, 2}, {2, 2}), 0.0, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceReuse(ctx_, {2, 2}, {2, 2}), 0.0, 1e-9);
}

TEST(Pt2PtObstacleTest, LeavingAndReenteringBeatsTheIntraDetour) {
  // Paper Fig. 5: the shortest p -> q path leaves room 2 through d7,
  // crosses room 1, and returns through d8.
  ObstacleExampleIds ids;
  const FloorPlan plan = MakeObstacleExamplePlan(&ids);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  const double d = Pt2PtDistanceBasic(ctx, ids.p, ids.q);
  EXPECT_NEAR(d, 12.0, 1e-9);  // 0.5 + 11 + 0.5
  const double intra = plan.partition(ids.room2).IntraDistance(ids.p, ids.q);
  EXPECT_LT(d, intra);
  // Every variant handles the host-partition re-entry.
  EXPECT_NEAR(Pt2PtDistanceRefined(ctx, ids.p, ids.q), d, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceReuse(ctx, ids.p, ids.q), d, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceVirtual(ctx, ids.p, ids.q), d, 1e-9);
}

TEST(Pt2PtGeneratedTest, AllVariantsAgreeOnGeneratedBuildings) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 10;
  config.seed = 7;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  Rng rng(99);
  const auto pairs = GeneratePositionPairs(plan, 40, &rng);
  for (const auto& [p, q] : pairs) {
    const double basic = Pt2PtDistanceBasic(ctx, p, q);
    EXPECT_NEAR(Pt2PtDistanceRefined(ctx, p, q), basic, 1e-6)
        << "refined mismatch at " << p << " -> " << q;
    EXPECT_NEAR(Pt2PtDistanceReuse(ctx, p, q, ReusePolicy::kSafe), basic,
                1e-6)
        << "reuse(kSafe) mismatch at " << p << " -> " << q;
    EXPECT_NEAR(Pt2PtDistanceVirtual(ctx, p, q), basic, 1e-6)
        << "virtual mismatch at " << p << " -> " << q;
  }
}

TEST(Pt2PtGeneratedTest, PaperFaithfulReuseNeverUnderestimates) {
  // The kPaperFaithful forward break can overestimate but must never
  // return less than the true distance (all its candidates are real paths).
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 8;
  config.seed = 21;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  Rng rng(5);
  const auto pairs = GeneratePositionPairs(plan, 30, &rng);
  for (const auto& [p, q] : pairs) {
    const double exact = Pt2PtDistanceBasic(ctx, p, q);
    const double faithful =
        Pt2PtDistanceReuse(ctx, p, q, ReusePolicy::kPaperFaithful);
    EXPECT_GE(faithful, exact - 1e-6);
  }
}

TEST_F(Pt2PtTest, SymmetricWhenNoDirectionalDoorsInvolved) {
  // Both endpoints on floor 2 (no one-way doors there).
  const Point p(21, 1), q(22, 10);
  EXPECT_NEAR(Pt2PtDistanceBasic(ctx_, p, q),
              Pt2PtDistanceBasic(ctx_, q, p), 1e-9);
}

TEST_F(Pt2PtTest, DeadEndPruningKeepsResultExact) {
  // v11 has a single door; starting there exercises the pruning path.
  const Point p(1, 1);    // room 11 (single-door room)
  const Point q(30, 7);   // floor-2 room
  const double basic = Pt2PtDistanceBasic(ctx_, p, q);
  EXPECT_NEAR(Pt2PtDistanceRefined(ctx_, p, q), basic, 1e-9);
  EXPECT_NEAR(Pt2PtDistanceReuse(ctx_, p, q), basic, 1e-9);
}

}  // namespace
}  // namespace indoor
