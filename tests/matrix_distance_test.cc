#include "core/distance/matrix_distance.h"

#include <gtest/gtest.h>

#include "core/index/index_framework.h"
#include "gen/building_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class MatrixDistanceTest : public ::testing::Test {
 protected:
  MatrixDistanceTest()
      : plan_(MakeRunningExamplePlan(&ids_)), index_(plan_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
};

TEST_F(MatrixDistanceTest, MatchesAlgorithm2OnTheIntroExample) {
  const Point p(11, 1), q(4.5, 4.5);
  const double expected = 3.0 + std::sqrt(18.0) + std::sqrt(0.5);
  EXPECT_NEAR(
      Pt2PtDistanceMatrix(index_.locator(), index_.d2d_matrix(), p, q),
      expected, 1e-9);
}

TEST_F(MatrixDistanceTest, SamePartitionDirect) {
  EXPECT_NEAR(Pt2PtDistanceMatrix(index_.locator(), index_.d2d_matrix(),
                                  {1, 1}, {3, 3}),
              std::sqrt(8.0), 1e-9);
}

TEST_F(MatrixDistanceTest, KnownHostVariantAgrees) {
  const Point p(11, 1), q(4.5, 4.5);
  EXPECT_NEAR(Pt2PtDistanceMatrix(plan_, index_.d2d_matrix(), ids_.v13, p,
                                  ids_.v10, q),
              Pt2PtDistanceMatrix(index_.locator(), index_.d2d_matrix(), p,
                                  q),
              1e-12);
}

TEST_F(MatrixDistanceTest, OutsidePositionsAreInfinite) {
  EXPECT_EQ(Pt2PtDistanceMatrix(index_.locator(), index_.d2d_matrix(),
                                {1000, 1000}, {1, 1}),
            kInfDistance);
}

TEST_F(MatrixDistanceTest, AsymmetryPreserved) {
  const Point p(11, 1), q(6, 2);
  const auto& locator = index_.locator();
  const auto& md2d = index_.d2d_matrix();
  EXPECT_NEAR(Pt2PtDistanceMatrix(locator, md2d, p, q),
              3.0 + std::sqrt(5.0), 1e-9);
  EXPECT_NEAR(Pt2PtDistanceMatrix(locator, md2d, q, p),
              std::sqrt(5.0) + 5.0 + std::sqrt(10.0), 1e-9);
}

TEST(MatrixDistanceGeneratedTest, AgreesWithAlgorithm2Everywhere) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.5;
  config.one_way_fraction = 0.4;
  config.seed = 163;
  FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  const DistanceContext ctx = index.distance_context();
  Rng rng(167);
  for (const auto& [p, q] : GeneratePositionPairs(plan, 40, &rng)) {
    EXPECT_NEAR(
        Pt2PtDistanceMatrix(index.locator(), index.d2d_matrix(), p, q),
        Pt2PtDistanceBasic(ctx, p, q), 1e-6)
        << p << " -> " << q;
  }
}

}  // namespace
}  // namespace indoor
