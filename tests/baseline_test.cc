// Baselines: the door-count model must reproduce the paper's §I failure
// mode; the doors-as-nodes (iNav) model must exhibit the directionality
// blindness the paper criticizes (§III-C2); the linear-scan oracle must be
// internally consistent.

#include <gtest/gtest.h>

#include "baseline/door_count_model.h"
#include "baseline/doors_as_nodes.h"
#include "baseline/euclidean.h"
#include "baseline/linear_scan.h"
#include "gen/object_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest()
      : plan_(MakeRunningExamplePlan(&ids_)),
        graph_(plan_),
        locator_(plan_),
        ctx_(graph_, locator_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
  PartitionLocator locator_;
  DistanceContext ctx_;
};

TEST_F(BaselineTest, DoorCountModelPicksTheLongerOneDoorPath) {
  // Paper §I: from p (room 13) to q (hallway), the door-count model [11]
  // takes the single-door path through d13 even though walking through
  // d15 + d12 is shorter.
  const Point p(11, 1), q(4.5, 4.5);
  const DoorCountPath chosen = DoorCountShortestPath(ctx_, p, q);
  ASSERT_TRUE(chosen.found());
  EXPECT_EQ(chosen.door_count, 1u);
  EXPECT_EQ(chosen.doors, std::vector<DoorId>{ids_.d13});
  const double true_walk = Pt2PtDistanceBasic(ctx_, p, q);
  EXPECT_GT(chosen.walking_length, true_walk + 1e-9);
}

TEST_F(BaselineTest, DoorCountZeroForSamePartition) {
  const DoorCountPath path = DoorCountShortestPath(ctx_, {1, 1}, {3, 3});
  EXPECT_EQ(path.door_count, 0u);
  EXPECT_NEAR(path.walking_length, std::sqrt(8.0), 1e-9);
}

TEST_F(BaselineTest, DoorCountBreaksTiesByWalkingLength) {
  // v20 -> v21 has two single-door routes (d21, d24); the charitable
  // baseline picks the shorter walk.
  const Point p(27, 1), q(29, 1);
  const DoorCountPath path = DoorCountShortestPath(ctx_, p, q);
  EXPECT_EQ(path.door_count, 1u);
  EXPECT_EQ(path.doors, std::vector<DoorId>{ids_.d21});
}

TEST_F(BaselineTest, DoorCountWalkingLengthNeverBelowTrueDistance) {
  Rng rng(53);
  for (int i = 0; i < 20; ++i) {
    const Point p = RandomPointInPartition(
        plan_.partition(RandomIndoorPartition(plan_, &rng)), &rng);
    const Point q = RandomPointInPartition(
        plan_.partition(RandomIndoorPartition(plan_, &rng)), &rng);
    const DoorCountPath path = DoorCountShortestPath(ctx_, p, q);
    const double true_walk = Pt2PtDistanceBasic(ctx_, p, q);
    if (path.found() && true_walk != kInfDistance) {
      EXPECT_GE(path.walking_length, true_walk - 1e-6);
    }
  }
}

TEST_F(BaselineTest, INavIgnoresDoorDirectionality) {
  const DoorsAsNodesGraph inav(graph_);
  // True model: hallway -> room 12 must detour through room 13 (d12 is
  // one-way out of v12). iNav walks straight "through" d12.
  const Point q(5, 4.5);   // hallway, right at d12
  const Point o(6, 2);     // room 12
  const double truth = Pt2PtDistanceBasic(ctx_, q, o);
  const double inav_dist = inav.Pt2PtDistance(locator_, q, o);
  EXPECT_LT(inav_dist, truth - 1e-6);  // underestimates: path not walkable
}

TEST_F(BaselineTest, INavMatchesTruthWhereAllDoorsAreBidirectional) {
  const DoorsAsNodesGraph inav(graph_);
  const Point p(21, 1), q(22, 10);  // floor 2: all doors bidirectional
  EXPECT_NEAR(inav.Pt2PtDistance(locator_, p, q),
              Pt2PtDistanceBasic(ctx_, p, q), 1e-9);
}

TEST_F(BaselineTest, INavDoorDistanceSymmetric) {
  const DoorsAsNodesGraph inav(graph_);
  EXPECT_NEAR(inav.DoorDistance(ids_.d12, ids_.d13),
              inav.DoorDistance(ids_.d13, ids_.d12), 1e-9);
}

TEST_F(BaselineTest, EuclideanUnderestimatesIndoorDistance) {
  Rng rng(59);
  for (int i = 0; i < 20; ++i) {
    const Point p = RandomPointInPartition(
        plan_.partition(RandomIndoorPartition(plan_, &rng)), &rng);
    const Point q = RandomPointInPartition(
        plan_.partition(RandomIndoorPartition(plan_, &rng)), &rng);
    const double walk = Pt2PtDistanceBasic(ctx_, p, q);
    if (walk == kInfDistance) continue;
    EXPECT_LE(EuclideanBaselineDistance(p, q), walk + 1e-6);
  }
}

TEST_F(BaselineTest, AllObjectDistancesMatchPairwiseComputation) {
  ObjectStore store(plan_, 2.0);
  Rng rng(61);
  PopulateStore(GenerateObjects(plan_, 25, &rng), &store);
  const Point q(6, 5);
  const auto distances = AllObjectDistances(ctx_, store, q);
  ASSERT_EQ(distances.size(), store.size());
  for (const IndoorObject& obj : store.objects()) {
    EXPECT_NEAR(distances[obj.id],
                Pt2PtDistanceBasic(ctx_, q, obj.position), 1e-6)
        << "object " << obj.id;
  }
}

TEST_F(BaselineTest, LinearScanRangeAndKnnConsistent) {
  ObjectStore store(plan_, 2.0);
  Rng rng(67);
  PopulateStore(GenerateObjects(plan_, 30, &rng), &store);
  const Point q(6, 5);
  const auto knn = LinearScanKnn(ctx_, store, q, 10);
  ASSERT_EQ(knn.size(), 10u);
  // Range at the 10th distance returns at least those 10 objects.
  const auto range = LinearScanRange(ctx_, store, q, knn.back().distance);
  EXPECT_GE(range.size(), 10u);
}

}  // namespace
}  // namespace indoor
