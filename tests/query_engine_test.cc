#include "core/query/query_engine.h"

#include <gtest/gtest.h>

#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : engine_(MakeRunningExamplePlan(&ids_)) {}

  RunningExampleIds ids_;
  QueryEngine engine_;
};

TEST_F(QueryEngineTest, OwnsThePlan) {
  EXPECT_EQ(engine_.plan().partition_count(), 11u);
  EXPECT_EQ(engine_.plan().door_count(), 12u);
}

TEST_F(QueryEngineTest, AddAndLocateObjects) {
  const auto id = engine_.AddObject(ids_.v11, {1, 1});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine_.index().objects().object(id.value()).partition,
            ids_.v11);
}

TEST_F(QueryEngineTest, DistanceMatchesAlgorithms) {
  const Point p(11, 1), q(4.5, 4.5);
  EXPECT_NEAR(engine_.Distance(p, q), 3.0 + std::sqrt(18.0) + std::sqrt(0.5),
              1e-9);
}

TEST_F(QueryEngineTest, DoorDistanceReadsTheMatrix) {
  EXPECT_NEAR(engine_.DoorDistance(ids_.d12, ids_.d13), 5.0, 1e-9);
}

TEST_F(QueryEngineTest, ShortestPathEndsAtQuery) {
  const auto path = engine_.ShortestPath({11, 1}, {4.5, 4.5});
  ASSERT_TRUE(path.found());
  EXPECT_EQ(path.waypoints.front(), Point(11, 1));
  EXPECT_EQ(path.waypoints.back(), Point(4.5, 4.5));
}

TEST_F(QueryEngineTest, RangeAndNearestWork) {
  ASSERT_TRUE(engine_.AddObject(ids_.v11, {1.5, 1.5}).ok());
  ASSERT_TRUE(engine_.AddObject(ids_.v13, {9, 2}).ok());
  const auto range = engine_.Range({1, 1}, 2.0);
  EXPECT_EQ(range.size(), 1u);
  const auto nearest = engine_.Nearest({1, 1}, 2);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_LE(nearest[0].distance, nearest[1].distance);
}

TEST_F(QueryEngineTest, MoveObjectChangesQueryResults) {
  const ObjectId id = engine_.AddObject(ids_.v11, {1, 1}).value();
  EXPECT_EQ(engine_.Range({1, 1}, 1.0).size(), 1u);
  ASSERT_TRUE(engine_.MoveObject(id, ids_.v13, {9, 2}).ok());
  EXPECT_TRUE(engine_.Range({1, 1}, 1.0).empty());
}

TEST_F(QueryEngineTest, LocateDelegatesToLocator) {
  const auto host = engine_.Locate({2, 2});
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host.value(), ids_.v11);
}

TEST_F(QueryEngineTest, IndexMemoryAccountingIsPositive) {
  EXPECT_GT(engine_.index().IndexMemoryBytes(), 0u);
}

TEST_F(QueryEngineTest, EngineIsMovable) {
  QueryEngine moved = std::move(engine_);
  EXPECT_EQ(moved.plan().door_count(), 12u);
  EXPECT_NEAR(moved.DoorDistance(ids_.d12, ids_.d13), 5.0, 1e-9);
}

}  // namespace
}  // namespace indoor
