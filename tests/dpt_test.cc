// The Door-to-Partition Table (paper §IV-B).

#include "core/index/dpt.h"

#include <gtest/gtest.h>

#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class DptTest : public ::testing::Test {
 protected:
  DptTest()
      : plan_(MakeRunningExamplePlan(&ids_)), graph_(plan_), dpt_(graph_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  DistanceGraph graph_;
  DoorPartitionTable dpt_;
};

TEST_F(DptTest, OneRecordPerDoorIndexedById) {
  ASSERT_EQ(dpt_.size(), plan_.door_count());
  for (DoorId d = 0; d < plan_.door_count(); ++d) {
    EXPECT_EQ(dpt_[d].door, d);
  }
}

TEST_F(DptTest, UnidirectionalDoorHasNullFirstPointer) {
  // Paper example: d15's DPT entry is (d15, null, inf, vPtr2, fdv) with
  // vPtr2 pointing to the enterable partition's bucket.
  const DptRecord& rec = dpt_[ids_.d15];
  EXPECT_EQ(rec.part1, kInvalidId);
  EXPECT_EQ(rec.dist1, kInfDistance);
  EXPECT_EQ(rec.part2, ids_.v12);
  EXPECT_NEAR(rec.dist2, graph_.Fdv(ids_.d15, ids_.v12), 1e-12);
}

TEST_F(DptTest, BidirectionalDoorLinksBothPartitionsOrdered) {
  const DptRecord& rec = dpt_[ids_.d11];
  // part1 < part2 by construction.
  EXPECT_EQ(rec.part1, std::min(ids_.v11, ids_.v10));
  EXPECT_EQ(rec.part2, std::max(ids_.v11, ids_.v10));
  EXPECT_NEAR(rec.dist1, graph_.Fdv(ids_.d11, rec.part1), 1e-12);
  EXPECT_NEAR(rec.dist2, graph_.Fdv(ids_.d11, rec.part2), 1e-12);
}

TEST_F(DptTest, FdvValuesAreFiniteForEnterableSides) {
  for (DoorId d = 0; d < plan_.door_count(); ++d) {
    const DptRecord& rec = dpt_[d];
    if (rec.part1 != kInvalidId) {
      EXPECT_NE(rec.dist1, kInfDistance);
      EXPECT_GT(rec.dist1, 0.0);
    }
    ASSERT_NE(rec.part2, kInvalidId);  // every door enters something
    EXPECT_NE(rec.dist2, kInfDistance);
  }
}

TEST_F(DptTest, MemoryAccountingMatchesRecordSize) {
  EXPECT_EQ(dpt_.MemoryBytes(), dpt_.size() * sizeof(DptRecord));
}

TEST_F(DptTest, D12EntersOnlyTheHallway) {
  const DptRecord& rec = dpt_[ids_.d12];
  EXPECT_EQ(rec.part1, kInvalidId);
  EXPECT_EQ(rec.part2, ids_.v10);
}

}  // namespace
}  // namespace indoor
