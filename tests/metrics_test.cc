// The observability layer: counters, gauges, histograms, the registry,
// trace spans, and the query-path wiring (docs/METRICS.md).

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/distance/pt2pt_distance.h"
#include "core/distance/query_scratch.h"
#include "core/index/index_framework.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace metrics {
namespace {

// --------------------------------------------------------------- instruments

TEST(CounterTest, AddAndIncrementAreExact) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.Value(), -1.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds {0}; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}),
            Histogram::kNumBuckets - 1);
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    // Every bucket's bounds round-trip through BucketIndex.
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i) - 1), i);
  }
}

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  h.Record(0);
  h.Record(7);
  h.Record(100);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 107u);
  EXPECT_EQ(h.Max(), 100u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(0)), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(7)), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(100)), 1u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

HistogramSnapshot Snap(const Histogram& h, const std::string& name = "h") {
  HistogramSnapshot s;
  s.name = name;
  s.count = h.Count();
  s.sum = h.Sum();
  s.max = h.Max();
  s.buckets.resize(Histogram::kNumBuckets);
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    s.buckets[i] = h.BucketCount(i);
  }
  return s;
}

TEST(HistogramTest, PercentilesOfKnownDistribution) {
  // 1000 samples uniform over [0, 1000): any quantile must land within
  // one power-of-two bucket of the true value.
  Histogram h;
  for (uint64_t v = 0; v < 1000; ++v) h.Record(v);
  const HistogramSnapshot s = Snap(h);
  EXPECT_NEAR(s.Mean(), 499.5, 0.001);
  const double p50 = s.Percentile(0.50);
  const double p95 = s.Percentile(0.95);
  const double p99 = s.Percentile(0.99);
  // True p50 = 500, inside bucket [256, 512); p95 = 950 and p99 = 990,
  // both inside [512, 1024).
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_GE(p95, 512.0);
  EXPECT_LE(p95, 1024.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p100 walks off the end and reports the exact max.
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 999.0);
}

TEST(HistogramTest, PercentileOfConstantStream) {
  // All samples equal: every quantile resolves into the one hot bucket.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(6);
  const HistogramSnapshot s = Snap(h);
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_GE(s.Percentile(q), 4.0) << "q=" << q;
    EXPECT_LE(s.Percentile(q), 8.0) << "q=" << q;
  }
  EXPECT_EQ(s.max, 6u);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  const HistogramSnapshot s = Snap(Histogram{});
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t expected = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.Count(), expected);
  EXPECT_EQ(h.Max(), expected - 1);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, expected);
}

// ------------------------------------------------------------------ registry

TEST(RegistryTest, SameNameSameInstrument) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& a = reg.GetCounter("test.registry.identity");
  Counter& b = reg.GetCounter("test.registry.identity");
  EXPECT_EQ(&a, &b);
  Histogram& ha = reg.GetHistogram("test.registry.identity");  // own space
  Histogram& hb = reg.GetHistogram("test.registry.identity");
  EXPECT_EQ(&ha, &hb);
}

TEST(RegistryTest, SnapshotSeesRecordedValues) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snapshot.counter").Add(5);
  reg.GetGauge("test.snapshot.gauge").Set(2.5);
  reg.GetHistogram("test.snapshot.hist").Record(33);
  const RegistrySnapshot snap = reg.Snapshot();

  bool found_counter = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.snapshot.counter") {
      EXPECT_GE(value, 5u);
      found_counter = true;
    }
  }
  EXPECT_TRUE(found_counter);

  bool found_gauge = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.snapshot.gauge") {
      EXPECT_DOUBLE_EQ(value, 2.5);
      found_gauge = true;
    }
  }
  EXPECT_TRUE(found_gauge);

  bool found_hist = false;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.name == "test.snapshot.hist") {
      EXPECT_GE(h.count, 1u);
      found_hist = true;
    }
  }
  EXPECT_TRUE(found_hist);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.sort.b");
  reg.GetCounter("test.sort.a");
  const RegistrySnapshot snap = reg.Snapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST(RegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        // Same names from every thread: registration races must resolve
        // to one shared instrument per name.
        reg.GetCounter("test.concurrent.counter").Increment();
        reg.GetHistogram("test.concurrent.hist").Record(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("test.concurrent.counter").Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.GetHistogram("test.concurrent.hist").Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, ToJsonContainsInstruments) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.counter").Add(3);
  reg.GetHistogram("test.json.hist").Record(9);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

TEST(RegistryTest, ToJsonEscapesInstrumentNames) {
  // Operator-supplied label strings can carry anything; the serializer
  // must keep the document valid.
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string hostile = "test.json.\"quoted\\name\"\n";
  reg.GetHistogram(hostile).Record(1);
  reg.GetCounter(hostile).Add(1);
  const std::string json = reg.Snapshot().ToJson();
  // The raw name must not appear unescaped...
  EXPECT_EQ(json.find(hostile), std::string::npos);
  // ...its escaped form must.
  EXPECT_NE(json.find("test.json.\\\"quoted\\\\name\\\"\\n"),
            std::string::npos);
}

TEST(EscapeTest, AppendJsonEscapedCoversSpecials) {
  std::string out;
  AppendJsonEscaped(&out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
}

// ------------------------------------------------------ tail stats + deltas

TEST(HistogramSnapshotTest, P999AndMaxTrackTheTail) {
  Histogram h;
  for (int i = 0; i < 995; ++i) h.Record(10);
  for (int i = 0; i < 5; ++i) h.Record(1000000);
  HistogramSnapshot snap;
  snap.count = h.Count();
  snap.sum = h.Sum();
  snap.max = h.Max();
  snap.buckets.resize(Histogram::kNumBuckets);
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    snap.buckets[i] = h.BucketCount(i);
  }
  EXPECT_EQ(snap.max, 1000000u);
  // p99 sits in the bulk, p99.9 reaches into the outlier's bucket.
  EXPECT_LT(snap.Percentile(0.99), 100.0);
  EXPECT_GT(snap.P999(), 100.0);
  EXPECT_LE(snap.P999(), static_cast<double>(snap.max));
}

TEST(HistogramSnapshotTest, DeltaSinceSubtractsBucketwise) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram& h = reg.GetHistogram("test.delta.hist");
  h.Record(10);
  h.Record(10);
  const RegistrySnapshot before = reg.Snapshot();
  h.Record(1000);
  const RegistrySnapshot after = reg.Snapshot();
  const RegistrySnapshot delta = after.DeltaSince(before);
  const HistogramSnapshot* dh = nullptr;
  for (const auto& hist : delta.histograms) {
    if (hist.name == "test.delta.hist") dh = &hist;
  }
  ASSERT_NE(dh, nullptr);
  // Only the interval's one sample remains, so interval percentiles are
  // driven by it — not by the lifetime bulk at 10.
  EXPECT_EQ(dh->count, 1u);
  EXPECT_GT(dh->Percentile(0.5), 100.0);
}

TEST(RegistrySnapshotTest, DeltaSinceSubtractsCounters) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test.delta.counter");
  c.Add(5);
  const RegistrySnapshot before = reg.Snapshot();
  c.Add(7);
  const RegistrySnapshot delta = reg.Snapshot().DeltaSince(before);
  uint64_t value = 0;
  bool found = false;
  for (const auto& [name, v] : delta.counters) {
    if (name == "test.delta.counter") {
      value = v;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_EQ(value, 7u);
}

TEST(HistogramSnapshotTest, DeltaAfterResetReportsEverythingSinceRestart) {
  // The Prometheus rate() rule: a reading below the previous snapshot
  // means the instrument restarted, and the interval's truth is the
  // current value — not a silent all-zero delta that would hide every
  // query the interval actually served.
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(100);
  const HistogramSnapshot before = Snap(h);
  h.Reset();
  h.Record(7);
  h.Record(9);
  const HistogramSnapshot delta = Snap(h).DeltaSince(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 16u);
  EXPECT_GT(delta.Percentile(0.5), 0.0);
  EXPECT_LE(delta.Percentile(0.99), 16.0);
}

TEST(HistogramSnapshotTest, EmptyIntervalPercentileIsZero) {
  // A delta over an idle interval has count 0 even though the lifetime
  // snapshot carries a max; percentiles must report 0, not the stale max.
  Histogram h;
  h.Record(1000000);
  const HistogramSnapshot before = Snap(h);
  const HistogramSnapshot delta = Snap(h).DeltaSince(before);
  EXPECT_EQ(delta.count, 0u);
  EXPECT_DOUBLE_EQ(delta.Percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(delta.Mean(), 0.0);
}

TEST(RegistrySnapshotTest, CounterResetReportsCurrentValue) {
  // Counter wraparound / ResetAll between snapshots: current < previous
  // must yield the current reading (everything since the restart), never
  // a wrapped negative masquerading as a huge unsigned delta or a zero.
  RegistrySnapshot before;
  before.counters = {{"test.wrap", 1000}};
  RegistrySnapshot after;
  after.counters = {{"test.wrap", 12}};
  const RegistrySnapshot delta = after.DeltaSince(before);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].second, 12u);
}

TEST(HistogramSnapshotTest, CountBelowInterpolatesWithinBuckets) {
  Histogram h;
  h.Record(0);
  for (int i = 0; i < 10; ++i) h.Record(6);  // bucket [4, 8)
  h.Record(1000);
  const HistogramSnapshot s = Snap(h);
  // Everything at or below the max counts fully.
  EXPECT_DOUBLE_EQ(s.CountBelow(1000.0), 12.0);
  EXPECT_DOUBLE_EQ(s.CountBelow(1e12), 12.0);
  // Zero catches exactly bucket 0.
  EXPECT_DOUBLE_EQ(s.CountBelow(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.CountBelow(-1.0), 0.0);
  // A threshold inside [4, 8) takes a linear fraction of that bucket.
  const double mid = s.CountBelow(6.0);
  EXPECT_GT(mid, 1.0);
  EXPECT_LT(mid, 11.0);
  // Above the bucket, all 11 of {0, 6 x10} are below.
  EXPECT_DOUBLE_EQ(s.CountBelow(8.0), 11.0);
  // Monotone in the threshold.
  EXPECT_LE(s.CountBelow(4.0), s.CountBelow(5.0));
  EXPECT_LE(s.CountBelow(5.0), s.CountBelow(8.0));
}

// --------------------------------------------------------------- trace spans

TEST(TraceTest, SpansRecordIntoActiveTrace) {
  QueryTrace trace;
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
  }
  ASSERT_EQ(trace.events().size(), 2u);
  // Inner spans complete (and are appended) first.
  EXPECT_STREQ(trace.events()[0].name, "inner");
  EXPECT_EQ(trace.events()[0].depth, 1);
  EXPECT_STREQ(trace.events()[1].name, "outer");
  EXPECT_EQ(trace.events()[1].depth, 0);
  EXPECT_LE(trace.events()[1].start_ns, trace.events()[0].start_ns);
  EXPECT_GE(trace.events()[1].duration_ns, trace.events()[0].duration_ns);
}

TEST(TraceTest, NoActiveTraceMeansNoEvents) {
  ASSERT_EQ(QueryTrace::Active(), nullptr);
  { TraceSpan span("unobserved"); }  // must be harmless
  QueryTrace trace;
  EXPECT_EQ(QueryTrace::Active(), &trace);
  { TraceSpan span("observed"); }
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(TraceTest, TracesStack) {
  QueryTrace outer_trace;
  {
    QueryTrace inner_trace;
    EXPECT_EQ(QueryTrace::Active(), &inner_trace);
    { TraceSpan span("inner_only"); }
    EXPECT_EQ(inner_trace.events().size(), 1u);
  }
  EXPECT_EQ(QueryTrace::Active(), &outer_trace);
  EXPECT_TRUE(outer_trace.events().empty());
}

TEST(TraceTest, SpanRecordsIntoHistogramToo) {
  Histogram h;
  { TraceSpan span("timed", &h); }
  EXPECT_EQ(h.Count(), 1u);
}

TEST(ScopedTimerTest, RecordsOneSample) {
  Histogram h;
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.Count(), 1u);
}

// ------------------------------------------------------------------- macros

#ifdef INDOOR_METRICS_ENABLED

TEST(MacroTest, CounterGaugeHistogramMacrosHitTheRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const uint64_t before = reg.GetCounter("test.macro.counter").Value();
  INDOOR_COUNTER_INC("test.macro.counter");
  INDOOR_COUNTER_ADD("test.macro.counter", 2);
  EXPECT_EQ(reg.GetCounter("test.macro.counter").Value(), before + 3);

  INDOOR_GAUGE_SET("test.macro.gauge", 7.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("test.macro.gauge").Value(), 7.5);

  const uint64_t hist_before = reg.GetHistogram("test.macro.hist").Count();
  INDOOR_HISTOGRAM_RECORD("test.macro.hist", 12);
  EXPECT_EQ(reg.GetHistogram("test.macro.hist").Count(), hist_before + 1);
}

TEST(MacroTest, LatencySpanRecordsIntoNamedHistogram) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const uint64_t before = reg.GetHistogram("test.macro.span_ns").Count();
  { INDOOR_LATENCY_SPAN("macro_span", "test.macro.span_ns"); }
  EXPECT_EQ(reg.GetHistogram("test.macro.span_ns").Count(), before + 1);
}

#else  // !INDOOR_METRICS_ENABLED

TEST(MacroTest, DisabledMacrosCompileToNothing) {
  // The OFF macros must be pure no-ops: usable in any statement position
  // and free of atomics/clocks. constexpr-evaluability proves no runtime
  // machinery is left behind (atomic ops are not constexpr-valid).
  constexpr bool kNoOp = [] {
    INDOOR_COUNTER_INC("gone");
    INDOOR_COUNTER_ADD("gone", 5);
    INDOOR_GAUGE_SET("gone", 1.0);
    INDOOR_HISTOGRAM_RECORD("gone", 2);
    INDOOR_TRACE_SPAN("gone");
    INDOOR_LATENCY_SPAN("gone", "gone_ns");
    INDOOR_METRICS_ONLY(would_not_compile);
    return true;
  }();
  static_assert(kNoOp, "disabled metrics macros must be constexpr no-ops");
  SUCCEED();
}

#endif  // INDOOR_METRICS_ENABLED

// --------------------------------------------------------- query-path wiring

#ifdef INDOOR_METRICS_ENABLED

class QueryWiringTest : public ::testing::Test {
 protected:
  QueryWiringTest() : plan_(MakeRunningExamplePlan(&ids_)), index_(plan_) {}

  uint64_t CounterValue(const char* name) {
    return MetricsRegistry::Global().GetCounter(name).Value();
  }
  uint64_t HistCount(const char* name) {
    return MetricsRegistry::Global().GetHistogram(name).Count();
  }

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
};

TEST_F(QueryWiringTest, Pt2PtQueriesFeedLatencyAndDijkstraMetrics) {
  const uint64_t refined_before = HistCount("query.pt2pt_refined.latency_ns");
  const uint64_t settles_before = CounterValue("distance.dijkstra.settles");
  const uint64_t tls_before = CounterValue("scratch.tls_fallback");
  const uint64_t explicit_before = CounterValue("scratch.explicit");

  const DistanceContext ctx = index_.distance_context();
  const double d1 = Pt2PtDistanceRefined(ctx, {1, 1}, {19, 7});
  QueryScratch scratch;
  const double d2 = Pt2PtDistanceRefined(ctx, {1, 1}, {19, 7}, &scratch);
  EXPECT_DOUBLE_EQ(d1, d2);

  EXPECT_EQ(HistCount("query.pt2pt_refined.latency_ns"), refined_before + 2);
  EXPECT_GT(CounterValue("distance.dijkstra.settles"), settles_before);
  EXPECT_EQ(CounterValue("scratch.tls_fallback"), tls_before + 1);
  EXPECT_EQ(CounterValue("scratch.explicit"), explicit_before + 1);
}

TEST_F(QueryWiringTest, RangeAndKnnFeedIndexMetrics) {
  auto id = index_.objects().Insert(ids_.v12, Point{6, 2});
  ASSERT_TRUE(id.ok());

  const uint64_t range_before = HistCount("query.range.latency_ns");
  const uint64_t knn_before = HistCount("query.knn.latency_ns");
  const uint64_t lookups_before = CounterValue("index.locator.lookups");
  const uint64_t md2d_before = CounterValue("index.md2d.row_fetches");
  const uint64_t searches_before = CounterValue("index.grid.searches");

  const auto in_range = RangeQuery(index_, {1, 1}, 50.0);
  EXPECT_EQ(in_range.size(), 1u);
  const auto nearest = KnnQuery(index_, {1, 1}, 1);
  EXPECT_EQ(nearest.size(), 1u);

  EXPECT_EQ(HistCount("query.range.latency_ns"), range_before + 1);
  EXPECT_EQ(HistCount("query.knn.latency_ns"), knn_before + 1);
  EXPECT_GT(CounterValue("index.locator.lookups"), lookups_before);
  EXPECT_GT(CounterValue("index.md2d.row_fetches"), md2d_before);
  EXPECT_GT(CounterValue("index.grid.searches"), searches_before);
  EXPECT_GE(MetricsRegistry::Global()
                .GetHistogram("query.range.results")
                .Count(),
            1u);
}

TEST_F(QueryWiringTest, BuildPhasesPublishGauges) {
  // The fixture built an IndexFramework, so every phase gauge must exist
  // (values may legitimately be ~0 ms on this tiny plan).
  const RegistrySnapshot snap = MetricsRegistry::Global().Snapshot();
  std::vector<std::string> want = {"build.graph_ms", "build.locator_ms",
                                   "build.md2d_ms",  "build.midx_ms",
                                   "build.dpt_ms",   "build.objects_ms"};
  for (const std::string& name : want) {
    bool found = false;
    for (const auto& [gname, value] : snap.gauges) {
      if (gname == name) {
        EXPECT_GE(value, 0.0);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "missing gauge " << name;
  }
}

TEST_F(QueryWiringTest, QueryTraceSeesQuerySubPhases) {
  QueryTrace trace;
  const DistanceContext ctx = index_.distance_context();
  Pt2PtDistanceRefined(ctx, {1, 1}, {19, 7});
  ASSERT_FALSE(trace.events().empty());
  bool saw_top = false;
  bool saw_legs = false;
  for (const QueryTrace::Event& e : trace.events()) {
    if (std::string(e.name) == "pt2pt_refined") saw_top = true;
    if (std::string(e.name) == "entry_exit_legs") saw_legs = true;
  }
  EXPECT_TRUE(saw_top);
  EXPECT_TRUE(saw_legs);
}

#endif  // INDOOR_METRICS_ENABLED

}  // namespace
}  // namespace metrics
}  // namespace indoor
