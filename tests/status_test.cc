#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace indoor {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status st = Status::NotFound("no such door");
  EXPECT_EQ(st.ToString(), "NotFound: no such door");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::ParseError("a"));
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::ParseError("line 3");
  EXPECT_EQ(os.str(), "ParseError: line 3");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    INDOOR_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto outer = []() -> Status {
    INDOOR_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = []() -> Result<int> { return 5; };
  auto fail = []() -> Result<int> { return Status::IOError("disk"); };
  auto chain = [&](bool use_fail) -> Result<int> {
    INDOOR_ASSIGN_OR_RETURN(int v, use_fail ? fail() : produce());
    return v * 2;
  };
  EXPECT_EQ(chain(false).value(), 10);
  EXPECT_EQ(chain(true).status().code(), StatusCode::kIOError);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace indoor
