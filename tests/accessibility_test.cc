#include "core/model/accessibility_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "indoor/floor_plan_builder.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class AccessibilityTest : public ::testing::Test {
 protected:
  AccessibilityTest()
      : plan_(MakeRunningExamplePlan(&ids_)), graph_(plan_) {}

  RunningExampleIds ids_;
  FloorPlan plan_;
  AccessibilityGraph graph_;
};

TEST_F(AccessibilityTest, EdgeCountMatchesD2PPairs) {
  size_t expected = 0;
  for (const Door& d : plan_.doors()) expected += plan_.D2P(d.id()).size();
  EXPECT_EQ(graph_.edges().size(), expected);
}

TEST_F(AccessibilityTest, UnidirectionalDoorYieldsOneEdge) {
  size_t count = 0;
  for (const AccessEdge& e : graph_.edges()) {
    if (e.door == ids_.d12) ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST_F(AccessibilityTest, OutEdgesMatchLeaveDirections) {
  const auto& out = graph_.OutEdges(ids_.v12);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].door, ids_.d12);
  EXPECT_EQ(out[0].to, ids_.v10);
}

TEST_F(AccessibilityTest, ParallelEdgesBetweenSamePartitions) {
  // v20 <-> v21 has two doors (d21, d24) => two out-edges each way.
  size_t count = 0;
  for (const AccessEdge& e : graph_.OutEdges(ids_.v20)) {
    if (e.to == ids_.v21) ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST_F(AccessibilityTest, EverythingReachableFromOutdoor) {
  const auto reachable = graph_.ReachableFrom(ids_.v0);
  EXPECT_EQ(reachable.size(), plan_.partition_count());
}

TEST_F(AccessibilityTest, RunningExampleIsStronglyConnected) {
  // Unidirectional d12/d15 form a cycle v13 -> v12 -> v10 -> v13, so the
  // example stays strongly connected.
  EXPECT_TRUE(graph_.IsStronglyConnected());
}

TEST(AccessibilityStandaloneTest, OneWayDoorBreaksStrongConnectivity) {
  FloorPlanBuilder b;
  const PartitionId a = b.AddPartition("a", PartitionKind::kRoom, 1,
                                       Rect(0, 0, 4, 4));
  const PartitionId c = b.AddPartition("c", PartitionKind::kRoom, 1,
                                       Rect(4, 0, 8, 4));
  b.AddUnidirectionalDoor("d", Segment({4, 1.8}, {4, 2.2}), a, c);
  auto plan = std::move(b).Build();
  ASSERT_TRUE(plan.ok());
  const AccessibilityGraph graph(plan.value());
  EXPECT_FALSE(graph.IsStronglyConnected());
  EXPECT_EQ(graph.ReachableFrom(a).size(), 2u);
  EXPECT_EQ(graph.ReachableFrom(c).size(), 1u);
}

TEST_F(AccessibilityTest, ReachableFromIncludesSource) {
  const auto reachable = graph_.ReachableFrom(ids_.v11);
  EXPECT_NE(std::find(reachable.begin(), reachable.end(), ids_.v11),
            reachable.end());
}

}  // namespace
}  // namespace indoor
