// Correctness suite for the cross-query work-sharing layer: the sharded
// source-field / host-partition cache (query_cache.h) and the batched
// parallel executor (batch_executor.h).
//
// The load-bearing property is EXACTNESS: a cached engine must return
// bitwise-identical results to an uncached engine over the same plan, for
// every query kind, on randomized buildings with and without obstructed
// rooms — the cache is a pure work-sharing layer, never an approximation.
// The suite also covers the generic ShardedCache (LRU eviction under a
// tiny budget), write invalidation, QueryScratch capacity decay, and a
// concurrent hit/miss stress that CI runs under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/distance/pt2pt_distance.h"
#include "core/distance/query_scratch.h"
#include "core/query/batch_executor.h"
#include "core/query/query_cache.h"
#include "core/query/query_engine.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"
#include "util/sharded_cache.h"

namespace indoor {
namespace {

BuildingConfig SmallBuilding(uint64_t seed, double obstacle_probability) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 10;
  config.room_to_room_doors = 0.3;
  config.obstacle_probability = obstacle_probability;
  config.seed = seed;
  return config;
}

IndexOptions CacheOptions(bool enabled) {
  IndexOptions options;
  options.enable_query_cache = enabled;
  return options;
}

// ------------------------------------------------------- generic ShardedCache

TEST(ShardedCacheTest, LookupMissThenHit) {
  ShardedCache<int, int> cache(1 << 20, 4, "");
  int got = 0;
  EXPECT_FALSE(cache.Lookup(7, [&](const int& v) {
    got = v;
    return true;
  }));
  cache.Insert(7, 42, 64);
  EXPECT_TRUE(cache.Lookup(7, [&](const int& v) {
    got = v;
    return true;
  }));
  EXPECT_EQ(got, 42);
  const CacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 64u);
}

TEST(ShardedCacheTest, AcceptRejectionCountsAsMiss) {
  ShardedCache<int, int> cache(1 << 20, 1, "");
  cache.Insert(1, 10, 32);
  // The accept functor refusing the entry (e.g. quantum collision) must
  // register as a miss, not a hit.
  EXPECT_FALSE(cache.Lookup(1, [](const int&) { return false; }));
  const CacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ShardedCacheTest, EvictsLeastRecentlyUsedUnderTinyCapacity) {
  // One shard, room for exactly two 64-byte entries.
  ShardedCache<int, int> cache(128, 1, "");
  cache.Insert(1, 100, 64);
  cache.Insert(2, 200, 64);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup(1, [](const int&) { return true; }));
  cache.Insert(3, 300, 64);
  EXPECT_TRUE(cache.Lookup(1, [](const int&) { return true; }));
  EXPECT_FALSE(cache.Lookup(2, [](const int&) { return true; }));
  EXPECT_TRUE(cache.Lookup(3, [](const int&) { return true; }));
  const CacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 128u);
}

TEST(ShardedCacheTest, ReplacingAnEntryUpdatesBytes) {
  ShardedCache<int, int> cache(1 << 20, 1, "");
  cache.Insert(5, 1, 100);
  cache.Insert(5, 2, 40);  // same key: replace, not duplicate
  const CacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 40u);
  int got = 0;
  EXPECT_TRUE(cache.Lookup(5, [&](const int& v) {
    got = v;
    return true;
  }));
  EXPECT_EQ(got, 2);
}

TEST(ShardedCacheTest, ClearEmptiesEveryShard) {
  ShardedCache<int, int> cache(1 << 20, 8, "");
  for (int i = 0; i < 64; ++i) cache.Insert(i, i, 16);
  cache.Clear();
  const CacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(cache.Lookup(i, [](const int&) { return true; }));
  }
}

// ------------------------------------------- cached vs uncached exactness

// Every query kind, on randomized buildings with and without obstacles:
// the cached engine must reproduce the uncached engine bit for bit. Two
// passes over the same workload make the second pass all-hits, so both
// the miss path (solve + insert) and the hit path (cached field reuse)
// are held to exactness.
TEST(QueryCacheEquivalenceTest, AllQueryKindsMatchUncachedExactly) {
  for (const uint64_t seed : {311u, 1013u}) {
    for (const double obstacles : {0.0, 1.0}) {
      const BuildingConfig config = SmallBuilding(seed, obstacles);
      QueryEngine cached(GenerateBuilding(config), CacheOptions(true));
      QueryEngine uncached(GenerateBuilding(config), CacheOptions(false));
      ASSERT_NE(cached.index().query_cache(), nullptr);
      ASSERT_EQ(uncached.index().query_cache(), nullptr);

      Rng objects_rng(seed + 1);
      const auto objects =
          GenerateObjects(cached.plan(), 300, &objects_rng);
      PopulateStore(objects, &cached.index().objects());
      PopulateStore(objects, &uncached.index().objects());

      Rng rng(seed + 2);
      const auto pairs = GeneratePositionPairs(cached.plan(), 24, &rng);
      const auto positions = GenerateQueryPositions(cached.plan(), 24, &rng);
      const DistanceContext cached_ctx = cached.index().distance_context();
      const DistanceContext uncached_ctx =
          uncached.index().distance_context();

      for (int pass = 0; pass < 2; ++pass) {
        for (size_t i = 0; i < pairs.size(); ++i) {
          const auto& [a, b] = pairs[i];
          EXPECT_EQ(cached.Distance(a, b), uncached.Distance(a, b))
              << "matrix pt2pt pair " << i << " pass " << pass;
          EXPECT_EQ(Pt2PtDistanceBasic(cached_ctx, a, b),
                    Pt2PtDistanceBasic(uncached_ctx, a, b))
              << "basic pair " << i << " pass " << pass;
          EXPECT_EQ(Pt2PtDistanceVirtual(cached_ctx, a, b),
                    Pt2PtDistanceVirtual(uncached_ctx, a, b))
              << "virtual pair " << i << " pass " << pass;
          EXPECT_EQ(Pt2PtDistanceRefined(cached_ctx, a, b),
                    Pt2PtDistanceRefined(uncached_ctx, a, b))
              << "refined pair " << i << " pass " << pass;
        }
        for (size_t i = 0; i < positions.size(); ++i) {
          const Point& q = positions[i];
          EXPECT_EQ(cached.Range(q, 25.0), uncached.Range(q, 25.0))
              << "range query " << i << " pass " << pass;
          const auto cached_knn = cached.Nearest(q, 8);
          const auto uncached_knn = uncached.Nearest(q, 8);
          ASSERT_EQ(cached_knn.size(), uncached_knn.size())
              << "knn query " << i << " pass " << pass;
          for (size_t j = 0; j < cached_knn.size(); ++j) {
            EXPECT_EQ(cached_knn[j].id, uncached_knn[j].id);
            EXPECT_EQ(cached_knn[j].distance, uncached_knn[j].distance)
                << "knn query " << i << " neighbor " << j << " pass "
                << pass;
          }
        }
      }
      // The second pass must have produced field-cache hits (same
      // workload, warm cache).
      EXPECT_GT(cached.index().query_cache()->FieldStats().hits, 0u);
      EXPECT_GT(cached.index().query_cache()->HostStats().hits, 0u);
    }
  }
}

TEST(QueryCacheEquivalenceTest, HostPartitionMatchesLocator) {
  const FloorPlan plan = GenerateBuilding(SmallBuilding(47, 0.5));
  QueryEngine engine(GenerateBuilding(SmallBuilding(47, 0.5)),
                     CacheOptions(true));
  Rng rng(48);
  for (int i = 0; i < 64; ++i) {
    const Point p = RandomIndoorPosition(engine.plan(), &rng);
    const auto direct = engine.index().locator().GetHostPartition(p);
    for (int repeat = 0; repeat < 2; ++repeat) {  // miss then hit
      const auto cached = engine.Locate(p);
      ASSERT_EQ(cached.ok(), direct.ok());
      if (direct.ok()) {
        EXPECT_EQ(cached.value(), direct.value());
      }
    }
  }
}

// Two exact positions in the same quantum cell must not serve each
// other's fields: the entry stores the exact point and re-solves on
// mismatch.
TEST(QueryCacheEquivalenceTest, QuantumCollisionsStayExact) {
  QueryEngine cached(MakeRunningExamplePlan(), CacheOptions(true));
  QueryEngine uncached(MakeRunningExamplePlan(), CacheOptions(false));
  Rng rng(99);
  const auto base = GenerateQueryPositions(cached.plan(), 8, &rng);
  const double quantum = cached.index().query_cache()->options().quantum;
  for (const Point& p : base) {
    // Same cell as p (offset well below one quantum), different point.
    const Point near(p.x + quantum / 16.0, p.y + quantum / 16.0);
    for (const Point& q : {p, near, p, near}) {
      EXPECT_EQ(cached.Distance(q, base.front()),
                uncached.Distance(q, base.front()));
      EXPECT_EQ(cached.Range(q, 10.0), uncached.Range(q, 10.0));
    }
  }
}

// ------------------------------------------------------ write invalidation

TEST(QueryCacheInvalidationTest, AddObjectInvalidatesCachedResults) {
  QueryEngine cached(GenerateBuilding(SmallBuilding(71, 0.0)),
                     CacheOptions(true));
  QueryEngine uncached(GenerateBuilding(SmallBuilding(71, 0.0)),
                       CacheOptions(false));
  Rng rng(72);
  const Point q = RandomIndoorPosition(cached.plan(), &rng);
  // Warm the cache with an empty store.
  EXPECT_EQ(cached.Range(q, 30.0), uncached.Range(q, 30.0));
  EXPECT_TRUE(cached.Range(q, 30.0).empty());

  // Insert an object right at the query point through BOTH engines.
  const auto host = uncached.Locate(q);
  ASSERT_TRUE(host.ok());
  const auto id1 = cached.AddObject(host.value(), q);
  const auto id2 = uncached.AddObject(host.value(), q);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());

  auto after = cached.Range(q, 30.0);
  EXPECT_EQ(after, uncached.Range(q, 30.0));
  EXPECT_FALSE(after.empty());

  // MoveObject to another partition: both engines must again agree.
  PartitionId other = kInvalidId;
  for (const Partition& part : cached.plan().partitions()) {
    if (!part.IsOutdoor() && part.id() != host.value()) {
      other = part.id();
      break;
    }
  }
  ASSERT_NE(other, kInvalidId);
  const Point elsewhere =
      RandomPointInPartition(cached.plan().partition(other), &rng);
  ASSERT_TRUE(cached.MoveObject(id1.value(), other, elsewhere).ok());
  ASSERT_TRUE(uncached.MoveObject(id2.value(), other, elsewhere).ok());
  EXPECT_EQ(cached.Range(q, 30.0), uncached.Range(q, 30.0));
  EXPECT_EQ(cached.Nearest(q, 3).size(), uncached.Nearest(q, 3).size());
}

TEST(QueryCacheInvalidationTest, InvalidateClearsEntries) {
  QueryEngine engine(GenerateBuilding(SmallBuilding(81, 0.5)),
                     CacheOptions(true));
  Rng rng(82);
  const auto positions = GenerateQueryPositions(engine.plan(), 8, &rng);
  for (const Point& q : positions) engine.Range(q, 20.0);
  const QueryCache* cache = engine.index().query_cache();
  EXPECT_GT(cache->FieldStats().entries, 0u);
  engine.index().InvalidateQueryCache();
  EXPECT_EQ(cache->FieldStats().entries, 0u);
  EXPECT_EQ(cache->HostStats().entries, 0u);
}

// --------------------------------------------------------- eviction bound

TEST(QueryCacheEvictionTest, TinyCapacityEvictsButStaysExact) {
  BuildingConfig config = SmallBuilding(91, 1.0);
  IndexOptions tiny = CacheOptions(true);
  // A few KB: far less than the workload's distinct fields, forcing
  // continuous eviction through the whole run.
  tiny.cache_capacity_bytes = 4 << 10;
  QueryEngine cached(GenerateBuilding(config), tiny);
  QueryEngine uncached(GenerateBuilding(config), CacheOptions(false));
  Rng rng(92);
  const auto pairs = GeneratePositionPairs(cached.plan(), 64, &rng);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& [a, b] : pairs) {
      EXPECT_EQ(cached.Distance(a, b), uncached.Distance(a, b));
    }
  }
  const CacheStats stats = cached.index().query_cache()->FieldStats();
  EXPECT_GT(stats.evictions, 0u);
  // The byte budget is enforced per shard; the total can never exceed the
  // configured capacity.
  EXPECT_LE(stats.bytes, tiny.cache_capacity_bytes);
}

// ------------------------------------------------------- batched execution

std::vector<QueryRequest> MixedBatch(const FloorPlan& plan, size_t count,
                                     Rng* rng) {
  const auto positions = GenerateQueryPositions(plan, count, rng);
  const auto pairs = GeneratePositionPairs(plan, count, rng);
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    QueryRequest request;
    switch (i % 3) {
      case 0:
        request.kind = QueryRequest::Kind::kRange;
        request.a = positions[i];
        request.radius = 20.0;
        break;
      case 1:
        request.kind = QueryRequest::Kind::kKnn;
        request.a = positions[i];
        request.k = 5;
        break;
      default:
        request.kind = QueryRequest::Kind::kDistance;
        request.a = pairs[i].first;
        request.b = pairs[i].second;
        break;
    }
    requests.push_back(request);
  }
  return requests;
}

// RunBatch must agree bit for bit with the sequential loop, at any thread
// count, with grouping on or off, cache on or off.
TEST(BatchExecutorTest, MatchesSequentialLoopExactly) {
  for (const bool cache : {true, false}) {
    QueryEngine engine(GenerateBuilding(SmallBuilding(101, 0.5)),
                       CacheOptions(cache));
    Rng objects_rng(102);
    PopulateStore(GenerateObjects(engine.plan(), 200, &objects_rng),
                  &engine.index().objects());
    Rng rng(103);
    const auto requests = MixedBatch(engine.plan(), 60, &rng);

    // Sequential reference, computed through the same engine.
    std::vector<QueryResult> expected(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      switch (requests[i].kind) {
        case QueryRequest::Kind::kDistance:
          expected[i].distance =
              engine.Distance(requests[i].a, requests[i].b);
          break;
        case QueryRequest::Kind::kRange:
          expected[i].ids = engine.Range(requests[i].a, requests[i].radius);
          break;
        case QueryRequest::Kind::kKnn:
          expected[i].neighbors = engine.Nearest(requests[i].a,
                                                 requests[i].k);
          break;
      }
    }

    for (const unsigned threads : {1u, 4u}) {
      for (const bool group : {true, false}) {
        BatchOptions options;
        options.threads = threads;
        options.group_by_partition = group;
        const auto results = engine.RunBatch(requests, options);
        ASSERT_EQ(results.size(), expected.size());
        for (size_t i = 0; i < results.size(); ++i) {
          EXPECT_EQ(results[i].distance, expected[i].distance)
              << "request " << i << " threads " << threads << " group "
              << group << " cache " << cache;
          EXPECT_EQ(results[i].ids, expected[i].ids) << "request " << i;
          ASSERT_EQ(results[i].neighbors.size(),
                    expected[i].neighbors.size())
              << "request " << i;
          for (size_t j = 0; j < results[i].neighbors.size(); ++j) {
            EXPECT_EQ(results[i].neighbors[j].id,
                      expected[i].neighbors[j].id);
            EXPECT_EQ(results[i].neighbors[j].distance,
                      expected[i].neighbors[j].distance);
          }
        }
      }
    }
  }
}

TEST(BatchExecutorTest, EmptyBatchAndReuse) {
  QueryEngine engine(MakeRunningExamplePlan(), CacheOptions(true));
  BatchExecutor executor(engine.index(), 2);
  EXPECT_TRUE(executor.Run({}).empty());
  Rng rng(7);
  const auto requests = MixedBatch(engine.plan(), 9, &rng);
  // Repeated Run() calls on one executor (the serving-loop pattern) must
  // keep producing identical results.
  const auto first = executor.Run(requests);
  const auto second = executor.Run(requests);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].distance, second[i].distance);
    EXPECT_EQ(first[i].ids, second[i].ids);
    EXPECT_EQ(first[i].neighbors.size(), second[i].neighbors.size());
  }
}

// ------------------------------------------------------ concurrent stress

// Many threads hammer one cached engine with overlapping hot positions:
// concurrent hits, misses, inserts, and evictions on the same shards.
// Run under TSan in CI; asserts exactness against an uncached engine.
TEST(QueryCacheConcurrencyTest, ConcurrentHitsAndMissesStayExact) {
  BuildingConfig config = SmallBuilding(121, 0.5);
  IndexOptions small = CacheOptions(true);
  small.cache_capacity_bytes = 64 << 10;  // small enough to evict
  QueryEngine cached(GenerateBuilding(config), small);
  QueryEngine uncached(GenerateBuilding(config), CacheOptions(false));
  Rng objects_rng(122);
  const auto objects = GenerateObjects(cached.plan(), 150, &objects_rng);
  PopulateStore(objects, &cached.index().objects());
  PopulateStore(objects, &uncached.index().objects());

  Rng rng(123);
  const auto positions = GenerateQueryPositions(cached.plan(), 16, &rng);
  const auto pairs = GeneratePositionPairs(cached.plan(), 16, &rng);

  // Uncached expectations, computed sequentially up front.
  std::vector<double> expected_distance(pairs.size());
  std::vector<std::vector<ObjectId>> expected_range(positions.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    expected_distance[i] =
        uncached.Distance(pairs[i].first, pairs[i].second);
  }
  for (size_t i = 0; i < positions.size(); ++i) {
    expected_range[i] = uncached.Range(positions[i], 20.0);
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      QueryScratch scratch;
      for (int round = 0; round < kRounds; ++round) {
        const size_t i = (t * 7 + round) % pairs.size();
        const double d = cached.Distance(pairs[i].first, pairs[i].second,
                                         &scratch);
        if (d != expected_distance[i]) mismatches.fetch_add(1);
        const size_t j = (t * 5 + round) % positions.size();
        if (cached.Range(positions[j], 20.0, {}, &scratch) !=
            expected_range[j]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  const CacheStats stats = cached.index().query_cache()->FieldStats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// ----------------------------------------------------- QueryScratch decay

TEST(QueryScratchDecayTest, ShrinksAfterCapacitySpike) {
  QueryEngine engine(MakeRunningExamplePlan());
  QueryScratch scratch;
  // Simulate a one-off huge query: inflate two scratch buffers far past
  // anything the steady workload needs.
  scratch.src_leg.resize(size_t{4} << 20);  // 32 MiB of doubles
  scratch.d2d_cache.resize(size_t{1} << 20);
  scratch.src_leg.shrink_to_fit();
  scratch.d2d_cache.shrink_to_fit();
  const size_t inflated = scratch.CapacityBytes();
  ASSERT_GT(inflated, size_t{16} << 20);
  scratch.src_leg.clear();
  scratch.d2d_cache.clear();

  // Run well past one decay interval of small queries.
  Rng rng(5);
  const auto pairs = GeneratePositionPairs(engine.plan(),
                                           QueryScratch::kDecayInterval, &rng);
  for (int i = 0; i < 2 * QueryScratch::kDecayInterval + 1; ++i) {
    engine.Distance(pairs[i % pairs.size()].first,
                    pairs[i % pairs.size()].second, &scratch);
  }
  EXPECT_LT(scratch.CapacityBytes(), inflated / 4)
      << "high-water-mark decay did not release the spike capacity";
}

TEST(QueryScratchDecayTest, SteadyWorkloadKeepsCapacity) {
  QueryEngine engine(GenerateBuilding(SmallBuilding(131, 0.5)));
  QueryScratch scratch;
  Rng rng(132);
  const auto pairs = GeneratePositionPairs(engine.plan(), 8, &rng);
  // Warm up, snapshot capacity, then run several decay windows of the
  // same workload: capacity must not oscillate (no shrink/regrow churn —
  // that would reintroduce steady-state allocations on the hot path).
  for (int i = 0; i < QueryScratch::kDecayInterval; ++i) {
    engine.Distance(pairs[i % pairs.size()].first,
                    pairs[i % pairs.size()].second, &scratch);
  }
  const size_t warm = scratch.CapacityBytes();
  for (int i = 0; i < 3 * QueryScratch::kDecayInterval; ++i) {
    engine.Distance(pairs[i % pairs.size()].first,
                    pairs[i % pairs.size()].second, &scratch);
  }
  EXPECT_EQ(scratch.CapacityBytes(), warm);
}

}  // namespace
}  // namespace indoor
