// End-to-end scenarios across the full stack: generator -> plan -> indexes
// -> queries, including serialization round-trips and moving objects.

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "core/query/query_engine.h"
#include "core/query/temporal.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/floor_plan_io.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

TEST(IntegrationTest, GeneratedBuildingFullPipeline) {
  BuildingConfig config;
  config.floors = 4;
  config.rooms_per_floor = 12;
  config.seed = 101;
  QueryEngine engine(GenerateBuilding(config));
  Rng rng(102);
  PopulateStore(GenerateObjects(engine.plan(), 400, &rng),
                &engine.index().objects());

  // A battery of queries, validated against the oracle.
  const DistanceContext ctx = engine.index().distance_context();
  for (int trial = 0; trial < 5; ++trial) {
    const Point q = RandomIndoorPosition(engine.plan(), &rng);
    EXPECT_EQ(engine.Range(q, 20.0),
              LinearScanRange(ctx, engine.index().objects(), q, 20.0));
    const auto knn = engine.Nearest(q, 10);
    const auto oracle = LinearScanKnn(ctx, engine.index().objects(), q, 10);
    ASSERT_EQ(knn.size(), oracle.size());
    for (size_t i = 0; i < knn.size(); ++i) {
      EXPECT_NEAR(knn[i].distance, oracle[i].distance, 1e-6);
    }
  }
}

TEST(IntegrationTest, SerializeGeneratedBuildingAndRequery) {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 8;
  const FloorPlan plan = GenerateBuilding(config);
  const auto reparsed = ParseFloorPlan(SerializeFloorPlan(plan));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();

  QueryEngine original(plan);
  QueryEngine roundtrip(std::move(reparsed).value());
  Rng rng(103);
  const auto pairs = GeneratePositionPairs(original.plan(), 20, &rng);
  for (const auto& [p, q] : pairs) {
    EXPECT_NEAR(original.Distance(p, q), roundtrip.Distance(p, q), 1e-9);
  }
}

TEST(IntegrationTest, MovingObjectsKeepQueriesConsistent) {
  QueryEngine engine(MakeRunningExamplePlan());
  Rng rng(104);
  PopulateStore(GenerateObjects(engine.plan(), 50, &rng),
                &engine.index().objects());
  const DistanceContext ctx = engine.index().distance_context();
  const PartitionSampler sampler(engine.plan());

  for (int round = 0; round < 5; ++round) {
    // Move a handful of random objects.
    for (int m = 0; m < 10; ++m) {
      const ObjectId id =
          static_cast<ObjectId>(rng.NextIndex(engine.index().objects().size()));
      const PartitionId v = sampler.Sample(&rng);
      const Point p =
          RandomPointInPartition(engine.plan().partition(v), &rng);
      ASSERT_TRUE(engine.MoveObject(id, v, p).ok());
    }
    const Point q = RandomIndoorPosition(engine.plan(), &rng);
    EXPECT_EQ(engine.Range(q, 15.0),
              LinearScanRange(ctx, engine.index().objects(), q, 15.0));
  }
}

TEST(IntegrationTest, BoardingReminderScenario) {
  // The paper's motivating service: remind exactly the passengers whose
  // walking distance to the gate exceeds a threshold.
  RunningExampleIds ids;
  QueryEngine engine(MakeRunningExamplePlan(&ids));
  // Passengers scattered around the building; "gate" in room v21.
  const Point gate(30, 4);
  std::vector<ObjectId> passengers;
  passengers.push_back(engine.AddObject(ids.v21, {29, 4}).value());   // at gate
  passengers.push_back(engine.AddObject(ids.v20, {21, 1}).value());   // close
  passengers.push_back(engine.AddObject(ids.v10, {6, 5}).value());    // far
  passengers.push_back(engine.AddObject(ids.v11, {1, 1}).value());    // far

  // Within-range passengers need no reminder.
  const auto near = engine.Range(gate, 15.0);
  std::vector<ObjectId> to_remind;
  for (ObjectId id : passengers) {
    if (std::find(near.begin(), near.end(), id) == near.end()) {
      to_remind.push_back(id);
    }
  }
  EXPECT_EQ(to_remind, (std::vector<ObjectId>{passengers[2],
                                              passengers[3]}));
}

TEST(IntegrationTest, EmergencyEvacuationScenario) {
  // Shortest paths to the exit for occupants, including across floors.
  RunningExampleIds ids;
  QueryEngine engine(MakeRunningExamplePlan(&ids));
  const Point exit_door = engine.plan().door(ids.d1).Midpoint();
  const Point occupant_floor2(30, 4);
  const auto path = engine.ShortestPath(occupant_floor2, exit_door);
  ASSERT_TRUE(path.found());
  // Must descend the staircase: doors d2 then d16 appear in order.
  const auto& doors = path.doors;
  const auto it2 = std::find(doors.begin(), doors.end(), ids.d2);
  const auto it16 = std::find(doors.begin(), doors.end(), ids.d16);
  ASSERT_NE(it2, doors.end());
  ASSERT_NE(it16, doors.end());
  EXPECT_LT(it2 - doors.begin(), it16 - doors.begin());
}

TEST(IntegrationTest, NightModeDoorsChangeReachability) {
  // Temporal extension across the whole stack: after hours the staircase
  // closes and floor 2 becomes unreachable from floor 1.
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  DoorSchedule schedule(plan.door_count());
  schedule.SetOpenIntervals(ids.d16, {{28800, 61200}});  // 8:00-17:00

  const Point p(6, 5), q(30, 7);
  EXPECT_NE(Pt2PtDistanceAtTime(ctx, schedule, 36000, p, q), kInfDistance);
  EXPECT_EQ(Pt2PtDistanceAtTime(ctx, schedule, 72000, p, q), kInfDistance);
}

TEST(IntegrationTest, LargeBuildingIndexSizesMatchPaperFormula) {
  // Paper §VI-B: the Distance Index Matrix for 1280 doors is
  // |doors|^2 * 4 bytes = 6.25 MB. We verify the formula at a smaller
  // scale (door ids are 4-byte).
  BuildingConfig config;
  config.floors = 5;
  config.rooms_per_floor = 30;
  const FloorPlan plan = GenerateBuilding(config);
  const IndexFramework index(plan);
  const size_t n = plan.door_count();
  EXPECT_EQ(index.index_matrix().MemoryBytes(), n * n * 4);
  EXPECT_EQ(index.d2d_matrix().MemoryBytes(), n * n * 8);
}

}  // namespace
}  // namespace indoor
