#include "geometry/rect.h"

#include <gtest/gtest.h>

namespace indoor {
namespace {

TEST(RectTest, Dimensions) {
  const Rect r(1, 2, 4, 8);
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 6.0);
  EXPECT_DOUBLE_EQ(r.Area(), 18.0);
  EXPECT_DOUBLE_EQ(r.Perimeter(), 18.0);
  EXPECT_EQ(r.Center(), Point(2.5, 5));
}

TEST(RectTest, EmptyRect) {
  const Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  EXPECT_FALSE(Rect(0, 0, 1, 1).IsEmpty());
}

TEST(RectTest, ContainsPoint) {
  const Rect r(0, 0, 4, 4);
  EXPECT_TRUE(r.Contains({2, 2}));
  EXPECT_TRUE(r.Contains({0, 0}));   // boundary
  EXPECT_TRUE(r.Contains({4, 4}));   // boundary
  EXPECT_FALSE(r.Contains({4.1, 2}));
  EXPECT_TRUE(r.ContainsStrict({2, 2}));
  EXPECT_FALSE(r.ContainsStrict({0, 2}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.ContainsRect(Rect(1, 1, 9, 9)));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_FALSE(outer.ContainsRect(Rect(5, 5, 11, 9)));
}

TEST(RectTest, Intersects) {
  const Rect a(0, 0, 4, 4);
  EXPECT_TRUE(a.Intersects(Rect(2, 2, 6, 6)));
  EXPECT_TRUE(a.Intersects(Rect(4, 0, 8, 4)));  // shared edge
  EXPECT_FALSE(a.Intersects(Rect(5, 5, 6, 6)));
}

TEST(RectTest, UnionCoversBoth) {
  const Rect u = Rect(0, 0, 1, 1).Union(Rect(3, 4, 5, 6));
  EXPECT_EQ(u, Rect(0, 0, 5, 6));
  EXPECT_EQ(Rect::Empty().Union(Rect(1, 1, 2, 2)), Rect(1, 1, 2, 2));
}

TEST(RectTest, ExpandGrowsToPoint) {
  Rect r = Rect::Empty();
  r.Expand({3, 4});
  r.Expand({-1, 2});
  EXPECT_EQ(r, Rect(-1, 2, 3, 4));
}

TEST(RectTest, MinDistance) {
  const Rect r(0, 0, 4, 4);
  EXPECT_DOUBLE_EQ(r.MinDistance({2, 2}), 0.0);     // inside
  EXPECT_DOUBLE_EQ(r.MinDistance({7, 2}), 3.0);     // right of
  EXPECT_DOUBLE_EQ(r.MinDistance({7, 8}), 5.0);     // diagonal corner
  EXPECT_DOUBLE_EQ(r.MinDistance({4, 4}), 0.0);     // on boundary
}

TEST(RectTest, MaxDistance) {
  const Rect r(0, 0, 4, 4);
  EXPECT_DOUBLE_EQ(r.MaxDistance({0, 0}), std::sqrt(32.0));
  EXPECT_DOUBLE_EQ(r.MaxDistance({2, 2}), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(r.MaxDistance({-3, 0}), std::sqrt(49 + 16));
}

TEST(RectTest, CircleOverlap) {
  const Rect r(0, 0, 4, 4);
  EXPECT_TRUE(r.IntersectsCircle({6, 2}, 2.0));
  EXPECT_FALSE(r.IntersectsCircle({8, 2}, 2.0));
  EXPECT_TRUE(r.WithinCircle({2, 2}, 3.0));
  EXPECT_FALSE(r.WithinCircle({2, 2}, 2.0));
}

}  // namespace
}  // namespace indoor
