#include "indoor/floor_plan_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "indoor/sample_plans.h"

namespace indoor {
namespace {

constexpr char kValidPlan[] = R"(# two rooms and a door
partition left room 1 1 0 0 4 0 4 4 0 4
partition right room 1 1 4 0 8 0 8 4 4 4
door d0 4 1.8 4 2.2
conn 0 0 1
conn 0 1 0
)";

TEST(ParseTest, ParsesValidPlan) {
  const auto plan = ParseFloorPlan(kValidPlan);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().partition_count(), 2u);
  EXPECT_EQ(plan.value().door_count(), 1u);
  EXPECT_TRUE(plan.value().IsBidirectional(0));
  EXPECT_EQ(plan.value().partition(0).name(), "left");
}

TEST(ParseTest, SkipsCommentsAndBlankLines) {
  const std::string text = std::string("# header\n\n   \n") + kValidPlan;
  EXPECT_TRUE(ParseFloorPlan(text).ok());
}

TEST(ParseTest, ParsesObstacles) {
  const std::string text =
      "partition p room 1 1 0 0 10 0 10 10 0 10\n"
      "obstacle 0 4 4 6 4 6 6 4 6\n"
      "partition q room 1 1 10 0 20 0 20 10 10 10\n"
      "door d 10 4.8 10 5.2\n"
      "conn 0 0 1\nconn 0 1 0\n";
  const auto plan = ParseFloorPlan(text);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan.value().partition(0).footprint().HasObstacles());
  EXPECT_FALSE(plan.value().partition(1).footprint().HasObstacles());
}

TEST(ParseTest, ParsesMetricScaleAndKinds) {
  const std::string text =
      "partition s staircase 1 1.5 0 0 8 0 8 2 0 2\n"
      "partition h hallway 1 1 8 0 16 0 16 2 8 2\n"
      "door d 8 0.8 8 1.2\n"
      "conn 0 0 1\nconn 0 1 0\n";
  const auto plan = ParseFloorPlan(text);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().partition(0).kind(), PartitionKind::kStaircase);
  EXPECT_DOUBLE_EQ(plan.value().partition(0).metric_scale(), 1.5);
}

TEST(ParseTest, RejectsUnknownDirective) {
  const auto plan = ParseFloorPlan("wall 0 0 1 1\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kParseError);
  EXPECT_NE(plan.status().message().find("line 1"), std::string::npos);
}

TEST(ParseTest, RejectsBadKind) {
  const auto plan =
      ParseFloorPlan("partition p attic 1 1 0 0 4 0 4 4 0 4\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("attic"), std::string::npos);
}

TEST(ParseTest, RejectsOddCoordinateCount) {
  const auto plan =
      ParseFloorPlan("partition p room 1 1 0 0 4 0 4 4 0\n");
  ASSERT_FALSE(plan.ok());
}

TEST(ParseTest, RejectsBadCoordinate) {
  const auto plan =
      ParseFloorPlan("partition p room 1 1 0 0 4 zero 4 4 0 4\n");
  ASSERT_FALSE(plan.ok());
}

TEST(ParseTest, RejectsObstacleForUnknownPartition) {
  const auto plan = ParseFloorPlan("obstacle 0 1 1 2 1 2 2 1 2\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("unknown partition"),
            std::string::npos);
}

TEST(ParseTest, RejectsConnForUnknownDoor) {
  const std::string text =
      "partition p room 1 1 0 0 4 0 4 4 0 4\nconn 5 0 0\n";
  const auto plan = ParseFloorPlan(text);
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("unknown door"),
            std::string::npos);
}

TEST(ParseTest, RejectsNegativeScale) {
  const auto plan =
      ParseFloorPlan("partition p room 1 -2 0 0 4 0 4 4 0 4\n");
  ASSERT_FALSE(plan.ok());
}

TEST(ParseTest, PropagatesBuilderValidation) {
  // Door with no connections: parse succeeds, Build() rejects.
  const std::string text =
      "partition p room 1 1 0 0 4 0 4 4 0 4\ndoor d 0 1 0 2\n";
  const auto plan = ParseFloorPlan(text);
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("no connections"),
            std::string::npos);
}

TEST(RoundTripTest, RunningExampleSurvivesSerializeParse) {
  RunningExampleIds ids;
  const FloorPlan original = MakeRunningExamplePlan(&ids);
  const std::string text = SerializeFloorPlan(original);
  const auto reparsed = ParseFloorPlan(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  const FloorPlan& plan = reparsed.value();
  ASSERT_EQ(plan.partition_count(), original.partition_count());
  ASSERT_EQ(plan.door_count(), original.door_count());
  for (DoorId d = 0; d < plan.door_count(); ++d) {
    EXPECT_EQ(plan.D2P(d).size(), original.D2P(d).size());
    EXPECT_TRUE(
        ApproxEqual(plan.door(d).Midpoint(), original.door(d).Midpoint()));
  }
  for (PartitionId v = 0; v < plan.partition_count(); ++v) {
    EXPECT_EQ(plan.partition(v).kind(), original.partition(v).kind());
    EXPECT_EQ(plan.partition(v).floor(), original.partition(v).floor());
    EXPECT_DOUBLE_EQ(plan.partition(v).metric_scale(),
                     original.partition(v).metric_scale());
    EXPECT_EQ(plan.partition(v).footprint().obstacles().size(),
              original.partition(v).footprint().obstacles().size());
  }
}

TEST(FileIoTest, SaveAndLoad) {
  const FloorPlan original = MakeObstacleExamplePlan();
  const std::string path = ::testing::TempDir() + "/plan.txt";
  ASSERT_TRUE(SaveFloorPlan(original, path).ok());
  const auto loaded = LoadFloorPlan(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().partition_count(), original.partition_count());
  EXPECT_EQ(loaded.value().door_count(), original.door_count());
  std::remove(path.c_str());
}

TEST(FileIoTest, LoadMissingFileFails) {
  const auto loaded = LoadFloorPlan("/nonexistent/path/plan.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace indoor
