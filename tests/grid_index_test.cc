#include "core/index/grid_index.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace indoor {
namespace {

Partition MakeRoom(double w = 10, double h = 10) {
  return Partition(0, "room", PartitionKind::kRoom, 1,
                   ObstructedRegion::FromPolygon(
                       Polygon::FromRect(Rect(0, 0, w, h))));
}

Partition MakePillarRoom() {
  auto region = ObstructedRegion::Create(
      Polygon::FromRect(Rect(0, 0, 10, 10)),
      {Polygon::FromRect(Rect(4, 4, 6, 6))});
  EXPECT_TRUE(region.ok());
  return Partition(0, "pillar", PartitionKind::kRoom, 1,
                   std::move(region).value());
}

TEST(KnnCollectorTest, KeepsKBest) {
  KnnCollector c(3);
  EXPECT_EQ(c.Bound(), kInfDistance);
  c.Offer(1, 5.0);
  c.Offer(2, 3.0);
  c.Offer(3, 7.0);
  EXPECT_DOUBLE_EQ(c.Bound(), 7.0);
  c.Offer(4, 1.0);  // evicts 7.0
  EXPECT_DOUBLE_EQ(c.Bound(), 5.0);
  const auto sorted = c.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 4u);
  EXPECT_EQ(sorted[1].id, 2u);
  EXPECT_EQ(sorted[2].id, 1u);
}

TEST(KnnCollectorTest, RejectsWorseThanBound) {
  KnnCollector c(2);
  c.Offer(1, 1.0);
  c.Offer(2, 2.0);
  EXPECT_FALSE(c.Offer(3, 2.5));
  EXPECT_EQ(c.Sorted().size(), 2u);
}

TEST(KnnCollectorTest, DeduplicatesByObjectId) {
  KnnCollector c(2);
  c.Offer(7, 5.0);
  EXPECT_TRUE(c.Offer(7, 3.0));   // improvement replaces
  EXPECT_FALSE(c.Offer(7, 4.0));  // worse re-offer ignored
  const auto sorted = c.Sorted();
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_DOUBLE_EQ(sorted[0].distance, 3.0);
}

TEST(KnnCollectorTest, BoundIsInfiniteUntilFull) {
  KnnCollector c(5);
  c.Offer(1, 1.0);
  c.Offer(2, 2.0);
  EXPECT_EQ(c.Bound(), kInfDistance);
}

TEST(GridBucketTest, InsertAndCollectAll) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 2.0);
  bucket.Insert(0, {1, 1});
  bucket.Insert(1, {9, 9});
  EXPECT_EQ(bucket.size(), 2u);
  std::vector<ObjectId> all;
  bucket.CollectAll(&all);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<ObjectId>{0, 1}));
}

TEST(GridBucketTest, RemoveObject) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 2.0);
  bucket.Insert(0, {1, 1});
  EXPECT_TRUE(bucket.Remove(0, {1, 1}));
  EXPECT_FALSE(bucket.Remove(0, {1, 1}));
  EXPECT_EQ(bucket.size(), 0u);
}

TEST(GridBucketTest, CellCountCoversPartition) {
  const Partition room = MakeRoom(10, 10);
  EXPECT_EQ(GridBucket(room, 2.0).cell_count(), 25u);
  EXPECT_EQ(GridBucket(room, 100.0).cell_count(), 1u);  // at least 1x1
}

TEST(GridBucketTest, RangeSearchEuclideanRoom) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 2.0);
  bucket.Insert(0, {1, 1});
  bucket.Insert(1, {5, 5});
  bucket.Insert(2, {9, 9});
  std::vector<Neighbor> out;
  bucket.RangeSearch(room, {1, 1}, 6.0, &out);
  std::sort(out.begin(), out.end(),
            [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 0u);
  EXPECT_DOUBLE_EQ(out[0].distance, 0.0);
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_NEAR(out[1].distance, std::sqrt(32.0), 1e-9);
}

TEST(GridBucketTest, RangeSearchMatchesBruteForceRandomized) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 1.5);
  Rng rng(3);
  std::vector<Point> positions;
  for (ObjectId id = 0; id < 200; ++id) {
    const Point p(rng.NextDouble(0, 10), rng.NextDouble(0, 10));
    positions.push_back(p);
    bucket.Insert(id, p);
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Point q(rng.NextDouble(0, 10), rng.NextDouble(0, 10));
    const double r = rng.NextDouble(0.5, 8);
    std::vector<Neighbor> out;
    bucket.RangeSearch(room, q, r, &out);
    std::vector<ObjectId> got;
    for (const auto& nb : out) got.push_back(nb.id);
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expect;
    for (ObjectId id = 0; id < positions.size(); ++id) {
      if (Distance(q, positions[id]) <= r) expect.push_back(id);
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(GridBucketTest, RangeSearchUsesObstructedDistances) {
  const Partition room = MakePillarRoom();
  GridBucket bucket(room, 2.0);
  // Object straight across the pillar from the query.
  bucket.Insert(0, {9, 5});
  std::vector<Neighbor> out;
  // Euclidean distance is 8; the obstructed detour under the pillar is
  // 2*sqrt(10) + 2 ~ 8.32 (see visibility_test). Radius 8.5 includes it;
  // radius 8.2 does not (even though Euclid would).
  bucket.RangeSearch(room, {1, 5}, 8.5, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].distance, 2 * std::sqrt(10.0) + 2.0, 1e-9);
  out.clear();
  bucket.RangeSearch(room, {1, 5}, 8.2, &out);
  EXPECT_TRUE(out.empty());
}

TEST(GridBucketTest, MetricScaleAppliesToSearches) {
  Partition stair(0, "stair", PartitionKind::kStaircase, 1,
                  ObstructedRegion::FromPolygon(
                      Polygon::FromRect(Rect(0, 0, 10, 2))),
                  /*metric_scale=*/2.0);
  GridBucket bucket(stair, 2.0);
  bucket.Insert(0, {6, 1});
  std::vector<Neighbor> out;
  bucket.RangeSearch(stair, {1, 1}, 9.9, &out);
  EXPECT_TRUE(out.empty());  // scaled distance is 10 > 9.9
  bucket.RangeSearch(stair, {1, 1}, 10.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].distance, 10.0, 1e-9);
}

TEST(GridBucketTest, NnSearchFindsNearest) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 2.0);
  bucket.Insert(0, {1, 1});
  bucket.Insert(1, {5, 5});
  bucket.Insert(2, {9, 9});
  KnnCollector collector(1);
  bucket.NnSearch(room, {4, 4}, 0.0, &collector);
  const auto nn = collector.Sorted();
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 1u);
  EXPECT_NEAR(nn[0].distance, std::sqrt(2.0), 1e-9);
}

TEST(GridBucketTest, NnSearchAddsExtraLeg) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 2.0);
  bucket.Insert(0, {5, 5});
  KnnCollector collector(1);
  bucket.NnSearch(room, {5, 4}, 100.0, &collector);
  EXPECT_NEAR(collector.Sorted()[0].distance, 101.0, 1e-9);
}

TEST(GridBucketTest, NnSearchPrunesWithBound) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 2.0);
  bucket.Insert(0, {9, 9});
  KnnCollector collector(1);
  collector.Offer(99, 0.5);  // tight existing bound
  bucket.NnSearch(room, {1, 1}, 0.0, &collector);
  // The far object cannot beat the bound; the collector keeps object 99.
  const auto nn = collector.Sorted();
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 99u);
}

TEST(GridBucketTest, EmptyBucketSearchesAreNoOps) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 2.0);
  std::vector<Neighbor> out;
  bucket.RangeSearch(room, {5, 5}, 10, &out);
  EXPECT_TRUE(out.empty());
  KnnCollector collector(2);
  bucket.NnSearch(room, {5, 5}, 0.0, &collector);
  EXPECT_EQ(collector.size(), 0u);
}

TEST(GridBucketTest, NegativeRadiusYieldsNothing) {
  const Partition room = MakeRoom();
  GridBucket bucket(room, 2.0);
  bucket.Insert(0, {5, 5});
  std::vector<Neighbor> out;
  bucket.RangeSearch(room, {5, 5}, -1.0, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace indoor
