// Parallel/serial build equivalence: Md2d, Midx, and the DPT built at
// threads in {1, 2, 8} must be bit-identical on randomized generator
// buildings (the determinism contract of thread_pool.h), and the
// thread-count knob must flow through IndexFramework/IndexOptions.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/index/index_framework.h"
#include "gen/building_generator.h"

namespace indoor {
namespace {

struct ParallelCase {
  int floors;
  int rooms_per_floor;
  uint64_t seed;
  double room_to_room = 0.0;
  double one_way = 0.0;
  double obstacles = 0.0;
};

std::ostream& operator<<(std::ostream& os, const ParallelCase& c) {
  os << "floors" << c.floors << "_rooms" << c.rooms_per_floor << "_seed"
     << c.seed;
  if (c.room_to_room > 0) os << "_r2r";
  if (c.one_way > 0) os << "_oneway";
  if (c.obstacles > 0) os << "_obstacles";
  return os;
}

class ParallelBuildEquivalenceTest
    : public ::testing::TestWithParam<ParallelCase> {
 protected:
  ParallelBuildEquivalenceTest() {
    BuildingConfig config;
    config.floors = GetParam().floors;
    config.rooms_per_floor = GetParam().rooms_per_floor;
    config.seed = GetParam().seed;
    config.room_to_room_doors = GetParam().room_to_room;
    config.one_way_fraction = GetParam().one_way;
    config.obstacle_probability = GetParam().obstacles;
    plan_ = std::make_unique<FloorPlan>(GenerateBuilding(config));
    graph_ = std::make_unique<DistanceGraph>(*plan_);
  }

  std::unique_ptr<FloorPlan> plan_;
  std::unique_ptr<DistanceGraph> graph_;
};

TEST_P(ParallelBuildEquivalenceTest, Md2dAndMidxBitIdentical) {
  const DistanceMatrix serial(*graph_, 1);
  const DistanceIndexMatrix serial_idx(serial, 1);
  const size_t n = serial.door_count();
  for (unsigned threads : {2u, 8u}) {
    const DistanceMatrix parallel(*graph_, threads);
    const DistanceIndexMatrix parallel_idx(parallel, threads);
    ASSERT_EQ(parallel.door_count(), n);
    for (DoorId d = 0; d < n; ++d) {
      // memcmp: the contract is BIT-identical, not epsilon-close.
      EXPECT_EQ(std::memcmp(parallel.Row(d), serial.Row(d),
                            n * sizeof(double)),
                0)
          << "Md2d row " << d << " at threads=" << threads;
      EXPECT_EQ(std::memcmp(parallel_idx.Row(d), serial_idx.Row(d),
                            n * sizeof(DoorId)),
                0)
          << "Midx row " << d << " at threads=" << threads;
    }
  }
}

TEST_P(ParallelBuildEquivalenceTest, DptIdentical) {
  const DoorPartitionTable serial(*graph_, 1);
  for (unsigned threads : {2u, 8u}) {
    const DoorPartitionTable parallel(*graph_, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (DoorId d = 0; d < serial.size(); ++d) {
      EXPECT_EQ(parallel[d].door, serial[d].door);
      EXPECT_EQ(parallel[d].part1, serial[d].part1);
      EXPECT_EQ(parallel[d].part2, serial[d].part2);
      EXPECT_EQ(std::memcmp(&parallel[d].dist1, &serial[d].dist1,
                            sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(&parallel[d].dist2, &serial[d].dist2,
                            sizeof(double)),
                0);
    }
  }
}

TEST_P(ParallelBuildEquivalenceTest, IndexFrameworkThreadsKnob) {
  IndexOptions serial_opts;
  serial_opts.build_threads = 1;
  IndexOptions parallel_opts;
  parallel_opts.build_threads = 8;
  const IndexFramework serial(*plan_, serial_opts);
  const IndexFramework parallel(*plan_, parallel_opts);
  const size_t n = serial.d2d_matrix().door_count();
  ASSERT_EQ(parallel.d2d_matrix().door_count(), n);
  for (DoorId d = 0; d < n; ++d) {
    EXPECT_EQ(std::memcmp(parallel.d2d_matrix().Row(d),
                          serial.d2d_matrix().Row(d), n * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(parallel.index_matrix().Row(d),
                          serial.index_matrix().Row(d),
                          n * sizeof(DoorId)),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeneratedBuildings, ParallelBuildEquivalenceTest,
    ::testing::Values(
        ParallelCase{2, 8, 1201},
        ParallelCase{3, 12, 1301, /*room_to_room=*/0.4},
        ParallelCase{4, 10, 1409, /*room_to_room=*/0.5, /*one_way=*/0.4},
        ParallelCase{2, 14, 1511, /*room_to_room=*/0.3, /*one_way=*/0.0,
                     /*obstacles=*/0.5},
        ParallelCase{5, 6, 1601, /*room_to_room=*/0.6, /*one_way=*/0.5,
                     /*obstacles=*/0.3}),
    ::testing::PrintToStringParamName());

}  // namespace
}  // namespace indoor
