// Validates the D2P/P2D mappings against every fact the paper states about
// the Fig. 1 running example (§III-A).

#include "indoor/floor_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class RunningExampleTest : public ::testing::Test {
 protected:
  RunningExampleTest() : plan_(MakeRunningExamplePlan(&ids_)) {}

  static bool Has(const std::vector<uint32_t>& items, uint32_t id) {
    return std::find(items.begin(), items.end(), id) != items.end();
  }

  RunningExampleIds ids_;
  FloorPlan plan_;
};

TEST_F(RunningExampleTest, D2PCapturesDirectionality) {
  // Paper: D2P(d12) = {(v12, v10)} -- unidirectional.
  const auto& d12 = plan_.D2P(ids_.d12);
  ASSERT_EQ(d12.size(), 1u);
  EXPECT_EQ(d12[0].from, ids_.v12);
  EXPECT_EQ(d12[0].to, ids_.v10);
  // Paper: D2P(d15) = {(v13, v12)}.
  const auto& d15 = plan_.D2P(ids_.d15);
  ASSERT_EQ(d15.size(), 1u);
  EXPECT_EQ(d15[0].from, ids_.v13);
  EXPECT_EQ(d15[0].to, ids_.v12);
  // Paper: D2P(d21) = {(v20, v21), (v21, v20)} -- bidirectional.
  EXPECT_EQ(plan_.D2P(ids_.d21).size(), 2u);
  EXPECT_TRUE(plan_.Allows(ids_.d21, ids_.v20, ids_.v21));
  EXPECT_TRUE(plan_.Allows(ids_.d21, ids_.v21, ids_.v20));
}

TEST_F(RunningExampleTest, BidirectionalityPredicate) {
  EXPECT_FALSE(plan_.IsBidirectional(ids_.d12));
  EXPECT_FALSE(plan_.IsBidirectional(ids_.d15));
  EXPECT_TRUE(plan_.IsBidirectional(ids_.d21));
  EXPECT_TRUE(plan_.IsBidirectional(ids_.d1));
}

TEST_F(RunningExampleTest, EnterableAndLeaveableParts) {
  // Paper: D2P_enter(d12) = {v10}, D2P_leave(d12) = {v12}.
  EXPECT_EQ(plan_.EnterableParts(ids_.d12),
            std::vector<PartitionId>{ids_.v10});
  EXPECT_EQ(plan_.LeaveableParts(ids_.d12),
            std::vector<PartitionId>{ids_.v12});
  // Paper: D2P_enter(d15) = {v12}, D2P_leave(d15) = {v13}.
  EXPECT_EQ(plan_.EnterableParts(ids_.d15),
            std::vector<PartitionId>{ids_.v12});
  EXPECT_EQ(plan_.LeaveableParts(ids_.d15),
            std::vector<PartitionId>{ids_.v13});
  // Paper: D2P_enter(d21) = D2P_leave(d21) = {v20, v21}.
  EXPECT_TRUE(Has(plan_.EnterableParts(ids_.d21), ids_.v20));
  EXPECT_TRUE(Has(plan_.EnterableParts(ids_.d21), ids_.v21));
  EXPECT_TRUE(Has(plan_.LeaveableParts(ids_.d21), ids_.v20));
  EXPECT_TRUE(Has(plan_.LeaveableParts(ids_.d21), ids_.v21));
}

TEST_F(RunningExampleTest, P2DMappingsForHallway) {
  // Paper: P2D_enter(v10) = {d1, d11, d12, d13, d14} (+ our staircase door
  // d16); P2D_leave(v10) excludes the unidirectional d12.
  const auto& enter = plan_.EnterDoors(ids_.v10);
  EXPECT_TRUE(Has(enter, ids_.d1));
  EXPECT_TRUE(Has(enter, ids_.d11));
  EXPECT_TRUE(Has(enter, ids_.d12));
  EXPECT_TRUE(Has(enter, ids_.d13));
  EXPECT_TRUE(Has(enter, ids_.d14));
  const auto& leave = plan_.LeaveDoors(ids_.v10);
  EXPECT_TRUE(Has(leave, ids_.d1));
  EXPECT_TRUE(Has(leave, ids_.d11));
  EXPECT_FALSE(Has(leave, ids_.d12));  // one cannot leave v10 through d12
  EXPECT_TRUE(Has(leave, ids_.d13));
  EXPECT_TRUE(Has(leave, ids_.d14));
}

TEST_F(RunningExampleTest, P2DMappingsForRoom12) {
  // Paper: P2D_enter(v12) = {d15}, P2D_leave(v12) = {d12}.
  EXPECT_EQ(plan_.EnterDoors(ids_.v12), std::vector<DoorId>{ids_.d15});
  EXPECT_EQ(plan_.LeaveDoors(ids_.v12), std::vector<DoorId>{ids_.d12});
}

TEST_F(RunningExampleTest, P2DMappingsForRoom13) {
  // Paper: P2D_enter(v13) = {d13}, P2D_leave(v13) = {d13, d15}.
  EXPECT_EQ(plan_.EnterDoors(ids_.v13), std::vector<DoorId>{ids_.d13});
  const auto& leave = plan_.LeaveDoors(ids_.v13);
  ASSERT_EQ(leave.size(), 2u);
  EXPECT_TRUE(Has(leave, ids_.d13));
  EXPECT_TRUE(Has(leave, ids_.d15));
}

TEST_F(RunningExampleTest, P2DMappingsForRoom21) {
  // Paper: P2D_enter(v21) = P2D_leave(v21) = {d21, d24}.
  const auto expected = std::vector<DoorId>{ids_.d21, ids_.d24};
  EXPECT_EQ(plan_.EnterDoors(ids_.v21), expected);
  EXPECT_EQ(plan_.LeaveDoors(ids_.v21), expected);
}

TEST_F(RunningExampleTest, TouchingDoorsIsUnionOfEnterAndLeave) {
  const auto& touching = plan_.TouchingDoors(ids_.v12);
  ASSERT_EQ(touching.size(), 2u);
  EXPECT_TRUE(Has(touching, ids_.d12));
  EXPECT_TRUE(Has(touching, ids_.d15));
  EXPECT_TRUE(plan_.Touches(ids_.d12, ids_.v12));
  EXPECT_TRUE(plan_.Touches(ids_.d12, ids_.v10));
  EXPECT_FALSE(plan_.Touches(ids_.d12, ids_.v13));
}

TEST_F(RunningExampleTest, SeveralDoorsMayConnectTheSamePartitions) {
  // d21 and d24 both connect v20 and v21 (the base graph must accommodate
  // several edges between the same vertex pair, §III-B).
  EXPECT_EQ(plan_.ConnectedPair(ids_.d21), plan_.ConnectedPair(ids_.d24));
}

TEST_F(RunningExampleTest, ConnectedPairIsUnorderedAndSorted) {
  const auto [a, b] = plan_.ConnectedPair(ids_.d12);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, std::min(ids_.v10, ids_.v12));
  EXPECT_EQ(b, std::max(ids_.v10, ids_.v12));
}

TEST_F(RunningExampleTest, AllowsChecksDirection) {
  EXPECT_TRUE(plan_.Allows(ids_.d12, ids_.v12, ids_.v10));
  EXPECT_FALSE(plan_.Allows(ids_.d12, ids_.v10, ids_.v12));
  EXPECT_FALSE(plan_.Allows(ids_.d12, ids_.v13, ids_.v10));
}

TEST_F(RunningExampleTest, FloorCount) {
  EXPECT_EQ(plan_.FloorCount(), 2);
}

TEST_F(RunningExampleTest, PartitionAndDoorCounts) {
  EXPECT_EQ(plan_.partition_count(), 11u);
  EXPECT_EQ(plan_.door_count(), 12u);
}

TEST_F(RunningExampleTest, PartitionKinds) {
  EXPECT_TRUE(plan_.partition(ids_.v0).IsOutdoor());
  EXPECT_EQ(plan_.partition(ids_.v10).kind(), PartitionKind::kHallway);
  EXPECT_EQ(plan_.partition(ids_.v11).kind(), PartitionKind::kRoom);
  EXPECT_EQ(plan_.partition(ids_.v50).kind(), PartitionKind::kStaircase);
}

TEST_F(RunningExampleTest, StaircaseMetricScaleAppliesToDistances) {
  const Partition& stair = plan_.partition(ids_.v50);
  EXPECT_DOUBLE_EQ(stair.metric_scale(), 1.25);
  // Flat door-to-door length is 8 m, walking length 10 m.
  const Point a = plan_.door(ids_.d16).Midpoint();
  const Point b = plan_.door(ids_.d2).Midpoint();
  EXPECT_NEAR(stair.IntraDistance(a, b), 10.0, 1e-9);
}

}  // namespace
}  // namespace indoor
