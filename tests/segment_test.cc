#include "geometry/segment.h"

#include <gtest/gtest.h>

namespace indoor {
namespace {

TEST(SegmentTest, LengthAndMidpoint) {
  const Segment s({0, 0}, {6, 8});
  EXPECT_DOUBLE_EQ(s.Length(), 10.0);
  EXPECT_EQ(s.Midpoint(), Point(3, 4));
}

TEST(DistancePointToSegmentTest, ProjectionInside) {
  const Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(DistancePointToSegment({5, 3}, s), 3.0);
}

TEST(DistancePointToSegmentTest, ProjectionClampedToEndpoints) {
  const Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(DistancePointToSegment({-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(DistancePointToSegment({13, 4}, s), 5.0);
}

TEST(DistancePointToSegmentTest, DegenerateSegment) {
  const Segment s({2, 2}, {2, 2});
  EXPECT_DOUBLE_EQ(DistancePointToSegment({5, 6}, s), 5.0);
}

TEST(PointOnSegmentTest, OnAndOff) {
  const Segment s({0, 0}, {4, 4});
  EXPECT_TRUE(PointOnSegment({2, 2}, s));
  EXPECT_TRUE(PointOnSegment({0, 0}, s));
  EXPECT_TRUE(PointOnSegment({4, 4}, s));
  EXPECT_FALSE(PointOnSegment({2, 2.1}, s));
  EXPECT_FALSE(PointOnSegment({5, 5}, s));  // collinear but beyond
}

TEST(ProperIntersectTest, CrossingSegments) {
  EXPECT_TRUE(SegmentsProperlyIntersect({{0, 0}, {4, 4}}, {{0, 4}, {4, 0}}));
}

TEST(ProperIntersectTest, TouchingAtEndpointIsNotProper) {
  EXPECT_FALSE(SegmentsProperlyIntersect({{0, 0}, {2, 2}}, {{2, 2}, {4, 0}}));
  // T-junction: endpoint of one on the interior of the other.
  EXPECT_FALSE(SegmentsProperlyIntersect({{0, 0}, {4, 0}}, {{2, 0}, {2, 3}}));
}

TEST(ProperIntersectTest, DisjointSegments) {
  EXPECT_FALSE(SegmentsProperlyIntersect({{0, 0}, {1, 1}}, {{2, 2}, {3, 1}}));
}

TEST(ProperIntersectTest, CollinearOverlapIsNotProper) {
  EXPECT_FALSE(SegmentsProperlyIntersect({{0, 0}, {4, 0}}, {{2, 0}, {6, 0}}));
}

TEST(IntersectTest, IncludesTouches) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 2}}, {{2, 2}, {4, 0}}));
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {4, 0}}, {{2, 0}, {2, 3}}));
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {4, 4}}, {{0, 4}, {4, 0}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
}

TEST(CollinearOverlapTest, OverlappingCollinear) {
  EXPECT_TRUE(SegmentsCollinearOverlap({{0, 0}, {4, 0}}, {{2, 0}, {6, 0}}));
  EXPECT_TRUE(SegmentsCollinearOverlap({{0, 0}, {4, 0}}, {{1, 0}, {2, 0}}));
}

TEST(CollinearOverlapTest, TouchingAtPointIsNotOverlap) {
  EXPECT_FALSE(SegmentsCollinearOverlap({{0, 0}, {2, 0}}, {{2, 0}, {4, 0}}));
}

TEST(CollinearOverlapTest, ParallelButOffsetIsNotOverlap) {
  EXPECT_FALSE(SegmentsCollinearOverlap({{0, 0}, {4, 0}}, {{0, 1}, {4, 1}}));
}

TEST(CollinearOverlapTest, NonParallelIsNotOverlap) {
  EXPECT_FALSE(SegmentsCollinearOverlap({{0, 0}, {4, 0}}, {{0, 0}, {4, 1}}));
}

TEST(CollinearOverlapTest, VerticalOverlap) {
  EXPECT_TRUE(SegmentsCollinearOverlap({{1, 0}, {1, 5}}, {{1, 3}, {1, 9}}));
}

}  // namespace
}  // namespace indoor
