// Algorithm 5 (range query) against the linear-scan oracle.

#include "core/query/range_query.h"

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "indoor/sample_plans.h"

namespace indoor {
namespace {

class RangeQueryTest : public ::testing::Test {
 protected:
  RangeQueryTest()
      : plan_(MakeRunningExamplePlan(&ids_)), index_(plan_) {}

  ObjectId Add(PartitionId v, Point p) {
    auto id = index_.objects().Insert(v, p);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value();
  }

  RunningExampleIds ids_;
  FloorPlan plan_;
  IndexFramework index_;
};

TEST_F(RangeQueryTest, FindsObjectsInHostPartition) {
  const ObjectId near = Add(ids_.v11, {1.5, 1.5});
  Add(ids_.v11, {3.9, 3.9});
  const auto result = RangeQuery(index_, {1, 1}, 1.0);
  EXPECT_EQ(result, std::vector<ObjectId>{near});
}

TEST_F(RangeQueryTest, FindsObjectsAcrossDoors) {
  // Query in v11, object in the hallway just beyond d11.
  const ObjectId obj = Add(ids_.v10, {2, 5});
  // Walking distance: (2,2) -> d11 (2,4) = 2, then d11 -> (2,5) = 1.
  auto result = RangeQuery(index_, {2, 2}, 3.0);
  EXPECT_EQ(result, std::vector<ObjectId>{obj});
  result = RangeQuery(index_, {2, 2}, 2.9);
  EXPECT_TRUE(result.empty());
}

TEST_F(RangeQueryTest, RespectsDoorDirectionality) {
  // Object in room 12; query in the hallway. Entering v12 requires the
  // long route through room 13 and the one-way d15.
  const ObjectId obj = Add(ids_.v12, {6, 2});
  const Point q(5, 4.5);  // hallway, 0.5 above d12 — but d12 cannot enter
  // Walking distance: q -> d13 -> d15 -> (6,2):
  const double legs = Distance(q, Point(10, 4)) + std::sqrt(13.0) +
                      Distance(Point(8, 1), Point(6, 2));
  auto result = RangeQuery(index_, q, legs + 0.01);
  EXPECT_EQ(result, std::vector<ObjectId>{obj});
  result = RangeQuery(index_, q, legs - 0.01);
  EXPECT_TRUE(result.empty());
}

TEST_F(RangeQueryTest, WholePartitionInclusionViaFdv) {
  // A large radius swallows entire partitions through the DPT fdv check.
  for (int i = 0; i < 5; ++i) {
    Add(ids_.v11, {0.5 + i * 0.7, 0.5});
    Add(ids_.v13, {8.5 + i * 0.6, 0.5});
  }
  const auto result = RangeQuery(index_, {6, 5}, 1000.0);
  EXPECT_EQ(result.size(), 10u);
}

TEST_F(RangeQueryTest, MatchesOracleOnRunningExample) {
  Rng rng(31);
  const auto objects = GenerateObjects(plan_, 60, &rng);
  PopulateStore(objects, &index_.objects());
  const DistanceContext ctx = index_.distance_context();
  for (int trial = 0; trial < 20; ++trial) {
    const Point q = RandomIndoorPosition(plan_, &rng);
    for (double r : {2.0, 5.0, 10.0, 25.0, 60.0}) {
      const auto expect = LinearScanRange(ctx, index_.objects(), q, r);
      EXPECT_EQ(RangeQuery(index_, q, r), expect)
          << "with index, q=" << q << " r=" << r;
      EXPECT_EQ(RangeQuery(index_, q, r, {.use_index_matrix = false}),
                expect)
          << "without index, q=" << q << " r=" << r;
    }
  }
}

TEST_F(RangeQueryTest, EmptyForOutsideQuery) {
  Add(ids_.v11, {1, 1});
  EXPECT_TRUE(RangeQuery(index_, {1000, 1000}, 50.0).empty());
}

TEST_F(RangeQueryTest, NegativeRadiusIsEmpty) {
  Add(ids_.v11, {1, 1});
  EXPECT_TRUE(RangeQuery(index_, {1, 1}, -1.0).empty());
}

TEST_F(RangeQueryTest, ZeroRadiusFindsColocatedObject) {
  const ObjectId obj = Add(ids_.v11, {1, 1});
  EXPECT_EQ(RangeQuery(index_, {1, 1}, 0.0), std::vector<ObjectId>{obj});
}

TEST(RangeQueryObstacleTest, HostPartitionReachedThroughOtherRoom) {
  // Paper Fig. 5: an object near q is within range of p only through
  // room 1, even though both are in room 2.
  ObstacleExampleIds ids;
  FloorPlan plan = MakeObstacleExamplePlan(&ids);
  IndexFramework index(plan);
  const auto obj = index.objects().Insert(ids.room2, ids.q);
  ASSERT_TRUE(obj.ok());
  // True walking distance p -> q is 12 (via room 1); intra-room weave ~28.
  const auto result = RangeQuery(index, ids.p, 12.5);
  EXPECT_EQ(result, std::vector<ObjectId>{obj.value()});
  EXPECT_TRUE(RangeQuery(index, ids.p, 11.5).empty());
}

TEST(RangeQueryGeneratedTest, MatchesOracleOnGeneratedBuilding) {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 12;
  config.seed = 11;
  FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  Rng rng(13);
  PopulateStore(GenerateObjects(plan, 300, &rng), &index.objects());
  const DistanceContext ctx = index.distance_context();
  for (int trial = 0; trial < 10; ++trial) {
    const Point q = RandomIndoorPosition(plan, &rng);
    for (double r : {5.0, 15.0, 30.0, 80.0}) {
      const auto expect = LinearScanRange(ctx, index.objects(), q, r);
      EXPECT_EQ(RangeQuery(index, q, r), expect);
      EXPECT_EQ(RangeQuery(index, q, r, {.use_index_matrix = false}),
                expect);
    }
  }
}

TEST_F(RangeQueryTest, RangeMonotonicInRadius) {
  Rng rng(41);
  PopulateStore(GenerateObjects(plan_, 40, &rng), &index_.objects());
  const Point q(6, 5);
  size_t prev = 0;
  for (double r : {1.0, 3.0, 8.0, 20.0, 50.0, 200.0}) {
    const size_t count = RangeQuery(index_, q, r).size();
    EXPECT_GE(count, prev);
    prev = count;
  }
}

}  // namespace
}  // namespace indoor
