// Continuous range monitoring over moving objects: maintaining a standing
// query incrementally (ContinuousRangeMonitor: O(1) partition-bound checks
// + occasional DistanceField probes per position report) versus re-running
// Algorithm 5 every tick.
//
// The interesting quantity is the crossover: re-query cost is independent
// of how many objects move; incremental cost scales with the report
// volume. The sweep varies the agents' pause time, i.e. the fraction of
// the population in motion per tick — positioning systems emit reports
// only for people who move. Incremental also yields per-report
// enter/leave EVENTS with exact timing, which re-querying cannot provide
// without result diffing.

#include <cstdio>

#include "bench_util.h"
#include "core/query/range_query.h"
#include "tracking/monitor.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Continuous range monitoring, 8 monitors, r=30m, 10 floors, "
             "2000 tracked objects, 20 ticks x 2s");
  std::printf("%-14s%14s%18s%16s%12s%14s\n", "pause (s)", "reports/tick",
              "incremental/tick", "re-query/tick", "speedup",
              "probes/tick");

  for (double pause : {0.0, 20.0, 60.0, 240.0}) {
    const auto engine = MakeEngine(10, 2000, /*seed=*/77);
    const DistanceContext ctx = engine->index().distance_context();
    Rng rng(78);
    const auto queries = GenerateQueryPositions(engine->plan(), 8, &rng);

    std::vector<ContinuousRangeMonitor> registered;
    registered.reserve(queries.size());
    for (const Point& q : queries) {
      registered.emplace_back(ctx, engine->index().objects(), q, 30.0);
    }

    TrajectoryConfig traj;
    traj.seed = 79;
    traj.pause = pause;
    TrajectorySimulator sim(ctx, engine->index().objects(), traj);

    constexpr int kTicks = 20;
    double incremental_ms = 0, requery_ms = 0;
    size_t total_reports = 0, probes_before = 0;
    for (const auto& monitor : registered) {
      probes_before += monitor.probes();
    }
    for (int tick = 0; tick < kTicks; ++tick) {
      const auto reports = sim.Step(2.0);
      total_reports += reports.size();
      WallTimer inc;
      for (auto& monitor : registered) {
        for (const PositionReport& report : reports) {
          monitor.OnReport(report);
        }
      }
      incremental_ms += inc.ElapsedMillis();
      ApplyReports(reports, &engine->index().objects());
      WallTimer req;
      for (const Point& q : queries) {
        RangeQuery(engine->index(), q, 30.0);
      }
      requery_ms += req.ElapsedMillis();
    }
    size_t probes_after = 0;
    for (const auto& monitor : registered) {
      probes_after += monitor.probes();
    }
    incremental_ms /= kTicks;
    requery_ms /= kTicks;
    std::printf("%-14.0f%14zu%15.3f ms%13.3f ms%11.1fx%14zu\n", pause,
                total_reports / kTicks, incremental_ms, requery_ms,
                incremental_ms > 0 ? requery_ms / incremental_ms : 0.0,
                (probes_after - probes_before) / kTicks);
  }
  std::printf("\nReading: with everyone moving, periodic re-query wins — "
              "the indexed Algorithm 5 is that cheap. As the moving "
              "fraction drops (longer pauses), incremental maintenance "
              "crosses over, and it is the only mode that emits exact "
              "enter/leave events per report.\n");
  return 0;
}
