// Ablation: what does the pre-computed Md2d buy? Compares the matrix-backed
// Algorithms 5-6 against their temporal snapshot counterparts, which run
// one on-the-fly Dijkstra per query instead of reading Md2d. With an
// all-open schedule both return identical results, so the delta is pure
// index benefit; the snapshot path is the price of supporting door
// schedules without re-precomputation.

#include <cstdio>

#include "bench_util.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"
#include "core/query/temporal_query.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Ablation: precomputed Md2d vs on-the-fly snapshot Dijkstra "
             "(20K objects, 100 queries)");
  std::printf("%-8s%16s%16s%16s%16s\n", "floors", "range Md2d",
              "range snapshot", "kNN Md2d", "kNN snapshot");

  for (int floors : {10, 20, 30, 40}) {
    const auto engine = MakeEngine(floors, 20000, /*seed=*/55);
    const DoorSchedule schedule(engine->plan().door_count());  // all open
    Rng rng(56);
    const auto queries = GenerateQueryPositions(engine->plan(), 100, &rng);

    const double range_md2d = AvgMillis(queries.size(), [&](size_t i) {
      RangeQuery(engine->index(), queries[i], 30.0);
    });
    const double range_snap = AvgMillis(queries.size(), [&](size_t i) {
      RangeQueryAtTime(engine->index(), schedule, 0.0, queries[i], 30.0);
    });
    const double knn_md2d = AvgMillis(queries.size(), [&](size_t i) {
      KnnQuery(engine->index(), queries[i], 100);
    });
    const double knn_snap = AvgMillis(queries.size(), [&](size_t i) {
      KnnQueryAtTime(engine->index(), schedule, 0.0, queries[i], 100);
    });
    std::printf("%-8d%13.3f ms%13.3f ms%13.3f ms%13.3f ms\n", floors,
                range_md2d, range_snap, knn_md2d, knn_snap);
  }
  std::printf("\nReading: the snapshot variant pays one Dijkstra over all "
              "doors per query; the matrix turns that into ordered row "
              "reads. The gap is the paper's case for precomputation and "
              "grows with building size.\n");
  return 0;
}
