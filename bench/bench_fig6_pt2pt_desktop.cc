// Reproduces paper Figure 6: average running time of the three
// position-to-position distance algorithms (Algorithm 2 "basic",
// Algorithm 3 "refined", Algorithm 4 "reuse") on synthetic office
// buildings of 10/20/30/40 floors, 50 random position pairs each (§VI-A).
//
// Expected shape: Algorithm 2 is far slower than 3 and 4 (it blindly calls
// the door-to-door search per door pair); Algorithms 3 and 4 scale well
// with floors; Algorithm 4 <= Algorithm 3 with the gap widening on larger
// buildings.

#include <cstdio>

#include "bench_util.h"
#include "core/distance/pt2pt_distance.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Figure 6: pt2pt distance algorithms (desktop, avg of 50 "
             "random pairs)");
  PrintHeader("floors", {"Algorithm 2", "Algorithm 3", "Algorithm 4"});

  for (int floors : {10, 20, 30, 40}) {
    const FloorPlan plan = GenerateBuilding(PaperBuilding(floors));
    const DistanceGraph graph(plan);
    const PartitionLocator locator(plan);
    const DistanceContext ctx(graph, locator);
    Rng rng(2012 + floors);
    const auto pairs = GeneratePositionPairsByArea(plan, 50, &rng);

    const double alg2 = AvgMillis(pairs.size(), [&](size_t i) {
      Pt2PtDistanceBasic(ctx, pairs[i].first, pairs[i].second);
    });
    const double alg3 = AvgMillis(pairs.size(), [&](size_t i) {
      Pt2PtDistanceRefined(ctx, pairs[i].first, pairs[i].second);
    });
    const double alg4 = AvgMillis(pairs.size(), [&](size_t i) {
      Pt2PtDistanceReuse(ctx, pairs[i].first, pairs[i].second,
                         ReusePolicy::kPaperFaithful);
    });
    PrintRow(std::to_string(floors), {alg2, alg3, alg4});
  }
  std::printf("\nPaper's finding: the refined Algorithms 3 and 4 clearly "
              "outperform Algorithm 2 and scale with building size;\n"
              "Algorithm 4's extra reuse pays off most on large "
              "buildings.\n");
  return 0;
}
