// Reproduces paper Figures 3 and 4: the door-to-door distance matrix Md2d
// and the distance index matrix Midx for the doors d1, d11..d15 of the
// running example's top-left sub-plan.
//
// The paper's printed numbers are illustrative (its Fig. 1 carries no
// coordinates, and the text's fd2d(v12, d15, d12) = 1.6 m disagrees with
// its own matrix entry 1.5); this bench prints the values our geometry and
// Algorithm 1 actually produce. The STRUCTURAL properties the paper
// demonstrates must hold: a zero diagonal, asymmetry caused by the
// directional doors d12/d15, and each Midx row sorting its Md2d row.

#include <cstdio>
#include <vector>

#include "core/index/distance_index_matrix.h"
#include "indoor/sample_plans.h"

using namespace indoor;

int main() {
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  const DistanceGraph graph(plan);
  const DistanceMatrix md2d(graph);
  const DistanceIndexMatrix midx(md2d);

  const std::vector<DoorId> doors{ids.d1,  ids.d11, ids.d12,
                                  ids.d13, ids.d14, ids.d15};

  std::printf("=== Figure 3: Door-to-Door Distance Matrix Md2d (meters) ===\n");
  std::printf("%6s", "");
  for (DoorId d : doors) std::printf("%8s", plan.door(d).name().c_str());
  std::printf("\n");
  for (DoorId from : doors) {
    std::printf("%6s", plan.door(from).name().c_str());
    for (DoorId to : doors) std::printf("%8.2f", md2d.At(from, to));
    std::printf("\n");
  }

  std::printf("\nStructural checks (paper §IV-A):\n");
  std::printf("  diagonal all zero: %s\n",
              [&] {
                for (DoorId d : doors) {
                  if (md2d.At(d, d) != 0.0) return "NO";
                }
                return "yes";
              }());
  std::printf("  asymmetric (directional doors): Md2d[d11,d15]=%.2f vs "
              "Md2d[d15,d11]=%.2f\n",
              md2d.At(ids.d11, ids.d15), md2d.At(ids.d15, ids.d11));

  std::printf("\n=== Figure 4: Distance Index Matrix Midx (door ranks) ===\n");
  std::printf("%6s", "");
  for (size_t j = 1; j <= doors.size(); ++j) std::printf("%8zu", j);
  std::printf("\n");
  for (DoorId from : doors) {
    std::printf("%6s", plan.door(from).name().c_str());
    // Rank among the sub-plan doors only, in full-matrix Midx order.
    size_t printed = 0;
    for (size_t j = 0; j < plan.door_count() && printed < doors.size();
         ++j) {
      const DoorId dj = midx.At(from, j);
      for (DoorId d : doors) {
        if (d == dj) {
          std::printf("%8s", plan.door(dj).name().c_str());
          ++printed;
          break;
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\nOrdering property: Md2d[di, Midx[di,j]] is non-descending "
              "in j for every row: ");
  bool sorted = true;
  for (DoorId di = 0; di < plan.door_count(); ++di) {
    for (size_t j = 1; j < plan.door_count(); ++j) {
      if (md2d.At(di, midx.At(di, j - 1)) >
          md2d.At(di, midx.At(di, j))) {
        sorted = false;
      }
    }
  }
  std::printf("%s\n", sorted ? "holds" : "VIOLATED");
  return sorted ? 0 : 1;
}
