// Ablation: the R-tree behind getHostPartition (paper §III-D2) versus a
// naive linear scan over all partition footprints.

#include <cstdio>

#include "bench_util.h"

using namespace indoor;
using namespace indoor::bench;

namespace {

/// Brute-force point location with the same tie-breaking rules as
/// PartitionLocator.
PartitionId LinearLocate(const FloorPlan& plan, const Point& p) {
  PartitionId best = kInvalidId;
  double best_area = 0.0;
  for (const Partition& part : plan.partitions()) {
    if (!part.Contains(p)) continue;
    const double area = part.footprint().outer().Area();
    const bool better =
        best == kInvalidId ||
        (plan.partition(best).IsOutdoor() && !part.IsOutdoor()) ||
        (plan.partition(best).IsOutdoor() == part.IsOutdoor() &&
         area < best_area);
    if (better) {
      best = part.id();
      best_area = area;
    }
  }
  return best;
}

}  // namespace

int main() {
  PrintTitle("Ablation: R-tree getHostPartition vs linear scan "
             "(10K locations per row)");
  std::printf("%-8s%12s%16s%16s%12s\n", "floors", "partitions", "R-tree",
              "linear scan", "speedup");

  for (int floors : {10, 20, 30, 40}) {
    const FloorPlan plan = GenerateBuilding(PaperBuilding(floors));
    const PartitionLocator locator(plan);
    Rng rng(66);
    const auto points = GenerateQueryPositions(plan, 10000, &rng);

    // Consistency audit while measuring.
    size_t mismatches = 0;
    const double rtree_ms = AvgMillis(points.size(), [&](size_t i) {
      auto host = locator.GetHostPartition(points[i]);
      if (!host.ok() || host.value() != LinearLocate(plan, points[i])) {
        // LinearLocate lacks the id tie-break; treat area ties as equal.
        const auto linear = LinearLocate(plan, points[i]);
        if (!host.ok() ||
            plan.partition(host.value()).footprint().outer().Area() !=
                plan.partition(linear).footprint().outer().Area()) {
          ++mismatches;
        }
      }
    });
    // The audit above also ran the linear scan; time each in isolation.
    const double rtree_only = AvgMillis(points.size(), [&](size_t i) {
      (void)locator.GetHostPartition(points[i]);
    });
    const double linear_only = AvgMillis(points.size(), [&](size_t i) {
      (void)LinearLocate(plan, points[i]);
    });
    (void)rtree_ms;
    std::printf("%-8d%12zu%13.4f ms%13.4f ms%11.1fx", floors,
                plan.partition_count(), rtree_only, linear_only,
                rtree_only > 0 ? linear_only / rtree_only : 0.0);
    if (mismatches == 0) {
      std::printf("   (results agree)\n");
    } else {
      std::printf("   (%zu MISMATCHES)\n", mismatches);
    }
  }
  return 0;
}
