// Baseline quality comparison (paper §I, §II): how much extra walking the
// Li & Lee door-count model costs versus the minimum indoor walking
// distance, how often iNav's direction-blind model reports untraversable
// (underestimated) paths, and how far Euclidean distance underestimates
// indoors. Run on the paper's pure star topology AND on buildings with
// room-to-room doors, where the fewer-doors-vs-shorter-walk tension that
// motivates the paper actually arises.

#include <algorithm>
#include <cstdio>
#include <functional>

#include "baseline/door_count_model.h"
#include "baseline/doors_as_nodes.h"
#include "baseline/euclidean.h"
#include "bench_util.h"
#include "indoor/sample_plans.h"

using namespace indoor;
using namespace indoor::bench;

namespace {

void RunTable(const char* title,
              const std::function<BuildingConfig(int)>& make_config) {
  PrintTitle(title);
  std::printf("%-8s%16s%16s%18s%20s\n", "floors", "doorcount infl.",
              "worst infl.", "iNav underest.%", "euclid ratio (1fl)");

  for (int floors : {5, 10, 20}) {
    const FloorPlan plan = GenerateBuilding(make_config(floors));
    const DistanceGraph graph(plan);
    const PartitionLocator locator(plan);
    const DistanceContext ctx(graph, locator);
    const DoorsAsNodesGraph inav(graph);
    Rng rng(1300 + floors);
    const auto pairs = GeneratePositionPairsByArea(plan, 200, &rng);

    double inflation_sum = 0, worst_inflation = 1.0, euclid_sum = 0;
    int counted = 0, inav_under = 0, same_floor = 0;
    for (const auto& [p, q] : pairs) {
      const double truth = Pt2PtDistanceVirtual(ctx, p, q);
      if (truth == kInfDistance || truth < 1e-6) continue;
      const DoorCountPath dc = DoorCountShortestPath(ctx, p, q);
      if (!dc.found()) continue;
      const double inflation = dc.walking_length / truth;
      inflation_sum += inflation;
      worst_inflation = std::max(worst_inflation, inflation);
      if (inav.Pt2PtDistance(locator, p, q) < truth - 1e-6) ++inav_under;
      // Euclidean ratios only make sense within a floor in the flattened
      // frame (DESIGN.md §2.7).
      const auto vs = locator.GetHostPartition(p);
      const auto vt = locator.GetHostPartition(q);
      if (vs.ok() && vt.ok() &&
          plan.partition(vs.value()).floor() ==
              plan.partition(vt.value()).floor()) {
        euclid_sum += EuclideanBaselineDistance(p, q) / truth;
        ++same_floor;
      }
      ++counted;
    }
    std::printf("%-8d%15.3fx%15.3fx%17.1f%%%19.3f\n", floors,
                inflation_sum / counted, worst_inflation,
                100.0 * inav_under / counted,
                same_floor > 0 ? euclid_sum / same_floor : 0.0);
  }
}

}  // namespace

int main() {
  RunTable("Baseline distance quality, pure star topology "
           "(200 random pairs per building)",
           [](int floors) { return PaperBuilding(floors); });
  RunTable("Baseline distance quality, room-to-room doors p=0.6, "
           "one-way fraction 0.4",
           [](int floors) {
             BuildingConfig config = PaperBuilding(floors);
             config.room_to_room_doors = 0.6;
             config.one_way_fraction = 0.4;
             return config;
           });

  // The paper's running-example claim, quantified: the one-door path is
  // measurably longer than the two-door optimum.
  RunningExampleIds ids;
  const FloorPlan plan = MakeRunningExamplePlan(&ids);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);
  const Point p(11, 1), q(4.5, 4.5);
  const DoorCountPath dc = DoorCountShortestPath(ctx, p, q);
  const double truth = Pt2PtDistanceVirtual(ctx, p, q);
  std::printf("\nPaper Fig. 1 example: door-count path (via d13) walks "
              "%.2f m; true shortest (via d15, d12) walks %.2f m "
              "(+%.0f%%).\n",
              dc.walking_length, truth,
              (dc.walking_length / truth - 1) * 100);
  std::printf("Reading: on the pure star topology the door-count model is "
              "accidentally optimal (one door per room); with room-to-room "
              "doors it inflates walks, and iNav underestimates whenever a "
              "one-way door lies on its straight-through path.\n");
  return 0;
}
