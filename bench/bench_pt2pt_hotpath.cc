// Old-vs-new hot-path benchmark for the one-to-many geodesic solver, CSR
// door graph, and QueryScratch work of the pt2pt/range/kNN paths.
//
// For each workload (Fig. 6 pt2pt pairs with obstructed rooms, Fig. 8 range
// queries, Fig. 9 kNN queries) the binary:
//   1. verifies that the optimized implementation returns EXACTLY the same
//      results as the reference (pre-optimization) implementation on every
//      query — bitwise-equal doubles, identical result sets — and fails
//      hard on any mismatch;
//   2. reports ns/query for both sides and the speedup ratio;
//   3. reports steady-state allocations/query for both sides via the
//      counting global operator new (INDOOR_BENCH_COUNT_ALLOCS below); the
//      new pt2pt path must be allocation-free after warm-up.
//
// Flags: --smoke (tiny config, same code paths), --json <path> (machine
// readable results for tools/check_bench_regression.py), --floors <n>,
// --seed <s> (drives building + workload generation; recorded in the JSON
// so artifacts are reproducible run-to-run), --queue {heap,bucket} and
// --landmarks {on,off} (frontier + ALT-pruning knobs of the optimized
// side; both default on, and both are recorded in the JSON so paired runs
// can be ratioed). Speedup ratios and alloc counts are
// machine-independent, which is what the committed BENCH_baseline.json
// pins.

#define INDOOR_BENCH_COUNT_ALLOCS
#include "bench_util.h"

#include <cstring>
#include <string>
#include <vector>

#include "core/distance/pt2pt_distance.h"
#include "core/distance/query_scratch.h"
#include "core/query/reference_impls.h"
#include "util/timer.h"

using namespace indoor;
using namespace indoor::bench;

namespace {

struct WorkloadResult {
  std::string name;
  double old_ns_per_query = 0;
  double new_ns_per_query = 0;
  double old_allocs_per_query = 0;
  double new_allocs_per_query = 0;

  double Speedup() const {
    return new_ns_per_query > 0 ? old_ns_per_query / new_ns_per_query : 0;
  }
};

/// Wall nanoseconds per call of fn(i), i in [0, queries): each of `reps`
/// sweeps is timed separately and the FASTEST sweep wins. Min-of-sweeps
/// suppresses scheduler stalls on shared CI runners, which at smoke sizes
/// (16 queries per sweep) can otherwise dwarf the work being measured and
/// flip the gated speedup ratio run to run.
double NsPerQuery(size_t reps, size_t queries,
                  const std::function<void(size_t)>& fn) {
  double best_ms = -1;
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    for (size_t i = 0; i < queries; ++i) fn(i);
    const double ms = timer.ElapsedMillis();
    if (best_ms < 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms * 1e6 / static_cast<double>(queries);
}

/// Allocations per call of fn(i) after one warm-up sweep.
double AllocsPerQuery(size_t queries, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < queries; ++i) fn(i);  // warm-up: size all buffers
  const auto before = AllocCount();
  for (size_t i = 0; i < queries; ++i) fn(i);
  return static_cast<double>(AllocCount() - before) /
         static_cast<double>(queries);
}

void PrintResult(const WorkloadResult& r) {
  std::printf("%-18s %12.0f ns %12.0f ns %8.2fx %10.1f %10.1f\n",
              r.name.c_str(), r.old_ns_per_query, r.new_ns_per_query,
              r.Speedup(), r.old_allocs_per_query, r.new_allocs_per_query);
}

void WriteJson(const char* path, bool smoke, int floors, uint64_t seed,
               bool bucket_queue, bool landmarks,
               const std::vector<WorkloadResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"smoke\": %s,\n  \"floors\": %d,\n"
               "  \"seed\": %llu,\n  \"queue\": \"%s\",\n"
               "  \"landmarks\": %s,\n  \"workloads\": {\n",
               smoke ? "true" : "false", floors,
               static_cast<unsigned long long>(seed),
               bucket_queue ? "bucket" : "heap",
               landmarks ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(f,
                 "    \"%s\": {\"old_ns_per_query\": %.1f, "
                 "\"new_ns_per_query\": %.1f, \"speedup\": %.3f, "
                 "\"old_allocs_per_query\": %.2f, "
                 "\"new_allocs_per_query\": %.2f}%s\n",
                 r.name.c_str(), r.old_ns_per_query, r.new_ns_per_query,
                 r.Speedup(), r.old_allocs_per_query, r.new_allocs_per_query,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"metrics\": %s}\n",
               indoor::bench::MetricsJson().c_str());
  std::fclose(f);
}

[[noreturn]] void FailMismatch(const std::string& workload, size_t query) {
  std::fprintf(stderr,
               "FATAL: %s: optimized result differs from reference "
               "implementation on query %zu\n",
               workload.c_str(), query);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int floors = 10;
  uint64_t seed = 42;
  bool cache_on = true;
  bool bucket_queue = true;
  bool landmarks = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      setenv("INDOOR_BENCH_SMOKE", "1", 1);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--floors") == 0 && i + 1 < argc) {
      floors = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_on = std::strcmp(argv[++i], "off") != 0;
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      // Frontier selector for the optimized side; the reference side always
      // runs its historical heap. `--queue heap --landmarks off` therefore
      // reproduces the pre-bucket optimized path, so two runs of this
      // binary measure the bucket+landmark gain on the same machine.
      const char* v = argv[++i];
      if (std::strcmp(v, "heap") == 0) {
        bucket_queue = false;
      } else if (std::strcmp(v, "bucket") == 0) {
        bucket_queue = true;
      } else {
        std::fprintf(stderr, "--queue must be heap|bucket\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--landmarks") == 0 && i + 1 < argc) {
      landmarks = std::strcmp(argv[++i], "off") != 0;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <path>] [--floors <n>] "
                   "[--seed <s>] [--cache on|off] [--queue heap|bucket] "
                   "[--landmarks on|off]\n",
                   argv[0]);
      return 1;
    }
  }
  const bool smoke = SmokeMode();

  // Fig. 6/8/9 workload with obstructed rooms: obstacles make the
  // intra-partition legs geodesic solves, which is exactly what the
  // one-to-many batching collapses.
  BuildingConfig cfg = PaperBuilding(floors, seed);
  cfg.obstacle_probability = 0.5;
  IndexOptions options;
  options.enable_query_cache = cache_on;
  options.use_bucket_queue = bucket_queue;
  options.use_landmarks = landmarks;
  QueryEngine engine(GenerateBuilding(cfg), options);
  {
    const size_t object_count = smoke ? 200 : 10000;
    Rng rng(seed * 13 + 991);
    PopulateStore(GenerateObjects(engine.plan(), object_count, &rng),
                  &engine.index().objects());
  }
  const IndexFramework& index = engine.index();
  const DistanceContext ctx = index.distance_context();

  Rng rng(seed * 7 + 2012 + floors);
  const size_t pair_count = SweepCount(64, 16);
  const size_t basic_pair_count = SweepCount(8, 4);
  const size_t query_count = SweepCount(64, 16);
  const auto pairs =
      GeneratePositionPairsByArea(engine.plan(), pair_count, &rng);
  const auto queries =
      GenerateQueryPositions(engine.plan(), query_count, &rng);

  // Hinted contexts (satellite of the scratch work): the hosts are resolved
  // once up front, so the steady-state evaluation skips the R-tree lookup —
  // the stored-object usage pattern.
  std::vector<DistanceContext> hinted(pairs.size(), ctx);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto vs = index.locator().GetHostPartition(pairs[i].first);
    const auto vt = index.locator().GetHostPartition(pairs[i].second);
    if (vs.ok() && vt.ok()) {
      hinted[i] = ctx.WithHints(vs.value(), vt.value());
    }
  }

  QueryScratch scratch;
  std::vector<WorkloadResult> results;
  const size_t reps = SweepCount(3, 5);

  // ---------------------------------------------------------- pt2pt refined
  {
    for (size_t i = 0; i < pairs.size(); ++i) {
      const double oldd =
          reference::Pt2PtDistanceRefined(ctx, pairs[i].first,
                                          pairs[i].second);
      const double newd = Pt2PtDistanceRefined(hinted[i], pairs[i].first,
                                               pairs[i].second, &scratch);
      if (oldd != newd) FailMismatch("pt2pt_refined", i);
    }
    WorkloadResult r;
    r.name = "pt2pt_refined";
    r.old_ns_per_query = NsPerQuery(reps, pairs.size(), [&](size_t i) {
      reference::Pt2PtDistanceRefined(ctx, pairs[i].first, pairs[i].second);
    });
    r.new_ns_per_query = NsPerQuery(reps, pairs.size(), [&](size_t i) {
      Pt2PtDistanceRefined(hinted[i], pairs[i].first, pairs[i].second,
                           &scratch);
    });
    r.old_allocs_per_query = AllocsPerQuery(pairs.size(), [&](size_t i) {
      reference::Pt2PtDistanceRefined(ctx, pairs[i].first, pairs[i].second);
    });
    r.new_allocs_per_query = AllocsPerQuery(pairs.size(), [&](size_t i) {
      Pt2PtDistanceRefined(hinted[i], pairs[i].first, pairs[i].second,
                           &scratch);
    });
    results.push_back(r);
  }

  // ------------------------------------------------------------ pt2pt basic
  {
    for (size_t i = 0; i < basic_pair_count; ++i) {
      const double oldd = reference::Pt2PtDistanceBasic(ctx, pairs[i].first,
                                                        pairs[i].second);
      const double newd = Pt2PtDistanceBasic(hinted[i], pairs[i].first,
                                             pairs[i].second, &scratch);
      if (oldd != newd) FailMismatch("pt2pt_basic", i);
    }
    WorkloadResult r;
    r.name = "pt2pt_basic";
    r.old_ns_per_query = NsPerQuery(1, basic_pair_count, [&](size_t i) {
      reference::Pt2PtDistanceBasic(ctx, pairs[i].first, pairs[i].second);
    });
    r.new_ns_per_query = NsPerQuery(1, basic_pair_count, [&](size_t i) {
      Pt2PtDistanceBasic(hinted[i], pairs[i].first, pairs[i].second,
                         &scratch);
    });
    r.old_allocs_per_query = AllocsPerQuery(basic_pair_count, [&](size_t i) {
      reference::Pt2PtDistanceBasic(ctx, pairs[i].first, pairs[i].second);
    });
    r.new_allocs_per_query = AllocsPerQuery(basic_pair_count, [&](size_t i) {
      Pt2PtDistanceBasic(hinted[i], pairs[i].first, pairs[i].second,
                         &scratch);
    });
    results.push_back(r);
  }

  // ----------------------------------------------------------- range (r=30)
  {
    const double r_query = 30.0;
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto oldr = reference::RangeQuery(index, queries[i], r_query);
      const auto newr = RangeQuery(index, queries[i], r_query, {}, &scratch);
      if (oldr != newr) FailMismatch("range_r30", i);
    }
    WorkloadResult r;
    r.name = "range_r30";
    r.old_ns_per_query = NsPerQuery(reps, queries.size(), [&](size_t i) {
      reference::RangeQuery(index, queries[i], r_query);
    });
    r.new_ns_per_query = NsPerQuery(reps, queries.size(), [&](size_t i) {
      RangeQuery(index, queries[i], r_query, {}, &scratch);
    });
    r.old_allocs_per_query = AllocsPerQuery(queries.size(), [&](size_t i) {
      reference::RangeQuery(index, queries[i], r_query);
    });
    r.new_allocs_per_query = AllocsPerQuery(queries.size(), [&](size_t i) {
      RangeQuery(index, queries[i], r_query, {}, &scratch);
    });
    results.push_back(r);
  }

  // -------------------------------------------------------------- kNN (k=10)
  {
    const size_t k = 10;
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto oldr = reference::KnnQuery(index, queries[i], k);
      const auto newr = KnnQuery(index, queries[i], k, {}, &scratch);
      if (oldr != newr) FailMismatch("knn_k10", i);
    }
    WorkloadResult r;
    r.name = "knn_k10";
    r.old_ns_per_query = NsPerQuery(reps, queries.size(), [&](size_t i) {
      reference::KnnQuery(index, queries[i], k);
    });
    r.new_ns_per_query = NsPerQuery(reps, queries.size(), [&](size_t i) {
      KnnQuery(index, queries[i], k, {}, &scratch);
    });
    r.old_allocs_per_query = AllocsPerQuery(queries.size(), [&](size_t i) {
      reference::KnnQuery(index, queries[i], k);
    });
    r.new_allocs_per_query = AllocsPerQuery(queries.size(), [&](size_t i) {
      KnnQuery(index, queries[i], k, {}, &scratch);
    });
    results.push_back(r);
  }

  PrintTitle("pt2pt/range/kNN hot path: reference vs optimized "
             "(results verified exactly equal)");
  std::printf("%-18s %15s %15s %9s %10s %10s\n", "workload", "old", "new",
              "speedup", "allocs/q", "allocs/q");
  std::printf("%-18s %15s %15s %9s %10s %10s\n", "", "", "", "", "(old)",
              "(new)");
  for (const WorkloadResult& r : results) PrintResult(r);

  if (json_path != nullptr) {
    WriteJson(json_path, smoke, floors, seed, bucket_queue, landmarks,
              results);
  }
  return 0;
}
