// Parallel index construction bench: wall time of the Md2d / Midx / DPT
// builds on a paper-style generator building as the worker-thread count
// grows, verifying that every parallel build is byte-identical to the
// serial one (thread_pool.h's determinism contract).
//
//   bench_parallel_build [--floors N] [--threads 1,2,4,8] [--seed S]
//                        [--json out.json] [--smoke]
//
// --smoke shrinks the building so CI can assert the binary still runs
// without paying the full measurement. The default 30-floor building is
// the acceptance configuration: the speedup line printed for the largest
// thread count is the number the CI bench artifact tracks.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/index/distance_index_matrix.h"
#include "core/index/dpt.h"
#include "gen/building_generator.h"
#include "util/timer.h"

using namespace indoor;

namespace {

struct Row {
  unsigned threads = 1;
  double md2d_ms = 0;
  double midx_ms = 0;
  double dpt_ms = 0;
  bool identical = true;
  double speedup = 1.0;  // serial md2d time / this md2d time
};

std::vector<unsigned> ParseThreadList(const std::string& s) {
  std::vector<unsigned> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(
        static_cast<unsigned>(std::stoul(s.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

bool MatricesIdentical(const DistanceMatrix& a, const DistanceMatrix& b) {
  if (a.door_count() != b.door_count()) return false;
  const size_t n = a.door_count();
  for (DoorId d = 0; d < n; ++d) {
    // Bitwise comparison: the acceptance bar is byte-identical content,
    // not epsilon-close.
    if (std::memcmp(a.Row(d), b.Row(d), n * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

bool IndexMatricesIdentical(const DistanceIndexMatrix& a,
                            const DistanceIndexMatrix& b) {
  if (a.door_count() != b.door_count()) return false;
  const size_t n = a.door_count();
  for (DoorId d = 0; d < n; ++d) {
    if (std::memcmp(a.Row(d), b.Row(d), n * sizeof(DoorId)) != 0) {
      return false;
    }
  }
  return true;
}

void WriteJson(const std::string& path, int floors, size_t doors,
               const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"parallel_build\",\n"
               "  \"floors\": %d,\n  \"doors\": %zu,\n  \"results\": [\n",
               floors, doors);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"md2d_ms\": %.3f, "
                 "\"midx_ms\": %.3f, \"dpt_ms\": %.3f, "
                 "\"speedup\": %.3f, \"identical\": %s}%s\n",
                 r.threads, r.md2d_ms, r.midx_ms, r.dpt_ms, r.speedup,
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"metrics\": %s}\n",
               indoor::bench::MetricsJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int floors = 30;
  uint64_t seed = 42;
  std::vector<unsigned> thread_list{1, 2, 4, 8};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--floors") {
      floors = std::stoi(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--threads") {
      thread_list = ParseThreadList(next());
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--smoke") {
      floors = 3;
      thread_list = {1, 2};
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  BuildingConfig config;
  config.floors = floors;
  config.rooms_per_floor = 30;
  config.seed = seed;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  std::printf("building: %d floors, %zu partitions, %zu doors\n", floors,
              plan.partition_count(), plan.door_count());

  // Serial reference (also the threads=1 row).
  WallTimer timer;
  const DistanceMatrix serial_md2d(graph, 1);
  const double serial_md2d_ms = timer.ElapsedMillis();
  timer.Restart();
  const DistanceIndexMatrix serial_midx(serial_md2d, 1);
  const double serial_midx_ms = timer.ElapsedMillis();
  timer.Restart();
  const DoorPartitionTable serial_dpt(graph, 1);
  const double serial_dpt_ms = timer.ElapsedMillis();

  std::vector<Row> rows;
  std::printf("%8s %12s %12s %12s %10s %10s\n", "threads", "Md2d(ms)",
              "Midx(ms)", "DPT(ms)", "speedup", "identical");
  for (unsigned threads : thread_list) {
    Row row;
    row.threads = threads;
    if (threads == 1) {
      row.md2d_ms = serial_md2d_ms;
      row.midx_ms = serial_midx_ms;
      row.dpt_ms = serial_dpt_ms;
      row.identical = true;
    } else {
      timer.Restart();
      const DistanceMatrix md2d(graph, threads);
      row.md2d_ms = timer.ElapsedMillis();
      timer.Restart();
      const DistanceIndexMatrix midx(md2d, threads);
      row.midx_ms = timer.ElapsedMillis();
      timer.Restart();
      const DoorPartitionTable dpt(graph, threads);
      row.dpt_ms = timer.ElapsedMillis();
      row.identical = MatricesIdentical(md2d, serial_md2d) &&
                      IndexMatricesIdentical(midx, serial_midx);
    }
    row.speedup = row.md2d_ms > 0 ? serial_md2d_ms / row.md2d_ms : 0.0;
    rows.push_back(row);
    std::printf("%8u %12.1f %12.1f %12.1f %9.2fx %10s\n", row.threads,
                row.md2d_ms, row.midx_ms, row.dpt_ms, row.speedup,
                row.identical ? "yes" : "NO");
  }

  if (!json_path.empty()) {
    WriteJson(json_path, floors, plan.door_count(), rows);
  }

  for (const Row& r : rows) {
    if (!r.identical) {
      std::fprintf(stderr, "FAIL: parallel build diverged from serial\n");
      return 1;
    }
  }
  return 0;
}
