// Reproduces paper Figure 7: Algorithm 3 vs Algorithm 4 on a
// resource-constrained device (the paper used a 1 GHz Samsung Nexus S,
// 10 random pairs per configuration).
//
// SUBSTITUTION (see DESIGN.md): no Android handset is available, so the
// identical Alg. 3 vs Alg. 4 comparison runs on the host CPU. The paper's
// claim is relative — "Algorithm 4 runs approximately twice as fast as
// Algorithm 3 in all settings" — which is a property of the algorithms'
// work, not the device, so the ratio series below is the reproduction
// target; absolute times are host-specific.

#include <cstdio>

#include "bench_util.h"
#include "core/distance/pt2pt_distance.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Figure 7: Alg 3 vs Alg 4 (constrained-device substitution, "
             "avg of 10 random pairs)");
  std::printf("%-24s%16s%16s%16s\n", "floors", "Algorithm 3", "Algorithm 4",
              "ratio A3/A4");

  for (int floors : {10, 20, 30, 40}) {
    const FloorPlan plan = GenerateBuilding(PaperBuilding(floors));
    const DistanceGraph graph(plan);
    const PartitionLocator locator(plan);
    const DistanceContext ctx(graph, locator);
    Rng rng(7700 + floors);
    // 10 runs as in the paper; repeat the pair set a few times so host
    // timer resolution does not dominate.
    const auto pairs = GeneratePositionPairsByArea(plan, 10, &rng);
    constexpr int kRepeat = 20;

    const double alg3 = AvgMillis(pairs.size() * kRepeat, [&](size_t i) {
      const auto& [p, q] = pairs[i % pairs.size()];
      Pt2PtDistanceRefined(ctx, p, q);
    });
    const double alg4 = AvgMillis(pairs.size() * kRepeat, [&](size_t i) {
      const auto& [p, q] = pairs[i % pairs.size()];
      Pt2PtDistanceReuse(ctx, p, q, ReusePolicy::kPaperFaithful);
    });
    std::printf("%-24d%13.3f ms%13.3f ms%16.2f\n", floors, alg3, alg4,
                alg4 > 0 ? alg3 / alg4 : 0.0);
  }
  std::printf("\nPaper's finding: Algorithm 4 runs approximately twice as "
              "fast as Algorithm 3 in all settings.\n");
  return 0;
}
