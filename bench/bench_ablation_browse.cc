// Ablation: incremental nearest-neighbor strategies. The k-doubling
// wrapper (NearestIterator) re-runs Algorithm 6 on each growth; the native
// best-first DistanceBrowser pays only for what the consumer pulls. The
// sweep varies how many neighbors are actually consumed.

#include <cstdio>

#include "bench_util.h"
#include "core/query/incremental_knn.h"
#include "core/query/knn_query.h"
#include "core/query/nearest_iterator.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Ablation: incremental kNN strategies "
             "(10 floors, 20K objects, 100 queries)");
  std::printf("%-12s%18s%18s%16s\n", "consumed", "k-doubling",
              "best-first", "one-shot kNN");

  const auto engine = MakeEngine(10, 20000, /*seed=*/99);
  Rng rng(100);
  const auto queries = GenerateQueryPositions(engine->plan(), 100, &rng);

  for (size_t consume : {1u, 10u, 100u, 1000u}) {
    const double doubling = AvgMillis(queries.size(), [&](size_t i) {
      NearestIterator it(engine->index(), queries[i]);
      for (size_t c = 0; c < consume && it.HasNext(); ++c) it.Next();
    });
    const double best_first = AvgMillis(queries.size(), [&](size_t i) {
      DistanceBrowser browser(engine->index(), queries[i]);
      for (size_t c = 0; c < consume && browser.HasNext(); ++c) {
        browser.Next();
      }
    });
    const double one_shot = AvgMillis(queries.size(), [&](size_t i) {
      KnnQuery(engine->index(), queries[i], consume);
    });
    std::printf("%-12zu%15.3f ms%15.3f ms%13.3f ms\n", consume, doubling,
                best_first, one_shot);
  }
  std::printf("\nReading: the best-first browser wins at every pull count "
              "— it also beats one-shot Algorithm 6 for large k, because "
              "the collector's bound only prunes once k results exist, "
              "while best-first never examines an entry below the k-th "
              "distance frontier. The k-doubling wrapper pays for its "
              "re-computations.\n");
  return 0;
}
