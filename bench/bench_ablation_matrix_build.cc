// Ablation: construction cost and memory of the pre-computed index
// structures (Md2d, Midx, DPT) versus building size. The paper (§VI-B)
// reports the 40-floor Distance Index Matrix at 1280^2 x 4 B = 6.25 MB and
// DPT at 70 KB; this bench reproduces the accounting and adds build times.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/index/index_framework.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Ablation: index construction cost and memory vs floors");
  std::printf("(parallel build uses %u hardware thread(s); speedup only "
              "materializes on multi-core hosts)\n",
              std::max(1u, std::thread::hardware_concurrency()));
  std::printf("%-8s%8s%14s%14s%14s%14s%12s%12s%12s\n", "floors", "doors",
              "Md2d 1thr", "Md2d par", "Midx build", "DPT build",
              "Md2d MB", "Midx MB", "DPT KB");

  for (int floors : {10, 20, 30, 40}) {
    const FloorPlan plan = GenerateBuilding(PaperBuilding(floors));
    const DistanceGraph graph(plan);

    WallTimer t1;
    const DistanceMatrix md2d(graph);
    const double md2d_ms = t1.ElapsedMillis();

    WallTimer t1p;
    const DistanceMatrix md2d_par(graph, /*threads=*/0);
    const double md2d_par_ms = t1p.ElapsedMillis();

    WallTimer t2;
    const DistanceIndexMatrix midx(md2d);
    const double midx_ms = t2.ElapsedMillis();

    WallTimer t3;
    const DoorPartitionTable dpt(graph);
    const double dpt_ms = t3.ElapsedMillis();

    std::printf(
        "%-8d%8zu%11.1f ms%11.1f ms%11.1f ms%11.3f ms%12.2f%12.2f%12.1f\n",
        floors, plan.door_count(), md2d_ms, md2d_par_ms, midx_ms, dpt_ms,
        md2d.MemoryBytes() / (1024.0 * 1024.0),
        midx.MemoryBytes() / (1024.0 * 1024.0), dpt.MemoryBytes() / 1024.0);
  }
  std::printf("\nPaper reference points (40 floors, 1280 doors): Midx "
              "1280^2 x 4 B = 6.25 MB; DPT <= 56 B x doors ~ 70 KB. Our "
              "Midx matches the 4-byte-id formula exactly; our DPT record "
              "is a fixed 32 B (two ids + two doubles + door id, padded).\n");
  return 0;
}
