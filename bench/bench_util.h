// Shared helpers for the figure-reproduction benches: workload setup and
// paper-style series printing.

#ifndef INDOOR_BENCH_BENCH_UTIL_H_
#define INDOOR_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/query/query_engine.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace indoor {
namespace bench {

/// CI smoke mode: when the INDOOR_BENCH_SMOKE environment variable is set
/// (non-empty), PaperBuilding and MakeEngine shrink every configuration to
/// a trivial size so each bench binary still exercises its full code path
/// (and cannot silently rot) while finishing in seconds. Paper-figure
/// numbers are only meaningful with smoke mode OFF.
inline bool SmokeMode() {
  const char* env = std::getenv("INDOOR_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0';
}

/// The paper's standard building: 30 rooms + 2 staircases per floor
/// (capped to 2 floors / 8 rooms in smoke mode).
inline BuildingConfig PaperBuilding(int floors, uint64_t seed = 42) {
  BuildingConfig config;
  config.floors = SmokeMode() ? std::min(floors, 2) : floors;
  config.rooms_per_floor = SmokeMode() ? 8 : 30;
  config.seed = seed;
  return config;
}

/// Sweep/sample count for hand-rolled measurement loops: `full` normally,
/// `smoke` when INDOOR_BENCH_SMOKE is set. Every bench that sizes its own
/// workload (query pools, repetition sweeps, probe samples) must pick the
/// count through this helper so new benches cannot forget the smoke cap
/// and stall CI.
inline size_t SweepCount(size_t full, size_t smoke) {
  return SmokeMode() ? smoke : full;
}

/// Builds a plan + full index + `object_count` uniform objects (capped to
/// 200 objects in smoke mode).
inline std::unique_ptr<QueryEngine> MakeEngine(int floors,
                                               size_t object_count,
                                               uint64_t seed = 42,
                                               IndexOptions options = {}) {
  if (SmokeMode()) object_count = std::min<size_t>(object_count, 200);
  auto engine = std::make_unique<QueryEngine>(
      GenerateBuilding(PaperBuilding(floors, seed)), options);
  if (object_count > 0) {
    Rng rng(seed * 31 + 7);
    PopulateStore(GenerateObjects(engine->plan(), object_count, &rng),
                  &engine->index().objects());
  }
  return engine;
}

/// Average wall milliseconds of `fn` over `runs` invocations.
inline double AvgMillis(size_t runs, const std::function<void(size_t)>& fn) {
  WallTimer timer;
  for (size_t i = 0; i < runs; ++i) fn(i);
  return timer.ElapsedMillis() / static_cast<double>(runs);
}

/// Prints a table header: first column label then series names.
inline void PrintHeader(const std::string& row_label,
                        const std::vector<std::string>& series) {
  std::printf("%-24s", row_label.c_str());
  for (const auto& s : series) std::printf("%16s", s.c_str());
  std::printf("\n");
}

/// Prints one row of average-millisecond values.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values) {
  std::printf("%-24s", label.c_str());
  for (double v : values) std::printf("%13.3f ms", v);
  std::printf("\n");
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Number of operator-new calls since process start. Always readable; it
/// only advances in binaries that compile with INDOOR_BENCH_COUNT_ALLOCS
/// defined (which replaces the global allocation functions below). Counting
/// is relaxed-atomic, so concurrent measurement threads stay well-defined.
inline std::atomic<unsigned long long>& AllocCounter() {
  static std::atomic<unsigned long long> count{0};
  return count;
}

inline unsigned long long AllocCount() {
  return AllocCounter().load(std::memory_order_relaxed);
}

/// The current metrics-registry snapshot as a JSON object string. Bench
/// harnesses attach it under a "metrics" member of their JSON output so
/// the perf numbers travel with the counters that explain them (Dijkstra
/// settles, grid cells pruned, ...). An INDOOR_METRICS=OFF build yields an
/// object with empty sections.
inline std::string MetricsJson() {
  return metrics::MetricsRegistry::Global().Snapshot().ToJson();
}

}  // namespace bench
}  // namespace indoor

#ifdef INDOOR_BENCH_COUNT_ALLOCS
// Counting replacements for the global allocation functions. Exactly ONE
// translation unit per binary may define INDOOR_BENCH_COUNT_ALLOCS (they are
// non-inline by design: duplicate definitions fail the link rather than
// silently double-count).

#include <new>

namespace indoor {
namespace bench {
namespace internal {

inline void* CountedAlloc(std::size_t size) {
  AllocCounter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

inline void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  AllocCounter().fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, std::max(align, sizeof(void*)), size ? size : 1) !=
      0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace internal
}  // namespace bench
}  // namespace indoor

void* operator new(std::size_t size) {
  return indoor::bench::internal::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return indoor::bench::internal::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return indoor::bench::internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return indoor::bench::internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // INDOOR_BENCH_COUNT_ALLOCS

#endif  // INDOOR_BENCH_BENCH_UTIL_H_
