// Reproduces paper Figure 9: kNN query performance.
//   (a) effect of object count (1K..50K), k = 100, 30 floors,
//       with vs without the distance index matrix Midx;
//   (b) effect of floor count (10..40), 10K objects per floor, k = 100,
//       with vs without Midx;
//   (c) effect of k (1..200) across object counts, with Midx.
// Every configuration issues 100 random queries and reports the average
// response time (§VI-B).

#include <cstdio>

#include "bench_util.h"
#include "core/query/knn_query.h"

using namespace indoor;
using namespace indoor::bench;

namespace {

std::vector<Point> Queries(const FloorPlan& plan, uint64_t seed) {
  Rng rng(seed);
  return GenerateQueryPositions(plan, 100, &rng);
}

double RunKnn(const QueryEngine& engine, const std::vector<Point>& queries,
              size_t k, bool use_midx) {
  return AvgMillis(queries.size(), [&](size_t i) {
    KnnQuery(engine.index(), queries[i], k, {.use_index_matrix = use_midx});
  });
}

}  // namespace

int main() {
  // ---- (a) effect of object number --------------------------------------
  PrintTitle("Figure 9(a): kNN query vs object count "
             "(k=100, 30 floors, 100 queries)");
  PrintHeader("objects", {"with d2d index", "without d2d index"});
  for (size_t objects : {1000u, 5000u, 10000u, 20000u, 30000u, 40000u,
                         50000u}) {
    const auto engine = MakeEngine(30, objects, /*seed=*/18);
    const auto queries = Queries(engine->plan(), 90 + objects);
    PrintRow(std::to_string(objects),
             {RunKnn(*engine, queries, 100, true),
              RunKnn(*engine, queries, 100, false)});
  }

  // ---- (b) effect of floor number ---------------------------------------
  PrintTitle("Figure 9(b): kNN query vs floors "
             "(k=100, 10K objects/floor, 100 queries)");
  PrintHeader("floors", {"with d2d index", "without d2d index"});
  for (int floors : {10, 20, 30, 40}) {
    const auto engine =
        MakeEngine(floors, 10000u * static_cast<size_t>(floors),
                   /*seed=*/19);
    const auto queries = Queries(engine->plan(), 91 + floors);
    PrintRow(std::to_string(floors),
             {RunKnn(*engine, queries, 100, true),
              RunKnn(*engine, queries, 100, false)});
  }

  // ---- (c) effect of the query parameter k ------------------------------
  PrintTitle("Figure 9(c): kNN query vs k, with d2d index "
             "(30 floors, 100 queries)");
  PrintHeader("objects", {"k=1", "k=50", "k=100", "k=150", "k=200"});
  for (size_t objects : {1000u, 5000u, 10000u, 20000u, 30000u, 40000u,
                         50000u}) {
    const auto engine = MakeEngine(30, objects, /*seed=*/20);
    const auto queries = Queries(engine->plan(), 92 + objects);
    std::vector<double> row;
    for (size_t k : {1u, 50u, 100u, 150u, 200u}) {
      row.push_back(RunKnn(*engine, queries, k, true));
    }
    PrintRow(std::to_string(objects), row);
  }

  std::printf("\nPaper's findings: the index matrix speeds kNN up several "
              "times across all cardinalities (9a), with the gain growing "
              "in building size (9b); larger k costs more but stays in the "
              "low milliseconds (9c).\n");
  return 0;
}
