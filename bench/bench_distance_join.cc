// Indoor distance join scaling: result sizes and times over object count
// and join radius (10-floor building), demonstrating the partition-level
// Md2d pruning.

#include <cstdio>

#include "bench_util.h"
#include "core/query/distance_join.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Indoor distance join (10 floors)");
  std::printf("%-10s%10s%14s%14s%16s\n", "objects", "r (m)", "pairs",
              "time", "us/pair-found");

  for (size_t objects : {500u, 1000u, 2000u, 4000u}) {
    for (double r : {5.0, 15.0}) {
      const auto engine = MakeEngine(10, objects, /*seed=*/88);
      WallTimer timer;
      const auto pairs = DistanceJoin(engine->index(), r);
      const double ms = timer.ElapsedMillis();
      std::printf("%-10zu%10.0f%14zu%11.1f ms%16.2f\n", objects, r,
                  pairs.size(), ms,
                  pairs.empty() ? 0.0 : ms * 1000.0 / pairs.size());
    }
  }
  std::printf("\nReading: the door-level Md2d lower bound prunes partition "
              "pairs wholesale, so cost tracks the number of qualifying "
              "pairs rather than the quadratic object-pair space.\n");
  return 0;
}
