// Reproduces paper Figure 8: range query performance.
//   (a) effect of object count (1K..50K), r = 30 m, 30 floors,
//       with vs without the distance index matrix Midx;
//   (b) effect of floor count (10..40), 10K objects per floor, r = 20 m,
//       with vs without Midx;
//   (c) effect of the range parameter r (10..50 m) across object counts,
//       with Midx.
// Every configuration issues 100 random queries and reports the average
// response time (§VI-B).

#include <cstdio>

#include "bench_util.h"
#include "core/query/range_query.h"

using namespace indoor;
using namespace indoor::bench;

namespace {

std::vector<Point> Queries(const FloorPlan& plan, uint64_t seed) {
  Rng rng(seed);
  return GenerateQueryPositions(plan, 100, &rng);
}

double RunRange(const QueryEngine& engine, const std::vector<Point>& queries,
                double r, bool use_midx) {
  return AvgMillis(queries.size(), [&](size_t i) {
    RangeQuery(engine.index(), queries[i], r,
               {.use_index_matrix = use_midx});
  });
}

}  // namespace

int main() {
  // ---- (a) effect of object number --------------------------------------
  PrintTitle("Figure 8(a): range query vs object count "
             "(r=30m, 30 floors, 100 queries)");
  PrintHeader("objects", {"with d2d index", "without d2d index"});
  for (size_t objects : {1000u, 5000u, 10000u, 20000u, 30000u, 40000u,
                         50000u}) {
    const auto engine = MakeEngine(30, objects, /*seed=*/8);
    const auto queries = Queries(engine->plan(), 80 + objects);
    PrintRow(std::to_string(objects),
             {RunRange(*engine, queries, 30.0, true),
              RunRange(*engine, queries, 30.0, false)});
  }

  // ---- (b) effect of floor number ---------------------------------------
  PrintTitle("Figure 8(b): range query vs floors "
             "(r=20m, 10K objects/floor, 100 queries)");
  PrintHeader("floors", {"with d2d index", "without d2d index"});
  for (int floors : {10, 20, 30, 40}) {
    const auto engine =
        MakeEngine(floors, 10000u * static_cast<size_t>(floors),
                   /*seed=*/9);
    const auto queries = Queries(engine->plan(), 81 + floors);
    PrintRow(std::to_string(floors),
             {RunRange(*engine, queries, 20.0, true),
              RunRange(*engine, queries, 20.0, false)});
  }

  // ---- (c) effect of the query parameter r ------------------------------
  PrintTitle("Figure 8(c): range query vs r, with d2d index "
             "(30 floors, 100 queries)");
  PrintHeader("objects", {"r=10m", "r=20m", "r=30m", "r=40m", "r=50m"});
  for (size_t objects : {1000u, 5000u, 10000u, 20000u, 30000u, 40000u,
                         50000u}) {
    const auto engine = MakeEngine(30, objects, /*seed=*/10);
    const auto queries = Queries(engine->plan(), 82 + objects);
    std::vector<double> row;
    for (double r : {10.0, 20.0, 30.0, 40.0, 50.0}) {
      row.push_back(RunRange(*engine, queries, r, true));
    }
    PrintRow(std::to_string(objects), row);
  }

  std::printf("\nPaper's findings: the index matrix helps moderately for "
              "small ranges (8a), more on taller buildings (8b); response "
              "time grows with r but stays moderate (8c).\n");
  return 0;
}
