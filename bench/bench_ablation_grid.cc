// Ablation: the per-partition grid cell size (paper §V-B leaves the grid
// configuration open). Sweeps the cell edge length and reports range/kNN
// latency on a fixed workload.

#include <cstdio>

#include "bench_util.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Ablation: grid cell size (30 floors, 20K objects, "
             "100 queries)");
  PrintHeader("cell size (m)", {"range r=30m", "kNN k=100"});

  for (double cell : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto engine =
        MakeEngine(30, 20000, /*seed=*/33, IndexOptions{.grid_cell_size = cell});
    Rng rng(34);
    const auto queries = GenerateQueryPositions(engine->plan(), 100, &rng);
    const double range_ms = AvgMillis(queries.size(), [&](size_t i) {
      RangeQuery(engine->index(), queries[i], 30.0);
    });
    const double knn_ms = AvgMillis(queries.size(), [&](size_t i) {
      KnnQuery(engine->index(), queries[i], 100);
    });
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", cell);
    PrintRow(label, {range_ms, knn_ms});
  }
  std::printf("\nReading: very fine grids pay per-cell overhead, very "
              "coarse grids lose pruning; a few meters per cell is the "
              "sweet spot for office-sized partitions.\n");
  return 0;
}
