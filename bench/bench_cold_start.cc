// Cold-start bench: how fast can a server answer its first query from an
// INDOORIX container (index_io.h) compared to rebuilding every structure
// from the floor plan? Three starts are measured for both engine modes
// (flat Md2d/Midx and the partition-contraction hierarchy):
//
//   build — IndexFramework construction from the plan (the no-container
//           path every earlier revision paid on startup);
//   read  — LoadIndexContainer: read the whole file, verify every section
//           checksum, adopt owning copies (the `load.read_ms` gauge);
//   map   — MapIndexContainer: mmap + structural validation only, index
//           arrays borrowed zero-copy from the page cache (the
//           `load.mmap_ms` gauge).
//
// Every loaded/mapped engine is verified bitwise against the built one on
// a randomized pt2pt workload before any number is reported; the binary
// exits non-zero on the first mismatch, so the JSON only ever describes
// engines that serve identical answers. The committed floor for the
// build/map ratio lives in BENCH_baseline.json ("cold_start_ratios"),
// checked by tools/check_bench_regression.py --cold-start.
//
//   bench_cold_start [--smoke] [--json out.json] [--buildings B]
//                    [--floors N] [--seed S] [--runs R] [--out FILE.idx]
//
// --smoke (or INDOOR_BENCH_SMOKE) shrinks the campus so CI exercises the
// full path in seconds; ratios remain meaningful because both sides of
// each ratio are measured on the same machine in the same process.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/index/index_framework.h"
#include "core/index/index_io.h"
#include "core/query/query_engine.h"
#include "gen/building_generator.h"
#include "gen/query_generator.h"
#include "util/timer.h"

using namespace indoor;

namespace {

bool BitEq(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

struct ModeResult {
  std::string mode;
  double file_mb = 0;
  double build_ms = 0;
  double save_ms = 0;
  double read_ms = 0;   // LoadIndexContainer, min over runs
  double map_ms = 0;    // MapIndexContainer, min over runs
  double first_query_ms = 0;  // map + engine ctor + one pt2pt answer
  bool identical = true;
  double build_over_read() const {
    return read_ms > 0 ? build_ms / read_ms : 0;
  }
  double build_over_map() const {
    return map_ms > 0 ? build_ms / map_ms : 0;
  }
};

/// Bitwise pt2pt equality between the freshly built engine and a
/// cold-started one; any mismatch is fatal for the whole bench.
bool VerifyIdentical(const QueryEngine& built, const QueryEngine& cold,
                     const std::vector<std::pair<Point, Point>>& pairs,
                     const char* label) {
  for (const auto& [a, b] : pairs) {
    const double db = built.Distance(a, b);
    const double dc = cold.Distance(a, b);
    if (!BitEq(db, dc)) {
      std::fprintf(stderr,
                   "FATAL: %s cold start diverges from build: %.17g vs "
                   "%.17g\n",
                   label, db, dc);
      return false;
    }
  }
  return true;
}

ModeResult MeasureMode(const FloorPlan& plan, bool hierarchy,
                       const std::string& path, size_t runs, uint64_t seed,
                       bool* ok) {
  ModeResult r;
  r.mode = hierarchy ? "hierarchy" : "flat";
  IndexOptions options;
  options.use_hierarchy = hierarchy;

  WallTimer build_timer;
  QueryEngine built(plan, options);
  r.build_ms = build_timer.ElapsedMillis();

  WallTimer save_timer;
  const Status st = SaveIndexContainer(built.index(), path);
  r.save_ms = save_timer.ElapsedMillis();
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL: save failed: %s\n", st.ToString().c_str());
    *ok = false;
    return r;
  }
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      std::fseek(f, 0, SEEK_END);
      r.file_mb = static_cast<double>(std::ftell(f)) / (1024.0 * 1024.0);
      std::fclose(f);
    }
  }

  Rng rng(seed ^ 0xC01D57A7ULL);
  const auto pairs = GeneratePositionPairs(plan, 40, &rng);

  // Checksummed read path: min over runs (the first run also warms the
  // page cache so `map` below measures the steady state it advertises).
  for (size_t i = 0; i < runs; ++i) {
    WallTimer t;
    auto artifacts = LoadIndexContainer(plan, path);
    const double ms = t.ElapsedMillis();
    if (!artifacts.ok()) {
      std::fprintf(stderr, "FATAL: load failed: %s\n",
                   artifacts.status().ToString().c_str());
      *ok = false;
      return r;
    }
    if (i == 0) {
      IndexOptions cold_options = options;
      cold_options.use_hierarchy = artifacts->hierarchy.has_value();
      QueryEngine cold(plan, std::move(artifacts).value(), cold_options);
      r.identical = VerifyIdentical(built, cold, pairs, "read") &&
                    r.identical;
      r.read_ms = ms;
    } else {
      r.read_ms = std::min(r.read_ms, ms);
    }
  }

  // Zero-copy map path, plus the number a server actually cares about:
  // map + engine construction + the first answered query.
  for (size_t i = 0; i < runs; ++i) {
    WallTimer t;
    auto artifacts = MapIndexContainer(plan, path);
    const double ms = t.ElapsedMillis();
    if (!artifacts.ok()) {
      std::fprintf(stderr, "FATAL: map failed: %s\n",
                   artifacts.status().ToString().c_str());
      *ok = false;
      return r;
    }
    IndexOptions cold_options = options;
    cold_options.use_hierarchy = artifacts->hierarchy.has_value();
    QueryEngine cold(plan, std::move(artifacts).value(), cold_options);
    volatile double sink = cold.Distance(pairs[0].first, pairs[0].second);
    (void)sink;
    const double first_ms = t.ElapsedMillis();
    if (i == 0) {
      r.identical = VerifyIdentical(built, cold, pairs, "map") &&
                    r.identical;
      r.map_ms = ms;
      r.first_query_ms = first_ms;
    } else {
      r.map_ms = std::min(r.map_ms, ms);
      r.first_query_ms = std::min(r.first_query_ms, first_ms);
    }
  }

  if (!r.identical) *ok = false;
  std::remove(path.c_str());
  return r;
}

void PrintRow(const ModeResult& r) {
  std::printf(
      "%-10s %8.2f MB  build %9.2f ms  read %7.3f ms (%6.1fx)  "
      "map %7.3f ms (%6.1fx)  first-query %7.3f ms  %s\n",
      r.mode.c_str(), r.file_mb, r.build_ms, r.read_ms, r.build_over_read(),
      r.map_ms, r.build_over_map(), r.first_query_ms,
      r.identical ? "identical" : "MISMATCH");
}

void WriteJson(const std::string& path, bool smoke, int buildings,
               int floors, uint64_t seed, size_t doors,
               const std::vector<ModeResult>& modes) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"cold_start\",\n  \"smoke\": %s,\n"
               "  \"buildings\": %d,\n  \"floors\": %d,\n"
               "  \"seed\": %llu,\n  \"doors\": %zu,\n  \"modes\": {\n",
               smoke ? "true" : "false", buildings, floors,
               static_cast<unsigned long long>(seed), doors);
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& r = modes[i];
    std::fprintf(f,
                 "    \"%s\": {\"file_mb\": %.3f, \"build_ms\": %.3f, "
                 "\"save_ms\": %.3f, \"read_ms\": %.3f, \"map_ms\": %.3f, "
                 "\"first_query_ms\": %.3f, \"build_over_read\": %.2f, "
                 "\"build_over_map\": %.2f, \"identical\": %s}%s\n",
                 r.mode.c_str(), r.file_mb, r.build_ms, r.save_ms, r.read_ms,
                 r.map_ms, r.first_query_ms, r.build_over_read(),
                 r.build_over_map(), r.identical ? "true" : "false",
                 i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"metrics\": %s}\n",
               indoor::bench::MetricsJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = indoor::bench::SmokeMode();
  int buildings = 3;
  int floors = 6;
  uint64_t seed = 42;
  size_t runs = 5;
  std::string json_path;
  std::string idx_path = "bench_cold_start.idx";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--buildings") {
      buildings = std::stoi(next());
    } else if (arg == "--floors") {
      floors = std::stoi(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--runs") {
      runs = std::stoul(next());
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--out") {
      idx_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json out.json] [--buildings B] "
                   "[--floors N] [--seed S] [--runs R] [--out FILE.idx]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    buildings = std::min(buildings, 2);
    floors = std::min(floors, 2);
    runs = std::min<size_t>(runs, 3);
  }

  CampusConfig config;
  config.buildings = buildings;
  config.building.floors = floors;
  config.building.rooms_per_floor = smoke ? 8 : 20;
  config.seed = seed;
  config.building.seed = seed;
  const FloorPlan plan = GenerateCampus(config);
  std::printf("campus: %d buildings x %d floors, %zu partitions, "
              "%zu doors\n",
              buildings, floors, plan.partition_count(), plan.door_count());

  bool ok = true;
  std::vector<ModeResult> modes;
  modes.push_back(MeasureMode(plan, /*hierarchy=*/false, idx_path, runs,
                              seed, &ok));
  if (ok) PrintRow(modes.back());
  if (ok) {
    modes.push_back(MeasureMode(plan, /*hierarchy=*/true, idx_path, runs,
                                seed, &ok));
    if (ok) PrintRow(modes.back());
  }
  if (!json_path.empty() && ok) {
    WriteJson(json_path, smoke, buildings, floors, seed, plan.door_count(),
              modes);
  }
  return ok ? 0 : 1;
}
