// Approximate-kNN quality/throughput bench: recall@k and single-thread QPS
// of the embedding tier (core/index/approx_knn.h) against the exact kNN
// path it shortcuts, swept across k, the candidate over-provisioning
// factor, and the landmark count the embeddings derive from.
//
//   bench_recall [--floors N] [--objects N] [--queries N]
//                [--ks 1,10,50] [--factors 2,4,8]
//                [--landmark-counts 8,16,32] [--obstacles P]
//                [--no-campus] [--seed S] [--json out.json] [--smoke]
//
// Per (scenario, landmark count) one framework is built with the
// approximate tier enabled; every (k, factor) cell then runs the identical
// query positions through the exact path (KnnQueryOptions::use_approx off)
// and the approximate path (per-query factor override), so the recall and
// the QPS ratio compare the same workload on the same warmed index. Exact
// results are the ground truth: recall@k = |approx ∩ exact| / |exact|
// averaged over queries (queries with no reachable object are skipped).
// The approximate path exact-re-ranks its candidates, so every id it
// returns carries the true distance — recall is the only quality axis.
//
// The JSON's "summary" member carries the gating cell — the tier's
// operating point: among the building scenario's k = 10 rows with recall
// >= 0.99, the best approx/exact QPS ratio.
// tools/check_bench_regression.py --recall enforces its floors
// (recall@10 and the QPS ratio) against BENCH_baseline.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/query/knn_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "util/metrics.h"
#include "util/timer.h"

using namespace indoor;

namespace {

struct Row {
  std::string scenario;
  size_t landmarks = 0;
  size_t k = 0;
  unsigned factor = 0;
  double recall = 0;
  double exact_qps = 0;
  double approx_qps = 0;
  double ratio = 0;
  uint64_t served = 0;
  uint64_t fallbacks = 0;
};

std::vector<unsigned> ParseList(const std::string& s) {
  std::vector<unsigned> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(
        static_cast<unsigned>(std::stoul(s.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

uint64_t CounterValue(const char* name) {
#ifdef INDOOR_METRICS_ENABLED
  return metrics::MetricsRegistry::Global().GetCounter(name).Value();
#else
  (void)name;
  return 0;
#endif
}

void WriteJson(const std::string& path, bool smoke, uint64_t seed,
               int floors, size_t objects, size_t queries,
               const Row& summary, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"recall\",\n  \"smoke\": %s,\n"
               "  \"seed\": %llu,\n  \"floors\": %d,\n"
               "  \"objects\": %zu,\n  \"queries\": %zu,\n"
               "  \"summary\": {\"scenario\": \"%s\", \"landmarks\": %zu, "
               "\"k\": %zu, \"factor\": %u, \"recall_at_k\": %.4f, "
               "\"exact_qps\": %.1f, \"approx_qps\": %.1f, "
               "\"qps_ratio\": %.3f},\n  \"results\": [\n",
               smoke ? "true" : "false",
               static_cast<unsigned long long>(seed), floors, objects,
               queries, summary.scenario.c_str(), summary.landmarks,
               summary.k, summary.factor, summary.recall,
               summary.exact_qps, summary.approx_qps, summary.ratio);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"landmarks\": %zu, "
                 "\"k\": %zu, \"factor\": %u, \"recall\": %.4f, "
                 "\"exact_qps\": %.1f, \"approx_qps\": %.1f, "
                 "\"ratio\": %.3f, \"served\": %llu, "
                 "\"fallbacks\": %llu}%s\n",
                 r.scenario.c_str(), r.landmarks, r.k, r.factor, r.recall,
                 r.exact_qps, r.approx_qps, r.ratio,
                 static_cast<unsigned long long>(r.served),
                 static_cast<unsigned long long>(r.fallbacks),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"metrics\": %s}\n",
               indoor::bench::MetricsJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults pick the regime the tier targets: a large building with a
  // SPARSE object population (fewer objects than rooms), where the exact
  // path must expand doors across many partitions before it collects k
  // candidates while the embedding scan stays small. Dense populations
  // (--objects 10000 --floors 10) invert the ratio — the exact Midx walk
  // finds k neighbors after touching a handful of partitions — and the
  // sweep documents that too (docs/BENCHMARKS.md).
  int floors = 40;
  size_t objects = 300;
  size_t queries = 400;
  // Obstructed rooms make the per-query candidate legs geodesic solves —
  // the serving cost the precomputed embeddings amortize away; 0
  // degenerates every intra distance to a straight line and flatters the
  // exact path (same knob and default as bench_query_throughput).
  double obstacles = 0.5;
  bool campus = true;
  uint64_t seed = 42;
  std::vector<unsigned> ks{1, 10, 50};
  std::vector<unsigned> factors{1, 2, 4, 8};
  std::vector<unsigned> landmark_counts{8, 16, 32};
  std::string json_path;
  bool smoke = indoor::bench::SmokeMode();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--floors") {
      floors = std::stoi(next());
    } else if (arg == "--objects") {
      objects = std::stoul(next());
    } else if (arg == "--queries") {
      queries = std::stoul(next());
    } else if (arg == "--ks") {
      ks = ParseList(next());
    } else if (arg == "--factors") {
      factors = ParseList(next());
    } else if (arg == "--landmark-counts") {
      landmark_counts = ParseList(next());
    } else if (arg == "--obstacles") {
      obstacles = std::stod(next());
    } else if (arg == "--no-campus") {
      campus = false;
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (smoke) {
    floors = 2;
    objects = 400;
    queries = 30;
    ks = {10};
    factors = {4};
    landmark_counts = {8};
    campus = false;
  }
  if (ks.empty() || factors.empty() || landmark_counts.empty()) {
    std::fprintf(stderr, "--ks/--factors/--landmark-counts need entries\n");
    return 2;
  }

  struct Scenario {
    std::string name;
    FloorPlan plan;
  };
  std::vector<Scenario> scenarios;
  {
    BuildingConfig config;
    config.floors = floors;
    config.rooms_per_floor = smoke ? 8 : 30;
    config.obstacle_probability = obstacles;
    config.seed = seed;
    scenarios.push_back({"building", GenerateBuilding(config)});
    if (campus) {
      CampusConfig cc;
      cc.buildings = 3;
      cc.building = config;
      cc.building.floors = std::max(2, floors / 2);
      cc.seed = seed;
      scenarios.push_back({"campus", GenerateCampus(cc)});
    }
  }

  std::vector<Row> rows;
  std::printf("%-10s %6s %5s %7s %9s %12s %12s %8s\n", "scenario", "lms",
              "k", "factor", "recall", "exact QPS", "approx QPS", "ratio");
  for (const Scenario& scenario : scenarios) {
    for (const unsigned lm : landmark_counts) {
      IndexOptions options;
      options.build_threads = 0;
      options.use_landmarks = true;
      options.landmark_count = lm;
      options.approx_knn = true;
      IndexFramework index(scenario.plan, options);
      Rng rng(seed * 31 + 7);
      PopulateStore(GenerateObjects(scenario.plan, objects, &rng),
                    &index.objects());
      index.RefreshApproxKnn();
      const auto positions =
          GenerateQueryPositions(scenario.plan, queries, &rng);

      for (const unsigned k : ks) {
        // Untimed ground-truth pass (also faults in every lazily built
        // structure, so no pass pays first-touch costs).
        KnnQueryOptions exact_opts;
        exact_opts.use_approx = false;
        std::vector<std::vector<ObjectId>> truth(positions.size());
        for (size_t q = 0; q < positions.size(); ++q) {
          const auto neighbors = KnnQuery(index, positions[q], k,
                                          exact_opts);
          truth[q].reserve(neighbors.size());
          for (const Neighbor& n : neighbors) truth[q].push_back(n.id);
          std::sort(truth[q].begin(), truth[q].end());
        }

        // Both timed passes start from a dropped cache: the workload is
        // all-distinct queries, so a result-cache hit on the position a
        // prior pass already served would measure the cache, not the
        // algorithm (the approximate path bypasses the result cache by
        // design — cached entries must stay exact).
        size_t sink = 0;
        if (index.query_cache() != nullptr) {
          index.query_cache()->Invalidate();
        }
        WallTimer exact_timer;
        for (const Point& p : positions) {
          sink += KnnQuery(index, p, k, exact_opts).size();
        }
        const double exact_millis = exact_timer.ElapsedMillis();
        const double exact_qps =
            positions.size() / (exact_millis / 1000.0);

        for (const unsigned factor : factors) {
          KnnQueryOptions approx_opts;
          approx_opts.use_approx = true;
          approx_opts.approx_candidate_factor = factor;
          const uint64_t served0 = CounterValue("knn.approx.served");
          const uint64_t fall0 = CounterValue("knn.approx.exact_fallback");
          double hit = 0;
          size_t graded = 0;
          if (index.query_cache() != nullptr) {
            index.query_cache()->Invalidate();
          }
          WallTimer approx_timer;
          for (size_t q = 0; q < positions.size(); ++q) {
            const auto neighbors =
                KnnQuery(index, positions[q], k, approx_opts);
            sink += neighbors.size();
            if (truth[q].empty()) continue;
            size_t both = 0;
            for (const Neighbor& n : neighbors) {
              both += std::binary_search(truth[q].begin(), truth[q].end(),
                                         n.id)
                          ? 1
                          : 0;
            }
            hit += static_cast<double>(both) /
                   static_cast<double>(truth[q].size());
            ++graded;
          }
          const double approx_millis = approx_timer.ElapsedMillis();

          Row row;
          row.scenario = scenario.name;
          row.landmarks = lm;
          row.k = k;
          row.factor = factor;
          row.recall = graded > 0 ? hit / static_cast<double>(graded) : 1.0;
          row.exact_qps = exact_qps;
          row.approx_qps = positions.size() / (approx_millis / 1000.0);
          row.ratio =
              exact_qps > 0 ? row.approx_qps / exact_qps : 0.0;
          row.served = CounterValue("knn.approx.served") - served0;
          row.fallbacks = CounterValue("knn.approx.exact_fallback") - fall0;
          rows.push_back(row);
          std::printf(
              "%-10s %6zu %5zu %7u %9.4f %12.0f %12.0f %7.2fx\n",
              row.scenario.c_str(), row.landmarks, row.k, row.factor,
              row.recall, row.exact_qps, row.approx_qps, row.ratio);
        }
        if (sink == SIZE_MAX) std::printf("\n");  // keep loops observable
      }
    }
  }

  // The gating cell: the tier's operating point. Among the building
  // scenario's k = 10 rows (the paper's default k) that clear the 0.99
  // recall operating floor, the best QPS ratio — the configuration an
  // operator would actually deploy, which the sweep exists to find. When
  // no row clears the floor the best-recall row is reported instead (and
  // the regression gate fails on its recall, as it should).
  const size_t gate_k = std::count(ks.begin(), ks.end(), 10u) > 0
                            ? 10u
                            : static_cast<size_t>(ks.back());
  constexpr double kOperatingRecall = 0.99;
  const Row* summary = nullptr;
  const Row* best_recall = nullptr;
  for (const Row& r : rows) {
    if (r.scenario != "building" || r.k != gate_k) continue;
    if (best_recall == nullptr || r.recall > best_recall->recall) {
      best_recall = &r;
    }
    if (r.recall < kOperatingRecall) continue;
    if (summary == nullptr || r.ratio > summary->ratio) summary = &r;
  }
  if (summary == nullptr) summary = best_recall;
  if (summary == nullptr) summary = &rows.front();
  std::printf(
      "\nsummary: scenario=%s landmarks=%zu k=%zu factor=%u "
      "recall=%.4f qps_ratio=%.2fx\n",
      summary->scenario.c_str(), summary->landmarks, summary->k,
      summary->factor, summary->recall, summary->ratio);

  if (!json_path.empty()) {
    WriteJson(json_path, smoke, seed, floors, objects, queries, *summary,
              rows);
  }
  return 0;
}
