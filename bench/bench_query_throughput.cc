// Concurrent query serving bench: aggregate queries-per-second of the
// read path (range + kNN + pt2pt distance over one shared immutable
// IndexFramework) as the number of reader threads grows — the
// multi-reader scaling picture the road-network kNN study and the NMSLIB
// manual both report for credible in-memory index comparisons.
//
//   bench_query_throughput [--floors N] [--objects N] [--readers 1,2,4,8]
//                          [--queries-per-reader N] [--positions N]
//                          [--zipf THETA] [--cache on|off] [--batch B]
//                          [--queue heap|bucket] [--landmarks on|off]
//                          [--no-midx] [--knn-approx] [--candidates F]
//                          [--landmark-count N]
//                          [--obstacles P] [--mix all|distance|range|knn]
//                          [--move-rate R] [--move-batch M]
//                          [--seed S] [--json out.json] [--smoke]
//                          [--query-log out.qlog]
//                          [--record out.rec] [--record-interval-ms N]
//
// One query = one operation (range, kNN or pt2pt distance, cycling).
// Query positions are drawn from a pool of `--positions` distinct points;
// `--zipf THETA` skews which pool entries are drawn (rank-based Zipf,
// theta 0 = uniform) to model hot-spot serving workloads — the regime the
// cross-query cache (--cache on, the default) targets. `--batch B` routes
// the workload through BatchExecutor in batches of B requests instead of
// the free-running reader loop; both modes execute the identical request
// sequence for a given seed, so ON-vs-OFF and loop-vs-batch QPS ratios
// compare like against like.
//
// Readers are ThreadPool workers; every query's result is checksummed so
// the optimizer cannot elide the work. Correctness under concurrency is
// covered by concurrency_test and query_cache_test; this binary only
// measures throughput.
//
// `--move-rate R` mixes updates into the workload: R object moves per
// served query, applied as ingest batches (ApplyMoveBatch) between query
// batches — the update-heavy serving regime the partition-scoped epoch
// invalidation targets. Requires `--batch` (the free-running reader loop
// has no write-safe interleave point). The move schedule comes from a
// dedicated generator seeded only by --seed and is re-seeded per reader
// row, so cache ON and OFF runs of the same flags execute the identical
// mixed schedule and their peak_qps ratio compares like against like.
//
// `--query-log out.qlog` keeps the structured query log (util/query_log.h)
// enabled for the whole run, writing every query's record to the capture.
// Comparing QPS with and without the flag on an otherwise identical
// invocation measures the logging overhead (docs/BENCHMARKS.md).
//
// `--record out.rec` runs the flight recorder (util/timeseries.h) for the
// whole run and dumps the ring on exit; the per-interval QPS/p99 series is
// also embedded in the --json output under "recording", so a bench JSON
// carries its own time-resolved picture (warmup, move-ingest dips) next to
// the aggregate rows. Requires a library built with INDOOR_METRICS=ON —
// an OFF build fails loudly rather than writing an empty recording.
//
// `--knn-approx` opts the index into the approximate-kNN embedding tier
// (with `--candidates F` controlling the re-rank budget and
// `--landmark-count N` the embedding width); kNN requests in the mix are
// then served from the tier. Recall is NOT measured here — bench_recall
// owns the recall/QPS tradeoff — so this flag exists to observe the
// tier's effect on the mixed-serving picture. Incompatible with
// --query-log: captures must hold exact digests for replay.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/query/batch_executor.h"
#include "core/query/knn_query.h"
#include "core/query/query_cache.h"
#include "core/query/range_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "util/query_log.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/timeseries.h"

using namespace indoor;

namespace {

struct Row {
  unsigned readers = 1;
  double millis = 0;
  double qps = 0;
  double scaling = 1.0;  // qps / single-reader qps
};

std::vector<unsigned> ParseList(const std::string& s) {
  std::vector<unsigned> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(
        static_cast<unsigned>(std::stoul(s.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

/// The per-interval series of a flight recording as a JSON array:
/// interval QPS plus the p99 over all query kinds merged (the per-kind
/// latency histograms share one bucket layout, so their deltas add).
std::string RecordingSeriesJson(const tseries::Recording& recording) {
  std::string out = "[";
  bool first = true;
  for (const tseries::IntervalSample& sample : recording.samples) {
    const tseries::IntervalStats stats =
        tseries::ComputeIntervalStats(sample);
    metrics::HistogramSnapshot merged;
    for (const metrics::HistogramSnapshot& hist : sample.delta.histograms) {
      if (hist.name.rfind("query.", 0) != 0 ||
          hist.name.size() < 11 ||
          hist.name.compare(hist.name.size() - 11, 11, ".latency_ns") != 0) {
        continue;
      }
      if (merged.buckets.empty()) {
        merged = hist;
        continue;
      }
      merged.count += hist.count;
      merged.sum += hist.sum;
      merged.max = std::max(merged.max, hist.max);
      for (size_t i = 0;
           i < merged.buckets.size() && i < hist.buckets.size(); ++i) {
        merged.buckets[i] += hist.buckets[i];
      }
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s\n      {\"start_us\": %llu, \"duration_us\": %llu, "
                  "\"qps\": %.1f, \"p99_us\": %.1f}",
                  first ? "" : ",",
                  static_cast<unsigned long long>(sample.start_us),
                  static_cast<unsigned long long>(sample.duration_us),
                  stats.qps,
                  merged.count > 0 ? merged.Percentile(0.99) / 1e3 : 0.0);
    out += buf;
    first = false;
  }
  out += first ? "]" : "\n    ]";
  return out;
}

void WriteJson(const std::string& path, int floors, size_t objects,
               size_t queries, size_t positions, double zipf, bool cache,
               size_t batch, const std::string& mix, uint64_t seed,
               bool bucket_queue, bool landmarks, bool no_midx,
               bool knn_approx, const std::vector<Row>& rows,
               bool query_log,
               double move_rate, size_t moves, uint64_t repairs,
               uint64_t epoch_rejects,
               const tseries::Recording* recording) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  double peak_qps = 0;
  for (const Row& r : rows) peak_qps = std::max(peak_qps, r.qps);
  std::fprintf(f,
               "{\n  \"bench\": \"query_throughput\",\n"
               "  \"floors\": %d,\n  \"objects\": %zu,\n"
               "  \"queries_per_reader\": %zu,\n  \"positions\": %zu,\n"
               "  \"zipf\": %.3f,\n  \"cache\": %s,\n  \"batch\": %zu,\n"
               "  \"mix\": \"%s\",\n  \"queue\": \"%s\",\n"
               "  \"landmarks\": %s,\n  \"no_midx\": %s,\n"
               "  \"knn_approx\": %s,\n"
               "  \"query_log\": %s,\n"
               "  \"move_rate\": %.3f,\n  \"moves\": %zu,\n"
               "  \"repairs\": %llu,\n"
               "  \"epoch_rejects\": %llu,\n"
               "  \"seed\": %llu,\n  \"peak_qps\": %.1f,\n  \"results\": [\n",
               floors, objects, queries, positions, zipf,
               cache ? "true" : "false", batch, mix.c_str(),
               bucket_queue ? "bucket" : "heap",
               landmarks ? "true" : "false", no_midx ? "true" : "false",
               knn_approx ? "true" : "false",
               query_log ? "true" : "false", move_rate, moves,
               static_cast<unsigned long long>(repairs),
               static_cast<unsigned long long>(epoch_rejects),
               static_cast<unsigned long long>(seed), peak_qps);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"readers\": %u, \"millis\": %.3f, \"qps\": %.1f, "
                 "\"scaling\": %.3f}%s\n",
                 r.readers, r.millis, r.qps, r.scaling,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (recording != nullptr) {
    std::fprintf(f,
                 "  \"recording\": {\"interval_ms\": %u, \"intervals\": "
                 "%zu, \"series\": %s},\n",
                 recording->interval_ms, recording->samples.size(),
                 RecordingSeriesJson(*recording).c_str());
  }
  std::fprintf(f, "  \"metrics\": %s}\n",
               indoor::bench::MetricsJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// The request sequence for one reader-count configuration: depends only
/// on (seed, theta, total, pool sizes), never on cache/batch settings, so
/// every configuration of the same workload executes identical queries.
std::vector<QueryRequest> BuildRequests(
    size_t total, double zipf, uint64_t seed, const std::string& mix,
    const std::vector<Point>& positions,
    const std::vector<std::pair<Point, Point>>& pairs) {
  Rng rng(seed * 1000003 + 17);
  const ZipfSampler position_skew(positions.size(), zipf);
  const ZipfSampler pair_skew(pairs.size(), zipf);
  std::vector<QueryRequest> requests;
  requests.reserve(total);
  for (size_t q = 0; q < total; ++q) {
    QueryRequest request;
    // "all" cycles the three kinds; a single-kind mix isolates one path
    // (e.g. --mix distance is the locator-probe + source-field dominated
    // regime where the cross-query cache pays off most).
    const size_t kind_index = mix == "all"        ? q % 3
                              : mix == "range"    ? 0
                              : mix == "knn"      ? 1
                                                  : 2;
    switch (kind_index) {
      case 0:
        request.kind = QueryRequest::Kind::kRange;
        request.a = positions[position_skew.Sample(&rng)];
        request.radius = 20.0;
        break;
      case 1:
        request.kind = QueryRequest::Kind::kKnn;
        request.a = positions[position_skew.Sample(&rng)];
        request.k = 10;
        break;
      default: {
        request.kind = QueryRequest::Kind::kDistance;
        const auto& [a, b] = pairs[pair_skew.Sample(&rng)];
        request.a = a;
        request.b = b;
        break;
      }
    }
    requests.push_back(request);
  }
  return requests;
}

size_t ResultChecksum(const QueryResult& result) {
  size_t checksum = result.ids.size() + result.neighbors.size();
  if (result.distance < kInfDistance) ++checksum;
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  int floors = 10;
  size_t objects = 10000;
  size_t queries_per_reader = 200;
  size_t position_count = 256;
  double zipf = 0.0;
  bool cache = true;
  bool bucket_queue = true;
  bool landmarks = true;
  bool no_midx = false;
  size_t batch = 0;  // 0 = free-running reader loop
  // Obstructed rooms make the per-query source-field legs geodesic solves
  // (the dominant serving cost in realistic plans, and what the
  // cross-query cache collapses); 0 degenerates them to straight lines.
  double obstacles = 0.5;
  std::string mix = "all";
  double move_rate = 0.0;
  size_t move_batch = 0;  // 0 = all moves due after a query batch
  bool knn_approx = false;
  size_t candidate_factor = 0;  // 0 = keep the IndexOptions default
  size_t landmark_count = 0;    // 0 = auto-scale with the door count
  uint64_t seed = 42;
  std::vector<unsigned> reader_list{1, 2, 4, 8};
  std::string json_path;
  std::string query_log_path;
  std::string record_path;
  uint32_t record_interval_ms = 250;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--floors") {
      floors = std::stoi(next());
    } else if (arg == "--objects") {
      objects = std::stoul(next());
    } else if (arg == "--queries-per-reader") {
      queries_per_reader = std::stoul(next());
    } else if (arg == "--positions") {
      position_count = std::stoul(next());
    } else if (arg == "--zipf") {
      zipf = std::stod(next());
    } else if (arg == "--cache") {
      cache = next() != "off";
    } else if (arg == "--queue") {
      const std::string v = next();
      if (v != "heap" && v != "bucket") {
        std::fprintf(stderr, "--queue must be heap|bucket\n");
        return 2;
      }
      bucket_queue = v == "bucket";
    } else if (arg == "--landmarks") {
      landmarks = next() != "off";
    } else if (arg == "--knn-approx") {
      knn_approx = true;
    } else if (arg == "--candidates") {
      candidate_factor = std::stoul(next());
    } else if (arg == "--landmark-count") {
      landmark_count = std::stoul(next());
    } else if (arg == "--no-midx") {
      // Route range/kNN through the full Md2d-row scan instead of the
      // nearest-first Midx walk. That scan is where the ALT landmark
      // pruning hook fires, so the landmarks ON-vs-OFF pairing gates the
      // pruning benefit rather than a no-op. Free-running loop only.
      no_midx = true;
    } else if (arg == "--batch") {
      batch = std::stoul(next());
    } else if (arg == "--obstacles") {
      obstacles = std::stod(next());
    } else if (arg == "--mix") {
      mix = next();
      if (mix != "all" && mix != "distance" && mix != "range" &&
          mix != "knn") {
        std::fprintf(stderr, "--mix must be all|distance|range|knn\n");
        return 2;
      }
    } else if (arg == "--move-rate") {
      move_rate = std::stod(next());
    } else if (arg == "--move-batch") {
      move_batch = std::stoul(next());
    } else if (arg == "--readers") {
      reader_list = ParseList(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--query-log") {
      query_log_path = next();
    } else if (arg == "--record") {
      record_path = next();
    } else if (arg == "--record-interval-ms") {
      record_interval_ms = static_cast<uint32_t>(std::stoul(next()));
    } else if (arg == "--smoke") {
      floors = 2;
      objects = 500;
      queries_per_reader = 8;
      reader_list = {1, 2};
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (move_rate > 0 && batch == 0) {
    std::fprintf(stderr,
                 "--move-rate requires --batch: moves interleave between "
                 "executor batches, and the free-running reader loop has "
                 "no write-safe point to apply them\n");
    return 2;
  }
  if (knn_approx && !query_log_path.empty()) {
    std::fprintf(stderr,
                 "--knn-approx is incompatible with --query-log: the "
                 "capture's digests replay against the exact path\n");
    return 2;
  }
  if (no_midx && batch > 0) {
    std::fprintf(stderr,
                 "--no-midx only applies to the free-running reader loop "
                 "(BatchExecutor requests carry no per-query options)\n");
    return 2;
  }

  BuildingConfig config;
  config.floors = floors;
  config.rooms_per_floor = 30;
  config.obstacle_probability = obstacles;
  config.seed = seed;
  IndexOptions options;
  options.build_threads = 0;  // build as fast as the hardware allows
  options.enable_query_cache = cache;
  options.use_bucket_queue = bucket_queue;
  options.use_landmarks = landmarks;
  options.approx_knn = knn_approx;
  if (knn_approx) options.use_landmarks = true;  // embeddings need rows
  if (candidate_factor > 0) {
    options.approx_candidate_factor =
        static_cast<unsigned>(candidate_factor);
  }
  options.landmark_count = static_cast<unsigned>(landmark_count);
  const FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan, options);
  Rng rng(seed * 31 + 7);
  PopulateStore(GenerateObjects(plan, objects, &rng), &index.objects());
  if (knn_approx) index.RefreshApproxKnn();
  const auto positions = GenerateQueryPositions(plan, position_count, &rng);
  const auto pairs = GeneratePositionPairs(plan, position_count, &rng);
  const std::string mode =
      batch ? "batch " + std::to_string(batch) : std::string("reader loop");
  std::printf(
      "building: %d floors, %zu doors, %zu objects | %zu positions, "
      "zipf %.2f, cache %s, queue %s, landmarks %s, knn-approx %s, %s, "
      "move rate %.2f\n",
      floors, plan.door_count(), objects, position_count, zipf,
      cache ? "on" : "off", bucket_queue ? "bucket" : "heap",
      landmarks ? "on" : "off", knn_approx ? "on" : "off", mode.c_str(),
      move_rate);
  const PartitionSampler move_sampler(plan);
  size_t total_moves = 0;

  auto run_request = [&](const QueryRequest& request,
                         QueryScratch* scratch) -> size_t {
    switch (request.kind) {
      case QueryRequest::Kind::kRange: {
        RangeQueryOptions ropts;
        ropts.use_index_matrix = !no_midx;
        return RangeQuery(index, request.a, request.radius, ropts, scratch)
            .size();
      }
      case QueryRequest::Kind::kKnn: {
        KnnQueryOptions kopts;
        kopts.use_index_matrix = !no_midx;
        return KnnQuery(index, request.a, request.k, kopts, scratch).size();
      }
      case QueryRequest::Kind::kDistance:
        return Pt2PtDistanceMatrix(index.locator(), index.d2d_matrix(),
                                   request.a, request.b, scratch,
                                   index.query_cache()) < kInfDistance
                   ? 1
                   : 0;
    }
    return 0;
  };

  if (!query_log_path.empty()) {
    qlog::QueryLogOptions log_options;
    log_options.path = query_log_path;
    log_options.context = "source=bench_query_throughput\nseed=" +
                          std::to_string(seed) + "\n";
    const Status status = qlog::QueryLog::Global().Enable(log_options);
    if (!status.ok()) {
      std::fprintf(stderr, "--query-log: %s\n", status.message().c_str());
      return 1;
    }
  }

  tseries::FlightRecorder& recorder = tseries::FlightRecorder::Global();
  if (!record_path.empty()) {
    tseries::FlightRecorderOptions fropts;
    fropts.interval_ms = record_interval_ms;
    fropts.hotness = &index.hotness();
    fropts.context = "source=bench_query_throughput\nseed=" +
                     std::to_string(seed) +
                     "\ncache=" + (cache ? "on" : "off") +
                     "\nmix=" + mix + "\n";
    const Status status = recorder.Start(fropts);
    if (!status.ok()) {
      // Metrics-OFF builds land here: fail loudly, never write a file
      // that looks like a (suspiciously idle) healthy recording.
      std::fprintf(stderr, "--record: %s\n", status.message().c_str());
      return 1;
    }
  }

  std::vector<Row> rows;
  std::printf("%8s %12s %14s %10s\n", "readers", "wall(ms)", "QPS",
              "scaling");
  for (unsigned readers : reader_list) {
    const size_t total = queries_per_reader * readers;
    const auto requests =
        BuildRequests(total, zipf, seed, mix, positions, pairs);
    size_t checksum = 0;
    double millis = 0;
    if (batch > 0) {
      // Move schedule: re-seeded per reader row and independent of the
      // request stream, so every cache/log configuration of the same
      // flags replays the identical interleave of reads and writes.
      Rng move_rng(seed ^ 0x6d6f76657321ull);
      double move_due = 0.0;
      std::vector<MoveOp> moves;
      BatchExecutor executor(index, readers);
      WallTimer timer;
      for (size_t begin = 0; begin < requests.size(); begin += batch) {
        const size_t n = std::min(batch, requests.size() - begin);
        const auto results = executor.Run(
            std::span<const QueryRequest>(requests.data() + begin, n));
        for (const QueryResult& result : results) {
          checksum += ResultChecksum(result);
        }
        if (move_rate > 0) {
          move_due += static_cast<double>(n) * move_rate;
          // Coalesced ingest: wait for a FULL move batch before stalling
          // readers. Dribbling due moves one query-batch at a time would
          // bump epochs (and re-stale the hot cached set) several times
          // more often for the same aggregate move rate — batching the
          // writes is what amortizes the invalidation cost.
          const double fire_at =
              move_batch > 0 ? static_cast<double>(move_batch) : 1.0;
          while (move_due >= fire_at) {
            size_t m = static_cast<size_t>(move_due);
            if (move_batch > 0) m = std::min(m, move_batch);
            moves.clear();
            moves.reserve(m);
            for (size_t i = 0; i < m; ++i) {
              const PartitionId target = move_sampler.Sample(&move_rng);
              moves.push_back(MoveOp{
                  static_cast<ObjectId>(move_rng.NextIndex(objects)),
                  target,
                  RandomPointInPartition(plan.partition(target),
                                         &move_rng)});
            }
            std::stable_sort(moves.begin(), moves.end(),
                             [](const MoveOp& a, const MoveOp& b) {
                               return a.partition < b.partition;
                             });
            const Status status = ApplyMoveBatch(index, moves);
            if (!status.ok()) {
              std::fprintf(stderr, "move batch failed: %s\n",
                           status.message().c_str());
              return 1;
            }
            total_moves += m;
            move_due -= static_cast<double>(m);
          }
        }
      }
      millis = timer.ElapsedMillis();
    } else {
      std::atomic<size_t> next_query{0};
      std::atomic<size_t> sink{0};
      ThreadPool pool(readers);
      WallTimer timer;
      for (unsigned t = 0; t < readers; ++t) {
        pool.Submit([&] {
          size_t local = 0;
          for (size_t q = next_query++; q < total; q = next_query++) {
            local += run_request(requests[q], nullptr);
          }
          sink += local;
        });
      }
      pool.Wait();
      millis = timer.ElapsedMillis();
      checksum = sink.load();
    }
    Row row;
    row.readers = readers;
    row.millis = millis;
    row.qps = total / (row.millis / 1000.0);
    row.scaling = rows.empty() ? 1.0 : row.qps / rows.front().qps;
    rows.push_back(row);
    std::printf("%8u %12.1f %14.0f %9.2fx   (checksum %zu)\n", row.readers,
                row.millis, row.qps, row.scaling, checksum);
  }

  if (!query_log_path.empty()) {
    qlog::QueryLog::Global().Disable();
    std::printf("query log: %llu records -> %s\n",
                static_cast<unsigned long long>(
                    qlog::QueryLog::Global().records_written()),
                query_log_path.c_str());
  }

  tseries::Recording recording;
  if (recorder.running()) {
    recorder.Stop();  // folds the final partial interval
    recording = recorder.Snapshot();
    const Status status = tseries::WriteRecordingFile(recording, record_path);
    if (!status.ok()) {
      std::fprintf(stderr, "--record: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("recording: %zu intervals -> %s\n", recording.samples.size(),
                record_path.c_str());
  }

  const QueryCache* query_cache = index.query_cache();
  const uint64_t epoch_rejects =
      query_cache != nullptr ? query_cache->EpochRejects() : 0;
  const uint64_t repairs =
      query_cache != nullptr ? query_cache->Repairs() : 0;
  if (total_moves > 0) {
    std::printf(
        "moves: %zu applied, %llu cached results repaired, "
        "%llu epoch-rejected\n",
        total_moves, static_cast<unsigned long long>(repairs),
        static_cast<unsigned long long>(epoch_rejects));
  }

  if (!json_path.empty()) {
    WriteJson(json_path, floors, objects, queries_per_reader,
              position_count, zipf, cache, batch, mix, seed, bucket_queue,
              landmarks, no_midx, knn_approx, rows,
              !query_log_path.empty(), move_rate,
              total_moves, repairs, epoch_rejects,
              recording.samples.empty() ? nullptr : &recording);
  }
  return 0;
}
