// Concurrent query serving bench: aggregate queries-per-second of the
// read path (range + kNN + pt2pt distance over one shared immutable
// IndexFramework) as the number of reader threads grows — the
// multi-reader scaling picture the road-network kNN study and the NMSLIB
// manual both report for credible in-memory index comparisons.
//
//   bench_query_throughput [--floors N] [--objects N] [--readers 1,2,4,8]
//                          [--queries-per-reader N] [--seed S]
//                          [--json out.json] [--smoke]
//
// Readers are ThreadPool workers; each claims whole queries round-robin
// and every query's result is checksummed so the optimizer cannot elide
// the work. Correctness under concurrency is covered by concurrency_test;
// this binary only measures throughput.

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "gen/query_generator.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace indoor;

namespace {

struct Row {
  unsigned readers = 1;
  double millis = 0;
  double qps = 0;
  double scaling = 1.0;  // qps / single-reader qps
};

std::vector<unsigned> ParseList(const std::string& s) {
  std::vector<unsigned> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(
        static_cast<unsigned>(std::stoul(s.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

void WriteJson(const std::string& path, int floors, size_t objects,
               size_t queries, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"query_throughput\",\n"
               "  \"floors\": %d,\n  \"objects\": %zu,\n"
               "  \"queries_per_reader\": %zu,\n  \"results\": [\n",
               floors, objects, queries);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"readers\": %u, \"millis\": %.3f, \"qps\": %.1f, "
                 "\"scaling\": %.3f}%s\n",
                 r.readers, r.millis, r.qps, r.scaling,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"metrics\": %s}\n",
               indoor::bench::MetricsJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int floors = 10;
  size_t objects = 10000;
  size_t queries_per_reader = 200;
  uint64_t seed = 42;
  std::vector<unsigned> reader_list{1, 2, 4, 8};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--floors") {
      floors = std::stoi(next());
    } else if (arg == "--objects") {
      objects = std::stoul(next());
    } else if (arg == "--queries-per-reader") {
      queries_per_reader = std::stoul(next());
    } else if (arg == "--readers") {
      reader_list = ParseList(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--smoke") {
      floors = 2;
      objects = 500;
      queries_per_reader = 8;
      reader_list = {1, 2};
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  BuildingConfig config;
  config.floors = floors;
  config.rooms_per_floor = 30;
  config.seed = seed;
  IndexOptions options;
  options.build_threads = 0;  // build as fast as the hardware allows
  const FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan, options);
  Rng rng(seed * 31 + 7);
  PopulateStore(GenerateObjects(plan, objects, &rng), &index.objects());
  const auto positions = GenerateQueryPositions(plan, 256, &rng);
  const auto pairs = GeneratePositionPairs(plan, 256, &rng);
  const DistanceContext ctx = index.distance_context();
  std::printf("building: %d floors, %zu doors, %zu objects\n", floors,
              plan.door_count(), objects);

  // One "query" = one range + one kNN + one pt2pt distance, cycling
  // through the pre-generated workloads.
  auto run_query = [&](size_t q) {
    size_t checksum = 0;
    const Point& p = positions[q % positions.size()];
    checksum += RangeQuery(index, p, 20.0).size();
    checksum += KnnQuery(index, p, 10).size();
    const auto& [a, b] = pairs[q % pairs.size()];
    checksum += Pt2PtDistanceVirtual(ctx, a, b) < kInfDistance ? 1 : 0;
    return checksum;
  };

  std::vector<Row> rows;
  std::printf("%8s %12s %14s %10s\n", "readers", "wall(ms)", "QPS",
              "scaling");
  for (unsigned readers : reader_list) {
    const size_t total = queries_per_reader * readers;
    std::atomic<size_t> next_query{0};
    std::atomic<size_t> sink{0};
    ThreadPool pool(readers);
    WallTimer timer;
    for (unsigned t = 0; t < readers; ++t) {
      pool.Submit([&] {
        size_t local = 0;
        for (size_t q = next_query++; q < total; q = next_query++) {
          local += run_query(q);
        }
        sink += local;
      });
    }
    pool.Wait();
    Row row;
    row.readers = readers;
    row.millis = timer.ElapsedMillis();
    row.qps = total / (row.millis / 1000.0);
    row.scaling = rows.empty() ? 1.0 : row.qps / rows.front().qps;
    rows.push_back(row);
    std::printf("%8u %12.1f %14.0f %9.2fx   (checksum %zu)\n", row.readers,
                row.millis, row.qps, row.scaling, sink.load());
  }

  if (!json_path.empty()) {
    WriteJson(json_path, floors, objects, queries_per_reader, rows);
  }
  return 0;
}
