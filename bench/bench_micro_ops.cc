// Micro-benchmarks (google-benchmark) of the core operations: door-to-door
// Dijkstra, pt2pt variants, point location, grid searches, and the indexed
// queries, on the paper's 10-floor building with 10K objects.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/distance/d2d_distance.h"
#include "core/distance/pt2pt_distance.h"
#include "core/index/landmark_index.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"

using namespace indoor;
using namespace indoor::bench;

namespace {

/// Shared fixture state, built once.
struct State {
  State() : engine(MakeEngine(10, 10000, /*seed=*/5)) {
    Rng rng(6);
    queries = GenerateQueryPositions(engine->plan(), 256, &rng);
    pairs = GeneratePositionPairsByArea(engine->plan(), 256, &rng);
  }
  std::unique_ptr<QueryEngine> engine;
  std::vector<Point> queries;
  std::vector<std::pair<Point, Point>> pairs;
};

State& Shared() {
  static State state;
  return state;
}

void BM_D2dDistance(benchmark::State& state) {
  auto& s = Shared();
  const size_t n = s.engine->plan().door_count();
  Rng rng(7);
  size_t i = 0;
  std::vector<std::pair<DoorId, DoorId>> door_pairs;
  for (int k = 0; k < 256; ++k) {
    door_pairs.push_back({static_cast<DoorId>(rng.NextIndex(n)),
                          static_cast<DoorId>(rng.NextIndex(n))});
  }
  for (auto _ : state) {
    const auto& [a, b] = door_pairs[i++ % door_pairs.size()];
    benchmark::DoNotOptimize(
        D2dDistance(s.engine->index().graph(), a, b));
  }
}
BENCHMARK(BM_D2dDistance);

/// Heap-vs-bucket frontier on the identical door-pair workload (same seed
/// as BM_D2dDistance), with an explicit scratch so both sides measure the
/// steady-state allocation-free solve. The bucket side also runs the SIMD
/// span relaxation; results are bitwise identical by construction.
void RunD2dQueueBench(benchmark::State& state, QueueKind kind) {
  auto& s = Shared();
  const size_t n = s.engine->plan().door_count();
  Rng rng(7);
  const size_t pair_count = SweepCount(256, 64);
  std::vector<std::pair<DoorId, DoorId>> door_pairs;
  for (size_t k = 0; k < pair_count; ++k) {
    door_pairs.push_back({static_cast<DoorId>(rng.NextIndex(n)),
                          static_cast<DoorId>(rng.NextIndex(n))});
  }
  DoorDijkstraScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = door_pairs[i++ % door_pairs.size()];
    benchmark::DoNotOptimize(
        D2dDistance(s.engine->index().graph(), a, b, &scratch, kind));
  }
}

void BM_D2dDistanceHeap(benchmark::State& state) {
  RunD2dQueueBench(state, QueueKind::kHeap);
}
BENCHMARK(BM_D2dDistanceHeap);

void BM_D2dDistanceBucket(benchmark::State& state) {
  RunD2dQueueBench(state, QueueKind::kBucket);
}
BENCHMARK(BM_D2dDistanceBucket);

/// Raw extract-min cost isolated from graph relaxation: push a fixed key
/// set (uniform over four edge-weight windows, Dijkstra-like spread), then
/// pop to empty. One iteration = one full push+drain sweep.
void BM_HeapPushPop(benchmark::State& state) {
  auto& s = Shared();
  const double max_w = s.engine->index().graph().max_door_edge_weight();
  const size_t count = SweepCount(4096, 512);
  Rng rng(13);
  std::vector<std::pair<double, DoorId>> entries;
  for (size_t k = 0; k < count; ++k) {
    entries.push_back(
        {rng.NextDouble(0.0, 4.0 * max_w), static_cast<DoorId>(k)});
  }
  MinHeap<std::pair<double, DoorId>> heap;
  for (auto _ : state) {
    heap.clear();
    for (const auto& e : entries) heap.push(e);
    double sink = 0;
    while (!heap.empty()) {
      sink += heap.top().first;
      heap.pop();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
}
BENCHMARK(BM_HeapPushPop);

void BM_BucketPushPop(benchmark::State& state) {
  auto& s = Shared();
  const double max_w = s.engine->index().graph().max_door_edge_weight();
  const size_t count = SweepCount(4096, 512);
  Rng rng(13);
  std::vector<std::pair<double, DoorId>> entries;
  for (size_t k = 0; k < count; ++k) {
    entries.push_back(
        {rng.NextDouble(0.0, 4.0 * max_w), static_cast<DoorId>(k)});
  }
  BucketQueue queue;
  for (auto _ : state) {
    queue.Prepare(max_w);
    for (const auto& e : entries) queue.push(e);
    double sink = 0;
    while (!queue.empty()) {
      sink += queue.top().first;
      queue.pop();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
}
BENCHMARK(BM_BucketPushPop);

/// ALT lower-bound probe: per-pair bound cost, plus the share of random
/// door pairs whose bound alone exceeds a Fig. 8-style radius (r = 30) —
/// the fraction of full-row scan entries the range/kNN pruning hook skips
/// without touching the Md2d row. Reported as the prune_rate_r30 counter.
void BM_LandmarkBound(benchmark::State& state) {
  auto& s = Shared();
  const LandmarkIndex* const lm = s.engine->index().landmarks();
  if (lm == nullptr) {
    state.SkipWithError("landmarks disabled in IndexOptions");
    return;
  }
  const size_t n = s.engine->plan().door_count();
  Rng rng(17);
  const size_t pair_count = SweepCount(4096, 256);
  std::vector<std::pair<DoorId, DoorId>> door_pairs;
  for (size_t k = 0; k < pair_count; ++k) {
    door_pairs.push_back({static_cast<DoorId>(rng.NextIndex(n)),
                          static_cast<DoorId>(rng.NextIndex(n))});
  }
  const double r = 30.0;
  uint64_t prunable = 0;
  uint64_t probes = 0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = door_pairs[i++ % door_pairs.size()];
    const double lb = lm->LowerBound(a, b);
    prunable += lb > r ? 1 : 0;
    ++probes;
    benchmark::DoNotOptimize(lb);
  }
  state.counters["prune_rate_r30"] = benchmark::Counter(
      probes > 0 ? static_cast<double>(prunable) / static_cast<double>(probes)
                 : 0.0);
}
BENCHMARK(BM_LandmarkBound);

void BM_MatrixLookup(benchmark::State& state) {
  auto& s = Shared();
  const size_t n = s.engine->plan().door_count();
  Rng rng(8);
  size_t i = 0;
  for (auto _ : state) {
    const DoorId from = static_cast<DoorId>(i % n);
    const DoorId to = static_cast<DoorId>((i * 7 + 3) % n);
    ++i;
    benchmark::DoNotOptimize(s.engine->index().d2d_matrix().At(from, to));
  }
}
BENCHMARK(BM_MatrixLookup);

void BM_Pt2PtBasic(benchmark::State& state) {
  auto& s = Shared();
  const auto ctx = s.engine->index().distance_context();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [p, q] = s.pairs[i++ % s.pairs.size()];
    benchmark::DoNotOptimize(Pt2PtDistanceBasic(ctx, p, q));
  }
}
BENCHMARK(BM_Pt2PtBasic);

void BM_Pt2PtRefined(benchmark::State& state) {
  auto& s = Shared();
  const auto ctx = s.engine->index().distance_context();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [p, q] = s.pairs[i++ % s.pairs.size()];
    benchmark::DoNotOptimize(Pt2PtDistanceRefined(ctx, p, q));
  }
}
BENCHMARK(BM_Pt2PtRefined);

void BM_Pt2PtReuse(benchmark::State& state) {
  auto& s = Shared();
  const auto ctx = s.engine->index().distance_context();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [p, q] = s.pairs[i++ % s.pairs.size()];
    benchmark::DoNotOptimize(Pt2PtDistanceReuse(ctx, p, q));
  }
}
BENCHMARK(BM_Pt2PtReuse);

void BM_Pt2PtVirtual(benchmark::State& state) {
  auto& s = Shared();
  const auto ctx = s.engine->index().distance_context();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [p, q] = s.pairs[i++ % s.pairs.size()];
    benchmark::DoNotOptimize(Pt2PtDistanceVirtual(ctx, p, q));
  }
}
BENCHMARK(BM_Pt2PtVirtual);

void BM_PrunedSourceDoors(benchmark::State& state) {
  auto& s = Shared();
  const FloorPlan& plan = s.engine->plan();
  const size_t n = plan.partition_count();
  Rng rng(11);
  std::vector<std::pair<PartitionId, PartitionId>> part_pairs;
  for (int k = 0; k < 256; ++k) {
    part_pairs.push_back({static_cast<PartitionId>(rng.NextIndex(n)),
                          static_cast<PartitionId>(rng.NextIndex(n))});
  }
  // The scratch-owned output buffer is reused across calls — this measures
  // the steady-state (allocation-free) pruning cost.
  std::vector<DoorId> doors;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [vs, vt] = part_pairs[i++ % part_pairs.size()];
    internal::PrunedSourceDoors(plan, vs, vt, &doors);
    benchmark::DoNotOptimize(doors.data());
  }
}
BENCHMARK(BM_PrunedSourceDoors);

void BM_GetHostPartition(benchmark::State& state) {
  auto& s = Shared();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.engine->index().locator().GetHostPartition(
        s.queries[i++ % s.queries.size()]));
  }
}
BENCHMARK(BM_GetHostPartition);

void BM_RangeQuery(benchmark::State& state) {
  auto& s = Shared();
  size_t i = 0;
  const double r = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RangeQuery(s.engine->index(), s.queries[i++ % s.queries.size()], r));
  }
}
BENCHMARK(BM_RangeQuery)->Arg(10)->Arg(30)->Arg(50);

void BM_KnnQuery(benchmark::State& state) {
  auto& s = Shared();
  size_t i = 0;
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        KnnQuery(s.engine->index(), s.queries[i++ % s.queries.size()], k));
  }
}
BENCHMARK(BM_KnnQuery)->Arg(1)->Arg(10)->Arg(100);

void BM_ShortestPath(benchmark::State& state) {
  auto& s = Shared();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [p, q] = s.pairs[i++ % s.pairs.size()];
    benchmark::DoNotOptimize(s.engine->ShortestPath(p, q));
  }
}
BENCHMARK(BM_ShortestPath);

}  // namespace

BENCHMARK_MAIN();
