// Ablation: Algorithm 4's reuse policy (DESIGN.md §2.3).
//   kSafe          — cached distances only tighten the bound; exact.
//   kPaperFaithful — verbatim pseudocode with the forward-reuse break;
//                    faster on hallway-heavy queries but can overestimate.
// Reports both speed and the observed result deviation of the faithful
// policy against the exact Algorithm 2, plus the single-Dijkstra virtual-
// source extension as a further comparison point.

#include <cstdio>

#include "bench_util.h"
#include "core/distance/pt2pt_distance.h"

using namespace indoor;
using namespace indoor::bench;

int main() {
  PrintTitle("Ablation: Algorithm 4 reuse policy + virtual-source "
             "extension (avg of 50 random pairs)");
  std::printf("%-8s%14s%14s%14s%18s%14s\n", "floors", "kSafe",
              "kFaithful", "virtual", "faithful dev max", "dev cases");

  for (int floors : {10, 20, 30, 40}) {
    const FloorPlan plan = GenerateBuilding(PaperBuilding(floors));
    const DistanceGraph graph(plan);
    const PartitionLocator locator(plan);
    const DistanceContext ctx(graph, locator);
    Rng rng(4400 + floors);
    const auto pairs = GeneratePositionPairsByArea(plan, 50, &rng);

    const double safe_ms = AvgMillis(pairs.size(), [&](size_t i) {
      Pt2PtDistanceReuse(ctx, pairs[i].first, pairs[i].second,
                         ReusePolicy::kSafe);
    });
    const double faithful_ms = AvgMillis(pairs.size(), [&](size_t i) {
      Pt2PtDistanceReuse(ctx, pairs[i].first, pairs[i].second,
                         ReusePolicy::kPaperFaithful);
    });
    const double virtual_ms = AvgMillis(pairs.size(), [&](size_t i) {
      Pt2PtDistanceVirtual(ctx, pairs[i].first, pairs[i].second);
    });

    // Result-quality audit of the faithful policy.
    double worst_dev = 0.0;
    int dev_cases = 0;
    for (const auto& [p, q] : pairs) {
      const double exact = Pt2PtDistanceReuse(ctx, p, q, ReusePolicy::kSafe);
      const double faithful =
          Pt2PtDistanceReuse(ctx, p, q, ReusePolicy::kPaperFaithful);
      if (exact == kInfDistance || faithful == kInfDistance) continue;
      const double dev = faithful - exact;
      if (dev > 1e-9) {
        ++dev_cases;
        if (dev > worst_dev) worst_dev = dev;
      }
    }
    std::printf("%-8d%11.3f ms%11.3f ms%11.3f ms%16.3f m%14d\n", floors,
                safe_ms, faithful_ms, virtual_ms, worst_dev, dev_cases);
  }
  std::printf("\nReading: kSafe preserves exactness at near-identical "
              "speed; the virtual-source extension (one Dijkstra total) "
              "is the fastest exact method.\n");
  return 0;
}
