// Emergency response (paper §I): shortest indoor paths to the exit for
// every occupant of an office building, re-evaluated when a staircase is
// blocked (temporal extension).
//
//   $ ./build/examples/emergency_evacuation

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "core/distance/reverse_field.h"
#include "core/query/query_engine.h"
#include "core/query/temporal.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"

using namespace indoor;

int main() {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 12;
  config.seed = 911;
  config.parallel_staircases = true;  // redundant vertical routes
  QueryEngine engine(GenerateBuilding(config));
  const FloorPlan& plan = engine.plan();

  // The exit: the ground-floor entrance door.
  DoorId entrance = kInvalidId;
  for (const Door& door : plan.doors()) {
    if (door.name() == "entrance") entrance = door.id();
  }
  const Point exit_point = plan.door(entrance).Midpoint();

  // 40 occupants.
  Rng rng(13);
  std::vector<IndoorObject> occupants;
  for (const GeneratedObject& obj : GenerateObjects(plan, 40, &rng)) {
    const ObjectId id =
        engine.AddObject(obj.partition, obj.position).value();
    occupants.push_back(engine.index().objects().object(id));
  }

  // Evacuation distances for everyone from ONE reverse distance field
  // (a single Dijkstra seeded at the exit answers all occupants —
  // and, unlike a forward field, it honors one-way doors in the
  // direction people actually walk). Farthest first: those are the
  // people responders check on first.
  const ReverseDistanceField to_exit(engine.index().distance_context(),
                                     exit_point);
  struct Evac {
    ObjectId id;
    double distance;
    size_t doors;
  };
  std::vector<Evac> evac;
  for (const IndoorObject& occ : occupants) {
    const IndoorPath path = engine.ShortestPath(occ.position, exit_point);
    const double field_distance =
        to_exit.DistanceFrom(occ.partition, occ.position);
    if (std::fabs(field_distance - path.length) > 1e-6) {
      std::cerr << "field/path disagreement for occupant " << occ.id
                << "\n";
      return 1;
    }
    evac.push_back({occ.id, field_distance, path.doors.size()});
  }
  std::sort(evac.begin(), evac.end(),
            [](const Evac& a, const Evac& b) {
              return a.distance > b.distance;
            });

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "Evacuation plan, farthest occupants first:\n";
  for (size_t i = 0; i < 8; ++i) {
    const auto& e = evac[i];
    std::cout << "  occupant #" << std::setw(2) << e.id << ": "
              << std::setw(6) << e.distance << " m, " << e.doors
              << " doors (floor "
              << plan.partition(
                     engine.index().objects().object(e.id).partition)
                     .floor()
              << ")\n";
  }

  // A staircase flight becomes impassable: recompute with the temporal
  // snapshot. Occupants above the blocked flight must take the other shaft.
  DoorId blocked = kInvalidId;
  for (const Door& door : plan.doors()) {
    if (door.name() == "stair1L_lo") blocked = door.id();
  }
  DoorSchedule schedule(plan.door_count());
  schedule.Close(blocked);

  const DistanceContext ctx = engine.index().distance_context();
  std::cout << "\nStaircase door '" << plan.door(blocked).name()
            << "' blocked by fire. Re-routed distances:\n";
  size_t rerouted = 0, cut_off = 0;
  double worst_increase = 0;
  for (const IndoorObject& occ : occupants) {
    const double before = engine.Distance(occ.position, exit_point);
    const double after =
        Pt2PtDistanceAtTime(ctx, schedule, 0.0, occ.position, exit_point);
    if (after == kInfDistance) {
      ++cut_off;
    } else if (after > before + 1e-9) {
      ++rerouted;
      worst_increase = std::max(worst_increase, after - before);
    }
  }
  std::cout << "  " << rerouted << " occupants re-routed (worst detour +"
            << worst_increase << " m), " << cut_off
            << " cut off from this exit.\n";
  return 0;
}
