// Boarding reminder (paper §I): in an airport terminal, remind exactly the
// passengers whose indoor walking distance to their gate exceeds a
// threshold — not everyone on the flight — and tell each one how far the
// walk actually is.
//
//   $ ./build/examples/boarding_reminder

#include <iomanip>
#include <iostream>

#include "core/query/query_engine.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"

using namespace indoor;

int main() {
  // A two-level terminal: concourses modeled as hallways with gate lounges
  // (rooms) off them, connected by a staircase.
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 16;  // gate lounges
  config.seed = 2026;
  QueryEngine engine(GenerateBuilding(config));
  const FloorPlan& plan = engine.plan();

  // The gate: a lounge on floor 2.
  PartitionId gate_lounge = kInvalidId;
  for (const Partition& part : plan.partitions()) {
    if (part.kind() == PartitionKind::kRoom && part.floor() == 2) {
      gate_lounge = part.id();
      break;
    }
  }
  const Point gate =
      plan.partition(gate_lounge).footprint().outer().BoundingBox().Center();

  // 60 passengers of flight IX-2012 scattered through the terminal.
  Rng rng(7);
  std::vector<ObjectId> passengers;
  for (const GeneratedObject& obj : GenerateObjects(plan, 60, &rng)) {
    passengers.push_back(engine.AddObject(obj.partition, obj.position).value());
  }

  // Naive service: broadcast to everyone. Distance-aware service: range
  // query around the gate; whoever is NOT within walking range gets the
  // reminder.
  const double threshold_m = 60.0;
  const auto near_gate = engine.Range(gate, threshold_m);

  std::cout << "Flight IX-2012 now boarding at gate (lounge '"
            << plan.partition(gate_lounge).name() << "')\n";
  std::cout << "Passengers: " << passengers.size() << ", already near gate: "
            << near_gate.size() << "\n\n";
  std::cout << "Reminders sent (walking distance > " << threshold_m
            << " m):\n";

  size_t reminded = 0;
  for (ObjectId id : passengers) {
    if (std::binary_search(near_gate.begin(), near_gate.end(), id)) continue;
    const IndoorObject& pax = engine.index().objects().object(id);
    const double walk = engine.Distance(pax.position, gate);
    const IndoorPath route = engine.ShortestPath(pax.position, gate);
    std::cout << "  passenger #" << std::setw(2) << id << ": "
              << std::fixed << std::setprecision(1) << walk
              << " m to gate, " << route.doors.size()
              << " doors on the way (in '"
              << plan.partition(pax.partition).name() << "')\n";
    ++reminded;
    if (reminded >= 10) {
      std::cout << "  ... and more\n";
      break;
    }
  }

  // The broadcast baseline would have pestered the near-gate passengers:
  std::cout << "\nNaive broadcast would have disturbed " << near_gate.size()
            << " passengers already at the gate.\n";
  return 0;
}
