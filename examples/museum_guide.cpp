// Museum tour guide (paper §I): shortest indoor walking routes through an
// exhibition whose stands act as obstacles, compared against the
// door-count model the paper argues against.
//
//   $ ./build/examples/museum_guide

#include <iomanip>
#include <iostream>

#include "baseline/door_count_model.h"
#include "core/query/query_engine.h"
#include "indoor/sample_plans.h"

using namespace indoor;

int main() {
  // The Fig. 5 obstacle plan doubles as a two-hall museum: hall "room2"
  // has four rows of exhibition stands; hall "room1" is open.
  ObstacleExampleIds ids;
  QueryEngine engine(MakeObstacleExamplePlan(&ids));
  const FloorPlan& plan = engine.plan();

  const Point visitor = ids.p;   // at the entrance-side of hall 2
  const Point exhibit = ids.q;   // the famous painting at the far side

  std::cout << "Visitor at " << visitor << ", exhibit at " << exhibit
            << " (both in hall '" << plan.partition(ids.room2).name()
            << "')\n\n";

  // Straight-line thinking fails twice here: the Euclidean distance cuts
  // through the stands, and even the intra-hall walk is a long weave.
  const double euclid = Distance(visitor, exhibit);
  const double weave =
      plan.partition(ids.room2).IntraDistance(visitor, exhibit);
  const double walk = engine.Distance(visitor, exhibit);
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "Euclidean distance:               " << euclid << " m\n";
  std::cout << "Weaving between the stands:       " << weave << " m\n";
  std::cout << "Shortest indoor walking distance: " << walk
            << " m  (leave through one door, return through another)\n\n";

  // The full turn-by-turn route, with intra-hall detours expanded.
  const IndoorPath route =
      engine.ShortestPath(visitor, exhibit, /*expand_waypoints=*/true);
  std::cout << "Guided route (" << route.doors.size() << " doors, "
            << route.waypoints.size() << " waypoints):\n";
  for (size_t i = 0; i < route.partitions.size(); ++i) {
    std::cout << "  through '" << plan.partition(route.partitions[i]).name()
              << "'";
    if (i < route.doors.size()) {
      std::cout << " -> door '" << plan.door(route.doors[i]).name() << "'";
    }
    std::cout << "\n";
  }

  // The door-count model (Li & Lee) prefers "few doors" and would keep the
  // visitor weaving between the stands.
  const DoorCountPath naive = DoorCountShortestPath(
      engine.index().distance_context(), visitor, exhibit);
  std::cout << "\nDoor-count model route: " << naive.door_count
            << " doors, but " << naive.walking_length
            << " m of actual walking (vs " << walk << " m) — "
            << std::setprecision(0)
            << (naive.walking_length / walk - 1) * 100
            << "% longer.\n";
  return 0;
}
