// Quickstart: build a tiny floor plan, compute indoor distances, and run
// distance-aware queries through the QueryEngine facade.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "core/query/query_engine.h"
#include "indoor/floor_plan_builder.h"

using namespace indoor;

int main() {
  // 1. Describe the space: two offices and a corridor.
  //
  //      +--------+--------+
  //      | office | office |
  //      |   A    |   B    |
  //      +--dA----+---dB---+
  //      |     corridor    |
  //      +-----------------+
  FloorPlanBuilder builder;
  const PartitionId corridor = builder.AddPartition(
      "corridor", PartitionKind::kHallway, 1, Rect(0, 0, 12, 3));
  const PartitionId office_a = builder.AddPartition(
      "office_a", PartitionKind::kRoom, 1, Rect(0, 3, 6, 9));
  const PartitionId office_b = builder.AddPartition(
      "office_b", PartitionKind::kRoom, 1, Rect(6, 3, 12, 9));
  builder.AddBidirectionalDoor("dA", Segment({2.8, 3}, {3.2, 3}), office_a,
                               corridor);
  builder.AddBidirectionalDoor("dB", Segment({8.8, 3}, {9.2, 3}), office_b,
                               corridor);

  auto plan = std::move(builder).Build();
  if (!plan.ok()) {
    std::cerr << "invalid plan: " << plan.status() << "\n";
    return 1;
  }

  // 2. Build every index (distance graph, R-tree locator, Md2d, Midx, DPT,
  //    grid buckets) in one constructor.
  QueryEngine engine(std::move(plan).value());

  // 3. Indoor walking distances respect walls and doors.
  const Point desk_a(1, 8), desk_b(11, 8);
  std::cout << "Euclidean distance:      " << Distance(desk_a, desk_b)
            << " m (through the wall!)\n";
  std::cout << "Indoor walking distance: " << engine.Distance(desk_a, desk_b)
            << " m (via the corridor)\n\n";

  // 4. Concrete shortest path.
  const IndoorPath path = engine.ShortestPath(desk_a, desk_b);
  std::cout << "Shortest path crosses " << path.doors.size() << " doors:";
  for (DoorId d : path.doors) {
    std::cout << " " << engine.plan().door(d).name();
  }
  std::cout << "\n\n";

  // 5. Distance-aware queries over indoor objects (e.g. printers).
  engine.AddObject(office_a, {5, 4}).value();
  engine.AddObject(office_b, {7, 4}).value();
  engine.AddObject(corridor, {6, 1.5}).value();

  const auto nearest = engine.Nearest(desk_a, 1);
  std::cout << "Nearest object to desk A: object #" << nearest[0].id
            << " at walking distance " << nearest[0].distance << " m\n";

  const auto in_range = engine.Range(desk_a, 8.0);
  std::cout << "Objects within 8 m walk of desk A: " << in_range.size()
            << "\n";
  return 0;
}
