// Symbolic indoor tracking: door-mounted proximity readers (RFID/BLE)
// watch people move, a partition-level tracker maintains where each person
// may be, and distance-aware queries run against the uncertain locations —
// the positioning pipeline the paper's services assume (§I).
//
//   $ ./build/examples/symbolic_tracking

#include <cstdio>

#include "core/index/distance_matrix.h"
#include "core/model/locator.h"
#include "gen/building_generator.h"
#include "tracking/positioning.h"

using namespace indoor;

int main() {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 10;
  config.seed = 808;
  const FloorPlan plan = GenerateBuilding(config);
  const DistanceGraph graph(plan);
  const PartitionLocator locator(plan);
  const DistanceContext ctx(graph, locator);

  // 15 tagged people, readers on every door.
  ObjectStore store(plan);
  Rng rng(809);
  PopulateStore(GenerateObjects(plan, 15, &rng), &store);
  const auto deployment = ReaderDeployment::AtDoors(plan, 1.0);
  SymbolicTracker tracker(plan, deployment, store.size());

  std::printf("%zu door readers deployed; tracking %zu tags.\n\n",
              deployment.readers().size(), store.size());

  TrajectoryConfig traj;
  traj.seed = 810;
  TrajectorySimulator sim(ctx, store);

  size_t detections = 0;
  int known_after = 0;
  for (int second = 1; second <= 180; ++second) {
    const auto reports = sim.Step(0.5);
    const auto found = deployment.DetectAll(reports);
    for (const Detection& det : found) tracker.OnDetection(det);
    detections += found.size();
    if (second % 30 == 0) {
      // Without a fresh detection, uncertainty widens by one door hop.
      tracker.WidenAll();
    }
  }
  for (ObjectId id = 0; id < store.size(); ++id) {
    if (!tracker.Unknown(id)) ++known_after;
  }
  std::printf("After 90 simulated seconds: %zu detections, %d/%zu tags "
              "localized.\n\n",
              detections, known_after, store.size());

  // Report the uncertainty of each localized tag: candidate partitions
  // and the diameter of the candidate region (max pairwise door
  // distance), which is what a distance-aware service would have to
  // tolerate.
  const DistanceMatrix md2d(graph);
  std::printf("%-6s%12s%24s\n", "tag", "candidates", "region diameter (m)");
  for (ObjectId id = 0; id < store.size() && id < 8; ++id) {
    if (tracker.Unknown(id)) {
      std::printf("%-6u%12s%24s\n", id, "-", "unknown");
      continue;
    }
    const auto& cands = tracker.Candidates(id);
    double diameter = 0;
    for (PartitionId a : cands) {
      for (PartitionId b : cands) {
        for (DoorId da : plan.TouchingDoors(a)) {
          for (DoorId db : plan.TouchingDoors(b)) {
            const double d = md2d.At(da, db);
            if (d != kInfDistance && d > diameter) diameter = d;
          }
        }
      }
    }
    std::printf("%-6u%12zu%24.1f\n", id, cands.size(), diameter);
  }
  return 0;
}
