// Proximity analytics: the composite queries built on top of the paper's
// foundation — an indoor distance join (which visitor pairs are within
// whispering distance?), a time-sliced reachability report, and persisted
// distance matrices for instant warm starts.
//
//   $ ./build/examples/proximity_analytics

#include <cstdio>
#include <iostream>

#include "core/index/index_io.h"
#include "core/query/distance_join.h"
#include "core/query/query_engine.h"
#include "core/query/temporal_query.h"
#include "gen/building_generator.h"
#include "gen/object_generator.h"
#include "util/timer.h"

using namespace indoor;

int main() {
  BuildingConfig config;
  config.floors = 2;
  config.rooms_per_floor = 14;
  config.room_to_room_doors = 0.4;  // some rooms interconnect directly
  config.seed = 2024;
  QueryEngine engine(GenerateBuilding(config));
  const FloorPlan& plan = engine.plan();

  // --- Index persistence: precompute once, load instantly afterwards. ---
  const std::string cache = "/tmp/indoor_md2d_cache.bin";
  {
    WallTimer timer;
    const Status st =
        SaveDistanceMatrix(engine.index().d2d_matrix(), plan, cache);
    std::printf("Saved Md2d cache (%s) in %.1f ms\n",
                st.ok() ? "ok" : st.ToString().c_str(),
                timer.ElapsedMillis());
    WallTimer load_timer;
    const auto loaded = LoadDistanceMatrix(plan, cache);
    std::printf("Loaded it back in %.1f ms (%zu doors, fingerprint "
                "verified)\n\n",
                load_timer.ElapsedMillis(),
                loaded.ok() ? loaded.value().door_count() : 0);
  }

  // --- 80 tracked visitors. ---
  Rng rng(31);
  PopulateStore(GenerateObjects(plan, 80, &rng),
                &engine.index().objects());

  // --- Distance join: pairs within 5 m walking distance. ---
  WallTimer join_timer;
  const auto pairs = DistanceJoin(engine.index(), 5.0);
  std::printf("Distance join (r=5 m): %zu close pairs among 80 visitors "
              "(%.1f ms)\n",
              pairs.size(), join_timer.ElapsedMillis());
  size_t shown = 0;
  for (const JoinPair& pair : pairs) {
    const auto& a = engine.index().objects().object(pair.a);
    const auto& b = engine.index().objects().object(pair.b);
    std::printf("  #%u and #%u: %.2f m apart (%s / %s)\n", pair.a, pair.b,
                pair.distance, plan.partition(a.partition).name().c_str(),
                plan.partition(b.partition).name().c_str());
    if (++shown == 6) {
      std::printf("  ...\n");
      break;
    }
  }

  // --- Time-sliced reachability: rooms lock outside business hours. ---
  DoorSchedule schedule(plan.door_count());
  for (const Door& door : plan.doors()) {
    // Room doors open 8:00-18:00; hallways/staircases always open.
    const auto [a, b] = plan.ConnectedPair(door.id());
    const bool touches_room =
        plan.partition(a).kind() == PartitionKind::kRoom ||
        plan.partition(b).kind() == PartitionKind::kRoom;
    if (touches_room) {
      schedule.SetOpenIntervals(door.id(), {{8 * 3600.0, 18 * 3600.0}});
    }
  }
  const Point lobby = plan.door(plan.door_count() - 1).Midpoint();
  for (double hour : {12.0, 22.0}) {
    const auto reachable = RangeQueryAtTime(
        engine.index(), schedule, hour * 3600.0, lobby, 1e6);
    std::printf("\nAt %02.0f:00, %zu of 80 visitors are reachable from the "
                "entrance", hour, reachable.size());
    const auto nearest =
        KnnQueryAtTime(engine.index(), schedule, hour * 3600.0, lobby, 1);
    if (!nearest.empty()) {
      std::printf("; nearest is #%u at %.1f m", nearest[0].id,
                  nearest[0].distance);
    }
    std::printf(".\n");
  }
  std::remove("/tmp/indoor_md2d_cache.bin");
  return 0;
}
