// Live monitoring: a security desk watches a restricted zone while people
// move through the building — the paper's "security control" service (§I
// abstract) on top of trajectory simulation, continuous range monitoring,
// and incremental nearest-neighbor browsing.
//
//   $ ./build/examples/live_monitoring

#include <cstdio>

#include "core/query/nearest_iterator.h"
#include "gen/building_generator.h"
#include "tracking/monitor.h"
#include "util/metrics.h"

using namespace indoor;

int main() {
  BuildingConfig config;
  config.floors = 3;
  config.rooms_per_floor = 12;
  config.seed = 555;
  const FloorPlan plan = GenerateBuilding(config);
  IndexFramework index(plan);
  const DistanceContext ctx = index.distance_context();

  // 50 tracked people.
  Rng rng(556);
  PopulateStore(GenerateObjects(plan, 50, &rng), &index.objects());

  // The restricted zone: within 12 walking meters of the server room
  // (first room on floor 3).
  PartitionId server_room = kInvalidId;
  for (const Partition& part : plan.partitions()) {
    if (part.kind() == PartitionKind::kRoom && part.floor() == 3) {
      server_room = part.id();
      break;
    }
  }
  const Point zone_center =
      plan.partition(server_room).footprint().outer().BoundingBox().Center();
  ContinuousRangeMonitor monitor(ctx, index.objects(), zone_center, 12.0);
  std::printf("Monitoring 12 m around '%s'; %zu people inside at start.\n\n",
              plan.partition(server_room).name().c_str(), monitor.size());

  // Simulate five minutes; log every membership change.
  TrajectoryConfig traj;
  traj.seed = 557;
  TrajectorySimulator sim(ctx, index.objects(), traj);
  int entries = 0, exits = 0;
  for (int second = 1; second <= 300; ++second) {
    // An operator's minute-by-minute health report: how much distance work
    // the monitoring service is doing (empty under INDOOR_METRICS=OFF).
    if (second % 60 == 0) {
      std::printf("\n-- metrics after %d s --\n", second);
      metrics::MetricsRegistry::Global().Snapshot().WriteReport(stdout);
      std::printf("\n");
    }
    const auto reports = sim.Step(1.0);
    ApplyReports(reports, &index.objects());  // keep the indexes current
    for (const PositionReport& report : reports) {
      const bool was_inside = monitor.Contains(report.id);
      if (monitor.OnReport(report)) {
        if (was_inside) {
          ++exits;
        } else {
          ++entries;
          if (entries <= 5) {
            std::printf("  t=%3ds person #%u ENTERED the zone (in %s)\n",
                        second, report.id,
                        plan.partition(report.partition).name().c_str());
          }
        }
      }
    }
  }
  std::printf("\nAfter 5 minutes: %d entries, %d exits, %zu currently "
              "inside.\n",
              entries, exits, monitor.size());

  // Dispatch: browse guards by increasing walking distance until we find
  // three outside the zone (incremental NN, no k guessed up front).
  NearestIterator it(index, zone_center);
  std::printf("\nNearest people outside the zone (for dispatch):\n");
  int dispatched = 0;
  while (it.HasNext() && dispatched < 3) {
    const Neighbor nb = it.Next();
    if (monitor.Contains(nb.id)) continue;  // already inside
    std::printf("  person #%u at %.1f m walking distance\n", nb.id,
                nb.distance);
    ++dispatched;
  }
  return 0;
}
