// Baseline: the iNav model [20], which represents doors as graph NODES and
// rooms as EDGES. The paper (§II, §III-C2) points out that this
// representation cannot capture door directionality; this module implements
// it faithfully so tests can demonstrate exactly that failure: on plans
// with unidirectional doors, iNav reports distances along paths that are
// not actually traversable.

#ifndef INDOOR_BASELINE_DOORS_AS_NODES_H_
#define INDOOR_BASELINE_DOORS_AS_NODES_H_

#include <vector>

#include "core/distance/pt2pt_distance.h"

namespace indoor {

/// The iNav-style graph: undirected, nodes = doors, one edge per pair of
/// doors touching a common partition, weighted with the intra-partition
/// distance. Direction permissions are (by design of the baseline) ignored.
class DoorsAsNodesGraph {
 public:
  explicit DoorsAsNodesGraph(const DistanceGraph& graph);

  /// Door-to-door distance in the undirected model.
  double DoorDistance(DoorId ds, DoorId dt) const;

  /// Position-to-position distance in the undirected model (legs to every
  /// touching door of the hosts, ignoring enter/leave permissions).
  double Pt2PtDistance(const PartitionLocator& locator, const Point& ps,
                       const Point& pt) const;

 private:
  const DistanceGraph* graph_;
  std::vector<std::vector<std::pair<DoorId, double>>> adj_;
};

}  // namespace indoor

#endif  // INDOOR_BASELINE_DOORS_AS_NODES_H_
