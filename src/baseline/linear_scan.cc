#include "baseline/linear_scan.h"

#include <algorithm>

#include "core/distance/distance_field.h"

namespace indoor {

std::vector<double> AllObjectDistances(const DistanceContext& ctx,
                                       const ObjectStore& store,
                                       const Point& q) {
  const DistanceField field(ctx, q);
  std::vector<double> result(store.size(), kInfDistance);
  if (!field.valid()) return result;
  for (const IndoorObject& obj : store.objects()) {
    result[obj.id] = field.DistanceTo(obj.partition, obj.position);
  }
  return result;
}

std::vector<ObjectId> LinearScanRange(const DistanceContext& ctx,
                                      const ObjectStore& store,
                                      const Point& q, double r) {
  std::vector<ObjectId> out;
  const std::vector<double> distances = AllObjectDistances(ctx, store, q);
  for (ObjectId id = 0; id < distances.size(); ++id) {
    if (distances[id] <= r) out.push_back(id);
  }
  return out;
}

std::vector<Neighbor> LinearScanKnn(const DistanceContext& ctx,
                                    const ObjectStore& store, const Point& q,
                                    size_t k) {
  const std::vector<double> distances = AllObjectDistances(ctx, store, q);
  std::vector<Neighbor> all;
  all.reserve(distances.size());
  for (ObjectId id = 0; id < distances.size(); ++id) {
    if (distances[id] != kInfDistance) all.push_back({id, distances[id]});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.id < b.id);
                    });
  all.resize(take);
  return all;
}

}  // namespace indoor
