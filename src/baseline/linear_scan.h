// Linear-scan query evaluation: exact per-object indoor distances computed
// with one multi-source door Dijkstra, no Md2d/Midx/DPT/grid involved.
//
// Two roles: (1) the ground-truth oracle the test suite compares every
// indexed query result against; (2) the "no precomputed index at all" lower
// baseline in the ablation benches (the paper's Fig. 8/9 "without d2d
// index" variant still owns Md2d; this owns nothing).

#ifndef INDOOR_BASELINE_LINEAR_SCAN_H_
#define INDOOR_BASELINE_LINEAR_SCAN_H_

#include <vector>

#include "core/distance/pt2pt_distance.h"
#include "core/index/object_store.h"

namespace indoor {

/// Exact indoor walking distance from `q` to EVERY object in the store
/// (kInfDistance where unreachable). One door-graph Dijkstra plus one
/// intra-partition distance per (object, entering door) pair.
std::vector<double> AllObjectDistances(const DistanceContext& ctx,
                                       const ObjectStore& store,
                                       const Point& q);

/// Oracle range query: ids of objects within walking distance `r` of `q`,
/// sorted.
std::vector<ObjectId> LinearScanRange(const DistanceContext& ctx,
                                      const ObjectStore& store,
                                      const Point& q, double r);

/// Oracle kNN query: the k nearest objects, nearest first.
std::vector<Neighbor> LinearScanKnn(const DistanceContext& ctx,
                                    const ObjectStore& store, const Point& q,
                                    size_t k);

}  // namespace indoor

#endif  // INDOOR_BASELINE_LINEAR_SCAN_H_
