#include "baseline/door_count_model.h"

#include <algorithm>
#include <queue>

namespace indoor {
namespace {

/// Lexicographic cost: (doors crossed, walking length).
struct Cost {
  size_t doors = static_cast<size_t>(-1);
  double length = kInfDistance;

  bool operator<(const Cost& o) const {
    if (doors != o.doors) return doors < o.doors;
    return length < o.length;
  }
  bool operator>(const Cost& o) const { return o < *this; }
};

}  // namespace

DoorCountPath DoorCountShortestPath(const DistanceContext& ctx,
                                    const Point& ps, const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  DoorCountPath result;
  const auto endpoints = internal::ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return result;

  if (endpoints.vs == endpoints.vt) {
    const double direct =
        plan.partition(endpoints.vs).IntraDistance(ps, pt);
    if (direct != kInfDistance) {
      result.door_count = 0;
      result.walking_length = direct;
      return result;  // zero doors always wins under the door-count metric
    }
  }

  // Dijkstra over doors with lexicographic (doors, length) costs. Crossing
  // into the graph via source door ds costs (1, distV(ps, ds)).
  const size_t n = plan.door_count();
  std::vector<Cost> cost(n);
  std::vector<DoorId> prev(n, kInvalidId);
  std::vector<char> visited(n, 0);
  using Entry = std::pair<Cost, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (DoorId ds : plan.LeaveDoors(endpoints.vs)) {
    const double leg = ctx.locator->DistV(endpoints.vs, ps, ds);
    if (leg == kInfDistance) continue;
    const Cost c{1, leg};
    if (c < cost[ds]) {
      cost[ds] = c;
      heap.push({c, ds});
    }
  }

  Cost best;
  DoorId best_door = kInvalidId;
  while (!heap.empty()) {
    const auto [c, di] = heap.top();
    heap.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    for (PartitionId v : plan.EnterableParts(di)) {
      for (DoorId dj : plan.LeaveDoors(v)) {
        if (visited[dj]) continue;
        const double w = ctx.graph->Fd2d(v, di, dj);
        if (w == kInfDistance) continue;
        const Cost nc{c.doors + 1, c.length + w};
        if (nc < cost[dj]) {
          cost[dj] = nc;
          prev[dj] = di;
          heap.push({nc, dj});
        }
      }
    }
  }
  for (DoorId dt : plan.EnterDoors(endpoints.vt)) {
    if (cost[dt].doors == static_cast<size_t>(-1)) continue;
    const double leg = ctx.locator->DistV(endpoints.vt, pt, dt);
    if (leg == kInfDistance) continue;
    const Cost total{cost[dt].doors, cost[dt].length + leg};
    if (total < best) {
      best = total;
      best_door = dt;
    }
  }
  if (best_door == kInvalidId) return result;

  result.door_count = best.doors;
  result.walking_length = best.length;
  for (DoorId d = best_door; d != kInvalidId; d = prev[d]) {
    result.doors.push_back(d);
  }
  std::reverse(result.doors.begin(), result.doors.end());
  return result;
}

}  // namespace indoor
