#include "baseline/euclidean.h"

// Header-only; this TU anchors the module in the library.
