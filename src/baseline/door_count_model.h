// Baseline: the lattice-based semantic location model of Li & Lee [11],
// which defines the "length" of an indoor path as the NUMBER OF DOORS it
// passes through rather than the walking distance. The paper's §I example
// shows this picks the one-door path p -> d13 -> q over the physically
// shorter two-door path p -> d15 -> d12 -> q; this module reproduces that
// behavior so the inflation can be quantified (bench_baseline_doorcount).

#ifndef INDOOR_BASELINE_DOOR_COUNT_MODEL_H_
#define INDOOR_BASELINE_DOOR_COUNT_MODEL_H_

#include <vector>

#include "core/distance/pt2pt_distance.h"

namespace indoor {

/// A path chosen by the door-count model.
struct DoorCountPath {
  /// Number of doors crossed; SIZE_MAX when unreachable.
  size_t door_count = static_cast<size_t>(-1);
  /// Actual walking length of the chosen minimal-door-count path (the model
  /// itself never sees this number).
  double walking_length = kInfDistance;
  /// Doors crossed in order.
  std::vector<DoorId> doors;

  bool found() const { return walking_length != kInfDistance; }
};

/// Computes the door-count-minimal path from ps to pt. Among paths with
/// equally few doors the shorter walking length is preferred (the most
/// charitable reading of the baseline); the returned walking_length is what
/// a user following the path actually walks.
DoorCountPath DoorCountShortestPath(const DistanceContext& ctx,
                                    const Point& ps, const Point& pt);

}  // namespace indoor

#endif  // INDOOR_BASELINE_DOOR_COUNT_MODEL_H_
