#include "baseline/doors_as_nodes.h"

#include <queue>

namespace indoor {

DoorsAsNodesGraph::DoorsAsNodesGraph(const DistanceGraph& graph)
    : graph_(&graph) {
  const FloorPlan& plan = graph.plan();
  adj_.assign(plan.door_count(), {});
  for (const Partition& part : plan.partitions()) {
    const auto& doors = plan.TouchingDoors(part.id());
    for (size_t i = 0; i < doors.size(); ++i) {
      for (size_t j = i + 1; j < doors.size(); ++j) {
        const double w = graph.IntraDoorDistance(part.id(), doors[i],
                                                 doors[j]);
        if (w == kInfDistance) continue;
        adj_[doors[i]].push_back({doors[j], w});
        adj_[doors[j]].push_back({doors[i], w});
      }
    }
  }
}

double DoorsAsNodesGraph::DoorDistance(DoorId ds, DoorId dt) const {
  const size_t n = adj_.size();
  INDOOR_CHECK(ds < n && dt < n);
  std::vector<double> dist(n, kInfDistance);
  std::vector<char> visited(n, 0);
  using Entry = std::pair<double, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[ds] = 0.0;
  heap.push({0.0, ds});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (visited[u]) continue;
    visited[u] = 1;
    if (u == dt) return d;
    for (const auto& [v, w] : adj_[u]) {
      if (!visited[v] && d + w < dist[v]) {
        dist[v] = d + w;
        heap.push({dist[v], v});
      }
    }
  }
  return dist[dt];
}

double DoorsAsNodesGraph::Pt2PtDistance(const PartitionLocator& locator,
                                        const Point& ps,
                                        const Point& pt) const {
  const FloorPlan& plan = graph_->plan();
  const auto vs = locator.GetHostPartition(ps);
  const auto vt = locator.GetHostPartition(pt);
  if (!vs.ok() || !vt.ok()) return kInfDistance;
  double best = kInfDistance;
  if (vs.value() == vt.value()) {
    best = plan.partition(vs.value()).IntraDistance(ps, pt);
  }
  // iNav ignores enter/leave permissions: every touching door is usable.
  // One multi-source Dijkstra seeded at the source partition's doors.
  const size_t n = adj_.size();
  std::vector<double> dist(n, kInfDistance);
  std::vector<char> visited(n, 0);
  using Entry = std::pair<double, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (DoorId ds : plan.TouchingDoors(vs.value())) {
    const double leg =
        plan.partition(vs.value()).IntraDistance(ps, plan.door(ds).Midpoint());
    if (leg == kInfDistance) continue;
    if (leg < dist[ds]) {
      dist[ds] = leg;
      heap.push({leg, ds});
    }
  }
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (visited[u]) continue;
    visited[u] = 1;
    for (const auto& [v, w] : adj_[u]) {
      if (!visited[v] && d + w < dist[v]) {
        dist[v] = d + w;
        heap.push({dist[v], v});
      }
    }
  }
  for (DoorId dt : plan.TouchingDoors(vt.value())) {
    if (dist[dt] == kInfDistance) continue;
    const double leg = plan.partition(vt.value())
                           .IntraDistance(pt, plan.door(dt).Midpoint());
    if (leg == kInfDistance) continue;
    best = std::min(best, dist[dt] + leg);
  }
  return best;
}

}  // namespace indoor
