// Baseline: straight-line Euclidean distance, which "carries little meaning
// [indoors] because it goes through walls" (paper §I). Kept as the naive
// comparator for distance-quality statistics.

#ifndef INDOOR_BASELINE_EUCLIDEAN_H_
#define INDOOR_BASELINE_EUCLIDEAN_H_

#include "geometry/point.h"

namespace indoor {

/// The straight-line distance between two indoor positions, walls ignored.
inline double EuclideanBaselineDistance(const Point& ps, const Point& pt) {
  return Distance(ps, pt);
}

}  // namespace indoor

#endif  // INDOOR_BASELINE_EUCLIDEAN_H_
