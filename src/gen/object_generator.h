// Random indoor objects, following the paper's procedure (§VI-B): pick a
// floor at random, pick a partition on that floor at random, then pick a
// uniform position inside that partition.

#ifndef INDOOR_GEN_OBJECT_GENERATOR_H_
#define INDOOR_GEN_OBJECT_GENERATOR_H_

#include <vector>

#include "core/index/object_store.h"
#include "util/random.h"

namespace indoor {

/// A generated object placement.
struct GeneratedObject {
  PartitionId partition;
  Point position;
};

/// Uniform point in the partition's free space (rejection sampling over the
/// footprint bounding box; first try for rectangular obstacle-free rooms).
Point RandomPointInPartition(const Partition& partition, Rng* rng);

/// Samples indoor partitions with the paper's two-stage procedure (random
/// floor, then random partition on that floor), with the floor grouping
/// precomputed once.
class PartitionSampler {
 public:
  explicit PartitionSampler(const FloorPlan& plan);

  PartitionId Sample(Rng* rng) const;

 private:
  std::vector<std::vector<PartitionId>> by_floor_;
};

/// One-shot convenience around PartitionSampler.
PartitionId RandomIndoorPartition(const FloorPlan& plan, Rng* rng);

/// `count` random object placements.
std::vector<GeneratedObject> GenerateObjects(const FloorPlan& plan,
                                             size_t count, Rng* rng);

/// Inserts placements into `store` (aborts on placement rejection, which
/// would indicate a generator bug).
void PopulateStore(const std::vector<GeneratedObject>& objects,
                   ObjectStore* store);

}  // namespace indoor

#endif  // INDOOR_GEN_OBJECT_GENERATOR_H_
