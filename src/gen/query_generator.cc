#include "gen/query_generator.h"

#include <algorithm>
#include <cmath>

namespace indoor {

Point RandomIndoorPosition(const FloorPlan& plan, Rng* rng) {
  const PartitionId v = RandomIndoorPartition(plan, rng);
  return RandomPointInPartition(plan.partition(v), rng);
}

std::vector<Point> GenerateQueryPositions(const FloorPlan& plan,
                                          size_t count, Rng* rng) {
  const PartitionSampler sampler(plan);
  std::vector<Point> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PartitionId v = sampler.Sample(rng);
    out.push_back(RandomPointInPartition(plan.partition(v), rng));
  }
  return out;
}

std::vector<std::pair<Point, Point>> GeneratePositionPairs(
    const FloorPlan& plan, size_t count, Rng* rng) {
  const PartitionSampler sampler(plan);
  std::vector<std::pair<Point, Point>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PartitionId vs = sampler.Sample(rng);
    const PartitionId vt = sampler.Sample(rng);
    out.push_back({RandomPointInPartition(plan.partition(vs), rng),
                   RandomPointInPartition(plan.partition(vt), rng)});
  }
  return out;
}

AreaSampler::AreaSampler(const FloorPlan& plan) : plan_(&plan) {
  double total = 0.0;
  for (const Partition& part : plan.partitions()) {
    if (part.IsOutdoor()) continue;
    total += part.footprint().outer().Area();
    partitions_.push_back(part.id());
    cumulative_area_.push_back(total);
  }
  INDOOR_CHECK(!partitions_.empty()) << "plan has no indoor partitions";
}

Point AreaSampler::Sample(Rng* rng) const {
  const double pick = rng->NextDouble(0.0, cumulative_area_.back());
  const auto it = std::lower_bound(cumulative_area_.begin(),
                                   cumulative_area_.end(), pick);
  const size_t idx =
      std::min(static_cast<size_t>(it - cumulative_area_.begin()),
               partitions_.size() - 1);
  return RandomPointInPartition(plan_->partition(partitions_[idx]), rng);
}

std::vector<std::pair<Point, Point>> GeneratePositionPairsByArea(
    const FloorPlan& plan, size_t count, Rng* rng) {
  const AreaSampler sampler(plan);
  std::vector<std::pair<Point, Point>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back({sampler.Sample(rng), sampler.Sample(rng)});
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t count, double theta) {
  INDOOR_CHECK(count > 0) << "ZipfSampler needs at least one item";
  INDOOR_CHECK(theta >= 0.0) << "Zipf theta must be non-negative";
  cumulative_.reserve(count);
  double total = 0.0;
  for (size_t i = 0; i < count; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cumulative_.push_back(total);
  }
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double pick = rng->NextDouble(0.0, cumulative_.back());
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), pick);
  return std::min(static_cast<size_t>(it - cumulative_.begin()),
                  cumulative_.size() - 1);
}

}  // namespace indoor
