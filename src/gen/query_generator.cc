#include "gen/query_generator.h"

#include <algorithm>

namespace indoor {

Point RandomIndoorPosition(const FloorPlan& plan, Rng* rng) {
  const PartitionId v = RandomIndoorPartition(plan, rng);
  return RandomPointInPartition(plan.partition(v), rng);
}

std::vector<Point> GenerateQueryPositions(const FloorPlan& plan,
                                          size_t count, Rng* rng) {
  const PartitionSampler sampler(plan);
  std::vector<Point> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PartitionId v = sampler.Sample(rng);
    out.push_back(RandomPointInPartition(plan.partition(v), rng));
  }
  return out;
}

std::vector<std::pair<Point, Point>> GeneratePositionPairs(
    const FloorPlan& plan, size_t count, Rng* rng) {
  const PartitionSampler sampler(plan);
  std::vector<std::pair<Point, Point>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PartitionId vs = sampler.Sample(rng);
    const PartitionId vt = sampler.Sample(rng);
    out.push_back({RandomPointInPartition(plan.partition(vs), rng),
                   RandomPointInPartition(plan.partition(vt), rng)});
  }
  return out;
}

AreaSampler::AreaSampler(const FloorPlan& plan) : plan_(&plan) {
  double total = 0.0;
  for (const Partition& part : plan.partitions()) {
    if (part.IsOutdoor()) continue;
    total += part.footprint().outer().Area();
    partitions_.push_back(part.id());
    cumulative_area_.push_back(total);
  }
  INDOOR_CHECK(!partitions_.empty()) << "plan has no indoor partitions";
}

Point AreaSampler::Sample(Rng* rng) const {
  const double pick = rng->NextDouble(0.0, cumulative_area_.back());
  const auto it = std::lower_bound(cumulative_area_.begin(),
                                   cumulative_area_.end(), pick);
  const size_t idx =
      std::min(static_cast<size_t>(it - cumulative_area_.begin()),
               partitions_.size() - 1);
  return RandomPointInPartition(plan_->partition(partitions_[idx]), rng);
}

std::vector<std::pair<Point, Point>> GeneratePositionPairsByArea(
    const FloorPlan& plan, size_t count, Rng* rng) {
  const AreaSampler sampler(plan);
  std::vector<std::pair<Point, Point>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back({sampler.Sample(rng), sampler.Sample(rng)});
  }
  return out;
}

}  // namespace indoor
