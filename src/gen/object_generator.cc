#include "gen/object_generator.h"

#include <map>

namespace indoor {

Point RandomPointInPartition(const Partition& partition, Rng* rng) {
  const Rect bbox = partition.footprint().outer().BoundingBox();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const Point p(rng->NextDouble(bbox.lo.x, bbox.hi.x),
                  rng->NextDouble(bbox.lo.y, bbox.hi.y));
    if (partition.Contains(p)) return p;
  }
  INDOOR_CHECK(false) << "no free space found in partition"
                      << partition.name();
  return bbox.Center();
}

PartitionSampler::PartitionSampler(const FloorPlan& plan) {
  std::map<int, std::vector<PartitionId>> by_floor;
  for (const Partition& part : plan.partitions()) {
    if (part.IsOutdoor()) continue;
    by_floor[part.floor()].push_back(part.id());
  }
  INDOOR_CHECK(!by_floor.empty()) << "plan has no indoor partitions";
  by_floor_.reserve(by_floor.size());
  for (auto& [floor, parts] : by_floor) {
    by_floor_.push_back(std::move(parts));
  }
}

PartitionId PartitionSampler::Sample(Rng* rng) const {
  const auto& floor = by_floor_[rng->NextIndex(by_floor_.size())];
  return floor[rng->NextIndex(floor.size())];
}

PartitionId RandomIndoorPartition(const FloorPlan& plan, Rng* rng) {
  return PartitionSampler(plan).Sample(rng);
}

std::vector<GeneratedObject> GenerateObjects(const FloorPlan& plan,
                                             size_t count, Rng* rng) {
  const PartitionSampler sampler(plan);
  std::vector<GeneratedObject> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PartitionId v = sampler.Sample(rng);
    out.push_back({v, RandomPointInPartition(plan.partition(v), rng)});
  }
  return out;
}

void PopulateStore(const std::vector<GeneratedObject>& objects,
                   ObjectStore* store) {
  for (const GeneratedObject& obj : objects) {
    auto result = store->Insert(obj.partition, obj.position);
    INDOOR_CHECK(result.ok()) << result.status().ToString();
  }
}

}  // namespace indoor
