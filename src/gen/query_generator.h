// Random query workloads: positions and position pairs, drawn with the
// paper's procedure (random floor, random partition, random position).

#ifndef INDOOR_GEN_QUERY_GENERATOR_H_
#define INDOOR_GEN_QUERY_GENERATOR_H_

#include <utility>
#include <vector>

#include "gen/object_generator.h"

namespace indoor {

/// One uniform random indoor position.
Point RandomIndoorPosition(const FloorPlan& plan, Rng* rng);

/// `count` random query positions (for range/kNN workloads).
std::vector<Point> GenerateQueryPositions(const FloorPlan& plan,
                                          size_t count, Rng* rng);

/// `count` random (source, destination) position pairs (for the pt2pt
/// distance workloads of Figs. 6-7).
std::vector<std::pair<Point, Point>> GeneratePositionPairs(
    const FloorPlan& plan, size_t count, Rng* rng);

/// Samples indoor positions uniformly BY AREA over all non-outdoor
/// partitions ("we generate at random two indoor positions in the floor
/// plan", §VI-A) — large hallways are proportionally likelier than small
/// rooms, unlike the per-partition two-stage sampler.
class AreaSampler {
 public:
  explicit AreaSampler(const FloorPlan& plan);

  Point Sample(Rng* rng) const;

 private:
  const FloorPlan* plan_;
  std::vector<PartitionId> partitions_;
  std::vector<double> cumulative_area_;
};

/// `count` area-uniform (source, destination) pairs.
std::vector<std::pair<Point, Point>> GeneratePositionPairsByArea(
    const FloorPlan& plan, size_t count, Rng* rng);

/// Rank-based Zipf distribution over `count` items: P(rank i) is
/// proportional to 1/(i+1)^theta. theta = 0 degenerates to uniform;
/// theta around 1 models the skewed popularity of real serving
/// workloads, where a handful of hot positions (entrances, elevators,
/// popular rooms) receive most of the queries — the regime the
/// cross-query cache targets.
class ZipfSampler {
 public:
  ZipfSampler(size_t count, double theta);

  /// A rank in [0, count): rank 0 is the most popular.
  size_t Sample(Rng* rng) const;

  size_t count() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace indoor

#endif  // INDOOR_GEN_QUERY_GENERATOR_H_
