// Synthetic office buildings, replicating the paper's evaluation workload
// (§VI-A): per floor, 30 rooms and 2 staircases all connected to a hallway
// in a star-like manner; multi-floor buildings are flattened by modeling
// each staircase flight as a virtual room with two doors whose
// intra-partition distance carries the actual stair walking length.

#ifndef INDOOR_GEN_BUILDING_GENERATOR_H_
#define INDOOR_GEN_BUILDING_GENERATOR_H_

#include "indoor/floor_plan.h"
#include "util/random.h"

namespace indoor {

/// Generator knobs. Defaults reproduce the paper's configuration.
struct BuildingConfig {
  /// Number of floors (the paper sweeps 10..40).
  int floors = 10;
  /// Rooms per floor, split evenly on the two sides of the hallway.
  int rooms_per_floor = 30;
  /// Base room slot width / depth in meters. Depths are jittered per room
  /// ("the indoor partitions ... do not all have the same size", §VI-B).
  double room_width = 5.0;
  double room_depth = 5.0;
  /// Relative depth jitter in [0, 1).
  double room_size_jitter = 0.3;
  double hallway_width = 3.0;
  double door_width = 0.4;
  /// Vertical gap between floor bands in the flattened 2D frame.
  double floor_gap = 2.0;
  /// Actual walking length of one staircase flight (the virtual room's
  /// door-to-door distance).
  double stair_walk_length = 10.0;
  /// Include the outdoor partition and a ground-floor entrance door.
  bool with_outdoor = true;
  /// When false (the paper's configuration), consecutive floors are linked
  /// by ONE flight, alternating between the two shafts, so every middle
  /// floor sees exactly 2 staircase doors. When true, BOTH shafts carry a
  /// flight in every gap (redundant vertical routes, e.g. for evacuation
  /// studies); middle floors then see 4 staircase doors.
  bool parallel_staircases = false;
  /// Probability of an extra door between two neighboring rooms on the
  /// same hallway side (0 reproduces the paper's pure star topology).
  /// Room-to-room doors create the fewer-doors-vs-shorter-walk tension the
  /// paper's §I example builds on.
  double room_to_room_doors = 0.0;
  /// Fraction of room-to-room doors that are unidirectional (random
  /// direction). Room-hallway doors stay bidirectional so the building
  /// remains strongly connected.
  double one_way_fraction = 0.0;
  /// Probability that a room contains a centered rectangular obstacle
  /// (furniture/exhibition stand), exercising obstructed intra-partition
  /// distances (paper §III-C1, Fig. 5) at workload scale.
  double obstacle_probability = 0.0;
  /// Seed for the per-room depth/door jitter.
  uint64_t seed = 42;
};

/// Generates the building. Partition floors are 1-based; staircase flights
/// carry the floor number of their lower landing. Door count per middle
/// floor is rooms_per_floor + 2 (the paper's "30 doors plus 2 virtual
/// doors (staircases) at each floor").
FloorPlan GenerateBuilding(const BuildingConfig& config);

/// Multi-building campus knobs (ROADMAP items 3/5). Buildings are laid
/// out left to right along x with `building_gap` meters of open ground
/// between their bounding boxes, and share ONE outdoor partition that
/// every building's ground-floor entrance door opens onto — so
/// cross-building routes leave through an entrance, cross the outdoor
/// partition (straight-line geodesic), and enter the next building.
struct CampusConfig {
  /// Number of buildings (>= 1). Partition/door names gain a "bN_"
  /// prefix; ids stay contiguous per building, which keeps hierarchy
  /// cells building-aligned.
  int buildings = 3;
  /// Per-building knobs. `with_outdoor` and `seed` are ignored: the
  /// campus owns the outdoor partition and the jitter stream.
  BuildingConfig building;
  /// Open ground between neighboring building bounding boxes, meters.
  double building_gap = 20.0;
  /// Seed for the shared jitter stream (buildings differ naturally).
  uint64_t seed = 42;
};

/// Generates the campus: `buildings` copies of the configured building,
/// x-offset and name-prefixed, plus the shared outdoor partition and one
/// entrance door per building. With buildings == 1 the plan is the same
/// topology as GenerateBuilding(with_outdoor=true) modulo names.
FloorPlan GenerateCampus(const CampusConfig& config);

}  // namespace indoor

#endif  // INDOOR_GEN_BUILDING_GENERATOR_H_
