#include "gen/building_generator.h"

#include <string>
#include <vector>

#include "indoor/floor_plan_builder.h"

namespace indoor {

FloorPlan GenerateBuilding(const BuildingConfig& config) {
  INDOOR_CHECK(config.floors >= 1);
  INDOOR_CHECK(config.rooms_per_floor >= 1);
  INDOOR_CHECK(config.room_size_jitter >= 0.0 &&
               config.room_size_jitter < 1.0);
  Rng rng(config.seed);
  FloorPlanBuilder builder;

  const int rooms_bottom = (config.rooms_per_floor + 1) / 2;
  const int rooms_top = config.rooms_per_floor / 2;
  const double rw = config.room_width;
  const double width = rooms_bottom * rw;  // hallway length
  const double max_depth = config.room_depth * (1.0 + config.room_size_jitter);
  const double band = 2.0 * max_depth + config.hallway_width;
  const double stride = band + config.floor_gap;
  const double dw = config.door_width;
  const double shaft_depth = 3.0;

  // Per-floor hallway partition ids and y-extents.
  std::vector<PartitionId> hallways(config.floors + 1, kInvalidId);
  std::vector<double> hall_lo(config.floors + 1), hall_hi(config.floors + 1);

  PartitionId outdoor = kInvalidId;
  if (config.with_outdoor) {
    const double top = (config.floors - 1) * stride + band;
    outdoor = builder.AddPartition(
        "outdoor", PartitionKind::kOutdoor, 0,
        Rect(-shaft_depth - 2.0, -2.0, width + shaft_depth + 2.0, top + 2.0));
  }

  for (int f = 1; f <= config.floors; ++f) {
    const double y0 = (f - 1) * stride;
    hall_lo[f] = y0 + max_depth;
    hall_hi[f] = hall_lo[f] + config.hallway_width;
    const std::string prefix = "f" + std::to_string(f) + "_";

    hallways[f] =
        builder.AddPartition(prefix + "hall", PartitionKind::kHallway, f,
                             Rect(0.0, hall_lo[f], width, hall_hi[f]));

    // Rooms on each hallway side, star-connected through one door each;
    // optional extra doors between side-neighbors (room_to_room_doors).
    struct SideRoom {
      PartitionId id;
      double depth;
    };
    auto add_side = [&](int count, int index_base, bool below) {
      std::vector<SideRoom> side;
      for (int i = 0; i < count; ++i) {
        const double depth =
            config.room_depth *
            (1.0 + config.room_size_jitter * (2.0 * rng.NextDouble() - 1.0));
        const double x0 = i * rw;
        const double wall = below ? hall_lo[f] : hall_hi[f];
        const Rect footprint =
            below ? Rect(x0, wall - depth, x0 + rw, wall)
                  : Rect(x0, wall, x0 + rw, wall + depth);
        PartitionId room;
        if (rng.NextBool(config.obstacle_probability)) {
          // A centered pillar covering ~1/3 of each room dimension; the
          // ring around it stays walkable and the wall-mounted door stays
          // clear.
          const Point center = footprint.Center();
          const double hw = footprint.Width() / 6.0;
          const double hh = footprint.Height() / 6.0;
          auto region = ObstructedRegion::Create(
              Polygon::FromRect(footprint),
              {Polygon::FromRect(Rect(center.x - hw, center.y - hh,
                                      center.x + hw, center.y + hh))});
          INDOOR_CHECK(region.ok()) << region.status().ToString();
          room = builder.AddPartition(
              prefix + "room" + std::to_string(index_base + i),
              PartitionKind::kRoom, f, std::move(region).value());
        } else {
          room = builder.AddPartition(
              prefix + "room" + std::to_string(index_base + i),
              PartitionKind::kRoom, f, footprint);
        }
        // Door on the hallway wall, jittered within the middle half.
        const double dx = x0 + rw * (0.25 + 0.5 * rng.NextDouble());
        builder.AddBidirectionalDoor(
            prefix + "d" + std::to_string(index_base + i),
            Segment({dx - dw / 2, wall}, {dx + dw / 2, wall}), room,
            hallways[f]);
        side.push_back({room, depth});
      }
      // Extra doors through the shared walls of neighboring rooms.
      for (int i = 0; i + 1 < count; ++i) {
        if (!rng.NextBool(config.room_to_room_doors)) continue;
        const double x_wall = (i + 1) * rw;
        const double overlap = std::min(side[i].depth, side[i + 1].depth);
        const double wall = below ? hall_lo[f] : hall_hi[f];
        const double dy = below ? wall - overlap * 0.5 : wall + overlap * 0.5;
        const Segment geom({x_wall, dy - dw / 2}, {x_wall, dy + dw / 2});
        const std::string name =
            prefix + "r2r" + std::to_string(index_base + i);
        if (rng.NextBool(config.one_way_fraction)) {
          const bool forward = rng.NextBool();
          builder.AddUnidirectionalDoor(
              name, geom, forward ? side[i].id : side[i + 1].id,
              forward ? side[i + 1].id : side[i].id);
        } else {
          builder.AddBidirectionalDoor(name, geom, side[i].id,
                                       side[i + 1].id);
        }
      }
    };
    add_side(rooms_bottom, 0, /*below=*/true);
    add_side(rooms_top, rooms_bottom, /*below=*/false);
  }

  // Staircase flights between consecutive floors, alternating between the
  // two shafts at the hallway ends: every middle floor gets exactly two
  // staircase doors (one flight arriving, one leaving).
  auto add_flight = [&](int f, bool right, const std::string& name) {
    const double x_wall = right ? width : 0.0;
    const double x_outer = right ? width + shaft_depth : -shaft_depth;
    const double mid_lower = (hall_lo[f] + hall_hi[f]) / 2.0;
    const double mid_upper = (hall_lo[f + 1] + hall_hi[f + 1]) / 2.0;
    const double flat = mid_upper - mid_lower;
    const double scale = config.stair_walk_length / flat;
    const PartitionId flight = builder.AddPartition(
        name, PartitionKind::kStaircase, f,
        Rect(std::min(x_wall, x_outer), hall_lo[f],
             std::max(x_wall, x_outer), hall_hi[f + 1]),
        scale);
    builder.AddBidirectionalDoor(
        name + "_lo",
        Segment({x_wall, mid_lower - dw / 2}, {x_wall, mid_lower + dw / 2}),
        hallways[f], flight);
    builder.AddBidirectionalDoor(
        name + "_hi",
        Segment({x_wall, mid_upper - dw / 2}, {x_wall, mid_upper + dw / 2}),
        flight, hallways[f + 1]);
  };
  for (int f = 1; f < config.floors; ++f) {
    if (config.parallel_staircases) {
      add_flight(f, /*right=*/true, "stair" + std::to_string(f) + "R");
      add_flight(f, /*right=*/false, "stair" + std::to_string(f) + "L");
    } else {
      add_flight(f, /*right=*/(f % 2 == 1), "stair" + std::to_string(f));
    }
  }

  if (config.with_outdoor) {
    // Ground-floor entrance on the hallway's left end (the left shaft is
    // first used by flight 2, which starts at floor 2, so floor 1's left
    // wall is free).
    const double mid = (hall_lo[1] + hall_hi[1]) / 2.0;
    builder.AddBidirectionalDoor(
        "entrance", Segment({0.0, mid - dw / 2}, {0.0, mid + dw / 2}),
        outdoor, hallways[1]);
  }

  auto plan = std::move(builder).Build();
  INDOOR_CHECK(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

}  // namespace indoor
