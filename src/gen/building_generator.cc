#include "gen/building_generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "indoor/floor_plan_builder.h"

namespace indoor {
namespace {

// One building's bounding-box half extents, shared by the single-building
// and campus layouts.
constexpr double kShaftDepth = 3.0;

double BuildingWidth(const BuildingConfig& config) {
  const int rooms_bottom = (config.rooms_per_floor + 1) / 2;
  return rooms_bottom * config.room_width;  // hallway length
}

double BuildingHeight(const BuildingConfig& config) {
  const double max_depth = config.room_depth * (1.0 + config.room_size_jitter);
  const double band = 2.0 * max_depth + config.hallway_width;
  return (config.floors - 1) * (band + config.floor_gap) + band;
}

// Emits one building's partitions and doors at horizontal offset `x_off`,
// prefixing every name with `prefix` ("" for the single-building plan,
// "bN_" on a campus). When `outdoor` is a valid partition, a ground-floor
// entrance door is added on the building's left wall. The jitter stream
// `rng` is shared across buildings so campus buildings differ naturally.
void EmitBuilding(FloorPlanBuilder& builder, const BuildingConfig& config,
                  Rng& rng, double x_off, const std::string& prefix,
                  PartitionId outdoor) {
  INDOOR_CHECK(config.floors >= 1);
  INDOOR_CHECK(config.rooms_per_floor >= 1);
  INDOOR_CHECK(config.room_size_jitter >= 0.0 &&
               config.room_size_jitter < 1.0);

  const int rooms_bottom = (config.rooms_per_floor + 1) / 2;
  const int rooms_top = config.rooms_per_floor / 2;
  const double rw = config.room_width;
  const double width = BuildingWidth(config);
  const double max_depth = config.room_depth * (1.0 + config.room_size_jitter);
  const double band = 2.0 * max_depth + config.hallway_width;
  const double stride = band + config.floor_gap;
  const double dw = config.door_width;

  // Per-floor hallway partition ids and y-extents.
  std::vector<PartitionId> hallways(config.floors + 1, kInvalidId);
  std::vector<double> hall_lo(config.floors + 1), hall_hi(config.floors + 1);

  for (int f = 1; f <= config.floors; ++f) {
    const double y0 = (f - 1) * stride;
    hall_lo[f] = y0 + max_depth;
    hall_hi[f] = hall_lo[f] + config.hallway_width;
    const std::string fprefix = prefix + "f" + std::to_string(f) + "_";

    hallways[f] = builder.AddPartition(
        fprefix + "hall", PartitionKind::kHallway, f,
        Rect(x_off, hall_lo[f], x_off + width, hall_hi[f]));

    // Rooms on each hallway side, star-connected through one door each;
    // optional extra doors between side-neighbors (room_to_room_doors).
    struct SideRoom {
      PartitionId id;
      double depth;
    };
    auto add_side = [&](int count, int index_base, bool below) {
      std::vector<SideRoom> side;
      for (int i = 0; i < count; ++i) {
        const double depth =
            config.room_depth *
            (1.0 + config.room_size_jitter * (2.0 * rng.NextDouble() - 1.0));
        const double x0 = x_off + i * rw;
        const double wall = below ? hall_lo[f] : hall_hi[f];
        const Rect footprint =
            below ? Rect(x0, wall - depth, x0 + rw, wall)
                  : Rect(x0, wall, x0 + rw, wall + depth);
        PartitionId room;
        if (rng.NextBool(config.obstacle_probability)) {
          // A centered pillar covering ~1/3 of each room dimension; the
          // ring around it stays walkable and the wall-mounted door stays
          // clear.
          const Point center = footprint.Center();
          const double hw = footprint.Width() / 6.0;
          const double hh = footprint.Height() / 6.0;
          auto region = ObstructedRegion::Create(
              Polygon::FromRect(footprint),
              {Polygon::FromRect(Rect(center.x - hw, center.y - hh,
                                      center.x + hw, center.y + hh))});
          INDOOR_CHECK(region.ok()) << region.status().ToString();
          room = builder.AddPartition(
              fprefix + "room" + std::to_string(index_base + i),
              PartitionKind::kRoom, f, std::move(region).value());
        } else {
          room = builder.AddPartition(
              fprefix + "room" + std::to_string(index_base + i),
              PartitionKind::kRoom, f, footprint);
        }
        // Door on the hallway wall, jittered within the middle half.
        const double dx = x0 + rw * (0.25 + 0.5 * rng.NextDouble());
        builder.AddBidirectionalDoor(
            fprefix + "d" + std::to_string(index_base + i),
            Segment({dx - dw / 2, wall}, {dx + dw / 2, wall}), room,
            hallways[f]);
        side.push_back({room, depth});
      }
      // Extra doors through the shared walls of neighboring rooms.
      for (int i = 0; i + 1 < count; ++i) {
        if (!rng.NextBool(config.room_to_room_doors)) continue;
        const double x_wall = x_off + (i + 1) * rw;
        const double overlap = std::min(side[i].depth, side[i + 1].depth);
        const double wall = below ? hall_lo[f] : hall_hi[f];
        const double dy = below ? wall - overlap * 0.5 : wall + overlap * 0.5;
        const Segment geom({x_wall, dy - dw / 2}, {x_wall, dy + dw / 2});
        const std::string name =
            fprefix + "r2r" + std::to_string(index_base + i);
        if (rng.NextBool(config.one_way_fraction)) {
          const bool forward = rng.NextBool();
          builder.AddUnidirectionalDoor(
              name, geom, forward ? side[i].id : side[i + 1].id,
              forward ? side[i + 1].id : side[i].id);
        } else {
          builder.AddBidirectionalDoor(name, geom, side[i].id,
                                       side[i + 1].id);
        }
      }
    };
    add_side(rooms_bottom, 0, /*below=*/true);
    add_side(rooms_top, rooms_bottom, /*below=*/false);
  }

  // Staircase flights between consecutive floors, alternating between the
  // two shafts at the hallway ends: every middle floor gets exactly two
  // staircase doors (one flight arriving, one leaving).
  auto add_flight = [&](int f, bool right, const std::string& name) {
    const double x_wall = x_off + (right ? width : 0.0);
    const double x_outer =
        x_off + (right ? width + kShaftDepth : -kShaftDepth);
    const double mid_lower = (hall_lo[f] + hall_hi[f]) / 2.0;
    const double mid_upper = (hall_lo[f + 1] + hall_hi[f + 1]) / 2.0;
    const double flat = mid_upper - mid_lower;
    const double scale = config.stair_walk_length / flat;
    const PartitionId flight = builder.AddPartition(
        name, PartitionKind::kStaircase, f,
        Rect(std::min(x_wall, x_outer), hall_lo[f],
             std::max(x_wall, x_outer), hall_hi[f + 1]),
        scale);
    builder.AddBidirectionalDoor(
        name + "_lo",
        Segment({x_wall, mid_lower - dw / 2}, {x_wall, mid_lower + dw / 2}),
        hallways[f], flight);
    builder.AddBidirectionalDoor(
        name + "_hi",
        Segment({x_wall, mid_upper - dw / 2}, {x_wall, mid_upper + dw / 2}),
        flight, hallways[f + 1]);
  };
  for (int f = 1; f < config.floors; ++f) {
    if (config.parallel_staircases) {
      add_flight(f, /*right=*/true, prefix + "stair" + std::to_string(f) + "R");
      add_flight(f, /*right=*/false,
                 prefix + "stair" + std::to_string(f) + "L");
    } else {
      add_flight(f, /*right=*/(f % 2 == 1),
                 prefix + "stair" + std::to_string(f));
    }
  }

  if (outdoor != kInvalidId) {
    // Ground-floor entrance on the hallway's left end (the left shaft is
    // first used by flight 2, which starts at floor 2, so floor 1's left
    // wall is free).
    const double mid = (hall_lo[1] + hall_hi[1]) / 2.0;
    builder.AddBidirectionalDoor(
        prefix + "entrance",
        Segment({x_off, mid - dw / 2}, {x_off, mid + dw / 2}), outdoor,
        hallways[1]);
  }
}

}  // namespace

FloorPlan GenerateBuilding(const BuildingConfig& config) {
  Rng rng(config.seed);
  FloorPlanBuilder builder;

  PartitionId outdoor = kInvalidId;
  if (config.with_outdoor) {
    const double width = BuildingWidth(config);
    const double top = BuildingHeight(config);
    outdoor = builder.AddPartition(
        "outdoor", PartitionKind::kOutdoor, 0,
        Rect(-kShaftDepth - 2.0, -2.0, width + kShaftDepth + 2.0, top + 2.0));
  }

  EmitBuilding(builder, config, rng, /*x_off=*/0.0, /*prefix=*/"", outdoor);

  auto plan = std::move(builder).Build();
  INDOOR_CHECK(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

FloorPlan GenerateCampus(const CampusConfig& config) {
  INDOOR_CHECK(config.buildings >= 1);
  INDOOR_CHECK(config.building_gap >= 0.0);
  Rng rng(config.seed);
  FloorPlanBuilder builder;

  const double width = BuildingWidth(config.building);
  const double top = BuildingHeight(config.building);
  // Building n's left wall sits at n * stride; its bounding box (shafts
  // included) spans [n*stride - kShaftDepth, n*stride + width +
  // kShaftDepth], leaving building_gap meters of ground to the next box.
  const double stride = width + 2.0 * kShaftDepth + config.building_gap;
  const double x_last = (config.buildings - 1) * stride + width;

  // One outdoor partition spans the whole campus; intra-outdoor walking
  // distance is the unobstructed straight line, exactly like the
  // single-building outdoor.
  const PartitionId outdoor = builder.AddPartition(
      "outdoor", PartitionKind::kOutdoor, 0,
      Rect(-kShaftDepth - 2.0, -2.0, x_last + kShaftDepth + 2.0, top + 2.0));

  for (int b = 0; b < config.buildings; ++b) {
    EmitBuilding(builder, config.building, rng, b * stride,
                 "b" + std::to_string(b + 1) + "_", outdoor);
  }

  auto plan = std::move(builder).Build();
  INDOOR_CHECK(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

}  // namespace indoor
