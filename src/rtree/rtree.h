// R-tree spatial access method.
//
// The paper implements getHostPartition(p) "as a point query using a spatial
// access method (e.g., an R-tree) that indexes all partitions" (§III-D2).
// This is that access method: a classic Guttman R-tree with quadratic split
// for dynamic inserts plus an STR (sort-tile-recursive) bulk loader used when
// a whole floor plan is indexed at once.

#ifndef INDOOR_RTREE_RTREE_H_
#define INDOOR_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/rect.h"

namespace indoor {

/// An R-tree mapping rectangles to opaque uint32 ids.
class RTree {
 public:
  /// Tree node; defined in the .cc. Public so file-local helpers (invariant
  /// checker) can traverse; not part of the supported API surface.
  struct Node;

  /// `max_entries` is the node fan-out M; min fill is M * 0.4 (>= 2).
  explicit RTree(int max_entries = 16);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Bulk-loads `items` with STR packing; replaces current contents.
  void BulkLoad(std::vector<std::pair<Rect, uint32_t>> items);

  /// Inserts one rectangle.
  void Insert(const Rect& rect, uint32_t id);

  /// Ids of all rectangles containing `p` (closed containment).
  std::vector<uint32_t> QueryPoint(const Point& p) const;

  /// Ids of all rectangles intersecting `window`.
  std::vector<uint32_t> QueryRect(const Rect& window) const;

  /// Ids of all rectangles within `radius` of `center` (min-distance test).
  std::vector<uint32_t> QueryCircle(const Point& center, double radius) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (0 when empty, 1 for a single leaf).
  int Height() const;

  /// Structural invariants for tests: MBR consistency, fill factors,
  /// uniform leaf depth. Aborts via CHECK on violation.
  void CheckInvariants() const;

 private:
  Node* ChooseLeaf(Node* node, const Rect& rect) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);

  std::unique_ptr<Node> root_;
  int max_entries_;
  int min_entries_;
  size_t size_ = 0;
};

}  // namespace indoor

#endif  // INDOOR_RTREE_RTREE_H_
