#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/metrics.h"

namespace indoor {

struct RTree::Node {
  bool leaf = true;
  Rect mbr = Rect::Empty();
  Node* parent = nullptr;
  // Leaf payload.
  std::vector<std::pair<Rect, uint32_t>> entries;
  // Internal children.
  std::vector<std::unique_ptr<Node>> children;

  void RecomputeMbr() {
    mbr = Rect::Empty();
    if (leaf) {
      for (const auto& [r, id] : entries) mbr = mbr.Union(r);
    } else {
      for (const auto& c : children) mbr = mbr.Union(c->mbr);
    }
  }

  size_t Fanout() const { return leaf ? entries.size() : children.size(); }
};

RTree::RTree(int max_entries)
    : root_(std::make_unique<Node>()), max_entries_(max_entries) {
  INDOOR_CHECK(max_entries >= 4) << "R-tree fan-out must be >= 4";
  min_entries_ = std::max(2, static_cast<int>(max_entries * 0.4));
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

namespace {

/// Area enlargement of `mbr` needed to cover `rect`.
double Enlargement(const Rect& mbr, const Rect& rect) {
  return mbr.Union(rect).Area() - mbr.Area();
}

}  // namespace

RTree::Node* RTree::ChooseLeaf(Node* node, const Rect& rect) const {
  while (!node->leaf) {
    Node* best = nullptr;
    double best_enlarge = 0.0;
    for (const auto& child : node->children) {
      const double enlarge = Enlargement(child->mbr, rect);
      if (best == nullptr || enlarge < best_enlarge ||
          (enlarge == best_enlarge &&
           child->mbr.Area() < best->mbr.Area())) {
        best = child.get();
        best_enlarge = enlarge;
      }
    }
    node = best;
  }
  return node;
}

void RTree::SplitNode(Node* node) {
  // Guttman quadratic split over the node's entry MBRs.
  std::vector<Rect> rects;
  if (node->leaf) {
    for (const auto& [r, id] : node->entries) rects.push_back(r);
  } else {
    for (const auto& c : node->children) rects.push_back(c->mbr);
  }
  const size_t n = rects.size();

  // Pick seeds: the pair wasting the most area if grouped together.
  size_t seed1 = 0, seed2 = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double waste =
          rects[i].Union(rects[j]).Area() - rects[i].Area() -
          rects[j].Area();
      if (waste > worst) {
        worst = waste;
        seed1 = i;
        seed2 = j;
      }
    }
  }

  std::vector<int> group(n, -1);
  group[seed1] = 0;
  group[seed2] = 1;
  Rect mbr0 = rects[seed1];
  Rect mbr1 = rects[seed2];
  size_t count0 = 1, count1 = 1;
  size_t assigned = 2;

  while (assigned < n) {
    // Force-assign remaining if one group must take all to reach min fill.
    const size_t remaining = n - assigned;
    int forced = -1;
    if (count0 + remaining == static_cast<size_t>(min_entries_)) forced = 0;
    if (count1 + remaining == static_cast<size_t>(min_entries_)) forced = 1;

    // Pick the unassigned entry with maximal preference difference.
    size_t pick = n;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] != -1) continue;
      const double d0 = Enlargement(mbr0, rects[i]);
      const double d1 = Enlargement(mbr1, rects[i]);
      const double diff = std::fabs(d0 - d1);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    INDOOR_CHECK(pick < n);
    int target;
    if (forced != -1) {
      target = forced;
    } else {
      const double d0 = Enlargement(mbr0, rects[pick]);
      const double d1 = Enlargement(mbr1, rects[pick]);
      if (d0 < d1) {
        target = 0;
      } else if (d1 < d0) {
        target = 1;
      } else {
        target = (count0 <= count1) ? 0 : 1;
      }
    }
    group[pick] = target;
    if (target == 0) {
      mbr0 = mbr0.Union(rects[pick]);
      ++count0;
    } else {
      mbr1 = mbr1.Union(rects[pick]);
      ++count1;
    }
    ++assigned;
  }

  // Materialize the sibling node with group-1 entries.
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;
  if (node->leaf) {
    std::vector<std::pair<Rect, uint32_t>> keep;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] == 0) {
        keep.push_back(node->entries[i]);
      } else {
        sibling->entries.push_back(node->entries[i]);
      }
    }
    node->entries = std::move(keep);
  } else {
    std::vector<std::unique_ptr<Node>> keep;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] == 0) {
        keep.push_back(std::move(node->children[i]));
      } else {
        node->children[i]->parent = sibling.get();
        sibling->children.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep);
  }
  node->RecomputeMbr();
  sibling->RecomputeMbr();

  if (node->parent == nullptr) {
    // Grow a new root.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    auto old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling->parent = new_root.get();
    new_root->children.push_back(std::move(old_root));
    new_root->children.push_back(std::move(sibling));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
  } else {
    Node* parent = node->parent;
    sibling->parent = parent;
    parent->children.push_back(std::move(sibling));
    if (parent->Fanout() > static_cast<size_t>(max_entries_)) {
      SplitNode(parent);
    }
  }
}

void RTree::AdjustUpward(Node* node) {
  for (Node* cur = node; cur != nullptr; cur = cur->parent) {
    cur->RecomputeMbr();
  }
}

void RTree::Insert(const Rect& rect, uint32_t id) {
  Node* leaf = ChooseLeaf(root_.get(), rect);
  leaf->entries.push_back({rect, id});
  AdjustUpward(leaf);
  if (leaf->entries.size() > static_cast<size_t>(max_entries_)) {
    SplitNode(leaf);
  }
  ++size_;
}

void RTree::BulkLoad(std::vector<std::pair<Rect, uint32_t>> items) {
  root_ = std::make_unique<Node>();
  size_ = items.size();
  if (items.empty()) return;

  // STR packing: sort by center x, slice into vertical strips, sort each
  // strip by center y, pack runs of max_entries_ into leaves; then repeat
  // upward over node MBRs.
  const size_t cap = static_cast<size_t>(max_entries_);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) {
              return a.first.Center().x < b.first.Center().x;
            });
  const size_t leaf_count = (items.size() + cap - 1) / cap;
  const size_t strip_count = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t per_strip =
      (items.size() + strip_count - 1) / strip_count;

  std::vector<std::unique_ptr<Node>> level;
  for (size_t s = 0; s < strip_count; ++s) {
    const size_t begin = s * per_strip;
    if (begin >= items.size()) break;
    const size_t end = std::min(items.size(), begin + per_strip);
    std::sort(items.begin() + begin, items.begin() + end,
              [](const auto& a, const auto& b) {
                return a.first.Center().y < b.first.Center().y;
              });
    for (size_t i = begin; i < end; i += cap) {
      auto node = std::make_unique<Node>();
      node->leaf = true;
      const size_t run_end = std::min(end, i + cap);
      node->entries.assign(items.begin() + i, items.begin() + run_end);
      node->RecomputeMbr();
      level.push_back(std::move(node));
    }
  }

  // Pack levels upward until a single root remains.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [](const auto& a, const auto& b) {
                return a->mbr.Center().x < b->mbr.Center().x;
              });
    const size_t parent_count = (level.size() + cap - 1) / cap;
    const size_t strips = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(parent_count))));
    const size_t per =
        (level.size() + strips - 1) / strips;
    std::vector<std::unique_ptr<Node>> next;
    for (size_t s = 0; s < strips; ++s) {
      const size_t begin = s * per;
      if (begin >= level.size()) break;
      const size_t end = std::min(level.size(), begin + per);
      std::sort(level.begin() + begin, level.begin() + end,
                [](const auto& a, const auto& b) {
                  return a->mbr.Center().y < b->mbr.Center().y;
                });
      for (size_t i = begin; i < end; i += cap) {
        auto node = std::make_unique<Node>();
        node->leaf = false;
        const size_t run_end = std::min(end, i + cap);
        for (size_t j = i; j < run_end; ++j) {
          level[j]->parent = node.get();
          node->children.push_back(std::move(level[j]));
        }
        node->RecomputeMbr();
        next.push_back(std::move(node));
      }
    }
    level = std::move(next);
  }
  root_ = std::move(level.front());
  root_->parent = nullptr;
}

std::vector<uint32_t> RTree::QueryPoint(const Point& p) const {
  std::vector<uint32_t> out;
  std::vector<const Node*> stack{root_.get()};
  INDOOR_METRICS_ONLY(uint64_t node_visits = 0;)
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    INDOOR_METRICS_ONLY(++node_visits;)
    if (!node->mbr.Contains(p) && node->Fanout() > 0) continue;
    if (node->leaf) {
      for (const auto& [r, id] : node->entries) {
        if (r.Contains(p)) out.push_back(id);
      }
    } else {
      for (const auto& c : node->children) {
        if (c->mbr.Contains(p)) stack.push_back(c.get());
      }
    }
  }
  INDOOR_COUNTER_INC("index.rtree.point_queries");
  INDOOR_METRICS_ONLY(
      INDOOR_COUNTER_ADD("index.rtree.node_visits", node_visits);)
  return out;
}

std::vector<uint32_t> RTree::QueryRect(const Rect& window) const {
  std::vector<uint32_t> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (const auto& [r, id] : node->entries) {
        if (r.Intersects(window)) out.push_back(id);
      }
    } else {
      for (const auto& c : node->children) {
        if (c->mbr.Intersects(window)) stack.push_back(c.get());
      }
    }
  }
  return out;
}

std::vector<uint32_t> RTree::QueryCircle(const Point& center,
                                         double radius) const {
  std::vector<uint32_t> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (const auto& [r, id] : node->entries) {
        if (r.IntersectsCircle(center, radius)) out.push_back(id);
      }
    } else {
      for (const auto& c : node->children) {
        if (c->mbr.IntersectsCircle(center, radius)) stack.push_back(c.get());
      }
    }
  }
  return out;
}

int RTree::Height() const {
  if (size_ == 0) return 0;
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

namespace {

void CheckNode(const RTree::Node* node, bool is_root, int min_entries,
               int max_entries, int depth, int* leaf_depth);

}  // namespace

void RTree::CheckInvariants() const {
  int leaf_depth = -1;
  CheckNode(root_.get(), /*is_root=*/true, min_entries_, max_entries_, 0,
            &leaf_depth);
}

namespace {

void CheckNode(const RTree::Node* node, bool is_root, int min_entries,
               int max_entries, int depth, int* leaf_depth) {
  // Max fan-out always holds. Minimum fill is NOT asserted: STR packing
  // legitimately underfills the trailing node of each level.
  (void)min_entries;
  const size_t fanout = node->Fanout();
  INDOOR_CHECK(fanout <= static_cast<size_t>(max_entries));
  if (!is_root && !node->leaf) {
    INDOOR_CHECK(fanout >= 1) << "empty internal node";
  }
  Rect expect = Rect::Empty();
  if (node->leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else {
      INDOOR_CHECK(*leaf_depth == depth) << "leaves at unequal depth";
    }
    for (const auto& [r, id] : node->entries) expect = expect.Union(r);
  } else {
    INDOOR_CHECK(fanout >= 2 || !is_root);
    for (const auto& c : node->children) {
      INDOOR_CHECK(c->parent == node) << "broken parent pointer";
      CheckNode(c.get(), false, min_entries, max_entries, depth + 1,
                leaf_depth);
      expect = expect.Union(c->mbr);
    }
  }
  if (fanout > 0) {
    INDOOR_CHECK(std::fabs(expect.lo.x - node->mbr.lo.x) < 1e-9 &&
                 std::fabs(expect.lo.y - node->mbr.lo.y) < 1e-9 &&
                 std::fabs(expect.hi.x - node->mbr.hi.x) < 1e-9 &&
                 std::fabs(expect.hi.y - node->mbr.hi.y) < 1e-9)
        << "stale MBR";
  }
}

}  // namespace

}  // namespace indoor
