#include "geometry/visibility_graph.h"

#include <algorithm>

namespace indoor {
namespace {

/// A point strictly inside any obstacle blocks free space.
bool StrictlyInsideAnyObstacle(const std::vector<Polygon>& obstacles,
                               const Point& p) {
  for (const Polygon& obs : obstacles) {
    if (obs.ContainsStrict(p)) return true;
  }
  return false;
}

}  // namespace

GeodesicScratch& TlsGeodesicScratch() {
  static thread_local GeodesicScratch scratch;
  return scratch;
}

Result<ObstructedRegion> ObstructedRegion::Create(
    Polygon outer, std::vector<Polygon> obstacles) {
  for (size_t i = 0; i < obstacles.size(); ++i) {
    for (const Point& v : obstacles[i].vertices()) {
      if (!outer.Contains(v)) {
        return Status::InvalidArgument(
            "obstacle vertex lies outside the partition footprint");
      }
    }
    for (size_t j = i + 1; j < obstacles.size(); ++j) {
      // Overlap check: any vertex of one strictly inside the other, or any
      // proper edge crossing.
      for (const Point& v : obstacles[i].vertices()) {
        if (obstacles[j].ContainsStrict(v)) {
          return Status::InvalidArgument("obstacles overlap");
        }
      }
      for (const Point& v : obstacles[j].vertices()) {
        if (obstacles[i].ContainsStrict(v)) {
          return Status::InvalidArgument("obstacles overlap");
        }
      }
      for (size_t ei = 0; ei < obstacles[i].size(); ++ei) {
        for (size_t ej = 0; ej < obstacles[j].size(); ++ej) {
          if (SegmentsProperlyIntersect(obstacles[i].Edge(ei),
                                        obstacles[j].Edge(ej))) {
            return Status::InvalidArgument("obstacles overlap");
          }
        }
      }
    }
  }
  ObstructedRegion region;
  region.outer_ = std::move(outer);
  region.obstacles_ = std::move(obstacles);
  region.BuildStaticGraph();
  return region;
}

ObstructedRegion ObstructedRegion::FromPolygon(Polygon outer) {
  auto result = Create(std::move(outer), {});
  INDOOR_CHECK(result.ok());
  return std::move(result).value();
}

bool ObstructedRegion::Contains(const Point& p) const {
  if (!outer_.Contains(p)) return false;
  return !StrictlyInsideAnyObstacle(obstacles_, p);
}

bool ObstructedRegion::Visible(const Point& a, const Point& b) const {
  const Segment seg(a, b);
  // Blocked by a proper crossing of any obstacle edge. Grazing along an
  // obstacle edge (collinear overlap) is allowed only when free space
  // remains on at least one side of the grazed stretch; an obstacle flush
  // against a wall leaves no walkable corridor.
  for (const Polygon& obs : obstacles_) {
    if (!obs.BoundingBox().Intersects(
            Rect(Point(std::min(a.x, b.x), std::min(a.y, b.y)),
                 Point(std::max(a.x, b.x), std::max(a.y, b.y))))) {
      continue;
    }
    for (size_t i = 0; i < obs.size(); ++i) {
      const Segment edge = obs.Edge(i);
      if (SegmentsProperlyIntersect(seg, edge)) return false;
      if (SegmentsCollinearOverlap(seg, edge)) {
        // Midpoint of the overlapped stretch, offset to both sides.
        const Point dir = edge.b - edge.a;
        const double len2 = Dot(dir, dir);
        auto t_of = [&](const Point& p) {
          return std::clamp(Dot(p - edge.a, dir) / len2, 0.0, 1.0);
        };
        const double t0 = t_of(a);
        const double t1 = t_of(b);
        const Point m = Lerp(edge.a, edge.b, (t0 + t1) * 0.5);
        const double len = std::sqrt(len2);
        const Point normal(-dir.y / len * 1e-6, dir.x / len * 1e-6);
        if (!Contains(m + normal) && !Contains(m - normal)) return false;
      }
    }
  }
  // Blocked if it leaves the outer footprint.
  for (size_t i = 0; i < outer_.size(); ++i) {
    if (SegmentsProperlyIntersect(seg, outer_.Edge(i))) return false;
  }
  // Proper crossings absorbed; reject segments whose interior dips into an
  // obstacle or out of the footprint via vertices (no proper crossing).
  for (double t : {0.25, 0.5, 0.75}) {
    const Point m = Lerp(a, b, t);
    if (!outer_.Contains(m)) return false;
    if (StrictlyInsideAnyObstacle(obstacles_, m)) return false;
  }
  return true;
}

void ObstructedRegion::BuildStaticGraph() {
  nodes_.clear();
  // Obstacle corners are the canonical visibility-graph nodes.
  for (const Polygon& obs : obstacles_) {
    for (const Point& v : obs.vertices()) nodes_.push_back(v);
  }
  // Reflex vertices of a non-convex footprint also shape shortest paths.
  if (!outer_.IsConvex()) {
    const auto& ring = outer_.vertices();
    const size_t n = ring.size();
    for (size_t i = 0; i < n; ++i) {
      const Point& prev = ring[(i + n - 1) % n];
      const Point& cur = ring[i];
      const Point& next = ring[(i + 1) % n];
      if (Orient(prev, cur, next) < -kGeomEps) {
        nodes_.push_back(cur);  // reflex corner in a CCW ring
      }
    }
  }
  // Pairwise visibility, flattened to CSR. Adjacency rows come out sorted
  // by neighbor index (i < j pairs are discovered in ascending order).
  const size_t n = nodes_.size();
  std::vector<std::vector<VisEdge>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (Visible(nodes_[i], nodes_[j])) {
        const double d = indoor::Distance(nodes_[i], nodes_[j]);
        rows[i].push_back({static_cast<int>(j), d});
        rows[j].push_back({static_cast<int>(i), d});
      }
    }
  }
  adj_offsets_.assign(n + 1, 0);
  adj_edges_.clear();
  for (size_t i = 0; i < n; ++i) {
    adj_offsets_[i] = static_cast<int>(adj_edges_.size());
    adj_edges_.insert(adj_edges_.end(), rows[i].begin(), rows[i].end());
  }
  adj_offsets_[n] = static_cast<int>(adj_edges_.size());
}

double ObstructedRegion::Distance(const Point& a, const Point& b,
                                  GeodesicScratch* scratch) const {
  if (Visible(a, b)) return indoor::Distance(a, b);
  if (scratch == nullptr) scratch = &TlsGeodesicScratch();
  return Solve(a, b, nullptr, scratch);
}

std::vector<Point> ObstructedRegion::ShortestPath(const Point& a,
                                                  const Point& b) const {
  if (Visible(a, b)) return {a, b};
  std::vector<Point> path;
  const double d = Solve(a, b, &path, &TlsGeodesicScratch());
  if (d == kInfDistance) return {};
  return path;
}

double ObstructedRegion::Solve(const Point& a, const Point& b,
                               std::vector<Point>* out_path,
                               GeodesicScratch* scratch) const {
  // Node layout: [0, n) static nodes, n = a, n+1 = b.
  const int n = static_cast<int>(nodes_.size());
  const int src = n;
  const int dst = n + 1;
  // The pairwise solve clobbers dist/settled, so any cached single-source
  // state in this scratch no longer matches its buffers.
  scratch->InvalidateSource();
  std::vector<double>& dist = scratch->dist;
  std::vector<int>& prev = scratch->prev;
  std::vector<char>& settled = scratch->settled;
  auto& heap = scratch->heap;
  dist.assign(n + 2, kInfDistance);
  prev.assign(n + 2, -1);
  settled.assign(n + 2, 0);
  heap.clear();

  auto relax = [&](int from, int to, double w) {
    if (dist[from] + w < dist[to]) {
      dist[to] = dist[from] + w;
      prev[to] = from;
      heap.push({dist[to], to});
    }
  };

  dist[src] = 0.0;
  heap.push({0.0, src});
  // Dynamic edges from the endpoints to every visible static node, plus the
  // direct edge if visible (caller already handled it, but keep it correct).
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    if (u == dst) break;
    const Point& pu = (u == src) ? a : (u == dst ? b : nodes_[u]);
    if (u == src) {
      for (int v = 0; v < n; ++v) {
        if (Visible(a, nodes_[v])) {
          relax(src, v, indoor::Distance(a, nodes_[v]));
        }
      }
      if (Visible(a, b)) relax(src, dst, indoor::Distance(a, b));
    } else {
      for (int e = adj_offsets_[u]; e < adj_offsets_[u + 1]; ++e) {
        relax(u, adj_edges_[e].to, adj_edges_[e].weight);
      }
      if (Visible(pu, b)) relax(u, dst, indoor::Distance(pu, b));
    }
  }
  if (dist[dst] == kInfDistance) return kInfDistance;
  if (out_path != nullptr) {
    std::vector<int> chain;
    for (int v = dst; v != -1; v = prev[v]) chain.push_back(v);
    std::reverse(chain.begin(), chain.end());
    out_path->clear();
    for (int v : chain) {
      out_path->push_back(v == src ? a : (v == dst ? b : nodes_[v]));
    }
  }
  return dist[dst];
}

void ObstructedRegion::EnsureSourceSolve(const Point& p,
                                         GeodesicScratch* scratch) const {
  if (scratch->source_ready && scratch->source_region == this &&
      scratch->source_x == p.x && scratch->source_y == p.y) {
    return;
  }
  const int n = static_cast<int>(nodes_.size());
  std::vector<double>& dist = scratch->dist;
  std::vector<char>& settled = scratch->settled;
  auto& heap = scratch->heap;
  dist.assign(n, kInfDistance);
  settled.assign(n, 0);
  heap.clear();
  // Seed every static node visible from p, exactly as Solve does when the
  // source settles first.
  for (int v = 0; v < n; ++v) {
    if (Visible(p, nodes_[v])) {
      const double d = indoor::Distance(p, nodes_[v]);
      if (d < dist[v]) {
        dist[v] = d;
        heap.push({d, v});
      }
    }
  }
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    for (int e = adj_offsets_[u]; e < adj_offsets_[u + 1]; ++e) {
      const int to = adj_edges_[e].to;
      if (d + adj_edges_[e].weight < dist[to]) {
        dist[to] = d + adj_edges_[e].weight;
        heap.push({dist[to], to});
      }
    }
  }
  scratch->source_region = this;
  scratch->source_x = p.x;
  scratch->source_y = p.y;
  scratch->source_ready = true;
}

void ObstructedRegion::DistancesToMany(const Point& p,
                                       std::span<const Point> targets,
                                       GeodesicScratch* scratch,
                                       double* out) const {
  if (scratch == nullptr) scratch = &TlsGeodesicScratch();
  std::vector<size_t>& pending = scratch->pending;
  pending.clear();
  for (size_t i = 0; i < targets.size(); ++i) {
    if (Visible(p, targets[i])) {
      out[i] = indoor::Distance(p, targets[i]);
    } else {
      out[i] = kInfDistance;
      pending.push_back(i);
    }
  }
  if (pending.empty() || nodes_.empty()) return;

  // One single-source pass from p over the static graph (cached across
  // calls with the same source), then resolve each blocked target against
  // the settled nodes. This reproduces Solve's value exactly: Solve's
  // dist[dst] is min over settled nodes u of dist[u] + |u, t|, and nodes
  // Solve leaves unsettled satisfy dist[u] >= dist[dst], so scanning the
  // full settled set cannot change the minimum.
  EnsureSourceSolve(p, scratch);
  const int n = static_cast<int>(nodes_.size());
  for (size_t idx : pending) {
    const Point& t = targets[idx];
    double best = kInfDistance;
    for (int u = 0; u < n; ++u) {
      if (!scratch->settled[u]) continue;
      if (scratch->dist[u] >= best) continue;  // |u, t| >= 0 cannot improve
      if (!Visible(nodes_[u], t)) continue;
      const double cand = scratch->dist[u] + indoor::Distance(nodes_[u], t);
      if (cand < best) best = cand;
    }
    out[idx] = best;
  }
}

double ObstructedRegion::MaxDistanceFrom(const Point& p) const {
  if (obstacles_.empty() && outer_.IsConvex()) {
    return outer_.MaxVertexDistance(p);
  }
  // Batch all domain vertices through one one-to-many solve.
  std::vector<Point> targets;
  targets.reserve(outer_.vertices().size());
  for (const Point& v : outer_.vertices()) targets.push_back(v);
  for (const Polygon& obs : obstacles_) {
    for (const Point& v : obs.vertices()) targets.push_back(v);
  }
  std::vector<double> dists(targets.size());
  DistancesToMany(p, targets, nullptr, dists.data());
  double best = 0.0;
  for (double d : dists) {
    if (d != kInfDistance) best = std::max(best, d);
  }
  return best;
}

}  // namespace indoor
