#include "geometry/point.h"

namespace indoor {

bool ApproxEqual(const Point& a, const Point& b, double eps) {
  return std::fabs(a.x - b.x) <= eps && std::fabs(a.y - b.y) <= eps;
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

}  // namespace indoor
