// 2D points/vectors. All coordinates are meters in the building-local frame.
// Multi-floor buildings are "flattened" (paper §VI-A): every partition lives
// in one shared 2D frame, with floors laid out side by side by the generator,
// and staircase walking lengths carried as intra-partition distances.

#ifndef INDOOR_GEOMETRY_POINT_H_
#define INDOOR_GEOMETRY_POINT_H_

#include <cmath>
#include <ostream>

namespace indoor {

/// A 2D point (or vector) in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }
};

/// Dot product.
inline double Dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

/// Z-component of the cross product (a x b).
inline double Cross(const Point& a, const Point& b) {
  return a.x * b.y - a.y * b.x;
}

/// Signed area*2 of triangle (a, b, c); >0 iff counter-clockwise.
inline double Orient(const Point& a, const Point& b, const Point& c) {
  return Cross(b - a, c - a);
}

/// Squared Euclidean distance.
inline double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

/// Linear interpolation a + t*(b-a).
inline Point Lerp(const Point& a, const Point& b, double t) {
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

/// Approximate equality within `eps` per coordinate.
bool ApproxEqual(const Point& a, const Point& b, double eps = 1e-9);

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Shared geometric tolerance for predicates that must absorb floating-point
/// noise (on-boundary tests, collinearity).
inline constexpr double kGeomEps = 1e-9;

}  // namespace indoor

#endif  // INDOOR_GEOMETRY_POINT_H_
