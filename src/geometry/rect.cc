#include "geometry/rect.h"

namespace indoor {

double Rect::MinDistance(const Point& p) const {
  const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
  const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
  return std::sqrt(dx * dx + dy * dy);
}

double Rect::MaxDistance(const Point& p) const {
  const double dx = std::max(std::fabs(p.x - lo.x), std::fabs(p.x - hi.x));
  const double dy = std::max(std::fabs(p.y - lo.y), std::fabs(p.y - hi.y));
  return std::sqrt(dx * dx + dy * dy);
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.lo << " - " << r.hi << "]";
}

}  // namespace indoor
