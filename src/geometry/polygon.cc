#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>

namespace indoor {
namespace {

double SignedArea2(const std::vector<Point>& ring) {
  double sum = 0.0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1) % ring.size()];
    sum += Cross(a, b);
  }
  return sum;
}

bool ComputeConvex(const std::vector<Point>& ring) {
  // CCW ring is convex iff every turn is non-right.
  const size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    if (Orient(ring[i], ring[(i + 1) % n], ring[(i + 2) % n]) < -kGeomEps) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<Polygon> Polygon::Create(std::vector<Point> ring) {
  if (ring.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 vertices");
  }
  // Drop a duplicated closing vertex if present.
  if (ring.size() > 3 && ApproxEqual(ring.front(), ring.back())) {
    ring.pop_back();
  }
  for (size_t i = 0; i < ring.size(); ++i) {
    if (ApproxEqual(ring[i], ring[(i + 1) % ring.size()])) {
      return Status::InvalidArgument(
          "polygon has duplicate consecutive vertices");
    }
  }
  double area2 = SignedArea2(ring);
  if (std::fabs(area2) <= kGeomEps) {
    return Status::InvalidArgument("polygon is degenerate (zero area)");
  }
  if (area2 < 0) {
    std::reverse(ring.begin(), ring.end());
    area2 = -area2;
  }
  Polygon poly;
  poly.vertices_ = std::move(ring);
  poly.area_ = area2 * 0.5;
  poly.bbox_ = Rect::Empty();
  for (const Point& p : poly.vertices_) poly.bbox_.Expand(p);
  poly.convex_ = ComputeConvex(poly.vertices_);
  return poly;
}

Polygon Polygon::FromRect(const Rect& rect) {
  auto result = Create({rect.lo, Point(rect.hi.x, rect.lo.y), rect.hi,
                        Point(rect.lo.x, rect.hi.y)});
  INDOOR_CHECK(result.ok()) << "rect polygon must be valid";
  return std::move(result).value();
}

Segment Polygon::Edge(size_t i) const {
  INDOOR_CHECK(i < vertices_.size());
  return Segment(vertices_[i], vertices_[(i + 1) % vertices_.size()]);
}

Point Polygon::Centroid() const {
  double cx = 0.0, cy = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const double w = Cross(a, b);
    cx += (a.x + b.x) * w;
    cy += (a.y + b.y) * w;
  }
  const double scale = 1.0 / (6.0 * area_);
  return Point(cx * scale, cy * scale);
}

bool Polygon::OnBoundary(const Point& p) const {
  if (!bbox_.Contains(p)) return false;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (PointOnSegment(p, Edge(i))) return true;
  }
  return false;
}

bool Polygon::Contains(const Point& p) const {
  if (!bbox_.Contains(p)) return false;
  if (OnBoundary(p)) return true;
  return ContainsStrict(p);
}

bool Polygon::ContainsStrict(const Point& p) const {
  if (!bbox_.Contains(p)) return false;
  if (OnBoundary(p)) return false;
  // Ray casting along +x.
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      const double x_at =
          a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (x_at > p.x) inside = !inside;
    }
  }
  return inside;
}

double Polygon::MaxVertexDistance(const Point& p) const {
  double best = 0.0;
  for (const Point& v : vertices_) {
    best = std::max(best, Distance(p, v));
  }
  return best;
}

}  // namespace indoor
