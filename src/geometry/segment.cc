#include "geometry/segment.h"

#include <algorithm>

namespace indoor {
namespace {

int Sign(double v) {
  if (v > kGeomEps) return 1;
  if (v < -kGeomEps) return -1;
  return 0;
}

bool BoxesOverlap(const Segment& s, const Segment& t) {
  return std::max(std::min(s.a.x, s.b.x), std::min(t.a.x, t.b.x)) <=
             std::min(std::max(s.a.x, s.b.x), std::max(t.a.x, t.b.x)) +
                 kGeomEps &&
         std::max(std::min(s.a.y, s.b.y), std::min(t.a.y, t.b.y)) <=
             std::min(std::max(s.a.y, s.b.y), std::max(t.a.y, t.b.y)) +
                 kGeomEps;
}

}  // namespace

double DistancePointToSegment(const Point& p, const Segment& s) {
  const Point d = s.b - s.a;
  const double len2 = Dot(d, d);
  if (len2 == 0.0) return Distance(p, s.a);
  double t = Dot(p - s.a, d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, Lerp(s.a, s.b, t));
}

bool PointOnSegment(const Point& p, const Segment& s) {
  return DistancePointToSegment(p, s) <= kGeomEps;
}

bool SegmentsProperlyIntersect(const Segment& s, const Segment& t) {
  const int o1 = Sign(Orient(s.a, s.b, t.a));
  const int o2 = Sign(Orient(s.a, s.b, t.b));
  const int o3 = Sign(Orient(t.a, t.b, s.a));
  const int o4 = Sign(Orient(t.a, t.b, s.b));
  return o1 * o2 < 0 && o3 * o4 < 0;
}

bool SegmentsIntersect(const Segment& s, const Segment& t) {
  if (SegmentsProperlyIntersect(s, t)) return true;
  return PointOnSegment(t.a, s) || PointOnSegment(t.b, s) ||
         PointOnSegment(s.a, t) || PointOnSegment(s.b, t);
}

bool SegmentsCollinearOverlap(const Segment& s, const Segment& t) {
  if (Sign(Orient(s.a, s.b, t.a)) != 0 ||
      Sign(Orient(s.a, s.b, t.b)) != 0) {
    return false;
  }
  if (!BoxesOverlap(s, t)) return false;
  // Collinear with overlapping boxes: overlap is more than a point unless
  // they merely touch at one shared endpoint.
  const Point d = s.b - s.a;
  auto proj = [&](const Point& p) { return Dot(p - s.a, d); };
  double lo1 = std::min(proj(s.a), proj(s.b));
  double hi1 = std::max(proj(s.a), proj(s.b));
  double lo2 = std::min(proj(t.a), proj(t.b));
  double hi2 = std::max(proj(t.a), proj(t.b));
  const double overlap = std::min(hi1, hi2) - std::max(lo1, lo2);
  const double scale = std::max(1.0, hi1 - lo1);
  return overlap > kGeomEps * scale;
}

}  // namespace indoor
