// Simple polygons: the footprint of an indoor partition. Point containment
// backs getHostPartition (paper §III-D2); vertex enumeration backs the fdv
// "longest reachable distance" computation (paper §III-C1 item 4).

#ifndef INDOOR_GEOMETRY_POLYGON_H_
#define INDOOR_GEOMETRY_POLYGON_H_

#include <vector>

#include "geometry/rect.h"
#include "geometry/segment.h"
#include "util/result.h"

namespace indoor {

/// A simple polygon stored as a counter-clockwise vertex ring.
class Polygon {
 public:
  Polygon() = default;

  /// Validates and normalizes a ring: >= 3 vertices, non-zero area, no
  /// duplicate consecutive vertices. Clockwise input is reversed to CCW.
  static Result<Polygon> Create(std::vector<Point> ring);

  /// Convenience: axis-aligned rectangle polygon.
  static Polygon FromRect(const Rect& rect);

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }

  /// Edge i: vertices[i] -> vertices[(i+1) % n].
  Segment Edge(size_t i) const;

  const Rect& BoundingBox() const { return bbox_; }

  double Area() const { return area_; }

  Point Centroid() const;

  /// Closed containment: boundary points count as inside.
  bool Contains(const Point& p) const;

  /// Strict containment: boundary points are outside.
  bool ContainsStrict(const Point& p) const;

  /// True if `p` lies on the boundary (within kGeomEps).
  bool OnBoundary(const Point& p) const;

  bool IsConvex() const { return convex_; }

  /// Maximum Euclidean distance from `p` to any vertex of the ring. For a
  /// convex polygon this equals the maximum distance to any point of the
  /// polygon (the distance field is convex, maximized at a vertex).
  double MaxVertexDistance(const Point& p) const;

 private:
  std::vector<Point> vertices_;
  Rect bbox_ = Rect::Empty();
  double area_ = 0.0;
  bool convex_ = false;
};

}  // namespace indoor

#endif  // INDOOR_GEOMETRY_POLYGON_H_
