// Obstructed intra-partition distances via a visibility graph.
//
// The paper's model accommodates obstacles inside partitions (paper §III-C1:
// "||di, dj||vk is not necessarily a Euclidean distance because there may be
// entities in the line of sight", Fig. 5) but defers the local computation to
// prior work [21]. This module supplies that substrate: a free-space region
// (partition footprint minus polygonal obstacles) with exact shortest
// obstructed paths computed on the visibility graph spanned by obstacle and
// reflex boundary vertices.

#ifndef INDOOR_GEOMETRY_VISIBILITY_GRAPH_H_
#define INDOOR_GEOMETRY_VISIBILITY_GRAPH_H_

#include <limits>
#include <vector>

#include "geometry/polygon.h"
#include "util/result.h"

namespace indoor {

/// Distance value used for "unreachable".
inline constexpr double kInfDistance =
    std::numeric_limits<double>::infinity();

/// A partition footprint with zero or more polygonal obstacles, supporting
/// exact shortest obstructed paths between interior points.
class ObstructedRegion {
 public:
  /// Validates that every obstacle lies inside the outer footprint and that
  /// obstacles do not overlap each other.
  static Result<ObstructedRegion> Create(Polygon outer,
                                         std::vector<Polygon> obstacles);

  /// Obstacle-free region.
  static ObstructedRegion FromPolygon(Polygon outer);

  const Polygon& outer() const { return outer_; }
  const std::vector<Polygon>& obstacles() const { return obstacles_; }
  bool HasObstacles() const { return !obstacles_.empty(); }

  /// Free-space membership: inside the outer ring (closed) and not strictly
  /// inside any obstacle.
  bool Contains(const Point& p) const;

  /// True if the segment a-b stays within free space (may graze boundaries).
  bool Visible(const Point& a, const Point& b) const;

  /// Shortest obstructed distance between two free-space points;
  /// kInfDistance if disconnected. Without obstacles and with a convex
  /// footprint this is the Euclidean distance.
  double Distance(const Point& a, const Point& b) const;

  /// Shortest obstructed path as a waypoint list (including endpoints);
  /// empty if disconnected.
  std::vector<Point> ShortestPath(const Point& a, const Point& b) const;

  /// Longest shortest-path distance from `p` to any point of the region.
  /// The geodesic distance field over a polygonal domain attains its maximum
  /// at a domain vertex, so this maximizes over outer + obstacle vertices.
  double MaxDistanceFrom(const Point& p) const;

 private:
  ObstructedRegion() = default;

  /// Builds node list (obstacle vertices + reflex outer vertices) and the
  /// static pairwise visibility adjacency. Called once at Create time.
  void BuildStaticGraph();

  /// Runs Dijkstra from `a` to `b` over static nodes + the two endpoints.
  /// Fills `out_prev` (indices into the ad-hoc node array) when non-null.
  double Solve(const Point& a, const Point& b,
               std::vector<Point>* out_path) const;

  Polygon outer_;
  std::vector<Polygon> obstacles_;
  std::vector<Point> nodes_;  // static visibility-graph nodes
  // adj_[i] holds (j, distance) for static nodes i < j visibility pairs,
  // stored symmetrically.
  std::vector<std::vector<std::pair<int, double>>> adj_;
};

}  // namespace indoor

#endif  // INDOOR_GEOMETRY_VISIBILITY_GRAPH_H_
