// Obstructed intra-partition distances via a visibility graph.
//
// The paper's model accommodates obstacles inside partitions (paper §III-C1:
// "||di, dj||vk is not necessarily a Euclidean distance because there may be
// entities in the line of sight", Fig. 5) but defers the local computation to
// prior work [21]. This module supplies that substrate: a free-space region
// (partition footprint minus polygonal obstacles) with exact shortest
// obstructed paths computed on the visibility graph spanned by obstacle and
// reflex boundary vertices.
//
// The static graph is stored in CSR form (flat offsets[] + edges[] arrays)
// and every solver can run out of a caller-provided GeodesicScratch, so the
// query hot path (pt2pt legs, grid-bucket searches) performs no per-call
// heap allocations. DistancesToMany settles every target of one source in a
// single Dijkstra pass — the one-to-many primitive that replaces the
// per-door ObstructedRegion::Distance loops of Algorithm 2/3/4.

#ifndef INDOOR_GEOMETRY_VISIBILITY_GRAPH_H_
#define INDOOR_GEOMETRY_VISIBILITY_GRAPH_H_

#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "geometry/polygon.h"
#include "util/min_heap.h"
#include "util/result.h"

namespace indoor {

/// Distance value used for "unreachable".
inline constexpr double kInfDistance =
    std::numeric_limits<double>::infinity();

/// Reusable solver state for ObstructedRegion queries.
///
/// Ownership/threading contract: a GeodesicScratch belongs to exactly one
/// thread at a time — solvers write freely into its buffers and the buffers
/// survive (with their capacity) across calls, which is what makes the
/// steady-state query path allocation-free. It holds no pointers into any
/// region except the source-solve cache below, which is revalidated against
/// the region's address and the exact source coordinates on every use and
/// can always be dropped with InvalidateSource().
struct GeodesicScratch {
  std::vector<double> dist;
  std::vector<int> prev;
  std::vector<char> settled;
  MinHeap<std::pair<double, int>> heap;
  std::vector<size_t> pending;  // target indices not directly visible

  /// Staging buffers for batched callers (DistVMany, bucket searches):
  /// gather targets into `points`, receive results in `values`, remember
  /// output slots in `slots`. The solvers themselves never touch these,
  /// but a caller must not keep staged data across a nested call that
  /// also stages into the same scratch.
  std::vector<Point> points;
  std::vector<double> values;
  std::vector<size_t> slots;

  /// Single-source solve cache: when DistancesToMany is called repeatedly
  /// with the same region and source (e.g. once per grid cell during one
  /// bucket search), the Dijkstra pass runs once and is reused. The cache
  /// is only trusted while `source_ready` is set AND the region address and
  /// source coordinates match bit-for-bit.
  const void* source_region = nullptr;
  double source_x = 0.0, source_y = 0.0;
  bool source_ready = false;

  void InvalidateSource() {
    source_ready = false;
    source_region = nullptr;
  }
};

/// A partition footprint with zero or more polygonal obstacles, supporting
/// exact shortest obstructed paths between interior points.
class ObstructedRegion {
 public:
  /// Validates that every obstacle lies inside the outer footprint and that
  /// obstacles do not overlap each other.
  static Result<ObstructedRegion> Create(Polygon outer,
                                         std::vector<Polygon> obstacles);

  /// Obstacle-free region.
  static ObstructedRegion FromPolygon(Polygon outer);

  const Polygon& outer() const { return outer_; }
  const std::vector<Polygon>& obstacles() const { return obstacles_; }
  bool HasObstacles() const { return !obstacles_.empty(); }

  /// Free-space membership: inside the outer ring (closed) and not strictly
  /// inside any obstacle.
  bool Contains(const Point& p) const;

  /// True if the segment a-b stays within free space (may graze boundaries).
  bool Visible(const Point& a, const Point& b) const;

  /// Shortest obstructed distance between two free-space points;
  /// kInfDistance if disconnected. Without obstacles and with a convex
  /// footprint this is the Euclidean distance. A null `scratch` falls back
  /// to a per-thread scratch (still allocation-free in steady state).
  double Distance(const Point& a, const Point& b,
                  GeodesicScratch* scratch = nullptr) const;

  /// One-to-many: shortest obstructed distance from `p` to every target in
  /// one Dijkstra pass, written to out[0..targets.size()). Each out[i] is
  /// EXACTLY (bitwise) the value Distance(p, targets[i]) would return — the
  /// batched solver performs the same additions over the same edge weights,
  /// so callers may be migrated one at a time without numeric drift.
  void DistancesToMany(const Point& p, std::span<const Point> targets,
                       GeodesicScratch* scratch, double* out) const;

  /// Shortest obstructed path as a waypoint list (including endpoints);
  /// empty if disconnected.
  std::vector<Point> ShortestPath(const Point& a, const Point& b) const;

  /// Longest shortest-path distance from `p` to any point of the region.
  /// The geodesic distance field over a polygonal domain attains its maximum
  /// at a domain vertex, so this maximizes over outer + obstacle vertices.
  double MaxDistanceFrom(const Point& p) const;

  /// Static visibility-graph size (for diagnostics and tests).
  size_t node_count() const { return nodes_.size(); }

 private:
  ObstructedRegion() = default;

  /// One CSR slot: static node `to` visible from the row's node at
  /// Euclidean distance `weight`.
  struct VisEdge {
    int to;
    double weight;
  };

  /// Builds node list (obstacle vertices + reflex outer vertices) and the
  /// static pairwise visibility adjacency in CSR form. Called once at
  /// Create time.
  void BuildStaticGraph();

  /// Runs Dijkstra from `a` to `b` over static nodes + the two endpoints.
  /// Fills `out_path` when non-null. Clobbers `scratch` (including the
  /// source-solve cache).
  double Solve(const Point& a, const Point& b, std::vector<Point>* out_path,
               GeodesicScratch* scratch) const;

  /// Ensures `scratch` holds the settled single-source Dijkstra solution
  /// from `p` over the static nodes (reusing a cached one when valid).
  void EnsureSourceSolve(const Point& p, GeodesicScratch* scratch) const;

  Polygon outer_;
  std::vector<Polygon> obstacles_;
  std::vector<Point> nodes_;  // static visibility-graph nodes
  // Static adjacency in CSR: neighbors of node i are
  // adj_edges_[adj_offsets_[i] .. adj_offsets_[i+1]), sorted by node index.
  std::vector<int> adj_offsets_;
  std::vector<VisEdge> adj_edges_;
};

/// The calling thread's fallback GeodesicScratch (used when a solver is
/// handed a null scratch).
GeodesicScratch& TlsGeodesicScratch();

}  // namespace indoor

#endif  // INDOOR_GEOMETRY_VISIBILITY_GRAPH_H_
