// Line segments and the intersection predicates needed by the visibility
// graph (obstructed intra-partition distances, paper §III-C1 and Fig. 5).

#ifndef INDOOR_GEOMETRY_SEGMENT_H_
#define INDOOR_GEOMETRY_SEGMENT_H_

#include "geometry/point.h"

namespace indoor {

/// A closed line segment [a, b].
struct Segment {
  Point a;
  Point b;

  Segment() = default;
  Segment(Point a_in, Point b_in) : a(a_in), b(b_in) {}

  double Length() const { return Distance(a, b); }
  Point Midpoint() const { return Lerp(a, b, 0.5); }
};

/// Shortest distance from point `p` to segment `s`.
double DistancePointToSegment(const Point& p, const Segment& s);

/// True if `p` lies on segment `s` (within kGeomEps).
bool PointOnSegment(const Point& p, const Segment& s);

/// True if the open interiors of the two segments cross at a single point
/// (a "proper" crossing: each segment's endpoints are strictly on opposite
/// sides of the other). Touching at endpoints is NOT a proper crossing.
bool SegmentsProperlyIntersect(const Segment& s, const Segment& t);

/// True if the segments share at least one point (including endpoint
/// touches and collinear overlap).
bool SegmentsIntersect(const Segment& s, const Segment& t);

/// True if the two segments are collinear and overlap in more than a point.
bool SegmentsCollinearOverlap(const Segment& s, const Segment& t);

}  // namespace indoor

#endif  // INDOOR_GEOMETRY_SEGMENT_H_
