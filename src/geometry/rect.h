// Axis-aligned rectangles: partition MBRs (R-tree), rectangular obstacles,
// and grid cells for the intra-partition object index (paper §V-B).

#ifndef INDOOR_GEOMETRY_RECT_H_
#define INDOOR_GEOMETRY_RECT_H_

#include <algorithm>
#include <limits>
#include <ostream>

#include "geometry/point.h"

namespace indoor {

/// Axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct Rect {
  Point lo;
  Point hi;

  Rect() = default;
  Rect(Point lo_in, Point hi_in) : lo(lo_in), hi(hi_in) {}
  Rect(double x0, double y0, double x1, double y1)
      : lo(x0, y0), hi(x1, y1) {}

  /// An "empty" rect that expands to any other rect under Union.
  static Rect Empty() {
    const double inf = std::numeric_limits<double>::infinity();
    return Rect(Point(inf, inf), Point(-inf, -inf));
  }

  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }
  double Perimeter() const {
    return IsEmpty() ? 0.0 : 2.0 * (Width() + Height());
  }
  Point Center() const {
    return Point((lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5);
  }

  /// Closed containment (boundary counts as inside).
  bool Contains(const Point& p) const {
    return p.x >= lo.x - kGeomEps && p.x <= hi.x + kGeomEps &&
           p.y >= lo.y - kGeomEps && p.y <= hi.y + kGeomEps;
  }

  /// Strict interior containment.
  bool ContainsStrict(const Point& p) const {
    return p.x > lo.x + kGeomEps && p.x < hi.x - kGeomEps &&
           p.y > lo.y + kGeomEps && p.y < hi.y - kGeomEps;
  }

  bool ContainsRect(const Rect& o) const {
    return o.lo.x >= lo.x - kGeomEps && o.hi.x <= hi.x + kGeomEps &&
           o.lo.y >= lo.y - kGeomEps && o.hi.y <= hi.y + kGeomEps;
  }

  /// Closed overlap test.
  bool Intersects(const Rect& o) const {
    return lo.x <= o.hi.x + kGeomEps && o.lo.x <= hi.x + kGeomEps &&
           lo.y <= o.hi.y + kGeomEps && o.lo.y <= hi.y + kGeomEps;
  }

  /// Smallest rect covering both.
  Rect Union(const Rect& o) const {
    if (IsEmpty()) return o;
    if (o.IsEmpty()) return *this;
    return Rect(Point(std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y)),
                Point(std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y)));
  }

  /// Grows the rect to cover `p`.
  void Expand(const Point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Minimum Euclidean distance from `p` to the rect (0 if inside).
  double MinDistance(const Point& p) const;

  /// Maximum Euclidean distance from `p` to any point of the rect.
  double MaxDistance(const Point& p) const;

  /// True if the rect intersects the closed disk (center, radius).
  bool IntersectsCircle(const Point& center, double radius) const {
    return MinDistance(center) <= radius + kGeomEps;
  }

  /// True if the whole rect is inside the closed disk (center, radius).
  bool WithinCircle(const Point& center, double radius) const {
    return MaxDistance(center) <= radius + kGeomEps;
  }

  bool operator==(const Rect& o) const { return lo == o.lo && hi == o.hi; }
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace indoor

#endif  // INDOOR_GEOMETRY_RECT_H_
