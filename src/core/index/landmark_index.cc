#include "core/index/landmark_index.h"

#include <algorithm>
#include <utility>

#include "core/distance/d2d_distance.h"
#include "util/metrics.h"

namespace indoor {
namespace {

/// Single-target reverse Dijkstra: dist[d] = d(d -> target) for every
/// door, over the transposed CSR rows. Build-time only, so a plain local
/// heap is fine; final distances are relaxation-order independent and
/// match the forward solves on the reversed graph bit-for-bit.
void ReverseDistancesTo(const DistanceGraph& graph, DoorId target,
                        std::vector<double>* dist_out) {
  const size_t n = graph.plan().door_count();
  std::vector<double>& dist = *dist_out;
  dist.assign(n, kInfDistance);
  std::vector<char> visited(n, 0);
  MinHeap<std::pair<double, DoorId>> heap;
  dist[target] = 0.0;
  heap.push({0.0, target});
  while (!heap.empty()) {
    const auto [d, dj] = heap.top();
    heap.pop();
    if (visited[dj]) continue;
    visited[dj] = 1;
    for (const DoorGraphEdge& e : graph.ReverseDoorEdges(dj)) {
      if (visited[e.to]) continue;
      if (d + e.weight < dist[e.to]) {
        dist[e.to] = d + e.weight;
        heap.push({dist[e.to], e.to});
      }
    }
  }
}

}  // namespace

LandmarkIndex LandmarkIndex::Build(const DistanceGraph& graph, size_t count,
                                   QueueKind kind) {
  const size_t n = graph.plan().door_count();
  LandmarkIndex index;
  if (n == 0 || count == 0) return index;
  count = std::min({count, n, kMaxCount});

  // Farthest-point sampling: seed with door 0, then repeatedly take the
  // door maximizing the minimum forward distance from the chosen set.
  // Unreachable doors score infinity and are picked first (component
  // coverage); ties resolve to the smallest id; selection stops early
  // when every door is already a landmark's own door (score 0).
  std::vector<std::vector<double>> fwd_rows;
  std::vector<std::vector<double>> bwd_rows;
  std::vector<DoorId> landmark_doors;
  std::vector<double> score(n, kInfDistance);
  DoorId next = 0;
  for (size_t l = 0; l < count; ++l) {
    landmark_doors.push_back(next);
    fwd_rows.emplace_back();
    D2dDistancesFrom(graph, next, &fwd_rows.back(), nullptr, kind);
    bwd_rows.emplace_back();
    ReverseDistancesTo(graph, next, &bwd_rows.back());

    if (l + 1 == count) break;
    const std::vector<double>& row = fwd_rows.back();
    double best = -1.0;
    DoorId cand = kInvalidId;
    for (DoorId d = 0; d < n; ++d) {
      if (row[d] < score[d]) score[d] = row[d];
      if (score[d] > best) {
        best = score[d];
        cand = d;
      }
    }
    if (cand == kInvalidId || best <= 0.0) break;  // graph fully covered
    next = cand;
  }

  // Transpose into the per-door layout.
  const size_t chosen = landmark_doors.size();
  std::vector<double> fwd(n * chosen);
  std::vector<double> bwd(n * chosen);
  for (size_t l = 0; l < chosen; ++l) {
    for (DoorId d = 0; d < n; ++d) {
      fwd[static_cast<size_t>(d) * chosen + l] = fwd_rows[l][d];
      bwd[static_cast<size_t>(d) * chosen + l] = bwd_rows[l][d];
    }
  }
  INDOOR_GAUGE_SET("index.landmarks.count", static_cast<double>(chosen));
  return FromRaw(n, std::move(landmark_doors), std::move(fwd),
                 std::move(bwd));
}

LandmarkIndex LandmarkIndex::FromRaw(size_t door_count,
                                     std::vector<DoorId> landmark_doors,
                                     std::vector<double> fwd,
                                     std::vector<double> bwd) {
  LandmarkIndex index;
  const size_t chosen = landmark_doors.size();
  INDOOR_CHECK(fwd.size() == door_count * chosen &&
               bwd.size() == door_count * chosen)
      << "landmark payload size mismatch";
  index.count_ = chosen;
  index.door_count_ = door_count;
  index.landmark_doors_ = OwnedSpan<DoorId>::Own(std::move(landmark_doors));
  index.fwd_ = OwnedSpan<double>::Own(std::move(fwd));
  index.bwd_ = OwnedSpan<double>::Own(std::move(bwd));
  return index;
}

LandmarkIndex LandmarkIndex::FromView(size_t door_count, size_t count,
                                      const DoorId* landmark_doors,
                                      const double* fwd, const double* bwd) {
  LandmarkIndex index;
  index.count_ = count;
  index.door_count_ = door_count;
  index.landmark_doors_ = OwnedSpan<DoorId>::Borrow(landmark_doors, count);
  index.fwd_ = OwnedSpan<double>::Borrow(fwd, door_count * count);
  index.bwd_ = OwnedSpan<double>::Borrow(bwd, door_count * count);
  return index;
}

}  // namespace indoor
