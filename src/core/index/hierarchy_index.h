// Hierarchical distance index for campus-scale plans (ROADMAP item 3).
//
// Md2d is O(|D|^2) in both build time and memory — fine for the paper's
// single building, fatal for a campus/airport with 10^4..10^5 doors. This
// index contracts the PARTITION graph into cells (deterministic capped BFS
// clustering over partition adjacency, G-tree/contraction style, see
// PAPERS.md: TopCom and the road-network kNN experimentation paper) and
// precomputes, per cell, a dense block of FULL-GRAPH door-to-door
// distances among the cell's member doors, plus one global clique of
// full-graph distances between all BORDER doors (doors whose two
// partitions land in different cells). Memory drops from |D|^2 to
// sum_c |M_c|^2 + |B|^2 (docs/INDEXING.md derives the formulas).
//
// THE EXACTNESS CONTRACT — and how it can hold bitwise. IEEE-754 addition
// is not associative, so any scheme that COMPOSES stored sub-distances
// (block + border-to-border + block) cannot reproduce the flat Md2d
// left-fold bit for bit. This index never serves composed sums. Instead:
//
//  * Every stored entry (cell blocks, border clique) is produced by an
//    EARLY-TERMINATED run of the exact same single-source door Dijkstra
//    that builds Md2d rows (d2d_runner.h): the run stops once all doors of
//    the target set have settled, and Dijkstra's settle-prefix property
//    makes every settled distance bit-identical to the full run's — i.e.
//    bit-identical to the flat Md2d entry.
//  * Query paths (hierarchy_distance.cc, range_query.cc, knn_query.cc)
//    serve intra-cell lookups straight from the blocks and answer
//    inter-cell queries by running BOUNDED flat Dijkstras whose stop and
//    push-prune conditions are provably loss-free; composed border sums
//    are used ONLY as upper-bound caps on those runs (scaled by a safety
//    margin that dominates the composition's rounding error), never as
//    answers.
//
// The flat Md2d path remains the default and the oracle: IndexOptions
// selects the hierarchy explicitly, and the randomized equality suite
// (tests/hierarchy_index_test.cc) asserts bitwise-identical pt2pt, range,
// and kNN results against the flat engine on generated multi-building
// plans.
//
// Geometry of cells: every partition belongs to exactly one cell; a door
// connects exactly two partitions, so a door is a MEMBER of one or two
// cells and a BORDER door iff its partitions' cells differ. Any path that
// leaves the member set of a cell c must first settle a border door of c
// (the edge that leaves enters a partition outside c; its source door
// touches that partition, hence is a member of both cells — a border).
// That yields the per-member ESCAPE RADIUS: the exact distance to the
// nearest border door of the cell; a search radius strictly below it
// proves all reachable doors are cell members, enabling block-only
// fast paths with no graph expansion at all.
//
// Storage is flat arrays behind OwnedSpan so the mmap container
// (index_io.h) can serve a zero-copy view; Build() and FromRaw() produce
// owning instances. Immutable after construction; safe for any number of
// concurrent readers.

#ifndef INDOOR_CORE_INDEX_HIERARCHY_INDEX_H_
#define INDOOR_CORE_INDEX_HIERARCHY_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/distance/bucket_queue.h"
#include "core/model/distance_graph.h"
#include "util/owned_span.h"

namespace indoor {

/// Partition-contraction hierarchy: per-cell exact distance blocks plus a
/// global border-door clique. See the file comment for the design and the
/// bitwise-exactness contract.
class HierarchyIndex {
 public:
  /// Sentinel for "no cell / no local index / no border slot".
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  /// An empty (invalid) index; valid() is false.
  HierarchyIndex() = default;

  /// Builds the hierarchy: capped-BFS partition cells of about
  /// `cell_target` partitions each, then one early-terminated full-graph
  /// Dijkstra per (cell, member) block row and per border-clique row.
  /// Rows are independent, so construction parallelizes across `threads`
  /// workers (0 = hardware concurrency, 1 = sequential) with bit-identical
  /// output; `kind` selects the Dijkstra frontier (values are identical
  /// either way).
  static HierarchyIndex Build(const DistanceGraph& graph, unsigned threads,
                              unsigned cell_target,
                              QueueKind kind = QueueKind::kBucket);

  /// Adoption payload for the binary loader (index_io.cc). Spans may own
  /// their storage (read-mode load) or borrow it from the mapped container
  /// (mmap-mode load); see the member accessors below for each array's
  /// meaning and length.
  struct Raw {
    uint64_t door_count = 0;
    uint64_t cell_count = 0;
    uint64_t border_count = 0;
    uint32_t cell_target = 0;
    OwnedSpan<uint32_t> partition_cells;
    OwnedSpan<uint32_t> door_cells;
    OwnedSpan<uint32_t> door_locals;
    OwnedSpan<uint64_t> member_offsets;
    OwnedSpan<DoorId> members;
    OwnedSpan<double> escape_radii;
    OwnedSpan<uint64_t> cell_border_offsets;
    OwnedSpan<uint32_t> cell_border_locals;
    OwnedSpan<uint64_t> block_offsets;
    OwnedSpan<double> blocks;
    OwnedSpan<DoorId> border_doors;
    OwnedSpan<uint32_t> border_of_door;
    OwnedSpan<double> border_matrix;
  };

  /// Adopts a deserialized payload after validating every array length and
  /// offset invariant (INDOOR_CHECK on violation — the container loader
  /// has already authenticated the payload by checksum and fingerprint).
  static HierarchyIndex FromRaw(Raw raw);

  bool valid() const { return door_count_ > 0; }
  size_t door_count() const { return door_count_; }
  size_t cell_count() const { return cell_count_; }
  size_t border_count() const { return border_count_; }
  /// The build-time cell-size knob (partitions per cell), recorded so
  /// persisted indexes can be checked against the requesting options.
  uint32_t cell_target() const { return cell_target_; }

  /// The cell owning partition `v`.
  uint32_t CellOfPartition(PartitionId v) const {
    INDOOR_CHECK(v < partition_cells_.size());
    return partition_cells_[v];
  }

  /// Member doors of cell `c`, ascending door id. Border doors appear in
  /// the member list of BOTH their cells.
  std::span<const DoorId> CellMembers(uint32_t c) const {
    INDOOR_CHECK(c < cell_count_);
    return {members_.data() + member_offsets_[c],
            static_cast<size_t>(member_offsets_[c + 1] - member_offsets_[c])};
  }

  /// The (at most two) cells door `d` belongs to; slot 1 is kNone for
  /// doors interior to one cell. Slot 0 is always the smaller cell id.
  std::span<const uint32_t, 2> CellsOfDoor(DoorId d) const {
    INDOOR_CHECK(d < door_count_);
    return std::span<const uint32_t, 2>(door_cells_.data() + 2 * d, 2);
  }

  /// Local member index of door `d` inside cell `c`, or kNone when `d` is
  /// not a member. O(1): a door's memberships are stored on the door.
  uint32_t LocalIndex(uint32_t c, DoorId d) const {
    INDOOR_CHECK(d < door_count_);
    if (door_cells_[2 * d] == c) return door_locals_[2 * d];
    if (door_cells_[2 * d + 1] == c) return door_locals_[2 * d + 1];
    return kNone;
  }

  /// Block row of member `local` in cell `c`: CellMembers(c).size() exact
  /// FULL-GRAPH distances d(member[local] -> member[j]), each bit-equal to
  /// the flat Md2d entry (see the exactness contract above).
  const double* BlockRow(uint32_t c, uint32_t local) const {
    const size_t m = CellMembers(c).size();
    INDOOR_CHECK(local < m);
    return blocks_.data() + block_offsets_[c] + static_cast<size_t>(local) * m;
  }

  /// Exact distance from member `local` of cell `c` to the nearest border
  /// door of `c` (0 for border doors themselves, +inf when `c` has no
  /// reachable border). A search radius STRICTLY below this proves every
  /// reachable door is a member of `c`.
  double EscapeRadius(uint32_t c, uint32_t local) const {
    INDOOR_CHECK(c < cell_count_ && local < CellMembers(c).size());
    return escape_radii_[member_offsets_[c] + local];
  }

  /// Local member indices of cell `c`'s border doors, ascending.
  std::span<const uint32_t> CellBorderLocals(uint32_t c) const {
    INDOOR_CHECK(c < cell_count_);
    return {cell_border_locals_.data() + cell_border_offsets_[c],
            static_cast<size_t>(cell_border_offsets_[c + 1] -
                                cell_border_offsets_[c])};
  }

  /// All border doors, ascending door id.
  std::span<const DoorId> border_doors() const {
    return {border_doors_.data(), border_doors_.size()};
  }

  /// Border-clique slot of door `d`, or kNone for non-border doors.
  uint32_t BorderIndexOf(DoorId d) const {
    INDOOR_CHECK(d < door_count_);
    return border_of_door_[d];
  }

  bool IsBorder(DoorId d) const { return BorderIndexOf(d) != kNone; }

  /// Border-clique row of border slot `b`: border_count() exact full-graph
  /// distances d(border[b] -> border[j]).
  const double* BorderRow(uint32_t b) const {
    INDOOR_CHECK(b < border_count_);
    return border_matrix_.data() + static_cast<size_t>(b) * border_count_;
  }

  /// When `s` and `t` share a cell, writes the exact (flat-Md2d-bit-equal)
  /// distance d(s -> t) from that cell's block and returns true.
  bool TryExact(DoorId s, DoorId t, double* out) const;

  /// Upper bound on d(s -> t): the shared-cell exact value, else the best
  /// block -> border-clique -> block composition. Composed sums carry
  /// floating-point rounding, so callers must scale by a safety margin
  /// (kUpperBoundSlack) before using the bound as a loss-free search cap;
  /// +inf when no border route exists.
  double UpperBound(DoorId s, DoorId t) const;

  /// Multiplicative slack that turns UpperBound() into a provably safe
  /// Dijkstra cap: the composition's relative rounding error is a few
  /// hundred ulps (~1e-13), so 1e-9 dominates it by orders of magnitude
  /// while costing nothing measurable in search volume.
  static constexpr double kUpperBoundSlack = 1.0 + 1e-9;

  /// Bytes across every array (identical for owned and mapped payloads).
  size_t MemoryBytes() const;

  // --- Serialization surface (index_io.cc) -------------------------------
  // Raw array views in the exact order/lengths FromRaw expects.
  std::span<const uint32_t> PartitionCells() const { return partition_cells_; }
  std::span<const uint32_t> DoorCells() const { return door_cells_; }
  std::span<const uint32_t> DoorLocals() const { return door_locals_; }
  std::span<const uint64_t> MemberOffsets() const { return member_offsets_; }
  std::span<const DoorId> Members() const { return members_; }
  std::span<const double> EscapeRadii() const { return escape_radii_; }
  std::span<const uint64_t> CellBorderOffsets() const {
    return cell_border_offsets_;
  }
  std::span<const uint32_t> CellBorderLocalsFlat() const {
    return cell_border_locals_;
  }
  std::span<const uint64_t> BlockOffsets() const { return block_offsets_; }
  std::span<const double> Blocks() const { return blocks_; }
  std::span<const uint32_t> BorderOfDoor() const { return border_of_door_; }
  std::span<const double> BorderMatrix() const { return border_matrix_; }

 private:
  uint64_t door_count_ = 0;
  uint64_t cell_count_ = 0;
  uint64_t border_count_ = 0;
  uint32_t cell_target_ = 0;

  // Per partition: owning cell id.
  OwnedSpan<uint32_t> partition_cells_;
  // Per door, 2 slots: the cells of the door's two partitions (slot 0 the
  // smaller id; slot 1 kNone when both partitions share a cell) and the
  // door's local member index within each.
  OwnedSpan<uint32_t> door_cells_;
  OwnedSpan<uint32_t> door_locals_;
  // CSR member lists: cell c's members are members_[member_offsets_[c]..).
  OwnedSpan<uint64_t> member_offsets_;  // cell_count_ + 1
  OwnedSpan<DoorId> members_;
  // Escape radius per (cell, member), parallel to members_.
  OwnedSpan<double> escape_radii_;
  // CSR border-local lists per cell.
  OwnedSpan<uint64_t> cell_border_offsets_;  // cell_count_ + 1
  OwnedSpan<uint32_t> cell_border_locals_;
  // Dense per-cell blocks: cell c's |M_c| x |M_c| row-major block starts
  // at blocks_[block_offsets_[c]].
  OwnedSpan<uint64_t> block_offsets_;  // cell_count_ + 1
  OwnedSpan<double> blocks_;
  // Border clique: slot <-> door mapping and the |B| x |B| matrix.
  OwnedSpan<DoorId> border_doors_;      // ascending door id
  OwnedSpan<uint32_t> border_of_door_;  // door_count_, kNone if interior
  OwnedSpan<double> border_matrix_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_HIERARCHY_INDEX_H_
