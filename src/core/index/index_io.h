// Binary persistence for the pre-computed distance structures. Building
// Md2d costs |doors| Dijkstra runs (seconds on a 40-floor building, see
// bench_ablation_matrix_build); a deployment computes it once and loads it
// at startup. The format carries a magic header, the door count, and a
// checksum of the plan's door geometry so a stale cache for a modified
// floor plan is rejected instead of silently reused.

#ifndef INDOOR_CORE_INDEX_INDEX_IO_H_
#define INDOOR_CORE_INDEX_INDEX_IO_H_

#include <string>

#include "core/index/distance_index_matrix.h"
#include "core/index/distance_matrix.h"
#include "core/index/landmark_index.h"
#include "indoor/floor_plan.h"
#include "util/result.h"

namespace indoor {

/// A fingerprint of the plan's doors and topology; two plans with equal
/// fingerprints produce equal Md2d matrices.
uint64_t PlanDistanceFingerprint(const FloorPlan& plan);

/// Writes Md2d (and implicitly enough to rebuild Midx) for `plan`.
Status SaveDistanceMatrix(const DistanceMatrix& matrix,
                          const FloorPlan& plan, const std::string& path);

/// Loads a matrix previously saved for a plan with the same fingerprint.
/// Fails with FailedPrecondition when the plan changed, ParseError on a
/// corrupt file, IOError when unreadable.
Result<DistanceMatrix> LoadDistanceMatrix(const FloorPlan& plan,
                                          const std::string& path);

/// Writes the ALT landmark rows (core/index/landmark_index.h) for `plan`.
/// Same versioning scheme as the distance matrix: magic header, plan
/// distance fingerprint, magic trailer.
Status SaveLandmarkIndex(const LandmarkIndex& landmarks,
                         const FloorPlan& plan, const std::string& path);

/// Loads a landmark index previously saved for a plan with the same
/// fingerprint; error taxonomy as LoadDistanceMatrix.
Result<LandmarkIndex> LoadLandmarkIndex(const FloorPlan& plan,
                                        const std::string& path);

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_INDEX_IO_H_
