// Binary persistence for the pre-computed distance structures. Building
// Md2d costs |doors| Dijkstra runs (seconds on a 40-floor building, see
// bench_ablation_matrix_build); a deployment computes it once and loads it
// at startup.
//
// Two generations of formats live here:
//
//  * The legacy single-structure files (SaveDistanceMatrix /
//    SaveLandmarkIndex): magic header, plan fingerprint, payload, magic
//    trailer. Kept readable and writable for compatibility.
//
//  * The INDOORIX container (SaveIndexContainer / LoadIndexContainer /
//    MapIndexContainer): ONE versioned, sectioned, mmap-able file holding
//    every persistable structure of an IndexFramework — Md2d, Midx, DPT,
//    landmark rows, and the hierarchy index. A 64-byte file header
//    (magic, version, plan fingerprint, file size, section count, door and
//    partition counts) is followed by a table of 32-byte section entries
//    (8-char tag, 64-byte-aligned offset, size, checksum) and the
//    payloads themselves, each starting on a 64-byte boundary so a mapped
//    file serves array views in place; the final 8 bytes repeat the magic
//    to guard truncation. docs/FORMAT.md specifies every byte.
//
// LoadIndexContainer reads the file into owning structures and verifies
// every section checksum; MapIndexContainer mmaps it, performs structural
// validation only (bounds, alignment, counts, internal offset invariants
// — page content is NOT checksummed), and returns structures that borrow
// the mapping, which stays alive through IndexArtifacts::mapping. Every
// failure is a clean Status naming the file path and, where one is
// involved, the section; a stale file for a modified floor plan is
// rejected by fingerprint instead of silently reused.

#ifndef INDOOR_CORE_INDEX_INDEX_IO_H_
#define INDOOR_CORE_INDEX_INDEX_IO_H_

#include <string>

#include "core/index/distance_index_matrix.h"
#include "core/index/distance_matrix.h"
#include "core/index/index_artifacts.h"
#include "core/index/index_framework.h"
#include "core/index/landmark_index.h"
#include "indoor/floor_plan.h"
#include "util/result.h"

namespace indoor {

/// A fingerprint of the plan's doors and topology; two plans with equal
/// fingerprints produce equal Md2d matrices.
uint64_t PlanDistanceFingerprint(const FloorPlan& plan);

/// Writes Md2d (and implicitly enough to rebuild Midx) for `plan`.
Status SaveDistanceMatrix(const DistanceMatrix& matrix,
                          const FloorPlan& plan, const std::string& path);

/// Loads a matrix previously saved for a plan with the same fingerprint.
/// Fails with FailedPrecondition when the plan changed, ParseError on a
/// corrupt file, IOError when unreadable.
Result<DistanceMatrix> LoadDistanceMatrix(const FloorPlan& plan,
                                          const std::string& path);

/// Writes the ALT landmark rows (core/index/landmark_index.h) for `plan`.
/// Same versioning scheme as the distance matrix: magic header, plan
/// distance fingerprint, magic trailer.
Status SaveLandmarkIndex(const LandmarkIndex& landmarks,
                         const FloorPlan& plan, const std::string& path);

/// Loads a landmark index previously saved for a plan with the same
/// fingerprint; error taxonomy as LoadDistanceMatrix.
Result<LandmarkIndex> LoadLandmarkIndex(const FloorPlan& plan,
                                        const std::string& path);

// ---- The INDOORIX sectioned container ----------------------------------

/// Container format version written by SaveIndexContainer. Version 2
/// added the ANNX approximate-kNN embedding section; readers require an
/// exact version match, so version-1 files are rejected cleanly (rebuild
/// with `indoor_tool build`).
inline constexpr uint32_t kIndexContainerVersion = 2;

/// Writes every persistable structure `index` holds into one INDOORIX
/// container at `path`: Md2d + Midx (flat mode) or the hierarchy
/// (use_hierarchy mode), plus the DPT and, when built, the landmark rows.
Status SaveIndexContainer(const IndexFramework& index,
                          const std::string& path);

/// Reads a container into owning structures, verifying the plan
/// fingerprint and every section checksum. Fails with FailedPrecondition
/// when the plan changed, ParseError on corruption (bad magic, truncated
/// or misaligned section, checksum mismatch — the message names the
/// section), IOError when unreadable.
Result<IndexArtifacts> LoadIndexContainer(const FloorPlan& plan,
                                          const std::string& path);

/// Maps a container with mmap and returns structures that borrow the
/// mapped pages (zero copy; the mapping is held alive by the returned
/// IndexArtifacts::mapping and by any IndexFramework the artifacts are
/// moved into). Validation is structural only — header, fingerprint,
/// section bounds/alignment, and every internal count/offset invariant
/// are checked, but payload bytes are not checksummed (the file system is
/// trusted on this path; use LoadIndexContainer to authenticate content).
/// Publishes the `load.mmap_ms` gauge. Unimplemented on platforms
/// without mmap.
Result<IndexArtifacts> MapIndexContainer(const FloorPlan& plan,
                                         const std::string& path);

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_INDEX_IO_H_
