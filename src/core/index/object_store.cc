#include "core/index/object_store.h"

#include <sstream>

#include "util/metrics.h"
#include "util/timer.h"

namespace indoor {

ObjectStore::ObjectStore(const FloorPlan& plan, double grid_cell_size)
    : plan_(&plan),
      grid_cell_size_(grid_cell_size),
      epochs_(plan.partition_count()),
      journal_(plan.partition_count() * kChangeJournalCapacity) {
  buckets_.reserve(plan.partition_count());
  for (const Partition& part : plan.partitions()) {
    buckets_.emplace_back(part, grid_cell_size);
  }
}

Result<ObjectId> ObjectStore::Insert(PartitionId partition,
                                     const Point& position) {
  if (partition >= plan_->partition_count()) {
    return Status::InvalidArgument("unknown partition id " +
                                   std::to_string(partition));
  }
  if (!plan_->partition(partition).Contains(position)) {
    std::ostringstream msg;
    msg << "position " << position << " is outside partition '"
        << plan_->partition(partition).name() << "'";
    return Status::InvalidArgument(msg.str());
  }
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back({id, partition, position});
  buckets_[partition].Insert(id, position);
  BumpEpoch(partition, id);
  return id;
}

Status ObjectStore::MoveObject(ObjectId id, PartitionId partition,
                               const Point& position) {
  if (id >= objects_.size()) {
    return Status::NotFound("unknown object id " + std::to_string(id));
  }
  if (partition >= plan_->partition_count()) {
    return Status::InvalidArgument("unknown partition id " +
                                   std::to_string(partition));
  }
  if (!plan_->partition(partition).Contains(position)) {
    std::ostringstream msg;
    msg << "position " << position << " is outside partition '"
        << plan_->partition(partition).name() << "'";
    return Status::InvalidArgument(msg.str());
  }
  IndoorObject& obj = objects_[id];
  INDOOR_CHECK(buckets_[obj.partition].Remove(id, obj.position))
      << "object store and bucket out of sync for object" << id;
  const PartitionId source = obj.partition;
  obj.partition = partition;
  obj.position = position;
  buckets_[partition].Insert(id, position);
  // Only the two partitions whose populations changed are re-versioned;
  // every other partition's cached object-dependent state stays valid.
  BumpEpoch(source, id);
  if (partition != source) BumpEpoch(partition, id);
  return Status::OK();
}

bool ObjectStore::ChangedSince(PartitionId v, uint64_t since,
                               std::vector<ObjectId>* out) const {
  const uint64_t cur = epoch(v);
  if (cur == since) return true;
  if (cur < since || cur - since > kChangeJournalCapacity) return false;
  const size_t base = static_cast<size_t>(v) * kChangeJournalCapacity;
  for (uint64_t e = since + 1; e <= cur; ++e) {
    const PartitionChange& c =
        journal_[base + static_cast<size_t>(e % kChangeJournalCapacity)];
    if (c.epoch != e) return false;  // defensive: slot not from this window
    out->push_back(c.id);
  }
  return true;
}

Status ObjectStore::ApplyMoves(std::span<const MoveOp> moves,
                               size_t* applied) {
  const WallTimer timer;
  size_t done = 0;
  Status status = Status::OK();
  for (const MoveOp& op : moves) {
    status = MoveObject(op.id, op.partition, op.position);
    if (!status.ok()) break;
    ++done;
  }
  if (applied != nullptr) *applied = done;
  INDOOR_COUNTER_ADD("update.moves", done);
  INDOOR_COUNTER_INC("update.move_batches");
  INDOOR_HISTOGRAM_RECORD("update.batch_ms", timer.ElapsedMillis());
  return status;
}

}  // namespace indoor
