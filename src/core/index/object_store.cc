#include "core/index/object_store.h"

#include <sstream>

namespace indoor {

ObjectStore::ObjectStore(const FloorPlan& plan, double grid_cell_size)
    : plan_(&plan), grid_cell_size_(grid_cell_size) {
  buckets_.reserve(plan.partition_count());
  for (const Partition& part : plan.partitions()) {
    buckets_.emplace_back(part, grid_cell_size);
  }
}

Result<ObjectId> ObjectStore::Insert(PartitionId partition,
                                     const Point& position) {
  if (partition >= plan_->partition_count()) {
    return Status::InvalidArgument("unknown partition id " +
                                   std::to_string(partition));
  }
  if (!plan_->partition(partition).Contains(position)) {
    std::ostringstream msg;
    msg << "position " << position << " is outside partition '"
        << plan_->partition(partition).name() << "'";
    return Status::InvalidArgument(msg.str());
  }
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back({id, partition, position});
  buckets_[partition].Insert(id, position);
  return id;
}

Status ObjectStore::MoveObject(ObjectId id, PartitionId partition,
                               const Point& position) {
  if (id >= objects_.size()) {
    return Status::NotFound("unknown object id " + std::to_string(id));
  }
  if (partition >= plan_->partition_count()) {
    return Status::InvalidArgument("unknown partition id " +
                                   std::to_string(partition));
  }
  if (!plan_->partition(partition).Contains(position)) {
    std::ostringstream msg;
    msg << "position " << position << " is outside partition '"
        << plan_->partition(partition).name() << "'";
    return Status::InvalidArgument(msg.str());
  }
  IndoorObject& obj = objects_[id];
  INDOOR_CHECK(buckets_[obj.partition].Remove(id, obj.position))
      << "object store and bucket out of sync for object" << id;
  obj.partition = partition;
  obj.position = position;
  buckets_[partition].Insert(id, position);
  return Status::OK();
}

}  // namespace indoor
