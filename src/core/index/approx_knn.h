// Approximate-kNN tier: per-object landmark-distance embeddings with SIMD
// batch lower bounds (ROADMAP item 4, second half).
//
// For every stored object o the index materializes the ALT embedding
//
//   fwd[l][o] = min over dj in EnterDoors(part(o)) of
//                 (d(landmark_l -> dj) + intra(dj.mid, o))
//   bwd[l][o] = min over di in LeaveDoors(part(o)) of
//                 (intra(o, di.mid) + d(di -> landmark_l))
//
// i.e. the landmark rows of LandmarkIndex extended from doors to object
// positions (the intra legs reuse the symmetric intra-partition metric, so
// every per-partition solve is one door-rooted IntraDistancesToMany call).
// Rows are stored LANDMARK-MAJOR — the object axis is contiguous — so one
// simd::AltBatchBoundMax call folds a whole landmark's contribution to the
// triangle-inequality lower bound of every object at once. This is the
// materialized-row layout PR 7's calibration found necessary for ALT to
// beat full-row scans in range/kNN.
//
// The query path (KnnQuery with IndexOptions::approx_knn) ranks objects by
// that lower bound, exact re-ranks an over-provisioned candidate prefix
// through the same matrix/solver distances as the exact path, and stops
// early once the k-th exact distance beats the next candidate's bound —
// exact when the bounds are tight, measurably approximate otherwise
// (bench_recall gates recall@10).
//
// Freshness: the index snapshots ObjectStore::global_epoch() when it
// (re)builds; a query serves from it only while the snapshot still matches
// (O(1) check), otherwise it falls back to the exact path and bumps
// `knn.approx.exact_fallback`. RefreshApproxKnn (IndexFramework) re-embeds
// after every ApplyMoveBatch, incrementally via the per-partition change
// journals when the window is coverable.
//
// Thread-safety: the const read surface is safe for concurrent readers;
// Refresh mutates and must be serialized with readers under the same
// external single-writer barrier as ObjectStore writes.

#ifndef INDOOR_CORE_INDEX_APPROX_KNN_H_
#define INDOOR_CORE_INDEX_APPROX_KNN_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/index/landmark_index.h"
#include "core/index/object_store.h"
#include "indoor/floor_plan.h"
#include "util/owned_span.h"

namespace indoor {

/// Serialized form of the embedding store: the ANNX container section
/// (docs/FORMAT.md). `leg_offsets` is a compact CSR over the per-object
/// enter-door legs (leg_offsets[o] .. leg_offsets[o+1] are object o's legs,
/// aligned with EnterDoors(part(o))). `fingerprint` ties the payload to the
/// exact object population + landmark set it was embedded from; adoption is
/// rejected when either changed since the save.
struct ApproxKnnPayload {
  uint64_t object_count = 0;
  uint64_t landmark_count = 0;
  uint64_t leg_total = 0;
  uint64_t fingerprint = 0;
  OwnedSpan<double> fwd;            ///< landmark-major, count * objects
  OwnedSpan<double> bwd;            ///< landmark-major, count * objects
  OwnedSpan<uint64_t> leg_offsets;  ///< object_count + 1
  OwnedSpan<double> legs;           ///< leg_total
};

/// The object-embedding store behind the approximate kNN tier. Owned by
/// IndexFramework; invalid (valid() == false) until the first Refresh with
/// a valid LandmarkIndex.
class ApproxKnnIndex {
 public:
  /// How the last Refresh call satisfied itself (test introspection).
  enum class RefreshMode : uint8_t {
    kNone,         ///< never refreshed (or cleared)
    kAdopted,      ///< adopted a fingerprint-matching ANNX payload
    kFull,         ///< rebuilt every embedding
    kIncremental,  ///< re-embedded only journal-recovered changed objects
  };

  ApproxKnnIndex() = default;
  ApproxKnnIndex(ApproxKnnIndex&&) = default;
  ApproxKnnIndex& operator=(ApproxKnnIndex&&) = default;

  bool valid() const { return landmark_count_ > 0; }
  size_t object_count() const { return object_count_; }
  size_t landmark_count() const { return landmark_count_; }

  /// Landmark-major forward row: FwdRow(l)[o] = embedded d(landmark_l, o).
  const double* FwdRow(size_t l) const { return fwd_ + l * object_count_; }
  /// Landmark-major backward row: BwdRow(l)[o] = embedded d(o, landmark_l).
  const double* BwdRow(size_t l) const { return bwd_ + l * object_count_; }

  /// Object o's enter-door legs, aligned index-for-index with
  /// EnterDoors(part(o)): Legs(o)[j] = intra(door_j.mid, o.position).
  std::span<const double> Legs(ObjectId o) const {
    return {legs_ + leg_start_[o], leg_count_[o]};
  }

  /// True while the embeddings still describe `store`'s exact population
  /// (no Insert/Move since the last Refresh). O(1).
  bool FreshFor(const ObjectStore& store) const {
    return valid() && object_count_ == store.size() &&
           global_epoch_ == store.global_epoch();
  }

  /// Re-embeds to match `store`: adopts a pending ANNX payload when its
  /// fingerprint matches, re-embeds only journal-recovered changed objects
  /// when the epoch window is coverable, and falls back to a full rebuild
  /// otherwise. Invalidates (valid() == false) when `lm` is invalid.
  void Refresh(const FloorPlan& plan, const ObjectStore& store,
               const LandmarkIndex& lm);

  /// Stashes a decoded ANNX payload for deferred adoption: the container
  /// is parsed before objects are populated, so the next Refresh checks the
  /// fingerprint against the live store and either serves the payload
  /// zero-copy or discards it and rebuilds.
  void StashPayload(ApproxKnnPayload payload) {
    pending_ = std::move(payload);
  }

  /// Fingerprint of the exact (object population, landmark set) pair the
  /// embeddings derive from; persisted in the ANNX section and re-checked
  /// at adoption.
  static uint64_t Fingerprint(const ObjectStore& store,
                              const LandmarkIndex& lm);

  /// Compact serialized payload of the current embeddings (index_io.cc).
  /// `store`/`lm` must be the pair the last Refresh ran against.
  ApproxKnnPayload BuildPayload(const ObjectStore& store,
                                const LandmarkIndex& lm) const;

  /// Bytes held by the embeddings and leg pool (logical payload size, so
  /// owned and mmap-adopted stores report alike).
  size_t MemoryBytes() const;

  RefreshMode last_refresh() const { return last_refresh_; }

 private:
  void FullBuild(const FloorPlan& plan, const ObjectStore& store,
                 const LandmarkIndex& lm);
  bool TryAdopt(const FloorPlan& plan, const ObjectStore& store,
                const LandmarkIndex& lm);
  /// Re-embeds `ids` (sorted, deduped) in place; arrays must be owned.
  void EmbedObjects(const FloorPlan& plan, const ObjectStore& store,
                    const LandmarkIndex& lm, std::span<const ObjectId> ids);
  /// Copies payload-backed arrays into owned storage before mutation
  /// (mmap pages are PROT_READ).
  void EnsureOwned();
  /// Rewrites the leg pool hole-free once move churn wastes over half.
  void CompactLegs();
  void SnapshotEpochs(const ObjectStore& store);

  size_t object_count_ = 0;
  size_t landmark_count_ = 0;

  // Serving pointers: into *_store_ after a build/refresh, into adopted_'s
  // payload arrays after zero-copy adoption (EnsureOwned switches over
  // before any mutation).
  const double* fwd_ = nullptr;
  const double* bwd_ = nullptr;
  const double* legs_ = nullptr;
  bool serving_payload_ = false;

  std::vector<double> fwd_store_;
  std::vector<double> bwd_store_;
  std::vector<double> legs_store_;
  ApproxKnnPayload adopted_;
  std::optional<ApproxKnnPayload> pending_;

  // Per-object leg slots. Slots keep their capacity when an object moves to
  // a partition with fewer enter doors (CSR with holes); CompactLegs
  // rewrites the pool once waste dominates. BuildPayload always emits the
  // hole-free compact CSR.
  std::vector<uint64_t> leg_start_;
  std::vector<uint32_t> leg_count_;
  std::vector<uint32_t> leg_cap_;
  size_t live_legs_ = 0;

  std::vector<uint64_t> part_epochs_;
  uint64_t global_epoch_ = 0;
  RefreshMode last_refresh_ = RefreshMode::kNone;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_APPROX_KNN_H_
