// The complete indexing framework of paper §IV: the distance-aware graph,
// the R-tree-backed locator, the pre-computed door-to-door distance matrix
// Md2d, the distance index matrix Midx, the door-to-partition table DPT,
// and the grid-bucketed object store — built together from one floor plan.

#ifndef INDOOR_CORE_INDEX_INDEX_FRAMEWORK_H_
#define INDOOR_CORE_INDEX_INDEX_FRAMEWORK_H_

#include <memory>

#include "core/distance/pt2pt_distance.h"
#include "core/index/approx_knn.h"
#include "core/index/distance_index_matrix.h"
#include "core/index/distance_matrix.h"
#include "core/index/dpt.h"
#include "core/index/hierarchy_index.h"
#include "core/index/index_artifacts.h"
#include "core/index/landmark_index.h"
#include "core/index/object_store.h"
#include "core/model/distance_graph.h"
#include "core/model/locator.h"
#include "util/timeseries.h"

namespace indoor {

/// Construction knobs.
struct IndexOptions {
  /// Grid cell edge length for the intra-partition object index.
  double grid_cell_size = 2.0;
  /// Worker threads for the precomputation-heavy structures (Md2d rows,
  /// Midx row sorts, DPT records). 1 = fully sequential build,
  /// 0 = hardware concurrency. Parallel builds produce bit-identical
  /// structures (see thread_pool.h).
  unsigned build_threads = 1;

  /// Frontier of every door-graph Dijkstra issued through this framework
  /// (Md2d build rows, pt2pt solves, distance fields). The bounded-weight
  /// bucket queue (bucket_queue.h) pops the identical (distance, id)
  /// sequence as the binary heap, so results are bit-identical; it is only
  /// a constant-factor speedup. Off = classic binary heap.
  bool use_bucket_queue = true;
  /// Build ALT landmark rows (landmark_index.h) and attach them to query
  /// contexts; pruning with them is loss-free, so results stay
  /// bit-identical with landmarks on or off.
  bool use_landmarks = true;
  /// Landmarks selected at build time (clamped to LandmarkIndex::kMaxCount
  /// and the door count). More landmarks = tighter bounds, linearly more
  /// build work and per-bound arithmetic. 0 (the default) auto-scales with
  /// the plan's door count — AutoLandmarkCount in landmark_index.h; the
  /// curve is documented in docs/BENCHMARKS.md. Pruning is loss-free at
  /// any count, so results never depend on this knob.
  unsigned landmark_count = 0;

  /// Build the approximate kNN tier (core/index/approx_knn.h): per-object
  /// landmark embeddings served by KnnQuery's candidate-generation +
  /// exact-re-rank path. Default OFF: the tier trades recall for QPS, so
  /// it must be an explicit opt-in and is never consulted by the reference
  /// implementations or anything digest-gated. Requires use_landmarks and
  /// the flat matrices (ignored under use_hierarchy).
  bool approx_knn = false;
  /// Candidate over-provisioning for the approximate tier: the query exact
  /// re-ranks up to k * approx_candidate_factor bound-sorted candidates.
  /// Larger = higher recall, more re-rank work. KnnQueryOptions can lower
  /// or raise it per query without rebuilding.
  unsigned approx_candidate_factor = 8;

  /// Replace the flat O(|D|^2) Md2d/Midx with the partition-contraction
  /// hierarchy (hierarchy_index.h): per-cell exact distance blocks plus a
  /// border-door clique, with bounded Dijkstra expansions at query time.
  /// Every query result stays bitwise identical to the flat engine (the
  /// flat path remains the default and the oracle); only build time,
  /// memory, and per-query work change. Query paths that still require
  /// the dense matrices (distance joins, incremental kNN, the reference
  /// implementations) reject with a CHECK under this option.
  bool use_hierarchy = false;
  /// Target partitions per hierarchy cell (build-time clustering knob).
  /// Smaller cells = less block memory but more border doors; the total
  /// footprint is sum_c |M_c|^2 + |B|^2 versus the flat |D|^2.
  unsigned hierarchy_cell_target = 128;

  /// Cross-query work sharing (core/query/query_cache.h): cache host
  /// partition lookups and source/destination door distance fields across
  /// queries. Results are bit-identical with the cache on or off; turn it
  /// off for purity-sensitive comparisons (the reference implementations
  /// never consult it either way).
  bool enable_query_cache = true;
  /// Quantization grid edge for cache keys (plan units). Collisions only
  /// cost a re-solve, never exactness.
  double cache_quantum = 0.25;
  /// Cache byte budget for the geometry caches (3/4 distance fields, 1/4
  /// host lookups); the range/kNN result cache gets an additional 1/4 of
  /// this on top.
  size_t cache_capacity_bytes = 32u << 20;
  /// LRU shards per cache (rounded up to a power of two).
  unsigned cache_shards = 16;
};

/// Owns every index structure over one (externally owned) FloorPlan.
///
/// Thread-safety: construction and mutation are single-threaded, but once
/// built, every const accessor — and every query algorithm that takes a
/// `const IndexFramework&` (range, kNN, window, distance lookups) — is
/// safe to call from any number of concurrent readers: all structures are
/// precomputed eagerly (no lazy caches) and queries keep their scratch
/// state (heaps, collectors, visited sets) on the stack. Writes through
/// the non-const `objects()` accessor (Insert/MoveObject) must be
/// externally synchronized and must not overlap any reader.
class IndexFramework {
 public:
  explicit IndexFramework(const FloorPlan& plan, IndexOptions options = {});

  /// Cold-start constructor: adopts the preloaded (or mmap-ed) structures
  /// in `artifacts` and builds only the absent ones. The artifacts must
  /// have been produced for `plan` (index_io.cc authenticates the
  /// container by plan fingerprint before handing them over).
  IndexFramework(const FloorPlan& plan, IndexArtifacts artifacts,
                 IndexOptions options = {});

  ~IndexFramework();  // defined in .cc where QueryCache is complete

  const FloorPlan& plan() const { return *plan_; }
  const IndexOptions& options() const { return options_; }
  const DistanceGraph& graph() const { return graph_; }
  const PartitionLocator& locator() const { return locator_; }

  /// True when the dense Md2d/Midx pair exists (the default); false under
  /// IndexOptions::use_hierarchy, where the hierarchy serves instead.
  bool has_flat_matrix() const { return !options_.use_hierarchy; }

  /// The frontier every door-graph Dijkstra of this framework uses.
  QueueKind queue_kind() const {
    return options_.use_bucket_queue ? QueueKind::kBucket : QueueKind::kHeap;
  }

  const DistanceMatrix& d2d_matrix() const {
    INDOOR_CHECK(has_flat_matrix())
        << "flat Md2d disabled by IndexOptions::use_hierarchy; this query "
           "path has no hierarchy lowering";
    return d2d_matrix_;
  }
  const DistanceIndexMatrix& index_matrix() const {
    INDOOR_CHECK(has_flat_matrix())
        << "flat Midx disabled by IndexOptions::use_hierarchy; this query "
           "path has no hierarchy lowering";
    return index_matrix_;
  }

  /// The partition-contraction hierarchy; invalid (valid() == false) when
  /// IndexOptions::use_hierarchy is off or the plan has no doors.
  const HierarchyIndex& hierarchy_index() const { return hierarchy_; }

  const DoorPartitionTable& dpt() const { return dpt_; }
  ObjectStore& objects() { return objects_; }
  const ObjectStore& objects() const { return objects_; }

  /// The cross-query cache, or null when IndexOptions disabled it.
  const QueryCache* query_cache() const { return query_cache_.get(); }

  /// Drops every cached cross-query entry (operator-facing full reset).
  /// Object writes do NOT need this: geometry entries are never affected
  /// by the object population, and object-dependent result entries are
  /// epoch-versioned per partition and lazily rejected at lookup (see
  /// query_cache.h). No-op when the cache is disabled.
  void InvalidateQueryCache() const;

  /// The per-partition visit/settle accumulator (one cell per
  /// partition), fed by the range/kNN door-expansion paths and sampled
  /// by the flight recorder; the input to cell-eviction decisions.
  /// Lock-free relaxed atomics, so handing concurrent readers a mutable
  /// reference is safe — the accumulator is telemetry, never consulted
  /// by query results.
  tseries::PartitionHotness& hotness() const { return hotness_; }

  /// The ALT landmark rows, or null when IndexOptions disabled them.
  const LandmarkIndex* landmarks() const {
    return landmarks_.valid() ? &landmarks_ : nullptr;
  }

  /// The approximate-kNN embedding store, or null when the tier is off or
  /// has no embeddings yet (RefreshApproxKnn never ran, or landmarks are
  /// absent). Callers must still check FreshFor before serving from it.
  const ApproxKnnIndex* approx_knn() const {
    return options_.approx_knn && approx_.valid() ? &approx_ : nullptr;
  }

  /// (Re)builds the approximate-kNN embeddings against the current object
  /// population. Called by ApplyMoveBatch after every applied batch, and
  /// manually after bulk Insert loops (tools, benches, tests). No-op when
  /// the tier is off; writer-side — must not overlap readers (same
  /// barrier as object writes).
  void RefreshApproxKnn();

  /// Context for the pt2pt distance algorithms (cache and landmarks
  /// attached when enabled).
  DistanceContext distance_context() const {
    DistanceContext ctx(graph_, locator_);
    ctx.cache = query_cache_.get();
    ctx.landmarks = landmarks();
    ctx.queue =
        options_.use_bucket_queue ? QueueKind::kBucket : QueueKind::kHeap;
    return ctx;
  }

  /// Total bytes of the pre-computed structures (Md2d + Midx + DPT +
  /// landmark rows + hierarchy arrays + approx-kNN embeddings; absent
  /// structures report 0).
  size_t IndexMemoryBytes() const {
    return d2d_matrix_.MemoryBytes() + index_matrix_.MemoryBytes() +
           dpt_.MemoryBytes() + landmarks_.MemoryBytes() +
           hierarchy_.MemoryBytes() + approx_.MemoryBytes();
  }

 private:
  /// Adopts present artifacts and builds the rest (both constructors).
  void BuildStructures(IndexArtifacts* artifacts);

  const FloorPlan* plan_;
  IndexOptions options_;
  DistanceGraph graph_;
  PartitionLocator locator_;
  DistanceMatrix d2d_matrix_;       // empty under use_hierarchy
  DistanceIndexMatrix index_matrix_;  // empty under use_hierarchy
  DoorPartitionTable dpt_;
  HierarchyIndex hierarchy_;  // invalid unless use_hierarchy
  LandmarkIndex landmarks_;   // invalid (empty) when disabled
  ApproxKnnIndex approx_;     // invalid until RefreshApproxKnn (opt-in)
  ObjectStore objects_;
  mutable tseries::PartitionHotness hotness_;  // telemetry, hence mutable
  std::unique_ptr<QueryCache> query_cache_;  // null when disabled
  /// Keeps an mmap-ed container alive while structures borrow its pages.
  std::shared_ptr<const void> mapping_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_INDEX_FRAMEWORK_H_
