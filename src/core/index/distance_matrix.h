// Md2d: the Door-to-Door Distance Matrix (paper §IV-A). An N x N matrix of
// pre-computed d2dDistance values. Not symmetric in general: directional
// doors make shortest paths direction-dependent (paper Fig. 3 discussion).

#ifndef INDOOR_CORE_INDEX_DISTANCE_MATRIX_H_
#define INDOOR_CORE_INDEX_DISTANCE_MATRIX_H_

#include <vector>

#include "core/distance/bucket_queue.h"
#include "core/model/distance_graph.h"
#include "util/owned_span.h"

namespace indoor {

/// Dense row-major N x N matrix of door-to-door minimum walking distances;
/// Md2d[d][d] = 0, unreachable pairs hold kInfDistance.
class DistanceMatrix {
 public:
  /// An empty matrix (door_count() == 0); the placeholder the framework
  /// holds when the hierarchy index replaces the flat Md2d.
  DistanceMatrix() = default;

  /// Builds via one single-source Algorithm-1 run per door. Rows are
  /// independent, so construction parallelizes across `threads` workers
  /// (0 = use the hardware concurrency; 1 = sequential). `kind` selects
  /// the Dijkstra frontier; the entries are identical either way
  /// (bucket_queue.h), the bucket queue just builds faster.
  explicit DistanceMatrix(const DistanceGraph& graph, unsigned threads = 1,
                          QueueKind kind = QueueKind::kBucket);

  /// Adopts a pre-computed payload (used by the binary loader, index_io.h).
  /// `data` must hold n*n row-major entries.
  static DistanceMatrix FromRaw(size_t n, std::vector<double> data);

  /// Borrows a pre-computed payload of n*n row-major entries without
  /// copying (the mmap-ed container path, index_io.h). The caller keeps
  /// the backing storage alive for the matrix's lifetime.
  static DistanceMatrix FromView(size_t n, const double* data);

  size_t door_count() const { return n_; }

  /// Md2d[from, to].
  double At(DoorId from, DoorId to) const {
    INDOOR_CHECK(from < n_ && to < n_);
    return data_[static_cast<size_t>(from) * n_ + to];
  }

  /// Md2d[from, *] as a contiguous row of n doubles.
  const double* Row(DoorId from) const {
    INDOOR_CHECK(from < n_);
    return data_.data() + static_cast<size_t>(from) * n_;
  }

  /// Bytes held by the matrix payload (the paper reports 6.25 MB for 1280
  /// doors with 4-byte elements; we store 8-byte doubles). Identical for
  /// owned and mmap-backed payloads.
  size_t MemoryBytes() const { return data_.PayloadBytes(); }

 private:
  size_t n_ = 0;
  OwnedSpan<double> data_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_DISTANCE_MATRIX_H_
