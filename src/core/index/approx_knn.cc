#include "core/index/approx_knn.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>

#include "geometry/visibility_graph.h"
#include "util/metrics.h"

namespace indoor {
namespace {

// Same mixer as the container fingerprints in index_io.cc (splitmix-style);
// seeded differently so an ANNX fingerprint never collides with a plan one.
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 29);
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(h, bits);
}

}  // namespace

uint64_t ApproxKnnIndex::Fingerprint(const ObjectStore& store,
                                     const LandmarkIndex& lm) {
  uint64_t h = 0xA44E58;  // "ANNX"
  h = Mix(h, store.size());
  for (const IndoorObject& obj : store.objects()) {
    h = Mix(h, obj.partition);
    h = MixDouble(h, obj.position.x);
    h = MixDouble(h, obj.position.y);
  }
  h = Mix(h, lm.count());
  for (DoorId d : lm.doors()) h = Mix(h, d);
  return h;
}

void ApproxKnnIndex::Refresh(const FloorPlan& plan, const ObjectStore& store,
                             const LandmarkIndex& lm) {
  if (!lm.valid()) {
    // No landmarks -> no embedding basis; drop everything.
    object_count_ = 0;
    landmark_count_ = 0;
    fwd_ = bwd_ = legs_ = nullptr;
    serving_payload_ = false;
    fwd_store_.clear();
    bwd_store_.clear();
    legs_store_.clear();
    adopted_ = ApproxKnnPayload();
    pending_.reset();
    leg_start_.clear();
    leg_count_.clear();
    leg_cap_.clear();
    live_legs_ = 0;
    part_epochs_.clear();
    global_epoch_ = 0;
    last_refresh_ = RefreshMode::kNone;
    return;
  }

  if (pending_.has_value()) {
    const bool adopted = TryAdopt(plan, store, lm);
    pending_.reset();
    if (adopted) {
      SnapshotEpochs(store);
      last_refresh_ = RefreshMode::kAdopted;
      INDOOR_COUNTER_INC("knn.approx.refresh.adopted");
      return;
    }
  }

  bool full = !valid() || object_count_ != store.size() ||
              landmark_count_ != lm.count() ||
              part_epochs_.size() != plan.partition_count();
  std::vector<ObjectId> changed;
  if (!full) {
    for (size_t v = 0; v < plan.partition_count() && !full; ++v) {
      const PartitionId p = static_cast<PartitionId>(v);
      if (store.epoch(p) == part_epochs_[v]) continue;
      if (!store.ChangedSince(p, part_epochs_[v], &changed)) full = true;
    }
  }
  if (!full) {
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
    if (!changed.empty()) {
      EnsureOwned();
      EmbedObjects(plan, store, lm, changed);
      if (legs_store_.size() > 2 * live_legs_ && legs_store_.size() > 4096) {
        CompactLegs();
      }
    }
    SnapshotEpochs(store);
    last_refresh_ = RefreshMode::kIncremental;
    INDOOR_COUNTER_INC("knn.approx.refresh.incremental");
    return;
  }

  FullBuild(plan, store, lm);
  SnapshotEpochs(store);
  last_refresh_ = RefreshMode::kFull;
  INDOOR_COUNTER_INC("knn.approx.refresh.full");
}

bool ApproxKnnIndex::TryAdopt(const FloorPlan& plan, const ObjectStore& store,
                              const LandmarkIndex& lm) {
  ApproxKnnPayload& p = *pending_;
  if (p.object_count != store.size() || p.landmark_count != lm.count()) {
    return false;
  }
  if (p.fingerprint != Fingerprint(store, lm)) return false;
  // Leg slots must line up with each object's enter doors — the container
  // decoder can only check the CSR structurally (the object population
  // does not exist at parse time), so the semantic check lands here.
  const uint64_t* offsets = p.leg_offsets.data();
  for (size_t o = 0; o < p.object_count; ++o) {
    const size_t doors =
        plan.EnterDoors(store.object(static_cast<ObjectId>(o)).partition)
            .size();
    if (offsets[o + 1] - offsets[o] != doors) return false;
  }

  adopted_ = std::move(p);
  object_count_ = static_cast<size_t>(adopted_.object_count);
  landmark_count_ = static_cast<size_t>(adopted_.landmark_count);
  fwd_ = adopted_.fwd.data();
  bwd_ = adopted_.bwd.data();
  legs_ = adopted_.legs.data();
  serving_payload_ = true;
  fwd_store_.clear();
  bwd_store_.clear();
  legs_store_.clear();

  const uint64_t* off = adopted_.leg_offsets.data();
  leg_start_.resize(object_count_);
  leg_count_.resize(object_count_);
  leg_cap_.resize(object_count_);
  for (size_t o = 0; o < object_count_; ++o) {
    leg_start_[o] = off[o];
    const uint32_t c = static_cast<uint32_t>(off[o + 1] - off[o]);
    leg_count_[o] = c;
    leg_cap_[o] = c;
  }
  live_legs_ = static_cast<size_t>(adopted_.leg_total);
  return true;
}

void ApproxKnnIndex::FullBuild(const FloorPlan& plan, const ObjectStore& store,
                               const LandmarkIndex& lm) {
  object_count_ = store.size();
  landmark_count_ = lm.count();
  adopted_ = ApproxKnnPayload();
  serving_payload_ = false;

  const size_t cells = landmark_count_ * object_count_;
  fwd_store_.assign(cells, kInfDistance);
  bwd_store_.assign(cells, kInfDistance);
  leg_start_.assign(object_count_, 0);
  leg_count_.assign(object_count_, 0);
  leg_cap_.assign(object_count_, 0);

  uint64_t total = 0;
  for (size_t o = 0; o < object_count_; ++o) {
    const size_t c =
        plan.EnterDoors(store.object(static_cast<ObjectId>(o)).partition)
            .size();
    leg_start_[o] = total;
    leg_count_[o] = static_cast<uint32_t>(c);
    leg_cap_[o] = static_cast<uint32_t>(c);
    total += c;
  }
  legs_store_.assign(static_cast<size_t>(total), kInfDistance);
  live_legs_ = static_cast<size_t>(total);
  fwd_ = fwd_store_.data();
  bwd_ = bwd_store_.data();
  legs_ = legs_store_.data();

  std::vector<ObjectId> ids(object_count_);
  std::iota(ids.begin(), ids.end(), ObjectId{0});
  EmbedObjects(plan, store, lm, ids);
}

void ApproxKnnIndex::EmbedObjects(const FloorPlan& plan,
                                  const ObjectStore& store,
                                  const LandmarkIndex& lm,
                                  std::span<const ObjectId> ids) {
  const size_t n = object_count_;
  const size_t L = landmark_count_;

  // Group by host partition so every (door, partition) pair is one batched
  // geodesic solve regardless of how many objects it covers.
  std::vector<std::pair<PartitionId, ObjectId>> byp;
  byp.reserve(ids.size());
  for (ObjectId o : ids) byp.emplace_back(store.object(o).partition, o);
  std::sort(byp.begin(), byp.end());

  GeodesicScratch geo;
  std::vector<Point> pts;
  std::vector<double> dist;
  std::vector<ObjectId> group;

  size_t i = 0;
  while (i < byp.size()) {
    const PartitionId v = byp[i].first;
    group.clear();
    pts.clear();
    for (; i < byp.size() && byp[i].first == v; ++i) {
      group.push_back(byp[i].second);
      pts.push_back(store.object(byp[i].second).position);
    }

    const std::vector<DoorId>& enter = plan.EnterDoors(v);
    const std::vector<DoorId>& leave = plan.LeaveDoors(v);
    const uint32_t nc = static_cast<uint32_t>(enter.size());
    for (ObjectId o : group) {
      for (size_t l = 0; l < L; ++l) {
        fwd_store_[l * n + o] = kInfDistance;
        bwd_store_[l * n + o] = kInfDistance;
      }
      if (nc > leg_cap_[o]) {  // moved somewhere roomier: append a new slot
        leg_start_[o] = legs_store_.size();
        leg_cap_[o] = nc;
        legs_store_.resize(legs_store_.size() + nc, kInfDistance);
      }
      live_legs_ += nc;
      live_legs_ -= leg_count_[o];
      leg_count_[o] = nc;
    }

    dist.resize(group.size());
    const Partition& part = plan.partition(v);
    for (size_t j = 0; j < enter.size(); ++j) {
      part.IntraDistancesToMany(plan.door(enter[j]).Midpoint(), pts, &geo,
                                dist.data());
      const double* frow = lm.ForwardRow(enter[j]);
      for (size_t s = 0; s < group.size(); ++s) {
        const ObjectId o = group[s];
        legs_store_[leg_start_[o] + j] = dist[s];
        if (dist[s] == kInfDistance) continue;
        for (size_t l = 0; l < L; ++l) {
          if (frow[l] == kInfDistance) continue;
          double& cell = fwd_store_[l * n + o];
          const double cand = frow[l] + dist[s];
          if (cand < cell) cell = cand;
        }
      }
    }
    for (size_t j = 0; j < leave.size(); ++j) {
      // Symmetric intra metric: the door-rooted solve stands in for the
      // object->door leg, keeping this one batched call per door.
      part.IntraDistancesToMany(plan.door(leave[j]).Midpoint(), pts, &geo,
                                dist.data());
      const double* brow = lm.BackwardRow(leave[j]);
      for (size_t s = 0; s < group.size(); ++s) {
        const ObjectId o = group[s];
        if (dist[s] == kInfDistance) continue;
        for (size_t l = 0; l < L; ++l) {
          if (brow[l] == kInfDistance) continue;
          double& cell = bwd_store_[l * n + o];
          const double cand = dist[s] + brow[l];
          if (cand < cell) cell = cand;
        }
      }
    }
  }

  fwd_ = fwd_store_.data();
  bwd_ = bwd_store_.data();
  legs_ = legs_store_.data();
}

void ApproxKnnIndex::EnsureOwned() {
  if (!serving_payload_) return;
  const size_t cells = landmark_count_ * object_count_;
  fwd_store_.assign(fwd_, fwd_ + cells);
  bwd_store_.assign(bwd_, bwd_ + cells);
  legs_store_.assign(legs_, legs_ + static_cast<size_t>(adopted_.leg_total));
  adopted_ = ApproxKnnPayload();
  serving_payload_ = false;
  fwd_ = fwd_store_.data();
  bwd_ = bwd_store_.data();
  legs_ = legs_store_.data();
}

void ApproxKnnIndex::CompactLegs() {
  std::vector<double> compact;
  compact.reserve(live_legs_);
  std::vector<uint64_t> starts(object_count_);
  for (size_t o = 0; o < object_count_; ++o) {
    starts[o] = compact.size();
    const double* src = legs_store_.data() + leg_start_[o];
    compact.insert(compact.end(), src, src + leg_count_[o]);
    leg_cap_[o] = leg_count_[o];
  }
  legs_store_ = std::move(compact);
  leg_start_ = std::move(starts);
  legs_ = legs_store_.data();
}

void ApproxKnnIndex::SnapshotEpochs(const ObjectStore& store) {
  const size_t parts = store.plan().partition_count();
  part_epochs_.resize(parts);
  for (size_t v = 0; v < parts; ++v) {
    part_epochs_[v] = store.epoch(static_cast<PartitionId>(v));
  }
  global_epoch_ = store.global_epoch();
}

ApproxKnnPayload ApproxKnnIndex::BuildPayload(const ObjectStore& store,
                                              const LandmarkIndex& lm) const {
  ApproxKnnPayload p;
  p.object_count = object_count_;
  p.landmark_count = landmark_count_;
  p.fingerprint = Fingerprint(store, lm);

  std::vector<uint64_t> offsets(object_count_ + 1, 0);
  std::vector<double> legs;
  legs.reserve(live_legs_);
  for (size_t o = 0; o < object_count_; ++o) {
    offsets[o] = legs.size();
    legs.insert(legs.end(), legs_ + leg_start_[o],
                legs_ + leg_start_[o] + leg_count_[o]);
  }
  offsets[object_count_] = legs.size();
  p.leg_total = legs.size();

  const size_t cells = landmark_count_ * object_count_;
  p.fwd = OwnedSpan<double>::Own(std::vector<double>(fwd_, fwd_ + cells));
  p.bwd = OwnedSpan<double>::Own(std::vector<double>(bwd_, bwd_ + cells));
  p.leg_offsets = OwnedSpan<uint64_t>::Own(std::move(offsets));
  p.legs = OwnedSpan<double>::Own(std::move(legs));
  return p;
}

size_t ApproxKnnIndex::MemoryBytes() const {
  const size_t cells = landmark_count_ * object_count_;
  const size_t pool =
      serving_payload_ ? static_cast<size_t>(adopted_.leg_total)
                       : legs_store_.size();
  return 2 * cells * sizeof(double) + pool * sizeof(double) +
         leg_start_.size() * sizeof(uint64_t) +
         (leg_count_.size() + leg_cap_.size()) * sizeof(uint32_t);
}

}  // namespace indoor
