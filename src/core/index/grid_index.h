// Intra-partition object organization (paper §IV-B, §V-B): objects of one
// partition live in an object bucket that is subdivided by a uniform grid;
// each grid cell is a sub-bucket. rangeSearch/nnSearch prune whole cells by
// circle overlap before touching individual objects.

#ifndef INDOOR_CORE_INDEX_GRID_INDEX_H_
#define INDOOR_CORE_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "indoor/partition.h"
#include "util/metrics.h"

namespace indoor {

/// A query result entry: object and its indoor walking distance.
struct Neighbor {
  ObjectId id = kInvalidId;
  double distance = kInfDistance;

  bool operator==(const Neighbor& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// Collects the k nearest objects with per-object-id de-duplication (the
/// same object can be reached through several doors; only its best distance
/// may occupy a slot).
///
/// Stored as one flat sorted vector of (distance, id) pairs — k is small,
/// so linear dedup beats the former set + hash-map pair, and Reset(k) lets
/// per-thread scratch reuse the buffer allocation-free across queries.
class KnnCollector {
 public:
  explicit KnnCollector(size_t k);

  /// Re-arms the collector for a new query, keeping buffer capacity.
  void Reset(size_t k);

  /// Current pruning bound: the k-th best distance, or kInfDistance while
  /// fewer than k objects are collected.
  double Bound() const {
    return entries_.size() == k_ ? entries_.back().first : kInfDistance;
  }

  /// Offers a candidate; keeps it only if it improves the collection.
  /// Returns true if the candidate was (re)admitted.
  bool Offer(ObjectId id, double distance);

  /// The collected neighbors, nearest first.
  std::vector<Neighbor> Sorted() const;

  /// The k this collector was (re-)armed with.
  size_t k() const { return k_; }

  /// Candidates currently held (<= k()).
  size_t size() const { return entries_.size(); }

  /// Allocated candidate-buffer bytes (scratch-arena decay accounting).
  size_t CapacityBytes() const {
    return entries_.capacity() * sizeof(entries_[0]);
  }
  /// Releases capacity beyond the current size (scratch-arena decay).
  void ShrinkToFit() { entries_.shrink_to_fit(); }

 private:
  size_t k_;
  // (distance, id), ascending; at most k entries.
  std::vector<std::pair<double, ObjectId>> entries_;
};

/// Reusable GridBucket search state: the geodesic scratch for batched
/// intra-partition distances plus the cell visit-order buffer. Same
/// ownership contract as GeodesicScratch — one thread at a time, buffers
/// survive across searches.
struct BucketScratch {
  GeodesicScratch geo;
  std::vector<std::pair<double, size_t>> cell_order;
  /// Byte mask of the batched distance-filter compare (RangeSearch's
  /// d <= r test, evaluated via simd::MaskLessEqual over a whole cell).
  std::vector<uint8_t> filter_mask;

  /// Observability accumulators, incremented by GridBucket searches (only
  /// when the library is built with INDOOR_METRICS=ON) and drained into
  /// the global `index.grid.*` counters once per query by
  /// FlushBucketStats. Plain fields — per-thread, no atomics — so the
  /// search inner loops stay cheap. Always present to keep the struct
  /// layout independent of the metrics option.
  uint64_t searches = 0;
  uint64_t cells_visited = 0;
  uint64_t cells_pruned = 0;
  uint64_t cells_admitted = 0;
  uint64_t objects_tested = 0;

  /// Per-query partition-hotness staging: (partition, objects tested
  /// there) pairs appended by the door-expansion paths and drained once
  /// per query into IndexFramework's PartitionHotness accumulator
  /// (util/timeseries.h) via FlushVisits. Same plain-field contract as
  /// the counters above: only touched inside INDOOR_METRICS_ONLY.
  std::vector<std::pair<uint32_t, uint32_t>> hot;
};

/// Drains a scratch's accumulated grid-search statistics into the
/// `index.grid.*` counters and zeroes them. Query entry points call this
/// once per query, inside INDOOR_METRICS_ONLY.
inline void FlushBucketStats(BucketScratch* scratch) {
  INDOOR_COUNTER_ADD("index.grid.searches", scratch->searches);
  INDOOR_COUNTER_ADD("index.grid.cells_visited", scratch->cells_visited);
  INDOOR_COUNTER_ADD("index.grid.cells_pruned", scratch->cells_pruned);
  INDOOR_COUNTER_ADD("index.grid.cells_admitted", scratch->cells_admitted);
  INDOOR_COUNTER_ADD("index.grid.objects_tested", scratch->objects_tested);
  scratch->searches = 0;
  scratch->cells_visited = 0;
  scratch->cells_pruned = 0;
  scratch->cells_admitted = 0;
  scratch->objects_tested = 0;
}

/// The grid-subdivided object bucket of one partition. Stores (id, point)
/// pairs; all distances reported by searches are intra-partition walking
/// distances (obstructed and metric-scaled as the partition dictates).
///
/// Thread-safety: CollectAll/RangeSearch/NnSearch and the cell accessors
/// are const and keep all traversal state (cell frontiers, candidate
/// heaps) in locals or caller-provided scratch/output buffers, so
/// concurrent readers are safe. Insert/Remove require external
/// synchronization.
class GridBucket {
 public:
  GridBucket() = default;

  /// Covers the partition's bounding box with square cells of `cell_size`
  /// meters (at least 1 x 1 cells).
  GridBucket(const Partition& partition, double cell_size);

  /// Adds an object at `position` (must lie in the covered bounding box).
  void Insert(ObjectId id, const Point& position);

  /// Removes the object (position must match the inserted one). Returns
  /// false if absent.
  bool Remove(ObjectId id, const Point& position);

  /// Objects currently in the bucket.
  size_t size() const { return count_; }

  /// Grid cells covering the partition's bounding box.
  size_t cell_count() const { return cells_.size(); }

  /// Appends every object id in the bucket (whole-partition inclusion).
  void CollectAll(std::vector<ObjectId>* out) const;

  /// rangeSearch(B, q, r): appends (id, distance) of all objects whose
  /// intra-partition distance from `q` is <= r. Cells are pruned by the
  /// Euclidean lower bound; obstacle-free convex partitions also admit
  /// whole cells by the Euclidean upper bound. With a scratch, each cell's
  /// surviving objects are resolved through one batched geodesic solve
  /// (ObstructedRegion::DistancesToMany) — identical results, no per-object
  /// Dijkstra; a null scratch keeps the historical per-object evaluation.
  void RangeSearch(const Partition& partition, const Point& q, double r,
                   std::vector<Neighbor>* out,
                   BucketScratch* scratch = nullptr) const;

  /// Single-object admission predicate of RangeSearch: would a
  /// RangeSearch(partition, q, r, ...) report an object located at
  /// `position`? Mirrors the cell-level shortcuts (Euclidean lower-bound
  /// prune, whole-cell upper-bound admission) exactly, so the verdict is
  /// bit-identical to the full search's treatment of that object. Backs
  /// the query cache's stale-result repair path.
  bool WouldAdmit(const Partition& partition, const Point& q, double r,
                  const Point& position, GeodesicScratch* geo = nullptr) const;

  /// nnSearch(B, q, ...): offers objects to `collector`, visiting cells in
  /// ascending lower-bound order and stopping once no cell can beat the
  /// collector's bound. `extra` is added to every distance before offering
  /// (the q-to-door leg accumulated outside this partition). Scratch
  /// semantics as in RangeSearch.
  void NnSearch(const Partition& partition, const Point& q, double extra,
                KnnCollector* collector,
                BucketScratch* scratch = nullptr) const;

  /// Geometry of cell `idx` (for external best-first traversals).
  Rect CellRectAt(size_t idx) const { return CellRect(idx); }

  /// Contents of cell `idx`.
  const std::vector<std::pair<ObjectId, Point>>& CellContents(
      size_t idx) const {
    INDOOR_CHECK(idx < cells_.size());
    return cells_[idx];
  }

 private:
  size_t CellIndex(const Point& p) const;
  Rect CellRect(size_t idx) const;

  Point origin_;
  double cell_size_ = 1.0;
  size_t nx_ = 0, ny_ = 0;
  size_t count_ = 0;
  std::vector<std::vector<std::pair<ObjectId, Point>>> cells_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_GRID_INDEX_H_
