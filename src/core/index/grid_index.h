// Intra-partition object organization (paper §IV-B, §V-B): objects of one
// partition live in an object bucket that is subdivided by a uniform grid;
// each grid cell is a sub-bucket. rangeSearch/nnSearch prune whole cells by
// circle overlap before touching individual objects.

#ifndef INDOOR_CORE_INDEX_GRID_INDEX_H_
#define INDOOR_CORE_INDEX_GRID_INDEX_H_

#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "indoor/partition.h"

namespace indoor {

/// A query result entry: object and its indoor walking distance.
struct Neighbor {
  ObjectId id = kInvalidId;
  double distance = kInfDistance;

  bool operator==(const Neighbor& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// Collects the k nearest objects with per-object-id de-duplication (the
/// same object can be reached through several doors; only its best distance
/// may occupy a slot).
class KnnCollector {
 public:
  explicit KnnCollector(size_t k);

  /// Current pruning bound: the k-th best distance, or kInfDistance while
  /// fewer than k objects are collected.
  double Bound() const;

  /// Offers a candidate; keeps it only if it improves the collection.
  /// Returns true if the candidate was (re)admitted.
  bool Offer(ObjectId id, double distance);

  /// The collected neighbors, nearest first.
  std::vector<Neighbor> Sorted() const;

  size_t k() const { return k_; }
  size_t size() const { return entries_.size(); }

 private:
  size_t k_;
  // (distance, id), ordered; at most k entries, mirrored by best_.
  std::set<std::pair<double, ObjectId>> entries_;
  std::unordered_map<ObjectId, double> best_;
};

/// The grid-subdivided object bucket of one partition. Stores (id, point)
/// pairs; all distances reported by searches are intra-partition walking
/// distances (obstructed and metric-scaled as the partition dictates).
///
/// Thread-safety: CollectAll/RangeSearch/NnSearch and the cell accessors
/// are const and keep all traversal state (cell frontiers, candidate
/// heaps) in locals or caller-provided output buffers, so concurrent
/// readers are safe. Insert/Remove require external synchronization.
class GridBucket {
 public:
  GridBucket() = default;

  /// Covers the partition's bounding box with square cells of `cell_size`
  /// meters (at least 1 x 1 cells).
  GridBucket(const Partition& partition, double cell_size);

  void Insert(ObjectId id, const Point& position);

  /// Removes the object (position must match the inserted one). Returns
  /// false if absent.
  bool Remove(ObjectId id, const Point& position);

  size_t size() const { return count_; }
  size_t cell_count() const { return cells_.size(); }

  /// Appends every object id in the bucket (whole-partition inclusion).
  void CollectAll(std::vector<ObjectId>* out) const;

  /// rangeSearch(B, q, r): appends (id, distance) of all objects whose
  /// intra-partition distance from `q` is <= r. Cells are pruned by the
  /// Euclidean lower bound; obstacle-free convex partitions also admit
  /// whole cells by the Euclidean upper bound.
  void RangeSearch(const Partition& partition, const Point& q, double r,
                   std::vector<Neighbor>* out) const;

  /// nnSearch(B, q, ...): offers objects to `collector`, visiting cells in
  /// ascending lower-bound order and stopping once no cell can beat the
  /// collector's bound. `extra` is added to every distance before offering
  /// (the q-to-door leg accumulated outside this partition).
  void NnSearch(const Partition& partition, const Point& q, double extra,
                KnnCollector* collector) const;

  /// Geometry of cell `idx` (for external best-first traversals).
  Rect CellRectAt(size_t idx) const { return CellRect(idx); }

  /// Contents of cell `idx`.
  const std::vector<std::pair<ObjectId, Point>>& CellContents(
      size_t idx) const {
    INDOOR_CHECK(idx < cells_.size());
    return cells_[idx];
  }

 private:
  size_t CellIndex(const Point& p) const;
  Rect CellRect(size_t idx) const;

  Point origin_;
  double cell_size_ = 1.0;
  size_t nx_ = 0, ny_ = 0;
  size_t count_ = 0;
  std::vector<std::vector<std::pair<ObjectId, Point>>> cells_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_GRID_INDEX_H_
