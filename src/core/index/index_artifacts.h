// Preloaded index structures handed to IndexFramework instead of building
// from scratch (the cold-start path of `indoor_tool serve --load` /
// `--load-mmap`). Each member is optional: present structures are adopted,
// absent ones are built normally. When structures borrow their payloads
// from an mmap-ed container (index_io.h), `mapping` keeps the backing
// mapping alive for the framework's lifetime.

#ifndef INDOOR_CORE_INDEX_INDEX_ARTIFACTS_H_
#define INDOOR_CORE_INDEX_INDEX_ARTIFACTS_H_

#include <memory>
#include <optional>

#include "core/index/approx_knn.h"
#include "core/index/distance_index_matrix.h"
#include "core/index/distance_matrix.h"
#include "core/index/dpt.h"
#include "core/index/hierarchy_index.h"
#include "core/index/landmark_index.h"

namespace indoor {

/// Deserialized (or mapped) index structures for one plan. Move-only.
struct IndexArtifacts {
  std::optional<DistanceMatrix> md2d;
  std::optional<DistanceIndexMatrix> midx;
  std::optional<DoorPartitionTable> dpt;
  std::optional<LandmarkIndex> landmarks;
  std::optional<HierarchyIndex> hierarchy;
  /// ANNX embedding payload; adopted lazily by the framework once objects
  /// are populated (its fingerprint covers the object set).
  std::optional<ApproxKnnPayload> approx;
  /// Keepalive for borrowed payloads (the mmap-ed container); null when
  /// every present structure owns its storage.
  std::shared_ptr<const void> mapping;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_INDEX_ARTIFACTS_H_
