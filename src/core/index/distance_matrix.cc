#include "core/index/distance_matrix.h"

#include "core/distance/d2d_distance.h"
#include "util/thread_pool.h"

namespace indoor {

DistanceMatrix::DistanceMatrix(const DistanceGraph& graph, unsigned threads,
                               QueueKind kind)
    : n_(graph.plan().door_count()) {
  std::vector<double> data(n_ * n_, kInfDistance);
  // One single-source Dijkstra per row; rows are disjoint slots, so the
  // parallel build is bit-identical to the serial one (thread_pool.h).
  ParallelFor(0, n_, threads, [&](size_t d) {
    std::vector<double> dist;
    D2dDistancesFrom(graph, static_cast<DoorId>(d), &dist, nullptr, kind);
    std::copy(dist.begin(), dist.end(), data.begin() + d * n_);
  });
  data_ = OwnedSpan<double>::Own(std::move(data));
}

DistanceMatrix DistanceMatrix::FromRaw(size_t n, std::vector<double> data) {
  INDOOR_CHECK(data.size() == n * n) << "payload size mismatch";
  DistanceMatrix matrix;
  matrix.n_ = n;
  matrix.data_ = OwnedSpan<double>::Own(std::move(data));
  return matrix;
}

DistanceMatrix DistanceMatrix::FromView(size_t n, const double* data) {
  DistanceMatrix matrix;
  matrix.n_ = n;
  matrix.data_ = OwnedSpan<double>::Borrow(data, n * n);
  return matrix;
}

}  // namespace indoor
