#include "core/index/distance_matrix.h"

#include <atomic>
#include <thread>

#include "core/distance/d2d_distance.h"

namespace indoor {

DistanceMatrix::DistanceMatrix(const DistanceGraph& graph, unsigned threads)
    : n_(graph.plan().door_count()) {
  data_.assign(n_ * n_, kInfDistance);
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, std::max<size_t>(1, n_));

  auto worker = [&](std::atomic<size_t>* next) {
    std::vector<double> dist;
    for (size_t d = (*next)++; d < n_; d = (*next)++) {
      D2dDistancesFrom(graph, static_cast<DoorId>(d), &dist, nullptr);
      std::copy(dist.begin(), dist.end(), data_.begin() + d * n_);
    }
  };

  if (threads <= 1) {
    std::atomic<size_t> next{0};
    worker(&next);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back(worker, &next);
  }
  for (std::thread& t : pool) t.join();
}

DistanceMatrix DistanceMatrix::FromRaw(size_t n, std::vector<double> data) {
  INDOOR_CHECK(data.size() == n * n) << "payload size mismatch";
  DistanceMatrix matrix;
  matrix.n_ = n;
  matrix.data_ = std::move(data);
  return matrix;
}

}  // namespace indoor
