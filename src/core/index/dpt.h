// DPT: the Door-to-Partition Table (paper §IV-B). One record per door
// linking it to the object bucket(s) of the partition(s) it can ENTER,
// together with the fdv value of each (the longest distance reachable
// inside that partition from the door) used for whole-partition inclusion
// during query processing.

#ifndef INDOOR_CORE_INDEX_DPT_H_
#define INDOOR_CORE_INDEX_DPT_H_

#include <vector>

#include "core/model/distance_graph.h"
#include "util/owned_span.h"

namespace indoor {

/// The paper's 5-tuple (di, vPtr1, dist1, vPtr2, dist2). Partition ids
/// stand in for the bucket pointers; kInvalidId encodes a null pointer.
/// For a unidirectional door vj -> vk: part1 = kInvalidId, dist1 = inf,
/// part2 = vk, dist2 = fdv(di, vk). For a bidirectional door with vj < vk:
/// part1 = vj, dist1 = fdv(di, vj), part2 = vk, dist2 = fdv(di, vk).
struct DptRecord {
  DoorId door = kInvalidId;
  PartitionId part1 = kInvalidId;
  double dist1 = kInfDistance;
  PartitionId part2 = kInvalidId;
  double dist2 = kInfDistance;
};

/// The table, sorted (indexed) by door id — the paper sorts DPT on the di
/// field; dense door ids make that a direct index.
class DoorPartitionTable {
 public:
  /// An empty table (size() == 0).
  DoorPartitionTable() = default;

  /// One record per door, each independent of the others, so construction
  /// parallelizes across `threads` workers (0 = hardware concurrency,
  /// 1 = sequential) with identical output.
  explicit DoorPartitionTable(const DistanceGraph& graph,
                              unsigned threads = 1);

  /// Adopts pre-computed records (binary loader, index_io.h).
  static DoorPartitionTable FromRaw(std::vector<DptRecord> records);

  /// Borrows `count` pre-computed records without copying (mmap-ed
  /// container); the caller keeps the backing storage alive.
  static DoorPartitionTable FromView(const DptRecord* records, size_t count);

  /// The record of door `d` (dense ids make the sorted table a direct
  /// index).
  const DptRecord& operator[](DoorId d) const {
    INDOOR_CHECK(d < records_.size());
    return records_[d];
  }

  /// Number of records == the plan's door count.
  size_t size() const { return records_.size(); }

  /// Logical bytes of the record array (owned or borrowed alike).
  size_t MemoryBytes() const { return records_.PayloadBytes(); }

  /// Serialized payload view (index_io.h).
  std::span<const DptRecord> Records() const { return records_; }

 private:
  OwnedSpan<DptRecord> records_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_DPT_H_
