// ALT landmark lower bounds over the door graph (goal-directed pruning à
// la Goldberg & Harrelson, adapted to the indoor distance core).
//
// At index build time a handful of far-apart landmark doors are chosen by
// farthest-point sampling, and for each landmark l both Dijkstra
// directions are precomputed over every door d:
//
//   fwd[d][l] = d(l -> d)   (forward rows, over DoorEdges)
//   bwd[d][l] = d(d -> l)   (backward rows, over ReverseDoorEdges)
//
// The triangle inequality then lower-bounds any door-to-door distance:
//   d(s, t) >= max_l max(fwd[t][l] - fwd[s][l], bwd[s][l] - bwd[t][l])
// Query paths use these bounds ONLY to skip work that provably cannot
// change the answer (pair-skips in Algorithm 2, push-pruning in the
// virtual-source Dijkstra, door-scan skips in range/kNN), so results stay
// bitwise identical with landmarks on or off.
//
// Storage is transposed per door — the `count()` landmark values of one
// door are contiguous — so a bound evaluation reads two short dense rows
// per endpoint (SIMD-friendly, see simd::AltPairBound). Selection is
// sequential and deterministic: landmark 0 is door 0; each next landmark
// is the door maximizing the minimum forward distance from the chosen set
// (ties to the smallest id; unreachable doors, which score infinity, are
// picked first so disconnected components get covered).

#ifndef INDOOR_CORE_INDEX_LANDMARK_INDEX_H_
#define INDOOR_CORE_INDEX_LANDMARK_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/distance/bucket_queue.h"
#include "core/model/distance_graph.h"
#include "util/owned_span.h"
#include "util/simd.h"

namespace indoor {

/// Precomputed ALT landmark rows for one plan's door graph. Immutable
/// after construction; safe for any number of concurrent readers.
class LandmarkIndex {
 public:
  /// Hard cap on the landmark count (keeps per-query aggregate buffers on
  /// the stack; IndexOptions::landmark_count is clamped to this).
  static constexpr size_t kMaxCount = 32;

  /// An empty (invalid) index; LowerBound is unusable, valid() is false.
  LandmarkIndex() = default;

  /// Selects min(count, door count, kMaxCount) landmarks by farthest-point
  /// sampling and precomputes their forward/backward rows. `kind` selects
  /// the Dijkstra frontier for the row solves (values are identical either
  /// way). Returns an invalid index when the plan has no doors.
  static LandmarkIndex Build(const DistanceGraph& graph, size_t count,
                             QueueKind kind = QueueKind::kBucket);

  /// Adopts precomputed payloads (binary loader, index_io.h). `fwd` and
  /// `bwd` are the transposed per-door rows, doors * count entries each.
  static LandmarkIndex FromRaw(size_t door_count,
                               std::vector<DoorId> landmark_doors,
                               std::vector<double> fwd,
                               std::vector<double> bwd);

  /// Borrows precomputed payloads without copying (mmap-ed container);
  /// the caller keeps the backing storage alive. Layout as in FromRaw.
  static LandmarkIndex FromView(size_t door_count, size_t count,
                                const DoorId* landmark_doors,
                                const double* fwd, const double* bwd);

  bool valid() const { return count_ > 0; }
  /// Number of landmarks actually selected (selection stops early once
  /// every door is within distance 0 of a landmark).
  size_t count() const { return count_; }
  size_t door_count() const { return door_count_; }
  /// The selected landmark door ids, in selection order.
  std::span<const DoorId> doors() const { return landmark_doors_; }

  /// fwd row of door d: ForwardRow(d)[l] = d(landmark_l -> d).
  const double* ForwardRow(DoorId d) const {
    return fwd_.data() + static_cast<size_t>(d) * count_;
  }
  /// bwd row of door d: BackwardRow(d)[l] = d(d -> landmark_l).
  const double* BackwardRow(DoorId d) const {
    return bwd_.data() + static_cast<size_t>(d) * count_;
  }

  /// Triangle-inequality lower bound on d(s, t); >= 0, never above the
  /// exact door-to-door distance.
  double LowerBound(DoorId s, DoorId t) const {
    return simd::AltPairBound(ForwardRow(s), ForwardRow(t), BackwardRow(s),
                              BackwardRow(t), count_);
  }

  /// Serialized payload views (index_io.h).
  std::span<const double> ForwardPayload() const { return fwd_; }
  std::span<const double> BackwardPayload() const { return bwd_; }

  /// Bytes held by the precomputed rows.
  size_t MemoryBytes() const {
    return fwd_.PayloadBytes() + bwd_.PayloadBytes() +
           landmark_doors_.PayloadBytes();
  }

 private:
  size_t count_ = 0;
  size_t door_count_ = 0;
  OwnedSpan<DoorId> landmark_doors_;
  // Transposed per-door rows: index [d * count_ + l].
  OwnedSpan<double> fwd_;
  OwnedSpan<double> bwd_;
};

/// Landmark count for a plan with `door_count` doors, used when
/// IndexOptions::landmark_count is 0 (auto). A step curve: small plans get
/// few landmarks (bound arithmetic would outweigh the pruning), campus
/// plans get more (rows are cheap next to |D|^2 matrices and the tighter
/// bounds pay off in full-row scans). Documented in docs/BENCHMARKS.md;
/// pruning is loss-free at any count, so this only moves build time and
/// bound tightness, never results.
inline size_t AutoLandmarkCount(size_t door_count) {
  if (door_count <= 32) return 4;
  if (door_count <= 128) return 8;
  if (door_count <= 512) return 12;
  if (door_count <= 2048) return 16;
  if (door_count <= 8192) return 24;
  return LandmarkIndex::kMaxCount;
}

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_LANDMARK_INDEX_H_
