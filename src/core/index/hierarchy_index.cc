#include "core/index/hierarchy_index.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "core/distance/d2d_runner.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace indoor {
namespace {

/// Capped BFS clustering of the partition-adjacency graph: scan seeds in
/// id order, claim partitions at enqueue time (so every cell is connected
/// and claims are unambiguous), stop growing a cell once it holds
/// `cell_target` partitions. Fully deterministic: adjacency lists follow
/// door-id order and the queue is FIFO.
std::vector<uint32_t> ClusterPartitions(const FloorPlan& plan,
                                        unsigned cell_target,
                                        uint64_t* cell_count_out) {
  const size_t p = plan.partition_count();
  std::vector<std::vector<PartitionId>> adj(p);
  for (DoorId d = 0; d < plan.door_count(); ++d) {
    const auto [a, b] = plan.ConnectedPair(d);
    adj[a].push_back(b);
    adj[b].push_back(a);
  }

  std::vector<uint32_t> cell_of(p, HierarchyIndex::kNone);
  uint32_t cells = 0;
  std::deque<PartitionId> queue;
  for (PartitionId seed = 0; seed < p; ++seed) {
    if (cell_of[seed] != HierarchyIndex::kNone) continue;
    const uint32_t c = cells++;
    cell_of[seed] = c;
    unsigned claimed = 1;
    queue.clear();
    queue.push_back(seed);
    while (!queue.empty() && claimed < cell_target) {
      const PartitionId v = queue.front();
      queue.pop_front();
      for (const PartitionId nb : adj[v]) {
        if (cell_of[nb] != HierarchyIndex::kNone) continue;
        cell_of[nb] = c;
        queue.push_back(nb);
        if (++claimed == cell_target) break;
      }
    }
  }
  *cell_count_out = cells;
  return cell_of;
}

}  // namespace

HierarchyIndex HierarchyIndex::Build(const DistanceGraph& graph,
                                     unsigned threads, unsigned cell_target,
                                     QueueKind kind) {
  const FloorPlan& plan = graph.plan();
  const size_t n = plan.door_count();
  HierarchyIndex h;
  h.door_count_ = n;
  h.cell_target_ = std::max(1u, cell_target);
  if (n == 0) return h;

  std::vector<uint32_t> partition_cells =
      ClusterPartitions(plan, h.cell_target_, &h.cell_count_);
  const size_t nc = h.cell_count_;

  // Door memberships: a door joins the cell of each of its two partitions
  // (one membership when both share a cell; slot 0 = smaller cell id).
  std::vector<uint32_t> door_cells(2 * n, kNone);
  for (DoorId d = 0; d < n; ++d) {
    const auto [a, b] = plan.ConnectedPair(d);
    const uint32_t ca = partition_cells[a];
    const uint32_t cb = partition_cells[b];
    door_cells[2 * d] = std::min(ca, cb);
    if (ca != cb) door_cells[2 * d + 1] = std::max(ca, cb);
  }

  // CSR member lists (ascending door id per cell) + per-door local slots.
  std::vector<uint64_t> member_offsets(nc + 1, 0);
  for (DoorId d = 0; d < n; ++d) {
    ++member_offsets[door_cells[2 * d] + 1];
    if (door_cells[2 * d + 1] != kNone) ++member_offsets[door_cells[2 * d + 1] + 1];
  }
  for (size_t c = 0; c < nc; ++c) member_offsets[c + 1] += member_offsets[c];
  const size_t total_members = member_offsets[nc];
  std::vector<DoorId> members(total_members);
  std::vector<uint32_t> door_locals(2 * n, kNone);
  {
    std::vector<uint64_t> fill(member_offsets.begin(),
                               member_offsets.end() - 1);
    for (DoorId d = 0; d < n; ++d) {
      for (int slot = 0; slot < 2; ++slot) {
        const uint32_t c = door_cells[2 * d + slot];
        if (c == kNone) continue;
        door_locals[2 * d + slot] =
            static_cast<uint32_t>(fill[c] - member_offsets[c]);
        members[fill[c]++] = d;
      }
    }
  }

  // Border doors (two distinct cells) in ascending id order.
  std::vector<DoorId> border_doors;
  std::vector<uint32_t> border_of_door(n, kNone);
  for (DoorId d = 0; d < n; ++d) {
    if (door_cells[2 * d + 1] == kNone) continue;
    border_of_door[d] = static_cast<uint32_t>(border_doors.size());
    border_doors.push_back(d);
  }
  h.border_count_ = border_doors.size();
  const size_t nb = border_doors.size();

  // Per-cell border locals (ascending local index = ascending door id).
  std::vector<uint64_t> cell_border_offsets(nc + 1, 0);
  std::vector<uint32_t> cell_border_locals;
  for (size_t c = 0; c < nc; ++c) {
    const uint64_t begin = member_offsets[c];
    const uint64_t end = member_offsets[c + 1];
    for (uint64_t i = begin; i < end; ++i) {
      if (border_of_door[members[i]] != kNone) {
        cell_border_locals.push_back(static_cast<uint32_t>(i - begin));
      }
    }
    cell_border_offsets[c + 1] = cell_border_locals.size();
  }

  // Per-cell block offsets (|M_c|^2 doubles each).
  std::vector<uint64_t> block_offsets(nc + 1, 0);
  for (size_t c = 0; c < nc; ++c) {
    const uint64_t m = member_offsets[c + 1] - member_offsets[c];
    block_offsets[c + 1] = block_offsets[c] + m * m;
  }
  std::vector<double> blocks(block_offsets[nc], kInfDistance);

  // Per-cell door -> local lookup for the row solves (kNone = not a
  // member). Transient: nc * n u32, freed after the build.
  std::vector<std::vector<uint32_t>> local_map(nc);
  for (size_t c = 0; c < nc; ++c) {
    local_map[c].assign(n, kNone);
    const uint64_t begin = member_offsets[c];
    const uint64_t end = member_offsets[c + 1];
    for (uint64_t i = begin; i < end; ++i) {
      local_map[c][members[i]] = static_cast<uint32_t>(i - begin);
    }
  }

  // Block rows: one early-terminated FULL-GRAPH Dijkstra per (cell,
  // member). The run is the exact Md2d row solve stopped once every
  // member of the cell has settled, so each recorded distance is
  // bit-identical to the flat Md2d entry (settle-prefix property,
  // d2d_runner.h). Rows are independent -> parallel builds bit-identical.
  struct RowTask {
    uint32_t cell;
    uint32_t local;
  };
  std::vector<RowTask> tasks;
  tasks.reserve(total_members);
  for (size_t c = 0; c < nc; ++c) {
    const uint64_t m = member_offsets[c + 1] - member_offsets[c];
    for (uint64_t i = 0; i < m; ++i) {
      tasks.push_back({static_cast<uint32_t>(c), static_cast<uint32_t>(i)});
    }
  }
  ParallelFor(0, tasks.size(), threads, [&](size_t t) {
    const RowTask task = tasks[t];
    const uint32_t c = task.cell;
    const uint64_t begin = member_offsets[c];
    const size_t m = member_offsets[c + 1] - begin;
    const DoorId src = members[begin + task.local];
    double* const row = blocks.data() + block_offsets[c] +
                        static_cast<uint64_t>(task.local) * m;
    const std::vector<uint32_t>& locals = local_map[c];
    size_t remaining = m;
    DoorDijkstraScratch scratch;
    RunDoorDijkstra(graph, src, &scratch, kind, nullptr,
                    [&](DoorId di, double d) {
                      const uint32_t local = locals[di];
                      if (local == kNone) return true;
                      row[local] = d;
                      return --remaining != 0;
                    });
  });

  // Escape radii: exact distance to the nearest border door of the cell,
  // read straight out of the finished blocks.
  std::vector<double> escape_radii(total_members, kInfDistance);
  for (size_t c = 0; c < nc; ++c) {
    const uint64_t begin = member_offsets[c];
    const size_t m = member_offsets[c + 1] - begin;
    const std::span<const uint32_t> borders(
        cell_border_locals.data() + cell_border_offsets[c],
        cell_border_offsets[c + 1] - cell_border_offsets[c]);
    for (size_t i = 0; i < m; ++i) {
      const double* row = blocks.data() + block_offsets[c] + i * m;
      double e = kInfDistance;
      for (const uint32_t bl : borders) e = std::min(e, row[bl]);
      escape_radii[begin + i] = e;
    }
  }

  // Border clique: one early-terminated full-graph Dijkstra per border
  // door, stopping when every border door has settled.
  std::vector<double> border_matrix(nb * nb, kInfDistance);
  ParallelFor(0, nb, threads, [&](size_t b) {
    const DoorId src = border_doors[b];
    double* const row = border_matrix.data() + b * nb;
    size_t remaining = nb;
    DoorDijkstraScratch scratch;
    RunDoorDijkstra(graph, src, &scratch, kind, nullptr,
                    [&](DoorId di, double d) {
                      const uint32_t slot = border_of_door[di];
                      if (slot == kNone) return true;
                      row[slot] = d;
                      return --remaining != 0;
                    });
  });

  INDOOR_GAUGE_SET("index.hierarchy.cells", static_cast<double>(nc));
  INDOOR_GAUGE_SET("index.hierarchy.borders", static_cast<double>(nb));
  INDOOR_GAUGE_SET("index.hierarchy.block_entries",
                   static_cast<double>(block_offsets[nc]));

  h.partition_cells_ = OwnedSpan<uint32_t>::Own(std::move(partition_cells));
  h.door_cells_ = OwnedSpan<uint32_t>::Own(std::move(door_cells));
  h.door_locals_ = OwnedSpan<uint32_t>::Own(std::move(door_locals));
  h.member_offsets_ = OwnedSpan<uint64_t>::Own(std::move(member_offsets));
  h.members_ = OwnedSpan<DoorId>::Own(std::move(members));
  h.escape_radii_ = OwnedSpan<double>::Own(std::move(escape_radii));
  h.cell_border_offsets_ =
      OwnedSpan<uint64_t>::Own(std::move(cell_border_offsets));
  h.cell_border_locals_ =
      OwnedSpan<uint32_t>::Own(std::move(cell_border_locals));
  h.block_offsets_ = OwnedSpan<uint64_t>::Own(std::move(block_offsets));
  h.blocks_ = OwnedSpan<double>::Own(std::move(blocks));
  h.border_doors_ = OwnedSpan<DoorId>::Own(std::move(border_doors));
  h.border_of_door_ = OwnedSpan<uint32_t>::Own(std::move(border_of_door));
  h.border_matrix_ = OwnedSpan<double>::Own(std::move(border_matrix));
  return h;
}

HierarchyIndex HierarchyIndex::FromRaw(Raw raw) {
  HierarchyIndex h;
  h.door_count_ = raw.door_count;
  h.cell_count_ = raw.cell_count;
  h.border_count_ = raw.border_count;
  h.cell_target_ = raw.cell_target;
  const size_t n = raw.door_count;
  const size_t nc = raw.cell_count;
  const size_t nb = raw.border_count;
  INDOOR_CHECK(raw.door_cells.size() == 2 * n &&
               raw.door_locals.size() == 2 * n)
      << "hierarchy payload: door arrays mismatch";
  INDOOR_CHECK(raw.member_offsets.size() == nc + 1 &&
               raw.cell_border_offsets.size() == nc + 1 &&
               raw.block_offsets.size() == nc + 1)
      << "hierarchy payload: offset arrays mismatch";
  INDOOR_CHECK(raw.members.size() == raw.member_offsets[nc] &&
               raw.escape_radii.size() == raw.members.size())
      << "hierarchy payload: member arrays mismatch";
  INDOOR_CHECK(raw.cell_border_locals.size() == raw.cell_border_offsets[nc])
      << "hierarchy payload: border-local array mismatch";
  INDOOR_CHECK(raw.blocks.size() == raw.block_offsets[nc])
      << "hierarchy payload: block array mismatch";
  for (size_t c = 0; c < nc; ++c) {
    const uint64_t m = raw.member_offsets[c + 1] - raw.member_offsets[c];
    INDOOR_CHECK(raw.member_offsets[c + 1] >= raw.member_offsets[c] &&
                 raw.block_offsets[c + 1] ==
                     raw.block_offsets[c] + m * m &&
                 raw.cell_border_offsets[c + 1] >= raw.cell_border_offsets[c])
        << "hierarchy payload: cell " << c << " offsets corrupt";
  }
  INDOOR_CHECK(raw.border_doors.size() == nb &&
               raw.border_of_door.size() == n &&
               raw.border_matrix.size() == nb * nb)
      << "hierarchy payload: border arrays mismatch";
  h.partition_cells_ = std::move(raw.partition_cells);
  h.door_cells_ = std::move(raw.door_cells);
  h.door_locals_ = std::move(raw.door_locals);
  h.member_offsets_ = std::move(raw.member_offsets);
  h.members_ = std::move(raw.members);
  h.escape_radii_ = std::move(raw.escape_radii);
  h.cell_border_offsets_ = std::move(raw.cell_border_offsets);
  h.cell_border_locals_ = std::move(raw.cell_border_locals);
  h.block_offsets_ = std::move(raw.block_offsets);
  h.blocks_ = std::move(raw.blocks);
  h.border_doors_ = std::move(raw.border_doors);
  h.border_of_door_ = std::move(raw.border_of_door);
  h.border_matrix_ = std::move(raw.border_matrix);
  return h;
}

bool HierarchyIndex::TryExact(DoorId s, DoorId t, double* out) const {
  for (int slot = 0; slot < 2; ++slot) {
    const uint32_t c = door_cells_[2 * s + slot];
    if (c == kNone) continue;
    const uint32_t lt = LocalIndex(c, t);
    if (lt == kNone) continue;
    *out = BlockRow(c, door_locals_[2 * s + slot])[lt];
    return true;
  }
  return false;
}

double HierarchyIndex::UpperBound(DoorId s, DoorId t) const {
  double exact;
  if (TryExact(s, t, &exact)) return exact;
  double best = kInfDistance;
  for (int ss = 0; ss < 2; ++ss) {
    const uint32_t cs = door_cells_[2 * s + ss];
    if (cs == kNone) continue;
    const double* srow = BlockRow(cs, door_locals_[2 * s + ss]);
    const std::span<const DoorId> smembers = CellMembers(cs);
    for (const uint32_t bl : CellBorderLocals(cs)) {
      const double d1 = srow[bl];
      if (d1 == kInfDistance) continue;
      const double* brow = BorderRow(border_of_door_[smembers[bl]]);
      for (int ts = 0; ts < 2; ++ts) {
        const uint32_t ct = door_cells_[2 * t + ts];
        if (ct == kNone) continue;
        const uint32_t lt = door_locals_[2 * t + ts];
        const std::span<const DoorId> tmembers = CellMembers(ct);
        for (const uint32_t bl2 : CellBorderLocals(ct)) {
          const double mid = brow[border_of_door_[tmembers[bl2]]];
          if (mid == kInfDistance) continue;
          const double d3 = BlockRow(ct, bl2)[lt];
          if (d3 == kInfDistance) continue;
          best = std::min(best, d1 + mid + d3);
        }
      }
    }
  }
  return best;
}

size_t HierarchyIndex::MemoryBytes() const {
  return partition_cells_.PayloadBytes() + door_cells_.PayloadBytes() +
         door_locals_.PayloadBytes() + member_offsets_.PayloadBytes() +
         members_.PayloadBytes() + escape_radii_.PayloadBytes() +
         cell_border_offsets_.PayloadBytes() +
         cell_border_locals_.PayloadBytes() + block_offsets_.PayloadBytes() +
         blocks_.PayloadBytes() + border_doors_.PayloadBytes() +
         border_of_door_.PayloadBytes() + border_matrix_.PayloadBytes();
}

}  // namespace indoor
