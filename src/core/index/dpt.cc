#include "core/index/dpt.h"

#include "util/thread_pool.h"

namespace indoor {

DoorPartitionTable::DoorPartitionTable(const DistanceGraph& graph,
                                       unsigned threads) {
  const FloorPlan& plan = graph.plan();
  std::vector<DptRecord> records(plan.door_count());
  ParallelFor(0, plan.door_count(), threads, [&](size_t i) {
    const DoorId d = static_cast<DoorId>(i);
    DptRecord& rec = records[d];
    rec.door = d;
    const auto& conns = plan.D2P(d);
    if (conns.size() == 1) {
      // Unidirectional vj -> vk: only the enterable partition is linked.
      rec.part2 = conns[0].to;
      rec.dist2 = graph.Fdv(d, conns[0].to);
    } else {
      auto [vj, vk] = plan.ConnectedPair(d);  // vj < vk
      rec.part1 = vj;
      rec.dist1 = graph.Fdv(d, vj);
      rec.part2 = vk;
      rec.dist2 = graph.Fdv(d, vk);
    }
  });
  records_ = OwnedSpan<DptRecord>::Own(std::move(records));
}

DoorPartitionTable DoorPartitionTable::FromRaw(std::vector<DptRecord> records) {
  DoorPartitionTable table;
  table.records_ = OwnedSpan<DptRecord>::Own(std::move(records));
  return table;
}

DoorPartitionTable DoorPartitionTable::FromView(const DptRecord* records,
                                                size_t count) {
  DoorPartitionTable table;
  table.records_ = OwnedSpan<DptRecord>::Borrow(records, count);
  return table;
}

}  // namespace indoor
