// Midx: the Distance Index Matrix (paper §IV-A). Row di lists all door ids
// ordered by non-descending Md2d[di, *], so query processing can scan doors
// nearest-first and stop early.

#ifndef INDOOR_CORE_INDEX_DISTANCE_INDEX_MATRIX_H_
#define INDOOR_CORE_INDEX_DISTANCE_INDEX_MATRIX_H_

#include <vector>

#include "core/index/distance_matrix.h"
#include "indoor/types.h"
#include "util/owned_span.h"

namespace indoor {

/// Row-major N x N matrix of door ids; row di is a permutation of all doors
/// sorted by distance from di (ties broken by id for determinism — exactly
/// the lexicographic (distance, id) settle order of the door Dijkstra,
/// which the hierarchy query paths rely on for bitwise kNN equality).
class DistanceIndexMatrix {
 public:
  /// An empty matrix (door_count() == 0); the placeholder the framework
  /// holds when the hierarchy index replaces the flat Midx.
  DistanceIndexMatrix() = default;

  /// Sorts each row independently; rows are disjoint, so construction
  /// parallelizes across `threads` workers (0 = hardware concurrency,
  /// 1 = sequential) with bit-identical output.
  explicit DistanceIndexMatrix(const DistanceMatrix& matrix,
                               unsigned threads = 1);

  /// Adopts a pre-computed payload of n*n row-major door ids (binary
  /// loader, index_io.h).
  static DistanceIndexMatrix FromRaw(size_t n, std::vector<DoorId> data);

  /// Borrows a pre-computed payload without copying (mmap-ed container);
  /// the caller keeps the backing storage alive.
  static DistanceIndexMatrix FromView(size_t n, const DoorId* data);

  /// Matrix dimension == the plan's door count.
  size_t door_count() const { return n_; }

  /// The j-th closest door from `di` (j in [0, door_count()); j = 0 is `di`
  /// itself at distance 0).
  DoorId At(DoorId di, size_t j) const {
    INDOOR_CHECK(di < n_ && j < n_);
    return data_[static_cast<size_t>(di) * n_ + j];
  }

  /// Row di as a contiguous array of n door ids.
  const DoorId* Row(DoorId di) const {
    INDOOR_CHECK(di < n_);
    return data_.data() + static_cast<size_t>(di) * n_;
  }

  /// Logical bytes of the id payload (owned or borrowed alike).
  size_t MemoryBytes() const { return data_.PayloadBytes(); }

 private:
  size_t n_ = 0;
  OwnedSpan<DoorId> data_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_DISTANCE_INDEX_MATRIX_H_
