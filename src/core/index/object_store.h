// Indoor objects (POIs, tracked people, ...) bucketed per partition with a
// grid sub-bucket index (paper §IV-B). Objects can move between partitions
// (moving populations) via MoveObject.

#ifndef INDOOR_CORE_INDEX_OBJECT_STORE_H_
#define INDOOR_CORE_INDEX_OBJECT_STORE_H_

#include <vector>

#include "core/index/grid_index.h"
#include "indoor/floor_plan.h"
#include "util/result.h"

namespace indoor {

/// An indoor spatial object: a position inside a known host partition.
struct IndoorObject {
  ObjectId id = kInvalidId;
  PartitionId partition = kInvalidId;
  Point position;
};

/// Owns all objects and the per-partition grid buckets. The plan must
/// outlive the store.
///
/// Thread-safety: the const read surface (object, size, objects, bucket)
/// is safe for concurrent readers. Insert/MoveObject mutate the object
/// table and buckets; callers must serialize them externally and keep
/// them from overlapping readers (single-writer / multi-reader with an
/// external barrier — the library adds no per-query locking on purpose).
class ObjectStore {
 public:
  /// `grid_cell_size` configures every partition's grid (paper §V-B leaves
  /// the configuration open; the ablation bench sweeps it).
  explicit ObjectStore(const FloorPlan& plan, double grid_cell_size = 2.0);

  /// Adds an object, assigning the next dense id. The position must lie in
  /// the free space of `partition`.
  Result<ObjectId> Insert(PartitionId partition, const Point& position);

  /// Relocates an object (possibly across partitions).
  Status MoveObject(ObjectId id, PartitionId partition,
                    const Point& position);

  const IndoorObject& object(ObjectId id) const {
    INDOOR_CHECK(id < objects_.size());
    return objects_[id];
  }

  size_t size() const { return objects_.size(); }
  const std::vector<IndoorObject>& objects() const { return objects_; }

  const GridBucket& bucket(PartitionId v) const {
    INDOOR_CHECK(v < buckets_.size());
    return buckets_[v];
  }

  double grid_cell_size() const { return grid_cell_size_; }
  const FloorPlan& plan() const { return *plan_; }

 private:
  const FloorPlan* plan_;
  double grid_cell_size_;
  std::vector<IndoorObject> objects_;
  std::vector<GridBucket> buckets_;  // one per partition
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_OBJECT_STORE_H_
