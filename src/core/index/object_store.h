// Indoor objects (POIs, tracked people, ...) bucketed per partition with a
// grid sub-bucket index (paper §IV-B). Objects can move between partitions
// (moving populations) via MoveObject.

#ifndef INDOOR_CORE_INDEX_OBJECT_STORE_H_
#define INDOOR_CORE_INDEX_OBJECT_STORE_H_

#include <atomic>
#include <span>
#include <vector>

#include "core/index/grid_index.h"
#include "indoor/floor_plan.h"
#include "util/result.h"

namespace indoor {

/// An indoor spatial object: a position inside a known host partition.
struct IndoorObject {
  ObjectId id = kInvalidId;
  PartitionId partition = kInvalidId;
  Point position;
};

/// One relocation request: move `id` to `position` inside `partition`.
/// The wire shape matches MoveObject's arguments so a batch of MoveOps is
/// exactly a recorded sequence of MoveObject calls.
struct MoveOp {
  ObjectId id = kInvalidId;
  PartitionId partition = kInvalidId;
  Point position;
};

/// Owns all objects and the per-partition grid buckets. The plan must
/// outlive the store.
///
/// Thread-safety: the const read surface (object, size, objects, bucket,
/// epoch) is safe for concurrent readers. Insert/MoveObject/ApplyMoves
/// mutate the object table and buckets; callers must serialize them
/// externally and keep them from overlapping readers (single-writer /
/// multi-reader with an external barrier — the library adds no per-query
/// locking on purpose).
///
/// Epochs: every partition carries a monotonically increasing *object
/// epoch* that is bumped whenever that partition's object population
/// changes (Insert into it, or an object moving in or out). Epochs version
/// only object-dependent state — geometry (distance fields, host-partition
/// lookups) never changes and is never versioned. Consumers such as the
/// query cache snapshot `(partition, epoch)` pairs when deriving an
/// object-dependent result and lazily reject the entry at lookup when any
/// recorded epoch no longer matches, so writes need no locked cache sweep.
/// Epoch values are opaque version numbers: only equality is meaningful.
///
/// Change journal: alongside the epoch, each partition keeps the ids
/// behind its last kChangeJournalCapacity bumps in a fixed ring.
/// ChangedSince(v, e) recovers exactly which objects account for the
/// epoch delta (e, epoch(v)] — the query cache uses this to *repair* a
/// stale cached result by re-testing only the objects that moved, instead
/// of rejecting it outright. A delta older than the ring is reported as
/// uncoverable and the consumer falls back to a full reject.
class ObjectStore {
 public:
  /// `grid_cell_size` configures every partition's grid (paper §V-B leaves
  /// the configuration open; the ablation bench sweeps it).
  explicit ObjectStore(const FloorPlan& plan, double grid_cell_size = 2.0);

  /// Adds an object, assigning the next dense id. The position must lie in
  /// the free space of `partition`.
  Result<ObjectId> Insert(PartitionId partition, const Point& position);

  /// Relocates an object (possibly across partitions).
  Status MoveObject(ObjectId id, PartitionId partition,
                    const Point& position);

  /// Applies a batch of moves in submission order, equivalent to calling
  /// MoveObject for each op and stopping at the first failure: ops before
  /// the failing one stay applied, ops after it are not attempted, and the
  /// failing op's status is returned. `applied` (optional) receives the
  /// number of ops applied, == moves.size() on success. This is the
  /// batched update-ingest entry point: it publishes one `update.batch_ms`
  /// observation per call and `update.moves` per applied op.
  Status ApplyMoves(std::span<const MoveOp> moves,
                    size_t* applied = nullptr);

  /// Current object epoch of `v` (relaxed load; see class comment).
  uint64_t epoch(PartitionId v) const {
    INDOOR_CHECK(v < epochs_.size());
    return epochs_[v].load(std::memory_order_relaxed);
  }

  /// Store-wide object epoch: bumped alongside every per-partition bump,
  /// so whole-store consumers (the approximate-kNN embeddings) get an O(1)
  /// freshness check instead of scanning every partition epoch. Opaque
  /// like the per-partition epochs: only equality is meaningful.
  uint64_t global_epoch() const {
    return global_epoch_.v.load(std::memory_order_relaxed);
  }

  /// Ring capacity of each partition's change journal.
  static constexpr size_t kChangeJournalCapacity = 128;

  /// Appends to `out` the id recorded for every epoch in (since, epoch(v)]
  /// — the objects whose membership in `v` changed since `since` — and
  /// returns true. Returns false (appending nothing reliable) when the
  /// delta exceeds the journal ring, i.e. the window is no longer
  /// coverable. The same id may appear multiple times; `since` must be a
  /// snapshot previously read from epoch(v). Reader-safe under the same
  /// external single-writer barrier as the rest of the const surface.
  bool ChangedSince(PartitionId v, uint64_t since,
                    std::vector<ObjectId>* out) const;

  /// The object with dense id `id` (checked).
  const IndoorObject& object(ObjectId id) const {
    INDOOR_CHECK(id < objects_.size());
    return objects_[id];
  }

  /// Number of stored objects (ids are dense in [0, size())).
  size_t size() const { return objects_.size(); }

  /// All objects, indexed by id.
  const std::vector<IndoorObject>& objects() const { return objects_; }

  /// The grid bucket holding partition `v`'s objects.
  const GridBucket& bucket(PartitionId v) const {
    INDOOR_CHECK(v < buckets_.size());
    return buckets_[v];
  }

  /// Grid cell edge length (meters) every bucket was built with.
  double grid_cell_size() const { return grid_cell_size_; }

  /// The plan this store was built against.
  const FloorPlan& plan() const { return *plan_; }

 private:
  /// One journal slot: the object behind one epoch bump.
  struct PartitionChange {
    uint64_t epoch = 0;  // 0 = never written (real epochs start at 1)
    ObjectId id = kInvalidId;
  };

  /// Movable relaxed atomic counter (a bare std::atomic member would
  /// delete the store's implicit moves).
  struct RelaxedCounter {
    std::atomic<uint64_t> v{0};
    RelaxedCounter() = default;
    RelaxedCounter(RelaxedCounter&& o) noexcept
        : v(o.v.load(std::memory_order_relaxed)) {}
    RelaxedCounter& operator=(RelaxedCounter&& o) noexcept {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  void BumpEpoch(PartitionId v, ObjectId id) {
    const uint64_t e = epochs_[v].fetch_add(1, std::memory_order_relaxed) + 1;
    journal_[static_cast<size_t>(v) * kChangeJournalCapacity +
             static_cast<size_t>(e % kChangeJournalCapacity)] = {e, id};
    global_epoch_.v.fetch_add(1, std::memory_order_relaxed);
  }

  const FloorPlan* plan_;
  double grid_cell_size_;
  std::vector<IndoorObject> objects_;
  std::vector<GridBucket> buckets_;        // one per partition
  std::vector<std::atomic<uint64_t>> epochs_;  // one per partition
  // Flat per-partition rings of the ids behind recent epoch bumps; slot of
  // epoch e in partition v is [v * cap + e % cap] (consecutive epochs land
  // in distinct slots, so a coverable window is always intact).
  std::vector<PartitionChange> journal_;
  RelaxedCounter global_epoch_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_INDEX_OBJECT_STORE_H_
