#include "core/index/distance_index_matrix.h"

#include <algorithm>
#include <numeric>

namespace indoor {

DistanceIndexMatrix::DistanceIndexMatrix(const DistanceMatrix& matrix)
    : n_(matrix.door_count()) {
  data_.resize(n_ * n_);
  std::vector<DoorId> order(n_);
  for (DoorId di = 0; di < n_; ++di) {
    std::iota(order.begin(), order.end(), 0);
    const double* row = matrix.Row(di);
    std::stable_sort(order.begin(), order.end(),
                     [row](DoorId a, DoorId b) { return row[a] < row[b]; });
    std::copy(order.begin(), order.end(),
              data_.begin() + static_cast<size_t>(di) * n_);
  }
}

}  // namespace indoor
