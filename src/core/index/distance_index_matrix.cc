#include "core/index/distance_index_matrix.h"

#include <algorithm>
#include <numeric>

#include "util/thread_pool.h"

namespace indoor {

DistanceIndexMatrix::DistanceIndexMatrix(const DistanceMatrix& matrix,
                                         unsigned threads)
    : n_(matrix.door_count()) {
  data_.resize(n_ * n_);
  // Each row is an independent stable sort of [0, n) by its Md2d row; the
  // tie-break by id comes from stable_sort over the iota order, so serial
  // and parallel builds agree exactly.
  ParallelFor(0, n_, threads, [&](size_t di) {
    DoorId* out = data_.data() + di * n_;
    std::iota(out, out + n_, 0);
    const double* row = matrix.Row(static_cast<DoorId>(di));
    std::stable_sort(out, out + n_,
                     [row](DoorId a, DoorId b) { return row[a] < row[b]; });
  });
}

}  // namespace indoor
