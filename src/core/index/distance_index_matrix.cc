#include "core/index/distance_index_matrix.h"

#include <algorithm>
#include <numeric>

#include "util/thread_pool.h"

namespace indoor {

DistanceIndexMatrix::DistanceIndexMatrix(const DistanceMatrix& matrix,
                                         unsigned threads)
    : n_(matrix.door_count()) {
  std::vector<DoorId> data(n_ * n_);
  // Each row is an independent stable sort of [0, n) by its Md2d row; the
  // tie-break by id comes from stable_sort over the iota order, so serial
  // and parallel builds agree exactly.
  ParallelFor(0, n_, threads, [&](size_t di) {
    DoorId* out = data.data() + di * n_;
    std::iota(out, out + n_, 0);
    const double* row = matrix.Row(static_cast<DoorId>(di));
    std::stable_sort(out, out + n_,
                     [row](DoorId a, DoorId b) { return row[a] < row[b]; });
  });
  data_ = OwnedSpan<DoorId>::Own(std::move(data));
}

DistanceIndexMatrix DistanceIndexMatrix::FromRaw(size_t n,
                                                 std::vector<DoorId> data) {
  INDOOR_CHECK(data.size() == n * n) << "payload size mismatch";
  DistanceIndexMatrix matrix;
  matrix.n_ = n;
  matrix.data_ = OwnedSpan<DoorId>::Own(std::move(data));
  return matrix;
}

DistanceIndexMatrix DistanceIndexMatrix::FromView(size_t n,
                                                  const DoorId* data) {
  DistanceIndexMatrix matrix;
  matrix.n_ = n;
  matrix.data_ = OwnedSpan<DoorId>::Borrow(data, n * n);
  return matrix;
}

}  // namespace indoor
