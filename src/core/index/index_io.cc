#include "core/index/index_io.h"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/metrics.h"

namespace indoor {
namespace {

constexpr uint64_t kMagic = 0x49444D3244303146ULL;  // "IDM2D01F"
constexpr uint64_t kLandmarkMagic = 0x49444C4D4B303146ULL;  // "IDLMK01F"

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 29);
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(h, bits);
}

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

uint64_t PlanDistanceFingerprint(const FloorPlan& plan) {
  uint64_t h = 0xC0FFEE;
  h = Mix(h, plan.partition_count());
  h = Mix(h, plan.door_count());
  for (const Door& door : plan.doors()) {
    h = MixDouble(h, door.geometry().a.x);
    h = MixDouble(h, door.geometry().a.y);
    h = MixDouble(h, door.geometry().b.x);
    h = MixDouble(h, door.geometry().b.y);
    for (const DoorConnection& c : plan.D2P(door.id())) {
      h = Mix(h, (static_cast<uint64_t>(c.from) << 32) | c.to);
    }
  }
  for (const Partition& part : plan.partitions()) {
    h = MixDouble(h, part.metric_scale());
    for (const Point& v : part.footprint().outer().vertices()) {
      h = MixDouble(h, v.x);
      h = MixDouble(h, v.y);
    }
    for (const Polygon& obs : part.footprint().obstacles()) {
      for (const Point& v : obs.vertices()) {
        h = MixDouble(h, v.x);
        h = MixDouble(h, v.y);
      }
    }
  }
  return h;
}

Status SaveDistanceMatrix(const DistanceMatrix& matrix,
                          const FloorPlan& plan, const std::string& path) {
  if (matrix.door_count() != plan.door_count()) {
    return Status::InvalidArgument(
        "matrix door count does not match the plan");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WritePod(out, kMagic);
  WritePod(out, PlanDistanceFingerprint(plan));
  const uint64_t n = matrix.door_count();
  WritePod(out, n);
  for (DoorId d = 0; d < n; ++d) {
    out.write(reinterpret_cast<const char*>(matrix.Row(d)),
              static_cast<std::streamsize>(n * sizeof(double)));
  }
  WritePod(out, kMagic);  // trailer guards truncation
  if (!out) {
    return Status::IOError("failed writing '" + path + "'");
  }
  return Status::OK();
}

Result<DistanceMatrix> LoadDistanceMatrix(const FloorPlan& plan,
                                          const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  uint64_t magic = 0, fingerprint = 0, n = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::ParseError("'" + path + "' is not a distance matrix file");
  }
  if (!ReadPod(in, &fingerprint)) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  if (fingerprint != PlanDistanceFingerprint(plan)) {
    return Status::FailedPrecondition(
        "'" + path + "' was computed for a different floor plan");
  }
  if (!ReadPod(in, &n)) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  if (n != plan.door_count()) {
    return Status::FailedPrecondition("door count mismatch in '" + path +
                                      "'");
  }
  std::vector<double> data(n * n);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!in) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  uint64_t trailer = 0;
  if (!ReadPod(in, &trailer) || trailer != kMagic) {
    return Status::ParseError("'" + path + "' has a corrupt trailer");
  }
  return DistanceMatrix::FromRaw(n, std::move(data));
}

Status SaveLandmarkIndex(const LandmarkIndex& landmarks,
                         const FloorPlan& plan, const std::string& path) {
  if (!landmarks.valid() || landmarks.door_count() != plan.door_count()) {
    return Status::InvalidArgument(
        "landmark index does not match the plan (or is empty)");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WritePod(out, kLandmarkMagic);
  WritePod(out, PlanDistanceFingerprint(plan));
  const uint64_t n = landmarks.door_count();
  const uint64_t count = landmarks.count();
  WritePod(out, n);
  WritePod(out, count);
  for (const DoorId d : landmarks.doors()) WritePod(out, d);
  // Transposed per-door rows, doors-major (the in-memory layout).
  for (DoorId d = 0; d < n; ++d) {
    out.write(reinterpret_cast<const char*>(landmarks.ForwardRow(d)),
              static_cast<std::streamsize>(count * sizeof(double)));
  }
  for (DoorId d = 0; d < n; ++d) {
    out.write(reinterpret_cast<const char*>(landmarks.BackwardRow(d)),
              static_cast<std::streamsize>(count * sizeof(double)));
  }
  WritePod(out, kLandmarkMagic);  // trailer guards truncation
  if (!out) {
    return Status::IOError("failed writing '" + path + "'");
  }
  return Status::OK();
}

Result<LandmarkIndex> LoadLandmarkIndex(const FloorPlan& plan,
                                        const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  uint64_t magic = 0, fingerprint = 0, n = 0, count = 0;
  if (!ReadPod(in, &magic) || magic != kLandmarkMagic) {
    return Status::ParseError("'" + path + "' is not a landmark index file");
  }
  if (!ReadPod(in, &fingerprint)) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  if (fingerprint != PlanDistanceFingerprint(plan)) {
    return Status::FailedPrecondition(
        "'" + path + "' was computed for a different floor plan");
  }
  if (!ReadPod(in, &n) || !ReadPod(in, &count)) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  if (n != plan.door_count()) {
    return Status::FailedPrecondition("door count mismatch in '" + path +
                                      "'");
  }
  if (count == 0 || count > LandmarkIndex::kMaxCount || count > n) {
    return Status::ParseError("implausible landmark count in '" + path +
                              "'");
  }
  std::vector<DoorId> doors(count);
  for (DoorId& d : doors) {
    if (!ReadPod(in, &d)) {
      return Status::ParseError("'" + path + "' is truncated");
    }
    if (d >= n) {
      return Status::ParseError("landmark door out of range in '" + path +
                                "'");
    }
  }
  std::vector<double> fwd(n * count);
  std::vector<double> bwd(n * count);
  in.read(reinterpret_cast<char*>(fwd.data()),
          static_cast<std::streamsize>(fwd.size() * sizeof(double)));
  in.read(reinterpret_cast<char*>(bwd.data()),
          static_cast<std::streamsize>(bwd.size() * sizeof(double)));
  if (!in) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  uint64_t trailer = 0;
  if (!ReadPod(in, &trailer) || trailer != kLandmarkMagic) {
    return Status::ParseError("'" + path + "' has a corrupt trailer");
  }
  return LandmarkIndex::FromRaw(n, std::move(doors), std::move(fwd),
                                std::move(bwd));
}

// ---- The INDOORIX sectioned container ----------------------------------
//
// docs/FORMAT.md is the byte-for-byte specification; this block is the
// reference implementation. The reader is written once over a raw byte
// view and shared by both load modes: LoadIndexContainer hands it a heap
// buffer and copies payloads out (after checksumming them), while
// MapIndexContainer hands it the mmap-ed pages and borrows (structural
// validation only). Every parse failure is a clean Status carrying the
// file path and, once one is in play, the section tag.

namespace {

// "INDOORIX" read as a little-endian u64 (byte 0 = 'I').
constexpr uint64_t kContainerMagic = 0x5849524F4F444E49ULL;
constexpr uint64_t kAlign = 64;

uint64_t AlignUp(uint64_t v) { return (v + (kAlign - 1)) & ~(kAlign - 1); }

/// The fixed 64-byte file header. All integers little-endian (the only
/// byte order the library targets; the magic doubles as an endianness
/// probe since its byte-swapped value never matches).
struct FileHeader {
  uint64_t magic = kContainerMagic;
  uint32_t version = kIndexContainerVersion;
  uint32_t header_size = sizeof(FileHeader);
  uint64_t fingerprint = 0;
  uint64_t file_size = 0;
  uint32_t section_count = 0;
  uint32_t flags = 0;
  uint64_t door_count = 0;
  uint64_t partition_count = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(FileHeader) == 64, "header must be exactly 64 bytes");
static_assert(std::is_trivially_copyable_v<FileHeader>);

/// One 32-byte section-table entry. `tag` is 8 ASCII characters padded
/// with spaces; `offset` is absolute from the start of the file and
/// 64-byte aligned; `checksum` folds the payload bytes (verified by the
/// read path, trusted by the map path).
struct SectionEntry {
  char tag[8];
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};
static_assert(sizeof(SectionEntry) == 32, "entry must be exactly 32 bytes");
static_assert(std::is_trivially_copyable_v<SectionEntry>);

// DptRecord is persisted verbatim, so its layout is part of the on-disk
// format; these assertions pin it (docs/FORMAT.md documents the padding).
static_assert(sizeof(DptRecord) == 32, "DptRecord layout is persisted");
static_assert(std::is_trivially_copyable_v<DptRecord>);

constexpr char kTagMd2d[8] = {'M', 'D', '2', 'D', ' ', ' ', ' ', ' '};
constexpr char kTagMidx[8] = {'M', 'I', 'D', 'X', ' ', ' ', ' ', ' '};
constexpr char kTagDpt[8] = {'D', 'P', 'T', ' ', ' ', ' ', ' ', ' '};
constexpr char kTagLmrk[8] = {'L', 'M', 'R', 'K', ' ', ' ', ' ', ' '};
constexpr char kTagHier[8] = {'H', 'I', 'E', 'R', ' ', ' ', ' ', ' '};
constexpr char kTagAnnx[8] = {'A', 'N', 'N', 'X', ' ', ' ', ' ', ' '};

std::string TagName(const char tag[8]) {
  std::string s(tag, tag + 8);
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

bool TagEq(const char a[8], const char b[8]) {
  return std::memcmp(a, b, 8) == 0;
}

/// Folds a payload into a 64-bit checksum: Mix over the bytes taken eight
/// at a time (zero-padded tail), then over the length.
uint64_t SectionChecksum(const uint8_t* data, uint64_t size) {
  uint64_t h = 0x53454354u;  // "SECT"
  uint64_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = Mix(h, w);
  }
  if (i < size) {
    uint64_t w = 0;
    std::memcpy(&w, data + i, size - i);
    h = Mix(h, w);
  }
  return Mix(h, size);
}

/// Accumulates one section payload in memory: a 64-byte mini-header
/// followed by arrays, each starting on a 64-byte boundary so the offsets
/// survive into the mapped file (section offsets are themselves
/// 64-aligned).
class PayloadBuilder {
 public:
  template <typename T>
  void Pod(T v) {
    const size_t at = bytes_.size();
    bytes_.resize(at + sizeof(T));
    std::memcpy(bytes_.data() + at, &v, sizeof(T));
  }

  void PadTo(size_t boundary) {
    bytes_.resize(AlignUpTo(bytes_.size(), boundary), 0);
  }

  template <typename T>
  void Array(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    PadTo(kAlign);
    const size_t at = bytes_.size();
    bytes_.resize(at + count * sizeof(T));
    if (count > 0) std::memcpy(bytes_.data() + at, data, count * sizeof(T));
  }

  template <typename T>
  void Array(std::span<const T> s) {
    Array(s.data(), s.size());
  }

  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  static size_t AlignUpTo(size_t v, size_t b) {
    return (v + (b - 1)) & ~(b - 1);
  }
  std::vector<uint8_t> bytes_;
};

std::vector<uint8_t> BuildMd2dPayload(const DistanceMatrix& m) {
  PayloadBuilder b;
  const uint64_t n = m.door_count();
  b.Pod(n);
  b.PadTo(kAlign);
  b.Array(n > 0 ? m.Row(0) : nullptr, static_cast<size_t>(n * n));
  return b.Take();
}

std::vector<uint8_t> BuildMidxPayload(const DistanceIndexMatrix& m) {
  PayloadBuilder b;
  const uint64_t n = m.door_count();
  b.Pod(n);
  b.PadTo(kAlign);
  b.Array(n > 0 ? m.Row(0) : nullptr, static_cast<size_t>(n * n));
  return b.Take();
}

std::vector<uint8_t> BuildDptPayload(const DoorPartitionTable& dpt) {
  PayloadBuilder b;
  b.Pod(static_cast<uint64_t>(dpt.size()));
  b.PadTo(kAlign);
  b.Array(dpt.Records());
  return b.Take();
}

std::vector<uint8_t> BuildLandmarkPayload(const LandmarkIndex& lm) {
  PayloadBuilder b;
  b.Pod(static_cast<uint64_t>(lm.door_count()));
  b.Pod(static_cast<uint64_t>(lm.count()));
  b.PadTo(kAlign);
  b.Array(lm.doors());
  b.Array(lm.ForwardPayload());
  b.Array(lm.BackwardPayload());
  return b.Take();
}

std::vector<uint8_t> BuildHierarchyPayload(const HierarchyIndex& h) {
  PayloadBuilder b;
  b.Pod(static_cast<uint64_t>(h.door_count()));
  b.Pod(static_cast<uint64_t>(h.cell_count()));
  b.Pod(static_cast<uint64_t>(h.border_count()));
  b.Pod(static_cast<uint64_t>(h.PartitionCells().size()));
  b.Pod(static_cast<uint64_t>(h.Members().size()));
  b.Pod(static_cast<uint64_t>(h.CellBorderLocalsFlat().size()));
  b.Pod(static_cast<uint64_t>(h.Blocks().size()));
  b.Pod(h.cell_target());
  b.Pod(uint32_t{0});  // reserved
  b.PadTo(kAlign);
  b.Array(h.PartitionCells());
  b.Array(h.DoorCells());
  b.Array(h.DoorLocals());
  b.Array(h.MemberOffsets());
  b.Array(h.Members());
  b.Array(h.EscapeRadii());
  b.Array(h.CellBorderOffsets());
  b.Array(h.CellBorderLocalsFlat());
  b.Array(h.BlockOffsets());
  b.Array(h.Blocks());
  b.Array(h.border_doors());
  b.Array(h.BorderOfDoor());
  b.Array(h.BorderMatrix());
  return b.Take();
}

std::vector<uint8_t> BuildApproxPayload(const ApproxKnnPayload& p) {
  PayloadBuilder b;
  b.Pod(p.object_count);
  b.Pod(p.landmark_count);
  b.Pod(p.leg_total);
  b.Pod(p.fingerprint);
  b.PadTo(kAlign);
  b.Array(p.fwd.data(), p.fwd.size());
  b.Array(p.bwd.data(), p.bwd.size());
  b.Array(p.leg_offsets.data(), p.leg_offsets.size());
  b.Array(p.legs.data(), p.legs.size());
  return b.Take();
}

// ---- Reading ------------------------------------------------------------

/// One section of a parsed container, viewing the underlying bytes.
struct SectionView {
  SectionEntry entry;
  const uint8_t* data = nullptr;
};

struct ContainerView {
  FileHeader header;
  std::vector<SectionView> sections;

  const SectionView* Find(const char tag[8]) const {
    for (const SectionView& s : sections) {
      if (TagEq(s.entry.tag, tag)) return &s;
    }
    return nullptr;
  }
};

/// Validates the container framing — header, fingerprint, trailer,
/// section table, bounds and alignment of every payload — against the raw
/// byte view. Content inside the payloads is NOT touched here.
Status ParseContainerView(const FloorPlan& plan, const std::string& path,
                          const uint8_t* data, uint64_t size,
                          ContainerView* out) {
  if (size < sizeof(FileHeader) + sizeof(uint64_t)) {
    return Status::ParseError("'" + path +
                              "' is too small to be an index container (" +
                              std::to_string(size) + " bytes)");
  }
  std::memcpy(&out->header, data, sizeof(FileHeader));
  const FileHeader& hdr = out->header;
  if (hdr.magic != kContainerMagic) {
    return Status::ParseError("'" + path +
                              "' is not an INDOORIX index container");
  }
  if (hdr.version != kIndexContainerVersion) {
    return Status::ParseError(
        "'" + path + "' uses unsupported container version " +
        std::to_string(hdr.version) + " (this build reads version " +
        std::to_string(kIndexContainerVersion) + ")");
  }
  if (hdr.header_size != sizeof(FileHeader)) {
    return Status::ParseError("'" + path + "' header size " +
                              std::to_string(hdr.header_size) +
                              " does not match the format (64)");
  }
  if (hdr.file_size != size) {
    return Status::ParseError(
        "'" + path + "' header records " + std::to_string(hdr.file_size) +
        " bytes but the file has " + std::to_string(size));
  }
  uint64_t trailer = 0;
  std::memcpy(&trailer, data + size - sizeof(uint64_t), sizeof(uint64_t));
  if (trailer != kContainerMagic) {
    return Status::ParseError("'" + path +
                              "' has a corrupt trailer (truncated write?)");
  }
  if (hdr.fingerprint != PlanDistanceFingerprint(plan)) {
    return Status::FailedPrecondition(
        "'" + path + "' was computed for a different floor plan");
  }
  if (hdr.door_count != plan.door_count() ||
      hdr.partition_count != plan.partition_count()) {
    return Status::FailedPrecondition(
        "door/partition count mismatch in '" + path + "' (file has " +
        std::to_string(hdr.door_count) + "/" +
        std::to_string(hdr.partition_count) + ", plan has " +
        std::to_string(plan.door_count()) + "/" +
        std::to_string(plan.partition_count()) + ")");
  }
  if (hdr.section_count > 16) {
    return Status::ParseError("implausible section count " +
                              std::to_string(hdr.section_count) + " in '" +
                              path + "'");
  }
  const uint64_t table_end =
      sizeof(FileHeader) + uint64_t{hdr.section_count} * sizeof(SectionEntry);
  if (table_end > size - sizeof(uint64_t)) {
    return Status::ParseError("'" + path +
                              "' section table overruns the file");
  }
  out->sections.resize(hdr.section_count);
  for (uint32_t i = 0; i < hdr.section_count; ++i) {
    SectionView& s = out->sections[i];
    std::memcpy(&s.entry,
                data + sizeof(FileHeader) + i * sizeof(SectionEntry),
                sizeof(SectionEntry));
    const std::string tag = TagName(s.entry.tag);
    if (s.entry.offset % kAlign != 0) {
      return Status::ParseError(
          "'" + path + "': section " + tag + " payload misaligned (offset " +
          std::to_string(s.entry.offset) + " is not 64-byte aligned)");
    }
    if (s.entry.offset < table_end ||
        s.entry.size > size - sizeof(uint64_t) ||
        s.entry.offset > size - sizeof(uint64_t) - s.entry.size) {
      return Status::ParseError(
          "'" + path + "': section " + tag + " truncated (need " +
          std::to_string(s.entry.size) + " bytes at offset " +
          std::to_string(s.entry.offset) + ", file has " +
          std::to_string(size) + ")");
    }
    for (uint32_t j = 0; j < i; ++j) {
      if (TagEq(out->sections[j].entry.tag, s.entry.tag)) {
        return Status::ParseError("'" + path + "': duplicate section " + tag);
      }
    }
    s.data = data + s.entry.offset;
  }
  return Status::OK();
}

/// Walks a payload's array sub-layout: mini-header first, then arrays on
/// 64-byte boundaries. Bounds-checked against the section size with
/// overflow-safe arithmetic; Finish() demands the size matches exactly.
class PayloadCursor {
 public:
  PayloadCursor(const SectionView& s) : base_(s.data), limit_(s.entry.size) {}

  /// The next `count` elements of type T, or null once out of bounds.
  template <typename T>
  const T* Array(uint64_t count) {
    if (!ok_) return nullptr;
    off_ = AlignUp(off_);
    if (off_ > limit_ ||
        count > (limit_ - off_) / static_cast<uint64_t>(sizeof(T))) {
      ok_ = false;
      return nullptr;
    }
    const T* p = reinterpret_cast<const T*>(base_ + off_);
    off_ += count * sizeof(T);
    return p;
  }

  bool ok() const { return ok_; }
  /// True when every byte of the section was consumed (padding included).
  bool Finish() { return ok_ && AlignUp(off_) == AlignUp(limit_) &&
                         limit_ >= off_; }

 private:
  const uint8_t* base_;
  uint64_t limit_;
  uint64_t off_ = kAlign;  // the 64-byte mini-header
  bool ok_ = true;
};

Status SectionSizeError(const std::string& path, const char tag[8],
                        uint64_t size) {
  return Status::ParseError("'" + path + "': section " + TagName(tag) +
                            " payload layout inconsistent with its size (" +
                            std::to_string(size) + " bytes)");
}

template <typename T>
std::vector<T> CopyArray(const T* data, uint64_t count) {
  return std::vector<T>(data, data + count);
}

template <typename T>
OwnedSpan<T> Adopt(const T* data, uint64_t count, bool borrow) {
  if (borrow) return OwnedSpan<T>::Borrow(data, count);
  return OwnedSpan<T>::Own(CopyArray(data, count));
}

Status DecodeMd2d(const std::string& path, const FloorPlan& plan,
                  const SectionView& s, bool borrow, IndexArtifacts* out) {
  if (s.entry.size < kAlign) return SectionSizeError(path, s.entry.tag,
                                                     s.entry.size);
  uint64_t n = 0;
  std::memcpy(&n, s.data, sizeof(n));
  if (n != plan.door_count()) {
    return Status::FailedPrecondition(
        "door count mismatch in '" + path + "' section MD2D (file has " +
        std::to_string(n) + ", plan has " +
        std::to_string(plan.door_count()) + ")");
  }
  PayloadCursor cur(s);
  const double* cells = cur.Array<double>(n * n);
  if (!cur.Finish()) return SectionSizeError(path, s.entry.tag, s.entry.size);
  out->md2d = borrow
                  ? DistanceMatrix::FromView(n, cells)
                  : DistanceMatrix::FromRaw(n, CopyArray(cells, n * n));
  return Status::OK();
}

Status DecodeMidx(const std::string& path, const FloorPlan& plan,
                  const SectionView& s, bool borrow, IndexArtifacts* out) {
  if (s.entry.size < kAlign) return SectionSizeError(path, s.entry.tag,
                                                     s.entry.size);
  uint64_t n = 0;
  std::memcpy(&n, s.data, sizeof(n));
  if (n != plan.door_count()) {
    return Status::FailedPrecondition(
        "door count mismatch in '" + path + "' section MIDX (file has " +
        std::to_string(n) + ", plan has " +
        std::to_string(plan.door_count()) + ")");
  }
  PayloadCursor cur(s);
  const DoorId* cells = cur.Array<DoorId>(n * n);
  if (!cur.Finish()) return SectionSizeError(path, s.entry.tag, s.entry.size);
  out->midx = borrow
                  ? DistanceIndexMatrix::FromView(n, cells)
                  : DistanceIndexMatrix::FromRaw(n, CopyArray(cells, n * n));
  return Status::OK();
}

Status DecodeDpt(const std::string& path, const FloorPlan& plan,
                 const SectionView& s, bool borrow, IndexArtifacts* out) {
  if (s.entry.size < kAlign) return SectionSizeError(path, s.entry.tag,
                                                     s.entry.size);
  uint64_t n = 0;
  std::memcpy(&n, s.data, sizeof(n));
  if (n != plan.door_count()) {
    return Status::FailedPrecondition(
        "door count mismatch in '" + path + "' section DPT (file has " +
        std::to_string(n) + ", plan has " +
        std::to_string(plan.door_count()) + ")");
  }
  PayloadCursor cur(s);
  const DptRecord* records = cur.Array<DptRecord>(n);
  if (!cur.Finish()) return SectionSizeError(path, s.entry.tag, s.entry.size);
  out->dpt = borrow ? DoorPartitionTable::FromView(records, n)
                    : DoorPartitionTable::FromRaw(CopyArray(records, n));
  return Status::OK();
}

Status DecodeLandmarks(const std::string& path, const FloorPlan& plan,
                       const SectionView& s, bool borrow,
                       IndexArtifacts* out) {
  if (s.entry.size < kAlign) return SectionSizeError(path, s.entry.tag,
                                                     s.entry.size);
  uint64_t n = 0, count = 0;
  std::memcpy(&n, s.data, sizeof(n));
  std::memcpy(&count, s.data + 8, sizeof(count));
  if (n != plan.door_count()) {
    return Status::FailedPrecondition(
        "door count mismatch in '" + path + "' section LMRK (file has " +
        std::to_string(n) + ", plan has " +
        std::to_string(plan.door_count()) + ")");
  }
  if (count == 0 || count > LandmarkIndex::kMaxCount || count > n) {
    return Status::ParseError("implausible landmark count " +
                              std::to_string(count) + " in '" + path +
                              "' section LMRK");
  }
  PayloadCursor cur(s);
  const DoorId* doors = cur.Array<DoorId>(count);
  const double* fwd = cur.Array<double>(n * count);
  const double* bwd = cur.Array<double>(n * count);
  if (!cur.Finish()) return SectionSizeError(path, s.entry.tag, s.entry.size);
  for (uint64_t l = 0; l < count; ++l) {
    if (doors[l] >= n) {
      return Status::ParseError("landmark door out of range in '" + path +
                                "' section LMRK");
    }
  }
  out->landmarks =
      borrow ? LandmarkIndex::FromView(n, count, doors, fwd, bwd)
             : LandmarkIndex::FromRaw(n, CopyArray(doors, count),
                                      CopyArray(fwd, n * count),
                                      CopyArray(bwd, n * count));
  return Status::OK();
}

Status HierCorrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("'" + path + "': section HIER corrupt (" + what +
                            ")");
}

/// HIER carries cross-array offset invariants that HierarchyIndex::FromRaw
/// re-asserts with INDOOR_CHECK (process-aborting). The mapped path never
/// checksums payloads, so every invariant is validated here first and
/// corruption surfaces as ParseError; FromRaw's CHECKs stay a last-line
/// defense against library bugs, not a file-validation mechanism. Only the
/// small integer arrays are touched — the big double payloads (blocks,
/// border matrix, escape radii) stay cold so a mapped open remains lazy.
Status DecodeHierarchy(const std::string& path, const FloorPlan& plan,
                       const SectionView& s, bool borrow,
                       IndexArtifacts* out) {
  if (s.entry.size < kAlign) return SectionSizeError(path, s.entry.tag,
                                                     s.entry.size);
  uint64_t mini[7];
  std::memcpy(mini, s.data, sizeof(mini));
  const uint64_t n = mini[0], nc = mini[1], nb = mini[2], np = mini[3];
  const uint64_t member_total = mini[4], border_local_total = mini[5],
                 block_total = mini[6];
  uint32_t cell_target = 0;
  std::memcpy(&cell_target, s.data + sizeof(mini), sizeof(cell_target));
  if (n != plan.door_count() || np != plan.partition_count()) {
    return Status::FailedPrecondition(
        "door/partition count mismatch in '" + path +
        "' section HIER (file has " + std::to_string(n) + "/" +
        std::to_string(np) + ", plan has " +
        std::to_string(plan.door_count()) + "/" +
        std::to_string(plan.partition_count()) + ")");
  }
  // Every cell claims at least one partition when built, so nc <= np for
  // any valid file; rejecting larger values also keeps nc + 1 below the
  // array-size computations (no uint64 wrap on nc == UINT64_MAX).
  if (nb > n || member_total < n || member_total > 2 * n ||
      (n > 0 && nc == 0) || nc > np) {
    return HierCorrupt(path, "implausible counts in the mini-header");
  }
  PayloadCursor cur(s);
  const uint32_t* partition_cells = cur.Array<uint32_t>(np);
  const uint32_t* door_cells = cur.Array<uint32_t>(2 * n);
  const uint32_t* door_locals = cur.Array<uint32_t>(2 * n);
  const uint64_t* member_offsets = cur.Array<uint64_t>(nc + 1);
  const DoorId* members = cur.Array<DoorId>(member_total);
  const double* escape_radii = cur.Array<double>(member_total);
  const uint64_t* cell_border_offsets = cur.Array<uint64_t>(nc + 1);
  const uint32_t* cell_border_locals =
      cur.Array<uint32_t>(border_local_total);
  const uint64_t* block_offsets = cur.Array<uint64_t>(nc + 1);
  const double* blocks = cur.Array<double>(block_total);
  const DoorId* border_doors = cur.Array<DoorId>(nb);
  const uint32_t* border_of_door = cur.Array<uint32_t>(n);
  const double* border_matrix = cur.Array<double>(nb * nb);
  if (!cur.Finish()) return SectionSizeError(path, s.entry.tag, s.entry.size);

  // The offset arrays gate every other array's indexing, so they are
  // validated in full: CSR prefixes must start at 0, grow monotonically,
  // stay within the mini-header totals, and land exactly on them at the
  // end. The per-cell upper bound must hold BEFORE the border-local loop
  // below indexes cell_border_locals, or a crafted offset reads past the
  // mapped file.
  if (member_offsets[0] != 0 || cell_border_offsets[0] != 0 ||
      block_offsets[0] != 0) {
    return HierCorrupt(path, "offset arrays do not start at 0");
  }
  for (uint64_t c = 0; c < nc; ++c) {
    if (member_offsets[c + 1] < member_offsets[c] ||
        cell_border_offsets[c + 1] < cell_border_offsets[c]) {
      return HierCorrupt(path,
                         "offset array decreases at cell " + std::to_string(c));
    }
    if (member_offsets[c + 1] > member_total ||
        cell_border_offsets[c + 1] > border_local_total ||
        block_offsets[c + 1] > block_total) {
      return HierCorrupt(path, "offset array exceeds header total at cell " +
                                   std::to_string(c));
    }
    const uint64_t m = member_offsets[c + 1] - member_offsets[c];
    if (m > member_total ||
        block_offsets[c + 1] != block_offsets[c] + m * m) {
      return HierCorrupt(
          path, "block offsets inconsistent at cell " + std::to_string(c));
    }
    for (uint64_t b = cell_border_offsets[c]; b < cell_border_offsets[c + 1];
         ++b) {
      if (cell_border_locals[b] >= m) {
        return HierCorrupt(
            path, "border local out of range in cell " + std::to_string(c));
      }
    }
  }
  if (member_offsets[nc] != member_total ||
      cell_border_offsets[nc] != border_local_total ||
      block_offsets[nc] != block_total) {
    return HierCorrupt(path, "offset arrays do not end on the header totals");
  }
  for (uint64_t p = 0; p < np; ++p) {
    if (partition_cells[p] >= nc) {
      return HierCorrupt(path,
                         "partition cell out of range at " + std::to_string(p));
    }
  }
  for (uint64_t d = 0; d < n; ++d) {
    for (int slot = 0; slot < 2; ++slot) {
      const uint32_t c = door_cells[2 * d + slot];
      if (c == HierarchyIndex::kNone) continue;
      if (c >= nc ||
          door_locals[2 * d + slot] >=
              member_offsets[c + 1] - member_offsets[c]) {
        return HierCorrupt(path,
                           "door cell/local out of range at door " +
                               std::to_string(d));
      }
    }
    if (border_of_door[d] != HierarchyIndex::kNone &&
        border_of_door[d] >= nb) {
      return HierCorrupt(
          path, "border slot out of range at door " + std::to_string(d));
    }
  }
  for (uint64_t i = 0; i < member_total; ++i) {
    if (members[i] >= n) {
      return HierCorrupt(path, "member door id out of range");
    }
  }
  for (uint64_t b = 0; b < nb; ++b) {
    if (border_doors[b] >= n) {
      return HierCorrupt(path, "border door id out of range");
    }
  }

  HierarchyIndex::Raw raw;
  raw.door_count = n;
  raw.cell_count = nc;
  raw.border_count = nb;
  raw.cell_target = cell_target;
  raw.partition_cells = Adopt(partition_cells, np, borrow);
  raw.door_cells = Adopt(door_cells, 2 * n, borrow);
  raw.door_locals = Adopt(door_locals, 2 * n, borrow);
  raw.member_offsets = Adopt(member_offsets, nc + 1, borrow);
  raw.members = Adopt(members, member_total, borrow);
  raw.escape_radii = Adopt(escape_radii, member_total, borrow);
  raw.cell_border_offsets = Adopt(cell_border_offsets, nc + 1, borrow);
  raw.cell_border_locals = Adopt(cell_border_locals, border_local_total,
                                 borrow);
  raw.block_offsets = Adopt(block_offsets, nc + 1, borrow);
  raw.blocks = Adopt(blocks, block_total, borrow);
  raw.border_doors = Adopt(border_doors, nb, borrow);
  raw.border_of_door = Adopt(border_of_door, n, borrow);
  raw.border_matrix = Adopt(border_matrix, nb * nb, borrow);
  out->hierarchy = HierarchyIndex::FromRaw(std::move(raw));
  return Status::OK();
}

/// ANNX structural validation mirrors HIER's: the CSR leg offsets gate the
/// leg pool's indexing, so they are checked in full (start at 0, monotone,
/// land exactly on leg_total) before any adoption. What CANNOT be checked
/// here is whether the embeddings describe the live object population —
/// objects are inserted after the container is parsed — so the payload is
/// stashed for deferred adoption and ApproxKnnIndex::Refresh re-checks the
/// fingerprint plus per-object leg counts against the real store.
Status DecodeApprox(const std::string& path, const SectionView& s,
                    bool borrow, IndexArtifacts* out) {
  if (s.entry.size < kAlign) return SectionSizeError(path, s.entry.tag,
                                                     s.entry.size);
  uint64_t n = 0, count = 0, leg_total = 0, fingerprint = 0;
  std::memcpy(&n, s.data, sizeof(n));
  std::memcpy(&count, s.data + 8, sizeof(count));
  std::memcpy(&leg_total, s.data + 16, sizeof(leg_total));
  std::memcpy(&fingerprint, s.data + 24, sizeof(fingerprint));
  if (count == 0 || count > LandmarkIndex::kMaxCount) {
    return Status::ParseError("implausible landmark count " +
                              std::to_string(count) + " in '" + path +
                              "' section ANNX");
  }
  // count <= kMaxCount (32), so count * n cannot wrap once n itself fits
  // the cursor's bounds math; reject absurd n up front to keep n + 1 and
  // count * n honest.
  if (n > (std::numeric_limits<uint64_t>::max() >> 8)) {
    return Status::ParseError("implausible object count in '" + path +
                              "' section ANNX");
  }
  PayloadCursor cur(s);
  const double* fwd = cur.Array<double>(count * n);
  const double* bwd = cur.Array<double>(count * n);
  const uint64_t* leg_offsets = cur.Array<uint64_t>(n + 1);
  const double* legs = cur.Array<double>(leg_total);
  if (!cur.Finish()) return SectionSizeError(path, s.entry.tag, s.entry.size);
  if (leg_offsets[0] != 0) {
    return Status::ParseError("'" + path +
                              "': section ANNX leg offsets do not start at 0");
  }
  for (uint64_t o = 0; o < n; ++o) {
    if (leg_offsets[o + 1] < leg_offsets[o] ||
        leg_offsets[o + 1] > leg_total) {
      return Status::ParseError("'" + path +
                                "': section ANNX leg offsets corrupt at "
                                "object " +
                                std::to_string(o));
    }
  }
  if (leg_offsets[n] != leg_total) {
    return Status::ParseError(
        "'" + path +
        "': section ANNX leg offsets do not end on leg_total");
  }
  ApproxKnnPayload p;
  p.object_count = n;
  p.landmark_count = count;
  p.leg_total = leg_total;
  p.fingerprint = fingerprint;
  p.fwd = Adopt(fwd, count * n, borrow);
  p.bwd = Adopt(bwd, count * n, borrow);
  p.leg_offsets = Adopt(leg_offsets, n + 1, borrow);
  p.legs = Adopt(legs, leg_total, borrow);
  out->approx = std::move(p);
  return Status::OK();
}

/// Decodes every known section of a parsed container into artifacts.
/// Unknown tags are skipped (forward compatibility within a version:
/// readers take what they understand).
Status DecodeSections(const std::string& path, const FloorPlan& plan,
                      const ContainerView& view, bool borrow,
                      IndexArtifacts* out) {
  for (const SectionView& s : view.sections) {
    if (TagEq(s.entry.tag, kTagMd2d)) {
      INDOOR_RETURN_NOT_OK(DecodeMd2d(path, plan, s, borrow, out));
    } else if (TagEq(s.entry.tag, kTagMidx)) {
      INDOOR_RETURN_NOT_OK(DecodeMidx(path, plan, s, borrow, out));
    } else if (TagEq(s.entry.tag, kTagDpt)) {
      INDOOR_RETURN_NOT_OK(DecodeDpt(path, plan, s, borrow, out));
    } else if (TagEq(s.entry.tag, kTagLmrk)) {
      INDOOR_RETURN_NOT_OK(DecodeLandmarks(path, plan, s, borrow, out));
    } else if (TagEq(s.entry.tag, kTagHier)) {
      INDOOR_RETURN_NOT_OK(DecodeHierarchy(path, plan, s, borrow, out));
    } else if (TagEq(s.entry.tag, kTagAnnx)) {
      INDOOR_RETURN_NOT_OK(DecodeApprox(path, s, borrow, out));
    }
  }
  return Status::OK();
}

#ifndef _WIN32
/// RAII mmap of a whole file; the pages live until the last shared_ptr
/// referencing the mapping (IndexArtifacts::mapping and the IndexFramework
/// it moves into) is gone.
class MappedFile {
 public:
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("cannot open '" + path + "' for mapping");
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IOError("cannot stat '" + path + "'");
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return Status::ParseError("'" + path + "' is empty");
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (addr == MAP_FAILED) {
      return Status::IOError("mmap of '" + path + "' failed");
    }
    return std::make_shared<MappedFile>(addr, size);
  }

  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}
  ~MappedFile() { ::munmap(addr_, size_); }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const {
    return static_cast<const uint8_t*>(addr_);
  }
  size_t size() const { return size_; }

 private:
  void* addr_;
  size_t size_;
};
#endif  // !_WIN32

}  // namespace

Status SaveIndexContainer(const IndexFramework& index,
                          const std::string& path) {
  const FloorPlan& plan = index.plan();
  std::vector<std::pair<const char*, std::vector<uint8_t>>> sections;
  if (index.has_flat_matrix()) {
    sections.emplace_back(kTagMd2d, BuildMd2dPayload(index.d2d_matrix()));
    sections.emplace_back(kTagMidx, BuildMidxPayload(index.index_matrix()));
  } else if (index.hierarchy_index().valid()) {
    sections.emplace_back(kTagHier,
                          BuildHierarchyPayload(index.hierarchy_index()));
  }
  sections.emplace_back(kTagDpt, BuildDptPayload(index.dpt()));
  if (index.landmarks() != nullptr) {
    sections.emplace_back(kTagLmrk,
                          BuildLandmarkPayload(*index.landmarks()));
  }
  // The embedding section is written only while it still describes the
  // store's exact population — a stale tier would otherwise be saved with
  // a fingerprint the loader has no way to distinguish from a fresh one.
  if (const ApproxKnnIndex* approx = index.approx_knn();
      approx != nullptr && index.landmarks() != nullptr &&
      approx->FreshFor(index.objects())) {
    sections.emplace_back(
        kTagAnnx, BuildApproxPayload(approx->BuildPayload(
                      index.objects(), *index.landmarks())));
  }

  FileHeader hdr;
  hdr.fingerprint = PlanDistanceFingerprint(plan);
  hdr.section_count = static_cast<uint32_t>(sections.size());
  hdr.door_count = plan.door_count();
  hdr.partition_count = plan.partition_count();

  std::vector<SectionEntry> entries(sections.size());
  uint64_t offset = AlignUp(sizeof(FileHeader) +
                            sections.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    SectionEntry& e = entries[i];
    std::memcpy(e.tag, sections[i].first, 8);
    e.offset = offset;
    e.size = sections[i].second.size();
    e.checksum = SectionChecksum(sections[i].second.data(), e.size);
    offset = AlignUp(offset + e.size);
  }
  hdr.file_size = offset + sizeof(uint64_t);  // trailer magic at the end

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WritePod(out, hdr);
  for (const SectionEntry& e : entries) WritePod(out, e);
  uint64_t written = sizeof(FileHeader) +
                     sections.size() * sizeof(SectionEntry);
  static constexpr char kZeros[kAlign] = {};
  for (size_t i = 0; i < sections.size(); ++i) {
    out.write(kZeros, static_cast<std::streamsize>(entries[i].offset -
                                                   written));
    out.write(reinterpret_cast<const char*>(sections[i].second.data()),
              static_cast<std::streamsize>(entries[i].size));
    written = entries[i].offset + entries[i].size;
  }
  out.write(kZeros,
            static_cast<std::streamsize>(AlignUp(written) - written));
  WritePod(out, kContainerMagic);
  if (!out) {
    return Status::IOError("failed writing '" + path + "'");
  }
  return Status::OK();
}

Result<IndexArtifacts> LoadIndexContainer(const FloorPlan& plan,
                                          const std::string& path) {
  const auto t0 = std::chrono::steady_clock::now();
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    return Status::IOError("failed reading '" + path + "'");
  }
  ContainerView view;
  INDOOR_RETURN_NOT_OK(ParseContainerView(plan, path, bytes.data(),
                                          bytes.size(), &view));
  for (const SectionView& s : view.sections) {
    if (SectionChecksum(s.data, s.entry.size) != s.entry.checksum) {
      return Status::ParseError("'" + path + "': section " +
                                TagName(s.entry.tag) + " checksum mismatch");
    }
  }
  IndexArtifacts artifacts;
  INDOOR_RETURN_NOT_OK(
      DecodeSections(path, plan, view, /*borrow=*/false, &artifacts));
  [[maybe_unused]] const double elapsed_ms =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() *
      1e3;
  INDOOR_GAUGE_SET("load.read_ms", elapsed_ms);
  return artifacts;
}

Result<IndexArtifacts> MapIndexContainer(const FloorPlan& plan,
                                         const std::string& path) {
#ifdef _WIN32
  (void)plan;
  return Status::Unimplemented("mmap container loading ('" + path +
                               "') is not implemented on this platform; "
                               "use LoadIndexContainer");
#else
  const auto t0 = std::chrono::steady_clock::now();
  auto mapped = MappedFile::Open(path);
  INDOOR_RETURN_NOT_OK(mapped.status());
  const std::shared_ptr<MappedFile>& file = mapped.value();
  ContainerView view;
  INDOOR_RETURN_NOT_OK(
      ParseContainerView(plan, path, file->data(), file->size(), &view));
  IndexArtifacts artifacts;
  INDOOR_RETURN_NOT_OK(
      DecodeSections(path, plan, view, /*borrow=*/true, &artifacts));
  artifacts.mapping = file;  // keeps the pages alive for the borrowers
  [[maybe_unused]] const double elapsed_ms =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() *
      1e3;
  INDOOR_GAUGE_SET("load.mmap_ms", elapsed_ms);
  return artifacts;
#endif
}

}  // namespace indoor
