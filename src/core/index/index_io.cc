#include "core/index/index_io.h"

#include <cstring>
#include <fstream>

namespace indoor {
namespace {

constexpr uint64_t kMagic = 0x49444D3244303146ULL;  // "IDM2D01F"
constexpr uint64_t kLandmarkMagic = 0x49444C4D4B303146ULL;  // "IDLMK01F"

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 29);
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(h, bits);
}

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

uint64_t PlanDistanceFingerprint(const FloorPlan& plan) {
  uint64_t h = 0xC0FFEE;
  h = Mix(h, plan.partition_count());
  h = Mix(h, plan.door_count());
  for (const Door& door : plan.doors()) {
    h = MixDouble(h, door.geometry().a.x);
    h = MixDouble(h, door.geometry().a.y);
    h = MixDouble(h, door.geometry().b.x);
    h = MixDouble(h, door.geometry().b.y);
    for (const DoorConnection& c : plan.D2P(door.id())) {
      h = Mix(h, (static_cast<uint64_t>(c.from) << 32) | c.to);
    }
  }
  for (const Partition& part : plan.partitions()) {
    h = MixDouble(h, part.metric_scale());
    for (const Point& v : part.footprint().outer().vertices()) {
      h = MixDouble(h, v.x);
      h = MixDouble(h, v.y);
    }
    for (const Polygon& obs : part.footprint().obstacles()) {
      for (const Point& v : obs.vertices()) {
        h = MixDouble(h, v.x);
        h = MixDouble(h, v.y);
      }
    }
  }
  return h;
}

Status SaveDistanceMatrix(const DistanceMatrix& matrix,
                          const FloorPlan& plan, const std::string& path) {
  if (matrix.door_count() != plan.door_count()) {
    return Status::InvalidArgument(
        "matrix door count does not match the plan");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WritePod(out, kMagic);
  WritePod(out, PlanDistanceFingerprint(plan));
  const uint64_t n = matrix.door_count();
  WritePod(out, n);
  for (DoorId d = 0; d < n; ++d) {
    out.write(reinterpret_cast<const char*>(matrix.Row(d)),
              static_cast<std::streamsize>(n * sizeof(double)));
  }
  WritePod(out, kMagic);  // trailer guards truncation
  if (!out) {
    return Status::IOError("failed writing '" + path + "'");
  }
  return Status::OK();
}

Result<DistanceMatrix> LoadDistanceMatrix(const FloorPlan& plan,
                                          const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  uint64_t magic = 0, fingerprint = 0, n = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::ParseError("'" + path + "' is not a distance matrix file");
  }
  if (!ReadPod(in, &fingerprint)) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  if (fingerprint != PlanDistanceFingerprint(plan)) {
    return Status::FailedPrecondition(
        "'" + path + "' was computed for a different floor plan");
  }
  if (!ReadPod(in, &n)) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  if (n != plan.door_count()) {
    return Status::FailedPrecondition("door count mismatch in '" + path +
                                      "'");
  }
  std::vector<double> data(n * n);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!in) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  uint64_t trailer = 0;
  if (!ReadPod(in, &trailer) || trailer != kMagic) {
    return Status::ParseError("'" + path + "' has a corrupt trailer");
  }
  return DistanceMatrix::FromRaw(n, std::move(data));
}

Status SaveLandmarkIndex(const LandmarkIndex& landmarks,
                         const FloorPlan& plan, const std::string& path) {
  if (!landmarks.valid() || landmarks.door_count() != plan.door_count()) {
    return Status::InvalidArgument(
        "landmark index does not match the plan (or is empty)");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WritePod(out, kLandmarkMagic);
  WritePod(out, PlanDistanceFingerprint(plan));
  const uint64_t n = landmarks.door_count();
  const uint64_t count = landmarks.count();
  WritePod(out, n);
  WritePod(out, count);
  for (const DoorId d : landmarks.doors()) WritePod(out, d);
  // Transposed per-door rows, doors-major (the in-memory layout).
  for (DoorId d = 0; d < n; ++d) {
    out.write(reinterpret_cast<const char*>(landmarks.ForwardRow(d)),
              static_cast<std::streamsize>(count * sizeof(double)));
  }
  for (DoorId d = 0; d < n; ++d) {
    out.write(reinterpret_cast<const char*>(landmarks.BackwardRow(d)),
              static_cast<std::streamsize>(count * sizeof(double)));
  }
  WritePod(out, kLandmarkMagic);  // trailer guards truncation
  if (!out) {
    return Status::IOError("failed writing '" + path + "'");
  }
  return Status::OK();
}

Result<LandmarkIndex> LoadLandmarkIndex(const FloorPlan& plan,
                                        const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  uint64_t magic = 0, fingerprint = 0, n = 0, count = 0;
  if (!ReadPod(in, &magic) || magic != kLandmarkMagic) {
    return Status::ParseError("'" + path + "' is not a landmark index file");
  }
  if (!ReadPod(in, &fingerprint)) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  if (fingerprint != PlanDistanceFingerprint(plan)) {
    return Status::FailedPrecondition(
        "'" + path + "' was computed for a different floor plan");
  }
  if (!ReadPod(in, &n) || !ReadPod(in, &count)) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  if (n != plan.door_count()) {
    return Status::FailedPrecondition("door count mismatch in '" + path +
                                      "'");
  }
  if (count == 0 || count > LandmarkIndex::kMaxCount || count > n) {
    return Status::ParseError("implausible landmark count in '" + path +
                              "'");
  }
  std::vector<DoorId> doors(count);
  for (DoorId& d : doors) {
    if (!ReadPod(in, &d)) {
      return Status::ParseError("'" + path + "' is truncated");
    }
    if (d >= n) {
      return Status::ParseError("landmark door out of range in '" + path +
                                "'");
    }
  }
  std::vector<double> fwd(n * count);
  std::vector<double> bwd(n * count);
  in.read(reinterpret_cast<char*>(fwd.data()),
          static_cast<std::streamsize>(fwd.size() * sizeof(double)));
  in.read(reinterpret_cast<char*>(bwd.data()),
          static_cast<std::streamsize>(bwd.size() * sizeof(double)));
  if (!in) {
    return Status::ParseError("'" + path + "' is truncated");
  }
  uint64_t trailer = 0;
  if (!ReadPod(in, &trailer) || trailer != kLandmarkMagic) {
    return Status::ParseError("'" + path + "' has a corrupt trailer");
  }
  return LandmarkIndex::FromRaw(n, std::move(doors), std::move(fwd),
                                std::move(bwd));
}

}  // namespace indoor
