#include "core/index/index_framework.h"

#include <chrono>
#include <utility>

#include "core/query/query_cache.h"
#include "util/metrics.h"

namespace indoor {
namespace {

/// Builds one framework member via `make`, publishing its wall-clock
/// construction time (milliseconds) to the gauge `gauge_name`. Each call
/// site gets its own template instantiation (the lambda type), so the
/// gauge reference caching inside INDOOR_GAUGE_SET stays per-phase.
template <typename Make>
auto TimedBuild([[maybe_unused]] const char* gauge_name, Make&& make) {
#ifdef INDOOR_METRICS_ENABLED
  const auto t0 = std::chrono::steady_clock::now();
  auto built = std::forward<Make>(make)();
  const double elapsed_ms =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() *
      1e3;
  INDOOR_GAUGE_SET(gauge_name, elapsed_ms);
  return built;
#else
  return std::forward<Make>(make)();
#endif
}

}  // namespace

IndexFramework::IndexFramework(const FloorPlan& plan, IndexOptions options)
    : plan_(&plan),
      options_(options),
      graph_(TimedBuild("build.graph_ms",
                        [&] { return DistanceGraph(plan); })),
      locator_(TimedBuild("build.locator_ms",
                          [&] { return PartitionLocator(plan); })),
      objects_(TimedBuild("build.objects_ms", [&] {
        return ObjectStore(plan, options.grid_cell_size);
      })) {
  BuildStructures(nullptr);
}

IndexFramework::IndexFramework(const FloorPlan& plan, IndexArtifacts artifacts,
                               IndexOptions options)
    : plan_(&plan),
      options_(options),
      graph_(TimedBuild("build.graph_ms",
                        [&] { return DistanceGraph(plan); })),
      locator_(TimedBuild("build.locator_ms",
                          [&] { return PartitionLocator(plan); })),
      objects_(TimedBuild("build.objects_ms", [&] {
        return ObjectStore(plan, options.grid_cell_size);
      })) {
  BuildStructures(&artifacts);
}

void IndexFramework::BuildStructures(IndexArtifacts* artifacts) {
  const size_t doors = plan_->door_count();
  const QueueKind kind = queue_kind();
  if (artifacts != nullptr) mapping_ = std::move(artifacts->mapping);
  if (options_.use_hierarchy) {
    if (artifacts != nullptr && artifacts->hierarchy.has_value()) {
      hierarchy_ = std::move(*artifacts->hierarchy);
      INDOOR_CHECK(hierarchy_.door_count() == doors)
          << "preloaded hierarchy was built for a different plan";
    } else {
      hierarchy_ = TimedBuild("build.hier_ms", [&] {
        return HierarchyIndex::Build(graph_, options_.build_threads,
                                     options_.hierarchy_cell_target, kind);
      });
    }
  } else {
    if (artifacts != nullptr && artifacts->md2d.has_value()) {
      d2d_matrix_ = std::move(*artifacts->md2d);
      INDOOR_CHECK(d2d_matrix_.door_count() == doors)
          << "preloaded Md2d was built for a different plan";
    } else {
      d2d_matrix_ = TimedBuild("build.md2d_ms", [&] {
        return DistanceMatrix(graph_, options_.build_threads, kind);
      });
    }
    if (artifacts != nullptr && artifacts->midx.has_value()) {
      index_matrix_ = std::move(*artifacts->midx);
      INDOOR_CHECK(index_matrix_.door_count() == doors)
          << "preloaded Midx was built for a different plan";
    } else {
      index_matrix_ = TimedBuild("build.midx_ms", [&] {
        return DistanceIndexMatrix(d2d_matrix_, options_.build_threads);
      });
    }
  }
  if (artifacts != nullptr && artifacts->dpt.has_value()) {
    dpt_ = std::move(*artifacts->dpt);
    INDOOR_CHECK(dpt_.size() == doors)
        << "preloaded DPT was built for a different plan";
  } else {
    dpt_ = TimedBuild("build.dpt_ms", [&] {
      return DoorPartitionTable(graph_, options_.build_threads);
    });
  }
  const size_t landmark_count = options_.landmark_count > 0
                                    ? options_.landmark_count
                                    : AutoLandmarkCount(doors);
  if (options_.use_landmarks && landmark_count > 0) {
    if (artifacts != nullptr && artifacts->landmarks.has_value()) {
      landmarks_ = std::move(*artifacts->landmarks);
      INDOOR_CHECK(landmarks_.door_count() == doors || !landmarks_.valid())
          << "preloaded landmarks were built for a different plan";
    } else {
      landmarks_ = TimedBuild("build.landmarks_ms", [&] {
        return LandmarkIndex::Build(graph_, landmark_count, kind);
      });
    }
  }
  if (artifacts != nullptr && artifacts->approx.has_value()) {
    // Objects are populated after construction, so the ANNX payload waits
    // in the approx index until the first RefreshApproxKnn fingerprints it
    // against the live store.
    approx_.StashPayload(std::move(*artifacts->approx));
  }
  // One hotness cell per partition; sized even in metrics-OFF builds
  // (the array is tiny and keeps the accessor contract unconditional),
  // though only metrics-ON query paths ever feed it.
  hotness_.Reset(plan_->partition_count());
  if (options_.enable_query_cache) {
    QueryCacheOptions cache_options;
    cache_options.quantum = options_.cache_quantum;
    cache_options.field_capacity_bytes = options_.cache_capacity_bytes -
                                         options_.cache_capacity_bytes / 4;
    cache_options.host_capacity_bytes = options_.cache_capacity_bytes / 4;
    cache_options.result_capacity_bytes = options_.cache_capacity_bytes / 4;
    cache_options.shards = options_.cache_shards;
    query_cache_ = std::make_unique<QueryCache>(*plan_, locator_, objects_,
                                                cache_options);
  }
}

IndexFramework::~IndexFramework() = default;

void IndexFramework::RefreshApproxKnn() {
  if (!options_.approx_knn) return;
  // The tier re-ranks through the flat matrices and embeds via landmark
  // rows; without either there is nothing to serve and KnnQuery falls back
  // to the exact path anyway.
  if (!has_flat_matrix() || landmarks() == nullptr) return;
  TimedBuild("build.approx_knn_ms", [&] {
    approx_.Refresh(*plan_, objects_, landmarks_);
    return 0;
  });
}

void IndexFramework::InvalidateQueryCache() const {
  if (query_cache_ != nullptr) query_cache_->Invalidate();
}

}  // namespace indoor
