#include "core/index/index_framework.h"

#include <chrono>
#include <utility>

#include "core/query/query_cache.h"
#include "util/metrics.h"

namespace indoor {
namespace {

/// Builds one framework member via `make`, publishing its wall-clock
/// construction time (milliseconds) to the gauge `gauge_name`. Each call
/// site gets its own template instantiation (the lambda type), so the
/// gauge reference caching inside INDOOR_GAUGE_SET stays per-phase.
template <typename Make>
auto TimedBuild([[maybe_unused]] const char* gauge_name, Make&& make) {
#ifdef INDOOR_METRICS_ENABLED
  const auto t0 = std::chrono::steady_clock::now();
  auto built = std::forward<Make>(make)();
  const double elapsed_ms =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() *
      1e3;
  INDOOR_GAUGE_SET(gauge_name, elapsed_ms);
  return built;
#else
  return std::forward<Make>(make)();
#endif
}

}  // namespace

IndexFramework::IndexFramework(const FloorPlan& plan, IndexOptions options)
    : plan_(&plan),
      options_(options),
      graph_(TimedBuild("build.graph_ms",
                        [&] { return DistanceGraph(plan); })),
      locator_(TimedBuild("build.locator_ms",
                          [&] { return PartitionLocator(plan); })),
      d2d_matrix_(TimedBuild(
          "build.md2d_ms",
          [&] {
            return DistanceMatrix(graph_, options.build_threads,
                                  options.use_bucket_queue
                                      ? QueueKind::kBucket
                                      : QueueKind::kHeap);
          })),
      index_matrix_(TimedBuild(
          "build.midx_ms",
          [&] {
            return DistanceIndexMatrix(d2d_matrix_, options.build_threads);
          })),
      dpt_(TimedBuild(
          "build.dpt_ms",
          [&] { return DoorPartitionTable(graph_, options.build_threads); })),
      objects_(TimedBuild("build.objects_ms", [&] {
        return ObjectStore(plan, options.grid_cell_size);
      })) {
  if (options_.use_landmarks && options_.landmark_count > 0) {
    landmarks_ = TimedBuild("build.landmarks_ms", [&] {
      return LandmarkIndex::Build(graph_, options_.landmark_count,
                                  options_.use_bucket_queue
                                      ? QueueKind::kBucket
                                      : QueueKind::kHeap);
    });
  }
  if (options_.enable_query_cache) {
    QueryCacheOptions cache_options;
    cache_options.quantum = options_.cache_quantum;
    cache_options.field_capacity_bytes = options_.cache_capacity_bytes -
                                         options_.cache_capacity_bytes / 4;
    cache_options.host_capacity_bytes = options_.cache_capacity_bytes / 4;
    cache_options.result_capacity_bytes = options_.cache_capacity_bytes / 4;
    cache_options.shards = options_.cache_shards;
    query_cache_ =
        std::make_unique<QueryCache>(plan, locator_, objects_, cache_options);
  }
}

IndexFramework::~IndexFramework() = default;

void IndexFramework::InvalidateQueryCache() const {
  if (query_cache_ != nullptr) query_cache_->Invalidate();
}

}  // namespace indoor
