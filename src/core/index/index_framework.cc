#include "core/index/index_framework.h"

namespace indoor {

IndexFramework::IndexFramework(const FloorPlan& plan, IndexOptions options)
    : plan_(&plan),
      options_(options),
      graph_(plan),
      locator_(plan),
      d2d_matrix_(graph_, options.build_threads),
      index_matrix_(d2d_matrix_, options.build_threads),
      dpt_(graph_, options.build_threads),
      objects_(plan, options.grid_cell_size) {}

}  // namespace indoor
