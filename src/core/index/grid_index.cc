#include "core/index/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/simd.h"

namespace indoor {

// ---------------------------------------------------------------- KnnCollector

KnnCollector::KnnCollector(size_t k) { Reset(k); }

void KnnCollector::Reset(size_t k) {
  INDOOR_CHECK(k > 0) << "kNN requires k >= 1";
  k_ = k;
  entries_.clear();
}

bool KnnCollector::Offer(ObjectId id, double distance) {
  const auto pos = std::find_if(
      entries_.begin(), entries_.end(),
      [id](const std::pair<double, ObjectId>& e) { return e.second == id; });
  const std::pair<double, ObjectId> entry{distance, id};
  if (pos != entries_.end()) {
    if (distance >= pos->first) return false;
    entries_.erase(pos);
  } else if (entries_.size() == k_) {
    if (distance >= entries_.back().first) return false;
    entries_.pop_back();
  }
  entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), entry),
                  entry);
  return true;
}

std::vector<Neighbor> KnnCollector::Sorted() const {
  std::vector<Neighbor> out;
  out.reserve(entries_.size());
  for (const auto& [dist, id] : entries_) out.push_back({id, dist});
  return out;
}

// ------------------------------------------------------------------ GridBucket

GridBucket::GridBucket(const Partition& partition, double cell_size) {
  INDOOR_CHECK(cell_size > 0.0);
  const Rect bbox = partition.footprint().outer().BoundingBox();
  origin_ = bbox.lo;
  cell_size_ = cell_size;
  nx_ = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(bbox.Width() / cell_size)));
  ny_ = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(bbox.Height() / cell_size)));
  cells_.assign(nx_ * ny_, {});
}

size_t GridBucket::CellIndex(const Point& p) const {
  const auto clamp_cell = [](double v, size_t n) {
    if (v < 0) return size_t{0};
    const size_t c = static_cast<size_t>(v);
    return std::min(c, n - 1);
  };
  const size_t cx = clamp_cell((p.x - origin_.x) / cell_size_, nx_);
  const size_t cy = clamp_cell((p.y - origin_.y) / cell_size_, ny_);
  return cy * nx_ + cx;
}

Rect GridBucket::CellRect(size_t idx) const {
  const size_t cy = idx / nx_;
  const size_t cx = idx % nx_;
  const Point lo(origin_.x + cx * cell_size_, origin_.y + cy * cell_size_);
  return Rect(lo, Point(lo.x + cell_size_, lo.y + cell_size_));
}

void GridBucket::Insert(ObjectId id, const Point& position) {
  INDOOR_CHECK(!cells_.empty()) << "GridBucket not initialized";
  cells_[CellIndex(position)].push_back({id, position});
  ++count_;
}

bool GridBucket::Remove(ObjectId id, const Point& position) {
  if (cells_.empty()) return false;
  auto& cell = cells_[CellIndex(position)];
  for (auto it = cell.begin(); it != cell.end(); ++it) {
    if (it->first == id) {
      *it = cell.back();
      cell.pop_back();
      --count_;
      return true;
    }
  }
  return false;
}

void GridBucket::CollectAll(std::vector<ObjectId>* out) const {
  for (const auto& cell : cells_) {
    for (const auto& [id, pos] : cell) out->push_back(id);
  }
}

namespace {

/// Batched intra-partition distances from `q` to every object of `cell`,
/// written to geo->values. One geodesic solve per cell; the source-solve
/// cache in `geo` collapses repeated cells of the same search into a
/// single solve. Values are EXACTLY those of per-object IntraDistance.
void CellDistances(const Partition& partition, const Point& q,
                   const std::vector<std::pair<ObjectId, Point>>& cell,
                   GeodesicScratch* geo) {
  auto& pts = geo->points;
  pts.clear();
  for (const auto& [id, pos] : cell) pts.push_back(pos);
  geo->values.resize(pts.size());
  partition.IntraDistancesToMany(q, pts, geo, geo->values.data());
}

}  // namespace

void GridBucket::RangeSearch(const Partition& partition, const Point& q,
                             double r, std::vector<Neighbor>* out,
                             BucketScratch* scratch) const {
  if (count_ == 0 || r < 0) return;
  INDOOR_METRICS_ONLY(if (scratch != nullptr) ++scratch->searches;)
  const double scale = partition.metric_scale();
  // Whole-cell admission is only sound where intra-distance == scaled
  // Euclidean distance everywhere in the cell.
  const bool euclidean = !partition.footprint().HasObstacles() &&
                         partition.footprint().outer().IsConvex();
  for (size_t i = 0; i < cells_.size(); ++i) {
    const auto& cell = cells_[i];
    if (cell.empty()) continue;
    INDOOR_METRICS_ONLY(if (scratch != nullptr) ++scratch->cells_visited;)
    const Rect rect = CellRect(i);
    if (rect.MinDistance(q) * scale > r) {  // prune: lower bound
      INDOOR_METRICS_ONLY(if (scratch != nullptr) ++scratch->cells_pruned;)
      continue;
    }
    if (euclidean && rect.MaxDistance(q) * scale <= r) {
      INDOOR_METRICS_ONLY(if (scratch != nullptr) ++scratch->cells_admitted;)
      for (const auto& [id, pos] : cell) {
        out->push_back({id, Distance(q, pos) * scale});
      }
      continue;
    }
    if (scratch != nullptr) {
      INDOOR_METRICS_ONLY(scratch->objects_tested += cell.size();)
      CellDistances(partition, q, cell, &scratch->geo);
      // Batched d <= r compare over the whole cell; the mask holds the
      // same verdicts as the scalar compare, evaluated lane-parallel.
      scratch->filter_mask.resize(cell.size());
      simd::MaskLessEqual(scratch->geo.values.data(), cell.size(), r,
                          scratch->filter_mask.data());
      for (size_t j = 0; j < cell.size(); ++j) {
        if (scratch->filter_mask[j]) {
          out->push_back({cell[j].first, scratch->geo.values[j]});
        }
      }
      continue;
    }
    for (const auto& [id, pos] : cell) {
      const double d = partition.IntraDistance(q, pos);
      if (d <= r) out->push_back({id, d});
    }
  }
}

bool GridBucket::WouldAdmit(const Partition& partition, const Point& q,
                            double r, const Point& position,
                            GeodesicScratch* geo) const {
  if (r < 0) return false;
  const double scale = partition.metric_scale();
  const bool euclidean = !partition.footprint().HasObstacles() &&
                         partition.footprint().outer().IsConvex();
  const Rect rect = CellRect(CellIndex(position));
  if (rect.MinDistance(q) * scale > r) return false;
  if (euclidean && rect.MaxDistance(q) * scale <= r) return true;
  return partition.IntraDistance(q, position, geo) <= r;
}

void GridBucket::NnSearch(const Partition& partition, const Point& q,
                          double extra, KnnCollector* collector,
                          BucketScratch* scratch) const {
  if (count_ == 0) return;
  INDOOR_METRICS_ONLY(if (scratch != nullptr) ++scratch->searches;)
  const double scale = partition.metric_scale();
  // Visit cells in ascending lower-bound order so the bound tightens early.
  std::vector<std::pair<double, size_t>> local_order;
  std::vector<std::pair<double, size_t>>& order =
      scratch != nullptr ? scratch->cell_order : local_order;
  order.clear();
  order.reserve(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].empty()) continue;
    order.push_back({CellRect(i).MinDistance(q) * scale + extra, i});
  }
  std::sort(order.begin(), order.end());
  for (const auto& [lower, idx] : order) {
    if (lower >= collector->Bound()) break;
    INDOOR_METRICS_ONLY(if (scratch != nullptr) ++scratch->cells_visited;)
    if (scratch != nullptr) {
      INDOOR_METRICS_ONLY(scratch->objects_tested += cells_[idx].size();)
      CellDistances(partition, q, cells_[idx], &scratch->geo);
      for (size_t j = 0; j < cells_[idx].size(); ++j) {
        const double d = scratch->geo.values[j];
        if (d == kInfDistance) continue;
        collector->Offer(cells_[idx][j].first, d + extra);
      }
      continue;
    }
    for (const auto& [id, pos] : cells_[idx]) {
      const double d = partition.IntraDistance(q, pos);
      if (d == kInfDistance) continue;
      collector->Offer(id, d + extra);
    }
  }
}

}  // namespace indoor
