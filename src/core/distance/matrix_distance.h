// Matrix-backed position-to-position distance: the paper's observation
// (§VI-A) that "the pt2ptdistance algorithm runs faster if the door-to-door
// distances are pre-computed and stored for reference", realized against
// the Md2d of the indexing framework. No Dijkstra per query — one Md2d
// lookup per (leaveable source door, enterable destination door) pair plus
// the two intra-partition legs.

#ifndef INDOOR_CORE_DISTANCE_MATRIX_DISTANCE_H_
#define INDOOR_CORE_DISTANCE_MATRIX_DISTANCE_H_

#include "core/index/distance_matrix.h"
#include "core/model/locator.h"

namespace indoor {

struct QueryScratch;
class QueryCache;

/// Exact minimum walking distance using precomputed door-to-door entries.
/// `matrix` must have been built for `locator.plan()`. A null `scratch`
/// falls back to the calling thread's TlsQueryScratch(). A non-null
/// `cache` (core/query/query_cache.h) serves the host-partition probes
/// and the entry/exit legs from the cross-query cache; results are
/// bit-identical either way.
double Pt2PtDistanceMatrix(const PartitionLocator& locator,
                           const DistanceMatrix& matrix, const Point& ps,
                           const Point& pt, QueryScratch* scratch = nullptr,
                           const QueryCache* cache = nullptr);

/// Variant with both host partitions already known (e.g. stored objects).
double Pt2PtDistanceMatrix(const FloorPlan& plan,
                           const DistanceMatrix& matrix, PartitionId vs,
                           const Point& ps, PartitionId vt, const Point& pt,
                           QueryScratch* scratch = nullptr,
                           const QueryCache* cache = nullptr);

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_MATRIX_DISTANCE_H_
