#include "core/distance/shortest_path.h"

#include <algorithm>

#include "core/distance/d2d_distance.h"
#include "core/distance/query_scratch.h"

namespace indoor {
namespace {

/// Appends the intra-partition leg from `from` to `to` within `v` to
/// `waypoints` (excluding `from`, including `to`).
void AppendLeg(const FloorPlan& plan, PartitionId v, const Point& from,
               const Point& to, bool expand, std::vector<Point>* waypoints) {
  if (expand) {
    const auto leg = plan.partition(v).footprint().ShortestPath(from, to);
    for (size_t i = 1; i < leg.size(); ++i) waypoints->push_back(leg[i]);
  } else {
    waypoints->push_back(to);
  }
}

}  // namespace

IndoorPath D2dShortestPath(const DistanceGraph& graph, DoorId ds,
                           DoorId dt) {
  IndoorPath path;
  std::vector<PrevEntry> prev;
  path.length = D2dDistance(graph, ds, dt, &prev);
  if (!path.found()) return path;

  // Walk prev from dt back to ds.
  std::vector<DoorId> doors{dt};
  std::vector<PartitionId> parts;
  DoorId cur = dt;
  while (cur != ds) {
    const PrevEntry& entry = prev[cur];
    INDOOR_CHECK(entry.door != kInvalidId) << "broken prev chain";
    parts.push_back(entry.partition);
    doors.push_back(entry.door);
    cur = entry.door;
  }
  std::reverse(doors.begin(), doors.end());
  std::reverse(parts.begin(), parts.end());
  path.doors = std::move(doors);
  path.partitions = std::move(parts);
  for (DoorId d : path.doors) {
    path.waypoints.push_back(graph.plan().door(d).Midpoint());
  }
  return path;
}

IndoorPath Pt2PtShortestPath(const DistanceContext& ctx, const Point& ps,
                             const Point& pt, bool expand_waypoints) {
  const FloorPlan& plan = ctx.graph->plan();
  IndoorPath path;
  const auto endpoints = internal::ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return path;

  QueryScratch& scratch = TlsQueryScratch();
  const double direct =
      internal::DirectCandidate(ctx, endpoints, ps, pt, &scratch.geo);

  // Multi-source Dijkstra over doors, seeded at the source partition's
  // leaveable doors (see Pt2PtDistanceVirtual). Entry and exit legs are
  // each one batched geodesic solve.
  const size_t n = plan.door_count();
  std::vector<double> dist(n, kInfDistance);
  std::vector<char> visited(n, 0);
  std::vector<PrevEntry> prev(n);
  MinHeap<std::pair<double, DoorId>> heap;
  const auto& src_doors = plan.LeaveDoors(endpoints.vs);
  auto& src_leg = scratch.src_leg;
  src_leg.resize(src_doors.size());
  ctx.locator->DistVMany(endpoints.vs, ps, src_doors, &scratch.geo,
                         src_leg.data());
  for (size_t i = 0; i < src_doors.size(); ++i) {
    const double d0 = src_leg[i];
    if (d0 != kInfDistance && d0 < dist[src_doors[i]]) {
      dist[src_doors[i]] = d0;
      heap.push({d0, src_doors[i]});
    }
  }
  while (!heap.empty()) {
    const auto [d, di] = heap.top();
    heap.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    for (const DoorGraphEdge& e : ctx.graph->DoorEdges(di)) {
      if (visited[e.to]) continue;
      if (d + e.weight < dist[e.to]) {
        dist[e.to] = d + e.weight;
        prev[e.to] = {e.via, di};
        heap.push({dist[e.to], e.to});
      }
    }
  }

  // Best destination door.
  const auto& dst_doors = plan.EnterDoors(endpoints.vt);
  auto& dst_leg = scratch.dst_leg;
  dst_leg.resize(dst_doors.size());
  ctx.locator->DistVMany(endpoints.vt, pt, dst_doors, &scratch.geo,
                         dst_leg.data());
  DoorId best_door = kInvalidId;
  double best = kInfDistance;
  for (size_t j = 0; j < dst_doors.size(); ++j) {
    const DoorId dt = dst_doors[j];
    const double leg = dst_leg[j];
    if (leg == kInfDistance || dist[dt] == kInfDistance) continue;
    if (dist[dt] + leg < best) {
      best = dist[dt] + leg;
      best_door = dt;
    }
  }

  if (direct <= best) {
    if (direct == kInfDistance) return path;
    path.length = direct;
    path.partitions = {endpoints.vs};
    path.waypoints.push_back(ps);
    AppendLeg(plan, endpoints.vs, ps, pt, expand_waypoints,
              &path.waypoints);
    return path;
  }

  path.length = best;
  // Reconstruct the door chain back to a seeded source door.
  std::vector<DoorId> doors{best_door};
  std::vector<PartitionId> mid_parts;
  DoorId cur = best_door;
  while (prev[cur].door != kInvalidId) {
    mid_parts.push_back(prev[cur].partition);
    cur = prev[cur].door;
    doors.push_back(cur);
  }
  std::reverse(doors.begin(), doors.end());
  std::reverse(mid_parts.begin(), mid_parts.end());
  path.doors = std::move(doors);
  path.partitions.push_back(endpoints.vs);
  for (PartitionId v : mid_parts) path.partitions.push_back(v);
  path.partitions.push_back(endpoints.vt);

  // Geometric polyline: ps -> door midpoints -> pt, legs expanded on demand.
  path.waypoints.push_back(ps);
  Point cursor = ps;
  for (size_t i = 0; i < path.doors.size(); ++i) {
    const Point mid = plan.door(path.doors[i]).Midpoint();
    AppendLeg(plan, path.partitions[i], cursor, mid, expand_waypoints,
              &path.waypoints);
    cursor = mid;
  }
  AppendLeg(plan, endpoints.vt, cursor, pt, expand_waypoints,
            &path.waypoints);
  return path;
}

}  // namespace indoor
