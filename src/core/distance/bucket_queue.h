// Bounded-weight bucket (dial) frontier for the door-graph Dijkstras.
//
// Door-graph edge weights are non-negative intra-partition walking
// distances with a known per-plan maximum W (DistanceGraph::
// max_door_edge_weight), so the keys live in Dijkstra's classic monotone
// window: after the minimum key k is extracted, every subsequent push is
// in [k, k + W]. BucketQueue exploits this with a two-level structure —
// a window of kBucketCount uniform buckets of width ~W/kSpanBuckets
// anchored at a moving base, plus an overflow list for keys beyond the
// window (multi-source seeds, long edges near the window edge). Pops scan
// from the lowest possibly-non-empty bucket; when the window drains, the
// overflow is re-based and redistributed.
//
// EXACTNESS INVARIANT (the whole point): top()/pop() return exactly the
// lexicographic minimum (distance, door) entry currently queued — the same
// entry MinHeap<pair<double, DoorId>> would return — because
//   1. bucket assignment is monotone in the key, so the global minimum
//      always lives in the first non-empty bucket at or after cur_
//      (overflow keys are >= every window key by construction, and seeds
//      queue in the overflow until the first pop anchors the window);
//   2. within that bucket the minimum is found by an exact lexicographic
//      scan, which also breaks equal-distance ties by the smaller door id,
//      precisely the heap's pair<> ordering. Duplicate (distance, id)
//      entries cannot exist: the solvers push only on strict improvement.
// Quantization therefore orders EXTRACTION only; dist[] keeps exact
// doubles and every settle order, distance, and prev[] tree is bitwise
// identical to the binary-heap run. Bucket width affects performance,
// never results.

#ifndef INDOOR_CORE_DISTANCE_BUCKET_QUEUE_H_
#define INDOOR_CORE_DISTANCE_BUCKET_QUEUE_H_

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "indoor/types.h"
#include "util/check.h"

namespace indoor {

/// Which frontier a door-level Dijkstra uses. Results are bitwise
/// identical either way (see BucketQueue); the knob exists so benchmarks
/// and the equivalence tests can compare the two implementations, and so
/// IndexOptions::use_bucket_queue can fall back to the historical heap.
enum class QueueKind : uint8_t {
  kHeap,    ///< Binary heap (util/min_heap.h), the historical frontier.
  kBucket,  ///< Bounded-weight bucket queue (this header).
};

/// Monotone bucket frontier with the MinHeap interface (empty/push/top/
/// pop), so the Dijkstra loops template over either. Prepare() must be
/// called before each run with the graph's maximum edge weight.
class BucketQueue {
 public:
  /// Queue entry: (tentative distance, door), ordered lexicographically.
  using Entry = std::pair<double, DoorId>;

  /// Re-arms the queue for one Dijkstra run over a graph whose edge
  /// weights are at most `max_edge_weight`. Keeps bucket capacity across
  /// runs (allocation-free in steady state).
  void Prepare(double max_edge_weight) {
    if (buckets_.size() != kBucketCount) buckets_.resize(kBucketCount);
    for (const uint32_t b : touched_) buckets_[b].clear();
    touched_.clear();
    overflow_.clear();
    width_ = max_edge_weight > 0.0 ? max_edge_weight / kSpanBuckets : 1.0;
    base_ = 0.0;
    cur_ = 0;
    size_ = 0;
    anchored_ = false;
    located_ = false;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Inserts an entry. Until the first top()/pop() anchors the window,
  /// entries (the run's seeds, in any key order) collect in the overflow.
  void push(Entry e) {
    ++size_;
    located_ = false;
    if (!anchored_) {
      overflow_.push_back(e);
      return;
    }
    const double off = (e.first - base_) / width_;
    if (!(off < static_cast<double>(kBucketCount))) {
      overflow_.push_back(e);
      return;
    }
    size_t idx = off <= 0.0 ? 0 : static_cast<size_t>(off);
    // Monotonicity guard: keys pushed after a pop are >= the popped
    // minimum, which lives in bucket cur_; a floating-point hair below
    // cur_'s lower edge is parked in cur_ itself, where the exact
    // in-bucket scan still finds it first.
    if (idx < cur_) idx = cur_;
    if (buckets_[idx].empty()) touched_.push_back(static_cast<uint32_t>(idx));
    buckets_[idx].push_back(e);
  }

  /// The lexicographic minimum entry. Queue must be non-empty.
  const Entry& top() {
    Locate();
    return buckets_[top_bucket_][top_slot_];
  }

  /// Removes the minimum entry.
  void pop() {
    Locate();
    std::vector<Entry>& bucket = buckets_[top_bucket_];
    bucket[top_slot_] = bucket.back();
    bucket.pop_back();
    --size_;
    located_ = false;
  }

  /// Allocated bytes across all buckets (scratch-arena decay accounting).
  size_t CapacityBytes() const {
    size_t bytes = buckets_.capacity() * sizeof(buckets_[0]) +
                   overflow_.capacity() * sizeof(Entry) +
                   touched_.capacity() * sizeof(uint32_t);
    for (const std::vector<Entry>& b : buckets_) {
      bytes += b.capacity() * sizeof(Entry);
    }
    return bytes;
  }

  /// Releases capacity beyond current sizes (scratch-arena decay).
  void ShrinkToFit() {
    for (std::vector<Entry>& b : buckets_) b.shrink_to_fit();
    overflow_.shrink_to_fit();
    touched_.shrink_to_fit();
  }

 private:
  // Window geometry: the window spans kBucketCount buckets but the width
  // is sized so ~kSpanBuckets of them cover one maximum edge weight; the
  // slack absorbs pushes near the window edge without overflowing.
  static constexpr size_t kBucketCount = 128;
  static constexpr double kSpanBuckets = 96.0;

  /// Finds the minimum entry: first non-empty bucket at or after cur_
  /// (re-basing the overflow when the window is empty), then an exact
  /// lexicographic scan of that bucket.
  void Locate() {
    if (located_) return;
    INDOOR_CHECK(size_ > 0) << "top/pop on an empty BucketQueue";
    for (;;) {
      size_t b = cur_;
      while (b < kBucketCount && buckets_[b].empty()) ++b;
      if (b < kBucketCount) {
        cur_ = b;
        break;
      }
      Rebase();
    }
    const std::vector<Entry>& bucket = buckets_[cur_];
    size_t best = 0;
    for (size_t i = 1; i < bucket.size(); ++i) {
      if (bucket[i] < bucket[best]) best = i;
    }
    top_bucket_ = cur_;
    top_slot_ = best;
    located_ = true;
  }

  /// Re-anchors the window at the minimum overflow key and redistributes
  /// every overflow entry that now fits. Called with the window empty and
  /// the overflow non-empty; afterwards the minimum entry is in bucket 0
  /// or 1, so Locate terminates.
  void Rebase() {
    INDOOR_CHECK(!overflow_.empty());
    double min_key = overflow_[0].first;
    for (const Entry& e : overflow_) {
      if (e.first < min_key) min_key = e.first;
    }
    base_ = std::floor(min_key / width_) * width_;
    if (base_ > min_key) base_ -= width_;  // floating-point guard
    cur_ = 0;
    anchored_ = true;
    size_t keep = 0;
    for (const Entry& e : overflow_) {
      const double off = (e.first - base_) / width_;
      if (off < static_cast<double>(kBucketCount)) {
        size_t idx = off <= 0.0 ? 0 : static_cast<size_t>(off);
        if (idx >= kBucketCount) idx = kBucketCount - 1;
        if (buckets_[idx].empty()) {
          touched_.push_back(static_cast<uint32_t>(idx));
        }
        buckets_[idx].push_back(e);
      } else {
        overflow_[keep++] = e;
      }
    }
    overflow_.resize(keep);
  }

  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;
  // Buckets made non-empty since the last Prepare (cheap O(touched) clear).
  std::vector<uint32_t> touched_;
  double width_ = 1.0;
  double base_ = 0.0;
  size_t cur_ = 0;
  size_t size_ = 0;
  bool anchored_ = false;
  bool located_ = false;
  size_t top_bucket_ = 0;
  size_t top_slot_ = 0;
};

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_BUCKET_QUEUE_H_
