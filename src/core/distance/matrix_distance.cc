#include "core/distance/matrix_distance.h"

#include <algorithm>

namespace indoor {

double Pt2PtDistanceMatrix(const FloorPlan& plan,
                           const DistanceMatrix& matrix, PartitionId vs,
                           const Point& ps, PartitionId vt,
                           const Point& pt) {
  INDOOR_CHECK(matrix.door_count() == plan.door_count())
      << "matrix was built for a different plan";
  const Partition& source_part = plan.partition(vs);
  const Partition& target_part = plan.partition(vt);
  double best = kInfDistance;
  if (vs == vt) {
    best = source_part.IntraDistance(ps, pt);
  }
  // Cache the destination legs once.
  const auto& dest_doors = plan.EnterDoors(vt);
  std::vector<double> dest_leg(dest_doors.size());
  for (size_t j = 0; j < dest_doors.size(); ++j) {
    dest_leg[j] =
        target_part.IntraDistance(plan.door(dest_doors[j]).Midpoint(), pt);
  }
  for (DoorId ds : plan.LeaveDoors(vs)) {
    const double leg1 =
        source_part.IntraDistance(ps, plan.door(ds).Midpoint());
    if (leg1 == kInfDistance || leg1 >= best) continue;
    const double* row = matrix.Row(ds);
    for (size_t j = 0; j < dest_doors.size(); ++j) {
      if (dest_leg[j] == kInfDistance) continue;
      const double total = leg1 + row[dest_doors[j]] + dest_leg[j];
      best = std::min(best, total);
    }
  }
  return best;
}

double Pt2PtDistanceMatrix(const PartitionLocator& locator,
                           const DistanceMatrix& matrix, const Point& ps,
                           const Point& pt) {
  const auto vs = locator.GetHostPartition(ps);
  const auto vt = locator.GetHostPartition(pt);
  if (!vs.ok() || !vt.ok()) return kInfDistance;
  return Pt2PtDistanceMatrix(locator.plan(), matrix, vs.value(), ps,
                             vt.value(), pt);
}

}  // namespace indoor
