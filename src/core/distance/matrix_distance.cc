#include "core/distance/matrix_distance.h"

#include <algorithm>

#include "core/distance/query_scratch.h"
#include "core/query/query_cache.h"
#include "util/metrics.h"
#include "util/query_log.h"

namespace indoor {

double Pt2PtDistanceMatrix(const FloorPlan& plan,
                           const DistanceMatrix& matrix, PartitionId vs,
                           const Point& ps, PartitionId vt, const Point& pt,
                           QueryScratch* scratch, const QueryCache* cache) {
  INDOOR_LATENCY_SPAN("pt2pt_matrix", "query.pt2pt_matrix.latency_ns");
  qlog::QueryLogScope qscope(qlog::RecordKind::kDistance, ps.x, ps.y, pt.x,
                             pt.y, 0.0, 0, scratch != nullptr);
  qscope.SetHost(vs);
  INDOOR_CHECK(matrix.door_count() == plan.door_count())
      << "matrix was built for a different plan";
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);
  const Partition& source_part = plan.partition(vs);
  const Partition& target_part = plan.partition(vt);
  double best = kInfDistance;
  if (vs == vt) {
    best = source_part.IntraDistance(ps, pt, &scratch->geo);
  }
  // Destination legs keep the historical door->pt orientation (one solve
  // each, reusing the scratch buffers); the source legs below share a single
  // batched solve rooted at ps. With a cache, both fields read through the
  // cross-query source-field cache (FieldKind::kEnterFrom preserves the
  // door->pt orientation so values stay bit-identical).
  const auto& dest_doors = plan.EnterDoors(vt);
  auto& dest_leg = scratch->dst_leg;
  dest_leg.resize(dest_doors.size());
  if (cache != nullptr) {
    cache->FieldLegs(FieldKind::kEnterFrom, vt, pt, dest_doors,
                     &scratch->geo, dest_leg.data());
  } else {
    for (size_t j = 0; j < dest_doors.size(); ++j) {
      dest_leg[j] = target_part.IntraDistance(
          plan.door(dest_doors[j]).Midpoint(), pt, &scratch->geo);
    }
  }
  const auto& src_doors = plan.LeaveDoors(vs);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(src_doors.size());
  if (cache != nullptr) {
    // Every leave door touches vs, so the canonical DistVMany field equals
    // the historical unfiltered IntraDistancesToMany values bit-for-bit.
    cache->FieldLegs(FieldKind::kLeaveFrom, vs, ps, src_doors, &scratch->geo,
                     src_leg.data());
  } else {
    auto& mids = scratch->geo.points;
    mids.clear();
    for (DoorId ds : src_doors) mids.push_back(plan.door(ds).Midpoint());
    source_part.IntraDistancesToMany(ps, mids, &scratch->geo,
                                     src_leg.data());
  }
  INDOOR_METRICS_ONLY(uint64_t rows_fetched = 0;)
  for (size_t i = 0; i < src_doors.size(); ++i) {
    const double leg1 = src_leg[i];
    if (leg1 == kInfDistance || leg1 >= best) continue;
    const double* row = matrix.Row(src_doors[i]);
    INDOOR_METRICS_ONLY(++rows_fetched;)
    for (size_t j = 0; j < dest_doors.size(); ++j) {
      if (dest_leg[j] == kInfDistance) continue;
      const double total = leg1 + row[dest_doors[j]] + dest_leg[j];
      best = std::min(best, total);
    }
  }
  INDOOR_METRICS_ONLY(INDOOR_COUNTER_ADD("index.md2d.row_fetches", rows_fetched);)
  qscope.SetResult(best < kInfDistance ? 1u : 0u, best);
  return best;
}

double Pt2PtDistanceMatrix(const PartitionLocator& locator,
                           const DistanceMatrix& matrix, const Point& ps,
                           const Point& pt, QueryScratch* scratch,
                           const QueryCache* cache) {
  const auto vs = CachedHostPartition(cache, locator, ps);
  const auto vt = CachedHostPartition(cache, locator, pt);
  if (!vs.ok() || !vt.ok()) return kInfDistance;
  return Pt2PtDistanceMatrix(locator.plan(), matrix, vs.value(), ps,
                             vt.value(), pt, scratch, cache);
}

}  // namespace indoor
