#include "core/distance/distance_field.h"

#include <queue>

namespace indoor {

DistanceField::DistanceField(const DistanceContext& ctx, const Point& source)
    : ctx_(ctx), source_(source) {
  const FloorPlan& plan = ctx.graph->plan();
  door_dist_.assign(plan.door_count(), kInfDistance);
  const auto host = ctx.locator->GetHostPartition(source);
  if (!host.ok()) return;
  host_ = host.value();

  std::vector<char> visited(plan.door_count(), 0);
  using Entry = std::pair<double, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (DoorId ds : plan.LeaveDoors(host_)) {
    const double leg = ctx.locator->DistV(host_, source, ds);
    if (leg != kInfDistance && leg < door_dist_[ds]) {
      door_dist_[ds] = leg;
      heap.push({leg, ds});
    }
  }
  while (!heap.empty()) {
    const auto [d, di] = heap.top();
    heap.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    for (PartitionId v : plan.EnterableParts(di)) {
      for (DoorId dj : plan.LeaveDoors(v)) {
        if (visited[dj]) continue;
        const double w = ctx.graph->Fd2d(v, di, dj);
        if (w == kInfDistance) continue;
        if (d + w < door_dist_[dj]) {
          door_dist_[dj] = d + w;
          heap.push({door_dist_[dj], dj});
        }
      }
    }
  }
}

double DistanceField::DistanceTo(PartitionId v, const Point& p) const {
  if (!valid()) return kInfDistance;
  const FloorPlan& plan = ctx_.graph->plan();
  const Partition& part = plan.partition(v);
  double best = kInfDistance;
  if (v == host_) {
    best = part.IntraDistance(source_, p);
  }
  for (DoorId dt : plan.EnterDoors(v)) {
    if (door_dist_[dt] == kInfDistance || door_dist_[dt] >= best) continue;
    const double leg = part.IntraDistance(plan.door(dt).Midpoint(), p);
    if (leg == kInfDistance) continue;
    best = std::min(best, door_dist_[dt] + leg);
  }
  return best;
}

double DistanceField::DistanceTo(const Point& p) const {
  if (!valid()) return kInfDistance;
  const auto host = ctx_.locator->GetHostPartition(p);
  if (!host.ok()) return kInfDistance;
  return DistanceTo(host.value(), p);
}

}  // namespace indoor
