#include "core/distance/distance_field.h"

#include "core/distance/d2d_distance.h"
#include "core/distance/dijkstra_stats.h"
#include "core/distance/query_scratch.h"
#include "util/metrics.h"

namespace indoor {

DistanceField::DistanceField(const DistanceContext& ctx, const Point& source)
    : ctx_(ctx), source_(source) {
  const FloorPlan& plan = ctx.graph->plan();
  door_dist_.assign(plan.door_count(), kInfDistance);
  const auto host = ctx.locator->GetHostPartition(source);
  if (!host.ok()) return;
  host_ = host.value();

  QueryScratch& scratch = TlsQueryScratch();
  std::vector<char> visited(plan.door_count(), 0);
  const auto& src_doors = plan.LeaveDoors(host_);
  auto& src_leg = scratch.src_leg;
  src_leg.resize(src_doors.size());
  ctx.locator->DistVMany(host_, source, src_doors, &scratch.geo,
                         src_leg.data());
  INDOOR_COUNTER_INC("distance.field.builds");
  // The field is built with whichever frontier the context selects; both
  // pop the identical (distance, id) sequence (bucket_queue.h), so the
  // resulting door_dist_ array is bit-identical either way.
  const auto build = [&](auto& frontier, QueueKind kind) {
    for (size_t i = 0; i < src_doors.size(); ++i) {
      const double leg = src_leg[i];
      if (leg != kInfDistance && leg < door_dist_[src_doors[i]]) {
        door_dist_[src_doors[i]] = leg;
        frontier.push({leg, src_doors[i]});
      }
    }
    INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats; stats.queue = kind;)
    (void)kind;
    while (!frontier.empty()) {
      const auto [d, di] = frontier.top();
      frontier.pop();
      if (visited[di]) continue;
      visited[di] = 1;
      INDOOR_METRICS_ONLY(++stats.settles;)
      for (const DoorGraphEdge& e : ctx.graph->DoorEdges(di)) {
        if (visited[e.to]) continue;
        if (d + e.weight < door_dist_[e.to]) {
          door_dist_[e.to] = d + e.weight;
          frontier.push({door_dist_[e.to], e.to});
          INDOOR_METRICS_ONLY(++stats.relaxations;)
        }
      }
    }
  };
  if (ctx.queue == QueueKind::kBucket) {
    BucketQueue frontier;
    ResetFrontier(&frontier, *ctx.graph);
    build(frontier, QueueKind::kBucket);
  } else {
    MinHeap<std::pair<double, DoorId>> frontier;
    build(frontier, QueueKind::kHeap);
  }
}

double DistanceField::DistanceTo(PartitionId v, const Point& p) const {
  if (!valid()) return kInfDistance;
  const FloorPlan& plan = ctx_.graph->plan();
  const Partition& part = plan.partition(v);
  double best = kInfDistance;
  if (v == host_) {
    best = part.IntraDistance(source_, p);
  }
  for (DoorId dt : plan.EnterDoors(v)) {
    if (door_dist_[dt] == kInfDistance || door_dist_[dt] >= best) continue;
    const double leg = part.IntraDistance(plan.door(dt).Midpoint(), p);
    if (leg == kInfDistance) continue;
    best = std::min(best, door_dist_[dt] + leg);
  }
  return best;
}

double DistanceField::DistanceTo(const Point& p) const {
  if (!valid()) return kInfDistance;
  const auto host = ctx_.locator->GetHostPartition(p);
  if (!host.ok()) return kInfDistance;
  return DistanceTo(host.value(), p);
}

}  // namespace indoor
