// Per-run observability accumulator for the door-graph Dijkstra loops.
//
// Every door-level expansion in the library (Algorithm 1 runs, the
// per-source-door expansions of Algorithms 3/4, the virtual-source
// variant, distance fields) counts its settles and edge relaxations in
// plain local fields and flushes them into the global counters
//
//   distance.dijkstra.runs / .settles / .relaxations
//
// exactly once, in the destructor — one pair of relaxed atomic adds per
// run instead of one per heap pop, which keeps the instrumented hot loop
// within the documented <2% overhead budget (docs/METRICS.md).
//
// Instantiate only inside INDOOR_METRICS_ONLY(...) so the OFF build's
// loops carry no accumulator at all.

#ifndef INDOOR_CORE_DISTANCE_DIJKSTRA_STATS_H_
#define INDOOR_CORE_DISTANCE_DIJKSTRA_STATS_H_

#include <cstdint>

#include "core/distance/bucket_queue.h"
#include "util/metrics.h"
#include "util/query_log.h"

namespace indoor {
namespace internal {

/// Counts one Dijkstra run; flushes into the registry on destruction.
/// Settles and relaxations are incremented at the same program points on
/// the heap and bucket frontiers (one settle per first pop of a door, one
/// relaxation per tentative-distance improvement), so the two paths
/// report identical counts for identical runs.
struct DijkstraRunStats {
  /// Doors settled (popped and finalized) this run.
  uint64_t settles = 0;
  /// Successful edge relaxations (tentative-distance improvements).
  uint64_t relaxations = 0;
  /// Pushes skipped because an ALT landmark lower bound proved they could
  /// not improve the result (pt2pt_distance.cc).
  uint64_t landmark_prunes = 0;
  /// Which frontier this run used; flushed as the per-kind run counters
  /// distance.dijkstra.queue.{heap,bucket}.
  QueueKind queue = QueueKind::kHeap;

  ~DijkstraRunStats() {
    INDOOR_COUNTER_INC("distance.dijkstra.runs");
    if (queue == QueueKind::kBucket) {
      INDOOR_COUNTER_INC("distance.dijkstra.queue.bucket");
    } else {
      INDOOR_COUNTER_INC("distance.dijkstra.queue.heap");
    }
    INDOOR_COUNTER_ADD("distance.dijkstra.settles", settles);
    INDOOR_COUNTER_ADD("distance.dijkstra.relaxations", relaxations);
    if (landmark_prunes != 0) {
      INDOOR_COUNTER_ADD("distance.dijkstra.prunes.landmark",
                         landmark_prunes);
    }
    // Attribute this run's settles to the in-flight query's log record.
    qlog::AddSettles(settles);
  }
};

}  // namespace internal
}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_DIJKSTRA_STATS_H_
