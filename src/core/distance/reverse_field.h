// ReverseDistanceField: exact walking distance from EVERY position TO one
// fixed target. The forward DistanceField answers "how far from here to
// X?"; with one-way doors that is NOT the same as "how far from X to
// here" reversed. Evacuation analytics need the reverse orientation: one
// field per exit answers every occupant's distance-to-exit in O(doors of
// their partition) — including through security gates that only open
// outward.
//
// Implementation: Dijkstra over the REVERSED door graph — relax dj -> di
// with weight fd2d(v, di, dj) wherever the forward graph has di -> dj —
// seeded at the target partition's ENTER doors with their distV legs.

#ifndef INDOOR_CORE_DISTANCE_REVERSE_FIELD_H_
#define INDOOR_CORE_DISTANCE_REVERSE_FIELD_H_

#include <vector>

#include "core/distance/pt2pt_distance.h"

namespace indoor {

/// Exact single-target distances: DistanceTo*(p) = walking distance p ->
/// target.
class ReverseDistanceField {
 public:
  /// Runs one Dijkstra over the reversed door graph toward `target`. If
  /// `target` is not inside any partition the field is invalid and every
  /// probe returns kInfDistance.
  ReverseDistanceField(const DistanceContext& ctx, const Point& target);

  /// False when the target was not inside any partition.
  bool valid() const { return host_ != kInvalidId; }
  /// The fixed target position the field was built toward.
  const Point& target() const { return target_; }
  /// The target's host partition (kInvalidId when !valid()).
  PartitionId host() const { return host_; }

  /// Shortest walking distance door `d` -> target (starting positioned to
  /// pass through `d`... i.e., the cost from just before crossing d).
  double DistanceFromDoor(DoorId d) const {
    INDOOR_CHECK(d < door_dist_.size());
    return door_dist_[d];
  }

  /// Shortest walking distance from `p` (in partition `v`) to the target:
  /// min over the direct intra candidate and every LEAVING door of `v`.
  double DistanceFrom(PartitionId v, const Point& p) const;

  /// As above, resolving `p`'s host partition internally.
  double DistanceFrom(const Point& p) const;

 private:
  const DistanceContext ctx_;
  Point target_;
  PartitionId host_ = kInvalidId;
  // door_dist_[d]: cost of the path starting AT door d (about to cross it)
  // and ending at the target.
  std::vector<double> door_dist_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_REVERSE_FIELD_H_
