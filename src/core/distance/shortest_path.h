// Concrete shortest indoor paths (doors, partitions, and geometric
// waypoints), reconstructed via the prev[.] arrays the paper describes for
// Algorithm 1 ("array prev[.] can be used to reconstruct the concrete
// shortest path, in terms of indoor partitions and doors").

#ifndef INDOOR_CORE_DISTANCE_SHORTEST_PATH_H_
#define INDOOR_CORE_DISTANCE_SHORTEST_PATH_H_

#include <vector>

#include "core/distance/pt2pt_distance.h"

namespace indoor {

/// A concrete shortest indoor path.
struct IndoorPath {
  /// Total walking length; kInfDistance when no path exists.
  double length = kInfDistance;
  /// Doors crossed, in order.
  std::vector<DoorId> doors;
  /// Partitions traversed. For position-to-position paths this has
  /// doors.size() + 1 entries (host partitions included); for door-to-door
  /// paths it has doors.size() - 1 entries (the partitions between
  /// consecutive doors).
  std::vector<PartitionId> partitions;
  /// Geometric polyline (endpoints and door midpoints; with
  /// expand_waypoints, also the intra-partition detours around obstacles).
  std::vector<Point> waypoints;

  bool found() const { return length != kInfDistance; }
};

/// Shortest door-to-door path (Algorithm 1 + prev[] reconstruction).
IndoorPath D2dShortestPath(const DistanceGraph& graph, DoorId ds, DoorId dt);

/// Shortest position-to-position path. When `expand_waypoints` is set, the
/// polyline includes the exact intra-partition obstructed detours.
IndoorPath Pt2PtShortestPath(const DistanceContext& ctx, const Point& ps,
                             const Point& pt, bool expand_waypoints = false);

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_SHORTEST_PATH_H_
