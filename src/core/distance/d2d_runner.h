// Policy-parameterized core of Algorithm 1 (the door-graph Dijkstra).
//
// d2d_distance.cc's two frontier loops (binary heap, bounded-weight bucket
// queue + SIMD batch relaxation) are generalized here into templates over
// two policies so other subsystems — the hierarchy index build's
// early-terminated row solves and its bounded query-time expansions
// (hierarchy_index.h, hierarchy_distance.h) — can reuse the EXACT solver
// loop instead of approximating it:
//
//   OnSettle  bool(DoorId di, double d) — invoked at the settle point of
//             every door (after it is marked visited, before its edges
//             relax). Returning false stops the run immediately; this is
//             the generalization of the historical `if (di == target)
//             return d` early exit. Because Dijkstra settles doors in
//             final-distance order and the loop performs the identical
//             operation sequence up to the stop, every distance reported
//             to OnSettle is bit-identical to the value the full
//             (un-stopped) run would produce — the settle-prefix property
//             that the hierarchy's bitwise-equality contract builds on.
//
//   PushOk    bool(double cand) — consulted before enqueueing an improving
//             candidate. Returning false records the tentative distance
//             but skips the push, so the door cannot settle through that
//             candidate. With a MONOTONE NON-INCREASING bound (a fixed
//             radius, or fl(base + cand) > best where best only shrinks),
//             pruning is loss-free for every door the caller observes via
//             OnSettle: a suppressed candidate is over the bound at push
//             time and therefore still over it at its would-be pop, where
//             the matching OnSettle stop condition would have ended the
//             run without processing it. CAUTION: with a non-trivial
//             PushOk, dist[] entries of unsettled doors are tentative
//             lower bounds only — consume distances through OnSettle (or
//             check visited[]), never from dist[] directly.
//
// The default policies (SettleAll / AlwaysPush) reduce both loops to the
// historical RunD2dHeap/RunD2dBucket byte for byte: same pop order, same
// relaxation sequence, same metrics. d2d_distance.cc's public entry points
// are thin wrappers over these templates, so the randomized heap-vs-bucket
// equivalence suites keep guarding this file's loops.

#ifndef INDOOR_CORE_DISTANCE_D2D_RUNNER_H_
#define INDOOR_CORE_DISTANCE_D2D_RUNNER_H_

#include <span>
#include <utility>
#include <vector>

#include "core/distance/d2d_distance.h"
#include "core/distance/dijkstra_stats.h"
#include "util/metrics.h"
#include "util/simd.h"

namespace indoor {

/// Default OnSettle: never stops (full single-source run).
struct SettleAll {
  bool operator()(DoorId, double) const { return true; }
};

/// Default PushOk: accepts every improving relaxation (exact Algorithm 1).
struct AlwaysPush {
  bool operator()(double) const { return true; }
};

/// Heap-frontier door Dijkstra from `ds`. dist/visited are assigned to the
/// door count; `prev_out` may be null. See the header comment for the
/// policy contracts.
template <typename OnSettle = SettleAll, typename PushOk = AlwaysPush>
void RunDoorDijkstraHeap(const DistanceGraph& graph, DoorId ds,
                         std::vector<double>* dist_out,
                         std::vector<char>* visited_buf,
                         MinHeap<std::pair<double, DoorId>>* heap,
                         std::vector<PrevEntry>* prev_out,
                         OnSettle&& on_settle = {}, PushOk&& push_ok = {}) {
  const size_t n = graph.plan().door_count();
  INDOOR_CHECK(ds < n);

  std::vector<double>& dist = *dist_out;
  dist.assign(n, kInfDistance);
  if (prev_out != nullptr) prev_out->assign(n, PrevEntry{});
  std::vector<char>& visited = *visited_buf;
  visited.assign(n, 0);

  heap->clear();
  dist[ds] = 0.0;
  heap->push({0.0, ds});

  INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats;)
  while (!heap->empty()) {
    const auto [d, di] = heap->top();
    heap->pop();
    if (visited[di]) continue;
    visited[di] = 1;
    INDOOR_METRICS_ONLY(++stats.settles;)
    if (!on_settle(di, d)) return;
    for (const DoorGraphEdge& e : graph.DoorEdges(di)) {
      if (visited[e.to]) continue;
      if (dist[di] + e.weight < dist[e.to]) {
        dist[e.to] = dist[di] + e.weight;
        if (prev_out != nullptr) (*prev_out)[e.to] = {e.via, di};
        if (!push_ok(dist[e.to])) continue;
        heap->push({dist[e.to], e.to});
        INDOOR_METRICS_ONLY(++stats.relaxations;)
      }
    }
  }
}

/// Bucket-frontier door Dijkstra with SIMD batch relaxation, bitwise
/// identical to RunDoorDijkstraHeap under identical policies (see
/// d2d_distance.h: lexicographic extraction + pre-span filter + scalar
/// re-check reproduce the heap's relaxation sequence exactly).
template <typename OnSettle = SettleAll, typename PushOk = AlwaysPush>
void RunDoorDijkstraBucket(const DistanceGraph& graph, DoorId ds,
                           std::vector<double>* dist_out,
                           std::vector<char>* visited_buf, BucketQueue* queue,
                           std::vector<double>* cand_buf,
                           std::vector<uint32_t>* idx_buf,
                           std::vector<PrevEntry>* prev_out,
                           OnSettle&& on_settle = {}, PushOk&& push_ok = {}) {
  const size_t n = graph.plan().door_count();
  INDOOR_CHECK(ds < n);

  std::vector<double>& dist = *dist_out;
  dist.assign(n, kInfDistance);
  if (prev_out != nullptr) prev_out->assign(n, PrevEntry{});
  std::vector<char>& visited = *visited_buf;
  visited.assign(n, 0);
  cand_buf->resize(graph.max_door_out_degree());
  idx_buf->resize(graph.max_door_out_degree());
  double* const cand = cand_buf->data();
  uint32_t* const idx = idx_buf->data();

  queue->Prepare(graph.max_door_edge_weight());
  dist[ds] = 0.0;
  queue->push({0.0, ds});

  INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats;
                      stats.queue = QueueKind::kBucket;)
  while (!queue->empty()) {
    const auto [d, di] = queue->top();
    queue->pop();
    if (visited[di]) continue;
    visited[di] = 1;
    INDOOR_METRICS_ONLY(++stats.settles;)
    if (!on_settle(di, d)) return;
    const std::span<const DoorGraphEdge> edges = graph.DoorEdges(di);
    const size_t m = edges.size();
    if (m == 0) continue;
    simd::AddBase(d, graph.DoorEdgeWeights(di), cand, m);
    const size_t improved = simd::FilterImprovements(
        cand, graph.DoorEdgeTargets(di), dist.data(), m, idx);
    for (size_t k = 0; k < improved; ++k) {
      const size_t i = idx[k];
      const DoorId to = edges[i].to;
      if (cand[i] < dist[to]) {  // re-check: duplicate targets in one span
        dist[to] = cand[i];
        if (prev_out != nullptr) (*prev_out)[to] = {edges[i].via, di};
        if (!push_ok(cand[i])) continue;
        queue->push({cand[i], to});
        INDOOR_METRICS_ONLY(++stats.relaxations;)
      }
    }
  }
}

/// Frontier-dispatching convenience over a DoorDijkstraScratch; the
/// hierarchy query paths call this with their stop/prune policies.
template <typename OnSettle = SettleAll, typename PushOk = AlwaysPush>
void RunDoorDijkstra(const DistanceGraph& graph, DoorId ds,
                     DoorDijkstraScratch* scratch, QueueKind kind,
                     std::vector<PrevEntry>* prev_out,
                     OnSettle&& on_settle = {}, PushOk&& push_ok = {}) {
  if (kind == QueueKind::kBucket) {
    RunDoorDijkstraBucket(graph, ds, &scratch->dist, &scratch->visited,
                          &scratch->bucket, &scratch->relax_cand,
                          &scratch->relax_idx, prev_out,
                          std::forward<OnSettle>(on_settle),
                          std::forward<PushOk>(push_ok));
    return;
  }
  RunDoorDijkstraHeap(graph, ds, &scratch->dist, &scratch->visited,
                      &scratch->heap, prev_out,
                      std::forward<OnSettle>(on_settle),
                      std::forward<PushOk>(push_ok));
}

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_D2D_RUNNER_H_
