// DistanceField: the exact indoor walking distance from one fixed source
// position to EVERY door, answering point queries anywhere in the building
// with one intra-partition leg. One Dijkstra to build, O(doors of the
// target partition) per probe.
//
// This is the workhorse behind the linear-scan oracle, continuous query
// monitoring (tracking/monitor.h), and any service that repeatedly asks
// "how far is X from this fixed spot" (e.g. the boarding-gate reminder).

#ifndef INDOOR_CORE_DISTANCE_DISTANCE_FIELD_H_
#define INDOOR_CORE_DISTANCE_DISTANCE_FIELD_H_

#include <vector>

#include "core/distance/pt2pt_distance.h"

namespace indoor {

/// Exact single-source distances from a fixed indoor position.
class DistanceField {
 public:
  /// Runs one multi-source door Dijkstra from `source`. If `source` is not
  /// inside any partition the field is invalid and every probe returns
  /// kInfDistance.
  DistanceField(const DistanceContext& ctx, const Point& source);

  /// False when the source was not inside any partition.
  bool valid() const { return host_ != kInvalidId; }
  /// The fixed source position the field was built from.
  const Point& source() const { return source_; }
  /// The source's host partition (kInvalidId when !valid()).
  PartitionId host() const { return host_; }

  /// Shortest walking distance source -> door `d` (positioned to pass
  /// through `d`).
  double DistanceToDoor(DoorId d) const {
    INDOOR_CHECK(d < door_dist_.size());
    return door_dist_[d];
  }

  /// Shortest walking distance source -> `p`, where `p` lies in partition
  /// `v`. Exact: min over the direct intra candidate (same partition) and
  /// every entering door of `v`.
  double DistanceTo(PartitionId v, const Point& p) const;

  /// As above, resolving the host partition of `p` internally.
  double DistanceTo(const Point& p) const;

 private:
  const DistanceContext ctx_;
  Point source_;
  PartitionId host_ = kInvalidId;
  std::vector<double> door_dist_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_DISTANCE_FIELD_H_
