// Algorithm 3 (paper's pt2ptDistance2): dead-end source-door pruning plus
// one bounded Dijkstra per source door over a filtered destination set.

#include <algorithm>

#include "core/distance/d2d_distance.h"
#include "core/distance/dijkstra_stats.h"
#include "core/distance/pt2pt_distance.h"
#include "core/distance/query_scratch.h"
#include "core/query/query_cache.h"
#include "util/metrics.h"

namespace indoor {

using internal::DirectCandidate;
using internal::Endpoints;
using internal::PrunedSourceDoors;
using internal::ResolveEndpoints;

double Pt2PtDistanceRefined(const DistanceContext& ctx, const Point& ps,
                            const Point& pt, QueryScratch* scratch) {
  INDOOR_LATENCY_SPAN("pt2pt_refined", "query.pt2pt_refined.latency_ns");
  const FloorPlan& plan = ctx.graph->plan();
  const Endpoints endpoints = ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);

  // Lines 3-8: source doors with dead ends removed; destination doors.
  auto& doors_s = scratch->source_doors;
  PrunedSourceDoors(plan, endpoints.vs, endpoints.vt, &doors_s);
  const std::vector<DoorId>& doors_t = plan.EnterDoors(endpoints.vt);

  double dist_m = DirectCandidate(ctx, endpoints, ps, pt, &scratch->geo);

  // Entry and exit legs, one batched geodesic solve per endpoint (the
  // pseudocode recomputes ||dt, pt|| per source door; values identical).
  auto& src_leg = scratch->src_leg;
  auto& dst_leg = scratch->dst_leg;
  src_leg.resize(doors_s.size());
  dst_leg.resize(doors_t.size());
  {
    INDOOR_TRACE_SPAN("entry_exit_legs");
    // doors_s is an ascending subset of LeaveDoors(vs), so the cached
    // canonical field serves it exactly (query_cache.h).
    CachedFieldLegs(ctx.cache, *ctx.locator, FieldKind::kLeaveFrom,
                    endpoints.vs, ps, doors_s, &scratch->geo,
                    src_leg.data());
    CachedFieldLegs(ctx.cache, *ctx.locator, FieldKind::kEnterTo,
                    endpoints.vt, pt, doors_t, &scratch->geo,
                    dst_leg.data());
  }

  INDOOR_TRACE_SPAN("source_door_expansions");
  const size_t n = plan.door_count();
  auto& dist = scratch->door.dist;
  auto& visited = scratch->door.visited;

  for (size_t s = 0; s < doors_s.size(); ++s) {
    const DoorId ds = doors_s[s];
    if (src_leg[s] == kInfDistance) continue;

    // Lines 11-14: destination doors that can still beat dist_m.
    auto& doors = scratch->cand_doors;
    doors.clear();
    for (size_t j = 0; j < doors_t.size(); ++j) {
      if (dst_leg[j] != kInfDistance && src_leg[s] + dst_leg[j] < dist_m) {
        doors.push_back(doors_t[j]);
      }
    }
    if (doors.empty()) continue;

    // Lines 15-36: one Dijkstra from ds, terminating once every door in
    // `doors` has been settled. Either frontier extracts the identical
    // (distance, id) minimum each round (bucket_queue.h), so the settle
    // order — and with it every dist_m update — is frontier-independent.
    const auto expand = [&](auto& frontier, QueueKind kind) {
      dist.assign(n, kInfDistance);
      visited.assign(n, 0);
      ResetFrontier(&frontier, *ctx.graph);
      dist[ds] = 0.0;
      frontier.push({0.0, ds});

      INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats;
                          stats.queue = kind;)
      (void)kind;
      while (!frontier.empty()) {
        const auto [d, di] = frontier.top();
        frontier.pop();
        if (visited[di]) continue;
        visited[di] = 1;
        INDOOR_METRICS_ONLY(++stats.settles;)

        const auto it = std::find(doors.begin(), doors.end(), di);
        if (it != doors.end()) {
          doors.erase(it);
          const auto t =
              std::lower_bound(doors_t.begin(), doors_t.end(), di);
          const double leg = dst_leg[t - doors_t.begin()];
          if (src_leg[s] + d + leg < dist_m) {
            dist_m = src_leg[s] + d + leg;
          }
          if (doors.empty()) break;
        }

        for (const DoorGraphEdge& e : ctx.graph->DoorEdges(di)) {
          if (visited[e.to]) continue;
          if (d + e.weight < dist[e.to]) {
            dist[e.to] = d + e.weight;
            frontier.push({dist[e.to], e.to});
            INDOOR_METRICS_ONLY(++stats.relaxations;)
          }
        }
      }
    };
    if (ctx.queue == QueueKind::kBucket) {
      expand(scratch->door.bucket, QueueKind::kBucket);
    } else {
      expand(scratch->door.heap, QueueKind::kHeap);
    }
  }
  return dist_m;
}

}  // namespace indoor
