// Algorithm 3 (paper's pt2ptDistance2): dead-end source-door pruning plus
// one bounded Dijkstra per source door over a filtered destination set.

#include <algorithm>
#include <queue>

#include "core/distance/pt2pt_distance.h"

namespace indoor {

using internal::DirectCandidate;
using internal::Endpoints;
using internal::PrunedSourceDoors;
using internal::ResolveEndpoints;

double Pt2PtDistanceRefined(const DistanceContext& ctx, const Point& ps,
                            const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  const Endpoints endpoints = ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;

  // Lines 3-8: source doors with dead ends removed; destination doors.
  const std::vector<DoorId> doors_s =
      PrunedSourceDoors(plan, endpoints.vs, endpoints.vt);
  const std::vector<DoorId>& doors_t = plan.EnterDoors(endpoints.vt);

  double dist_m = DirectCandidate(ctx, endpoints, ps, pt);

  const size_t n = plan.door_count();
  std::vector<double> dist(n);
  std::vector<char> visited(n);

  for (DoorId ds : doors_s) {
    const double src_leg = ctx.locator->DistV(endpoints.vs, ps, ds);
    if (src_leg == kInfDistance) continue;

    // Lines 11-14: destination doors that can still beat dist_m.
    std::vector<DoorId> doors;
    for (DoorId dt : doors_t) {
      const double dst_leg = ctx.locator->DistV(endpoints.vt, pt, dt);
      if (dst_leg != kInfDistance && src_leg + dst_leg < dist_m) {
        doors.push_back(dt);
      }
    }
    if (doors.empty()) continue;

    // Lines 15-36: one Dijkstra from ds, terminating once every door in
    // `doors` has been settled.
    dist.assign(n, kInfDistance);
    visited.assign(n, 0);
    using Entry = std::pair<double, DoorId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[ds] = 0.0;
    heap.push({0.0, ds});

    while (!heap.empty()) {
      const auto [d, di] = heap.top();
      heap.pop();
      if (visited[di]) continue;
      visited[di] = 1;

      const auto it = std::find(doors.begin(), doors.end(), di);
      if (it != doors.end()) {
        doors.erase(it);
        const double dst_leg = ctx.locator->DistV(endpoints.vt, pt, di);
        if (src_leg + d + dst_leg < dist_m) {
          dist_m = src_leg + d + dst_leg;
        }
        if (doors.empty()) break;
      }

      for (PartitionId v : plan.EnterableParts(di)) {
        for (DoorId dj : plan.LeaveDoors(v)) {
          if (visited[dj]) continue;
          const double w = ctx.graph->Fd2d(v, di, dj);
          if (w == kInfDistance) continue;
          if (d + w < dist[dj]) {
            dist[dj] = d + w;
            heap.push({dist[dj], dj});
          }
        }
      }
    }
  }
  return dist_m;
}

}  // namespace indoor
