// Per-thread query scratch arena.
//
// Every distance-aware query (pt2pt variants, range, kNN) runs a mix of
// geodesic solves (intra-partition legs), door-level Dijkstras, and bucket
// scans. QueryScratch bundles the reusable state of all three so the
// steady-state query hot path performs zero heap allocations: buffers are
// sized on first use and keep their capacity across queries.
//
// Ownership/threading contract (also see GeodesicScratch): a QueryScratch
// belongs to exactly one thread at a time and must not be shared between
// concurrently executing queries. The usual pattern is one scratch per
// worker thread, obtained implicitly — every query entry point accepts a
// null scratch and falls back to TlsQueryScratch(), the calling thread's
// own arena — or explicitly, by constructing a QueryScratch next to the
// worker loop and passing it down. Scratches hold no pointers into any
// index structure except the revalidated source-solve cache inside
// GeodesicScratch, so they may outlive, or be reused across, different
// QueryEngine instances.

#ifndef INDOOR_CORE_DISTANCE_QUERY_SCRATCH_H_
#define INDOOR_CORE_DISTANCE_QUERY_SCRATCH_H_

#include <vector>

#include "core/distance/d2d_distance.h"
#include "core/index/grid_index.h"
#include "util/metrics.h"

namespace indoor {

/// Reusable state for one thread's distance-aware queries.
struct QueryScratch {
  /// Geodesic solver state for the entry/exit legs (Locator::DistVMany)
  /// and direct same-partition candidates.
  GeodesicScratch geo;
  /// Door-level Dijkstra state (Algorithms 1-4 expansions).
  DoorDijkstraScratch door;
  /// Grid-bucket search state (range/kNN object evaluation).
  BucketScratch bucket;

  /// Pruned source doors (Algorithm 3/4 lines 3-8).
  std::vector<DoorId> source_doors;
  /// Per-source candidate destination doors (Algorithm 3 lines 11-14).
  std::vector<DoorId> cand_doors;
  /// Entry legs ||ps, ds|| per source door / exit legs ||dt, pt|| per
  /// destination door.
  std::vector<double> src_leg;
  std::vector<double> dst_leg;
  /// Algorithm 4's dists[.][.] reuse matrix (rows x cols, row-major).
  std::vector<double> d2d_cache;
  /// Algorithm 4's prev[.] array for backward reuse.
  std::vector<PrevEntry> prev;

  /// kNN candidate collector; Reset(k) per query.
  KnnCollector collector{1};
  /// Staging for range-search results forwarded into id lists.
  std::vector<Neighbor> neighbors;
  /// Partitions whose object population the running range/kNN query has
  /// examined — the epoch dependency set of its cached result.
  std::vector<PartitionId> result_deps;

  /// Approximate-kNN tier buffers (knn_query.cc): per-object SIMD lower
  /// bounds, the bound-sorted candidate order, and the per-door memo of
  /// q -> enter-door budgets used by the exact re-rank.
  std::vector<double> approx_bound;
  std::vector<ObjectId> approx_order;
  std::vector<double> approx_dq;

  // ---- high-water-mark decay ------------------------------------------
  // Long-lived serving threads (and the TLS fallback in particular) used
  // to pin the peak capacity of every buffer forever: one huge query left
  // megabytes parked in the arena. Query entry points now call
  // NoteQueryDone() once per query (via ScratchDecayGuard); every
  // kDecayInterval queries the arena compares its allocated capacity with
  // the recent peak usage and, when capacity exceeds 4x that peak (with a
  // floor of kDecayMinBytes so steady hot-path buffers are never churned),
  // shrinks every buffer back to its current size.

  /// Queries between decay checks.
  static constexpr int kDecayInterval = 64;
  /// Capacity below 4x this floor is never reclaimed.
  static constexpr size_t kDecayMinBytes = size_t{16} << 10;

  /// Records the end of one query; periodically decays over-sized buffers.
  void NoteQueryDone();
  /// Total allocated bytes across every buffer of the arena.
  size_t CapacityBytes() const;
  /// Total bytes currently in use (sizes, not capacities).
  size_t UsedBytes() const;
  /// Releases all capacity beyond current sizes (manual decay).
  void ShrinkToFit();

 private:
  size_t decay_peak_bytes_ = 0;
  int decay_countdown_ = kDecayInterval;
};

/// RAII helper placed at every query entry point: notifies the scratch at
/// scope exit no matter which return path the query takes.
class ScratchDecayGuard {
 public:
  explicit ScratchDecayGuard(QueryScratch* scratch) : scratch_(scratch) {}
  ~ScratchDecayGuard() { scratch_->NoteQueryDone(); }
  ScratchDecayGuard(const ScratchDecayGuard&) = delete;
  ScratchDecayGuard& operator=(const ScratchDecayGuard&) = delete;

 private:
  QueryScratch* scratch_;
};

/// The calling thread's fallback QueryScratch (used whenever a query entry
/// point is handed a null scratch).
QueryScratch& TlsQueryScratch();

/// Resolves a possibly-null scratch pointer to a usable arena: the pointer
/// itself when provided, the calling thread's TlsQueryScratch() otherwise.
/// Counts the resolution under `scratch.explicit` / `scratch.tls_fallback`
/// so operators can see whether callers reuse arenas or lean on the TLS
/// fallback (docs/METRICS.md).
inline QueryScratch& ResolveQueryScratch(QueryScratch* scratch) {
  if (scratch != nullptr) {
    INDOOR_COUNTER_INC("scratch.explicit");
    return *scratch;
  }
  INDOOR_COUNTER_INC("scratch.tls_fallback");
  return TlsQueryScratch();
}

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_QUERY_SCRATCH_H_
